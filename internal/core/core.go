// Package core is the paper's actionable contribution as a library: it
// classifies applications the way §III does (CPU-bound, parallel/HPC,
// IO-bound, ultra-IO-bound), decomposes measured overheads into
// Platform-Type Overhead and Platform-Size Overhead (§IV), computes the
// Container-to-Host core Ratio and its recommended bands (§IV-A), and turns
// the six findings and five best practices of §VI into an Advisor that
// recommends an execution platform, provisioning mode and sizing for a given
// application profile and host.
package core

import (
	"fmt"
	"math"

	"repro/internal/platform"
	"repro/internal/topology"
)

// AppClass is the paper's application taxonomy (Table I).
type AppClass int

const (
	// CPUBound: video transcoding and similar compute-saturated work.
	CPUBound AppClass = iota
	// Parallel: MPI-style communication-dominated HPC programs.
	Parallel
	// IOBound: web workloads with many short IO-interrupted processes.
	IOBound
	// UltraIOBound: NoSQL / storage workloads with extreme IO volume.
	UltraIOBound
)

func (c AppClass) String() string {
	switch c {
	case CPUBound:
		return "cpu-bound"
	case Parallel:
		return "parallel (MPI)"
	case IOBound:
		return "io-bound"
	case UltraIOBound:
		return "ultra-io-bound"
	}
	return fmt.Sprintf("AppClass(%d)", int(c))
}

// Profile describes an application for the advisor.
type Profile struct {
	Name string
	// IOPerSecond is the rate of IO interrupts per second of runtime.
	IOPerSecond float64
	// CPUUtilization is the fraction of wall time spent computing (1.0 =
	// fully CPU-bound).
	CPUUtilization float64
	// MessagesPerSecond is the inter-process messaging rate (MPI-style).
	MessagesPerSecond float64
	// Threads is the peak runnable thread count.
	Threads int
	// Multiprocess marks workloads made of many short-lived processes.
	Multiprocess bool
}

// Classify maps a profile onto the paper's taxonomy.
func Classify(p Profile) AppClass {
	switch {
	case p.MessagesPerSecond > 100 && p.MessagesPerSecond >= p.IOPerSecond:
		return Parallel
	case p.IOPerSecond >= 2000:
		return UltraIOBound
	case p.IOPerSecond >= 100 || p.CPUUtilization < 0.5:
		return IOBound
	default:
		return CPUBound
	}
}

// CHR is the paper's Container-to-Host core Ratio (§IV-A).
func CHR(containerCores int, host *topology.Topology) float64 {
	if host == nil || host.NumCPUs() == 0 {
		return math.NaN()
	}
	return float64(containerCores) / float64(host.NumCPUs())
}

// CHRBand is a recommended CHR range for an application class.
type CHRBand struct {
	Low, High float64
}

// Contains reports whether a CHR value falls inside the band.
func (b CHRBand) Contains(chr float64) bool { return chr > b.Low && chr <= b.High }

func (b CHRBand) String() string { return fmt.Sprintf("%.2f < CHR < %.2f", b.Low, b.High) }

// RecommendedCHR returns the paper's best-practice #5 bands: CPU-intensive
// 0.07–0.14, IO-intensive 0.14–0.28, ultra-IO-intensive 0.28–0.57.
func RecommendedCHR(class AppClass) CHRBand {
	switch class {
	case CPUBound, Parallel:
		return CHRBand{0.07, 0.14}
	case IOBound:
		return CHRBand{0.14, 0.28}
	case UltraIOBound:
		return CHRBand{0.28, 0.57}
	}
	return CHRBand{0.07, 0.14}
}

// MinCoresForCHR returns the smallest container size whose CHR reaches the
// class band on the host.
func MinCoresForCHR(class AppClass, host *topology.Topology) int {
	band := RecommendedCHR(class)
	n := int(math.Ceil(band.Low * float64(host.NumCPUs())))
	if n < 1 {
		n = 1
	}
	return n
}

// Recommendation is the advisor's output.
type Recommendation struct {
	Class     AppClass
	Platform  platform.Kind
	Mode      platform.Mode
	MinCores  int
	CHRTarget CHRBand
	Rationale []string
}

// Advise applies the paper's best practices (§VI) to a profile on a host.
func Advise(p Profile, host *topology.Topology) Recommendation {
	if host == nil {
		host = topology.PaperHost()
	}
	class := Classify(p)
	r := Recommendation{
		Class:     class,
		CHRTarget: RecommendedCHR(class),
		MinCores:  MinCoresForCHR(class, host),
	}
	switch class {
	case CPUBound:
		// BP2: pinned containers impose the least overhead for CPU work.
		r.Platform = platform.CN
		r.Mode = platform.Pinned
		r.Rationale = append(r.Rationale,
			"CPU-intensive: pinned containers impose the least overhead (best practice 2)",
			"if a VM must be used, do not bother pinning it — the virtualization tax is size-invariant PTO (best practice 3)")
	case Parallel:
		// Fig 4: containers are the worst platform for MPI; VMs approach
		// bare metal once communication dominates.
		r.Platform = platform.VM
		r.Mode = platform.Pinned
		r.Rationale = append(r.Rationale,
			"communication-dominated: the hypervisor's intra-VM fast path beats the container network namespace (Fig 4)",
			"avoid containers for MPI — pinning does not remove their per-message kernel-path cost")
	case IOBound:
		// BP4: pinned CN first; VMCN if pinning is not viable.
		r.Platform = platform.CN
		r.Mode = platform.Pinned
		r.Rationale = append(r.Rationale,
			"IO-intensive: pinned containers near the IRQ home CPUs impose the lowest overhead (Fig 5)",
			"if pinning is not viable, use a container inside a VM (VMCN) rather than a VM or a vanilla container (best practice 4)")
	case UltraIOBound:
		r.Platform = platform.CN
		r.Mode = platform.Pinned
		r.Rationale = append(r.Rationale,
			"ultra-IO-intensive: pinned platforms can beat even bare metal via IO affinity (Fig 6)",
			fmt.Sprintf("size generously: suitable CHR is %v (best practice 5)", RecommendedCHR(UltraIOBound)))
	}
	// BP1: never ship tiny vanilla containers.
	if r.MinCores <= 2 {
		r.MinCores = 3
	}
	r.Rationale = append(r.Rationale,
		fmt.Sprintf("avoid vanilla containers smaller than %d cores on this %d-CPU host (best practice 1; CHR band %v)",
			r.MinCores, host.NumCPUs(), r.CHRTarget))
	return r
}

// OverheadKind is the paper's §IV decomposition.
type OverheadKind int

const (
	// PTO: platform-type overhead — size-invariant, from virtualization
	// layers; pinning cannot remove it.
	PTO OverheadKind = iota
	// PSO: platform-size overhead — shrinks as CHR grows; pinning and
	// bigger containers remove it.
	PSO
)

func (k OverheadKind) String() string {
	if k == PTO {
		return "PTO"
	}
	return "PSO"
}

// Split decomposes a series of overhead ratios (ordered small → large
// instance) into the size-invariant PTO (the large-instance plateau) and the
// per-size PSO remainder, following §IV's definition.
func Split(ratios []float64) (pto float64, pso []float64) {
	if len(ratios) == 0 {
		return 0, nil
	}
	pto = ratios[len(ratios)-1]
	pso = make([]float64, len(ratios))
	for i, r := range ratios {
		d := r - pto
		if d < 0 {
			d = 0
		}
		pso[i] = d
	}
	return pto, pso
}

// DominantOverhead labels which overhead kind dominates a ratio series: if
// the small-instance excess over the plateau exceeds the plateau's own
// excess over 1.0, the platform suffers mostly PSO (fixable by pinning and
// sizing); otherwise PTO (fixable only by changing platforms).
func DominantOverhead(ratios []float64) OverheadKind {
	pto, pso := Split(ratios)
	if len(pso) == 0 {
		return PTO
	}
	if pso[0] > pto-1 {
		return PSO
	}
	return PTO
}
