package core

import (
	"math"
	"testing"

	"repro/internal/platform"
	"repro/internal/topology"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		p    Profile
		want AppClass
	}{
		{Profile{Name: "ffmpeg", CPUUtilization: 0.98, IOPerSecond: 5}, CPUBound},
		{Profile{Name: "mpi", CPUUtilization: 0.7, MessagesPerSecond: 5000}, Parallel},
		{Profile{Name: "web", CPUUtilization: 0.3, IOPerSecond: 500}, IOBound},
		{Profile{Name: "nosql", CPUUtilization: 0.4, IOPerSecond: 9000}, UltraIOBound},
	}
	for _, c := range cases {
		if got := Classify(c.p); got != c.want {
			t.Errorf("%s classified %v, want %v", c.p.Name, got, c.want)
		}
	}
	for _, c := range []AppClass{CPUBound, Parallel, IOBound, UltraIOBound, AppClass(9)} {
		if c.String() == "" {
			t.Error("empty class name")
		}
	}
}

func TestCHR(t *testing.T) {
	h := topology.PaperHost()
	if got := CHR(16, h); math.Abs(got-0.142857) > 1e-4 {
		t.Fatalf("CHR = %v", got)
	}
	if !math.IsNaN(CHR(4, nil)) {
		t.Fatal("nil host must be NaN")
	}
}

func TestRecommendedCHRBands(t *testing.T) {
	// The paper's best practice 5 values.
	if b := RecommendedCHR(CPUBound); b.Low != 0.07 || b.High != 0.14 {
		t.Fatalf("cpu band %v", b)
	}
	if b := RecommendedCHR(IOBound); b.Low != 0.14 || b.High != 0.28 {
		t.Fatalf("io band %v", b)
	}
	if b := RecommendedCHR(UltraIOBound); b.Low != 0.28 || b.High != 0.57 {
		t.Fatalf("ultra band %v", b)
	}
	b := RecommendedCHR(IOBound)
	if !b.Contains(0.2) || b.Contains(0.3) || b.Contains(0.1) {
		t.Fatal("Contains broken")
	}
	if b.String() == "" {
		t.Fatal("band string")
	}
}

func TestMinCoresForCHR(t *testing.T) {
	h := topology.PaperHost()
	if got := MinCoresForCHR(UltraIOBound, h); got != 32 {
		t.Fatalf("ultra-IO min cores on 112 = %d, want 32 (0.28×112 rounded up)", got)
	}
	small := topology.SmallHost16()
	if got := MinCoresForCHR(CPUBound, small); got < 1 {
		t.Fatalf("min cores %d", got)
	}
}

func TestAdviseBestPractices(t *testing.T) {
	h := topology.PaperHost()

	cpu := Advise(Profile{Name: "transcoder", CPUUtilization: 0.95}, h)
	if cpu.Platform != platform.CN || cpu.Mode != platform.Pinned {
		t.Fatalf("BP2 violated: %v %v", cpu.Mode, cpu.Platform)
	}

	mpi := Advise(Profile{Name: "solver", MessagesPerSecond: 10000}, h)
	if mpi.Platform != platform.VM {
		t.Fatalf("MPI must avoid containers (Fig 4), got %v", mpi.Platform)
	}

	io := Advise(Profile{Name: "web", IOPerSecond: 500, CPUUtilization: 0.3}, h)
	if io.Platform != platform.CN || io.Mode != platform.Pinned {
		t.Fatalf("BP4: %v %v", io.Mode, io.Platform)
	}

	ultra := Advise(Profile{Name: "db", IOPerSecond: 20000}, h)
	if ultra.CHRTarget != RecommendedCHR(UltraIOBound) {
		t.Fatal("BP5 band missing")
	}
	// BP1: no tiny vanilla containers.
	if cpu.MinCores < 3 {
		t.Fatalf("BP1: minimum %d cores", cpu.MinCores)
	}
	for _, r := range [](Recommendation){cpu, mpi, io, ultra} {
		if len(r.Rationale) == 0 {
			t.Fatal("recommendations must explain themselves")
		}
	}
	// nil host defaults to the paper host.
	if got := Advise(Profile{Name: "x", CPUUtilization: 1}, nil); got.MinCores == 0 {
		t.Fatal("nil host handling")
	}
}

func TestSplitPTOPSO(t *testing.T) {
	// A VM-like series: flat ratio 2 ⇒ pure PTO.
	pto, pso := Split([]float64{2.0, 2.0, 2.0})
	if pto != 2.0 {
		t.Fatalf("PTO %v", pto)
	}
	for _, p := range pso {
		if p != 0 {
			t.Fatalf("flat series has no PSO: %v", pso)
		}
	}
	// A vanilla-CN-like series: 2.1 shrinking to 1.05 ⇒ PSO-dominated.
	pto, pso = Split([]float64{2.1, 1.5, 1.2, 1.05})
	if pto != 1.05 {
		t.Fatalf("PTO %v", pto)
	}
	if math.Abs(pso[0]-1.05) > 1e-9 {
		t.Fatalf("PSO[0] = %v", pso[0])
	}
	if DominantOverhead([]float64{2.1, 1.5, 1.2, 1.05}) != PSO {
		t.Fatal("shrinking overhead is PSO")
	}
	if DominantOverhead([]float64{2.0, 2.0, 2.0}) != PTO {
		t.Fatal("flat overhead is PTO")
	}
	if pto, pso := Split(nil); pto != 0 || pso != nil {
		t.Fatal("empty split")
	}
	if PTO.String() != "PTO" || PSO.String() != "PSO" {
		t.Fatal("kind names")
	}
	// Negative PSO clamps to zero.
	_, pso = Split([]float64{1.0, 1.5})
	if pso[0] != 0 {
		t.Fatalf("PSO must clamp at zero: %v", pso)
	}
}
