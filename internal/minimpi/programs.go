package minimpi

import (
	"fmt"
	"time"
)

// SearchResult is the outcome of the parallel integer search (the paper's
// "MPI Search" application, §III-B2).
type SearchResult struct {
	Found bool
	Index int64
	Value int64
}

// Search runs the FSU search_mpi program shape: rank 0 scatters a synthetic
// integer array; each rank scans its chunk for target; an Allreduce agrees
// on the lowest matching global index.
func Search(ranks int, n int64, target int64, timeout time.Duration) (SearchResult, error) {
	if n <= 0 {
		return SearchResult{}, fmt.Errorf("minimpi: search over non-positive array size %d", n)
	}
	per := n / int64(ranks)
	if per == 0 {
		per = 1
	}
	n = per * int64(ranks)
	var res SearchResult
	err := Run(ranks, timeout, func(c *Comm, rank int) error {
		var chunk []int64
		if rank == 0 {
			// Synthetic data: a[i] = (i*2654435761) % (2n); deterministic.
			data := make([]int64, n)
			for i := int64(0); i < n; i++ {
				data[i] = (i * 2654435761) % (2 * n)
			}
			var err error
			chunk, err = c.Scatter(rank, 0, data)
			if err != nil {
				return err
			}
		} else {
			var err error
			chunk, err = c.Scatter(rank, 0, nil)
			if err != nil {
				return err
			}
		}
		// Local scan for the lowest matching global index.
		best := int64(-1)
		base := int64(rank) * per
		for i, v := range chunk {
			if v == target {
				best = base + int64(i)
				break
			}
		}
		enc := best
		if enc < 0 {
			enc = n + 1 // larger than any real index
		}
		min := func(a, b int64) int64 {
			if a < b {
				return a
			}
			return b
		}
		out, err := c.Allreduce(rank, []int64{enc}, min)
		if err != nil {
			return err
		}
		if rank == 0 {
			if out[0] <= n {
				res = SearchResult{Found: true, Index: out[0], Value: target}
			}
		}
		return nil
	})
	return res, err
}

// Prime runs the FSU prime_mpi program shape: ranks strided over [2,hi]
// count primes by trial division, then Reduce the counts at rank 0.
func Prime(ranks int, hi int64, timeout time.Duration) (int64, error) {
	if hi < 2 {
		return 0, nil
	}
	var total int64
	err := Run(ranks, timeout, func(c *Comm, rank int) error {
		var count int64
		for n := int64(2 + rank); n <= hi; n += int64(ranks) {
			if isPrime(n) {
				count++
			}
		}
		out, err := c.Reduce(rank, 0, []int64{count}, func(a, b int64) int64 { return a + b })
		if err != nil {
			return err
		}
		if rank == 0 {
			total = out[0]
		}
		return nil
	})
	return total, err
}

func isPrime(n int64) bool {
	if n < 2 {
		return false
	}
	for d := int64(2); d*d <= n; d++ {
		if n%d == 0 {
			return false
		}
	}
	return true
}
