// Package minimpi is a real, in-process message-passing library in the style
// of MPI: a fixed set of ranks with typed point-to-point Send/Recv and the
// collective operations (Barrier, Bcast, Reduce, Allreduce, Scatter,
// Gather). It exists so the repository can run the paper's MPI workloads
// (Search MPI and Prime MPI, §III-B2) for real — under optional CPU pinning
// via internal/affinity — in addition to simulating them.
//
// Semantics follow MPI's blocking mode: Send blocks until the matching
// receive is posted (rendezvous over unbuffered channels would deadlock
// common patterns, so a small per-link buffer is used, like an eager
// protocol for small messages); Recv blocks until a message from the given
// source arrives.
package minimpi

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// AnySource matches any sender in Recv.
const AnySource = -1

// ErrTimeout is returned when a collective or receive exceeds the
// communicator's deadlock timeout.
var ErrTimeout = errors.New("minimpi: operation timed out (deadlock?)")

// Message is a tagged payload between ranks.
type Message struct {
	From int
	Tag  int
	Data []int64
}

// Comm is a communicator over n ranks.
type Comm struct {
	n       int
	links   [][]chan Message // links[src][dst]
	anyRecv []chan Message   // fan-in per destination for AnySource
	timeout time.Duration
}

// eagerBuffer is the per-link channel capacity (eager-protocol depth).
const eagerBuffer = 64

// New returns a communicator with n ranks. Timeout bounds every blocking
// operation; 0 means a generous default (10s), keeping test deadlocks
// diagnosable.
func New(n int, timeout time.Duration) (*Comm, error) {
	if n <= 0 {
		return nil, fmt.Errorf("minimpi: communicator needs at least 1 rank, got %d", n)
	}
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	c := &Comm{n: n, timeout: timeout}
	c.links = make([][]chan Message, n)
	c.anyRecv = make([]chan Message, n)
	for src := 0; src < n; src++ {
		c.links[src] = make([]chan Message, n)
		for dst := 0; dst < n; dst++ {
			c.links[src][dst] = make(chan Message, eagerBuffer)
		}
	}
	for dst := 0; dst < n; dst++ {
		c.anyRecv[dst] = make(chan Message, eagerBuffer*n)
	}
	return c, nil
}

// Size returns the number of ranks.
func (c *Comm) Size() int { return c.n }

func (c *Comm) check(rank int) error {
	if rank < 0 || rank >= c.n {
		return fmt.Errorf("minimpi: rank %d out of range [0,%d)", rank, c.n)
	}
	return nil
}

// Send delivers data from src to dst with a tag.
func (c *Comm) Send(src, dst, tag int, data []int64) error {
	if err := c.check(src); err != nil {
		return err
	}
	if err := c.check(dst); err != nil {
		return err
	}
	msg := Message{From: src, Tag: tag, Data: data}
	select {
	case c.anyRecv[dst] <- msg:
		return nil
	case <-time.After(c.timeout):
		return fmt.Errorf("send %d→%d tag %d: %w", src, dst, tag, ErrTimeout)
	}
}

// Recv blocks until a message for dst arrives. src may be AnySource; when a
// specific src is given, messages from other ranks are requeued in order.
func (c *Comm) Recv(dst, src int) (Message, error) {
	if err := c.check(dst); err != nil {
		return Message{}, err
	}
	if src != AnySource {
		if err := c.check(src); err != nil {
			return Message{}, err
		}
	}
	deadline := time.After(c.timeout)
	var stash []Message
	defer func() {
		for _, m := range stash {
			c.anyRecv[dst] <- m
		}
	}()
	for {
		select {
		case m := <-c.anyRecv[dst]:
			if src == AnySource || m.From == src {
				return m, nil
			}
			stash = append(stash, m)
		case <-deadline:
			return Message{}, fmt.Errorf("recv at %d from %d: %w", dst, src, ErrTimeout)
		}
	}
}

// Barrier blocks rank until all ranks have entered the barrier.
func (c *Comm) Barrier(rank int) error {
	// Dissemination via rank 0: gather then release.
	if _, err := c.Reduce(rank, 0, []int64{0}, func(a, b int64) int64 { return a }); err != nil {
		return err
	}
	_, err := c.Bcast(rank, 0, []int64{0})
	return err
}

// Bcast sends data from root to every rank; each rank returns the payload.
func (c *Comm) Bcast(rank, root int, data []int64) ([]int64, error) {
	if err := c.check(root); err != nil {
		return nil, err
	}
	if rank == root {
		for dst := 0; dst < c.n; dst++ {
			if dst == root {
				continue
			}
			if err := c.Send(root, dst, tagBcast, data); err != nil {
				return nil, err
			}
		}
		return data, nil
	}
	m, err := c.Recv(rank, root)
	if err != nil {
		return nil, err
	}
	return m.Data, nil
}

// Reduce folds each rank's contribution into root using op; only root
// receives the result (nil elsewhere).
func (c *Comm) Reduce(rank, root int, data []int64, op func(a, b int64) int64) ([]int64, error) {
	if err := c.check(root); err != nil {
		return nil, err
	}
	if rank != root {
		return nil, c.Send(rank, root, tagReduce, data)
	}
	acc := append([]int64(nil), data...)
	for i := 0; i < c.n-1; i++ {
		m, err := c.Recv(root, AnySource)
		if err != nil {
			return nil, err
		}
		for j := range acc {
			if j < len(m.Data) {
				acc[j] = op(acc[j], m.Data[j])
			}
		}
	}
	return acc, nil
}

// Allreduce is Reduce followed by Bcast; every rank gets the result.
func (c *Comm) Allreduce(rank int, data []int64, op func(a, b int64) int64) ([]int64, error) {
	res, err := c.Reduce(rank, 0, data, op)
	if err != nil {
		return nil, err
	}
	return c.Bcast(rank, 0, res)
}

// Scatter splits root's data into n contiguous chunks; rank i receives
// chunk i. len(data) must be divisible by n at the root.
func (c *Comm) Scatter(rank, root int, data []int64) ([]int64, error) {
	if err := c.check(root); err != nil {
		return nil, err
	}
	if rank == root {
		if len(data)%c.n != 0 {
			return nil, fmt.Errorf("minimpi: scatter of %d items over %d ranks", len(data), c.n)
		}
		chunk := len(data) / c.n
		for dst := 0; dst < c.n; dst++ {
			part := data[dst*chunk : (dst+1)*chunk]
			if dst == root {
				continue
			}
			if err := c.Send(root, dst, tagScatter, part); err != nil {
				return nil, err
			}
		}
		return data[root*chunk : (root+1)*chunk], nil
	}
	m, err := c.Recv(rank, root)
	if err != nil {
		return nil, err
	}
	return m.Data, nil
}

// Gather collects each rank's chunk at root in rank order (nil elsewhere).
func (c *Comm) Gather(rank, root int, data []int64) ([][]int64, error) {
	if err := c.check(root); err != nil {
		return nil, err
	}
	if rank != root {
		return nil, c.Send(rank, root, tagGather, data)
	}
	out := make([][]int64, c.n)
	out[root] = data
	for i := 0; i < c.n-1; i++ {
		m, err := c.Recv(root, AnySource)
		if err != nil {
			return nil, err
		}
		out[m.From] = m.Data
	}
	return out, nil
}

const (
	tagBcast = iota + 1000
	tagReduce
	tagScatter
	tagGather
)

// Run launches fn on n goroutine ranks over a fresh communicator and waits;
// the first error aborts the result.
func Run(n int, timeout time.Duration, fn func(c *Comm, rank int) error) error {
	c, err := New(n, timeout)
	if err != nil {
		return err
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			errs[rank] = fn(c, rank)
		}(r)
	}
	wg.Wait()
	return errors.Join(errs...)
}
