package minimpi

import (
	"errors"
	"testing"
	"testing/quick"
	"time"
)

const tmo = 10 * time.Second

func TestSendRecvBasic(t *testing.T) {
	err := Run(2, tmo, func(c *Comm, rank int) error {
		if rank == 0 {
			return c.Send(0, 1, 7, []int64{42})
		}
		m, err := c.Recv(1, 0)
		if err != nil {
			return err
		}
		if m.From != 0 || m.Tag != 7 || m.Data[0] != 42 {
			t.Errorf("bad message: %+v", m)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvSpecificSourceRequeues(t *testing.T) {
	err := Run(3, tmo, func(c *Comm, rank int) error {
		switch rank {
		case 0:
			return c.Send(0, 2, 0, []int64{100})
		case 1:
			return c.Send(1, 2, 0, []int64{200})
		default:
			// Demand rank 1's message first even if rank 0's arrives first.
			m1, err := c.Recv(2, 1)
			if err != nil {
				return err
			}
			if m1.Data[0] != 200 {
				t.Errorf("wanted rank 1's message, got %+v", m1)
			}
			m0, err := c.Recv(2, 0)
			if err != nil {
				return err
			}
			if m0.Data[0] != 100 {
				t.Errorf("requeued message lost: %+v", m0)
			}
			return nil
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcast(t *testing.T) {
	err := Run(4, tmo, func(c *Comm, rank int) error {
		data, err := c.Bcast(rank, 2, []int64{int64(rank * 100)})
		if err != nil {
			return err
		}
		if data[0] != 200 {
			t.Errorf("rank %d got %v, want root 2's 200", rank, data[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceSum(t *testing.T) {
	err := Run(5, tmo, func(c *Comm, rank int) error {
		out, err := c.Reduce(rank, 0, []int64{int64(rank)}, func(a, b int64) int64 { return a + b })
		if err != nil {
			return err
		}
		if rank == 0 && out[0] != 10 { // 0+1+2+3+4
			t.Errorf("reduce sum %d", out[0])
		}
		if rank != 0 && out != nil {
			t.Error("non-root must get nil")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceEveryoneGetsResult(t *testing.T) {
	err := Run(4, tmo, func(c *Comm, rank int) error {
		out, err := c.Allreduce(rank, []int64{1}, func(a, b int64) int64 { return a + b })
		if err != nil {
			return err
		}
		if out[0] != 4 {
			t.Errorf("rank %d: allreduce %d, want 4", rank, out[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScatterGatherRoundTrip(t *testing.T) {
	const n = 4
	err := Run(n, tmo, func(c *Comm, rank int) error {
		var chunk []int64
		var err error
		if rank == 1 {
			data := make([]int64, 4*n)
			for i := range data {
				data[i] = int64(i)
			}
			chunk, err = c.Scatter(rank, 1, data)
		} else {
			chunk, err = c.Scatter(rank, 1, nil)
		}
		if err != nil {
			return err
		}
		if len(chunk) != 4 || chunk[0] != int64(rank*4) {
			t.Errorf("rank %d chunk %v", rank, chunk)
		}
		out, err := c.Gather(rank, 1, chunk)
		if err != nil {
			return err
		}
		if rank == 1 {
			for r := 0; r < n; r++ {
				if out[r][0] != int64(r*4) {
					t.Errorf("gather slot %d = %v", r, out[r])
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierOrdering(t *testing.T) {
	var before, after [4]bool
	err := Run(4, tmo, func(c *Comm, rank int) error {
		before[rank] = true
		if err := c.Barrier(rank); err != nil {
			return err
		}
		// After the barrier every rank must have checked in.
		for r := 0; r < 4; r++ {
			if !before[r] {
				t.Errorf("rank %d passed the barrier before rank %d entered", rank, r)
			}
		}
		after[rank] = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := range after {
		if !after[r] {
			t.Fatalf("rank %d never finished", r)
		}
	}
}

func TestScatterUnevenFails(t *testing.T) {
	err := Run(3, tmo, func(c *Comm, rank int) error {
		if rank == 0 {
			_, err := c.Scatter(0, 0, make([]int64, 7))
			if err == nil {
				t.Error("uneven scatter must fail")
			}
			// Unblock peers.
			for i := 1; i < 3; i++ {
				if err := c.Send(0, i, 0, nil); err != nil {
					return err
				}
			}
			return nil
		}
		_, err := c.Recv(rank, AnySource)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTimeoutDetectsDeadlock(t *testing.T) {
	c, err := New(2, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Recv(0, 1) // nobody ever sends
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
}

func TestRankValidation(t *testing.T) {
	if _, err := New(0, tmo); err == nil {
		t.Fatal("zero ranks must fail")
	}
	c, _ := New(2, tmo)
	if err := c.Send(0, 5, 0, nil); err == nil {
		t.Fatal("out-of-range destination must fail")
	}
	if _, err := c.Recv(9, AnySource); err == nil {
		t.Fatal("out-of-range receiver must fail")
	}
	if c.Size() != 2 {
		t.Fatal("size")
	}
}

func TestSearchFindsKnownValue(t *testing.T) {
	const n = 1 << 12
	idx := int64(777)
	target := (idx * 2654435761) % (2 * n)
	// The synthetic sequence may repeat values; Search returns the lowest
	// matching index, which is ≤ idx.
	res, err := Search(4, n, target, tmo)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.Index > idx {
		t.Fatalf("search: %+v", res)
	}
	if got := (res.Index * 2654435761) % (2 * n); got != target {
		t.Fatalf("index %d does not hold the target", res.Index)
	}
}

func TestSearchMissingValue(t *testing.T) {
	// Odd targets cannot be produced when 2n and the multiplier parity
	// align; easier: use a target beyond the value range.
	res, err := Search(3, 1000, 1<<40, tmo)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatalf("impossible value found: %+v", res)
	}
}

func TestPrimeCounts(t *testing.T) {
	for _, c := range []struct {
		hi   int64
		want int64
	}{{10, 4}, {100, 25}, {1000, 168}} {
		got, err := Prime(4, c.hi, tmo)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Fatalf("π(%d) = %d, want %d", c.hi, got, c.want)
		}
	}
	if n, err := Prime(3, 1, tmo); err != nil || n != 0 {
		t.Fatal("π(1) must be 0")
	}
}

// Property: allreduce(sum) over arbitrary per-rank values equals the true
// sum, for 1..6 ranks.
func TestAllreduceSumProperty(t *testing.T) {
	f := func(vals []int16, ranksRaw uint8) bool {
		ranks := int(ranksRaw%6) + 1
		if len(vals) < ranks {
			return true
		}
		var want int64
		for r := 0; r < ranks; r++ {
			want += int64(vals[r])
		}
		ok := true
		err := Run(ranks, tmo, func(c *Comm, rank int) error {
			out, err := c.Allreduce(rank, []int64{int64(vals[rank])}, func(a, b int64) int64 { return a + b })
			if err != nil {
				return err
			}
			if out[0] != want {
				ok = false
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSearchValidation(t *testing.T) {
	if _, err := Search(2, 0, 1, tmo); err == nil {
		t.Fatal("non-positive size must fail")
	}
}
