package model

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/platform"
)

// synthetic builds samples from a known curve with no noise.
func synthetic(k Key, pto, a, tau float64, chrs []float64) []Sample {
	var out []Sample
	for _, chr := range chrs {
		out = append(out, Sample{
			Platform: k.Platform, Mode: k.Mode, Class: k.Class,
			CHR:   chr,
			Ratio: pto + a*math.Exp(-chr/tau),
		})
	}
	return out
}

var stdCHRs = []float64{0.018, 0.036, 0.071, 0.143, 0.286, 0.571}

func TestFitRecoversKnownCurve(t *testing.T) {
	k := Key{platform.CN, platform.Vanilla, core.IOBound}
	m, err := Fit(synthetic(k, 1.05, 2.0, 0.08, stdCHRs))
	if err != nil {
		t.Fatal(err)
	}
	c, ok := m.Curve(k)
	if !ok {
		t.Fatal("curve missing")
	}
	// PTO is read off the largest-CHR sample; the true curve still has a
	// sliver of PSO there, so tolerate that bias.
	if math.Abs(c.PTO-1.05) > 0.02 {
		t.Errorf("PTO %v, want ≈1.05", c.PTO)
	}
	if c.Tau < 0.05 || c.Tau > 0.12 {
		t.Errorf("tau %v, want ≈0.08", c.Tau)
	}
	if c.A < 1.2 || c.A > 3.0 {
		t.Errorf("A %v, want ≈2.0", c.A)
	}
	if c.RMSE > 0.08 {
		t.Errorf("fit RMSE %v too large", c.RMSE)
	}
	// Interpolation between sample points stays close to the truth.
	for _, chr := range []float64{0.05, 0.1, 0.2} {
		want := 1.05 + 2.0*math.Exp(-chr/0.08)
		got, err := m.Predict(k.Platform, k.Mode, k.Class, chr)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 0.15 {
			t.Errorf("predict(%v) = %v, want ≈%v", chr, got, want)
		}
	}
}

func TestFitFlatCurve(t *testing.T) {
	// A pure-PTO platform (pinned VM on CPU-bound work): flat ratios.
	k := Key{platform.VM, platform.Pinned, core.CPUBound}
	m, err := Fit(synthetic(k, 2.0, 0, 1, stdCHRs))
	if err != nil {
		t.Fatal(err)
	}
	c, _ := m.Curve(k)
	if math.Abs(c.PTO-2.0) > 1e-9 {
		t.Errorf("PTO %v", c.PTO)
	}
	if c.PSO(0.01) != 0 {
		t.Error("flat curve must have zero PSO")
	}
}

func TestFitSingleCHRCohort(t *testing.T) {
	k := Key{platform.CN, platform.Vanilla, core.CPUBound}
	samples := []Sample{
		{k.Platform, k.Mode, k.Class, 0.1, 1.4},
		{k.Platform, k.Mode, k.Class, 0.1, 1.6},
	}
	m, err := Fit(samples)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := m.Curve(k)
	if math.Abs(c.PTO-1.5) > 1e-9 || c.A != 0 {
		t.Errorf("single-CHR cohort must fit flat mean: %+v", c)
	}
}

func TestFitValidation(t *testing.T) {
	if _, err := Fit(nil); err == nil {
		t.Fatal("empty samples")
	}
	bad := []Sample{{platform.CN, platform.Vanilla, core.CPUBound, 0, 1}}
	if _, err := Fit(bad); err == nil {
		t.Fatal("zero CHR")
	}
	bad[0].CHR = 1.5
	if _, err := Fit(bad); err == nil {
		t.Fatal("CHR above 1")
	}
	bad[0].CHR = 0.5
	bad[0].Ratio = math.NaN()
	if _, err := Fit(bad); err == nil {
		t.Fatal("NaN ratio")
	}
}

func TestPredictValidation(t *testing.T) {
	k := Key{platform.CN, platform.Vanilla, core.IOBound}
	m, _ := Fit(synthetic(k, 1, 1, 0.1, stdCHRs))
	if _, err := m.Predict(platform.VM, platform.Pinned, core.IOBound, 0.1); err == nil {
		t.Fatal("unfitted key must error")
	}
	if _, err := m.Predict(k.Platform, k.Mode, k.Class, 0); err == nil {
		t.Fatal("bad CHR must error")
	}
	if _, err := m.Predict(k.Platform, k.Mode, k.Class, 0.1); err != nil {
		t.Fatal(err)
	}
}

func TestMinCHRForInvertsCurve(t *testing.T) {
	k := Key{platform.CN, platform.Vanilla, core.UltraIOBound}
	m, _ := Fit(synthetic(k, 1.0, 2.5, 0.12, stdCHRs))
	chr, err := m.MinCHRFor(k.Platform, k.Mode, k.Class, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if chr <= 0 || chr > 1 {
		t.Fatalf("chr %v", chr)
	}
	// At the returned CHR the PSO must be at (or below) the budget.
	c, _ := m.Curve(k)
	if pso := c.PSO(chr); pso > 0.1+1e-6 {
		t.Fatalf("PSO at MinCHR = %v exceeds budget", pso)
	}
	// Slightly below it the budget must be exceeded (tightness).
	if pso := c.PSO(chr * 0.8); pso <= 0.1 {
		t.Fatalf("MinCHR not tight: PSO at 0.8·chr = %v", pso)
	}
	// A flat curve needs no minimum CHR.
	kf := Key{platform.VM, platform.Pinned, core.CPUBound}
	mf, _ := Fit(synthetic(kf, 2, 0, 1, stdCHRs))
	if chr, err := mf.MinCHRFor(kf.Platform, kf.Mode, kf.Class, 0.1); err != nil || chr != 0 {
		t.Fatalf("flat curve MinCHR = %v, %v", chr, err)
	}
	if _, err := m.MinCHRFor(k.Platform, k.Mode, k.Class, -1); err == nil {
		t.Fatal("negative budget must error")
	}
}

func TestIsolationLevels(t *testing.T) {
	order := []platform.Kind{platform.BM, platform.CN, platform.VM, platform.VMCN}
	prev := IsolationLevel(-1)
	for _, k := range order {
		l := Isolation(k)
		if l <= prev {
			t.Fatalf("isolation must increase along %v", order)
		}
		if l.String() == "" {
			t.Fatal("level string")
		}
		prev = l
	}
}

func TestIsolationMonotone(t *testing.T) {
	// CPU-bound, pinned: CN ≈ 1.05, VM = 2.0, VMCN = 2.1 — monotone.
	var samples []Sample
	samples = append(samples, synthetic(Key{platform.CN, platform.Pinned, core.CPUBound}, 1.05, 0, 1, stdCHRs)...)
	samples = append(samples, synthetic(Key{platform.VM, platform.Pinned, core.CPUBound}, 2.0, 0, 1, stdCHRs)...)
	samples = append(samples, synthetic(Key{platform.VMCN, platform.Pinned, core.CPUBound}, 2.1, 0, 1, stdCHRs)...)
	m, err := Fit(samples)
	if err != nil {
		t.Fatal(err)
	}
	vals, mono := m.IsolationMonotone(platform.Pinned, core.CPUBound, 0.14, 0.05)
	if !mono {
		t.Fatalf("CPU-bound overhead must grow with isolation: %v", vals)
	}
	if len(vals) != 3 || vals[0] >= vals[1] {
		t.Fatalf("vals %v", vals)
	}
	// Missing curves → not monotone, nil values.
	if vals, mono := m.IsolationMonotone(platform.Vanilla, core.CPUBound, 0.14, 0.05); mono || vals != nil {
		t.Fatal("missing curves must report failure")
	}
}

func TestKeysSorted(t *testing.T) {
	var samples []Sample
	for _, k := range []Key{
		{platform.VMCN, platform.Pinned, core.IOBound},
		{platform.CN, platform.Vanilla, core.CPUBound},
		{platform.CN, platform.Pinned, core.CPUBound},
	} {
		samples = append(samples, synthetic(k, 1.2, 0, 1, stdCHRs)...)
	}
	m, _ := Fit(samples)
	keys := m.Keys()
	if len(keys) != 3 {
		t.Fatalf("keys %v", keys)
	}
	for i := 1; i < len(keys); i++ {
		a, b := keys[i-1], keys[i]
		if a.Platform > b.Platform || (a.Platform == b.Platform && a.Mode > b.Mode) {
			t.Fatalf("keys unsorted: %v", keys)
		}
	}
	if keys[0].String() == "" {
		t.Fatal("key string")
	}
}

// Property: predictions are monotonically non-increasing in CHR (more cores
// never predict more size overhead) and never fall below the PTO.
func TestPredictMonotoneProperty(t *testing.T) {
	k := Key{platform.CN, platform.Vanilla, core.IOBound}
	m, err := Fit(synthetic(k, 1.1, 1.8, 0.1, stdCHRs))
	if err != nil {
		t.Fatal(err)
	}
	c, _ := m.Curve(k)
	f := func(a, b uint16) bool {
		x := float64(a%1000+1) / 1001
		y := float64(b%1000+1) / 1001
		if x > y {
			x, y = y, x
		}
		px, err1 := m.Predict(k.Platform, k.Mode, k.Class, x)
		py, err2 := m.Predict(k.Platform, k.Mode, k.Class, y)
		if err1 != nil || err2 != nil {
			return false
		}
		return px >= py-1e-12 && py >= c.PTO-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
