package model

import (
	"testing"

	"repro/internal/core"
	"repro/internal/platform"
)

// ioFixture fits curves shaped like the paper's Fig 5/6 findings: pinned CN
// at bare metal, vanilla CN with a strong PSO, VM family with a flat tax.
func ioFixture(t *testing.T) *Model {
	t.Helper()
	var samples []Sample
	add := func(k Key, pto, a, tau float64) {
		samples = append(samples, synthetic(k, pto, a, tau, stdCHRs)...)
	}
	add(Key{platform.CN, platform.Pinned, core.IOBound}, 0.98, 0, 1)
	add(Key{platform.CN, platform.Vanilla, core.IOBound}, 1.0, 2.2, 0.12)
	add(Key{platform.VM, platform.Pinned, core.IOBound}, 1.45, 0, 1)
	add(Key{platform.VM, platform.Vanilla, core.IOBound}, 1.55, 0, 1)
	add(Key{platform.VMCN, platform.Pinned, core.IOBound}, 1.40, 0, 1)
	add(Key{platform.VMCN, platform.Vanilla, core.IOBound}, 1.50, 0, 1)
	m, err := Fit(samples)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRecommendPrefersPinnedCN(t *testing.T) {
	m := ioFixture(t)
	best, err := m.Best(core.IOBound, 0.14, Constraints{AllowPinning: true})
	if err != nil {
		t.Fatal(err)
	}
	if best.Key.Platform != platform.CN || best.Key.Mode != platform.Pinned {
		t.Fatalf("best = %v; the paper's BP2/BP4 answer is pinned CN", best.Key)
	}
}

func TestRecommendWithoutPinningFollowsBP4(t *testing.T) {
	m := ioFixture(t)
	// Pinning ruled out at small CHR: best practice 4 says VMCN beats both
	// a VM and a vanilla container.
	best, err := m.Best(core.IOBound, 0.04, Constraints{AllowPinning: false})
	if err != nil {
		t.Fatal(err)
	}
	if best.Key.Platform != platform.VMCN {
		t.Fatalf("best without pinning at low CHR = %v; BP4 expects VMCN", best.Key)
	}
	// At high CHR the vanilla container's PSO is gone and it wins again.
	best, err = m.Best(core.IOBound, 0.5, Constraints{AllowPinning: false})
	if err != nil {
		t.Fatal(err)
	}
	if best.Key.Platform != platform.CN {
		t.Fatalf("best without pinning at high CHR = %v; the PSO has decayed", best.Key)
	}
}

func TestRecommendIsolationConstraint(t *testing.T) {
	m := ioFixture(t)
	best, err := m.Best(core.IOBound, 0.14, Constraints{
		AllowPinning: true,
		MinIsolation: IsolationHardware,
	})
	if err != nil {
		t.Fatal(err)
	}
	if Isolation(best.Key.Platform) < IsolationHardware {
		t.Fatalf("isolation constraint violated: %v", best.Key)
	}
	if best.Key.Platform != platform.VMCN || best.Key.Mode != platform.Pinned {
		t.Fatalf("under a VM boundary the cheapest fitted option is pinned VMCN, got %v", best.Key)
	}
}

func TestRecommendMaxOverheadFilters(t *testing.T) {
	m := ioFixture(t)
	ranked, err := m.Recommend(core.IOBound, 0.14, Constraints{AllowPinning: true, MaxOverhead: 1.2})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range ranked {
		if c.Predicted > 1.2 {
			t.Fatalf("budget violated: %+v", c)
		}
	}
	if _, err := m.Recommend(core.IOBound, 0.04, Constraints{MaxOverhead: 1.01}); err == nil {
		t.Fatal("impossible budget must error")
	}
}

func TestRecommendValidation(t *testing.T) {
	m := ioFixture(t)
	if _, err := m.Recommend(core.IOBound, 0, Constraints{}); err == nil {
		t.Fatal("bad CHR")
	}
	if _, err := m.Recommend(core.CPUBound, 0.14, Constraints{AllowPinning: true}); err == nil {
		t.Fatal("unfitted class must error")
	}
}

func TestRecommendRankingIsSorted(t *testing.T) {
	m := ioFixture(t)
	ranked, err := m.Recommend(core.IOBound, 0.1, Constraints{AllowPinning: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 6 {
		t.Fatalf("candidates: %d", len(ranked))
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Predicted < ranked[i-1].Predicted {
			t.Fatalf("ranking unsorted at %d: %v", i, ranked)
		}
	}
}
