// Package model implements the paper's stated future work (§VI): "a
// mathematical model to measure the overhead of a given virtualization
// platform based on the isolation level it offers."
//
// The model formalizes the paper's §IV decomposition. The overhead ratio of
// a deployment is
//
//	R(platform, mode, class, CHR) = PTO + PSO(CHR)
//	                              = PTO + A·exp(−CHR/τ)
//
// where PTO (Platform-Type Overhead) is the size-invariant component caused
// by the platform's abstraction layers — it grows with the isolation level
// and pinning cannot remove it — and PSO (Platform-Size Overhead) is the
// size-dependent component caused by host scheduling and cgroup accounting,
// which decays as the Container-to-Host core Ratio grows and which pinning
// suppresses. The exponential decay form follows the mechanism: the
// throttle/accounting churn per bandwidth period is roughly constant
// (bounded by the host's per-CPU structures) while the period's quota grows
// linearly with CHR, so the overhead *fraction* decays smoothly toward zero.
//
// Fit estimates (PTO, A, τ) per (platform, mode, class) from measured
// samples — simulator output or real testbed numbers — by asymptote
// extraction plus least squares on the log-residuals. Predict then answers
// the solution architect's question directly: what overhead should I expect
// if I deploy class C on platform P at this CHR?
package model

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/platform"
)

// IsolationLevel ranks the paper's platforms by the isolation they provide
// (§VI future work ties overhead to this level).
type IsolationLevel int

const (
	// IsolationNone: bare metal — shared kernel, no resource isolation.
	IsolationNone IsolationLevel = iota
	// IsolationNamespace: containers — namespace + cgroup isolation on a
	// shared kernel.
	IsolationNamespace
	// IsolationHardware: VMs — separate kernel on virtual hardware.
	IsolationHardware
	// IsolationNested: containers inside VMs — both layers.
	IsolationNested
)

func (l IsolationLevel) String() string {
	switch l {
	case IsolationNone:
		return "none (bare metal)"
	case IsolationNamespace:
		return "namespace (container)"
	case IsolationHardware:
		return "hardware (VM)"
	case IsolationNested:
		return "nested (container in VM)"
	}
	return fmt.Sprintf("IsolationLevel(%d)", int(l))
}

// Isolation returns the isolation level of a platform kind.
func Isolation(k platform.Kind) IsolationLevel {
	switch k {
	case platform.BM:
		return IsolationNone
	case platform.CN:
		return IsolationNamespace
	case platform.VM:
		return IsolationHardware
	case platform.VMCN:
		return IsolationNested
	}
	return IsolationNone
}

// Sample is one measured overhead point.
type Sample struct {
	Platform platform.Kind
	Mode     platform.Mode
	Class    core.AppClass
	// CHR is the deployment's cores over the host's cores (0 < CHR <= 1).
	CHR float64
	// Ratio is the measured overhead ratio vs. bare metal (>= 0; ratios
	// below 1 mean the platform beat bare metal, as pinned containers do
	// under extreme IO).
	Ratio float64
}

// Key identifies one fitted curve.
type Key struct {
	Platform platform.Kind
	Mode     platform.Mode
	Class    core.AppClass
}

func (k Key) String() string {
	return fmt.Sprintf("%s %s / %s", k.Mode, k.Platform, k.Class)
}

// Curve is the fitted overhead law for one key.
type Curve struct {
	// PTO is the size-invariant overhead ratio (the large-CHR asymptote).
	PTO float64
	// A is the PSO magnitude at CHR→0.
	A float64
	// Tau is the PSO decay constant in CHR units.
	Tau float64
	// N is the number of samples the curve was fitted on.
	N int
	// RMSE is the root-mean-square error of the fit over its samples.
	RMSE float64
}

// Predict evaluates the curve at a CHR.
func (c Curve) Predict(chr float64) float64 {
	if chr <= 0 {
		chr = 1e-9
	}
	return c.PTO + c.PSO(chr)
}

// PSO returns the size-dependent component at a CHR.
func (c Curve) PSO(chr float64) float64 {
	if c.Tau <= 0 || c.A <= 0 {
		return 0
	}
	return c.A * math.Exp(-chr/c.Tau)
}

// Model is a set of fitted curves.
type Model struct {
	curves map[Key]Curve
}

// Fit estimates one curve per (platform, mode, class) present in samples.
// Keys with fewer than two distinct CHR values get a flat curve (PTO = mean
// ratio, no PSO).
func Fit(samples []Sample) (*Model, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("model: no samples")
	}
	byKey := map[Key][]Sample{}
	for _, s := range samples {
		if s.CHR <= 0 || s.CHR > 1 {
			return nil, fmt.Errorf("model: sample CHR %v out of (0,1]", s.CHR)
		}
		if s.Ratio < 0 || math.IsNaN(s.Ratio) || math.IsInf(s.Ratio, 0) {
			return nil, fmt.Errorf("model: bad ratio %v", s.Ratio)
		}
		k := Key{s.Platform, s.Mode, s.Class}
		byKey[k] = append(byKey[k], s)
	}
	m := &Model{curves: make(map[Key]Curve, len(byKey))}
	for k, ss := range byKey {
		m.curves[k] = fitOne(ss)
	}
	return m, nil
}

// fitOne fits PTO + A·exp(−chr/τ) to one key's samples.
func fitOne(ss []Sample) Curve {
	sort.Slice(ss, func(i, j int) bool { return ss[i].CHR < ss[j].CHR })
	distinct := 1
	for i := 1; i < len(ss); i++ {
		if ss[i].CHR != ss[i-1].CHR {
			distinct++
		}
	}
	if distinct < 2 {
		mean := 0.0
		for _, s := range ss {
			mean += s.Ratio
		}
		mean /= float64(len(ss))
		return Curve{PTO: mean, N: len(ss)}
	}

	// PTO: the mean ratio of the largest-CHR cohort (the asymptote the
	// paper reads off the big instances).
	maxCHR := ss[len(ss)-1].CHR
	var ptoSum float64
	var ptoN int
	for _, s := range ss {
		if s.CHR >= maxCHR*0.999 {
			ptoSum += s.Ratio
			ptoN++
		}
	}
	pto := ptoSum / float64(ptoN)

	// Least squares on ln(residual) vs CHR for the samples with positive
	// residual: ln(R − PTO) = ln A − chr/τ.
	const eps = 1e-3
	var sx, sy, sxx, sxy float64
	var n float64
	for _, s := range ss {
		r := s.Ratio - pto
		if r <= eps {
			continue
		}
		x, y := s.CHR, math.Log(r)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
		n++
	}
	cur := Curve{PTO: pto, N: len(ss)}
	if n >= 2 {
		den := n*sxx - sx*sx
		if den > 0 {
			slope := (n*sxy - sx*sy) / den
			inter := (sy - slope*sx) / n
			if slope < 0 {
				cur.Tau = -1 / slope
				cur.A = math.Exp(inter)
			}
		}
	}
	// Residual error over all samples.
	var se float64
	for _, s := range ss {
		d := cur.Predict(s.CHR) - s.Ratio
		se += d * d
	}
	cur.RMSE = math.Sqrt(se / float64(len(ss)))
	return cur
}

// Curve returns the fitted curve for a key.
func (m *Model) Curve(k Key) (Curve, bool) {
	c, ok := m.curves[k]
	return c, ok
}

// Keys returns the fitted keys, sorted for stable iteration.
func (m *Model) Keys() []Key {
	out := make([]Key, 0, len(m.curves))
	for k := range m.curves {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Platform != b.Platform {
			return a.Platform < b.Platform
		}
		if a.Mode != b.Mode {
			return a.Mode < b.Mode
		}
		return a.Class < b.Class
	})
	return out
}

// Predict returns the expected overhead ratio for a deployment.
func (m *Model) Predict(k platform.Kind, mode platform.Mode, class core.AppClass, chr float64) (float64, error) {
	c, ok := m.curves[Key{k, mode, class}]
	if !ok {
		return 0, fmt.Errorf("model: no curve fitted for %v", Key{k, mode, class})
	}
	if chr <= 0 || chr > 1 {
		return 0, fmt.Errorf("model: CHR %v out of (0,1]", chr)
	}
	return c.Predict(chr), nil
}

// MinCHRFor inverts the curve: the smallest CHR at which the predicted PSO
// falls below psoBudget (e.g. 0.1 = "at most 10 points of size overhead").
// Returns 1 if no CHR in (0,1] satisfies the budget.
func (m *Model) MinCHRFor(k platform.Kind, mode platform.Mode, class core.AppClass, psoBudget float64) (float64, error) {
	c, ok := m.curves[Key{k, mode, class}]
	if !ok {
		return 0, fmt.Errorf("model: no curve fitted for %v", Key{k, mode, class})
	}
	if psoBudget <= 0 {
		return 0, fmt.Errorf("model: PSO budget must be positive")
	}
	if c.A <= 0 || c.Tau <= 0 || c.A <= psoBudget {
		return 0, nil // no size overhead to begin with
	}
	chr := c.Tau * math.Log(c.A/psoBudget)
	if chr > 1 {
		return 1, nil
	}
	if chr < 0 {
		return 0, nil
	}
	return chr, nil
}

// IsolationMonotone reports whether, for a class and mode at the given CHR,
// the fitted overhead grows with isolation level (the paper's hypothesis for
// CPU-bound applications). It returns the ordered per-level predictions; the
// bool is false when any step decreases by more than tol.
func (m *Model) IsolationMonotone(mode platform.Mode, class core.AppClass, chr, tol float64) ([]float64, bool) {
	kinds := []platform.Kind{platform.CN, platform.VM, platform.VMCN}
	var out []float64
	ok := true
	prev := 1.0 // bare metal ratio is 1 by definition
	for _, k := range kinds {
		v, err := m.Predict(k, mode, class, chr)
		if err != nil {
			return nil, false
		}
		out = append(out, v)
		if v < prev-tol {
			ok = false
		}
		prev = v
	}
	return out, ok
}
