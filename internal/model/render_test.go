package model

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/platform"
)

func TestRenderTable(t *testing.T) {
	var samples []Sample
	samples = append(samples, synthetic(Key{platform.VM, platform.Pinned, core.CPUBound}, 2.0, 0, 1, stdCHRs)...)
	samples = append(samples, synthetic(Key{platform.CN, platform.Vanilla, core.IOBound}, 1.0, 2.0, 0.1, stdCHRs)...)
	m, err := Fit(samples)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	m.Render(&buf, 112)
	out := buf.String()
	for _, want := range []string{"ANALYTIC OVERHEAD MODEL", "PTO", "tau", "R@16", "Pinned VM / cpu-bound", "Vanilla CN / io-bound"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// Without a host size the per-instance columns degrade to dashes.
	var nohost bytes.Buffer
	m.Render(&nohost, 0)
	if !strings.Contains(nohost.String(), "-") {
		t.Fatal("hostless render must dash the predictions")
	}
}
