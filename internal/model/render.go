package model

import (
	"fmt"
	"io"
)

// Render writes the fitted curves as a table: one row per key with the PTO,
// PSO magnitude and decay, fit quality, and sample predictions at the
// paper's instance sizes.
func (m *Model) Render(w io.Writer, hostCPUs int) {
	fmt.Fprintf(w, "ANALYTIC OVERHEAD MODEL — R(CHR) = PTO + A·exp(−CHR/τ)   (§VI future work)\n")
	fmt.Fprintf(w, "%-34s %-9s %6s %8s %8s %6s", "deployment", "isolation", "PTO", "A", "tau", "RMSE")
	sizes := []int{2, 4, 8, 16, 32, 64}
	for _, c := range sizes {
		fmt.Fprintf(w, " %7s", fmt.Sprintf("R@%d", c))
	}
	fmt.Fprintln(w)
	for _, k := range m.Keys() {
		c, _ := m.Curve(k)
		fmt.Fprintf(w, "%-34s %-9d %6.2f %8.3f %8.3f %6.3f",
			k.String(), int(Isolation(k.Platform)), c.PTO, c.A, c.Tau, c.RMSE)
		for _, cores := range sizes {
			if hostCPUs > 0 && cores <= hostCPUs {
				fmt.Fprintf(w, " %7.2f", c.Predict(float64(cores)/float64(hostCPUs)))
			} else {
				fmt.Fprintf(w, " %7s", "-")
			}
		}
		fmt.Fprintln(w)
	}
}
