package model

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/platform"
)

// Constraints narrow a model-driven platform recommendation. The zero value
// allows everything the model has a curve for.
type Constraints struct {
	// MinIsolation excludes platforms below this isolation level (e.g.
	// IsolationHardware forces a VM boundary for untrusted tenants).
	MinIsolation IsolationLevel
	// AllowPinning permits pinned modes. The paper notes pinning costs
	// operational flexibility (§I: "extensive CPU pinning incurs a higher
	// cost and makes the host management more challenging"), so policy may
	// rule it out.
	AllowPinning bool
	// MaxOverhead rejects candidates whose predicted ratio exceeds it
	// (0 = no bound).
	MaxOverhead float64
}

// Choice is one ranked candidate from Recommend.
type Choice struct {
	Key Key
	// Predicted is the expected overhead ratio at the asked CHR.
	Predicted float64
}

// Recommend ranks the fitted deployments for an application class at a CHR
// under the given constraints and returns them best-first. This is the
// data-driven counterpart of core.Advise: instead of encoding the paper's
// conclusions as rules, it reads them off the fitted overhead curves — and
// automatically reflects whatever testbed the model was fitted on.
func (m *Model) Recommend(class core.AppClass, chr float64, c Constraints) ([]Choice, error) {
	if chr <= 0 || chr > 1 {
		return nil, fmt.Errorf("model: CHR %v out of (0,1]", chr)
	}
	var out []Choice
	for _, k := range m.Keys() {
		if k.Class != class {
			continue
		}
		if Isolation(k.Platform) < c.MinIsolation {
			continue
		}
		if !c.AllowPinning && k.Mode == platform.Pinned {
			continue
		}
		cur, _ := m.Curve(k)
		pred := cur.Predict(chr)
		if c.MaxOverhead > 0 && pred > c.MaxOverhead {
			continue
		}
		out = append(out, Choice{Key: k, Predicted: pred})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("model: no fitted deployment satisfies the constraints for %v at CHR %.3f", class, chr)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Predicted != out[j].Predicted {
			return out[i].Predicted < out[j].Predicted
		}
		// Tie-break toward less isolation (less operational weight) and
		// vanilla mode (more scheduling flexibility).
		if a, b := Isolation(out[i].Key.Platform), Isolation(out[j].Key.Platform); a != b {
			return a < b
		}
		return out[i].Key.Mode < out[j].Key.Mode
	})
	return out, nil
}

// Best returns Recommend's top choice.
func (m *Model) Best(class core.AppClass, chr float64, c Constraints) (Choice, error) {
	ranked, err := m.Recommend(class, chr, c)
	if err != nil {
		return Choice{}, err
	}
	return ranked[0], nil
}
