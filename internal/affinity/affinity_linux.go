//go:build linux

// Package affinity provides the real pinning mechanics the paper's operators
// use: sched_setaffinity / sched_getaffinity via raw syscalls (what taskset
// does), goroutine-to-CPU pinning, and host topology discovery from sysfs.
// It is the operational counterpart of the simulator: cmd/pinctl and
// cmd/pinbench use it to pin actual processes on the current machine.
package affinity

import (
	"fmt"
	"runtime"
	"syscall"
	"unsafe"

	"repro/internal/topology"
)

// maskWords is sized for kernels up to 1024 CPUs, matching topology.MaxCPUs.
const maskWords = topology.MaxCPUs / 64

// cpuMask is the kernel's cpu_set_t bit layout.
type cpuMask [maskWords]uint64

func maskFromSet(s topology.CPUSet) cpuMask {
	var m cpuMask
	s.ForEach(func(c int) bool {
		m[c/64] |= 1 << uint(c%64)
		return true
	})
	return m
}

func setFromMask(m cpuMask) topology.CPUSet {
	var s topology.CPUSet
	for w, bits := range m {
		for b := 0; b < 64; b++ {
			if bits&(1<<uint(b)) != 0 {
				s.Add(w*64 + b)
			}
		}
	}
	return s
}

// Set binds pid (0 = calling thread) to the given CPU set.
func Set(pid int, s topology.CPUSet) error {
	if s.IsEmpty() {
		return fmt.Errorf("affinity: refusing to set an empty CPU set on pid %d", pid)
	}
	m := maskFromSet(s)
	_, _, errno := syscall.RawSyscall(syscall.SYS_SCHED_SETAFFINITY,
		uintptr(pid), uintptr(len(m)*8), uintptr(unsafe.Pointer(&m[0])))
	if errno != 0 {
		return fmt.Errorf("affinity: sched_setaffinity(pid=%d, %q): %w", pid, s.String(), errno)
	}
	return nil
}

// Get returns the CPU set pid (0 = calling thread) is allowed to run on.
func Get(pid int) (topology.CPUSet, error) {
	var m cpuMask
	_, _, errno := syscall.RawSyscall(syscall.SYS_SCHED_GETAFFINITY,
		uintptr(pid), uintptr(len(m)*8), uintptr(unsafe.Pointer(&m[0])))
	if errno != 0 {
		return topology.CPUSet{}, fmt.Errorf("affinity: sched_getaffinity(pid=%d): %w", pid, errno)
	}
	return setFromMask(m), nil
}

// PinnedRun locks the calling goroutine to an OS thread, pins that thread to
// the CPU set, runs fn, and restores the previous affinity. This is how the
// real benchmarks (cmd/pinbench) execute "pinned" workers.
func PinnedRun(s topology.CPUSet, fn func() error) error {
	runtime.LockOSThread()
	defer runtime.UnlockOSThread()
	prev, err := Get(0)
	if err != nil {
		return err
	}
	if err := Set(0, s); err != nil {
		return err
	}
	defer func() {
		_ = Set(0, prev) // best effort restore; the thread is ours anyway
	}()
	return fn()
}

// Supported reports whether real affinity syscalls work here.
func Supported() bool {
	_, err := Get(0)
	return err == nil
}
