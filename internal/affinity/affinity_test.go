package affinity

import (
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"testing"

	"repro/internal/topology"
)

func TestGetSelf(t *testing.T) {
	if !Supported() {
		t.Skip("affinity syscalls unsupported here")
	}
	set, err := Get(0)
	if err != nil {
		t.Fatal(err)
	}
	if set.IsEmpty() {
		t.Fatal("calling thread must be allowed somewhere")
	}
}

func TestSetAndRestoreSelf(t *testing.T) {
	if !Supported() {
		t.Skip("affinity syscalls unsupported here")
	}
	runtime.LockOSThread()
	defer runtime.UnlockOSThread()
	orig, err := Get(0)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := Set(0, orig); err != nil {
			t.Fatalf("restoring affinity: %v", err)
		}
	}()
	one := topology.NewCPUSet(orig.First())
	if err := Set(0, one); err != nil {
		t.Fatal(err)
	}
	got, err := Get(0)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(one) {
		t.Fatalf("got %v, want %v", got, one)
	}
}

func TestSetEmptyRejected(t *testing.T) {
	if err := Set(0, topology.CPUSet{}); err == nil {
		t.Fatal("empty set must be rejected before the syscall")
	}
}

func TestSetBadPID(t *testing.T) {
	if !Supported() {
		t.Skip("affinity syscalls unsupported here")
	}
	// PID 1 denies us (EPERM) or a wild pid gives ESRCH; either way: error.
	if err := Set(1<<22+12345, topology.NewCPUSet(0)); err == nil {
		t.Fatal("bogus pid must fail")
	}
}

func TestPinnedRunRestores(t *testing.T) {
	if !Supported() {
		t.Skip("affinity syscalls unsupported here")
	}
	orig, _ := Get(0)
	ran := false
	err := PinnedRun(topology.NewCPUSet(orig.First()), func() error {
		ran = true
		cur, err := Get(0)
		if err != nil {
			return err
		}
		if cur.Count() != 1 {
			t.Errorf("not pinned inside PinnedRun: %v", cur)
		}
		return nil
	})
	if err != nil || !ran {
		t.Fatalf("PinnedRun: %v ran=%v", err, ran)
	}
}

func TestDiscoverFallback(t *testing.T) {
	info := discoverFrom(filepath.Join(t.TempDir(), "missing"))
	if info.CPUs != runtime.NumCPU() {
		t.Fatalf("fallback cpus %d", info.CPUs)
	}
	if info.Online.Count() == 0 {
		t.Fatal("fallback online set empty")
	}
	topo, err := info.Topology()
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumCPUs() < info.CPUs {
		t.Fatalf("topology %v smaller than discovered %d", topo, info.CPUs)
	}
}

// fakeSysfs builds a sysfs-like tree: 2 sockets × 2 cores × 2 threads.
func fakeSysfs(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	cpu := 0
	for pkg := 0; pkg < 2; pkg++ {
		for core := 0; core < 2; core++ {
			for th := 0; th < 2; th++ {
				dir := filepath.Join(root, "cpu"+strconv.Itoa(cpu), "topology")
				if err := os.MkdirAll(dir, 0o755); err != nil {
					t.Fatal(err)
				}
				os.WriteFile(filepath.Join(dir, "physical_package_id"), []byte(strconv.Itoa(pkg)), 0o644)
				os.WriteFile(filepath.Join(dir, "core_id"), []byte(strconv.Itoa(core)), 0o644)
				cpu++
			}
		}
	}
	// Distractors that must be ignored.
	os.MkdirAll(filepath.Join(root, "cpufreq"), 0o755)
	os.MkdirAll(filepath.Join(root, "cpuidle"), 0o755)
	return root
}

func TestDiscoverFromSysfs(t *testing.T) {
	info := discoverFrom(fakeSysfs(t))
	if info.CPUs != 8 || info.Sockets != 2 || info.CoresPerSocket != 2 || info.ThreadsPerCore != 2 {
		t.Fatalf("discovered %+v", info)
	}
	topo, err := info.Topology()
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumCPUs() != 8 || topo.Sockets != 2 {
		t.Fatalf("topology %v", topo)
	}
}

func TestDiscoverIgnoresPartialEntries(t *testing.T) {
	root := fakeSysfs(t)
	// cpu without topology info: skipped, not fatal.
	os.MkdirAll(filepath.Join(root, "cpu99"), 0o755)
	info := discoverFrom(root)
	if info.CPUs != 8 {
		t.Fatalf("partial cpu entry corrupted discovery: %+v", info)
	}
}
