package affinity

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"repro/internal/topology"
)

// HostInfo describes the discovered topology of the current machine.
type HostInfo struct {
	CPUs    int
	Sockets int
	// CoresPerSocket counts physical cores (0 when undiscoverable).
	CoresPerSocket int
	ThreadsPerCore int
	// Online is the set of online logical CPUs.
	Online topology.CPUSet
}

// Topology converts the discovery into a simulator topology, defaulting
// missing dimensions to a flat layout.
func (h HostInfo) Topology() (*topology.Topology, error) {
	sockets := h.Sockets
	if sockets <= 0 {
		sockets = 1
	}
	threads := h.ThreadsPerCore
	if threads <= 0 {
		threads = 1
	}
	cores := h.CoresPerSocket
	if cores <= 0 {
		cores = h.CPUs / (sockets * threads)
	}
	if cores <= 0 {
		cores = 1
	}
	return topology.New(hostName(), sockets, cores, threads)
}

func hostName() string {
	if n, err := os.Hostname(); err == nil && n != "" {
		return n
	}
	return "localhost"
}

// Discover inspects /sys/devices/system/cpu (Linux) or falls back to
// runtime.NumCPU on other platforms or restricted environments.
func Discover() HostInfo {
	return discoverFrom("/sys/devices/system/cpu")
}

// discoverFrom is Discover against an alternate sysfs root (for tests).
func discoverFrom(root string) HostInfo {
	info := HostInfo{CPUs: runtime.NumCPU(), Sockets: 1, ThreadsPerCore: 1}
	for c := 0; c < info.CPUs && c < topology.MaxCPUs; c++ {
		info.Online.Add(c)
	}
	entries, err := os.ReadDir(root)
	if err != nil {
		return info
	}
	type coreID struct{ socket, core int }
	sockets := map[int]bool{}
	cores := map[coreID]int{}
	var online topology.CPUSet
	n := 0
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "cpu") {
			continue
		}
		id, err := strconv.Atoi(strings.TrimPrefix(name, "cpu"))
		if err != nil || id >= topology.MaxCPUs {
			continue
		}
		topo := filepath.Join(root, name, "topology")
		pkg, err1 := readInt(filepath.Join(topo, "physical_package_id"))
		core, err2 := readInt(filepath.Join(topo, "core_id"))
		if err1 != nil || err2 != nil {
			continue
		}
		n++
		online.Add(id)
		sockets[pkg] = true
		cores[coreID{pkg, core}]++
	}
	if n == 0 {
		return info
	}
	info.CPUs = n
	info.Online = online
	info.Sockets = len(sockets)
	if len(cores) > 0 {
		info.CoresPerSocket = len(cores) / len(sockets)
		threadCounts := make([]int, 0, len(cores))
		for _, c := range cores {
			threadCounts = append(threadCounts, c)
		}
		sort.Ints(threadCounts)
		info.ThreadsPerCore = threadCounts[len(threadCounts)/2]
	}
	return info
}

func readInt(path string) (int, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	v, err := strconv.Atoi(strings.TrimSpace(string(b)))
	if err != nil {
		return 0, fmt.Errorf("affinity: parsing %s: %w", path, err)
	}
	return v, nil
}
