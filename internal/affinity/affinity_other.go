//go:build !linux

package affinity

import (
	"errors"

	"repro/internal/topology"
)

// ErrUnsupported is returned on platforms without sched_setaffinity.
var ErrUnsupported = errors.New("affinity: CPU affinity is only supported on Linux")

// Set is unsupported on this platform.
func Set(pid int, s topology.CPUSet) error { return ErrUnsupported }

// Get is unsupported on this platform.
func Get(pid int) (topology.CPUSet, error) { return topology.CPUSet{}, ErrUnsupported }

// PinnedRun runs fn without pinning on this platform.
func PinnedRun(s topology.CPUSet, fn func() error) error { return fn() }

// Supported reports whether real affinity syscalls work here.
func Supported() bool { return false }
