package storecli

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiments"
)

// unusableStorePath returns a -store path whose parent is a plain file, so
// opening it fails with ENOTDIR for any user — including root, which a
// chmod-based read-only directory would not stop.
func unusableStorePath(t *testing.T) string {
	t.Helper()
	file := filepath.Join(t.TempDir(), "plain-file")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	return filepath.Join(file, "store")
}

// TestApplyRejectsBadDegradedPolicy: -store-degraded only accepts the two
// documented policies.
func TestApplyRejectsBadDegradedPolicy(t *testing.T) {
	var cfg experiments.Config
	_, _, err := Apply("prog", &cfg, Options{Store: t.TempDir(), Degraded: "maybe"})
	if err == nil || !strings.Contains(err.Error(), `"fail"`) || !strings.Contains(err.Error(), `"allow"`) {
		t.Fatalf("err = %v, want the two valid policies named", err)
	}
}

// TestApplyFailsFastWithHint: an unusable -store directory under the
// default policy aborts before any simulation, with a message naming both
// the problem and the escape hatch.
func TestApplyFailsFastWithHint(t *testing.T) {
	var cfg experiments.Config
	_, _, err := Apply("prog", &cfg, Options{Store: unusableStorePath(t)})
	if err == nil {
		t.Fatal("an unusable store directory must fail fast by default")
	}
	msg := err.Error()
	if !strings.Contains(msg, "cannot create store directory") {
		t.Fatalf("error %q does not name the problem", msg)
	}
	if !strings.Contains(msg, "-store-degraded=allow") {
		t.Fatalf("error %q does not offer the degraded-mode escape hatch", msg)
	}
}

// TestApplyDegradedAllowRunsMemoryOnly: the allow policy turns the same
// failure into a usable in-memory store, and finish() still works.
func TestApplyDegradedAllowRunsMemoryOnly(t *testing.T) {
	var cfg experiments.Config
	_, finish, err := Apply("prog", &cfg, Options{Store: unusableStorePath(t), Degraded: DegradedAllow})
	if err != nil {
		t.Fatalf("allow policy still failed: %v", err)
	}
	if cfg.Memo == nil {
		t.Fatal("no store installed")
	}
	cfg.Memo.Put(1, experiments.TrialResult{Metric: 2.5})
	if r, ok := cfg.Memo.Get(1); !ok || r.Metric != 2.5 {
		t.Fatal("degraded store dropped a result")
	}
	if st := cfg.Memo.Stats(); !st.Degraded || st.Unpersisted != 1 {
		t.Fatalf("stats = %+v, want a degraded store counting unpersisted results", st)
	}
	finish()
}

// TestApplyHealthyStoreUnaffectedByPolicy: the allow policy is inert when
// the directory is fine — results persist exactly as under fail.
func TestApplyHealthyStoreUnaffectedByPolicy(t *testing.T) {
	dir := t.TempDir()
	var cfg experiments.Config
	_, finish, err := Apply("prog", &cfg, Options{Store: dir, Degraded: DegradedAllow})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Memo.Put(7, experiments.TrialResult{Metric: 1})
	if st := cfg.Memo.Stats(); st.Degraded || st.Appended != 1 {
		t.Fatalf("stats = %+v, want a healthy persisting store", st)
	}
	finish()
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.psr"))
	if len(segs) != 1 {
		t.Fatalf("store wrote %d segments, want 1", len(segs))
	}
}
