// Package storecli wires the durable-trial-store CLI surface shared by
// pinsim and pinsweep — the -store / -merge / -shard / -store-degraded /
// -v flags — into an experiments.Config, so the commands cannot drift
// apart in store semantics.
package storecli

import (
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/resultstore"
)

// Degraded-mode policies for an unusable -store directory.
const (
	// DegradedFail (the default) fails fast at open with a clear message,
	// before any simulation time is spent.
	DegradedFail = "fail"
	// DegradedAllow demotes the store to its in-memory tier with one
	// warning line: the run completes with identical output, it just is
	// not incremental.
	DegradedAllow = "allow"
)

// Options are the parsed values of the shared flags.
type Options struct {
	// Store is the durable trial store directory ("" = none).
	Store string
	// Merge is the comma list of store directories to load before running.
	Merge string
	// Shard is the "i/n" grid partition to run ("" = the whole grid).
	Shard string
	// Degraded is the -store-degraded policy for an unusable store
	// directory: DegradedFail ("" or "fail") or DegradedAllow ("allow").
	Degraded string
	// Workers is the CLI -workers value, carried into the shard's inner
	// pool (the default pool reads it from Config.Workers directly).
	Workers int
	// Verbose prints the store statistics line at finish.
	Verbose bool
}

// Apply opens the store (or an in-memory memo when only -merge/-v need
// one), loads merged stores, and installs the shard executor. It reports
// whether the run is sharded — sharded runs should not render their
// partial figures — and returns a finish func to defer: it prints the -v
// statistics line (prefixed "prog: ") and closes the store.
func Apply(prog string, cfg *experiments.Config, o Options) (sharded bool, finish func(), err error) {
	var storeOpts []resultstore.Option
	switch o.Degraded {
	case "", DegradedFail:
	case DegradedAllow:
		storeOpts = append(storeOpts, resultstore.WithDegradedFallback(true))
	default:
		return false, nil, fmt.Errorf("%s: -store-degraded=%q (want %q or %q)", prog, o.Degraded, DegradedFail, DegradedAllow)
	}
	if o.Store != "" {
		ts, err := experiments.OpenTrialStore(o.Store, storeOpts...)
		if err != nil {
			return false, nil, fmt.Errorf("%w\n%s: fix the -store path, or pass -store-degraded=%s to run without persistence", err, prog, DegradedAllow)
		}
		cfg.Memo = ts
	} else if o.Merge != "" || o.Verbose {
		cfg.Memo = experiments.NewTrialMemo()
	}
	if o.Merge != "" {
		if err := experiments.MergeTrialStores(cfg.Memo, splitList(o.Merge)...); err != nil {
			return false, nil, err
		}
	}
	if o.Shard != "" {
		idx, count, err := experiments.ParseShard(o.Shard)
		if err != nil {
			return false, nil, err
		}
		cfg.Executor = experiments.Shard{Index: idx, Count: count, Inner: experiments.Pool{Workers: o.Workers}}
		if o.Store == "" {
			fmt.Fprintf(os.Stderr, "%s: warning: -shard without -store discards the shard's results when the process exits\n", prog)
		}
		sharded = true
	}
	st := cfg.Memo
	finish = func() {
		if st == nil {
			return
		}
		if o.Verbose {
			fmt.Fprintln(os.Stderr, prog+": "+experiments.StoreStatsLine(st))
			if n := experiments.MemoBypassCount(); n > 0 {
				fmt.Fprintf(os.Stderr, "%s: store: %d runs bypassed the memo (MutateHost set)\n", prog, n)
			}
		}
		if err := st.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: store close: %v\n", prog, err)
		}
	}
	return sharded, finish, nil
}

// splitList splits a comma list, dropping empty entries.
func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}
