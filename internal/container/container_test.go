package container

import (
	"math"
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/topology"
)

func host() *machine.Machine {
	return machine.MustNew(machine.HostDefaults(topology.PaperHost(), 1))
}

func TestVanillaContainerUsesQuota(t *testing.T) {
	cn, err := Create(host(), Spec{Name: "v", Cores: 4})
	if err != nil {
		t.Fatal(err)
	}
	if cn.Group.QuotaCores != 4 {
		t.Fatalf("quota %v", cn.Group.QuotaCores)
	}
	if !cn.Group.CPUs.IsEmpty() {
		t.Fatal("vanilla container must not have a cpuset")
	}
	if cn.Mode() != "vanilla" {
		t.Fatal(cn.Mode())
	}
}

func TestPinnedContainerUsesCpuset(t *testing.T) {
	cn, err := Create(host(), Spec{Name: "p", Cores: 4, Pinned: true, NearCPU: 2})
	if err != nil {
		t.Fatal(err)
	}
	if cn.Group.QuotaCores != 0 {
		t.Fatal("pinned container must not have a quota")
	}
	if cn.Group.CPUs.Count() != 4 {
		t.Fatalf("cpuset %v", cn.Group.CPUs)
	}
	if cn.Mode() != "pinned" {
		t.Fatal(cn.Mode())
	}
	if !strings.Contains(cn.String(), "pinned") {
		t.Fatal(cn.String())
	}
}

func TestCHRComputation(t *testing.T) {
	cn, _ := Create(host(), Spec{Name: "c", Cores: 16})
	if got := cn.CHR(); math.Abs(got-16.0/112.0) > 1e-9 {
		t.Fatalf("CHR = %v", got)
	}
}

func TestCreateValidation(t *testing.T) {
	if _, err := Create(host(), Spec{Name: "zero", Cores: 0}); err == nil {
		t.Fatal("zero cores must fail")
	}
	if _, err := Create(host(), Spec{Name: "huge", Cores: 1000}); err == nil {
		t.Fatal("oversize container must fail")
	}
}

func TestCreatePinnedSet(t *testing.T) {
	m := host()
	set := m.Topo.PinPlan(6, 2)
	cn, err := CreatePinnedSet(m, "managed", set)
	if err != nil {
		t.Fatal(err)
	}
	if !cn.Group.CPUs.Equal(set) {
		t.Fatalf("cpuset %v, want %v", cn.Group.CPUs, set)
	}
	if cn.Group.QuotaCores != 0 {
		t.Fatal("explicit-set container must not carry a quota")
	}
	if cn.Spec.Cores != 6 || !cn.Spec.Pinned || cn.Mode() != "pinned" {
		t.Fatalf("spec: %+v", cn.Spec)
	}
	if math.Abs(cn.CHR()-6.0/112.0) > 1e-9 {
		t.Fatalf("CHR %v", cn.CHR())
	}
}

func TestCreatePinnedSetValidation(t *testing.T) {
	m := host()
	if _, err := CreatePinnedSet(m, "empty", topology.CPUSet{}); err == nil {
		t.Fatal("empty cpuset must fail")
	}
	if _, err := CreatePinnedSet(m, "oob", topology.NewCPUSet(500)); err == nil {
		t.Fatal("out-of-range cpuset must fail")
	}
}
