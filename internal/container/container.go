// Package container models the Docker container layer (paper §II-C): a
// container is "an abstraction created by the coupling of namespace and
// cgroups modules of the host OS". Namespaces are performance-transparent in
// this model; the cgroup coupling is exactly Docker's two CPU provisioning
// knobs:
//
//   - vanilla: --cpus=N        → CFS bandwidth quota, all CPUs allowed
//   - pinned:  --cpuset-cpus=… → static cpuset, no quota
//
// which are the two modes the paper compares.
package container

import (
	"fmt"

	"repro/internal/cgroups"
	"repro/internal/machine"
	"repro/internal/topology"
)

// Spec describes one container instance.
type Spec struct {
	Name  string
	Cores int
	// Pinned selects --cpuset-cpus (static set) rather than --cpus (quota).
	Pinned bool
	// NearCPU biases the pinned set toward a CPU (the IO IRQ home); -1 lets
	// the plan start at socket 0.
	NearCPU int
}

// Container is a deployed container: its cgroup plus bookkeeping.
type Container struct {
	Spec  Spec
	Group *cgroups.Group
	Host  *topology.Topology
}

// Create attaches a container's cgroup to a machine (the bare-metal host for
// CN, a guest for VMCN).
func Create(m *machine.Machine, spec Spec) (*Container, error) {
	if spec.Cores <= 0 {
		return nil, fmt.Errorf("container %q: cores must be positive", spec.Name)
	}
	if spec.Cores > m.Topo.NumCPUs() {
		return nil, fmt.Errorf("container %q: %d cores exceeds host's %d CPUs",
			spec.Name, spec.Cores, m.Topo.NumCPUs())
	}
	var g *cgroups.Group
	if spec.Pinned {
		set := m.Topo.PinPlan(spec.Cores, spec.NearCPU)
		g = m.NewGroup(spec.Name, 0, set)
	} else {
		g = m.NewGroup(spec.Name, float64(spec.Cores), topology.CPUSet{})
	}
	return &Container{Spec: spec, Group: g, Host: m.Topo}, nil
}

// CreatePinnedSet attaches a container pinned to an explicit cpuset — the
// form a CPU-manager policy (internal/cpumanager) drives: the allocator
// chooses the CPUs, Docker receives them verbatim via --cpuset-cpus.
func CreatePinnedSet(m *machine.Machine, name string, set topology.CPUSet) (*Container, error) {
	if set.IsEmpty() {
		return nil, fmt.Errorf("container %q: empty cpuset", name)
	}
	if !set.IsSubsetOf(m.Topo.AllCPUs()) {
		return nil, fmt.Errorf("container %q: cpuset %v outside host CPUs", name, set)
	}
	g := m.NewGroup(name, 0, set)
	return &Container{
		Spec:  Spec{Name: name, Cores: set.Count(), Pinned: true, NearCPU: set.First()},
		Group: g,
		Host:  m.Topo,
	}, nil
}

// CHR is the paper's Container-to-Host core Ratio (§IV-A): assigned cores
// over total host cores.
func (c *Container) CHR() float64 {
	return float64(c.Spec.Cores) / float64(c.Host.NumCPUs())
}

// Mode returns the provisioning mode string used in the figures.
func (c *Container) Mode() string {
	if c.Spec.Pinned {
		return "pinned"
	}
	return "vanilla"
}

func (c *Container) String() string {
	return fmt.Sprintf("container %s: %d cores, %s, CHR=%.2f",
		c.Spec.Name, c.Spec.Cores, c.Mode(), c.CHR())
}
