package hypotheses

// The built-in hypothesis catalog: the paper's headline claims plus
// cross-platform claims from the related studies (PAPERS.md: Agasizade et
// al.'s container-on-VM measurements, van Rijn & Rellermeyer's isolation-
// platform comparison), each encoded as a falsifiable statement over a
// registered scenario. Four run on the paper's own figure scenarios; two
// run on dedicated scenarios registered here (nesting depth beyond the
// paper's two levels, K-tenant co-location on an oversubscribed host) —
// the composable Stack model makes those one literal each. Statuses are
// whatever the evidence says: a Refuted row is a finding, not a failure
// (the claim was falsifiable and the simulator falsified it), and the
// committed FINDINGS.md pins every status as a regression gate.

import (
	"repro/internal/experiments"
	"repro/internal/platform"
)

func init() {
	registerScenarios()
	registerCatalog()
}

// registerScenarios adds the two dedicated hypothesis scenarios to the
// experiments registry, making them runnable (and inspectable) through the
// ordinary -scenario CLI surface too.
func registerScenarios() {
	// hyp-depth: nesting depth ladder. The paper stops at VMCN (depth 2);
	// this scenario extends the ladder to a VM-in-VM and a CN-in-VM-in-VM
	// so depth-compounding claims have a third point.
	experiments.MustRegisterScenario(experiments.Scenario{
		Name:  "hyp-depth",
		Title: "Hypothesis scenario: virtualization nesting depth ladder",
		Description: "Nesting ladder for the depth-compounding hypotheses: BM, VM, " +
			"VM-in-VM and CN-in-VM-in-VM running FFmpeg on a 4xLarge instance.",
		SeedTag:  []uint64{0xD0},
		Reps:     5,
		Baseline: "Vanilla BM",
		Workload: &experiments.WorkloadSpec{Driver: "ffmpeg"},
		Series: []experiments.ScenarioSeries{
			{Platform: &platform.Spec{Kind: platform.BM, Mode: platform.Vanilla}},
			{Platform: &platform.Spec{Kind: platform.VM, Mode: platform.Vanilla}},
			{Label: "Vanilla VM2", Stack: platform.Stack{Layers: []platform.Layer{
				{Kind: platform.LayerHost},
				{Kind: platform.LayerGuest},
				{Kind: platform.LayerGuest},
			}}},
			{Label: "Vanilla VM2CN", Stack: platform.Stack{Layers: []platform.Layer{
				{Kind: platform.LayerHost},
				{Kind: platform.LayerGuest},
				{Kind: platform.LayerGuest},
				{Kind: platform.LayerCgroup},
			}}},
		},
		Cells: []experiments.ScenarioCell{{Label: "4xLarge", Cores: 16, MemGB: 64}},
	})

	// hyp-tenants: K-tenant co-location on the 16-core host. Two tenants of
	// 8 cores fit exactly; four oversubscribe the host 2×, which wraps the
	// pinned tenants' cpusets onto shared cores while quota tenants float.
	tenants := func(k int, pinned bool) platform.Stack {
		ts := make([]platform.TenantSpec, k)
		for i := range ts {
			ts[i] = platform.TenantSpec{Cores: 8, Pinned: pinned}
		}
		return platform.Stack{
			Layers:  []platform.Layer{{Kind: platform.LayerHost}},
			Tenants: ts,
		}
	}
	experiments.MustRegisterScenario(experiments.Scenario{
		Name:  "hyp-tenants",
		Title: "Hypothesis scenario: K co-located tenants on an oversubscribed host",
		Description: "Co-location grid for the pinning-inversion hypothesis: K tenants " +
			"of 8 cores each on the 16-core host (K=2 fits, K=4 oversubscribes 2x), " +
			"with pinned disjoint-then-wrapping cpusets vs floating CFS quotas.",
		XTitle:   "Tenant isolation",
		SeedTag:  []uint64{0xC0},
		Reps:     5,
		Workload: &experiments.WorkloadSpec{Driver: "ffmpeg"},
		Series: []experiments.ScenarioSeries{
			{Label: "Pinned x2", Stack: tenants(2, true)},
			{Label: "Quota x2", Stack: tenants(2, false)},
			{Label: "Pinned x4", Stack: tenants(4, true)},
			{Label: "Quota x4", Stack: tenants(4, false)},
		},
		Cells: []experiments.ScenarioCell{{Label: "8-core tenants", Host: "small16", Cores: 8}},
	})
}

// registerCatalog registers the built-in hypotheses.
func registerCatalog() {
	// H1 — the paper's premise (§IV, Fig 3): virtualization costs real
	// execution time on a CPU-bound workload.
	MustRegister(Hypothesis{
		Name:     "vm-overhead-positive",
		Claim:    "A vanilla VM adds measurable execution-time overhead over bare metal for a CPU-bound workload.",
		Source:   "Paper §IV Fig 3",
		Scenario: "fig3",
		Predicate: Predicate{
			Effect: func(f experiments.Figure) (float64, error) {
				return CellRatio(f, "Vanilla VM", "Vanilla BM", "4xLarge")
			},
			Detail:    "mean(Vanilla VM) / mean(Vanilla BM) at 4xLarge on fig3",
			Null:      1,
			Direction: Above,
		},
	})

	// H2 — the paper's headline (title claim): pinning recovers part of
	// virtualization's overhead.
	MustRegister(Hypothesis{
		Name:     "pinning-recovers-vm-overhead",
		Claim:    "CPU pinning recovers part of the VM's overhead: a pinned VM runs measurably faster than a vanilla VM.",
		Source:   "Paper §V (headline claim)",
		Scenario: "fig3",
		Predicate: Predicate{
			Effect: func(f experiments.Figure) (float64, error) {
				return CellRatio(f, "Vanilla VM", "Pinned VM", "4xLarge")
			},
			Detail:    "mean(Vanilla VM) / mean(Pinned VM) at 4xLarge on fig3",
			Null:      1,
			Direction: Above,
		},
	})

	// H3 — the VM-vs-CN asymmetry: pinning buys more on the hypervisor
	// platform than on the container platform (Agasizade et al. report the
	// container's baseline overhead is already near-native).
	MustRegister(Hypothesis{
		Name:     "pinning-helps-vm-more-than-cn",
		Claim:    "Pinning's VM penalty reduction exceeds its CN reduction: the vanilla/pinned ratio is larger for VMs than for containers.",
		Source:   "Paper §V Figs 3-4; Agasizade et al. (PAPERS.md)",
		Scenario: "fig3",
		Predicate: Predicate{
			Effect: func(f experiments.Figure) (float64, error) {
				vm, err := CellRatio(f, "Vanilla VM", "Pinned VM", "4xLarge")
				if err != nil {
					return 0, err
				}
				cn, err := CellRatio(f, "Vanilla CN", "Pinned CN", "4xLarge")
				if err != nil {
					return 0, err
				}
				return vm - cn, nil
			},
			Detail:    "(VanVM/PinVM) − (VanCN/PinCN) at 4xLarge on fig3",
			Null:      0,
			Direction: Above,
		},
	})

	// H4 — nesting super-additivity on the paper's own grid: the VMCN
	// overhead exceeds the sum of its parts (van Rijn & Rellermeyer's
	// nested-isolation comparison motivates the decomposition).
	MustRegister(Hypothesis{
		Name:     "nested-vmcn-superadditive",
		Claim:    "Nested VMCN cost compounds super-additively: its overhead ratio exceeds the VM and CN overheads stacked additively.",
		Source:   "Paper §IV Fig 3; van Rijn & Rellermeyer (PAPERS.md)",
		Scenario: "fig3",
		Predicate: Predicate{
			Effect: func(f experiments.Figure) (float64, error) {
				vmcn, err := CellRatio(f, "Vanilla VMCN", "Vanilla BM", "4xLarge")
				if err != nil {
					return 0, err
				}
				vm, err := CellRatio(f, "Vanilla VM", "Vanilla BM", "4xLarge")
				if err != nil {
					return 0, err
				}
				cn, err := CellRatio(f, "Vanilla CN", "Vanilla BM", "4xLarge")
				if err != nil {
					return 0, err
				}
				// Additive stacking predicts (vm−1)+(cn−1) excess; the effect
				// is VMCN's excess beyond that.
				return vmcn - (vm + cn - 1), nil
			},
			Detail:    "VMCN/BM − (VM/BM + CN/BM − 1) at 4xLarge on fig3",
			Null:      0,
			Direction: Above,
		},
	})

	// H5 — the CHR mechanism (§IV-A, Fig 7): the vanilla container's
	// penalty appears when the container spans most of the host, so
	// pinning's benefit is larger at CHR=1 than at CHR=0.14.
	// The 0.01 null is a practical-significance margin: the claim is a
	// ratio-point gap a deployment would notice, so an effect that is zero
	// to numerical noise must refute it rather than ride the sign bit.
	MustRegister(Hypothesis{
		Name:     "chr-governs-pinning-benefit",
		Claim:    "Pinning's container benefit grows with CHR: the vanilla/pinned ratio at CHR=1 (16-core host) exceeds the ratio at CHR=0.14 (112-core host) by more than one ratio point.",
		Source:   "Paper §IV-A Fig 7",
		Scenario: "fig7",
		Predicate: Predicate{
			Effect: func(f experiments.Figure) (float64, error) {
				high, err := CellRatio(f, "Vanilla CN", "Pinned CN", "16 cores")
				if err != nil {
					return 0, err
				}
				low, err := CellRatio(f, "Vanilla CN", "Pinned CN", "112 cores")
				if err != nil {
					return 0, err
				}
				return high - low, nil
			},
			Detail:    "(VanCN/PinCN @16-core host) − (VanCN/PinCN @112-core host) on fig7",
			Null:      0.01,
			Direction: Above,
		},
	})

	// H6 — depth ladder beyond the paper: a second hypervisor level costs
	// more again (the depth trend van Rijn & Rellermeyer chart for nested
	// isolation platforms).
	MustRegister(Hypothesis{
		Name:     "nesting-depth-compounds",
		Claim:    "Each hypervisor level compounds the cost: a VM-in-VM runs measurably slower than a single VM.",
		Source:   "van Rijn & Rellermeyer (PAPERS.md); paper §VI future work",
		Scenario: "hyp-depth",
		Predicate: Predicate{
			Effect: func(f experiments.Figure) (float64, error) {
				return CellRatio(f, "Vanilla VM2", "Vanilla VM", "4xLarge")
			},
			Detail:    "mean(VM-in-VM) / mean(VM) at 4xLarge on hyp-depth",
			Null:      1,
			Direction: Above,
		},
	})

	// H7 — the co-location inversion: pinning's advantage at exact fit
	// (K=2, disjoint cpusets) erodes or inverts once the host is
	// oversubscribed (K=4, wrapped cpusets vs work-conserving quotas).
	MustRegister(Hypothesis{
		Name:     "oversubscription-inverts-pinning",
		Claim:    "Pinning's co-location benefit inverts under oversubscription: pinned-vs-quota tenants do relatively worse (by more than two ratio points) at K=4 (2x oversubscribed) than at K=2 (exact fit).",
		Source:   "Paper §V discussion; Agasizade et al. (PAPERS.md)",
		Scenario: "hyp-tenants",
		Predicate: Predicate{
			Effect: func(f experiments.Figure) (float64, error) {
				over, err := CellRatio(f, "Pinned x4", "Quota x4", "8-core tenants")
				if err != nil {
					return 0, err
				}
				fit, err := CellRatio(f, "Pinned x2", "Quota x2", "8-core tenants")
				if err != nil {
					return 0, err
				}
				return over - fit, nil
			},
			Detail:    "(Pin/Quota @K=4) − (Pin/Quota @K=2) on hyp-tenants",
			Null:      0.02,
			Direction: Above,
		},
	})
}
