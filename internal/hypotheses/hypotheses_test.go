package hypotheses

import (
	"math"
	"strings"
	"testing"

	"repro/internal/stats"
)

func iv(lo, hi float64) stats.Interval {
	return stats.Interval{Lo: lo, Hi: hi, Confidence: 0.95}
}

func TestVerdictRule(t *testing.T) {
	above := Predicate{Null: 1, Direction: Above}
	below := Predicate{Null: 1, Direction: Below}
	cases := []struct {
		name string
		p    Predicate
		ci   stats.Interval
		want Status
	}{
		{"above-confirmed", above, iv(1.1, 1.3), Confirmed},
		{"above-refuted", above, iv(0.7, 0.9), Refuted},
		{"above-straddles", above, iv(0.9, 1.1), Inconclusive},
		{"above-touching-null", above, iv(1.0, 1.2), Inconclusive},
		{"below-confirmed", below, iv(0.7, 0.9), Confirmed},
		{"below-refuted", below, iv(1.1, 1.3), Refuted},
		{"nan", above, iv(math.NaN(), math.NaN()), Inconclusive},
	}
	for _, c := range cases {
		if got := verdict(c.p, c.ci); got != c.want {
			t.Errorf("%s: verdict = %s, want %s", c.name, got, c.want)
		}
	}
}

func TestCatalogRegistered(t *testing.T) {
	hs := All()
	if len(hs) < 6 {
		t.Fatalf("catalog has %d hypotheses, want >= 6", len(hs))
	}
	for i := 1; i < len(hs); i++ {
		if hs[i-1].Name >= hs[i].Name {
			t.Fatalf("All() not sorted: %q before %q", hs[i-1].Name, hs[i].Name)
		}
	}
	for _, h := range hs {
		if err := h.Validate(); err != nil {
			t.Errorf("%s: %v", h.Name, err)
		}
		if h.Claim == "" || h.Source == "" || h.Predicate.Detail == "" {
			t.Errorf("%s: catalog entries must carry claim, source and effect detail", h.Name)
		}
	}
	if _, ok := ByName("vm-overhead-positive"); !ok {
		t.Fatal("ByName missed a registered hypothesis")
	}
	if _, ok := ByName("no-such-hypothesis"); ok {
		t.Fatal("ByName invented a hypothesis")
	}
	if err := UnknownError("nope"); err == nil || !strings.Contains(err.Error(), "nope") {
		t.Fatalf("UnknownError = %v", err)
	}
}

func TestDirectionString(t *testing.T) {
	if Above.String() != ">" || Below.String() != "<" {
		t.Fatalf("Direction strings: %q %q", Above.String(), Below.String())
	}
}
