package hypotheses

// The FINDINGS.md renderer. The table is the harness's public artifact:
// byte-deterministic (no timestamps, no environment), so a committed copy
// is a regression gate — any model change that moves an effect past a null
// boundary, or even nudges a CI digit, shows up as a diff.

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Profile describes the run parameters a findings file was produced under;
// it is rendered into the header so a quick-profile file cannot be
// mistaken for a full-scale one.
type Profile struct {
	Quick     bool
	Seed      uint64
	Resamples int
}

// String renders the profile line.
func (p Profile) String() string {
	mode := "full"
	if p.Quick {
		mode = "quick"
	}
	return fmt.Sprintf("profile: %s · base seed %d · 95%% BCa bootstrap CIs (%d resamples)",
		mode, p.Seed, p.Resamples)
}

// num renders a value for the findings table: fixed precision so the file
// is byte-stable, "n/a" for NaN, and no "-0.000" — a value that is zero at
// display precision renders as zero.
func num(v float64) string {
	if math.IsNaN(v) {
		return "n/a"
	}
	if math.Abs(v) < 0.0005 {
		v = 0
	}
	return fmt.Sprintf("%.3f", v)
}

// RenderFindings writes the findings as a deterministic FINDINGS.md
// document: one header, one methodology paragraph, one table row per
// finding in the given order (RunAll already sorts by name).
func RenderFindings(w io.Writer, findings []Finding, profile Profile) {
	fmt.Fprintln(w, "# FINDINGS — hypothesis harness")
	fmt.Fprintln(w)
	fmt.Fprintln(w, profile.String())
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Each hypothesis states a falsifiable claim about the simulated platforms,")
	fmt.Fprintln(w, "runs its scenario across adaptively-chosen seeds (one repetition per seed,")
	fmt.Fprintln(w, "seeds added until the effect CI is tight or the policy cap is hit), reduces")
	fmt.Fprintln(w, "each run to a scalar effect, and is judged against its null boundary:")
	fmt.Fprintln(w, "**Confirmed** — the 95% CI lies strictly on the claimed side of the null;")
	fmt.Fprintln(w, "**Refuted** — strictly on the opposite side; **Inconclusive** — the CI")
	fmt.Fprintln(w, "straddles the boundary. See `hypotheses/README.md` for the catalog and")
	fmt.Fprintln(w, "methodology.")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "| Hypothesis | Status | Effect (95% CI) | Claimed | Seeds | Scenario | Claim |")
	fmt.Fprintln(w, "|---|---|---|---|---|---|---|")
	for _, f := range findings {
		h := f.Hypothesis
		fmt.Fprintf(w, "| %s | **%s** | %s [%s, %s] | %s %s | %d | %s | %s |\n",
			h.Name, f.Status,
			num(f.Effect), num(f.CI.Lo), num(f.CI.Hi),
			h.Predicate.Direction, num(h.Predicate.Null),
			f.Seeds, h.Scenario,
			sanitizeCell(h.Claim))
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Effects are per-seed scalars (see each hypothesis's `Predicate.Detail`):")
	for _, f := range findings {
		fmt.Fprintf(w, "- **%s** — %s\n", f.Hypothesis.Name, sanitizeCell(f.Hypothesis.Predicate.Detail))
	}
}

// sanitizeCell keeps free text table-safe: pipes and newlines would break
// the markdown row.
func sanitizeCell(s string) string {
	s = strings.ReplaceAll(s, "|", "\\|")
	s = strings.ReplaceAll(s, "\n", " ")
	return s
}
