package hypotheses

// The generic hypothesis runner. One hypothesis run is K scenario runs —
// each with Reps=1 and a base seed derived deterministically from the
// harness seed and the seed index alone (not the hypothesis name), so two
// hypotheses that reference the same scenario share every trial through a
// common TrialStore, and a warm store replays the entire harness with zero
// simulations. The seed count is adaptive: stats.RunUntilTight keeps
// adding seeds until the effect interval is tight or the policy cap is
// hit, and because the stop decision is a pure function of the observed
// (deterministic) values, the count — and the rendered findings — are
// identical at any worker count and any store warmth.

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/stats"
)

// hypSeedTag decorrelates hypothesis seed streams from every other use of
// the base seed ("HYPS").
const hypSeedTag = 0x48595053

// Status is a finding's verdict.
type Status string

const (
	// Confirmed: the effect interval lies strictly on the claimed side of
	// the null boundary.
	Confirmed Status = "Confirmed"
	// Refuted: the interval lies strictly on the opposite side.
	Refuted Status = "Refuted"
	// Inconclusive: the interval straddles the boundary (or is unusable).
	Inconclusive Status = "Inconclusive"
)

// Config controls a hypothesis run.
type Config struct {
	// Seed is the harness base seed; per-seed-index scenario seeds derive
	// from it.
	Seed uint64
	// Quick applies the scenarios' quick workload scaling (the CI profile).
	Quick bool
	// Workers is the per-scenario trial fan-out (experiments.Config.Workers).
	Workers int
	// Store, when non-nil, memoizes trials across seeds, hypotheses and —
	// when disk-backed — processes.
	Store experiments.TrialStore
	// Resamples is the bootstrap resample count (default 1000).
	Resamples int
	// Progress, when non-nil, is called after each completed seed run with
	// the hypothesis name and the seeds drawn so far.
	Progress func(name string, seeds int)
}

func (c Config) withDefaults() Config {
	if c.Resamples <= 0 {
		c.Resamples = 1000
	}
	return c
}

// Finding is one evaluated hypothesis.
type Finding struct {
	// Hypothesis carries the claim the finding answers.
	Hypothesis Hypothesis
	// Status is the verdict.
	Status Status
	// Effect is the mean per-seed effect.
	Effect float64
	// CI is the BCa bootstrap interval of the mean effect.
	CI stats.Interval
	// Seeds is how many seeds the adaptive policy drew.
	Seeds int
	// Values are the per-seed effects, in seed-index order.
	Values []float64
}

// seedAt derives the scenario base seed for seed index i. The derivation
// deliberately excludes the hypothesis identity: hypotheses sharing a
// scenario draw identical trial grids and therefore share store records.
func seedAt(base uint64, i int) uint64 {
	return sim.Substream(base, hypSeedTag, uint64(i))
}

// bootSeed seeds the bootstrap RNG per hypothesis: resampling noise is
// decorrelated between hypotheses but identical across reruns.
func bootSeed(name string) int64 {
	h := uint64(1469598103934665603) // FNV-1a offset
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return int64(h & math.MaxInt64)
}

// Run evaluates one hypothesis: the referenced scenario runs across
// adaptively-many seeds, the predicate reduces each run to an effect, and
// the effect sample's BCa interval decides the status.
func Run(h Hypothesis, cfg Config) (Finding, error) {
	if err := h.Validate(); err != nil {
		return Finding{}, err
	}
	cfg = cfg.withDefaults()
	sc, ok := experiments.ScenarioByName(h.Scenario)
	if !ok {
		return Finding{}, fmt.Errorf("hypotheses: %s: %w", h.Name, experiments.UnknownScenarioError(h.Scenario))
	}
	pol := h.Seeds.withDefaults()

	sample := func(i int) (float64, error) {
		ecfg := experiments.Config{
			// Reps=1: each seed index is one independent repetition of the
			// whole grid; the seed axis replaces the rep axis.
			Reps:    1,
			Seed:    seedAt(cfg.Seed, i),
			Quick:   cfg.Quick,
			Workers: cfg.Workers,
			Memo:    cfg.Store,
		}
		f, err := experiments.RunScenario(ecfg, sc)
		if err != nil {
			return 0, fmt.Errorf("hypotheses: %s seed %d: %w", h.Name, i, err)
		}
		v, err := h.Predicate.Effect(f)
		if err != nil {
			return 0, fmt.Errorf("hypotheses: %s seed %d: %w", h.Name, i, err)
		}
		if cfg.Progress != nil {
			cfg.Progress(h.Name, i+1)
		}
		return v, nil
	}

	values, _, err := stats.RunUntilTight(stats.TightOpts{
		Min:       pol.Min,
		Max:       pol.Max,
		RelTol:    pol.RelTol,
		Resamples: cfg.Resamples,
		Seed:      bootSeed(h.Name),
	}, sample)
	if err != nil {
		return Finding{}, err
	}

	rng := rand.New(rand.NewSource(bootSeed(h.Name)))
	ci := stats.BootstrapCIBCa(values, 0.95, cfg.Resamples, rng)
	f := Finding{
		Hypothesis: h,
		Effect:     stats.Summarize(values).Mean,
		CI:         ci,
		Seeds:      len(values),
		Values:     values,
	}
	f.Status = verdict(h.Predicate, ci)
	return f, nil
}

// verdict applies the decision rule: Confirmed when the interval lies
// strictly on the claimed side of the null, Refuted when strictly on the
// opposite side, Inconclusive when it straddles the boundary or is NaN.
func verdict(p Predicate, ci stats.Interval) Status {
	if math.IsNaN(ci.Lo) || math.IsNaN(ci.Hi) {
		return Inconclusive
	}
	claimed, opposite := ci.Above(p.Null), ci.Below(p.Null)
	if p.Direction == Below {
		claimed, opposite = opposite, claimed
	}
	switch {
	case claimed:
		return Confirmed
	case opposite:
		return Refuted
	default:
		return Inconclusive
	}
}

// RunAll evaluates every registered hypothesis in sorted-name order.
func RunAll(cfg Config) ([]Finding, error) {
	hs := All()
	out := make([]Finding, 0, len(hs))
	for _, h := range hs {
		f, err := Run(h, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}
