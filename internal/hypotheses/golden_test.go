package hypotheses

// The findings gate. hypotheses/FINDINGS.md is a committed artifact: these
// tests prove the harness regenerates it byte-for-byte at several worker
// counts (trial fan-out must not leak into statistics), and that a warm
// durable store replays the whole harness with zero simulations while
// producing the same bytes. A legitimate model change that moves an effect
// regenerates the file (see hypotheses/README.md); an accidental one fails
// here first.

import (
	"bytes"
	"os"
	"testing"

	"repro/internal/experiments"
)

// goldenPath is the committed quick-profile findings file, relative to this
// package directory.
const goldenPath = "../../hypotheses/FINDINGS.md"

// goldenConfig mirrors `pinhyp -run all -quick` at its default seed.
func goldenConfig() Config {
	return Config{Seed: 42, Quick: true, Resamples: 1000}
}

// renderAll runs every hypothesis under cfg and renders the findings
// document exactly the way cmd/pinhyp does.
func renderAll(t *testing.T, cfg Config) []byte {
	t.Helper()
	found, err := RunAll(cfg)
	if err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	var buf bytes.Buffer
	RenderFindings(&buf, found, Profile{Quick: cfg.Quick, Seed: cfg.Seed, Resamples: cfg.Resamples})
	return buf.Bytes()
}

// diffLine points at the first differing line, so a golden failure reads as
// "which hypothesis moved" instead of a byte offset.
func diffLine(got, want []byte) string {
	g := bytes.Split(got, []byte("\n"))
	w := bytes.Split(want, []byte("\n"))
	for i := 0; i < len(g) && i < len(w); i++ {
		if !bytes.Equal(g[i], w[i]) {
			return "line " + string(rune('0'+i/10)) + string(rune('0'+i%10)) +
				":\n got: " + string(g[i]) + "\nwant: " + string(w[i])
		}
	}
	return "length mismatch"
}

func TestFindingsMatchGoldenAtAnyWorkerCount(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full quick harness several times")
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("committed findings missing: %v (regenerate with `pinhyp -run all -quick -findings hypotheses/FINDINGS.md`)", err)
	}
	for _, workers := range []int{1, 2, 8} {
		cfg := goldenConfig()
		cfg.Workers = workers
		got := renderAll(t, cfg)
		if !bytes.Equal(got, want) {
			t.Fatalf("findings at -workers %d diverge from committed hypotheses/FINDINGS.md\n%s",
				workers, diffLine(got, want))
		}
	}
}

func TestFindingsWarmStoreRerunSimulatesNothing(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full quick harness twice")
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("committed findings missing: %v", err)
	}
	dir := t.TempDir()

	// Cold run: simulates everything, persists every trial.
	st, err := experiments.OpenTrialStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := goldenConfig()
	cfg.Workers = 4
	cfg.Store = st
	cold := renderAll(t, cfg)
	cs := st.Stats()
	if cs.Misses == 0 || cs.Appended == 0 {
		t.Fatalf("cold run should simulate and persist, got stats %+v", cs)
	}
	if !bytes.Equal(cold, want) {
		t.Fatalf("store-backed run diverges from committed findings\n%s", diffLine(cold, want))
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Warm rerun in a fresh process-equivalent (fresh open over the same
	// directory): every trial must replay from disk — zero simulations —
	// and the bytes must not move.
	st2, err := experiments.OpenTrialStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	cfg2 := goldenConfig()
	cfg2.Workers = 4
	cfg2.Store = st2
	warm := renderAll(t, cfg2)
	ws := st2.Stats()
	if ws.Misses != 0 {
		t.Fatalf("warm rerun simulated %d trials, want 0 (stats %+v)", ws.Misses, ws)
	}
	if ws.Loaded == 0 {
		t.Fatalf("warm rerun loaded no durable records, stats %+v", ws)
	}
	if !bytes.Equal(warm, want) {
		t.Fatalf("warm rerun diverges from committed findings\n%s", diffLine(warm, want))
	}
}
