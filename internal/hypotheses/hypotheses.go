// Package hypotheses turns the reproducer into a research instrument.
// Where the figure pipeline answers "what does the simulated platform do",
// a Hypothesis states what it *should* do — a falsifiable claim drawn from
// the paper or the related cross-platform studies — and checks it
// statistically: the referenced scenario (from the experiments registry)
// runs across K deterministic seeds, a Predicate reduces each seed's
// figure to one scalar effect, and the effect sample's bootstrap
// confidence interval decides Confirmed / Refuted / Inconclusive against
// the claim's null boundary. Seed counts are adaptive (stats.RunUntilTight
// adds seeds until the interval is tight or a cap is hit), every scenario
// run flows through the ordinary RunScenario + TrialStore path (so reruns
// replay from a warm store with zero simulations), and the rendered
// FINDINGS.md is byte-deterministic — which is what lets the whole harness
// double as the repo's deepest regression test: a model change that flips
// a committed finding fails CI.
package hypotheses

import (
	"fmt"

	"repro/internal/experiments"
)

// Direction is the side of the null boundary a claim predicts the effect
// falls on.
type Direction int

const (
	// Above claims the effect exceeds the null value.
	Above Direction = 1
	// Below claims the effect falls short of the null value.
	Below Direction = -1
)

// String renders the direction as its comparison operator.
func (d Direction) String() string {
	if d == Below {
		return "<"
	}
	return ">"
}

// Predicate reduces one scenario run (one seed's Figure) to a scalar
// effect and states where that effect must fall for the claim to hold.
type Predicate struct {
	// Effect extracts the per-seed effect from the scenario's figure —
	// typically a ratio or difference of cell means (see the Cell helpers).
	Effect func(f experiments.Figure) (float64, error)
	// Detail documents what Effect measures, for the findings table.
	Detail string
	// Null is the no-effect boundary (1 for ratios, 0 for differences).
	Null float64
	// Direction is the side of Null the claim predicts.
	Direction Direction
}

// SeedPolicy is a hypothesis's adaptive seed-count policy: at least Min
// seeds always run, then seeds are added until the effect's bootstrap
// interval half-width is within RelTol of the mean effect, or Max is hit.
type SeedPolicy struct {
	Min, Max int
	RelTol   float64
}

func (p SeedPolicy) withDefaults() SeedPolicy {
	if p.Min <= 0 {
		p.Min = 5
	}
	if p.Max < p.Min {
		p.Max = 2 * p.Min
	}
	if p.RelTol <= 0 {
		p.RelTol = 0.05
	}
	return p
}

// Hypothesis is one falsifiable claim: a scenario to run, a predicate to
// evaluate it, and a seed policy for how much evidence to gather.
type Hypothesis struct {
	// Name is the registry key (`pinhyp -run <name>`), kebab-case.
	Name string
	// Claim is the falsifiable statement, one sentence.
	Claim string
	// Source cites where the claim comes from (paper section, PAPERS.md
	// study).
	Source string
	// Scenario names the experiments-registry scenario the claim is
	// evaluated on.
	Scenario string
	// Seeds is the adaptive seed-count policy.
	Seeds SeedPolicy
	// Predicate is the per-seed evaluation.
	Predicate Predicate
}

// Validate checks the hypothesis is runnable: named, sourced from a
// registered scenario, with a predicate.
func (h Hypothesis) Validate() error {
	if h.Name == "" {
		return fmt.Errorf("hypotheses: hypothesis needs a name")
	}
	if h.Claim == "" {
		return fmt.Errorf("hypotheses: %s needs a claim", h.Name)
	}
	if h.Scenario == "" {
		return fmt.Errorf("hypotheses: %s needs a scenario", h.Name)
	}
	if _, ok := experiments.ScenarioByName(h.Scenario); !ok {
		return fmt.Errorf("hypotheses: %s references unregistered scenario %q", h.Name, h.Scenario)
	}
	if h.Predicate.Effect == nil {
		return fmt.Errorf("hypotheses: %s needs a predicate effect", h.Name)
	}
	if h.Predicate.Direction != Above && h.Predicate.Direction != Below {
		return fmt.Errorf("hypotheses: %s needs a predicate direction (Above or Below)", h.Name)
	}
	return nil
}

// CellMean returns the mean of one (series, x-label) cell of a figure,
// failing loudly on a label the figure does not carry — a renamed series
// must break the hypothesis, not silently zero its effect.
func CellMean(f experiments.Figure, series, x string) (float64, error) {
	c, ok := f.Cell(series, x)
	if !ok {
		return 0, fmt.Errorf("hypotheses: figure %s has no cell (%q, %q)", f.ID, series, x)
	}
	return c.Summary.Mean, nil
}

// CellRatio returns the ratio of two cell means sharing an x-label — the
// per-seed form of the paper's overhead ratio.
func CellRatio(f experiments.Figure, numSeries, denSeries, x string) (float64, error) {
	num, err := CellMean(f, numSeries, x)
	if err != nil {
		return 0, err
	}
	den, err := CellMean(f, denSeries, x)
	if err != nil {
		return 0, err
	}
	if den == 0 {
		return 0, fmt.Errorf("hypotheses: figure %s cell (%q, %q) mean is zero", f.ID, denSeries, x)
	}
	return num / den, nil
}
