package hypotheses

// The hypothesis registry mirrors the scenario registry: a name-indexed
// catalog populated at init (catalog.go) and extensible by library users.
// pinhyp dispatches -run through it, and the golden findings test runs
// every registered entry — registering a hypothesis IS enrolling it in CI.

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

var (
	registryMu sync.RWMutex
	registry   = map[string]Hypothesis{}
)

// Register validates h and adds it to the registry. Registering a name
// twice is an error — hypotheses are identities, not defaults to override.
func Register(h Hypothesis) error {
	if err := h.Validate(); err != nil {
		return err
	}
	h.Seeds = h.Seeds.withDefaults()
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[h.Name]; dup {
		return fmt.Errorf("hypotheses: %q already registered", h.Name)
	}
	registry[h.Name] = h
	return nil
}

// MustRegister is Register for init-time registration.
func MustRegister(h Hypothesis) {
	if err := Register(h); err != nil {
		panic(err)
	}
}

// Names returns every registered hypothesis name, sorted.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ByName looks a hypothesis up.
func ByName(name string) (Hypothesis, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	h, ok := registry[name]
	return h, ok
}

// All returns every registered hypothesis in sorted-name order — the
// `pinhyp -run all` and golden-test iteration order, so the findings table
// is deterministic.
func All() []Hypothesis {
	names := Names()
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]Hypothesis, 0, len(names))
	for _, name := range names {
		out = append(out, registry[name])
	}
	return out
}

// UnknownError is the lookup failure every caller should surface: it
// carries the sorted list of registered names.
func UnknownError(name string) error {
	return fmt.Errorf("hypotheses: unknown hypothesis %q (registered: %s)",
		name, strings.Join(Names(), ", "))
}
