package resultstore

// Fuzz targets for the durable layer's two trust boundaries: the canonical
// Enc/Dec encoding (a round-trip that must be exact for every value,
// including the float bit patterns %v would mangle) and the segment scanner
// (which must absorb arbitrary on-disk bytes — crash tails, bit flips,
// hostile garbage — without panicking, without losing intact records, and
// without wedging the store against further writes).

import (
	"bytes"
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"testing"
)

func FuzzDecRoundTrip(f *testing.F) {
	f.Add(uint64(42), int64(-7), 3.141592653589793, "ffmpeg")
	f.Add(uint64(0), int64(0), 0.0, "")
	f.Add(uint64(math.MaxUint64), int64(math.MinInt64), math.Inf(-1), "a|b\nc")
	f.Add(uint64(1)<<56, int64(1), math.Float64frombits(0x7ff8000000000001), "x")
	f.Fuzz(func(t *testing.T, u uint64, i int64, fv float64, s string) {
		ver := byte(u >> 56)
		var e Enc
		e.Version(ver)
		e.U64(u)
		e.I64(i)
		e.F64(fv)
		e.Str(s)
		b := e.Bytes()
		if e.Len() != len(b) {
			t.Fatalf("Len %d != len(Bytes) %d", e.Len(), len(b))
		}
		// 1 version byte, three 8-byte fields, 8-byte string length, bytes.
		if want := 1 + 3*8 + 8 + len(s); len(b) != want {
			t.Fatalf("encoded %d bytes, want %d", len(b), want)
		}
		if b[0] != ver {
			t.Fatalf("version byte %#x, want %#x", b[0], ver)
		}

		d := NewDec(b[1:])
		if got := d.U64(); got != u {
			t.Fatalf("U64 = %d, want %d", got, u)
		}
		if got := d.I64(); got != i {
			t.Fatalf("I64 = %d, want %d", got, i)
		}
		// Compare bit patterns: NaN != NaN but its encoding is still exact.
		if got := d.F64(); math.Float64bits(got) != math.Float64bits(fv) {
			t.Fatalf("F64 = %v (%#x), want %v (%#x)",
				got, math.Float64bits(got), fv, math.Float64bits(fv))
		}
		if got := d.U64(); got != uint64(len(s)) {
			t.Fatalf("string length prefix = %d, want %d", got, len(s))
		}
		if got := string(b[1+3*8+8:]); got != s {
			t.Fatalf("string bytes = %q, want %q", got, s)
		}

		// The same field walk hashes to the same key, and reading past the
		// end of any prefix yields zeros, never a panic.
		var e2 Enc
		e2.Version(ver)
		e2.U64(u)
		e2.I64(i)
		e2.F64(fv)
		e2.Str(s)
		if e.Sum64() != e2.Sum64() {
			t.Fatalf("Sum64 not deterministic: %#x vs %#x", e.Sum64(), e2.Sum64())
		}
		for cut := 0; cut <= len(b); cut += 7 {
			d := NewDec(b[:cut])
			for j := 0; j < len(b)/8+2; j++ {
				d.U64()
			}
			if got := d.U64(); got != 0 {
				t.Fatalf("U64 past end of %d-byte prefix = %d, want 0", cut, got)
			}
		}
	})
}

// validRecord frames one intact u64Codec record the way Disk.append does.
func validRecord(key, val uint64) []byte {
	rec := binary.LittleEndian.AppendUint64(nil, key)
	rec = append(rec, 0, 0, 0, 0)
	rec = u64Codec{}.Append(rec, val)
	binary.LittleEndian.PutUint32(rec[8:], uint32(len(rec)-recHeaderLen))
	return binary.LittleEndian.AppendUint64(rec, sumRecord(rec))
}

func FuzzDiskRecord(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(segMagic))
	f.Add(append([]byte(segMagic), validRecord(7, 99)...))
	f.Add(validRecord(3, 4))
	torn := append([]byte(segMagic), validRecord(5, 6)...)
	f.Add(torn[:len(torn)-3])
	f.Fuzz(func(t *testing.T, tail []byte) {
		dir := t.TempDir()
		// Segment 1: a provably-intact record followed by arbitrary bytes —
		// whatever the tail decodes as, the intact prefix must survive.
		seg1 := append([]byte(segMagic), validRecord(7, 99)...)
		seg1 = append(seg1, tail...)
		if err := os.WriteFile(filepath.Join(dir, "seg-000001.psr"), seg1, 0o644); err != nil {
			t.Fatal(err)
		}
		// Segment 2: the raw fuzz bytes as an entire segment file.
		if err := os.WriteFile(filepath.Join(dir, "seg-000002.psr"), tail, 0o644); err != nil {
			t.Fatal(err)
		}

		var warn bytes.Buffer
		d, err := Open[uint64](dir, u64Codec{}, WithWarnWriter(&warn))
		if err != nil {
			// Corruption must degrade to recomputation, never to an error.
			t.Fatalf("Open over corrupt segments: %v", err)
		}
		if v, ok := d.Get(7); !ok || v != 99 {
			t.Fatalf("intact record lost to trailing corruption: Get(7) = %d, %v\nwarnings:\n%s", v, ok, warn.String())
		}

		// The store must still accept writes and persist them across a
		// reopen — a corrupt directory degrades, it does not wedge.
		d.Put(1234, 5678)
		if err := d.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		d2, err := Open[uint64](dir, u64Codec{}, WithWarnWriter(&warn))
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		defer d2.Close()
		if v, ok := d2.Get(7); !ok || v != 99 {
			t.Fatalf("intact record lost on reopen: Get(7) = %d, %v", v, ok)
		}
		if v, ok := d2.Get(1234); !ok || v != 5678 {
			t.Fatalf("appended record lost on reopen: Get(1234) = %d, %v", v, ok)
		}
	})
}
