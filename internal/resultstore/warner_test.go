package resultstore

import (
	"bytes"
	"strings"
	"testing"
)

// TestWarnerRateLimits: the first limit warnings print, the next one prints
// a suppression notice, and the rest are silent — but all are counted.
func TestWarnerRateLimits(t *testing.T) {
	var buf bytes.Buffer
	w := NewWarner(&buf, 2)
	for i := 0; i < 7; i++ {
		w.Warnf("torn", "torn record %d", i)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("printed %d lines, want 2 warnings + 1 notice:\n%s", len(lines), buf.String())
	}
	if lines[0] != "torn record 0" || lines[1] != "torn record 1" {
		t.Fatalf("wrong warning lines: %q", lines[:2])
	}
	if !strings.Contains(lines[2], "suppressing") || !strings.Contains(lines[2], `"torn"`) {
		t.Fatalf("third line %q is not the suppression notice", lines[2])
	}
	if w.Count("torn") != 7 || w.Total() != 7 || w.Suppressed() != 5 {
		t.Fatalf("count=%d total=%d suppressed=%d, want 7/7/5",
			w.Count("torn"), w.Total(), w.Suppressed())
	}
}

// TestWarnerCategoriesAreIndependent: one noisy category must not silence
// another.
func TestWarnerCategoriesAreIndependent(t *testing.T) {
	var buf bytes.Buffer
	w := NewWarner(&buf, 1)
	w.Warnf("a", "first a")
	w.Warnf("a", "second a")
	w.Warnf("b", "first b")
	out := buf.String()
	if !strings.Contains(out, "first a") || !strings.Contains(out, "first b") {
		t.Fatalf("missing first-of-category warnings:\n%s", out)
	}
	if strings.Contains(out, "second a") {
		t.Fatalf("over-limit warning printed:\n%s", out)
	}
}

// TestWarnerFlushSummarizesOnce: Flush prints totals for suppressed
// categories, and a re-Flush with no new warnings prints nothing (shared
// warners are flushed by every store that closes over them).
func TestWarnerFlushSummarizesOnce(t *testing.T) {
	var buf bytes.Buffer
	w := NewWarner(&buf, 1)
	w.Warnf("checksum", "bad sum")
	w.Warnf("checksum", "bad sum")
	w.Warnf("checksum", "bad sum")
	w.Warnf("clean", "only once")
	buf.Reset()

	w.Flush()
	out := buf.String()
	if !strings.Contains(out, `"checksum" warnings: 3 total, 2 suppressed`) {
		t.Fatalf("flush summary wrong:\n%s", out)
	}
	if strings.Contains(out, "clean") {
		t.Fatalf("under-limit category summarized:\n%s", out)
	}

	buf.Reset()
	w.Flush()
	if buf.Len() != 0 {
		t.Fatalf("second flush repeated totals:\n%s", buf.String())
	}

	w.Warnf("checksum", "bad sum")
	buf.Reset()
	w.Flush()
	if !strings.Contains(buf.String(), "4 total") {
		t.Fatalf("flush after new warnings should re-summarize:\n%s", buf.String())
	}
}

// TestWarnerDefaultLimit: a non-positive limit falls back to the default.
func TestWarnerDefaultLimit(t *testing.T) {
	var buf bytes.Buffer
	w := NewWarner(&buf, 0)
	for i := 0; i < DefaultWarnLimit+3; i++ {
		w.Warnf("x", "warning %d", i)
	}
	if got := w.Suppressed(); got != 3 {
		t.Fatalf("suppressed = %d, want 3 past the default limit", got)
	}
}
