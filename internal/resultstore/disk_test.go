package resultstore

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// u64Codec is the test codec: a version byte plus one fixed-width uint64.
type u64Codec struct{}

const u64Schema = 9

func (u64Codec) Append(dst []byte, v uint64) []byte {
	dst = append(dst, u64Schema)
	return binary.LittleEndian.AppendUint64(dst, v)
}

func (u64Codec) Decode(p []byte) (uint64, error) {
	if len(p) != 9 {
		return 0, fmt.Errorf("record is %d bytes, want 9", len(p))
	}
	if p[0] != u64Schema {
		return 0, fmt.Errorf("schema %d, want %d", p[0], u64Schema)
	}
	return binary.LittleEndian.Uint64(p[1:]), nil
}

func openTest(t *testing.T, dir string, warn *bytes.Buffer) *Disk[uint64] {
	t.Helper()
	d, err := Open[uint64](dir, u64Codec{}, WithWarnWriter(warn))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestDiskRoundTrip: a second process (re-open) sees everything the first
// persisted, with the audit counters telling the story.
func TestDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	var warn bytes.Buffer
	d := openTest(t, dir, &warn)
	for k := uint64(0); k < 100; k++ {
		d.Put(k, k*3)
	}
	if st := d.Stats(); st.Appended != 100 || st.Loaded != 0 {
		t.Fatalf("cold stats = %+v, want 100 appended", st)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2 := openTest(t, dir, &warn)
	defer d2.Close()
	st := d2.Stats()
	if st.Loaded != 100 || st.Entries != 100 || st.Corrupt != 0 {
		t.Fatalf("warm stats = %+v, want 100 loaded entries", st)
	}
	if st.DiskBytes == 0 {
		t.Fatal("warm store reports 0 bytes on disk")
	}
	for k := uint64(0); k < 100; k++ {
		v, ok := d2.Get(k)
		if !ok || v != k*3 {
			t.Fatalf("Get(%d) = %d, %t", k, v, ok)
		}
	}
	if d2.Hits() != 100 || d2.Misses() != 0 {
		t.Fatalf("hits/misses = %d/%d, want 100/0", d2.Hits(), d2.Misses())
	}
	if warn.Len() != 0 {
		t.Fatalf("unexpected warnings: %s", warn.String())
	}
}

// TestDiskPutIsIdempotent: re-puts (merge overlaps, racing workers) do not
// bloat the segment.
func TestDiskPutIsIdempotent(t *testing.T) {
	dir := t.TempDir()
	var warn bytes.Buffer
	d := openTest(t, dir, &warn)
	d.Put(7, 42)
	d.Put(7, 42)
	if st := d.Stats(); st.Appended != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 appended entry", st)
	}
	d.Close()
}

// TestPutBatchMatchesPutBytes: the group-commit path encodes exactly the
// records N single Puts would — the segment files are byte-identical — so
// a reader cannot tell which path wrote a store.
func TestPutBatchMatchesPutBytes(t *testing.T) {
	var warn bytes.Buffer
	one := t.TempDir()
	d1 := openTest(t, one, &warn)
	for k := uint64(0); k < 20; k++ {
		d1.Put(k, k*3)
	}
	if err := d1.Close(); err != nil {
		t.Fatal(err)
	}

	batched := t.TempDir()
	d2 := openTest(t, batched, &warn)
	keys := make([]uint64, 20)
	vals := make([]uint64, 20)
	for k := range keys {
		keys[k], vals[k] = uint64(k), uint64(k)*3
	}
	d2.PutBatch(keys, vals)
	if st := d2.Stats(); st.Appended != 20 || st.Entries != 20 {
		t.Fatalf("batched stats = %+v, want 20 appended entries", st)
	}
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}

	a, err := os.ReadFile(segPath(t, one))
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(segPath(t, batched))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("batched segment differs from put-by-put segment: %d vs %d bytes", len(b), len(a))
	}
}

// TestPutBatchIsOneWrite pins the group-commit syscall shape the same way
// TestWithSyncEveryCountsDown pins Put's: a 6-record batch at sync-every-2
// is 1 segment-create open + 1 magic write + 1 record write + 1 fsync = 4
// operations, where the same records through Put cost 11.
func TestPutBatchIsOneWrite(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS(), FaultSpec{})
	var warn bytes.Buffer
	d, err := Open[uint64](dir, u64Codec{}, WithFS(ffs), WithWarnWriter(&warn), WithSyncEvery(2))
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]uint64, 6)
	vals := make([]uint64, 6)
	for k := range keys {
		keys[k], vals[k] = uint64(k), uint64(k)
	}
	before := ffs.Ops()
	d.PutBatch(keys, vals)
	if got := ffs.Ops() - before; got != 4 {
		t.Fatalf("op delta = %d, want 4 (1 open + 2 writes + 1 fsync)", got)
	}
	// An all-resident batch touches the index only: zero filesystem ops.
	before = ffs.Ops()
	d.PutBatch(keys, vals)
	if got := ffs.Ops() - before; got != 0 {
		t.Fatalf("resident re-batch cost %d filesystem ops, want 0", got)
	}
	d.Close()
}

// TestPutBatchDedups: resident keys — from earlier Puts or duplicated
// inside the batch itself — are dropped exactly like Put drops them.
func TestPutBatchDedups(t *testing.T) {
	dir := t.TempDir()
	var warn bytes.Buffer
	d := openTest(t, dir, &warn)
	d.Put(7, 42)
	d.PutBatch([]uint64{7, 8, 9, 9}, []uint64{42, 43, 44, 44})
	if st := d.Stats(); st.Appended != 3 || st.Entries != 3 {
		t.Fatalf("stats = %+v, want 3 appended entries", st)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2 := openTest(t, dir, &warn)
	defer d2.Close()
	if st := d2.Stats(); st.Loaded != 3 {
		t.Fatalf("reopen loaded %d, want 3", st.Loaded)
	}
	for k := uint64(7); k <= 9; k++ {
		if v, ok := d2.Get(k); !ok || v != k+35 {
			t.Fatalf("Get(%d) = %d, %t", k, v, ok)
		}
	}
}

// TestPutBatchEmptyAndMismatched: an empty batch is a no-op that creates no
// segment, and mismatched key/value lengths panic loudly.
func TestPutBatchEmptyAndMismatched(t *testing.T) {
	dir := t.TempDir()
	var warn bytes.Buffer
	d := openTest(t, dir, &warn)
	defer d.Close()
	d.PutBatch(nil, nil)
	if st := d.Stats(); st.DiskBytes != 0 || st.Appended != 0 {
		t.Fatalf("empty batch touched the disk: %+v", st)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched PutBatch lengths did not panic")
		}
	}()
	d.PutBatch([]uint64{1}, nil)
}

// BenchmarkStoreAppendBatch is the group-commit throughput figure: one
// 64-record PutBatch per iteration — one lock, one buffer, one write
// syscall — against a disk-backed store. The benchjson suite tracks it so
// the batched path cannot quietly decay back toward per-record costs.
func BenchmarkStoreAppendBatch(b *testing.B) {
	var warn bytes.Buffer
	d, err := Open[uint64](b.TempDir(), u64Codec{}, WithWarnWriter(&warn))
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	const batchN = 64
	keys := make([]uint64, batchN)
	vals := make([]uint64, batchN)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := uint64(i) * batchN
		for j := range keys {
			keys[j], vals[j] = base+uint64(j), base
		}
		d.PutBatch(keys, vals)
	}
	b.StopTimer()
	if st := d.Stats(); st.Degraded || warn.Len() > 0 {
		b.Fatalf("benchmark store degraded: %+v\n%s", st, warn.String())
	}
}

// segPath returns the store's single segment file.
func segPath(t *testing.T, dir string) string {
	t.Helper()
	m, err := filepath.Glob(filepath.Join(dir, "seg-*.psr"))
	if err != nil || len(m) != 1 {
		t.Fatalf("want exactly one segment, got %v (%v)", m, err)
	}
	return m[0]
}

// writeStore persists keys 0..n-1 (value key+1000) and returns the segment
// path.
func writeStore(t *testing.T, dir string, n int) string {
	t.Helper()
	var warn bytes.Buffer
	d := openTest(t, dir, &warn)
	for k := 0; k < n; k++ {
		d.Put(uint64(k), uint64(k)+1000)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	return segPath(t, dir)
}

// TestDiskTruncatedSegmentDropsTail: a torn final write (crash) loses only
// the torn record; everything before it still loads, and the scan warns.
func TestDiskTruncatedSegmentDropsTail(t *testing.T) {
	dir := t.TempDir()
	seg := writeStore(t, dir, 10)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	var warn bytes.Buffer
	d := openTest(t, dir, &warn)
	defer d.Close()
	st := d.Stats()
	if st.Loaded != 9 || st.Corrupt == 0 {
		t.Fatalf("stats after truncation = %+v, want 9 loaded and corruption counted", st)
	}
	if !strings.Contains(warn.String(), "torn") {
		t.Fatalf("expected a torn-record warning, got %q", warn.String())
	}
	if _, ok := d.Get(9); ok {
		t.Fatal("the torn record must not load")
	}
	if v, ok := d.Get(8); !ok || v != 1008 {
		t.Fatal("records before the tear must load")
	}
}

// TestDiskFlippedByteSkipsRecord: a checksum failure skips exactly that
// record and keeps scanning the rest of the segment.
func TestDiskFlippedByteSkipsRecord(t *testing.T) {
	dir := t.TempDir()
	seg := writeStore(t, dir, 10)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte of the first record: offset = 8 (magic) + 12
	// (header) + 4 (inside the payload).
	data[8+12+4] ^= 0xff
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	var warn bytes.Buffer
	d := openTest(t, dir, &warn)
	defer d.Close()
	st := d.Stats()
	if st.Loaded != 9 || st.Corrupt != 1 {
		t.Fatalf("stats after flip = %+v, want 9 loaded / 1 corrupt", st)
	}
	if !strings.Contains(warn.String(), "checksum") {
		t.Fatalf("expected a checksum warning, got %q", warn.String())
	}
	if _, ok := d.Get(0); ok {
		t.Fatal("the corrupted record must not load")
	}
	if v, ok := d.Get(9); !ok || v != 1009 {
		t.Fatal("records after the corruption must still load")
	}
}

// TestDiskWrongSchemaVersionSkipsRecord: records from a future or past
// schema decode-fail, warn, and are recomputed — never misread.
func TestDiskWrongSchemaVersionSkipsRecord(t *testing.T) {
	dir := t.TempDir()
	// Write with a codec whose schema byte differs.
	d, err := Open[uint64](dir, altCodec{}, WithWarnWriter(os.Stderr))
	if err != nil {
		t.Fatal(err)
	}
	d.Put(1, 11)
	d.Put(2, 22)
	d.Close()

	var warn bytes.Buffer
	d2 := openTest(t, dir, &warn)
	defer d2.Close()
	st := d2.Stats()
	if st.Loaded != 0 || st.Corrupt != 2 {
		t.Fatalf("stats = %+v, want 0 loaded / 2 corrupt (wrong schema)", st)
	}
	if !strings.Contains(warn.String(), "schema") {
		t.Fatalf("expected a schema warning, got %q", warn.String())
	}
	if _, ok := d2.Get(1); ok {
		t.Fatal("wrong-schema records must not load")
	}
}

// altCodec writes valid records under a different schema byte.
type altCodec struct{}

func (altCodec) Append(dst []byte, v uint64) []byte {
	dst = append(dst, u64Schema+1)
	return binary.LittleEndian.AppendUint64(dst, v)
}

func (altCodec) Decode(p []byte) (uint64, error) {
	if len(p) != 9 || p[0] != u64Schema+1 {
		return 0, fmt.Errorf("schema mismatch")
	}
	return binary.LittleEndian.Uint64(p[1:]), nil
}

// TestDiskBadHeaderSkipsSegment: a file that is not a segment is skipped
// whole, without aborting the open.
func TestDiskBadHeaderSkipsSegment(t *testing.T) {
	dir := t.TempDir()
	writeStore(t, dir, 3)
	if err := os.WriteFile(filepath.Join(dir, "seg-000099.psr"), []byte("not a segment"), 0o644); err != nil {
		t.Fatal(err)
	}
	var warn bytes.Buffer
	d := openTest(t, dir, &warn)
	defer d.Close()
	if st := d.Stats(); st.Loaded != 3 || st.Corrupt != 1 {
		t.Fatalf("stats = %+v, want 3 loaded / 1 corrupt segment", st)
	}
	if !strings.Contains(warn.String(), "header") {
		t.Fatalf("expected a header warning, got %q", warn.String())
	}
}

// TestDiskSecondWriterGetsOwnSegment: sequential processes append to fresh
// segments and the union loads.
func TestDiskSecondWriterGetsOwnSegment(t *testing.T) {
	dir := t.TempDir()
	var warn bytes.Buffer
	d := openTest(t, dir, &warn)
	d.Put(1, 100)
	d.Close()
	d2 := openTest(t, dir, &warn)
	d2.Put(2, 200)
	d2.Close()

	m, _ := filepath.Glob(filepath.Join(dir, "seg-*.psr"))
	if len(m) != 2 {
		t.Fatalf("want 2 segments, got %v", m)
	}
	d3 := openTest(t, dir, &warn)
	defer d3.Close()
	if st := d3.Stats(); st.Loaded != 2 || st.Entries != 2 {
		t.Fatalf("stats = %+v, want both writers' records", st)
	}
}

// TestMergeUnionsStores: Merge assembles N shard stores into one
// destination; a typo'd directory fails loudly.
func TestMergeUnionsStores(t *testing.T) {
	dirs := []string{t.TempDir(), t.TempDir()}
	var warn bytes.Buffer
	for si, dir := range dirs {
		d := openTest(t, dir, &warn)
		for k := si; k < 10; k += 2 {
			d.Put(uint64(k), uint64(k)*7)
		}
		d.Close()
	}
	dst := NewMem[uint64]()
	if err := Merge[uint64](dst, u64Codec{}, dirs, WithWarnWriter(&warn)); err != nil {
		t.Fatal(err)
	}
	if dst.Len() != 10 {
		t.Fatalf("merged %d entries, want 10", dst.Len())
	}
	for k := uint64(0); k < 10; k++ {
		if v, ok := dst.Get(k); !ok || v != k*7 {
			t.Fatalf("merged Get(%d) = %d, %t", k, v, ok)
		}
	}
	if err := Merge[uint64](dst, u64Codec{}, []string{filepath.Join(dirs[0], "no-such-shard")}); err == nil {
		t.Fatal("merging a missing directory must fail loudly")
	}
}

// TestSegmentNameMatchIsAnchored: only exact seg-NNNNNN.psr names are
// segments — backup copies and temp files must neither double-load records
// nor inflate the corruption counters.
func TestSegmentNameMatchIsAnchored(t *testing.T) {
	dir := t.TempDir()
	seg := writeStore(t, dir, 3)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	for _, stray := range []string{"seg-000001.psr.bak", "seg-000001.psr.tmp", "seg-.psr", "seg-1x.psr", "xseg-000002.psr"} {
		if err := os.WriteFile(filepath.Join(dir, stray), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	var warn bytes.Buffer
	d := openTest(t, dir, &warn)
	defer d.Close()
	if st := d.Stats(); st.Loaded != 3 || st.Corrupt != 0 {
		t.Fatalf("stats = %+v, want only the real segment's 3 records", st)
	}
	if warn.Len() != 0 {
		t.Fatalf("stray files caused warnings: %s", warn.String())
	}
}

// TestNilMemIsAlwaysMissStore: a typed-nil *Mem behind the Store interface
// behaves like the pointer-typed memo era — no caching, no panic.
func TestNilMemIsAlwaysMissStore(t *testing.T) {
	var m *Mem[uint64]
	var st Store[uint64] = m
	st.Put(1, 10)
	if _, ok := st.Get(1); ok {
		t.Fatal("nil store returned a value")
	}
	if st.Len() != 0 || st.Hits() != 0 || st.Misses() != 0 {
		t.Fatal("nil store reports non-zero counters")
	}
	if (st.Stats() != Stats{}) {
		t.Fatal("nil store reports non-zero stats")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestMergeSurfacesCorruption: corruption met while merging lands in the
// destination's audit counters for both destination kinds — the -v stats
// line must not report a clean merge over a damaged shard store.
func TestMergeSurfacesCorruption(t *testing.T) {
	src := t.TempDir()
	seg := writeStore(t, src, 4)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[8+12+2] ^= 0x40 // flip a byte in the first record's payload
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	var warn bytes.Buffer
	mem := NewMem[uint64]()
	if err := Merge[uint64](mem, u64Codec{}, []string{src}, WithWarnWriter(&warn)); err != nil {
		t.Fatal(err)
	}
	if st := mem.Stats(); st.Loaded != 3 || st.Corrupt != 1 {
		t.Fatalf("mem merge stats = %+v, want 3 loaded / 1 corrupt", st)
	}

	disk := openTest(t, t.TempDir(), &warn)
	defer disk.Close()
	if err := Merge[uint64](disk, u64Codec{}, []string{src}, WithWarnWriter(&warn)); err != nil {
		t.Fatal(err)
	}
	if st := disk.Stats(); st.Loaded != 3 || st.Corrupt != 1 {
		t.Fatalf("disk merge stats = %+v, want 3 loaded / 1 corrupt", st)
	}
}

// TestMergeIntoDiskPersistsUnion: merging into a disk-backed destination
// also persists the union, so the merged store is itself warm.
func TestMergeIntoDiskPersistsUnion(t *testing.T) {
	src, dstDir := t.TempDir(), t.TempDir()
	var warn bytes.Buffer
	d := openTest(t, src, &warn)
	d.Put(5, 55)
	d.Close()

	dst := openTest(t, dstDir, &warn)
	if err := Merge[uint64](dst, u64Codec{}, []string{src}, WithWarnWriter(&warn)); err != nil {
		t.Fatal(err)
	}
	dst.Close()

	re := openTest(t, dstDir, &warn)
	defer re.Close()
	if v, ok := re.Get(5); !ok || v != 55 {
		t.Fatal("merged record did not persist in the destination store")
	}
}

// TestMemGetOrCompute pins the single-entry-point contract runTrial and
// the serving daemon rely on: a warm key is one counted hit with compute
// never called; a cold key computes once and persists; a compute error is
// returned without storing anything; and a typed-nil *Mem computes without
// retaining — identical to its drop-writes Put.
func TestMemGetOrCompute(t *testing.T) {
	m := NewMem[uint64]()
	calls := 0
	v, err := m.GetOrCompute(1, func() (uint64, error) { calls++; return 10, nil })
	if err != nil || v != 10 || calls != 1 {
		t.Fatalf("cold: v=%d err=%v calls=%d", v, err, calls)
	}
	v, err = m.GetOrCompute(1, func() (uint64, error) { calls++; return 0, nil })
	if err != nil || v != 10 || calls != 1 {
		t.Fatalf("warm: v=%d err=%v calls=%d (compute ran on a warm key)", v, err, calls)
	}
	if m.Hits() != 1 || m.Misses() != 1 {
		t.Fatalf("hits/misses = %d/%d, want 1/1", m.Hits(), m.Misses())
	}

	sentinel := fmt.Errorf("compute failed")
	if _, err := m.GetOrCompute(2, func() (uint64, error) { return 99, sentinel }); err != sentinel {
		t.Fatalf("error not propagated: %v", err)
	}
	if _, ok := m.Get(2); ok {
		t.Fatal("failed computation was stored")
	}

	var nilMem *Mem[uint64]
	nilCalls := 0
	for i := 0; i < 2; i++ {
		if v, err := nilMem.GetOrCompute(3, func() (uint64, error) { nilCalls++; return 7, nil }); err != nil || v != 7 {
			t.Fatalf("nil mem: v=%d err=%v", v, err)
		}
	}
	if nilCalls != 2 {
		t.Fatalf("nil mem memoized: %d calls, want 2", nilCalls)
	}
}

// TestDiskGetOrCompute: the disk tier's single entry point persists cold
// results (a re-open sees them) and replays warm ones without recompute.
func TestDiskGetOrCompute(t *testing.T) {
	dir := t.TempDir()
	var warn bytes.Buffer
	d := openTest(t, dir, &warn)
	calls := 0
	for i := 0; i < 2; i++ {
		v, err := d.GetOrCompute(4, func() (uint64, error) { calls++; return 44, nil })
		if err != nil || v != 44 {
			t.Fatalf("v=%d err=%v", v, err)
		}
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	sentinel := fmt.Errorf("sim failed")
	if _, err := d.GetOrCompute(5, func() (uint64, error) { return 0, sentinel }); err != sentinel {
		t.Fatalf("error not propagated: %v", err)
	}
	if st := d.Stats(); st.Appended != 1 {
		t.Fatalf("appended = %d, want 1 (failed compute must not persist)", st.Appended)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	re := openTest(t, dir, &warn)
	defer re.Close()
	if v, err := re.GetOrCompute(4, func() (uint64, error) { t.Error("recompute after re-open"); return 0, nil }); err != nil || v != 44 {
		t.Fatalf("warm re-open: v=%d err=%v", v, err)
	}
}
