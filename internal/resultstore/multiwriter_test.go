package resultstore

import (
	"bytes"
	"path/filepath"
	"sync"
	"testing"
)

// True multi-writer coverage: several handles appending into one store
// directory — sequentially across many generations, and concurrently from
// two handles in one process (the shape a future always-on advisor daemon
// needs: its store can be open while a CLI run appends to the same
// directory).

// TestDiskReopenManySegments: a dozen sequential writer generations, then
// one open that must assemble all of them.
func TestDiskReopenManySegments(t *testing.T) {
	dir := t.TempDir()
	const gens, perGen = 12, 7
	var warn bytes.Buffer
	for g := 0; g < gens; g++ {
		d := openTest(t, dir, &warn)
		for i := 0; i < perGen; i++ {
			d.Put(uint64(g*perGen+i), uint64(g*perGen+i)*11)
		}
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
	}
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.psr"))
	if err != nil || len(segs) != gens {
		t.Fatalf("%d segments (%v), want one per generation (%d)", len(segs), err, gens)
	}
	d := openTest(t, dir, &warn)
	defer d.Close()
	st := d.Stats()
	if st.Loaded != gens*perGen || st.Corrupt != 0 {
		t.Fatalf("stats = %+v, want all %d records from %d segments", st, gens*perGen, gens)
	}
	for k := uint64(0); k < gens*perGen; k++ {
		if v, ok := d.Get(k); !ok || v != k*11 {
			t.Fatalf("Get(%d) = %d, %t", k, v, ok)
		}
	}
	if warn.Len() != 0 {
		t.Fatalf("clean multi-segment store warned: %s", warn.String())
	}
}

// TestDiskTwoHandlesOneDirCollide: two stores opened on the same directory
// before either has written race for segment 1; the loser must retry past
// the O_EXCL collision onto its own segment, and both handles' records
// survive a reopen.
func TestDiskTwoHandlesOneDirCollide(t *testing.T) {
	dir := t.TempDir()
	var warn bytes.Buffer
	a, err := Open[uint64](dir, u64Codec{}, WithWarnWriter(&warn), WithSleep(nopSleep))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Open[uint64](dir, u64Codec{}, WithWarnWriter(&warn), WithSleep(nopSleep))
	if err != nil {
		t.Fatal(err)
	}
	a.Put(1, 100) // claims seg-000001
	b.Put(2, 200) // collides on seg-000001, must land in seg-000002
	if st := b.Stats(); st.Retries == 0 || st.Recovered == 0 {
		t.Fatalf("loser's collision not counted: %+v", st)
	}
	a.Put(3, 300)
	b.Put(4, 400)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.psr"))
	if len(segs) != 2 {
		t.Fatalf("%d segments, want one per handle: %v", len(segs), segs)
	}
	d := openTest(t, dir, &warn)
	defer d.Close()
	if st := d.Stats(); st.Loaded != 4 || st.Corrupt != 0 {
		t.Fatalf("reopen stats = %+v, want all 4 records from both writers", st)
	}
	for _, kv := range [][2]uint64{{1, 100}, {2, 200}, {3, 300}, {4, 400}} {
		if v, ok := d.Get(kv[0]); !ok || v != kv[1] {
			t.Fatalf("Get(%d) = %d, %t, want %d", kv[0], v, ok, kv[1])
		}
	}
}

// TestDiskConcurrentHandlesInterleave: two handles appending concurrently
// from separate goroutines (even/odd key spaces) — no lost records, no
// corruption, both partitions fully visible after reopen.
func TestDiskConcurrentHandlesInterleave(t *testing.T) {
	dir := t.TempDir()
	const perWriter = 200
	var warn bytes.Buffer
	var mu sync.Mutex // warn buffer is shared by both handles
	open := func() *Disk[uint64] {
		t.Helper()
		d, err := Open[uint64](dir, u64Codec{}, WithWarner(NewWarner(lockedWriter{&mu, &warn}, DefaultWarnLimit)), WithSleep(nopSleep))
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	a, b := open(), open()

	var wg sync.WaitGroup
	for i, d := range []*Disk[uint64]{a, b} {
		wg.Add(1)
		go func(parity uint64, d *Disk[uint64]) {
			defer wg.Done()
			for k := uint64(0); k < perWriter; k++ {
				d.Put(k*2+parity, (k*2+parity)*3)
			}
		}(uint64(i), d)
	}
	wg.Wait()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	d := openTest(t, dir, &warn)
	defer d.Close()
	st := d.Stats()
	if st.Loaded != 2*perWriter || st.Corrupt != 0 {
		t.Fatalf("reopen stats = %+v, want all %d records intact", st, 2*perWriter)
	}
	for k := uint64(0); k < 2*perWriter; k++ {
		if v, ok := d.Get(k); !ok || v != k*3 {
			t.Fatalf("lost record %d (= %d, %t)", k, v, ok)
		}
	}
}

// lockedWriter serializes writes from two stores sharing one test buffer.
type lockedWriter struct {
	mu *sync.Mutex
	w  *bytes.Buffer
}

func (l lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}
