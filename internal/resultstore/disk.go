package resultstore

// The on-disk tier. A store directory holds append-only segment files
// (seg-NNNNNN.psr); each process that writes opens its own fresh segment
// with O_EXCL, so concurrent writers — shard runs on a shared filesystem,
// overlapping local runs — never interleave bytes. The index is the
// in-memory tier itself, rebuilt at open by scanning every segment; there
// is no separate index file to go stale or corrupt.
//
// Segment layout:
//
//	[8B magic "PSRSEG1\n"]
//	record*: [8B key][4B payload len][payload][8B FNV-1a of key+len+payload]
//
// all little-endian. The scan trusts nothing it cannot prove: a segment
// without the magic is skipped whole; a record whose length field is
// implausible or runs past EOF ends the segment (a torn final write, the
// crash case); a record whose checksum fails is skipped individually when
// the corruption is in the payload (the length field still frames the next
// record, so the scan resyncs there); a payload the Codec rejects (wrong
// schema version) is skipped with a warning. A flip inside the length
// field itself cannot be told apart from a valid frame until the checksum
// fails, so it may desync the scan and cost the rest of that segment —
// the deliberate trade for a 20-byte record overhead: every failure mode
// degrades to recomputation (bounded by one segment), never to bad data.

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/cache"
)

const (
	segMagic = "PSRSEG1\n"
	// segPrefix/segSuffix frame segment file names: seg-000001.psr.
	segPrefix = "seg-"
	segSuffix = ".psr"
	// recHeaderLen is key (8) + payload length (4).
	recHeaderLen = 12
	// recSumLen is the trailing checksum.
	recSumLen = 8
	// MaxPayload bounds one record's payload; anything larger in a length
	// field is treated as corruption, which also stops a desynced scan
	// from allocating garbage.
	MaxPayload = 1 << 20
)

// Codec converts values to and from their durable byte form. Encodings
// must be canonical and versioned (see Enc): Append writes the schema
// version first, Decode rejects payloads it does not understand — the
// rejection is what turns schema evolution into recomputation instead of
// misreading.
type Codec[V any] interface {
	// Append serializes v onto dst and returns the extended slice.
	Append(dst []byte, v V) []byte
	// Decode parses one durable payload.
	Decode(payload []byte) (V, error)
}

// Option configures Open and Merge.
type Option func(*options)

type options struct {
	warn io.Writer
}

// WithWarnWriter routes corruption warnings (default os.Stderr).
func WithWarnWriter(w io.Writer) Option {
	return func(o *options) { o.warn = w }
}

// Disk is the durable Store tier: an in-memory index/cache over append-only
// segment files. Get is a pure memory-tier lookup (the open scan loads
// every intact record), Put appends one record to this process's segment.
type Disk[V any] struct {
	dir   string
	codec Codec[V]
	memo  *cache.Memo[V]
	warn  io.Writer

	mu        sync.Mutex
	seg       *os.File // this process's segment; created lazily on first Put
	nextSeg   int      // next segment number to try for O_EXCL creation
	loaded    uint64
	appended  uint64
	corrupt   uint64
	diskBytes int64
}

// Open opens (creating if needed) the store directory at dir, scans every
// segment into the in-memory index, and returns the store. Corrupt or
// undecodable records are skipped with a warning and will simply be
// recomputed and re-appended by the run.
func Open[V any](dir string, codec Codec[V], opts ...Option) (*Disk[V], error) {
	o := options{warn: os.Stderr}
	for _, opt := range opts {
		opt(&o)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("resultstore: %w", err)
	}
	d := &Disk[V]{dir: dir, codec: codec, memo: cache.NewMemo[V](), warn: o.warn, nextSeg: 1}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	for _, s := range segs {
		if s.n >= d.nextSeg {
			d.nextSeg = s.n + 1
		}
		loaded, corrupt, bytes := scanSegment(s.path, codec, d.warn, d.memo.Put)
		d.loaded += loaded
		d.corrupt += corrupt
		d.diskBytes += bytes
	}
	return d, nil
}

// Dir returns the store's directory.
func (d *Disk[V]) Dir() string { return d.dir }

// Get implements Store: a memory-tier lookup (every intact durable record
// was loaded at open).
func (d *Disk[V]) Get(key uint64) (V, bool) { return d.memo.Get(key) }

// Put implements Store: index the value and append one durable record.
// Re-puts of a resident key are dropped (values are deterministic, so the
// record on disk is already correct) — merges and racing workers cannot
// bloat the store.
func (d *Disk[V]) Put(key uint64, v V) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.memo.Contains(key) {
		return
	}
	d.memo.Put(key, v)
	if err := d.append(key, v); err != nil {
		// The run is still correct without the record — it just will not
		// be incremental. Surface the degradation once per failure.
		fmt.Fprintf(d.warn, "resultstore: %s: append failed: %v (run continues, result not persisted)\n", d.dir, err)
	}
}

// append writes one record to this process's segment, creating the segment
// on first use. Callers hold d.mu.
func (d *Disk[V]) append(key uint64, v V) error {
	if d.seg == nil {
		for {
			path := filepath.Join(d.dir, fmt.Sprintf("%s%06d%s", segPrefix, d.nextSeg, segSuffix))
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
			d.nextSeg++
			if err == nil {
				if _, err := f.Write([]byte(segMagic)); err != nil {
					f.Close()
					return err
				}
				d.seg = f
				d.diskBytes += int64(len(segMagic))
				break
			}
			if !os.IsExist(err) {
				return err
			}
			// Another process claimed this number between our open-scan and
			// now; try the next one.
		}
	}
	rec := make([]byte, 0, recHeaderLen+recSumLen+64)
	rec = binary.LittleEndian.AppendUint64(rec, key)
	rec = append(rec, 0, 0, 0, 0) // payload length, patched below
	rec = d.codec.Append(rec, v)
	payloadLen := len(rec) - recHeaderLen
	if payloadLen > MaxPayload {
		return fmt.Errorf("record payload %d bytes exceeds MaxPayload", payloadLen)
	}
	binary.LittleEndian.PutUint32(rec[8:], uint32(payloadLen))
	rec = binary.LittleEndian.AppendUint64(rec, sumRecord(rec[:recHeaderLen+payloadLen]))
	// One Write call per record: either the whole record lands or the tail
	// is torn, and the open scan discards torn tails.
	if _, err := d.seg.Write(rec); err != nil {
		return err
	}
	d.appended++
	d.diskBytes += int64(len(rec))
	return nil
}

// Len implements Store.
func (d *Disk[V]) Len() int { return d.memo.Len() }

// Hits implements Store.
func (d *Disk[V]) Hits() uint64 { return d.memo.Hits() }

// Misses implements Store.
func (d *Disk[V]) Misses() uint64 { return d.memo.Misses() }

// Stats implements Store.
func (d *Disk[V]) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	s := Stats{Hits: d.memo.Hits(), Misses: d.memo.Misses(), Entries: d.memo.Len()}
	s.Loaded = d.loaded
	s.Appended = d.appended
	s.Corrupt = d.corrupt
	s.DiskBytes = d.diskBytes
	return s
}

// Close implements Store: syncs and closes this process's segment. The
// store directory itself is a cache — deleting it at any time is safe and
// only costs recomputation.
func (d *Disk[V]) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.seg == nil {
		return nil
	}
	f := d.seg
	d.seg = nil
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Merge loads every intact record of the stores at dirs into dst — the
// shard-assembly path: N shard runs each persist their partition, and one
// merge run unions the stores into a single warm index (persisting the
// union too, when dst is itself disk-backed). A missing directory is an
// error: a typo'd shard path must not silently assemble a partial figure.
func Merge[V any](dst Store[V], codec Codec[V], dirs []string, opts ...Option) error {
	o := options{warn: os.Stderr}
	for _, opt := range opts {
		opt(&o)
	}
	for _, dir := range dirs {
		if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
			return fmt.Errorf("resultstore: merge: %q is not a store directory", dir)
		}
		segs, err := listSegments(dir)
		if err != nil {
			return err
		}
		var merged, corrupt uint64
		for _, s := range segs {
			loaded, bad, _ := scanSegment(s.path, codec, o.warn, dst.Put)
			merged += loaded
			corrupt += bad
		}
		// Fold the merge into the destination's audit counters: a
		// disk-backed destination counts merged records as loaded (its Put
		// already persisted the new ones), an in-memory one tracks them on
		// its own merge counters — either way the -v stats line reports
		// corruption met along the way instead of dropping it.
		switch d := dst.(type) {
		case *Disk[V]:
			d.mu.Lock()
			d.loaded += merged
			d.corrupt += corrupt
			d.mu.Unlock()
		case *Mem[V]:
			d.merged.Add(merged)
			d.corrupt.Add(corrupt)
		}
	}
	return nil
}

// segment is one discovered segment file.
type segment struct {
	path string
	n    int
}

// listSegments returns dir's segment files in creation order.
func listSegments(dir string) ([]segment, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("resultstore: %w", err)
	}
	var out []segment
	for _, e := range entries {
		n, ok := segmentNumber(e.Name())
		if !ok || e.IsDir() {
			continue
		}
		out = append(out, segment{path: filepath.Join(dir, e.Name()), n: n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].n < out[j].n })
	return out, nil
}

// segmentNumber parses an exact segment file name — segPrefix, digits,
// segSuffix, nothing else — so backup copies (seg-000001.psr.bak) and
// editor/rsync temp files never scan (or double-load) as segments.
func segmentNumber(name string) (int, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	mid := name[len(segPrefix) : len(name)-len(segSuffix)]
	if mid == "" {
		return 0, false
	}
	n := 0
	for _, c := range []byte(mid) {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	return n, true
}

// sumRecord checksums a record's key+len+payload bytes.
func sumRecord(rec []byte) uint64 {
	return cache.HashBytes(rec)
}

// scanSegment walks one segment, calling put for every provably-intact,
// decodable record. It returns how many records were loaded, how many were
// skipped as corrupt, and the segment's byte size (counted whole — corrupt
// bytes still occupy disk).
func scanSegment[V any](path string, codec Codec[V], warn io.Writer, put func(key uint64, v V)) (loaded, corrupt uint64, size int64) {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(warn, "resultstore: %s: unreadable segment: %v (its results will be recomputed)\n", path, err)
		return 0, 1, 0
	}
	size = int64(len(data))
	if len(data) < len(segMagic) || string(data[:len(segMagic)]) != segMagic {
		fmt.Fprintf(warn, "resultstore: %s: bad segment header — skipping segment (its results will be recomputed)\n", path)
		return 0, 1, size
	}
	off := len(segMagic)
	for off < len(data) {
		if len(data)-off < recHeaderLen+recSumLen {
			fmt.Fprintf(warn, "resultstore: %s: torn record at offset %d — dropping tail (will be recomputed)\n", path, off)
			corrupt++
			break
		}
		payloadLen := int(binary.LittleEndian.Uint32(data[off+8:]))
		end := off + recHeaderLen + payloadLen + recSumLen
		if payloadLen > MaxPayload || end > len(data) {
			fmt.Fprintf(warn, "resultstore: %s: torn or corrupt record at offset %d — dropping tail (will be recomputed)\n", path, off)
			corrupt++
			break
		}
		body := data[off : off+recHeaderLen+payloadLen]
		sum := binary.LittleEndian.Uint64(data[off+recHeaderLen+payloadLen:])
		if sumRecord(body) != sum {
			fmt.Fprintf(warn, "resultstore: %s: checksum mismatch at offset %d — skipping record (will be recomputed)\n", path, off)
			corrupt++
			off = end
			continue
		}
		key := binary.LittleEndian.Uint64(body)
		v, err := codec.Decode(body[recHeaderLen:])
		if err != nil {
			fmt.Fprintf(warn, "resultstore: %s: undecodable record at offset %d: %v — skipping record (will be recomputed)\n", path, off, err)
			corrupt++
			off = end
			continue
		}
		put(key, v)
		loaded++
		off = end
	}
	return loaded, corrupt, size
}
