package resultstore

// The on-disk tier. A store directory holds append-only segment files
// (seg-NNNNNN.psr); each writer — processes, or multiple stores opened on
// one directory inside one process — opens its own fresh segment with
// O_EXCL, so concurrent writers never interleave bytes. The index is the
// in-memory tier itself, rebuilt at open by scanning every segment; there
// is no separate index file to go stale or corrupt.
//
// Segment layout:
//
//	[8B magic "PSRSEG1\n"]
//	record*: [8B key][4B payload len][payload][8B FNV-1a of key+len+payload]
//
// all little-endian. The scan trusts nothing it cannot prove: a segment
// without the magic is skipped whole; a record whose length field is
// implausible or runs past EOF ends the segment (a torn final write, the
// crash case); a record whose checksum fails is skipped individually when
// the corruption is in the payload (the length field still frames the next
// record, so the scan resyncs there); a payload the Codec rejects (wrong
// schema version) is skipped with a warning. A flip inside the length
// field itself cannot be told apart from a valid frame until the checksum
// fails, so it may desync the scan and cost the rest of that segment —
// the deliberate trade for a 20-byte record overhead: every failure mode
// degrades to recomputation (bounded by one segment), never to bad data.
//
// Fault model (PR 8): every filesystem touch goes through an injectable FS
// (fs.go). Transient errors and O_EXCL collisions are retried under a
// bounded, jittered backoff; a write failure rotates to a fresh segment so
// a torn tail can never desync later appends; and when retries exhaust the
// store demotes itself to its in-memory tier with one warning — the run
// completes with identical output, it just stops being incremental. The
// durability boundary is explicit: a record is crash-durable only after a
// successful Sync (or Close, or the WithSyncEvery cadence); the
// crash-consistency harness (crash_test.go) proves that every record whose
// bytes landed before a cut survives re-open and nothing corrupt loads.

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/cache"
)

const (
	segMagic = "PSRSEG1\n"
	// segPrefix/segSuffix frame segment file names: seg-000001.psr.
	segPrefix = "seg-"
	segSuffix = ".psr"
	// probeName is the throwaway file Open creates to prove the directory
	// is writable before the run invests in simulation.
	probeName = ".psr-probe"
	// recHeaderLen is key (8) + payload length (4).
	recHeaderLen = 12
	// recSumLen is the trailing checksum.
	recSumLen = 8
	// MaxPayload bounds one record's payload; anything larger in a length
	// field is treated as corruption, which also stops a desynced scan
	// from allocating garbage.
	MaxPayload = 1 << 20
	// maxSegCollisions bounds the O_EXCL name search: a creation loop that
	// loses this many races in a row is not racing, it is broken.
	maxSegCollisions = 1024
)

// Codec converts values to and from their durable byte form. Encodings
// must be canonical and versioned (see Enc): Append writes the schema
// version first, Decode rejects payloads it does not understand — the
// rejection is what turns schema evolution into recomputation instead of
// misreading.
type Codec[V any] interface {
	// Append serializes v onto dst and returns the extended slice.
	Append(dst []byte, v V) []byte
	// Decode parses one durable payload.
	Decode(payload []byte) (V, error)
}

// Option configures Open and Merge.
type Option func(*options)

type options struct {
	warn       io.Writer
	warner     *Warner
	fs         FS
	syncEvery  int
	maxRetries int
	backoff    time.Duration
	sleep      func(time.Duration)
	degradedOK bool
}

func defaultOptions() options {
	return options{
		warn:       os.Stderr,
		fs:         OS(),
		maxRetries: 4,
		backoff:    time.Millisecond,
		sleep:      time.Sleep,
	}
}

// warnerOrDefault resolves the configured warner (an explicit shared one
// wins over a writer-wrapping default).
func (o *options) warnerOrDefault() *Warner {
	if o.warner != nil {
		return o.warner
	}
	return NewWarner(o.warn, DefaultWarnLimit)
}

// WithWarnWriter routes warnings (default os.Stderr) through a fresh
// rate-limited Warner over w.
func WithWarnWriter(w io.Writer) Option {
	return func(o *options) { o.warn = w }
}

// WithWarner shares an existing rate-limited Warner (e.g. one warner across
// a store and the merges feeding it). Overrides WithWarnWriter.
func WithWarner(w *Warner) Option {
	return func(o *options) { o.warner = w }
}

// WithFS substitutes the filesystem — the fault-injection seam (FaultFS).
func WithFS(fsys FS) Option {
	return func(o *options) { o.fs = fsys }
}

// WithSyncEvery fsyncs the active segment after every n successful appends,
// tightening the durability boundary from "at Sync/Close" to "within n
// records" at the cost of an fsync per n records (0 = sync only at
// Sync/Close, the default).
func WithSyncEvery(n int) Option {
	return func(o *options) { o.syncEvery = n }
}

// WithRetryPolicy bounds the transient-error retry loop: up to maxRetries
// re-attempts per operation, sleeping base<<attempt plus deterministic
// jitter between them.
func WithRetryPolicy(maxRetries int, base time.Duration) Option {
	return func(o *options) {
		if maxRetries >= 0 {
			o.maxRetries = maxRetries
		}
		if base > 0 {
			o.backoff = base
		}
	}
}

// WithSleep substitutes the backoff sleeper (test seam: chaos tests retry
// thousands of times and must not wait real milliseconds).
func WithSleep(sleep func(time.Duration)) Option {
	return func(o *options) { o.sleep = sleep }
}

// WithDegradedFallback(true) turns open-time unusability — a directory
// that cannot be created, read or written — into a degraded in-memory
// store with one warning instead of an error: the run completes with
// identical output, it just is not incremental. The default (false) fails
// fast at Open with a clear message, before any simulation time is spent.
func WithDegradedFallback(allow bool) Option {
	return func(o *options) { o.degradedOK = allow }
}

// Disk is the durable Store tier: an in-memory index/cache over append-only
// segment files. Get is a pure memory-tier lookup (the open scan loads
// every intact record), Put appends one record to this process's segment.
type Disk[V any] struct {
	dir    string
	codec  Codec[V]
	memo   *cache.Memo[V]
	warner *Warner
	fs     FS

	syncEvery  int
	maxRetries int
	backoff    time.Duration
	sleep      func(time.Duration)

	mu          sync.Mutex
	seg         File // this process's segment; created lazily on first Put
	nextSeg     int  // next segment number to try for O_EXCL creation
	sinceSync   int  // appends since the last fsync
	rng         uint64
	// Group-commit scratch (PutBatch): the encoded-records buffer and the
	// filtered key/value views, reused across batches.
	batchBuf  []byte
	batchKeys []uint64
	batchVals []V
	loaded      uint64
	appended    uint64
	corrupt     uint64
	retries     uint64
	recovered   uint64
	unpersisted uint64
	degraded    bool
	diskBytes   int64
}

// Open opens (creating if needed) the store directory at dir, proves it is
// writable, scans every segment into the in-memory index, and returns the
// store. Corrupt or undecodable records are skipped with a warning and
// will simply be recomputed and re-appended by the run. An unusable
// directory fails fast with a clear error — or, with
// WithDegradedFallback(true), yields a degraded in-memory store instead.
func Open[V any](dir string, codec Codec[V], opts ...Option) (*Disk[V], error) {
	o := defaultOptions()
	for _, opt := range opts {
		opt(&o)
	}
	d := &Disk[V]{
		dir: dir, codec: codec, memo: cache.NewMemo[V](),
		warner: o.warnerOrDefault(), fs: o.fs,
		syncEvery: o.syncEvery, maxRetries: o.maxRetries,
		backoff: o.backoff, sleep: o.sleep,
		nextSeg: 1,
		// Deterministic jitter: the stream is a pure function of the
		// directory name, so fault schedules replay exactly.
		rng: cache.HashBytes([]byte(dir)) | 1,
	}
	if err := d.retryDo(func() error { return d.fs.MkdirAll(dir, 0o755) }); err != nil {
		err = fmt.Errorf("resultstore: %s: cannot create store directory: %w", dir, err)
		if !o.degradedOK {
			return nil, err
		}
		d.degradeLocked(err)
		return d, nil
	}
	if err := d.probeWritable(); err != nil {
		err = fmt.Errorf("resultstore: %s: store directory is not writable: %w", dir, err)
		if !o.degradedOK {
			return nil, err
		}
		// Keep scanning: a read-only store still replays warm results.
		d.degradeLocked(err)
	}
	var segs []segment
	err := d.retryDo(func() error {
		var lerr error
		segs, lerr = listSegments(d.fs, dir)
		return lerr
	})
	if err != nil {
		if !o.degradedOK {
			return nil, err
		}
		if !d.degraded {
			d.degradeLocked(err)
		}
		return d, nil
	}
	for _, s := range segs {
		if s.n >= d.nextSeg {
			d.nextSeg = s.n + 1
		}
		loaded, corrupt, bytes := scanSegmentFile(d.retryReadFile, s.path, d.codec, d.warner, d.memo.Put)
		d.loaded += loaded
		d.corrupt += corrupt
		d.diskBytes += bytes
	}
	return d, nil
}

// probeWritable proves the directory accepts new files before the run
// invests simulation time in results it could not persist.
func (d *Disk[V]) probeWritable() error {
	path := filepath.Join(d.dir, probeName)
	return d.retryDo(func() error {
		f, err := d.fs.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			return err
		}
		err = f.Close()
		// Best-effort: a probe another concurrent Open already removed (or a
		// filesystem that refuses the delete) costs one stray dotfile, which
		// the segment-name anchor keeps out of every scan.
		d.fs.Remove(path)
		return err
	})
}

// retryDo runs op, retrying transient failures up to maxRetries times with
// jittered exponential backoff. Callers must hold d.mu when the store is
// shared (retry counters and the jitter stream are d-state).
func (d *Disk[V]) retryDo(op func() error) error {
	for attempt := 0; ; attempt++ {
		err := op()
		if err == nil {
			if attempt > 0 {
				d.recovered++
			}
			return nil
		}
		if attempt >= d.maxRetries || !transientErr(err) {
			return err
		}
		d.retries++
		d.sleep(d.backoffFor(attempt))
	}
}

// backoffFor returns base<<attempt plus up to 50% deterministic jitter.
func (d *Disk[V]) backoffFor(attempt int) time.Duration {
	if attempt > 10 {
		attempt = 10
	}
	step := d.backoff << uint(attempt)
	// xorshift64: cheap, seeded from the directory name at Open.
	d.rng ^= d.rng << 13
	d.rng ^= d.rng >> 7
	d.rng ^= d.rng << 17
	return step + time.Duration(d.rng%uint64(step/2+1))
}

// retryReadFile is fs.ReadFile under the transient-retry policy.
func (d *Disk[V]) retryReadFile(path string) ([]byte, error) {
	var data []byte
	err := d.retryDo(func() error {
		var err error
		data, err = d.fs.ReadFile(path)
		return err
	})
	return data, err
}

// Dir returns the store's directory.
func (d *Disk[V]) Dir() string { return d.dir }

// Get implements Store: a memory-tier lookup (every intact durable record
// was loaded at open).
func (d *Disk[V]) Get(key uint64) (V, bool) { return d.memo.Get(key) }

// Put implements Store: index the value and append one durable record.
// Re-puts of a resident key are dropped (values are deterministic, so the
// record on disk is already correct) — merges and racing workers cannot
// bloat the store. An append that fails after exhausting retries demotes
// the store to its in-memory tier: the run continues correct, with one
// warning, and every later Put is counted as unpersisted.
func (d *Disk[V]) Put(key uint64, v V) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.memo.Contains(key) {
		return
	}
	d.memo.Put(key, v)
	if d.degraded {
		d.unpersisted++
		return
	}
	if err := d.append(key, v); err != nil {
		d.unpersisted++
		d.degradeLocked(fmt.Errorf("resultstore: %s: append failed: %w", d.dir, err))
	}
}

// PutBatch is the group-commit append path: it indexes and persists
// len(keys) records through one lock acquisition, one encoded buffer, one
// write syscall and one retry/rotation/sync-cadence decision — where N
// single Puts would pay each of those N times. Semantics match N Puts
// exactly otherwise: resident keys are dropped (their records are already
// durable and correct), a degraded store only indexes, and an append that
// exhausts retries demotes the store to memory-only with the whole batch
// counted unpersisted. Durability is also batch-grained: none of the batch
// is crash-durable before the next successful fsync, and a crash mid-write
// tears only the batch's tail — records whose bytes landed intact still
// replay (the crash harness proves both properties byte by byte).
func (d *Disk[V]) PutBatch(keys []uint64, vals []V) {
	if len(keys) != len(vals) {
		panic(fmt.Sprintf("resultstore: PutBatch with %d keys and %d values", len(keys), len(vals)))
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	nk, nv := d.batchKeys[:0], d.batchVals[:0]
	for i, k := range keys {
		if d.memo.Contains(k) {
			continue
		}
		d.memo.Put(k, vals[i])
		nk = append(nk, k)
		nv = append(nv, vals[i])
	}
	d.batchKeys, d.batchVals = nk, nv
	if len(nk) == 0 {
		return
	}
	if d.degraded {
		d.unpersisted += uint64(len(nk))
		return
	}
	if err := d.appendBatch(nk, nv); err != nil {
		d.unpersisted += uint64(len(nk))
		d.degradeLocked(fmt.Errorf("resultstore: %s: batch append failed: %w", d.dir, err))
	}
}

// GetOrCompute implements Store: a warm hit is one sharded memo read with
// no disk I/O and no store lock; a miss runs compute outside d.mu (an
// append must never stall behind a simulation) and persists the value via
// Put, whose Contains dedup keeps racing cold computations of one key from
// writing duplicate records.
func (d *Disk[V]) GetOrCompute(key uint64, compute func() (V, error)) (V, error) {
	if v, ok := d.memo.Get(key); ok {
		return v, nil
	}
	v, err := compute()
	if err != nil {
		var zero V
		return zero, err
	}
	d.Put(key, v)
	return v, nil
}

// degradeLocked demotes the store to memory-only with one warning line.
// Callers hold d.mu (or own the store exclusively, as Open does).
func (d *Disk[V]) degradeLocked(cause error) {
	d.degraded = true
	if d.seg != nil {
		d.seg.Close()
		d.seg = nil
	}
	// Every degrade cause below is already "resultstore: ..."-prefixed.
	d.warner.Warnf("degraded", "%v — store degraded to memory-only (run continues, results will not persist)", cause)
}

// createSegment claims a fresh O_EXCL segment for this writer, retrying
// transient errors with backoff and racing past name collisions (another
// writer claiming the same number first) by advancing to the next number.
// Callers hold d.mu.
func (d *Disk[V]) createSegment() error {
	collisions, attempt := 0, 0
	for {
		path := filepath.Join(d.dir, fmt.Sprintf("%s%06d%s", segPrefix, d.nextSeg, segSuffix))
		f, err := d.fs.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
		d.nextSeg++
		if err == nil {
			n, werr := f.Write([]byte(segMagic))
			d.diskBytes += int64(n)
			if werr == nil && n < len(segMagic) {
				werr = io.ErrShortWrite
			}
			if werr != nil {
				// The claimed file now has a torn header; drop it (the scan
				// would skip it anyway) and treat the failure like any other
				// transient write: a fresh number on the next attempt.
				f.Close()
				d.fs.Remove(path)
				if !transientErr(werr) || attempt >= d.maxRetries {
					return werr
				}
				attempt++
				d.retries++
				d.sleep(d.backoffFor(attempt))
				continue
			}
			d.seg = f
			if attempt > 0 || collisions > 0 {
				d.recovered++
			}
			return nil
		}
		if os.IsExist(err) {
			// Another writer claimed this number between our open-scan and
			// now; move on. True multi-writer herds back off briefly every
			// few losses so they fan out over the name space instead of
			// lock-stepping through it.
			collisions++
			d.retries++
			if collisions > maxSegCollisions {
				return fmt.Errorf("no free segment name after %d collisions: %w", collisions, err)
			}
			if collisions%8 == 0 {
				d.sleep(d.backoffFor(attempt))
			}
			continue
		}
		if !transientErr(err) || attempt >= d.maxRetries {
			return err
		}
		attempt++
		d.retries++
		d.sleep(d.backoffFor(attempt))
	}
}

// append writes one record to this process's segment, creating the segment
// on first use. A failed or short write rotates to a fresh segment before
// retrying — the torn tail left behind is exactly what the open scan
// already absorbs, so a retry can never desync a segment that a crash
// would later replay. Callers hold d.mu.
func (d *Disk[V]) append(key uint64, v V) error {
	rec := make([]byte, 0, recHeaderLen+recSumLen+64)
	rec = binary.LittleEndian.AppendUint64(rec, key)
	rec = append(rec, 0, 0, 0, 0) // payload length, patched below
	rec = d.codec.Append(rec, v)
	payloadLen := len(rec) - recHeaderLen
	if payloadLen > MaxPayload {
		return fmt.Errorf("record payload %d bytes exceeds MaxPayload", payloadLen)
	}
	binary.LittleEndian.PutUint32(rec[8:], uint32(payloadLen))
	rec = binary.LittleEndian.AppendUint64(rec, sumRecord(rec[:recHeaderLen+payloadLen]))
	for attempt := 0; ; attempt++ {
		if d.seg == nil {
			if err := d.createSegment(); err != nil {
				return err
			}
		}
		// One Write call per record: either the whole record lands or the
		// tail is torn, and the open scan discards torn tails.
		n, err := d.seg.Write(rec)
		d.diskBytes += int64(n)
		if err == nil && n < len(rec) {
			err = io.ErrShortWrite
		}
		if err == nil {
			if attempt > 0 {
				d.recovered++
			}
			d.appended++
			d.sinceSync++
			if d.syncEvery > 0 && d.sinceSync >= d.syncEvery {
				if serr := d.syncLocked(); serr != nil {
					return serr
				}
			}
			return nil
		}
		// This segment may now carry a torn tail; rotate before any retry.
		d.seg.Close()
		d.seg = nil
		if !transientErr(err) || attempt >= d.maxRetries {
			return err
		}
		d.retries++
		d.sleep(d.backoffFor(attempt))
	}
}

// appendBatch encodes every record into one contiguous buffer and lands it
// with a single Write call — the group-commit counterpart of append. A
// failed or short write rotates to a fresh segment and retries the whole
// batch there, exactly like append's per-record retry: the torn tail left
// behind holds only whole-record prefixes plus at most one torn record,
// which the open scan already absorbs. The sync cadence is checked once
// for the batch. Callers hold d.mu.
func (d *Disk[V]) appendBatch(keys []uint64, vals []V) error {
	buf := d.batchBuf[:0]
	for i, key := range keys {
		start := len(buf)
		buf = binary.LittleEndian.AppendUint64(buf, key)
		buf = append(buf, 0, 0, 0, 0) // payload length, patched below
		buf = d.codec.Append(buf, vals[i])
		payloadLen := len(buf) - start - recHeaderLen
		if payloadLen > MaxPayload {
			d.batchBuf = buf[:0]
			return fmt.Errorf("record payload %d bytes exceeds MaxPayload", payloadLen)
		}
		binary.LittleEndian.PutUint32(buf[start+8:], uint32(payloadLen))
		buf = binary.LittleEndian.AppendUint64(buf, sumRecord(buf[start:start+recHeaderLen+payloadLen]))
	}
	d.batchBuf = buf // keep the grown capacity for the next batch
	for attempt := 0; ; attempt++ {
		if d.seg == nil {
			if err := d.createSegment(); err != nil {
				return err
			}
		}
		n, err := d.seg.Write(buf)
		d.diskBytes += int64(n)
		if err == nil && n < len(buf) {
			err = io.ErrShortWrite
		}
		if err == nil {
			if attempt > 0 {
				d.recovered++
			}
			d.appended += uint64(len(keys))
			d.sinceSync += len(keys)
			if d.syncEvery > 0 && d.sinceSync >= d.syncEvery {
				if serr := d.syncLocked(); serr != nil {
					return serr
				}
			}
			return nil
		}
		// This segment may now carry a torn tail; rotate before any retry.
		d.seg.Close()
		d.seg = nil
		if !transientErr(err) || attempt >= d.maxRetries {
			return err
		}
		d.retries++
		d.sleep(d.backoffFor(attempt))
	}
}

// syncLocked fsyncs the active segment under the retry policy. Callers
// hold d.mu.
func (d *Disk[V]) syncLocked() error {
	if d.seg == nil {
		return nil
	}
	if err := d.retryDo(d.seg.Sync); err != nil {
		return fmt.Errorf("fsync failed: %w", err)
	}
	d.sinceSync = 0
	return nil
}

// Sync is the explicit durability boundary: records appended before a
// successful Sync survive a crash (the open scan proves each one by
// checksum); records after it are guaranteed only by the next Sync, Close
// or WithSyncEvery cadence. A Sync that fails after retries degrades the
// store — fsync errors are not retryable promises on real kernels.
func (d *Disk[V]) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.degraded || d.seg == nil {
		return nil
	}
	err := d.syncLocked()
	if err != nil {
		d.degradeLocked(fmt.Errorf("resultstore: %s: %w", d.dir, err))
	}
	return err
}

// Len implements Store.
func (d *Disk[V]) Len() int { return d.memo.Len() }

// Hits implements Store.
func (d *Disk[V]) Hits() uint64 { return d.memo.Hits() }

// Misses implements Store.
func (d *Disk[V]) Misses() uint64 { return d.memo.Misses() }

// Stats implements Store.
func (d *Disk[V]) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	s := Stats{Hits: d.memo.Hits(), Misses: d.memo.Misses(), Entries: d.memo.Len()}
	s.Loaded = d.loaded
	s.Appended = d.appended
	s.Corrupt = d.corrupt
	s.DiskBytes = d.diskBytes
	s.Retries = d.retries
	s.Recovered = d.recovered
	s.Unpersisted = d.unpersisted
	s.Degraded = d.degraded
	s.Warnings = d.warner.Total()
	return s
}

// Close implements Store: syncs and closes this process's segment and
// flushes the warner's suppression summary. The store directory itself is
// a cache — deleting it at any time is safe and only costs recomputation.
func (d *Disk[V]) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	defer d.warner.Flush()
	if d.seg == nil {
		return nil
	}
	f := d.seg
	d.seg = nil
	if err := d.retryDo(f.Sync); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Merge loads every intact record of the stores at dirs into dst — the
// shard-assembly path: N shard runs each persist their partition, and one
// merge run unions the stores into a single warm index (persisting the
// union too, when dst is itself disk-backed). A missing directory is an
// error: a typo'd shard path must not silently assemble a partial figure.
func Merge[V any](dst Store[V], codec Codec[V], dirs []string, opts ...Option) error {
	o := defaultOptions()
	for _, opt := range opts {
		opt(&o)
	}
	warner := o.warnerOrDefault()
	// A group-committing destination takes each scanned segment as one
	// batch: one lock acquisition, one append buffer and one write syscall
	// per segment, instead of one of each per record.
	batcher, _ := dst.(interface{ PutBatch(keys []uint64, vals []V) })
	var batchKeys []uint64
	var batchVals []V
	for _, dir := range dirs {
		segs, err := listSegments(o.fs, dir)
		if err != nil {
			return fmt.Errorf("resultstore: merge: %q is not a readable store directory: %w", dir, err)
		}
		var merged, corrupt uint64
		for _, s := range segs {
			put := dst.Put
			if batcher != nil {
				batchKeys, batchVals = batchKeys[:0], batchVals[:0]
				put = func(key uint64, v V) {
					batchKeys = append(batchKeys, key)
					batchVals = append(batchVals, v)
				}
			}
			loaded, bad, _ := scanSegmentFile(o.fs.ReadFile, s.path, codec, warner, put)
			if batcher != nil {
				batcher.PutBatch(batchKeys, batchVals)
			}
			merged += loaded
			corrupt += bad
		}
		// Fold the merge into the destination's audit counters: a
		// disk-backed destination counts merged records as loaded (its Put
		// already persisted the new ones), an in-memory one tracks them on
		// its own merge counters — either way the -v stats line reports
		// corruption met along the way instead of dropping it.
		switch d := dst.(type) {
		case *Disk[V]:
			d.mu.Lock()
			d.loaded += merged
			d.corrupt += corrupt
			d.mu.Unlock()
		case *Mem[V]:
			d.merged.Add(merged)
			d.corrupt.Add(corrupt)
		}
	}
	warner.Flush()
	return nil
}

// segment is one discovered segment file.
type segment struct {
	path string
	n    int
}

// listSegments returns dir's segment files in creation order.
func listSegments(fsys FS, dir string) ([]segment, error) {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("resultstore: %w", err)
	}
	var out []segment
	for _, e := range entries {
		n, ok := segmentNumber(e.Name())
		if !ok || e.IsDir() {
			continue
		}
		out = append(out, segment{path: filepath.Join(dir, e.Name()), n: n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].n < out[j].n })
	return out, nil
}

// segmentNumber parses an exact segment file name — segPrefix, digits,
// segSuffix, nothing else — so backup copies (seg-000001.psr.bak) and
// editor/rsync temp files never scan (or double-load) as segments.
func segmentNumber(name string) (int, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	mid := name[len(segPrefix) : len(name)-len(segSuffix)]
	if mid == "" {
		return 0, false
	}
	n := 0
	for _, c := range []byte(mid) {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	return n, true
}

// sumRecord checksums a record's key+len+payload bytes.
func sumRecord(rec []byte) uint64 {
	return cache.HashBytes(rec)
}

// scanSegmentFile reads one segment through the given reader and walks it,
// calling put for every provably-intact, decodable record. It returns how
// many records were loaded, how many were skipped as corrupt, and the
// segment's byte size (counted whole — corrupt bytes still occupy disk).
func scanSegmentFile[V any](read func(string) ([]byte, error), path string, codec Codec[V], warner *Warner, put func(key uint64, v V)) (loaded, corrupt uint64, size int64) {
	data, err := read(path)
	if err != nil {
		warner.Warnf("unreadable-segment", "resultstore: %s: unreadable segment: %v (its results will be recomputed)", path, err)
		return 0, 1, 0
	}
	size = int64(len(data))
	if len(data) < len(segMagic) || string(data[:len(segMagic)]) != segMagic {
		warner.Warnf("bad-segment-header", "resultstore: %s: bad segment header — skipping segment (its results will be recomputed)", path)
		return 0, 1, size
	}
	off := len(segMagic)
	for off < len(data) {
		if len(data)-off < recHeaderLen+recSumLen {
			warner.Warnf("torn-record", "resultstore: %s: torn record at offset %d — dropping tail (will be recomputed)", path, off)
			corrupt++
			break
		}
		payloadLen := int(binary.LittleEndian.Uint32(data[off+8:]))
		end := off + recHeaderLen + payloadLen + recSumLen
		if payloadLen > MaxPayload || end > len(data) {
			warner.Warnf("torn-record", "resultstore: %s: torn or corrupt record at offset %d — dropping tail (will be recomputed)", path, off)
			corrupt++
			break
		}
		body := data[off : off+recHeaderLen+payloadLen]
		sum := binary.LittleEndian.Uint64(data[off+recHeaderLen+payloadLen:])
		if sumRecord(body) != sum {
			warner.Warnf("checksum-mismatch", "resultstore: %s: checksum mismatch at offset %d — skipping record (will be recomputed)", path, off)
			corrupt++
			off = end
			continue
		}
		key := binary.LittleEndian.Uint64(body)
		v, err := codec.Decode(body[recHeaderLen:])
		if err != nil {
			warner.Warnf("undecodable-record", "resultstore: %s: undecodable record at offset %d: %v — skipping record (will be recomputed)", path, off, err)
			corrupt++
			off = end
			continue
		}
		put(key, v)
		loaded++
		off = end
	}
	return loaded, corrupt, size
}
