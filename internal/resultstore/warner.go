package resultstore

// Warner is the rate-limited warning sink shared by the store layer (and
// borrowed by the experiment runner for its memo-bypass notice): warnings
// are grouped into short category keys, the first few of each category
// print in full, and the rest are counted silently — a mass-corrupt store
// emits a handful of lines plus one summary instead of 10k near-identical
// ones, while the totals still land in the -v statistics.

import (
	"fmt"
	"io"
	"sync"
)

// DefaultWarnLimit is how many warnings of one category print in full
// before suppression kicks in.
const DefaultWarnLimit = 5

// Warner rate-limits warning lines per category. Safe for concurrent use.
type Warner struct {
	mu      sync.Mutex
	w       io.Writer
	limit   uint64
	counts  map[string]uint64
	order   []string // categories in first-seen order, for stable summaries
	flushed map[string]uint64
}

// NewWarner returns a Warner writing to w, printing at most limit warnings
// per category (limit <= 0 means DefaultWarnLimit).
func NewWarner(w io.Writer, limit int) *Warner {
	if limit <= 0 {
		limit = DefaultWarnLimit
	}
	return &Warner{
		w:       w,
		limit:   uint64(limit),
		counts:  map[string]uint64{},
		flushed: map[string]uint64{},
	}
}

// Warnf records one warning in category cat and prints it (with a trailing
// newline) unless the category is over its limit. The first suppressed
// warning prints a one-line notice instead, so silence is never mistaken
// for health.
func (wr *Warner) Warnf(cat, format string, args ...any) {
	wr.mu.Lock()
	defer wr.mu.Unlock()
	if _, seen := wr.counts[cat]; !seen {
		wr.order = append(wr.order, cat)
	}
	wr.counts[cat]++
	switch n := wr.counts[cat]; {
	case n <= wr.limit:
		fmt.Fprintf(wr.w, format+"\n", args...)
	case n == wr.limit+1:
		fmt.Fprintf(wr.w, "resultstore: suppressing further %q warnings (%d shown); totals follow at close\n", cat, wr.limit)
	}
}

// Count returns how many warnings category cat has recorded.
func (wr *Warner) Count(cat string) uint64 {
	wr.mu.Lock()
	defer wr.mu.Unlock()
	return wr.counts[cat]
}

// Total returns the number of warnings recorded across every category,
// printed or suppressed.
func (wr *Warner) Total() uint64 {
	wr.mu.Lock()
	defer wr.mu.Unlock()
	var t uint64
	for _, n := range wr.counts {
		t += n
	}
	return t
}

// Suppressed returns how many warnings were counted but not printed.
func (wr *Warner) Suppressed() uint64 {
	wr.mu.Lock()
	defer wr.mu.Unlock()
	var t uint64
	for _, n := range wr.counts {
		if n > wr.limit {
			t += n - wr.limit
		}
	}
	return t
}

// Flush prints one summary line per category that suppressed warnings since
// the previous Flush. Store Close calls it, so a shared Warner may be
// flushed more than once without repeating totals.
func (wr *Warner) Flush() {
	wr.mu.Lock()
	defer wr.mu.Unlock()
	for _, cat := range wr.order {
		n := wr.counts[cat]
		if n <= wr.limit || n == wr.flushed[cat] {
			continue
		}
		fmt.Fprintf(wr.w, "resultstore: %q warnings: %d total, %d suppressed\n", cat, n, n-wr.limit)
		wr.flushed[cat] = n
	}
}
