// Package resultstore is the durable, shardable trial-result layer behind
// the experiment runner's memoization. A Store holds computed values keyed
// by 64-bit content hashes (canonical versioned encodings of the full trial
// configuration — see Enc); two tiers implement it:
//
//   - Mem: the in-memory memoization table (cache.Memo behind the Store
//     interface) — exactly the pre-durable behavior, zero overhead added.
//   - Disk: Mem transparently backed by an on-disk content-addressed store:
//     append-only segment files plus an index rebuilt at open, so repeated
//     runs are incremental across processes and shard runs on N machines
//     can be merged into one warm store.
//
// The disk format is crash-safe by construction rather than by locking:
// records are only ever appended, each carries a checksum, and the open
// scan skips anything it cannot prove intact — a torn tail, a flipped
// byte, an undecodable payload (e.g. a wrong schema version) — so the
// worst corruption costs a recomputation, never a wrong figure.
package resultstore

import (
	"sync/atomic"

	"repro/internal/cache"
)

// Store is the pluggable trial-result store: Get/Put keyed by canonical
// content hashes, plus the audit counters the CLIs surface with -v. All
// methods are safe for concurrent use by parallel trial workers.
type Store[V any] interface {
	// Get returns the stored value for key; every call counts as a hit or
	// a miss (for a memoized run, misses = simulations actually executed).
	Get(key uint64) (V, bool)
	// Put stores the value for key. Stores assume deterministic values —
	// two Puts of the same key carry the same value — so racing writers
	// and re-puts are benign.
	Put(key uint64, v V)
	// GetOrCompute is the single warm-or-cold entry point: the stored
	// value on a hit (one sharded read, counted as a hit), otherwise the
	// result of compute, stored before returning (counted as a miss).
	// compute runs outside any store lock, so two goroutines racing on one
	// cold key may both compute — benign for deterministic values; callers
	// that must guarantee exactly-one computation (the serving daemon)
	// wrap this in a singleflight. A compute error is returned unstored.
	GetOrCompute(key uint64, compute func() (V, error)) (V, error)
	// Len returns the number of distinct keys resident.
	Len() int
	// Hits and Misses audit Get outcomes.
	Hits() uint64
	Misses() uint64
	// Stats returns the full counter snapshot, including the disk-tier
	// counters (zero for purely in-memory stores).
	Stats() Stats
	// Close flushes and releases any durable resources; in-memory stores
	// return nil. A Store must not be used after Close.
	Close() error
}

// Stats is a Store's counter snapshot.
type Stats struct {
	// Hits and Misses count Get outcomes; a miss is exactly one
	// recomputation in a memoized run.
	Hits, Misses uint64
	// Entries is the number of distinct keys resident in memory.
	Entries int
	// Loaded is how many durable records the open scan (plus any merges)
	// decoded into the memory tier; Appended how many this process wrote.
	Loaded, Appended uint64
	// Corrupt counts durable records skipped as unprovable: torn tails,
	// checksum failures, undecodable payloads (wrong schema version).
	Corrupt uint64
	// DiskBytes is the on-disk footprint: every segment byte scanned at
	// open plus every byte appended since.
	DiskBytes int64
	// Retries counts I/O attempts repeated after a transient failure or an
	// O_EXCL segment-name collision; Recovered counts operations that
	// ultimately succeeded after at least one retry. Retries with no
	// matching Recovered exhausted the budget and degraded the store.
	Retries, Recovered uint64
	// Unpersisted counts values accepted into the memory tier but never
	// written durably (every Put after degradation, plus the one whose
	// append failure triggered it). They are correct for this run and will
	// be recomputed by the next.
	Unpersisted uint64
	// Warnings is the total routed through the store's rate-limited warner,
	// printed or suppressed.
	Warnings uint64
	// Degraded reports the store demoted itself to memory-only after
	// exhausting retries (or opened that way under WithDegradedFallback on
	// an unusable directory).
	Degraded bool
}

// Mem is the in-memory Store tier: cache.Memo behind the Store interface.
// It is the zero-regression default — NewMem-backed runs behave exactly
// like the raw memo always did.
type Mem[V any] struct {
	memo *cache.Memo[V]
	// merged/corrupt count records a Merge read into (or skipped on the
	// way to) this store, so -v audits merge runs even without a disk tier.
	merged, corrupt atomic.Uint64
}

// NewMem returns an empty in-memory store.
func NewMem[V any]() *Mem[V] {
	return &Mem[V]{memo: cache.NewMemo[V]()}
}

// A nil *Mem behaves as an always-miss, drop-writes store rather than
// panicking: a typed-nil assigned to a Store-interface field (e.g. a
// Config.Memo) slips past the caller's == nil check, and the pointer-typed
// era of that field treated the same mistake as "no memo".

// Get implements Store.
func (m *Mem[V]) Get(key uint64) (V, bool) {
	if m == nil {
		var zero V
		return zero, false
	}
	return m.memo.Get(key)
}

// Put implements Store.
func (m *Mem[V]) Put(key uint64, v V) {
	if m == nil {
		return
	}
	m.memo.Put(key, v)
}

// GetOrCompute implements Store: a warm hit is exactly one sharded memo
// read (the Contains-then-Get double lookup the pre-PR-9 runner paid is
// gone); a miss runs compute and stores the value. On a nil *Mem the value
// is computed but not retained, matching the nil store's drop-writes Get/Put.
func (m *Mem[V]) GetOrCompute(key uint64, compute func() (V, error)) (V, error) {
	if m == nil {
		return compute()
	}
	if v, ok := m.memo.Get(key); ok {
		return v, nil
	}
	v, err := compute()
	if err != nil {
		var zero V
		return zero, err
	}
	m.memo.Put(key, v)
	return v, nil
}

// Len implements Store.
func (m *Mem[V]) Len() int {
	if m == nil {
		return 0
	}
	return m.memo.Len()
}

// Hits implements Store.
func (m *Mem[V]) Hits() uint64 {
	if m == nil {
		return 0
	}
	return m.memo.Hits()
}

// Misses implements Store.
func (m *Mem[V]) Misses() uint64 {
	if m == nil {
		return 0
	}
	return m.memo.Misses()
}

// Stats implements Store; the disk-tier counters stay zero except for
// records a Merge fed into this store.
func (m *Mem[V]) Stats() Stats {
	if m == nil {
		return Stats{}
	}
	return Stats{
		Hits: m.memo.Hits(), Misses: m.memo.Misses(), Entries: m.memo.Len(),
		Loaded: m.merged.Load(), Corrupt: m.corrupt.Load(),
	}
}

// Close implements Store as a no-op.
func (m *Mem[V]) Close() error { return nil }
