package resultstore

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// faultTestFile opens one writable file through fs.
func faultTestFile(t *testing.T, fsys FS, dir string) File {
	t.Helper()
	f, err := fsys.OpenFile(filepath.Join(dir, "f"), os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestFaultFSZeroSpecIsPassthrough: the zero schedule injects nothing and
// only counts.
func TestFaultFSZeroSpecIsPassthrough(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS(), FaultSpec{})
	f := faultTestFile(t, ffs, dir)
	for i := 0; i < 4; i++ {
		if n, err := f.Write([]byte("abcde")); n != 5 || err != nil {
			t.Fatalf("write %d = %d, %v", i, n, err)
		}
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if ffs.BytesWritten() != 20 || ffs.Injected() != 0 || ffs.Crashed() {
		t.Fatalf("bytes=%d injected=%d crashed=%t, want clean passthrough",
			ffs.BytesWritten(), ffs.Injected(), ffs.Crashed())
	}
	data, err := os.ReadFile(filepath.Join(dir, "f"))
	if err != nil || len(data) != 20 {
		t.Fatalf("file has %d bytes (%v), want 20", len(data), err)
	}
}

// TestFaultFSFailWriteEvery: the periodic write schedule fails exactly the
// scheduled writes, with a retryable error, and no bytes land for them.
func TestFaultFSFailWriteEvery(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS(), FaultSpec{FailWriteEvery: 2})
	f := faultTestFile(t, ffs, dir)
	var failed []int
	for i := 1; i <= 6; i++ {
		n, err := f.Write([]byte("xy"))
		if err != nil {
			if n != 0 {
				t.Fatalf("failed write %d landed %d bytes", i, n)
			}
			if !transientErr(err) {
				t.Fatalf("injected fault %v is not transient", err)
			}
			failed = append(failed, i)
		}
	}
	if len(failed) != 3 || failed[0] != 2 || failed[1] != 4 || failed[2] != 6 {
		t.Fatalf("failed writes = %v, want every 2nd", failed)
	}
	if ffs.Injected() != 3 || ffs.BytesWritten() != 6 {
		t.Fatalf("injected=%d bytes=%d, want 3 and 6", ffs.Injected(), ffs.BytesWritten())
	}
}

// TestFaultFSSeedShiftsSchedule: different seeds fail different operations
// of the same workload.
func TestFaultFSSeedShiftsSchedule(t *testing.T) {
	failedAt := func(seed uint64) int {
		dir := t.TempDir()
		ffs := NewFaultFS(OS(), FaultSpec{Seed: seed, FailWriteEvery: 3})
		f := faultTestFile(t, ffs, dir)
		for i := 1; i <= 3; i++ {
			if _, err := f.Write([]byte("z")); err != nil {
				return i
			}
		}
		return 0
	}
	if a, b := failedAt(0), failedAt(1); a == b || a == 0 || b == 0 {
		t.Fatalf("seeds 0/1 failed at writes %d/%d, want different non-zero", a, b)
	}
}

// TestFaultFSShortWrite: the short-write schedule lands exactly half the
// bytes before failing — the torn-record generator.
func TestFaultFSShortWrite(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS(), FaultSpec{ShortWriteEvery: 1})
	f := faultTestFile(t, ffs, dir)
	n, err := f.Write([]byte("0123456789"))
	if n != 5 || err == nil || !transientErr(err) {
		t.Fatalf("short write = %d, %v, want 5 bytes and a transient error", n, err)
	}
	data, _ := os.ReadFile(filepath.Join(dir, "f"))
	if string(data) != "01234" {
		t.Fatalf("file holds %q, want the 5-byte prefix", data)
	}
}

// TestFaultFSPermanentFlavor: Permanent turns injected faults non-retryable.
func TestFaultFSPermanentFlavor(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS(), FaultSpec{FailWriteEvery: 1, Permanent: true})
	f := faultTestFile(t, ffs, dir)
	if _, err := f.Write([]byte("x")); err == nil || transientErr(err) {
		t.Fatalf("permanent fault = %v, want a non-transient error", err)
	}
}

// TestFaultFSCrashAfterBytes: the byte budget admits exactly its prefix,
// then every later operation reports the filesystem gone.
func TestFaultFSCrashAfterBytes(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS(), FaultSpec{CrashAfterBytes: 10})
	f := faultTestFile(t, ffs, dir)
	if n, err := f.Write([]byte("01234567")); n != 8 || err != nil {
		t.Fatalf("within-budget write = %d, %v", n, err)
	}
	n, err := f.Write([]byte("abcdef"))
	if n != 2 || !errors.Is(err, ErrCrashed) {
		t.Fatalf("straddling write = %d, %v, want 2 bytes then ErrCrashed", n, err)
	}
	if transientErr(err) {
		t.Fatal("a crash must not be retryable")
	}
	if !ffs.Crashed() {
		t.Fatal("filesystem did not record the crash")
	}
	if _, err := f.Write([]byte("q")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash write = %v, want ErrCrashed", err)
	}
	if _, err := ffs.ReadFile(filepath.Join(dir, "f")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash read = %v, want ErrCrashed", err)
	}
	data, _ := os.ReadFile(filepath.Join(dir, "f"))
	if string(data) != "01234567ab" {
		t.Fatalf("surviving bytes = %q, want exactly the 10-byte budget", data)
	}
}

// TestFaultFSCrashAfterOps: the op budget admits exactly that many
// operations.
func TestFaultFSCrashAfterOps(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS(), FaultSpec{CrashAfterOps: 3})
	for i := 0; i < 3; i++ {
		if _, err := ffs.ReadDir(dir); err != nil {
			t.Fatalf("op %d within budget failed: %v", i+1, err)
		}
	}
	if _, err := ffs.ReadDir(dir); !errors.Is(err, ErrCrashed) {
		t.Fatalf("op past budget = %v, want ErrCrashed", err)
	}
}

// TestFaultFSFailOpEvery: the non-write schedule hits opens, readdirs and
// syncs alike.
func TestFaultFSFailOpEvery(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS(), FaultSpec{FailOpEvery: 2})
	var failed int
	for i := 0; i < 6; i++ {
		if _, err := ffs.ReadDir(dir); err != nil {
			if !transientErr(err) {
				t.Fatalf("injected op fault %v is not transient", err)
			}
			failed++
		}
	}
	if failed != 3 {
		t.Fatalf("%d of 6 ops failed, want every 2nd", failed)
	}
}
