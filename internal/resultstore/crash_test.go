package resultstore

import (
	"bytes"
	"errors"
	"os"
	"strings"
	"testing"
	"time"
)

// The crash-consistency harness. The durability claim under test: a record
// whose append was acknowledged (Put returned with Stats().Appended
// counting it) survives any later crash, and a crash mid-append costs at
// most the one unacknowledged record — re-open proves every surviving
// record by checksum and loses nothing else. The harness replays the same
// workload against a cut point at every single byte offset (and every op
// count), which places a cut before, inside and after every record the
// workload writes.

// nopSleep makes retry backoff instantaneous in tests.
func nopSleep(time.Duration) {}

// crashWorkload runs n Puts against a store opened over fsys and returns
// the store's stats at the end (the store is closed, ignoring errors —
// after a crash, Close on a dead filesystem is best-effort by design).
func crashWorkload(t *testing.T, dir string, fsys FS, warn *bytes.Buffer, n int) Stats {
	t.Helper()
	d, err := Open[uint64](dir, u64Codec{}, WithFS(fsys), WithWarnWriter(warn), WithSleep(nopSleep))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for k := 0; k < n; k++ {
		d.Put(uint64(k), uint64(k)*13+7)
	}
	st := d.Stats()
	d.Close()
	return st
}

// verifySurvivors re-opens dir on the real filesystem and asserts exactly
// the acknowledged records load, each with the right value.
func verifySurvivors(t *testing.T, dir string, acked uint64, label string) {
	t.Helper()
	var warn bytes.Buffer
	d, err := Open[uint64](dir, u64Codec{}, WithWarnWriter(&warn))
	if err != nil {
		t.Fatalf("%s: reopen: %v", label, err)
	}
	defer d.Close()
	st := d.Stats()
	if st.Loaded != acked {
		t.Fatalf("%s: reopen loaded %d records, %d were acknowledged (stats %+v, warnings %s)",
			label, st.Loaded, acked, st, warn.String())
	}
	// Appends are in Put order, so the acknowledged records are exactly
	// keys 0..acked-1.
	for k := uint64(0); k < acked; k++ {
		if v, ok := d.Get(k); !ok || v != k*13+7 {
			t.Fatalf("%s: acknowledged record %d = %d, %t after reopen", label, k, v, ok)
		}
	}
}

// TestCrashConsistencyEveryByte sweeps a crash cut point across every byte
// the workload writes. At every cut: the store degrades instead of
// erroring the run, and re-open loses no acknowledged record.
func TestCrashConsistencyEveryByte(t *testing.T) {
	const n = 8
	// Measure the workload's full byte footprint with a passthrough spec.
	probe := NewFaultFS(OS(), FaultSpec{})
	var warn bytes.Buffer
	st := crashWorkload(t, t.TempDir(), probe, &warn, n)
	total := probe.BytesWritten()
	if st.Appended != n || total == 0 {
		t.Fatalf("fault-free workload: %+v, %d bytes", st, total)
	}

	// cut == total never fires (the final write exactly exhausts the
	// budget), so the last interesting cut is total-1.
	for cut := int64(1); cut < total; cut++ {
		dir := t.TempDir()
		ffs := NewFaultFS(OS(), FaultSpec{CrashAfterBytes: cut})
		var warn bytes.Buffer
		st := crashWorkload(t, dir, ffs, &warn, n)
		if !st.Degraded {
			t.Fatalf("cut %d: store did not degrade after the crash (stats %+v)", cut, st)
		}
		if st.Entries != n {
			t.Fatalf("cut %d: run lost results in memory: %d entries, want %d", cut, st.Entries, n)
		}
		if st.Appended+st.Unpersisted != n {
			t.Fatalf("cut %d: acked %d + unpersisted %d != %d puts", cut, st.Appended, st.Unpersisted, n)
		}
		verifySurvivors(t, dir, st.Appended, warn.String())
	}
}

// batchCrashWorkload plays the crash workload through the group-commit
// path: the same n records (values k*13+7), landed in PutBatch calls of
// batchN records each.
func batchCrashWorkload(t *testing.T, dir string, fsys FS, warn *bytes.Buffer, n, batchN int) Stats {
	t.Helper()
	d, err := Open[uint64](dir, u64Codec{}, WithFS(fsys), WithWarnWriter(warn), WithSleep(nopSleep))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for lo := 0; lo < n; lo += batchN {
		hi := lo + batchN
		if hi > n {
			hi = n
		}
		keys := make([]uint64, 0, hi-lo)
		vals := make([]uint64, 0, hi-lo)
		for k := lo; k < hi; k++ {
			keys = append(keys, uint64(k))
			vals = append(vals, uint64(k)*13+7)
		}
		d.PutBatch(keys, vals)
	}
	st := d.Stats()
	d.Close()
	return st
}

// verifyBatchSurvivors is the batch-grained analog of verifySurvivors.
// Acknowledgment is per batch, but a crash mid-write tears only the tail
// of the batch's single buffer: whole-record prefixes still replay. So a
// reopen must load at least the acknowledged records, the survivors must
// be exactly the keys 0..Loaded-1 (batch bytes land in key order), and
// every one must carry the right value.
func verifyBatchSurvivors(t *testing.T, dir string, acked uint64, n int, label string) {
	t.Helper()
	var warn bytes.Buffer
	d, err := Open[uint64](dir, u64Codec{}, WithWarnWriter(&warn))
	if err != nil {
		t.Fatalf("%s: reopen: %v", label, err)
	}
	defer d.Close()
	st := d.Stats()
	if st.Loaded < acked || st.Loaded > uint64(n) {
		t.Fatalf("%s: reopen loaded %d records with %d acknowledged of %d put (stats %+v, warnings %s)",
			label, st.Loaded, acked, n, st, warn.String())
	}
	for k := uint64(0); k < st.Loaded; k++ {
		if v, ok := d.Get(k); !ok || v != k*13+7 {
			t.Fatalf("%s: surviving record %d = %d, %t after reopen", label, k, v, ok)
		}
	}
	for k := st.Loaded; k < uint64(n); k++ {
		if _, ok := d.Get(k); ok {
			t.Fatalf("%s: record %d survived out of prefix order (loaded %d)", label, k, st.Loaded)
		}
	}
}

// TestCrashConsistencyEveryByteBatched sweeps a crash cut point across
// every byte a batched workload writes — before the batch, inside every
// record of its buffer, and between batches. At every cut the store
// degrades instead of erroring, acknowledgment stays batch-grained, every
// record remains resident in memory, and a reopen recovers a clean
// whole-record prefix that covers everything acknowledged.
func TestCrashConsistencyEveryByteBatched(t *testing.T) {
	const n, batchN = 8, 4
	probe := NewFaultFS(OS(), FaultSpec{})
	var warn bytes.Buffer
	st := batchCrashWorkload(t, t.TempDir(), probe, &warn, n, batchN)
	total := probe.BytesWritten()
	if st.Appended != n || total == 0 {
		t.Fatalf("fault-free batched workload: %+v, %d bytes", st, total)
	}

	for cut := int64(1); cut < total; cut++ {
		dir := t.TempDir()
		ffs := NewFaultFS(OS(), FaultSpec{CrashAfterBytes: cut})
		var warn bytes.Buffer
		st := batchCrashWorkload(t, dir, ffs, &warn, n, batchN)
		if !st.Degraded {
			t.Fatalf("cut %d: store did not degrade after the crash (stats %+v)", cut, st)
		}
		if st.Entries != n {
			t.Fatalf("cut %d: run lost results in memory: %d entries, want %d", cut, st.Entries, n)
		}
		if st.Appended+st.Unpersisted != n {
			t.Fatalf("cut %d: acked %d + unpersisted %d != %d puts", cut, st.Appended, st.Unpersisted, n)
		}
		if st.Appended%batchN != 0 {
			t.Fatalf("cut %d: acknowledgment is not batch-grained: %d appended with batches of %d",
				cut, st.Appended, batchN)
		}
		verifyBatchSurvivors(t, dir, st.Appended, n, warn.String())
	}
}

// TestFaultScheduleSweepBatched: transient fault schedules tripping writes
// mid-batch — including the rotation where a torn first attempt is
// abandoned and the whole batch replays on a fresh segment — must retry
// through without degrading, acknowledge every batch, and leave every
// record recoverable. Short writes can land complete records twice (torn
// attempt + replay), so recovery is verified by value, not load count.
func TestFaultScheduleSweepBatched(t *testing.T) {
	const n, batchN = 48, 6
	for seed := uint64(0); seed < 8; seed++ {
		dir := t.TempDir()
		ffs := NewFaultFS(OS(), FaultSpec{
			Seed:            seed,
			FailWriteEvery:  3,
			ShortWriteEvery: 5,
			FailOpEvery:     7,
		})
		var warn bytes.Buffer
		st := batchCrashWorkload(t, dir, ffs, &warn, n, batchN)
		if st.Degraded {
			t.Fatalf("seed %d: store degraded under transient-only faults: %+v\n%s", seed, st, warn.String())
		}
		if st.Appended != n {
			t.Fatalf("seed %d: only %d/%d batch appends acknowledged: %+v", seed, st.Appended, n, st)
		}
		if st.Retries == 0 || st.Recovered == 0 {
			t.Fatalf("seed %d: schedule injected %d faults but store counted retries=%d recovered=%d",
				seed, ffs.Injected(), st.Retries, st.Recovered)
		}
		var rewarn bytes.Buffer
		d, err := Open[uint64](dir, u64Codec{}, WithWarnWriter(&rewarn))
		if err != nil {
			t.Fatalf("seed %d: reopen: %v", seed, err)
		}
		if got := d.Stats().Loaded; got < n {
			t.Fatalf("seed %d: reopen recovered only %d/%d records", seed, got, n)
		}
		for k := uint64(0); k < n; k++ {
			if v, ok := d.Get(k); !ok || v != k*13+7 {
				t.Fatalf("seed %d: recovered record %d = %d, %t", seed, k, v, ok)
			}
		}
		d.Close()
	}
}

// TestBatchSyncIsDurabilityBoundary: a nil Sync acknowledges every batch
// landed so far; a crash immediately after loses none of it.
func TestBatchSyncIsDurabilityBoundary(t *testing.T) {
	dir := t.TempDir()
	var warn bytes.Buffer
	d, err := Open[uint64](dir, u64Codec{}, WithFS(NewFaultFS(OS(), FaultSpec{})), WithWarnWriter(&warn), WithSleep(nopSleep))
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]uint64, 10)
	vals := make([]uint64, 10)
	for k := range keys {
		keys[k], vals[k] = uint64(k), uint64(k)*13+7
	}
	d.PutBatch(keys[:5], vals[:5])
	d.PutBatch(keys[5:], vals[5:])
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	// The machine dies without Close: no final sync, no tidy shutdown.
	verifyBatchSurvivors(t, dir, 10, 10, "post-sync crash")
}

// TestCrashConsistencyEveryOp sweeps the cut across operation counts
// instead of bytes, so opens, syncs and directory scans crash too, not
// just writes.
func TestCrashConsistencyEveryOp(t *testing.T) {
	const n = 6
	probe := NewFaultFS(OS(), FaultSpec{})
	var warn bytes.Buffer
	crashWorkload(t, t.TempDir(), probe, &warn, n)
	total := probe.Ops()

	for cut := int64(1); cut <= total; cut++ {
		dir := t.TempDir()
		ffs := NewFaultFS(OS(), FaultSpec{CrashAfterOps: cut})
		var warn bytes.Buffer
		d, err := Open[uint64](dir, u64Codec{}, WithFS(ffs), WithWarnWriter(&warn), WithSleep(nopSleep), WithDegradedFallback(true))
		if err != nil {
			t.Fatalf("op cut %d: open errored despite degraded fallback: %v", cut, err)
		}
		for k := 0; k < n; k++ {
			d.Put(uint64(k), uint64(k)*13+7)
		}
		st := d.Stats()
		d.Close()
		if st.Entries != n {
			t.Fatalf("op cut %d: %d entries in memory, want %d", cut, st.Entries, n)
		}
		verifySurvivors(t, dir, st.Appended, warn.String())
	}
}

// TestCrashConsistencySurvivesWarmStore: crash cuts over a store that
// already holds durable records must never lose the old records either.
func TestCrashConsistencySurvivesWarmStore(t *testing.T) {
	const warm, extra = 5, 4
	base := t.TempDir()
	var warn bytes.Buffer
	d := openTest(t, base, &warn)
	for k := 0; k < warm; k++ {
		d.Put(uint64(k), uint64(k)*13+7)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	baseline, err := os.ReadFile(segPath(t, base))
	if err != nil {
		t.Fatal(err)
	}

	for cut := int64(1); cut <= 128; cut += 7 {
		dir := t.TempDir()
		if err := os.WriteFile(dir+"/seg-000001.psr", baseline, 0o644); err != nil {
			t.Fatal(err)
		}
		ffs := NewFaultFS(OS(), FaultSpec{CrashAfterBytes: cut})
		var warn bytes.Buffer
		dd, err := Open[uint64](dir, u64Codec{}, WithFS(ffs), WithWarnWriter(&warn), WithSleep(nopSleep))
		if err != nil {
			t.Fatalf("cut %d: warm open: %v", cut, err)
		}
		for k := warm; k < warm+extra; k++ {
			dd.Put(uint64(k), uint64(k)*13+7)
		}
		st := dd.Stats()
		dd.Close()
		verifySurvivors(t, dir, uint64(warm)+st.Appended, warn.String())
	}
}

// TestFaultScheduleSweep: under purely transient fault schedules the store
// must retry through everything — every record acknowledged, nothing
// degraded, and a clean re-open recovers every record.
func TestFaultScheduleSweep(t *testing.T) {
	const n = 50
	for seed := uint64(0); seed < 8; seed++ {
		dir := t.TempDir()
		ffs := NewFaultFS(OS(), FaultSpec{
			Seed:            seed,
			FailWriteEvery:  3,
			ShortWriteEvery: 5,
			FailOpEvery:     7,
		})
		var warn bytes.Buffer
		st := crashWorkload(t, dir, ffs, &warn, n)
		if st.Degraded {
			t.Fatalf("seed %d: store degraded under transient-only faults: %+v\n%s", seed, st, warn.String())
		}
		if st.Appended != n {
			t.Fatalf("seed %d: only %d/%d appends acknowledged: %+v", seed, st.Appended, n, st)
		}
		if st.Retries == 0 || st.Recovered == 0 {
			t.Fatalf("seed %d: schedule injected %d faults but store counted retries=%d recovered=%d",
				seed, ffs.Injected(), st.Retries, st.Recovered)
		}
		verifySurvivors(t, dir, n, warn.String())
	}
}

// TestPermanentFaultDegradesOnce: a permanent write failure demotes the
// store to memory in one step — one warning line, every Put still
// resident, later Puts counted unpersisted.
func TestPermanentFaultDegradesOnce(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS(), FaultSpec{FailWriteEvery: 4, Permanent: true})
	var warn bytes.Buffer
	d, err := Open[uint64](dir, u64Codec{}, WithFS(ffs), WithWarnWriter(&warn), WithSleep(nopSleep))
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	for k := 0; k < n; k++ {
		d.Put(uint64(k), uint64(k))
	}
	st := d.Stats()
	if !st.Degraded {
		t.Fatalf("store did not degrade on a permanent fault: %+v", st)
	}
	if st.Entries != n {
		t.Fatalf("degraded store lost results: %d entries, want %d", st.Entries, n)
	}
	if st.Appended+st.Unpersisted != n || st.Unpersisted == 0 {
		t.Fatalf("acked %d + unpersisted %d != %d", st.Appended, st.Unpersisted, n)
	}
	for k := uint64(0); k < n; k++ {
		if v, ok := d.Get(k); !ok || v != k {
			t.Fatalf("degraded Get(%d) = %d, %t", k, v, ok)
		}
	}
	d.Close()
	if got := strings.Count(warn.String(), "degraded to memory-only"); got != 1 {
		t.Fatalf("%d degradation warnings, want exactly 1:\n%s", got, warn.String())
	}
}

// TestSyncIsDurabilityBoundary: Sync returning nil acknowledges everything
// appended so far; a crash immediately after loses none of it.
func TestSyncIsDurabilityBoundary(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS(), FaultSpec{})
	var warn bytes.Buffer
	d, err := Open[uint64](dir, u64Codec{}, WithFS(ffs), WithWarnWriter(&warn), WithSleep(nopSleep))
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 10; k++ {
		d.Put(k, k*13+7)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	// The machine dies without Close: no final sync, no tidy shutdown.
	verifySurvivors(t, dir, 10, "post-sync crash")
}

// TestWithSyncEveryCountsDown: the periodic-fsync cadence resets after each
// sync (observable through the FaultFS op stream: each fsync is one op).
func TestWithSyncEveryCountsDown(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS(), FaultSpec{})
	var warn bytes.Buffer
	d, err := Open[uint64](dir, u64Codec{}, WithFS(ffs), WithWarnWriter(&warn), WithSleep(nopSleep), WithSyncEvery(2))
	if err != nil {
		t.Fatal(err)
	}
	before := ffs.Ops()
	for k := uint64(0); k < 6; k++ {
		d.Put(k, k)
	}
	// 6 appends at sync-every-2 → 3 fsyncs; plus 1 segment-create open,
	// 1 magic write and 6 record writes = 11 operations total.
	if got := ffs.Ops() - before; got != 11 {
		t.Fatalf("op delta = %d, want 11 (1 open + 7 writes + 3 fsyncs)", got)
	}
	d.Close()
}

// TestOpenFailsFastOnUncreatableDir: without the fallback, a store rooted
// under a file (ENOTDIR — the unwritable-parent shape that works even as
// root) errors at Open with a clear message, before any simulation runs.
func TestOpenFailsFastOnUncreatableDir(t *testing.T) {
	parent := t.TempDir()
	file := parent + "/plain-file"
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Open[uint64](file+"/store", u64Codec{}, WithWarnWriter(os.Stderr))
	if err == nil {
		t.Fatal("open under a plain file must fail")
	}
	if !strings.Contains(err.Error(), "cannot create store directory") {
		t.Fatalf("error %q does not name the problem", err)
	}
}

// roFS models a read-only disk: everything works except opening files for
// write.
type roFS struct{ FS }

func (roFS) OpenFile(string, int, os.FileMode) (File, error) {
	return nil, os.ErrPermission
}

// TestOpenFailsFastOnUnwritableDir: the open-time probe catches a readable
// but unwritable directory.
func TestOpenFailsFastOnUnwritableDir(t *testing.T) {
	_, err := Open[uint64](t.TempDir(), u64Codec{}, WithFS(roFS{OS()}), WithSleep(nopSleep))
	if err == nil {
		t.Fatal("open on a read-only filesystem must fail without the fallback")
	}
	if !strings.Contains(err.Error(), "not writable") || !errors.Is(err, os.ErrPermission) {
		t.Fatalf("error %q does not surface the probe failure", err)
	}
}

// TestDegradedFallbackReadOnlyDirStillReplays: with the fallback, a
// read-only store directory opens degraded but warm — old records replay
// from disk, new ones stay in memory, and exactly one warning explains it.
func TestDegradedFallbackReadOnlyDirStillReplays(t *testing.T) {
	dir := t.TempDir()
	writeStore(t, dir, 5)

	var warn bytes.Buffer
	d, err := Open[uint64](dir, u64Codec{}, WithFS(roFS{OS()}), WithWarnWriter(&warn), WithSleep(nopSleep), WithDegradedFallback(true))
	if err != nil {
		t.Fatalf("degraded fallback still errored: %v", err)
	}
	defer d.Close()
	st := d.Stats()
	if !st.Degraded || st.Loaded != 5 {
		t.Fatalf("stats = %+v, want a degraded store with 5 replayed records", st)
	}
	if v, ok := d.Get(2); !ok || v != 1002 {
		t.Fatalf("replayed Get(2) = %d, %t", v, ok)
	}
	d.Put(99, 990)
	if v, ok := d.Get(99); !ok || v != 990 {
		t.Fatal("degraded store dropped a fresh Put")
	}
	if st := d.Stats(); st.Unpersisted != 1 {
		t.Fatalf("unpersisted = %d, want the fresh Put counted", st.Unpersisted)
	}
	if got := strings.Count(warn.String(), "degraded to memory-only"); got != 1 {
		t.Fatalf("%d degradation warnings, want exactly 1:\n%s", got, warn.String())
	}
}

// TestDegradedFallbackUncreatableDir: the fallback also covers a directory
// that cannot exist at all — pure in-memory, still one warning.
func TestDegradedFallbackUncreatableDir(t *testing.T) {
	parent := t.TempDir()
	file := parent + "/plain-file"
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	var warn bytes.Buffer
	d, err := Open[uint64](file+"/store", u64Codec{}, WithWarnWriter(&warn), WithDegradedFallback(true))
	if err != nil {
		t.Fatalf("fallback errored: %v", err)
	}
	defer d.Close()
	d.Put(1, 10)
	if v, ok := d.Get(1); !ok || v != 10 {
		t.Fatal("uncreatable-dir fallback store dropped a Put")
	}
	if st := d.Stats(); !st.Degraded || st.Unpersisted != 1 {
		t.Fatalf("stats = %+v, want degraded with 1 unpersisted", st)
	}
	if got := strings.Count(warn.String(), "degraded to memory-only"); got != 1 {
		t.Fatalf("%d degradation warnings, want exactly 1:\n%s", got, warn.String())
	}
}
