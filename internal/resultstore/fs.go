package resultstore

// The filesystem seam. Disk and Merge never touch the os package directly:
// every open, create, read, write, sync, rename, remove and readdir goes
// through an FS, so the fault-injection layer (FaultFS) can interpose a
// deterministic schedule of errors, short writes and crash cut-offs on the
// exact operations a real run performs — and the crash-consistency harness
// can prove the store's recovery guarantees against every one of them.
//
// The real implementation (OS) is a zero-state passthrough; the interface
// is deliberately the narrow waist of what the store needs, not a general
// VFS.

import (
	"errors"
	"io"
	"os"
	"syscall"
)

// File is the writable handle an FS hands out: the append-side surface of
// a segment file. Reads go through FS.ReadFile — the store never seeks.
type File interface {
	io.Writer
	// Sync flushes the file to stable storage — the durability boundary.
	Sync() error
	Close() error
}

// FS is the filesystem the store runs on. Implementations must be safe for
// concurrent use; the store serializes writes to any single File itself.
type FS interface {
	// OpenFile opens (or, with os.O_CREATE|os.O_EXCL, creates) a file for
	// writing.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// ReadFile returns a file's full contents.
	ReadFile(name string) ([]byte, error)
	// ReadDir lists a directory.
	ReadDir(name string) ([]os.DirEntry, error)
	// MkdirAll creates a directory path.
	MkdirAll(name string, perm os.FileMode) error
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
}

// osFS is the real filesystem.
type osFS struct{}

// OS returns the real-filesystem FS — the default for Open and Merge.
func OS() FS { return osFS{} }

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		// Return a nil File interface, not a typed-nil *os.File inside it.
		return nil, err
	}
	return f, nil
}

func (osFS) ReadFile(name string) ([]byte, error)        { return os.ReadFile(name) }
func (osFS) ReadDir(name string) ([]os.DirEntry, error)  { return os.ReadDir(name) }
func (osFS) MkdirAll(name string, perm os.FileMode) error { return os.MkdirAll(name, perm) }
func (osFS) Rename(oldpath, newpath string) error        { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                    { return os.Remove(name) }

// ErrTransient marks an error as retryable: wrapping it (or matching one of
// the retryable syscall errnos below) tells the store's bounded-backoff
// retry loop the operation may succeed if repeated. Anything else is
// treated as persistent and degrades the store instead of spinning on it.
var ErrTransient = errors.New("transient I/O error")

// transientErr reports whether err is worth retrying: explicitly-marked
// transient errors (FaultFS schedules, callers wrapping ErrTransient),
// short writes, and the syscall errnos that mean "try again" rather than
// "this will never work".
func transientErr(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrTransient) || errors.Is(err, io.ErrShortWrite) {
		return true
	}
	for _, errno := range []syscall.Errno{syscall.EINTR, syscall.EAGAIN, syscall.EBUSY} {
		if errors.Is(err, errno) {
			return true
		}
	}
	return false
}
