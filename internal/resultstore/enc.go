package resultstore

// The canonical versioned encoding. Durable keys and records must survive
// process restarts and struct evolution, which rules out reflective
// formatting (%+v changes meaning whenever a field is added, renamed or
// reordered). Enc makes the encoding explicit instead: callers append each
// field in declaration order with a fixed-width little-endian form, prefix
// the whole stream with a schema version byte, and bump the version
// whenever the field walk changes — old records then simply stop matching
// and are recomputed, never misread.

import (
	"encoding/binary"
	"math"

	"repro/internal/cache"
)

// Enc accumulates the canonical byte form of one key or record. The zero
// value is ready to use.
type Enc struct {
	b []byte
}

// Version appends the schema version byte; by convention the first append.
func (e *Enc) Version(v byte) { e.b = append(e.b, v) }

// U64 appends a fixed-width little-endian uint64.
func (e *Enc) U64(x uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, x) }

// I64 appends a fixed-width little-endian int64.
func (e *Enc) I64(x int64) { e.U64(uint64(x)) }

// Int appends an int as a fixed-width int64 (platform-independent width).
func (e *Enc) Int(x int) { e.I64(int64(x)) }

// F64 appends a float64 as its IEEE-754 bit pattern — exact, no formatting
// round-trip.
func (e *Enc) F64(x float64) { e.U64(math.Float64bits(x)) }

// Str appends a length-prefixed string, so a delimiter inside one field can
// never forge another field's boundary.
func (e *Enc) Str(s string) {
	e.U64(uint64(len(s)))
	e.b = append(e.b, s...)
}

// Bytes returns the canonical byte form accumulated so far. The slice
// aliases the encoder's buffer; callers that keep it must copy.
func (e *Enc) Bytes() []byte { return e.b }

// Len returns the encoded length in bytes.
func (e *Enc) Len() int { return len(e.b) }

// Sum64 hashes the canonical bytes into a 64-bit key (FNV-1a — the same
// stream cache.HashKey applies to string fingerprints).
func (e *Enc) Sum64() uint64 { return cache.HashBytes(e.b) }

// Dec walks a canonical encoding back into values, in the same order Enc
// appended them. Callers bounds-check up front (records are fixed-size);
// reading past the end returns zeros rather than panicking.
type Dec struct {
	b []byte
}

// NewDec returns a decoder over the canonical bytes.
func NewDec(b []byte) *Dec { return &Dec{b: b} }

// U64 reads one fixed-width little-endian uint64.
func (d *Dec) U64() uint64 {
	if len(d.b) < 8 {
		d.b = nil
		return 0
	}
	x := binary.LittleEndian.Uint64(d.b)
	d.b = d.b[8:]
	return x
}

// I64 reads one fixed-width little-endian int64.
func (d *Dec) I64() int64 { return int64(d.U64()) }

// F64 reads one IEEE-754 bit pattern.
func (d *Dec) F64() float64 { return math.Float64frombits(d.U64()) }
