package resultstore

// FaultFS: the deterministic fault-injection filesystem behind the chaos
// tests and the crash-consistency harness. It wraps a real FS and applies a
// seeded schedule of failures to the operation stream — transient op
// errors, write errors, short writes, and hard crash cut-offs "after byte
// N" / "after op K" past which the filesystem is gone. Every decision is a
// pure function of (spec, operation counter), so a failing schedule replays
// exactly under -race, at any worker count, on any machine.

import (
	"errors"
	"fmt"
	"os"
	"sync"
)

// ErrCrashed is returned by every FaultFS operation after a configured
// crash point has been reached: the simulated machine is gone, and only the
// bytes that landed before the cut survive for a later re-open. It is not
// transient — a crashed filesystem must demote the store, not spin it.
var ErrCrashed = errors.New("injected crash: filesystem unavailable")

// errInjectedTransient marks scheduled faults as retryable.
var errInjectedTransient = fmt.Errorf("injected fault: %w", ErrTransient)

// errInjectedPermanent is the Permanent-mode variant: never retried, so a
// single scheduled fault demotes the store (the read-only-disk shape).
var errInjectedPermanent = errors.New("injected permanent fault")

// FaultSpec is a deterministic fault schedule. The zero value injects
// nothing (a transparent passthrough); every field is independent.
type FaultSpec struct {
	// Seed phase-shifts the periodic schedules so different seeds fail
	// different operations of the same workload.
	Seed uint64
	// FailWriteEvery makes every Nth Write fail before any byte lands
	// (0 = never).
	FailWriteEvery int
	// ShortWriteEvery makes every Nth Write land only half its bytes and
	// then fail — the torn-record generator (0 = never).
	ShortWriteEvery int
	// FailOpEvery makes every Nth non-write operation (open, read, readdir,
	// mkdir, sync, remove, rename) fail (0 = never).
	FailOpEvery int
	// Permanent makes injected errors non-transient: the store must degrade
	// on first contact instead of retrying through them.
	Permanent bool
	// CrashAfterBytes crashes the filesystem once this many bytes have
	// landed across all files; a write straddling the boundary persists
	// only its prefix (0 = never). Combined with a byte-range sweep this
	// yields a cut point between (and inside) every record.
	CrashAfterBytes int64
	// CrashAfterOps crashes the filesystem after this many operations
	// (0 = never).
	CrashAfterOps int64
}

// FaultFS wraps an FS with a FaultSpec schedule. Safe for concurrent use;
// the operation counter makes concurrent schedules deterministic only when
// the workload itself is single-goroutine (which the harnesses are).
type FaultFS struct {
	inner FS
	spec  FaultSpec

	mu       sync.Mutex
	ops      int64 // every FS/File operation
	writes   int64 // Write calls specifically
	bytes    int64 // payload bytes that actually landed
	injected int64 // scheduled faults delivered (crashes excluded)
	crashed  bool
}

// NewFaultFS wraps inner (nil = the real filesystem) with spec.
func NewFaultFS(inner FS, spec FaultSpec) *FaultFS {
	if inner == nil {
		inner = OS()
	}
	return &FaultFS{inner: inner, spec: spec}
}

// Ops returns the number of operations observed so far.
func (f *FaultFS) Ops() int64 { f.mu.Lock(); defer f.mu.Unlock(); return f.ops }

// BytesWritten returns how many payload bytes actually landed.
func (f *FaultFS) BytesWritten() int64 { f.mu.Lock(); defer f.mu.Unlock(); return f.bytes }

// Injected returns how many scheduled faults were delivered.
func (f *FaultFS) Injected() int64 { f.mu.Lock(); defer f.mu.Unlock(); return f.injected }

// Crashed reports whether a crash point has been reached.
func (f *FaultFS) Crashed() bool { f.mu.Lock(); defer f.mu.Unlock(); return f.crashed }

// injectedErr returns the scheduled-fault error in the configured flavor.
func (f *FaultFS) injectedErr() error {
	if f.spec.Permanent {
		return errInjectedPermanent
	}
	return errInjectedTransient
}

// every reports whether 1-based event number n hits a period-p schedule
// phase-shifted by the seed.
func (f *FaultFS) every(n int64, p int) bool {
	return p > 0 && (n+int64(f.spec.Seed))%int64(p) == 0
}

// op accounts one non-write operation and returns the scheduled error for
// it, if any. Callers hold no lock.
func (f *FaultFS) op() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	f.ops++
	if f.spec.CrashAfterOps > 0 && f.ops > f.spec.CrashAfterOps {
		f.crashed = true
		return ErrCrashed
	}
	if f.every(f.ops, f.spec.FailOpEvery) {
		f.injected++
		return f.injectedErr()
	}
	return nil
}

func (f *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if err := f.op(); err != nil {
		return nil, err
	}
	inner, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: inner}, nil
}

func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	if err := f.op(); err != nil {
		return nil, err
	}
	return f.inner.ReadFile(name)
}

func (f *FaultFS) ReadDir(name string) ([]os.DirEntry, error) {
	if err := f.op(); err != nil {
		return nil, err
	}
	return f.inner.ReadDir(name)
}

func (f *FaultFS) MkdirAll(name string, perm os.FileMode) error {
	if err := f.op(); err != nil {
		return err
	}
	return f.inner.MkdirAll(name, perm)
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	if err := f.op(); err != nil {
		return err
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(name string) error {
	if err := f.op(); err != nil {
		return err
	}
	return f.inner.Remove(name)
}

// faultFile interposes the write-side schedule on one open file.
type faultFile struct {
	fs    *FaultFS
	inner File
}

// Write applies, in order: crash state, op-count crash, scheduled write
// failure, scheduled short write, and the crash byte budget. Bytes that the
// schedule lets through are written to the real file before the error (if
// any) is returned — exactly what a kernel that died mid-write leaves
// behind.
func (w *faultFile) Write(p []byte) (int, error) {
	w.fs.mu.Lock()
	if w.fs.crashed {
		w.fs.mu.Unlock()
		return 0, ErrCrashed
	}
	w.fs.ops++
	w.fs.writes++
	if w.fs.spec.CrashAfterOps > 0 && w.fs.ops > w.fs.spec.CrashAfterOps {
		w.fs.crashed = true
		w.fs.mu.Unlock()
		return 0, ErrCrashed
	}
	var failErr error
	allow := len(p)
	switch {
	case w.fs.every(w.fs.writes, w.fs.spec.FailWriteEvery):
		w.fs.injected++
		allow, failErr = 0, w.fs.injectedErr()
	case w.fs.every(w.fs.writes, w.fs.spec.ShortWriteEvery):
		w.fs.injected++
		allow, failErr = len(p)/2, w.fs.injectedErr()
	}
	if w.fs.spec.CrashAfterBytes > 0 {
		if budget := w.fs.spec.CrashAfterBytes - w.fs.bytes; int64(allow) > budget {
			allow, failErr = int(budget), ErrCrashed
			w.fs.crashed = true
		}
	}
	w.fs.mu.Unlock()

	n := 0
	var err error
	if allow > 0 {
		n, err = w.inner.Write(p[:allow])
	}
	w.fs.mu.Lock()
	w.fs.bytes += int64(n)
	w.fs.mu.Unlock()
	if err != nil {
		return n, err
	}
	if failErr != nil {
		return n, failErr
	}
	return n, nil
}

func (w *faultFile) Sync() error {
	if err := w.fs.op(); err != nil {
		return err
	}
	return w.inner.Sync()
}

// Close never injects: the harness must always be able to release real file
// descriptors, and a crashed filesystem losing the handle is the point.
func (w *faultFile) Close() error { return w.inner.Close() }
