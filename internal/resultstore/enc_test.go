package resultstore

import (
	"testing"

	"repro/internal/cache"
)

// TestEncDecRoundTrip: every appended value reads back exactly, including
// float bit patterns.
func TestEncDecRoundTrip(t *testing.T) {
	var e Enc
	e.Version(3)
	e.U64(1<<63 + 5)
	e.I64(-42)
	e.Int(7)
	e.F64(3.14159)
	e.Str("hello")

	b := e.Bytes()
	if b[0] != 3 {
		t.Fatalf("version byte = %d", b[0])
	}
	d := NewDec(b[1:])
	if got := d.U64(); got != 1<<63+5 {
		t.Fatalf("U64 = %d", got)
	}
	if got := d.I64(); got != -42 {
		t.Fatalf("I64 = %d", got)
	}
	if got := d.I64(); got != 7 {
		t.Fatalf("Int = %d", got)
	}
	if got := d.F64(); got != 3.14159 {
		t.Fatalf("F64 = %v", got)
	}
}

// TestEncStrIsLengthPrefixed: adjacent strings cannot forge each other's
// boundaries (the "t|d"+"x" vs "t"+"d|x" collision class).
func TestEncStrIsLengthPrefixed(t *testing.T) {
	var a, b Enc
	a.Str("t|d")
	a.Str("x")
	b.Str("t")
	b.Str("d|x")
	if a.Sum64() == b.Sum64() {
		t.Fatal("shifted string boundaries must not collide")
	}
}

// TestEncSum64MatchesHashKey: the byte and string FNV streams agree, so
// fingerprints hash identically through either path.
func TestEncSum64MatchesHashKey(t *testing.T) {
	var e Enc
	e.b = []byte("fingerprint")
	if e.Sum64() != cache.HashKey("fingerprint") {
		t.Fatal("HashBytes and HashKey diverged")
	}
}

// TestDecPastEndReturnsZeros: the decoder is total — short input yields
// zeros, not a panic (the caller length-checks records up front).
func TestDecPastEndReturnsZeros(t *testing.T) {
	d := NewDec([]byte{1, 2, 3})
	if got := d.U64(); got != 0 {
		t.Fatalf("short U64 = %d, want 0", got)
	}
	if got := d.U64(); got != 0 {
		t.Fatalf("exhausted U64 = %d, want 0", got)
	}
}
