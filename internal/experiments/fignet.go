package experiments

import "repro/internal/workload"

// RunFigNet is the extension experiment implementing the paper's first
// future-work item (§VI): the impact of *network* overhead across the
// execution platforms. The workload is a disk-free two-tier microservice
// (workload.Microservice): every platform difference comes from the NIC
// IRQ path, the intra-host RPC transport (native vs container bridge vs
// hypervisor shared memory) and the virtio-net overlay. Run with
// `pinsim -fig net`; reproduced by BenchmarkFigNetMicroservice.
func RunFigNet(cfg Config) (Figure, error) {
	cfg = cfg.withDefaults()
	return runMatrix(cfg, "figN1",
		"Extension: network-bound microservice across execution platforms",
		"Average Response Time (s)",
		Instances("xLarge", "16xLarge"),
		func(InstanceType) workload.Workload {
			w := workload.DefaultMicroservice()
			if cfg.Quick {
				w.Requests /= 4
			}
			return w
		},
		cfg.reps(6))
}
