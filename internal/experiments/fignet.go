package experiments

// RunFigNet is the extension experiment implementing the paper's first
// future-work item (§VI): the impact of *network* overhead across the
// execution platforms — registered as the "net" scenario (builtin.go). Run
// with `pinsim -fig net`; reproduced by BenchmarkFigNetMicroservice.
func RunFigNet(cfg Config) (Figure, error) { return RunRegistered("net", cfg) }
