package experiments

// The declarative scenario engine. A Scenario is pure data — series
// (platform stacks, possibly multi-tenant) × cells (host, instance size,
// workload parameters) — executed by RunScenario through the same parallel
// trial runner, substream seeding and memoization as everything else in
// this package. The paper's figures are registered Scenario values
// (builtin.go); user-defined scenarios load from JSON (`pinsim -scenario
// run.json`) and flow through the identical code path, which is what lets
// nested container-in-VM-in-VM stacks and K-tenant co-location runs reuse
// the runner, the memo cache and the sweep machinery unchanged.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"repro/internal/cache"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/workload"
)

// WorkloadSpec names a workload driver and its parameter overrides — the
// declarative form of a workload inside a scenario.
type WorkloadSpec struct {
	// Driver is a registry name or alias (workload.DriverNames).
	Driver string `json:"driver"`
	// Params is a JSON object of the driver's parameter struct, overlaid
	// onto its defaults; omitted fields keep the defaults, unknown fields
	// are rejected.
	Params json.RawMessage `json:"params,omitempty"`
}

// clone deep-copies the spec (nil-safe); Params bytes are copied because
// json.RawMessage aliases its backing array.
func (ws *WorkloadSpec) clone() *WorkloadSpec {
	if ws == nil {
		return nil
	}
	c := *ws
	c.Params = append(json.RawMessage(nil), ws.Params...)
	return &c
}

// Resolve builds the concrete workload: defaults, overrides, then the
// driver's Quick scaling when quick is set.
func (ws WorkloadSpec) Resolve(quick bool) (workload.Driver, error) {
	d, err := workload.UnmarshalDriver(ws.Driver, ws.Params)
	if err != nil {
		return nil, err
	}
	if quick {
		d = d.ScaleQuick()
	}
	return d, nil
}

// fingerprint is the Quick-independent identity of the spec: the canonical
// driver name plus the fully-resolved parameter struct. Resolving first
// makes the fingerprint independent of how the JSON spelled the overrides.
func (ws WorkloadSpec) fingerprint() string {
	d, err := ws.Resolve(false)
	if err != nil {
		return "!" + ws.Driver + ":" + err.Error()
	}
	return fmt.Sprintf("%s{%+v}", d.DriverName(), d)
}

// ScenarioSeries is one legend entry: a deployable stack, optionally with
// per-tenant workload overrides.
type ScenarioSeries struct {
	Label string `json:"label"`
	// Platform, when set, is the canned (kind, mode) identity: it supplies
	// the Stack when Stack is empty, the Label when Label is empty, and the
	// platform tag the analytic model reads from figure series.
	Platform *platform.Spec `json:"platform,omitempty"`
	// Stack is the composable deployment; empty falls back to
	// Platform.Stack(). Layer/tenant sizes of 0 inherit the cell's Cores.
	Stack platform.Stack `json:"stack,omitempty"`
	// TenantWorkloads assigns tenants their own workloads by position;
	// tenants beyond the list run the cell's workload.
	TenantWorkloads []WorkloadSpec `json:"tenant_workloads,omitempty"`
}

// label resolves the series' effective label (what withDefaults fills in).
func (s ScenarioSeries) label() string {
	if s.Label == "" && s.Platform != nil {
		return s.Platform.Label()
	}
	return s.Label
}

// stack resolves the series' deployable stack.
func (s ScenarioSeries) stack() platform.Stack {
	if len(s.Stack.Layers) > 0 {
		return s.Stack
	}
	if s.Platform != nil {
		return s.Platform.Stack()
	}
	return platform.Stack{}
}

// ScenarioCell is one x-axis point: where and how big the deployment is,
// and what it runs.
type ScenarioCell struct {
	Label string `json:"label"`
	// Host names the physical host topology ("paper", "small16"); empty
	// uses Config.Host.
	Host string `json:"host,omitempty"`
	// Cores is the instance size (Table II); layer/tenant sizes inherit it.
	Cores int `json:"cores"`
	// MemGB is the instance memory; 0 applies the 4 GB/core Table II rule.
	MemGB int `json:"mem_gb,omitempty"`
	// Workload overrides the scenario's default workload for this cell.
	Workload *WorkloadSpec `json:"workload,omitempty"`
}

// Scenario is a declarative experiment: series × cells, run for Reps
// repetitions each and aggregated into a Figure.
type Scenario struct {
	// Name is the registry key (`pinsim -fig <name>`).
	Name string `json:"name"`
	// ID is the figure id rendered in output headers; defaults to Name.
	ID string `json:"id,omitempty"`
	// Title is the figure caption.
	Title string `json:"title,omitempty"`
	// Description documents what the scenario reproduces (`pinsim -list`).
	Description string `json:"description,omitempty"`
	// Metric labels the y-axis; default "Average Execution Time (s)".
	Metric string `json:"metric,omitempty"`
	// XTitle labels the x-axis; default "Instance Types".
	XTitle string `json:"x_title,omitempty"`
	// SeedTag is prepended to every trial's substream derivation,
	// decorrelating this scenario's trials from scenarios sharing grid
	// coordinates. The paper's matrix figures use no tag (their historical
	// derivation), Figs 7/8 use their figure number.
	SeedTag []uint64 `json:"seed_tag,omitempty"`
	// Reps is the default repetition count per cell (paper figures: 20,
	// except 6 for WordPress); Config.Reps and Quick override it. 0 = 3.
	Reps int `json:"reps,omitempty"`
	// Baseline is the label of the series ratios are computed against
	// (empty = no baseline).
	Baseline string `json:"baseline,omitempty"`
	// Workload is the default workload of every cell.
	Workload *WorkloadSpec    `json:"workload,omitempty"`
	Series   []ScenarioSeries `json:"series"`
	Cells    []ScenarioCell   `json:"cells"`
}

// withDefaults fills derivable fields. Scenario travels by value but its
// Series share a backing array with the caller's, so the slice is copied
// before labels are filled in — without the copy, Fingerprint/RunScenario
// would mutate the caller's spec (and race when called concurrently on a
// shared value).
func (s Scenario) withDefaults() Scenario {
	if s.ID == "" {
		s.ID = s.Name
	}
	if s.Metric == "" {
		s.Metric = "Average Execution Time (s)"
	}
	if s.XTitle == "" {
		s.XTitle = "Instance Types"
	}
	if s.Reps <= 0 {
		s.Reps = 3
	}
	series := make([]ScenarioSeries, len(s.Series))
	copy(series, s.Series)
	for i := range series {
		if series[i].Label == "" && series[i].Platform != nil {
			series[i].Label = series[i].Platform.Label()
		}
	}
	s.Series = series
	return s
}

// HostByName resolves a scenario host name to its topology; the empty name
// means "the configured default" and resolves to nil.
func HostByName(name string) (*topology.Topology, error) {
	switch name {
	case "":
		return nil, nil
	case "paper":
		return topology.PaperHost(), nil
	case "small16":
		return topology.SmallHost16(), nil
	}
	return nil, fmt.Errorf("experiments: unknown host %q (have paper, small16)", name)
}

// Validate checks the scenario is runnable: non-empty identity and grid,
// resolvable stacks, hosts and workloads, a baseline that names a series.
func (s Scenario) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("experiments: scenario needs a name")
	}
	if len(s.Series) == 0 {
		return fmt.Errorf("experiments: scenario %s has no series", s.Name)
	}
	if len(s.Cells) == 0 {
		return fmt.Errorf("experiments: scenario %s has no cells", s.Name)
	}
	seen := map[string]bool{}
	for i, se := range s.Series {
		label := se.label()
		if label == "" {
			return fmt.Errorf("experiments: scenario %s series %d needs a label (or a platform)", s.Name, i)
		}
		if seen[label] {
			return fmt.Errorf("experiments: scenario %s has duplicate series label %q", s.Name, label)
		}
		seen[label] = true
		st := se.stack()
		if len(st.Layers) == 0 {
			return fmt.Errorf("experiments: scenario %s series %q has neither stack nor platform", s.Name, se.Label)
		}
		if err := st.Validate(); err != nil {
			return fmt.Errorf("experiments: scenario %s series %q: %w", s.Name, se.Label, err)
		}
		// Tenant workload overrides bind by position; more overrides than
		// tenants means some would silently never run (e.g. a co-location
		// stressor dropped because the tenants list was edited away), so
		// the mismatch is an error rather than a truncation.
		if slots := max(1, len(st.Tenants)); len(se.TenantWorkloads) > slots {
			return fmt.Errorf("experiments: scenario %s series %q lists %d tenant workloads for %d tenant slot(s)",
				s.Name, label, len(se.TenantWorkloads), slots)
		}
		for ti, tw := range se.TenantWorkloads {
			if _, err := tw.Resolve(false); err != nil {
				return fmt.Errorf("experiments: scenario %s series %q tenant %d: %w", s.Name, se.Label, ti, err)
			}
		}
	}
	if s.Baseline != "" && !seen[s.Baseline] {
		return fmt.Errorf("experiments: scenario %s baseline %q names no series", s.Name, s.Baseline)
	}
	for i, c := range s.Cells {
		if c.Label == "" {
			return fmt.Errorf("experiments: scenario %s cell %d needs a label", s.Name, i)
		}
		if c.Cores <= 0 {
			return fmt.Errorf("experiments: scenario %s cell %q needs positive cores", s.Name, c.Label)
		}
		if _, err := HostByName(c.Host); err != nil {
			return fmt.Errorf("experiments: scenario %s cell %q: %w", s.Name, c.Label, err)
		}
		ws := c.Workload
		if ws == nil {
			ws = s.Workload
		}
		if ws == nil {
			return fmt.Errorf("experiments: scenario %s cell %q has no workload (set the cell's or the scenario's)", s.Name, c.Label)
		}
		if _, err := ws.Resolve(false); err != nil {
			return fmt.Errorf("experiments: scenario %s cell %q: %w", s.Name, c.Label, err)
		}
	}
	return nil
}

// Fingerprint returns a stable 64-bit identity of the spec, hex-encoded.
// Two scenarios differing in any field — stack depth, tenant count, driver
// parameters, seed tag, grid shape — fingerprint differently, and the same
// spec fingerprints identically across processes: the serialization walks
// only value fields in declaration order (no pointer formatting, no map
// iteration — the Topology.Fingerprint lesson).
func (s Scenario) Fingerprint() string {
	return fmt.Sprintf("%016x", cache.HashKey(s.canonical()))
}

// canonical is the value-only serialization Fingerprint hashes. Free-text
// fields are %q-quoted so a delimiter inside one field cannot forge
// another's boundary (e.g. Title "t|d" + Description "x" must not collide
// with Title "t" + Description "d|x").
func (s Scenario) canonical() string {
	var b strings.Builder
	s = s.withDefaults()
	fmt.Fprintf(&b, "scenario|%q|%q|%q|%q|%q|%q|reps=%d|base=%q|tag=%v",
		s.Name, s.ID, s.Title, s.Description, s.Metric, s.XTitle, s.Reps, s.Baseline, s.SeedTag)
	if s.Workload != nil {
		fmt.Fprintf(&b, "|w=%s", s.Workload.fingerprint())
	}
	for _, se := range s.Series {
		fmt.Fprintf(&b, "|s=%q#%s", se.Label, se.stack().Fingerprint())
		if se.Platform != nil {
			fmt.Fprintf(&b, "@%s/%s/%d", se.Platform.Kind, se.Platform.Mode, se.Platform.Cores)
		}
		for _, tw := range se.TenantWorkloads {
			fmt.Fprintf(&b, "&%s", tw.fingerprint())
		}
	}
	for _, c := range s.Cells {
		fmt.Fprintf(&b, "|c=%q@%q:%dc/%dGB", c.Label, c.Host, c.Cores, c.MemGB)
		if c.Workload != nil {
			fmt.Fprintf(&b, "&%s", c.Workload.fingerprint())
		}
	}
	return b.String()
}

// ParseScenario decodes one scenario from strict JSON (unknown fields are
// errors) and validates it.
func ParseScenario(data []byte) (Scenario, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var sc Scenario
	if err := dec.Decode(&sc); err != nil {
		return Scenario{}, fmt.Errorf("experiments: scenario JSON: %w", err)
	}
	// A spec file is one document; trailing content (a concatenated second
	// object, a botched merge) would otherwise be silently discarded.
	if dec.More() {
		return Scenario{}, fmt.Errorf("experiments: scenario JSON: trailing content after the spec object")
	}
	sc = sc.withDefaults()
	if err := sc.Validate(); err != nil {
		return Scenario{}, err
	}
	return sc, nil
}

// LoadScenario reads and parses a scenario JSON file.
func LoadScenario(path string) (Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Scenario{}, fmt.Errorf("experiments: scenario: %w", err)
	}
	return ParseScenario(data)
}

// MarshalIndentJSON renders the round-trippable form: Marshal → Unmarshal →
// Fingerprint is the identity (locked by the registry round-trip test).
func (s Scenario) MarshalIndentJSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// RunScenario executes a scenario: its (series × cells × reps) grid fans
// out across Config.Workers with per-trial substream seeds derived from
// SeedTag and grid coordinates alone, so output is bit-identical at any
// worker count, and Config.Memo skips trials an earlier run simulated.
func RunScenario(cfg Config, sc Scenario) (Figure, error) {
	cfg = cfg.withDefaults()
	warnMemoMutateHost(cfg)
	sc = sc.withDefaults()
	if err := sc.Validate(); err != nil {
		return Figure{}, err
	}
	reps := cfg.reps(sc.Reps)

	// Resolve every cell's host and workload once, up front.
	type cellPlan struct {
		host  *topology.Topology
		memGB int
		w     workload.Workload
	}
	plans := make([]cellPlan, len(sc.Cells))
	for ci, c := range sc.Cells {
		host, err := HostByName(c.Host)
		if err != nil {
			return Figure{}, err
		}
		if host == nil {
			host = cfg.Host
		}
		ws := c.Workload
		if ws == nil {
			ws = sc.Workload
		}
		w, err := ws.Resolve(cfg.Quick)
		if err != nil {
			return Figure{}, err
		}
		plans[ci] = cellPlan{host: host, memGB: c.MemGB, w: w}
	}
	// Per-series resolved stacks and tenant workload overrides.
	stacks := make([]platform.Stack, len(sc.Series))
	tenantWs := make([][]workload.Workload, len(sc.Series))
	for si, se := range sc.Series {
		stacks[si] = se.stack()
		for _, tw := range se.TenantWorkloads {
			w, err := tw.Resolve(cfg.Quick)
			if err != nil {
				return Figure{}, err
			}
			tenantWs[si] = append(tenantWs[si], w)
		}
	}
	// workloadsFor assembles the per-tenant workload list of one trial:
	// tenant overrides by position, the cell workload for the rest.
	workloadsFor := func(si, ci int) []workload.Workload {
		n := len(stacks[si].Tenants)
		if n == 0 {
			n = 1
		}
		out := make([]workload.Workload, n)
		for t := 0; t < n; t++ {
			if t < len(tenantWs[si]) {
				out[t] = tenantWs[si][t]
			} else {
				out[t] = plans[ci].w
			}
		}
		return out
	}

	fig := Figure{
		ID:          sc.ID,
		Title:       sc.Title,
		Metric:      sc.Metric,
		XTitle:      sc.XTitle,
		BaselineIdx: -1,
	}
	for _, c := range sc.Cells {
		fig.XLabels = append(fig.XLabels, c.Label)
	}
	for si, se := range sc.Series {
		if sc.Baseline != "" && se.Label == sc.Baseline {
			fig.BaselineIdx = si
		}
	}

	nC := len(sc.Cells)
	results := make([]TrialResult, len(sc.Series)*nC*reps)
	// Tenant workload lists depend only on (series, cell) and seeds are a
	// pure derivation, so both are precomputed outside the trial fan-out:
	// the per-trial closure itself then allocates nothing.
	wlists := make([][]workload.Workload, len(sc.Series)*nC)
	for si := range sc.Series {
		for ci := range sc.Cells {
			wlists[si*nC+ci] = workloadsFor(si, ci)
		}
	}
	seeds := make([]uint64, len(results))
	parts := make([]uint64, 0, len(sc.SeedTag)+3)
	for i := range seeds {
		si, ci, rep := i/(nC*reps), i/reps%nC, i%reps
		parts = append(parts[:0], sc.SeedTag...)
		parts = append(parts, uint64(si), uint64(ci), uint64(rep))
		seeds[i] = seedFor(cfg.Seed, parts...)
	}
	err := forEachTrial(cfg, len(results), func(tc *TrialContext, i int) error {
		si, ci := i/(nC*reps), i/reps%nC
		r, err := runTrial(tc, cfg, plans[ci].host, stacks[si], sc.Cells[ci].Cores,
			wlists[si*nC+ci], plans[ci].memGB, seeds[i])
		if err != nil {
			return fmt.Errorf("%s %s %s: %w", sc.Name, sc.Series[si].Label, sc.Cells[ci].Label, err)
		}
		results[i] = r
		return nil
	})
	if err != nil {
		return Figure{}, err
	}

	for si, se := range sc.Series {
		sr := SeriesResult{Label: se.Label}
		if se.Platform != nil {
			sr.Spec = *se.Platform
			sr.HasPlatform = true
		}
		for ci := range sc.Cells {
			vals := make([]float64, 0, reps)
			var bd sched.Breakdown
			for rep := 0; rep < reps; rep++ {
				r := results[(si*nC+ci)*reps+rep]
				vals = append(vals, r.Metric)
				bd = r.Breakdown // last repetition, as always
			}
			sr.Cells = append(sr.Cells, Cell{Summary: stats.Summarize(vals), Breakdown: bd})
		}
		fig.Series = append(fig.Series, sr)
	}
	fig.computeRatios(cfg)
	return fig, nil
}
