package experiments

import (
	"testing"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/platform"
)

func TestFigureSamplesExtraction(t *testing.T) {
	f := figure(t, 3)
	ss, err := FigureSamples(f, core.CPUBound, 112)
	if err != nil {
		t.Fatal(err)
	}
	// 6 non-baseline series × 4 instances.
	if len(ss) != 24 {
		t.Fatalf("samples: %d", len(ss))
	}
	for _, s := range ss {
		if s.CHR <= 0 || s.CHR > 1 || s.Ratio <= 0 {
			t.Fatalf("bad sample %+v", s)
		}
		if s.Platform == platform.BM {
			t.Fatal("baseline must be excluded")
		}
		if s.Class != core.CPUBound {
			t.Fatal("class mislabeled")
		}
	}
	if _, err := FigureSamples(f, core.CPUBound, 0); err == nil {
		t.Fatal("hostCPUs validation")
	}
}

func TestFigureClassMapping(t *testing.T) {
	for n, want := range map[int]core.AppClass{
		3: core.CPUBound, 4: core.Parallel, 5: core.IOBound, 6: core.UltraIOBound,
	} {
		got, err := FigureClass(n)
		if err != nil || got != want {
			t.Fatalf("figure %d: %v, %v", n, got, err)
		}
	}
	if _, err := FigureClass(9); err == nil {
		t.Fatal("unknown figure")
	}
}

// TestModelFitFromSimulation is the future-work loop closed: fit the
// analytic overhead model on simulator output and check it reads back the
// paper's qualitative structure.
func TestModelFitFromSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("model fit is a long integration test")
	}
	m, err := FitModel([]int{3, 5}, Config{Quick: true, Reps: 2, Seed: 4242})
	if err != nil {
		t.Fatal(err)
	}
	// VM on CPU-bound work: PTO ≈ 2, tiny PSO (the paper's constant-ratio
	// observation, Fig 3).
	vmCPU, ok := m.Curve(model.Key{Platform: platform.VM, Mode: platform.Pinned, Class: core.CPUBound})
	if !ok {
		t.Fatal("missing pinned-VM CPU curve")
	}
	if vmCPU.PTO < 1.6 || vmCPU.PTO > 2.6 {
		t.Errorf("pinned VM CPU PTO = %.2f, want ≈2", vmCPU.PTO)
	}
	if pso := vmCPU.PSO(0.02); pso > 0.5 {
		t.Errorf("pinned VM PSO(0.02) = %.2f; VMs are PTO-dominated", pso)
	}
	// Vanilla CN on IO work: strong PSO at small CHR that pinning removes
	// (Fig 5's contrast).
	vcn, ok := m.Curve(model.Key{Platform: platform.CN, Mode: platform.Vanilla, Class: core.IOBound})
	if !ok {
		t.Fatal("missing vanilla-CN IO curve")
	}
	pcn, ok := m.Curve(model.Key{Platform: platform.CN, Mode: platform.Pinned, Class: core.IOBound})
	if !ok {
		t.Fatal("missing pinned-CN IO curve")
	}
	smallCHR := 4.0 / 112
	if vcn.PSO(smallCHR) < 2*pcn.PSO(smallCHR)+0.05 {
		t.Errorf("vanilla CN PSO (%.2f) must dwarf pinned CN PSO (%.2f) at small CHR",
			vcn.PSO(smallCHR), pcn.PSO(smallCHR))
	}
	// The model's MinCHR answer for vanilla CN IO must land in a plausible
	// band (the paper recommends 0.14..0.28 for IO-bound).
	chr, err := m.MinCHRFor(platform.CN, platform.Vanilla, core.IOBound, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if chr < 0.01 || chr > 0.6 {
		t.Errorf("MinCHR = %.3f out of any plausible band", chr)
	}
}
