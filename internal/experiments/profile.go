package experiments

import (
	"fmt"
	"strings"

	"repro/internal/irqsim"
	"repro/internal/machine"
	"repro/internal/platform"
	"repro/internal/trace"
	"repro/internal/workload"
)

// ProfileSpec selects one deployment to profile with the BCC-analog
// instruments (the paper's §III-A methodology: cpudist + offcputime while a
// workload runs on a platform).
type ProfileSpec struct {
	// App is one of "ffmpeg", "mpi", "wordpress", "cassandra".
	App string
	// Platform is one of "bm", "vm", "cn", "vmcn".
	Platform string
	// Mode is "vanilla" or "pinned".
	Mode string
	// Size is a Table II instance name, e.g. "xLarge".
	Size string
}

// ProfileResult bundles the collector with the run's headline metric.
type ProfileResult struct {
	Spec      ProfileSpec
	Collector *trace.Collector
	// MetricSecs is the workload metric (execution/response time, seconds).
	MetricSecs float64
	// Channels are the machine's IO channels after the run (the iostat
	// analog: completion-affinity counters per device). For VM/VMCN these
	// are the guest's paravirtual devices.
	Channels []*irqsim.Channel
}

// ParsePlatform maps a CLI platform name to its Kind (one name-to-enum
// mapping for the whole repo: platform.ParseKind).
func ParsePlatform(s string) (platform.Kind, error) {
	return platform.ParseKind(s)
}

// ParseMode maps a CLI mode name to its Mode (delegating to the repo-wide
// mapping, platform.ParseMode; the empty string means vanilla).
func ParseMode(s string) (platform.Mode, error) {
	return platform.ParseMode(s)
}

// WorkloadFor returns the named application's default workload, scaled for
// quick runs.
func WorkloadFor(app string, cfg Config) (workload.Workload, error) {
	switch strings.ToLower(app) {
	case "ffmpeg":
		return transcodeFor(cfg, 1), nil
	case "mpi":
		return workload.DefaultMPISearch(), nil
	case "wordpress", "web":
		w := workload.DefaultWeb()
		if cfg.Quick {
			w.Requests /= 4
		}
		return w, nil
	case "cassandra", "nosql":
		return workload.DefaultNoSQL(), nil
	}
	return nil, fmt.Errorf("experiments: unknown app %q (ffmpeg, mpi, wordpress, cassandra)", app)
}

// RunProfile deploys one platform, attaches the trace collector and runs the
// workload to completion.
func RunProfile(ps ProfileSpec, cfg Config) (*ProfileResult, error) {
	cfg = cfg.withDefaults()
	kind, err := ParsePlatform(ps.Platform)
	if err != nil {
		return nil, err
	}
	mode, err := ParseMode(ps.Mode)
	if err != nil {
		return nil, err
	}
	it, ok := InstanceByName(ps.Size)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown instance %q (Table II names)", ps.Size)
	}
	w, err := WorkloadFor(ps.App, cfg)
	if err != nil {
		return nil, err
	}
	col := trace.NewCollector(nil)
	seed := seedFor(cfg.Seed, 70)
	hostCfg := machine.HostDefaults(cfg.Host, seed)
	if cfg.MutateHost != nil {
		cfg.MutateHost(&hostCfg)
	}
	hostCfg.Trace = col.Fn()
	spec := platform.Spec{Kind: kind, Mode: mode, Cores: it.Cores}
	d, err := platform.Deploy(spec, hostCfg, *cfg.HV, seed)
	if err != nil {
		return nil, err
	}
	env := workload.EnvFor(d.M, d.Group, d.Affinity, spec.Cores)
	env.MemGB = it.MemGB
	inst := w.Spawn(env)
	res := d.M.Run(cfg.TimeLimit)
	secs := inst.Metric(res)
	if res.TimedOut {
		secs = cfg.TimeLimit.Seconds()
	}
	return &ProfileResult{
		Spec:       ps,
		Collector:  col,
		MetricSecs: secs,
		Channels:   d.M.IRQ.Channels(),
	}, nil
}
