package experiments

// The paper's figures as registry data. Each entry is a declarative
// Scenario whose execution through RunScenario is byte-identical to the
// historical hand-written RunFigN runners (locked by the golden-fingerprint
// tests): the seed derivations, series orders, workload parameters and
// Quick scalings below are exactly the historical values.

import (
	"encoding/json"
	"fmt"

	"repro/internal/platform"
)

// mustParams marshals a driver parameter override for a builtin scenario.
func mustParams(v any) json.RawMessage {
	data, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("experiments: builtin params: %v", err))
	}
	return data
}

// standardSeries returns the paper figures' seven series in legend order,
// as scenario series carrying their canned platform identity.
func standardSeries() []ScenarioSeries {
	var out []ScenarioSeries
	for _, sk := range platform.StandardSeries() {
		spec := platform.Spec{Kind: sk.Kind, Mode: sk.Mode}
		out = append(out, ScenarioSeries{Label: spec.Label(), Platform: &spec})
	}
	return out
}

// instanceCells maps the Table II rows first..last onto scenario cells.
func instanceCells(first, last string) []ScenarioCell {
	var out []ScenarioCell
	for _, it := range Instances(first, last) {
		out = append(out, ScenarioCell{Label: it.Name, Cores: it.Cores, MemGB: it.MemGB})
	}
	return out
}

func init() {
	MustRegisterScenario(Scenario{
		Name:  "fig3",
		Title: "FFmpeg execution time on different execution platforms",
		Description: "Fig 3: FFmpeg execution time across execution platforms and " +
			"instance types Large..4×Large (FFmpeg uses at most 16 cores).",
		Reps:     20,
		Baseline: "Vanilla BM",
		Workload: &WorkloadSpec{Driver: "ffmpeg"},
		Series:   standardSeries(),
		Cells:    instanceCells("Large", "4xLarge"),
	})
	MustRegisterScenario(Scenario{
		Name:        "fig4",
		Title:       "MPI Search execution time on different execution platforms",
		Description: "Fig 4: MPI Search execution time, ×Large..16×Large.",
		Reps:        20,
		Baseline:    "Vanilla BM",
		Workload:    &WorkloadSpec{Driver: "mpi"},
		Series:      standardSeries(),
		Cells:       instanceCells("xLarge", "16xLarge"),
	})
	MustRegisterScenario(Scenario{
		Name:  "fig5",
		Title: "Mean response time of 1,000 web processes (WordPress)",
		Description: "Fig 5: mean response time of 1,000 WordPress requests, " +
			"×Large..16×Large, 6 repetitions.",
		Reps:     6,
		Baseline: "Vanilla BM",
		Workload: &WorkloadSpec{Driver: "wordpress"},
		Series:   standardSeries(),
		Cells:    instanceCells("xLarge", "16xLarge"),
	})
	MustRegisterScenario(Scenario{
		Name:  "fig6",
		Title: "Mean execution time of Cassandra workload",
		Description: "Fig 6: mean response time of 1,000 Cassandra operations, " +
			"×Large..16×Large (Large thrashes and is charted out-of-range). Quick " +
			"mode keeps the full operation count: shrinking it would lighten the " +
			"overload regime that defines the figure, and the run is cheap anyway.",
		Reps:     20,
		Baseline: "Vanilla BM",
		Workload: &WorkloadSpec{Driver: "cassandra"},
		Series:   standardSeries(),
		Cells:    instanceCells("xLarge", "16xLarge"),
	})
	MustRegisterScenario(Scenario{
		Name:  "fig6-large",
		Title: "Cassandra on the overloaded Large instance (thrash regime)",
		Description: "The excluded Large instance of the Cassandra experiment, " +
			"demonstrating the thrash regime the paper reports as \"out of range\".",
		Reps:     5,
		Baseline: "Vanilla BM",
		Workload: &WorkloadSpec{Driver: "cassandra"},
		Series:   standardSeries(),
		Cells:    instanceCells("Large", "Large"),
	})
	MustRegisterScenario(Scenario{
		Name:  "fig7",
		Title: "Impact of CHR: a 4xLarge container on 16- vs 112-core hosts",
		Description: "Fig 7: the CHR experiment — the same 16-core container " +
			"(4×Large) on a 16-core host (CHR=1) vs. the 112-core host (CHR=0.14), " +
			"plus the bare-metal reference on each host.",
		XTitle:   "Hosts with Different Number of Cores",
		SeedTag:  []uint64{7},
		Reps:     20,
		Baseline: "Vanilla BM",
		Workload: &WorkloadSpec{Driver: "ffmpeg"},
		Series: []ScenarioSeries{
			{Platform: &platform.Spec{Kind: platform.CN, Mode: platform.Vanilla, Cores: 16}},
			{Platform: &platform.Spec{Kind: platform.CN, Mode: platform.Pinned, Cores: 16}},
			{Platform: &platform.Spec{Kind: platform.BM, Mode: platform.Vanilla, Cores: 16}},
		},
		Cells: []ScenarioCell{
			{Label: "16 cores", Host: "small16", Cores: 16, MemGB: 64},
			{Label: "112 cores", Host: "paper", Cores: 16, MemGB: 64},
		},
	})
	MustRegisterScenario(Scenario{
		Name:  "fig8",
		Title: "Impact of the number of processes on a 4xLarge CN instance",
		Description: "Fig 8: multitasking impact — transcoding one 30-second video " +
			"vs. 30 one-second videos in parallel on a 4×Large container.",
		XTitle:  "Different number of processes running on CN platforms",
		SeedTag: []uint64{8},
		Reps:    20,
		Series: []ScenarioSeries{
			{Platform: &platform.Spec{Kind: platform.CN, Mode: platform.Vanilla, Cores: 16}},
			{Platform: &platform.Spec{Kind: platform.CN, Mode: platform.Pinned, Cores: 16}},
		},
		Cells: []ScenarioCell{
			{Label: "1 Large Task", Cores: 16, MemGB: 64,
				Workload: &WorkloadSpec{Driver: "ffmpeg", Params: mustParams(struct{ Segments int }{1})}},
			{Label: "30 Small Tasks", Cores: 16, MemGB: 64,
				Workload: &WorkloadSpec{Driver: "ffmpeg", Params: mustParams(struct{ Segments int }{30})}},
		},
	})
	MustRegisterScenario(Scenario{
		Name:  "net",
		ID:    "figN1",
		Title: "Extension: network-bound microservice across execution platforms",
		Description: "Extension experiment for the paper's first future-work item " +
			"(§VI): the impact of network overhead across the execution platforms. " +
			"The workload is a disk-free two-tier microservice: every platform " +
			"difference comes from the NIC IRQ path, the intra-host RPC transport " +
			"and the virtio-net overlay.",
		Metric:   "Average Response Time (s)",
		Reps:     6,
		Baseline: "Vanilla BM",
		Workload: &WorkloadSpec{Driver: "microservice"},
		Series:   standardSeries(),
		Cells:    instanceCells("xLarge", "16xLarge"),
	})
}
