package experiments

// The typed trial-result store layer: TrialStore is resultstore.Store
// instantiated for TrialResult, with the versioned canonical record codec
// that makes results durable across processes. NewTrialMemo keeps the
// historical in-memory behavior (and name); OpenTrialStore adds the
// disk-backed tier, and MergeTrialStores assembles shard runs.

import (
	"fmt"
	"io"

	"repro/internal/resultstore"
	"repro/internal/sim"
	"repro/internal/topology"
)

// TrialStore is the pluggable trial-result store behind Config.Memo: the
// in-memory memo, or a durable disk-backed store whose results survive the
// process and can be merged across shard runs.
type TrialStore = resultstore.Store[TrialResult]

// TrialMemo is the in-memory TrialStore tier — the historical per-process
// memoization table. Share one across repeated or overlapping runs via
// Config.Memo to skip already-simulated cells; it is safe for concurrent
// use by parallel workers.
type TrialMemo = resultstore.Mem[TrialResult]

// NewTrialMemo returns an empty in-memory trial store for Config.Memo.
func NewTrialMemo() *TrialMemo { return resultstore.NewMem[TrialResult]() }

// OpenTrialStore opens (creating if needed) the durable trial store at
// dir for Config.Memo: every intact record on disk is loaded at open, and
// every newly-simulated trial is appended, so repeated runs are
// incremental across processes. Corrupt or stale-schema records are
// skipped with a warning and recomputed; an unusable directory fails fast
// unless resultstore.WithDegradedFallback(true) is passed. Close the store
// to flush.
func OpenTrialStore(dir string, opts ...resultstore.Option) (TrialStore, error) {
	return resultstore.Open[TrialResult](dir, trialCodec{}, opts...)
}

// openTrialStoreWarn is OpenTrialStore with a warning sink (test seam).
func openTrialStoreWarn(dir string, warn io.Writer) (TrialStore, error) {
	return OpenTrialStore(dir, resultstore.WithWarnWriter(warn))
}

// MergeTrialStores loads every intact record of the trial stores at dirs
// into dst — the shard-assembly path: after N `-shard i/N -store dir`
// runs, one merge run unions the shard stores and re-renders the figure
// with zero recomputation.
func MergeTrialStores(dst TrialStore, dirs ...string) error {
	return resultstore.Merge[TrialResult](dst, trialCodec{}, dirs)
}

// StoreStatsLine renders one store's counters for the CLIs' -v output.
// The "misses" count is exactly the number of simulations the run had to
// execute (every trial consults the store before simulating).
func StoreStatsLine(st TrialStore) string {
	s := st.Stats()
	line := fmt.Sprintf("store: %d hits, %d misses (%d simulations), %d records loaded, %d appended, %d corrupt skipped, %d entries, %d bytes on disk",
		s.Hits, s.Misses, s.Misses, s.Loaded, s.Appended, s.Corrupt, s.Entries, s.DiskBytes)
	// The robustness counters only earn a mention when something happened:
	// the everything-went-fine line stays byte-stable for scripts (and
	// eyes) that learned the original format.
	if s.Retries > 0 || s.Recovered > 0 {
		line += fmt.Sprintf(", %d retries (%d recovered)", s.Retries, s.Recovered)
	}
	if s.Warnings > 0 {
		line += fmt.Sprintf(", %d warnings", s.Warnings)
	}
	if s.Degraded {
		line += fmt.Sprintf(", DEGRADED to memory-only (%d results unpersisted)", s.Unpersisted)
	}
	// Reuse counters ride the same append-only convention: they are
	// process-wide (a trial deployment is not a store operation), and a
	// process that deployed nothing keeps the original line byte-stable.
	if built, reused := DeployStats(); built+reused > 0 {
		line += fmt.Sprintf(", %d deployments reused (%d built)", reused, built)
	}
	if hits, misses := topology.IndexCacheStats(); hits+misses > 0 {
		line += fmt.Sprintf(", %d topology index cache hits (%d misses)", hits, misses)
	}
	return line
}

// trialRecordSchema versions the durable TrialResult encoding. Bump it
// whenever the record walk below changes — including any field added to
// sched.Breakdown — so old records fail decoding and are recomputed
// instead of being misread.
const trialRecordSchema = 1

// trialRecordLen is the fixed encoded size: version byte, Metric, the 11
// Breakdown time channels, the 7 Breakdown event counters.
const trialRecordLen = 1 + 8 + 11*8 + 7*8

// trialCodec is the canonical versioned encoding of TrialResult (see
// resultstore.Codec): explicit field order, fixed widths, exact float bit
// patterns — a stored trial replays bit-identically to a simulated one.
type trialCodec struct{}

// Append implements resultstore.Codec.
func (trialCodec) Append(dst []byte, r TrialResult) []byte {
	var e resultstore.Enc
	e.Version(trialRecordSchema)
	e.F64(r.Metric)
	b := &r.Breakdown
	for _, t := range [...]sim.Time{
		b.UsefulWork, b.SwitchTime, b.MigrationTime, b.AcctTime, b.ChurnTime,
		b.ThrottleTime, b.IRQTime, b.VirtioTime, b.MsgTime, b.NestedTime, b.WanderTime,
	} {
		e.I64(int64(t))
	}
	for _, c := range [...]uint64{
		b.Switches, b.Migrations, b.Steals, b.Wakeups, b.IOs, b.Messages, b.Throttles,
	} {
		e.U64(c)
	}
	return append(dst, e.Bytes()...)
}

// Decode implements resultstore.Codec.
func (trialCodec) Decode(payload []byte) (TrialResult, error) {
	if len(payload) != trialRecordLen {
		return TrialResult{}, fmt.Errorf("trial record is %d bytes, want %d", len(payload), trialRecordLen)
	}
	if payload[0] != trialRecordSchema {
		return TrialResult{}, fmt.Errorf("trial record schema %d, want %d", payload[0], trialRecordSchema)
	}
	d := resultstore.NewDec(payload[1:])
	var r TrialResult
	r.Metric = d.F64()
	for _, t := range [...]*sim.Time{
		&r.Breakdown.UsefulWork, &r.Breakdown.SwitchTime, &r.Breakdown.MigrationTime,
		&r.Breakdown.AcctTime, &r.Breakdown.ChurnTime, &r.Breakdown.ThrottleTime,
		&r.Breakdown.IRQTime, &r.Breakdown.VirtioTime, &r.Breakdown.MsgTime,
		&r.Breakdown.NestedTime, &r.Breakdown.WanderTime,
	} {
		*t = sim.Time(d.I64())
	}
	for _, c := range [...]*uint64{
		&r.Breakdown.Switches, &r.Breakdown.Migrations, &r.Breakdown.Steals,
		&r.Breakdown.Wakeups, &r.Breakdown.IOs, &r.Breakdown.Messages, &r.Breakdown.Throttles,
	} {
		*c = d.U64()
	}
	return r, nil
}
