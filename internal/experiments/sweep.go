package experiments

// The sweep API generalizes the paper's fixed figures to arbitrary
// user-defined grids: any cross product of platforms × instance sizes (CHR
// points) × workload classes × memory sizes, run through the same parallel
// trial runner and the same substream seeding as the figures. Seeds are
// derived from a cell's *content* (platform, workload, cores, memory,
// repetition), not from its grid position, so two overlapping sweeps that
// share a Config.Memo re-simulate only the cells they do not have in
// common.

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"

	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/workload"
)

// bootResamples is the bootstrap resample count behind every SweepCell
// interval.
const bootResamples = 1000

// WorkloadNames are the workload classes a sweep can request, in Table I
// order plus the §VI network extension. Each accepts the aliases the driver
// registry lists (workload.CanonicalDriver).
var WorkloadNames = []string{"ffmpeg", "mpi", "wordpress", "cassandra", "microservice"}

// canonicalWorkload maps a workload name or alias to its canonical driver
// name. Everything downstream of the user-typed string — cell identity,
// seed derivation, memo keys — uses the canonical name, so "web" and
// "wordpress" describe the same cell and share simulations.
func canonicalWorkload(name string) (string, error) {
	return workload.CanonicalDriver(name)
}

// workloadByName builds a named workload class with its default driver
// parameters, applying the same Quick-mode scaling the corresponding
// figure uses.
func workloadByName(cfg Config, name string) (workload.Workload, error) {
	d, err := workload.NewDriver(name)
	if err != nil {
		return nil, err
	}
	if cfg.Quick {
		d = d.ScaleQuick()
	}
	return d, nil
}

// SweepSpec defines a sweep grid: the cross product of every non-empty
// axis. The zero value of an axis falls back to a sensible default so
// callers only name the axes they care about.
type SweepSpec struct {
	// Platforms are the (kind, mode) series to sweep; Cores on each entry
	// is ignored — the Cores axis supplies it. Default: the standard seven
	// series of the paper's figures.
	Platforms []platform.Spec
	// Cores are the instance sizes; each maps to a CHR point on the
	// configured host (CHR = cores / host CPUs). Default: Table II's sizes.
	Cores []int
	// Workloads are workload-class names (see WorkloadNames). Default:
	// ffmpeg.
	Workloads []string
	// MemGB are instance memory sizes; 0 means the Table II sizing of
	// 4 GB per core. Default: {0}.
	MemGB []int
	// Reps is the repetition count per cell (0 = 3, or 2 in Quick mode).
	Reps int
}

func (s SweepSpec) withDefaults(cfg Config) SweepSpec {
	if len(s.Platforms) == 0 {
		for _, sk := range platform.StandardSeries() {
			s.Platforms = append(s.Platforms, platform.Spec{Kind: sk.Kind, Mode: sk.Mode})
		}
	}
	if len(s.Cores) == 0 {
		for _, it := range InstanceTypes {
			s.Cores = append(s.Cores, it.Cores)
		}
	}
	if len(s.Workloads) == 0 {
		s.Workloads = []string{"ffmpeg"}
	}
	if len(s.MemGB) == 0 {
		s.MemGB = []int{0}
	}
	if s.Reps <= 0 {
		if cfg.Quick {
			s.Reps = 2
		} else {
			s.Reps = 3
		}
	}
	return s
}

// SweepCell is one fully-aggregated grid point of a sweep.
type SweepCell struct {
	// Platform is the series label ("Pinned CN", ...).
	Platform string
	Spec     platform.Spec
	Workload string
	Cores    int
	// MemGB is the resolved instance memory (the 4 GB/core default applied).
	MemGB int
	// CHR is the container-to-host core ratio of this point (§IV-A).
	CHR float64
	// Ratio is the overhead vs. the Vanilla BM cell with the same
	// (workload, cores, memory) coordinates, 0 when the sweep has none.
	Ratio float64
	// Summary aggregates the cell's repetitions.
	Summary stats.Summary
	// BootCI is the 95% percentile-bootstrap interval of the cell mean —
	// the distribution-free companion to Summary.CI95's Student-t interval,
	// meaningful at the small rep counts sweeps run with. Deterministic:
	// the resampling RNG is seeded from the cell's content, like the trial
	// seeds, so the interval is identical at any worker count and store
	// warmth.
	BootCI stats.Interval
	// Breakdown is the overhead attribution of the last repetition.
	Breakdown sched.Breakdown
}

// SweepResult is a completed sweep: the resolved spec and one cell per grid
// point, in deterministic platforms-outermost order.
type SweepResult struct {
	Spec  SweepSpec
	Cells []SweepCell
}

// Sweep runs the grid through the parallel trial runner. Every trial is an
// independent simulation seeded by cell content, so the result is
// bit-identical for any Config.Workers and any memo state.
func Sweep(cfg Config, spec SweepSpec) (*SweepResult, error) {
	cfg = cfg.withDefaults()
	warnMemoMutateHost(cfg)
	spec = spec.withDefaults(cfg)

	type cellPlan struct {
		cell SweepCell
		w    workload.Workload
	}
	var plan []cellPlan
	hostCPUs := cfg.Host.NumCPUs()
	for _, p := range spec.Platforms {
		for _, cores := range spec.Cores {
			if cores <= 0 {
				return nil, fmt.Errorf("experiments: sweep cores must be positive, got %d", cores)
			}
			for _, wname := range spec.Workloads {
				canon, err := canonicalWorkload(wname)
				if err != nil {
					return nil, err
				}
				w, err := workloadByName(cfg, canon)
				if err != nil {
					return nil, err
				}
				for _, mem := range spec.MemGB {
					memGB := mem
					if memGB <= 0 {
						memGB = 4 * cores
					}
					sp := platform.Spec{Kind: p.Kind, Mode: p.Mode, Cores: cores}
					plan = append(plan, cellPlan{
						cell: SweepCell{
							Platform: sp.Label(),
							Spec:     sp,
							Workload: canon,
							Cores:    cores,
							MemGB:    memGB,
							CHR:      float64(cores) / float64(hostCPUs),
						},
						w: w,
					})
				}
			}
		}
	}

	reps := spec.Reps
	results := make([]TrialResult, len(plan)*reps)
	err := forEachTrial(cfg, len(results), func(tc *TrialContext, i int) error {
		pc, rep := plan[i/reps], i%reps
		// Content-derived seed: a cell draws the same substream in every
		// sweep that contains it, which is what lets a shared memo skip it.
		seed := seedFor(cfg.Seed, 0x53_57, // "SW": keeps sweeps decorrelated from figures
			uint64(pc.cell.Spec.Kind), uint64(pc.cell.Spec.Mode),
			uint64(pc.cell.Cores), uint64(pc.cell.MemGB),
			workloadTag(pc.cell.Workload), uint64(rep))
		r, err := runTrial(tc, cfg, cfg.Host, pc.cell.Spec.Stack(), pc.cell.Cores,
			[]workload.Workload{pc.w}, pc.cell.MemGB, seed)
		if err != nil {
			return fmt.Errorf("sweep %s %s %dc/%dGB: %w",
				pc.cell.Platform, pc.cell.Workload, pc.cell.Cores, pc.cell.MemGB, err)
		}
		results[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}

	out := &SweepResult{Spec: spec}
	for ci, pc := range plan {
		vals := make([]float64, 0, reps)
		for rep := 0; rep < reps; rep++ {
			r := results[ci*reps+rep]
			vals = append(vals, r.Metric)
			pc.cell.Breakdown = r.Breakdown
		}
		pc.cell.Summary = stats.Summarize(vals)
		// Content-derived bootstrap seed, for the same reason the trial
		// seeds are content-derived: the same cell reports the same interval
		// in every sweep that contains it.
		bseed := seedFor(cfg.Seed, 0x42_53, // "BS": decorrelated from trial streams
			uint64(pc.cell.Spec.Kind), uint64(pc.cell.Spec.Mode),
			uint64(pc.cell.Cores), uint64(pc.cell.MemGB), workloadTag(pc.cell.Workload))
		rng := rand.New(rand.NewSource(int64(bseed & math.MaxInt64)))
		pc.cell.BootCI = stats.BootstrapCI(vals, 0.95, bootResamples, rng)
		out.Cells = append(out.Cells, pc.cell)
	}
	out.computeRatios()
	return out, nil
}

// workloadTag folds a workload name into the seed derivation.
func workloadTag(name string) uint64 {
	h := uint64(0)
	for i := 0; i < len(name); i++ {
		h = h*131 + uint64(name[i])
	}
	return h
}

// computeRatios fills Ratio against the Vanilla BM cell sharing each cell's
// (workload, cores, memory) coordinates, when the sweep contains one.
func (r *SweepResult) computeRatios() {
	type coord struct {
		w     string
		cores int
		mem   int
	}
	base := map[coord]float64{}
	for _, c := range r.Cells {
		if c.Spec.Kind == platform.BM && c.Spec.Mode == platform.Vanilla {
			base[coord{c.Workload, c.Cores, c.MemGB}] = c.Summary.Mean
		}
	}
	if len(base) == 0 {
		return
	}
	for i := range r.Cells {
		c := &r.Cells[i]
		if bm, ok := base[coord{c.Workload, c.Cores, c.MemGB}]; ok {
			c.Ratio = stats.Ratio(c.Summary.Mean, bm)
		}
	}
}

// Cell returns the sweep cell with the given coordinates (memGB 0 means the
// 4 GB/core default; wname accepts the same aliases as SweepSpec).
func (r *SweepResult) Cell(label, wname string, cores, memGB int) (SweepCell, bool) {
	canon, err := canonicalWorkload(wname)
	if err != nil {
		return SweepCell{}, false
	}
	if memGB <= 0 {
		memGB = 4 * cores
	}
	for _, c := range r.Cells {
		if c.Platform == label && c.Workload == canon &&
			c.Cores == cores && c.MemGB == memGB {
			return c, true
		}
	}
	return SweepCell{}, false
}

// RenderCSV writes one row per cell:
// platform,workload,cores,mem_gb,chr,mean_s,ci95_s,boot_lo_s,boot_hi_s,n,ratio.
func (r *SweepResult) RenderCSV(w io.Writer) {
	fmt.Fprintln(w, "platform,workload,cores,mem_gb,chr,mean_s,ci95_s,boot_lo_s,boot_hi_s,n,ratio")
	for _, c := range r.Cells {
		fmt.Fprintf(w, "%s,%s,%d,%d,%.4f,%.6f,%.6f,%.6f,%.6f,%d,%.4f\n",
			c.Platform, c.Workload, c.Cores, c.MemGB, c.CHR,
			c.Summary.Mean, c.Summary.CI95, c.BootCI.Lo, c.BootCI.Hi, c.Summary.N, c.Ratio)
	}
}

// RenderJSON writes the sweep as indented JSON.
func (r *SweepResult) RenderJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// RenderText writes an aligned table, one block per workload, series as
// rows and CHR points as columns.
func (r *SweepResult) RenderText(w io.Writer) {
	byWorkload := map[string][]SweepCell{}
	var worder []string
	for _, c := range r.Cells {
		if _, ok := byWorkload[c.Workload]; !ok {
			worder = append(worder, c.Workload)
		}
		byWorkload[c.Workload] = append(byWorkload[c.Workload], c)
	}
	for _, wname := range worder {
		cells := byWorkload[wname]
		fmt.Fprintf(w, "sweep — %s\n", wname)
		type col struct {
			cores, mem int
		}
		colSet := map[col]bool{}
		rowSet := map[string]bool{}
		var cols []col
		var rows []string
		for _, c := range cells {
			k := col{c.Cores, c.MemGB}
			if !colSet[k] {
				colSet[k] = true
				cols = append(cols, k)
			}
			if !rowSet[c.Platform] {
				rowSet[c.Platform] = true
				rows = append(rows, c.Platform)
			}
		}
		sort.Slice(cols, func(i, j int) bool {
			if cols[i].cores != cols[j].cores {
				return cols[i].cores < cols[j].cores
			}
			return cols[i].mem < cols[j].mem
		})
		fmt.Fprintf(w, "%-14s", "")
		for _, k := range cols {
			fmt.Fprintf(w, " %30s", fmt.Sprintf("%dc/%dGB", k.cores, k.mem))
		}
		fmt.Fprintln(w)
		for _, label := range rows {
			fmt.Fprintf(w, "%-14s", label)
			for _, k := range cols {
				var cell string
				for _, c := range cells {
					if c.Platform == label && c.Cores == k.cores && c.MemGB == k.mem {
						// mean ± t-interval, then the bootstrap interval in
						// brackets (they agree when reps are well-behaved;
						// divergence flags a skewed cell).
						cell = fmt.Sprintf("%.2f±%.2f [%.2f,%.2f]",
							c.Summary.Mean, c.Summary.CI95, c.BootCI.Lo, c.BootCI.Hi)
						if c.Ratio > 0 {
							cell += fmt.Sprintf(" (%.2fx)", c.Ratio)
						}
						break
					}
				}
				fmt.Fprintf(w, " %30s", cell)
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintln(w)
	}
}
