package experiments

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/sched"
)

// TestTrialCodecRoundTrip: the durable record form replays a TrialResult
// bit-for-bit, including exact float patterns.
func TestTrialCodecRoundTrip(t *testing.T) {
	r := TrialResult{
		Metric: 123.456789e-3,
		Breakdown: sched.Breakdown{
			UsefulWork: 1, SwitchTime: 2, MigrationTime: 3, AcctTime: 4, ChurnTime: 5,
			ThrottleTime: 6, IRQTime: 7, VirtioTime: 8, MsgTime: 9, NestedTime: 10, WanderTime: 11,
			Switches: 12, Migrations: 13, Steals: 14, Wakeups: 15, IOs: 16, Messages: 17, Throttles: 18,
		},
	}
	var c trialCodec
	enc := c.Append(nil, r)
	if len(enc) != trialRecordLen {
		t.Fatalf("encoded %d bytes, want %d", len(enc), trialRecordLen)
	}
	got, err := c.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, r) {
		t.Fatalf("round trip diverged:\n got  %+v\n want %+v", got, r)
	}
	// Exact bits survive for awkward floats too.
	r2 := TrialResult{Metric: math.Nextafter(1, 2)}
	got2, err := c.Decode(c.Append(nil, r2))
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(got2.Metric) != math.Float64bits(r2.Metric) {
		t.Fatal("float bit pattern did not survive the round trip")
	}
}

// TestTrialCodecRejectsWrongShapes locks the decode guards the corruption
// scan relies on.
func TestTrialCodecRejectsWrongShapes(t *testing.T) {
	var c trialCodec
	if _, err := c.Decode(make([]byte, trialRecordLen-1)); err == nil {
		t.Fatal("short record must fail decoding")
	}
	bad := c.Append(nil, TrialResult{})
	bad[0] = trialRecordSchema + 1
	if _, err := c.Decode(bad); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("wrong schema version must fail decoding, got %v", err)
	}
}

// runFig3Quick renders fig3 -quick with the given store.
func runFig3Quick(t *testing.T, st TrialStore) string {
	t.Helper()
	cfg := Config{Seed: 42, Quick: true, Workers: 2, Memo: st}
	f, err := RunRegistered("fig3", cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	f.RenderText(&buf)
	return buf.String()
}

// TestWarmStoreRunIsIncrementalAcrossProcesses is the tentpole contract: a
// second "process" (fresh store handle over the same directory) renders
// the identical figure while simulating nothing.
func TestWarmStoreRunIsIncrementalAcrossProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a quick figure twice")
	}
	dir := t.TempDir()
	st, err := OpenTrialStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	cold := runFig3Quick(t, st)
	coldMisses := st.Misses()
	if coldMisses == 0 {
		t.Fatal("cold run simulated nothing")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := OpenTrialStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	warm := runFig3Quick(t, st2)
	if warm != cold {
		t.Fatal("warm run diverged from the cold run")
	}
	s := st2.Stats()
	if s.Misses != 0 {
		t.Fatalf("warm run simulated %d trials, want 0", s.Misses)
	}
	if s.Loaded != coldMisses || s.Appended != 0 {
		t.Fatalf("warm stats = %+v, want %d loaded / 0 appended", s, coldMisses)
	}
}

// TestCorruptStoreNeverWrongFigure: flip bytes, truncate and cross-version
// a store — the next run recomputes what it cannot trust and still renders
// the exact figure.
func TestCorruptStoreNeverWrongFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a quick figure three times")
	}
	dir := t.TempDir()
	st, err := OpenTrialStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := runFig3Quick(t, st)
	st.Close()

	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.psr"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("want one segment, got %v (%v)", segs, err)
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the third record's payload and truncate the final
	// record's checksum.
	recLen := 12 + trialRecordLen + 8
	data[8+2*recLen+20] ^= 0xa5
	data = data[:len(data)-7]
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	var warn bytes.Buffer
	st2, err := openTrialStoreWarn(dir, &warn)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	got := runFig3Quick(t, st2)
	if got != want {
		t.Fatal("a corrupt store changed the rendered figure")
	}
	s := st2.Stats()
	if s.Corrupt != 2 {
		t.Fatalf("stats = %+v, want exactly the 2 damaged records skipped", s)
	}
	if s.Misses != 2 || s.Appended != 2 {
		t.Fatalf("stats = %+v, want the 2 damaged trials recomputed and re-persisted", s)
	}
	if w := warn.String(); !strings.Contains(w, "checksum") || !strings.Contains(w, "torn") {
		t.Fatalf("expected checksum and torn warnings, got %q", w)
	}
}

// TestStoreStatsLineFormat locks the -v line the CI cold/warm gate greps.
func TestStoreStatsLineFormat(t *testing.T) {
	m := NewTrialMemo()
	m.Put(1, TrialResult{})
	m.Get(1)
	m.Get(2)
	line := StoreStatsLine(m)
	if !strings.Contains(line, "1 hits, 1 misses (1 simulations)") {
		t.Fatalf("stats line drifted from the documented format: %q", line)
	}
}

// TestStoreStatsLineReuseCounters: once the process has deployed trials,
// the -v line reports the reuse counters as append-only suffixes, with the
// documented base prefix intact in front of them.
func TestStoreStatsLineReuseCounters(t *testing.T) {
	m := NewTrialMemo()
	if _, err := RunFig3(Config{Quick: true, Reps: 2, Seed: 3, Workers: 1, Memo: m}); err != nil {
		t.Fatal(err)
	}
	line := StoreStatsLine(m)
	if !strings.HasPrefix(line, "store: ") || !strings.Contains(line, " bytes on disk") {
		t.Fatalf("base stats line lost its documented shape: %q", line)
	}
	for _, want := range []string{" deployments reused (", " built)", " topology index cache hits (", " misses)"} {
		if !strings.Contains(line, want) {
			t.Fatalf("stats line is missing the %q reuse counter: %q", want, line)
		}
	}
}
