// Package experiments reproduces the paper's evaluation: every figure
// (Figs 3–8) and table (Tables I–III), the §IV-A CHR analysis and the §IV
// PTO/PSO overhead decomposition. Each runner returns a Figure value that
// renders as text or CSV and that the benchmark harness and tests consume.
//
// Every experiment decomposes into a grid of independent trials — one
// seeded simulation per (series, cell, repetition) — executed by the
// trial runner (runner.go) through a pluggable Executor (executor.go):
// trials fan out across Config.Workers goroutines (or a deterministic
// shard of the grid, for multi-machine runs) with results that are
// bit-identical to a serial run, and an optional Config.Memo — in-memory
// memo or durable disk-backed store (trialstore.go) — skips trials that
// an earlier run, in this process or any other, already simulated.
// Beyond the paper's fixed figures, Sweep (sweep.go) runs arbitrary
// user-defined grids of platforms × CHR points × workloads × memory sizes
// through the same machinery; cmd/pinsweep is its CLI.
package experiments

import (
	"fmt"

	"repro/internal/hypervisor"
	"repro/internal/machine"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/workload"
)

// InstanceType is a row of Table II.
type InstanceType struct {
	Name  string
	Cores int
	MemGB int
}

// InstanceTypes is Table II: the instance sizes used for evaluation.
var InstanceTypes = []InstanceType{
	{"Large", 2, 8},
	{"xLarge", 4, 16},
	{"2xLarge", 8, 32},
	{"4xLarge", 16, 64},
	{"8xLarge", 32, 128},
	{"16xLarge", 64, 256},
}

// InstanceByName returns the Table II row with the given name.
func InstanceByName(name string) (InstanceType, bool) {
	for _, it := range InstanceTypes {
		if it.Name == name {
			return it, true
		}
	}
	return InstanceType{}, false
}

// Instances returns the Table II rows from first to last inclusive.
func Instances(first, last string) []InstanceType {
	var out []InstanceType
	in := false
	for _, it := range InstanceTypes {
		if it.Name == first {
			in = true
		}
		if in {
			out = append(out, it)
		}
		if it.Name == last {
			break
		}
	}
	return out
}

// PlatformRow is a row of Table III.
type PlatformRow struct {
	Abbr, Platform, Specifications string
}

// PlatformTable is Table III.
var PlatformTable = []PlatformRow{
	{"BM", "Bare-Metal", "Ubuntu 18.04.3, Kernel 5.4.5"},
	{"VM", "Virtual Machine", "Qemu 2.11.1, Libvirt 4, Ubuntu 18.04.3"},
	{"CN", "Container on Bare-Metal", "Docker 19.03.6, Ubuntu 18.04 image"},
	{"VMCN", "Container on VM", "As above"},
}

// AppRow is a row of Table I.
type AppRow struct {
	Type, Version, Characteristic string
}

// AppTable is Table I.
var AppTable = []AppRow{
	{"FFmpeg", "3.4.6", "CPU-bound workload"},
	{"Open MPI", "2.1.1", "HPC workload"},
	{"WordPress", "5.3.2", "IO-bound web-based workload"},
	{"Cassandra", "2.2", "Big Data (NoSQL) workload"},
}

// Config controls an experiment run.
type Config struct {
	// Reps overrides the per-figure repetition count (paper: 20, except 6
	// for WordPress). 0 keeps the per-figure default.
	Reps int
	// Seed drives all randomness; runs with equal seeds are identical.
	Seed uint64
	// Host is the physical host topology (default: the paper's 112-CPU
	// R830).
	Host *topology.Topology
	// HV is the hypervisor calibration.
	HV *hypervisor.Params
	// Quick shrinks workloads and reps for fast CI runs; shapes are
	// preserved, absolute values are not.
	Quick bool
	// TimeLimit caps each simulated run (0 = 30 simulated minutes).
	TimeLimit sim.Time
	// OutOfRangeFactor flags a whole column as out of range when its
	// bare-metal mean exceeds this multiple of the bare-metal row's median
	// (the Cassandra Large thrash case, excluded from the paper's chart).
	OutOfRangeFactor float64
	// MutateHost, when set, edits the host machine configuration before
	// each deployment — the hook the ablation benchmarks use to switch off
	// individual overhead mechanisms (DESIGN.md §7). With Workers != 1 the
	// hook is called from multiple goroutines and must be concurrency-safe
	// (a pure function of its argument); it also disables trial memoization,
	// because an arbitrary function cannot be fingerprinted into a cache
	// key.
	MutateHost func(*machine.Config)
	// NoReuse disables per-worker deployment reuse: every trial builds its
	// platform stack from scratch instead of rewinding the worker's cached
	// arena in place. Results are bit-identical either way (the
	// reuse-equivalence tests pin this); the knob exists for A/B timing and
	// for debugging a suspected reset bug.
	NoReuse bool
	// Workers is the trial fan-out: every figure and sweep is a grid of
	// independent (series, cell, repetition) trials whose seeds are derived
	// up front, so trials run on a pool of this many goroutines with
	// bit-identical output to a serial run. 0 means GOMAXPROCS; 1 keeps the
	// legacy serial path (no goroutines) for A/B comparison. Ignored when
	// Executor is set — wire the worker count into the executor instead
	// (e.g. Shard{Inner: Pool{Workers: n}}).
	Workers int
	// Executor overrides the trial-execution strategy (nil = Pool{Workers}):
	// Serial, Pool, or Shard for running a deterministic partition of every
	// trial grid on one of N machines (see executor.go).
	Executor Executor
	// Memo, when non-nil, stores per-trial results keyed by a versioned
	// canonical encoding of the trial's full configuration and seed.
	// Repeated or overlapping runs that share a store skip every
	// already-simulated trial; a disk-backed store (OpenTrialStore) makes
	// that incremental across processes and machines. Ignored while
	// MutateHost is set — setting both logs a one-line warning (once per
	// process) instead of failing, since a MutateHost ablation run may
	// legitimately reuse a Config that carries a store.
	Memo TrialStore
	// Progress, when non-nil, is called after each completed trial with
	// (done, total) — the long-sweep progress hook. Calls are serialized by
	// the runner but may come from any worker goroutine.
	Progress func(done, total int)
}

func (c Config) withDefaults() Config {
	if c.Host == nil {
		c.Host = topology.PaperHost()
	}
	if c.HV == nil {
		hv := hypervisor.DefaultParams()
		c.HV = &hv
	}
	if c.TimeLimit <= 0 {
		c.TimeLimit = 30 * 60 * sim.Second
	}
	if c.OutOfRangeFactor <= 0 {
		c.OutOfRangeFactor = 4
	}
	return c
}

func (c Config) reps(figureDefault int) int {
	if c.Reps > 0 {
		return c.Reps
	}
	if c.Quick {
		return 2
	}
	return figureDefault
}

// Cell is one (series, instance) aggregate.
type Cell struct {
	Summary stats.Summary
	// Ratio is the paper's overhead ratio vs. the BM column mean.
	Ratio float64
	// OutOfRange marks thrashed cells (excluded from the paper's charts).
	OutOfRange bool
	// Breakdown is the overhead meter of the last repetition.
	Breakdown sched.Breakdown
}

// SeriesResult is one legend entry across the x-axis.
type SeriesResult struct {
	Label string
	// Spec is the canned platform identity of the series; meaningful only
	// when HasPlatform is set (a stack-only scenario series has no canned
	// identity, and the zero Spec would otherwise read as Vanilla BM).
	Spec platform.Spec
	// HasPlatform records whether Spec carries a real platform identity.
	HasPlatform bool
	Cells       []Cell
}

// Figure is a rendered experiment: series × x-labels of Cells.
type Figure struct {
	ID      string
	Title   string
	Metric  string
	XTitle  string
	XLabels []string
	Series  []SeriesResult
	// BaselineIdx is the index of the Vanilla BM series ratios are computed
	// against (-1 when no baseline applies).
	BaselineIdx int
}

// seedFor decorrelates repetitions and cells deterministically; it is
// sim.Substream, the pure derivation that makes handing every parallel
// trial its own private RNG safe.
func seedFor(base uint64, parts ...uint64) uint64 {
	return sim.Substream(base, parts...)
}

// runStack deploys a stack on host — through the worker's reuse arena when
// one is threaded in — spawns each tenant's workload and runs the machine
// to completion, returning the workload metric in seconds (the mean across
// tenants for multi-tenant stacks) and the machine's overhead breakdown.
func runStack(tc *TrialContext, cfg Config, host *topology.Topology, stack platform.Stack, size int, ws []workload.Workload, memGB int, seed uint64) (float64, sched.Breakdown, error) {
	d, err := tc.deploy(cfg, host, stack, size, seed)
	if err != nil {
		return 0, sched.Breakdown{}, err
	}
	// ws is either one shared workload for every tenant, or exactly one per
	// tenant slot; RunScenario pads per-tenant lists to the tenant count,
	// and this boundary enforces the invariant rather than trusting it.
	if len(ws) == 0 {
		return 0, sched.Breakdown{}, fmt.Errorf("experiments: trial has no workloads")
	}
	if len(ws) > 1 && len(ws) != len(d.Tenants) {
		return 0, sched.Breakdown{}, fmt.Errorf("experiments: %d workloads for %d tenant slot(s)",
			len(ws), len(d.Tenants))
	}
	// The context's buffer keeps the per-trial instance list allocation-free
	// at any tenant count (a fresh slice only on a nil context).
	insts := tc.instances(len(d.Tenants))
	for ti, slot := range d.Tenants {
		env := workload.EnvFor(d.M, slot.Group, slot.Affinity, slot.Cores)
		if memGB > 0 {
			env.MemGB = memGB
		}
		w := ws[0]
		if len(ws) > 1 {
			w = ws[ti]
		}
		insts[ti] = w.Spawn(env)
	}
	res := d.M.Run(cfg.TimeLimit)
	if res.TimedOut {
		return cfg.TimeLimit.Seconds(), res.Breakdown, nil
	}
	var sum float64
	for _, inst := range insts {
		sum += inst.Metric(res)
	}
	return sum / float64(len(insts)), res.Breakdown, nil
}

// computeRatios fills per-cell overhead ratios against the BM series and
// flags thrashed columns out-of-range.
func (f *Figure) computeRatios(cfg Config) {
	if f.BaselineIdx < 0 || f.BaselineIdx >= len(f.Series) {
		return
	}
	base := f.Series[f.BaselineIdx]
	// A column is out of range (overloaded/thrashed, like Cassandra's Large
	// instance) when its baseline mean jumps discontinuously relative to
	// the next larger instance.
	oor := make([]bool, len(base.Cells))
	for ci := 0; ci+1 < len(base.Cells); ci++ {
		next := base.Cells[ci+1].Summary.Mean
		if next > 0 && base.Cells[ci].Summary.Mean > cfg.OutOfRangeFactor*next {
			oor[ci] = true
		}
	}
	for si := range f.Series {
		for ci := range f.Series[si].Cells {
			cell := &f.Series[si].Cells[ci]
			if ci < len(base.Cells) {
				cell.Ratio = stats.Ratio(cell.Summary.Mean, base.Cells[ci].Summary.Mean)
				cell.OutOfRange = oor[ci]
			}
		}
	}
}

// Cell returns the cell for a series label and x-label.
func (f *Figure) Cell(label, x string) (Cell, bool) {
	xi := -1
	for i, xl := range f.XLabels {
		if xl == x {
			xi = i
			break
		}
	}
	if xi < 0 {
		return Cell{}, false
	}
	for _, s := range f.Series {
		if s.Label == label && xi < len(s.Cells) {
			return s.Cells[xi], true
		}
	}
	return Cell{}, false
}
