package experiments

import (
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
)

func TestWorkerCountResolution(t *testing.T) {
	if got := (Pool{Workers: 1}).count(100); got != 1 {
		t.Fatalf("Workers 1 → %d", got)
	}
	if got := (Pool{Workers: 8}).count(100); got != 8 {
		t.Fatalf("Workers 8 → %d", got)
	}
	if got := (Pool{Workers: 8}).count(3); got != 3 {
		t.Fatalf("8 workers for 3 trials → %d, want clamp to 3", got)
	}
	if got := (Pool{Workers: -2}).count(100); got != 1 {
		t.Fatalf("negative Workers → %d, want 1", got)
	}
	if got := (Pool{}).count(100); got < 1 {
		t.Fatalf("Workers 0 → %d, want ≥1 (GOMAXPROCS)", got)
	}
}

func TestForEachTrialCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 7} {
		const n = 100
		var counts [n]atomic.Int64
		err := forEachTrial(Config{Workers: workers}, n, func(tc *TrialContext, i int) error {
			counts[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachTrialReturnsLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 7} {
		err := forEachTrial(Config{Workers: workers}, 50, func(tc *TrialContext, i int) error {
			if i == 13 || i == 37 {
				return fmt.Errorf("trial %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "trial 13 failed" {
			t.Fatalf("workers=%d: err = %v, want the lowest-index failure", workers, err)
		}
	}
	if err := forEachTrial(Config{Workers: 4}, 0, func(*TrialContext, int) error {
		return errors.New("must not run")
	}); err != nil {
		t.Fatalf("empty grid: %v", err)
	}
}

func TestForEachTrialProgressReachesTotal(t *testing.T) {
	for _, workers := range []int{1, 5} {
		const n = 40
		var calls int
		last := 0
		cfg := Config{Workers: workers, Progress: func(done, total int) {
			calls++
			if total != n {
				t.Fatalf("total = %d, want %d", total, n)
			}
			if done <= last && workers == 1 {
				t.Fatalf("serial progress must be monotonic: %d after %d", done, last)
			}
			last = done
		}}
		if err := forEachTrial(cfg, n, func(*TrialContext, int) error { return nil }); err != nil {
			t.Fatal(err)
		}
		if calls != n {
			t.Fatalf("workers=%d: progress called %d times, want %d", workers, calls, n)
		}
		if last != n {
			t.Fatalf("workers=%d: final done = %d, want %d", workers, last, n)
		}
	}
}

// TestParallelFiguresMatchSerial is the determinism contract of the
// tentpole: every figure regenerated with a worker pool must be
// cell-for-cell bit-identical to the legacy serial path.
func TestParallelFiguresMatchSerial(t *testing.T) {
	for _, n := range []int{3, 7, 8} {
		serial, err := RunFigure(n, Config{Quick: true, Reps: 2, Seed: 1234, Workers: 1})
		if err != nil {
			t.Fatalf("fig %d serial: %v", n, err)
		}
		parallel, err := RunFigure(n, Config{Quick: true, Reps: 2, Seed: 1234, Workers: 8})
		if err != nil {
			t.Fatalf("fig %d parallel: %v", n, err)
		}
		if !reflect.DeepEqual(serial, parallel) {
			t.Fatalf("figure %d: Workers:8 output differs from Workers:1\nserial:   %+v\nparallel: %+v",
				n, serial, parallel)
		}
	}
}

// TestMemoizedFigureMatchesUnmemoized guards the trial fingerprint: replaying
// a figure from a warm memo must reproduce the simulated figure exactly.
func TestMemoizedFigureMatchesUnmemoized(t *testing.T) {
	base := Config{Quick: true, Reps: 2, Seed: 99, Workers: 1}
	plain, err := RunFig3(base)
	if err != nil {
		t.Fatal(err)
	}
	memo := NewTrialMemo()
	withMemo := base
	withMemo.Memo = memo
	first, err := RunFig3(withMemo)
	if err != nil {
		t.Fatal(err)
	}
	misses := memo.Misses()
	if misses == 0 {
		t.Fatal("cold memo must miss")
	}
	second, err := RunFig3(withMemo)
	if err != nil {
		t.Fatal(err)
	}
	if memo.Misses() != misses {
		t.Fatalf("warm replay simulated %d new trials, want 0", memo.Misses()-misses)
	}
	if !reflect.DeepEqual(plain, first) || !reflect.DeepEqual(first, second) {
		t.Fatal("memoized figures must equal the unmemoized figure")
	}
}

// The benchmark pair is the serial-vs-parallel A/B the Workers field
// exists for; on a multi-core host the parallel variant should approach a
// GOMAXPROCS-fold speedup (trials are embarrassingly parallel).
func BenchmarkQuickFig3Serial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RunFig3(Config{Quick: true, Reps: 2, Seed: 1234, Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQuickFig3SerialNoReuse is the A/B partner of QuickFig3Serial:
// the identical grid with per-worker deployment reuse switched off, so the
// pair isolates what arena rewinding saves.
func BenchmarkQuickFig3SerialNoReuse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RunFig3(Config{Quick: true, Reps: 2, Seed: 1234, Workers: 1, NoReuse: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScenarioDispatch measures everything the declarative engine
// adds on top of raw trial execution for one figure run: registry lookup,
// defaulting, validation, per-cell workload resolution (JSON overlay
// included) and the spec fingerprint. The trials themselves are identical
// either way (RunFigN is RunRegistered now), so this — not a second full
// figure run — is the dispatch overhead. The CI gate asserts it stays
// under 5% of the same-run QuickFig3Serial figure time (benchjson
// -fraction), which both proves the "<5% dispatch tax" claim structurally
// and catches anyone later making scenario interpretation expensive.
func BenchmarkScenarioDispatch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sc, ok := ScenarioByName("fig3")
		if !ok {
			b.Fatal("fig3 not registered")
		}
		sc = sc.withDefaults()
		if err := sc.Validate(); err != nil {
			b.Fatal(err)
		}
		for _, c := range sc.Cells {
			ws := c.Workload
			if ws == nil {
				ws = sc.Workload
			}
			if _, err := ws.Resolve(true); err != nil {
				b.Fatal(err)
			}
		}
		if sc.Fingerprint() == "" {
			b.Fatal("empty fingerprint")
		}
	}
}

func BenchmarkQuickFig3Parallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RunFig3(Config{Quick: true, Reps: 2, Seed: 1234, Workers: 0}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSeedForMatchesSubstreamContract(t *testing.T) {
	// The historical in-package derivation moved to sim.Substream; figure
	// cells must keep drawing the exact same seeds (reference values pinned
	// from the pre-move implementation).
	if got := seedFor(42, 2, 0, 0); got != 0xc8a42f52e7093f01 {
		t.Fatalf("seedFor(42,2,0,0) = %#x — figure seeds changed", got)
	}
}
