package experiments

import (
	"fmt"
	"io"
	"strings"
)

// RenderText writes a figure as an aligned text table: one row per series,
// one column per x-label, cells as "mean±ci (ratio)".
func (f *Figure) RenderText(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", strings.ToUpper(f.ID), f.Title)
	fmt.Fprintf(w, "metric: %s; x: %s\n\n", f.Metric, f.XTitle)
	cols := make([]int, len(f.XLabels)+1)
	rows := make([][]string, 0, len(f.Series)+1)
	head := append([]string{""}, f.XLabels...)
	rows = append(rows, head)
	// One reused format buffer: each cell costs exactly its final string,
	// not intermediate Sprintf results and concatenations.
	var buf []byte
	for _, s := range f.Series {
		row := make([]string, 0, len(s.Cells)+1)
		row = append(row, s.Label)
		for _, c := range s.Cells {
			buf = fmt.Appendf(buf[:0], "%.2f±%.2f", c.Summary.Mean, c.Summary.CI95)
			if f.BaselineIdx >= 0 && s.Label != f.Series[f.BaselineIdx].Label {
				buf = fmt.Appendf(buf, " (%.2fx)", c.Ratio)
			}
			if c.OutOfRange {
				buf = append(buf, " [OOR]"...)
			}
			row = append(row, string(buf))
		}
		rows = append(rows, row)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(cols) && len(cell) > cols[i] {
				cols[i] = len(cell)
			}
		}
	}
	for _, row := range rows {
		for i, cell := range row {
			pad := 0
			if i < len(cols) {
				pad = cols[i]
			}
			fmt.Fprintf(w, "%-*s", pad+2, cell)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// RenderCSV writes a figure as CSV: series,xlabel,mean,ci95,n,ratio,oor.
func (f *Figure) RenderCSV(w io.Writer) {
	fmt.Fprintln(w, "series,x,mean_s,ci95_s,n,ratio,out_of_range")
	for _, s := range f.Series {
		for i, c := range s.Cells {
			x := ""
			if i < len(f.XLabels) {
				x = f.XLabels[i]
			}
			fmt.Fprintf(w, "%s,%s,%.6f,%.6f,%d,%.4f,%t\n",
				s.Label, x, c.Summary.Mean, c.Summary.CI95, c.Summary.N, c.Ratio, c.OutOfRange)
		}
	}
}

// RenderBreakdown writes the overhead attribution of every cell's last
// repetition: where simulated CPU time went, per series and instance.
func (f *Figure) RenderBreakdown(w io.Writer) {
	fmt.Fprintf(w, "%s — overhead breakdown (last repetition, seconds of CPU time)\n", strings.ToUpper(f.ID))
	fmt.Fprintln(w, "series,x,useful,switch,migration,acct,churn,throttle,irq,virtio,msg,nested,migrations,throttles")
	for _, s := range f.Series {
		for i, c := range s.Cells {
			x := ""
			if i < len(f.XLabels) {
				x = f.XLabels[i]
			}
			b := c.Breakdown
			fmt.Fprintf(w, "%s,%s,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%d,%d\n",
				s.Label, x,
				b.UsefulWork.Seconds(), b.SwitchTime.Seconds(), b.MigrationTime.Seconds(),
				b.AcctTime.Seconds(), b.ChurnTime.Seconds(), b.ThrottleTime.Seconds(),
				b.IRQTime.Seconds(), b.VirtioTime.Seconds(), b.MsgTime.Seconds(),
				b.NestedTime.Seconds(), b.Migrations, b.Throttles)
		}
	}
}

// RenderTable1 writes Table I.
func RenderTable1(w io.Writer) {
	fmt.Fprintln(w, "Table I: application types used for evaluation")
	fmt.Fprintf(w, "%-12s %-10s %s\n", "Type", "Version", "Characteristic")
	for _, r := range AppTable {
		fmt.Fprintf(w, "%-12s %-10s %s\n", r.Type, r.Version, r.Characteristic)
	}
}

// RenderTable2 writes Table II.
func RenderTable2(w io.Writer) {
	fmt.Fprintln(w, "Table II: instance types used for evaluation")
	fmt.Fprintf(w, "%-10s %-14s %s\n", "Instance", "No. of Cores", "Memory (GB)")
	for _, it := range InstanceTypes {
		fmt.Fprintf(w, "%-10s %-14d %d\n", it.Name, it.Cores, it.MemGB)
	}
}

// RenderTable3 writes Table III.
func RenderTable3(w io.Writer) {
	fmt.Fprintln(w, "Table III: execution platforms")
	fmt.Fprintf(w, "%-6s %-24s %s\n", "Abbr.", "Platform", "Specifications")
	for _, r := range PlatformTable {
		fmt.Fprintf(w, "%-6s %-24s %s\n", r.Abbr, r.Platform, r.Specifications)
	}
}

// RenderCHR writes the §IV-A CHR bands against the paper's.
func RenderCHR(w io.Writer, bands []CHRBand) {
	fmt.Fprintln(w, "§IV-A: suitable CHR bands (where vanilla-container PSO vanishes)")
	fmt.Fprintf(w, "%-12s %-22s %-22s %s\n", "App", "Measured CHR", "Instances", "Paper CHR")
	for _, b := range bands {
		fmt.Fprintf(w, "%-12s %.2f < CHR < %.2f      %-22s %.2f < CHR < %.2f\n",
			b.App, b.LowCHR, b.HighCHR,
			b.LowName+"–"+b.HighName, b.PaperLow, b.PaperHigh)
	}
}

// RenderDecomposition writes the §IV PTO/PSO split of a figure.
func RenderDecomposition(w io.Writer, fig Figure, ds []Decomposition) {
	fmt.Fprintf(w, "%s — PTO/PSO decomposition (PTO = size-invariant ratio; PSO per instance)\n",
		strings.ToUpper(fig.ID))
	fmt.Fprintf(w, "%-14s %-6s", "series", "PTO")
	for _, x := range fig.XLabels {
		fmt.Fprintf(w, " PSO@%-9s", x)
	}
	fmt.Fprintln(w)
	for _, d := range ds {
		fmt.Fprintf(w, "%-14s %-6.2f", d.Label, d.PTO)
		for _, p := range d.PSO {
			fmt.Fprintf(w, " %-13.2f", p)
		}
		fmt.Fprintln(w)
	}
}
