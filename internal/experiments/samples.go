package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/model"
)

// FigureClass maps the paper's figures to their application class.
func FigureClass(n int) (core.AppClass, error) {
	switch n {
	case 3, 7, 8:
		return core.CPUBound, nil
	case 4:
		return core.Parallel, nil
	case 5:
		return core.IOBound, nil
	case 6:
		return core.UltraIOBound, nil
	}
	return 0, fmt.Errorf("experiments: no class for figure %d", n)
}

// FigureSamples converts one regenerated figure into overhead samples for
// the analytic model (internal/model): each non-baseline, in-range cell
// becomes a (platform, mode, class, CHR, ratio) point. hostCPUs is the
// host's logical CPU count (the CHR denominator).
func FigureSamples(f Figure, class core.AppClass, hostCPUs int) ([]model.Sample, error) {
	if hostCPUs <= 0 {
		return nil, fmt.Errorf("experiments: hostCPUs must be positive")
	}
	var out []model.Sample
	for si, s := range f.Series {
		if si == f.BaselineIdx {
			continue
		}
		// Stack-only scenario series carry no canned platform identity;
		// their zero Spec would masquerade as Vanilla BM in the model fit.
		if !s.HasPlatform {
			continue
		}
		for ci, cell := range s.Cells {
			if ci >= len(f.XLabels) || cell.OutOfRange || cell.Ratio <= 0 {
				continue
			}
			it, ok := InstanceByName(f.XLabels[ci])
			if !ok {
				continue // non-instance x-axis (Fig 7/8)
			}
			out = append(out, model.Sample{
				Platform: s.Spec.Kind,
				Mode:     s.Spec.Mode,
				Class:    class,
				CHR:      float64(it.Cores) / float64(hostCPUs),
				Ratio:    cell.Ratio,
			})
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("experiments: figure %s produced no samples", f.ID)
	}
	return out, nil
}

// FitModel regenerates the given figures and fits the analytic overhead
// model on their cells — the executable form of the paper's future-work
// item (§VI): overhead as a function of platform isolation level and CHR.
func FitModel(figs []int, cfg Config) (*model.Model, error) {
	cfg = cfg.withDefaults()
	var samples []model.Sample
	for _, n := range figs {
		class, err := FigureClass(n)
		if err != nil {
			return nil, err
		}
		f, err := RunFigure(n, cfg)
		if err != nil {
			return nil, err
		}
		ss, err := FigureSamples(f, class, cfg.Host.NumCPUs())
		if err != nil {
			return nil, err
		}
		samples = append(samples, ss...)
	}
	return model.Fit(samples)
}
