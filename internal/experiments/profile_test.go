package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/platform"
	"repro/internal/sched"
)

func TestParsePlatformAndMode(t *testing.T) {
	for s, want := range map[string]platform.Kind{
		"bm": platform.BM, "VM": platform.VM, "cn": platform.CN, "VMCN": platform.VMCN,
	} {
		got, err := ParsePlatform(s)
		if err != nil || got != want {
			t.Fatalf("ParsePlatform(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParsePlatform("xen"); err == nil {
		t.Fatal("unknown platform")
	}
	if m, err := ParseMode(""); err != nil || m != platform.Vanilla {
		t.Fatal("empty mode defaults to vanilla")
	}
	if m, err := ParseMode("Pinned"); err != nil || m != platform.Pinned {
		t.Fatal("pinned mode")
	}
	if _, err := ParseMode("floating"); err == nil {
		t.Fatal("unknown mode")
	}
}

func TestWorkloadForNames(t *testing.T) {
	cfg := Config{Quick: true}.withDefaults()
	for _, app := range []string{"ffmpeg", "mpi", "wordpress", "web", "cassandra", "nosql"} {
		if _, err := WorkloadFor(app, cfg); err != nil {
			t.Fatalf("%s: %v", app, err)
		}
	}
	if _, err := WorkloadFor("redis", cfg); err == nil {
		t.Fatal("unknown app")
	}
}

func TestRunProfileVanillaCNShowsThrottles(t *testing.T) {
	if testing.Short() {
		t.Skip("profile run is a long integration test")
	}
	res, err := RunProfile(ProfileSpec{
		App: "wordpress", Platform: "cn", Mode: "vanilla", Size: "xLarge",
	}, Config{Quick: true, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if res.MetricSecs <= 0 {
		t.Fatalf("metric %v", res.MetricSecs)
	}
	col := res.Collector
	if col.Events() == 0 {
		t.Fatal("no trace events")
	}
	// The deployment's cgroup must appear in cpudist and pay IO off-CPU time.
	var key string
	for k := range col.OnCPU {
		if strings.HasPrefix(k, "cn") {
			key = k
			break
		}
	}
	if key == "" {
		var keys []string
		for k := range col.OnCPU {
			keys = append(keys, k)
		}
		t.Fatalf("container group missing from cpudist keys %v", keys)
	}
	if col.OffCPU[key][sched.BlockIO] == nil {
		t.Fatal("IO off-CPU histogram missing")
	}
	// A quota'd web burst at xLarge must throttle.
	if col.Throttles()[key] == 0 {
		t.Fatal("vanilla CN under load must throttle")
	}
	var buf bytes.Buffer
	col.Report(&buf)
	if !strings.Contains(buf.String(), "cgroup throttles") {
		t.Fatal("report must include the throttle section")
	}
}

func TestRunProfilePinnedVMCN(t *testing.T) {
	if testing.Short() {
		t.Skip("profile run is a long integration test")
	}
	res, err := RunProfile(ProfileSpec{
		App: "ffmpeg", Platform: "vmcn", Mode: "pinned", Size: "Large",
	}, Config{Quick: true, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	// The guest machine's scheduler is the traced one for VMCN.
	if res.Collector.Events() == 0 {
		t.Fatal("guest scheduler events must flow through the inherited trace")
	}
}

func TestRunProfileValidation(t *testing.T) {
	cfg := Config{Quick: true}
	if _, err := RunProfile(ProfileSpec{App: "ffmpeg", Platform: "zz", Mode: "vanilla", Size: "xLarge"}, cfg); err == nil {
		t.Fatal("bad platform")
	}
	if _, err := RunProfile(ProfileSpec{App: "ffmpeg", Platform: "cn", Mode: "zz", Size: "xLarge"}, cfg); err == nil {
		t.Fatal("bad mode")
	}
	if _, err := RunProfile(ProfileSpec{App: "ffmpeg", Platform: "cn", Mode: "vanilla", Size: "petaLarge"}, cfg); err == nil {
		t.Fatal("bad size")
	}
	if _, err := RunProfile(ProfileSpec{App: "redis", Platform: "cn", Mode: "vanilla", Size: "xLarge"}, cfg); err == nil {
		t.Fatal("bad app")
	}
}
