package experiments

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/platform"
)

// scenarioFixture is a small hand-built scenario exercising every spec
// feature: a canned series, a custom stack with tenants and tenant
// workloads, per-cell hosts, memory and workload overrides.
func scenarioFixture() Scenario {
	return Scenario{
		Name:     "fixture",
		Title:    "fixture scenario",
		SeedTag:  []uint64{77},
		Reps:     2,
		Baseline: "Vanilla BM",
		Workload: &WorkloadSpec{Driver: "ffmpeg"},
		Series: []ScenarioSeries{
			{Platform: &platform.Spec{Kind: platform.BM, Mode: platform.Vanilla}},
			{
				Label: "2 pinned tenants",
				Stack: platform.Stack{
					Layers:  []platform.Layer{{Kind: platform.LayerHost}},
					Tenants: []platform.TenantSpec{{Cores: 2, Pinned: true}, {Cores: 2, Pinned: true}},
				},
				TenantWorkloads: []WorkloadSpec{{Driver: "cassandra"}},
			},
		},
		Cells: []ScenarioCell{
			{Label: "small", Host: "small16", Cores: 2, MemGB: 8},
			{Label: "large", Cores: 4,
				Workload: &WorkloadSpec{Driver: "ffmpeg", Params: json.RawMessage(`{"Segments": 3}`)}},
		},
	}
}

// TestScenarioFingerprintStability pins the fixture's fingerprint to a
// literal, proving the derivation is a pure function of the spec's values —
// no pointer formatting, no map iteration — and therefore identical across
// processes. If an intentional spec-format change lands, regenerate the
// literal with `go test -run TestScenarioFingerprintStability -v` and say
// so in the PR.
func TestScenarioFingerprintStability(t *testing.T) {
	fp := scenarioFixture().Fingerprint()
	if again := scenarioFixture().Fingerprint(); again != fp {
		t.Fatalf("fingerprint not deterministic in-process: %s vs %s", fp, again)
	}
	const pinned = "55c8c360ec726173"
	if fp != pinned {
		t.Fatalf("fixture fingerprint %s, want pinned %s — the spec serialization changed", fp, pinned)
	}
}

// TestScenarioFingerprintCollisions asserts every spec field participates
// in the fingerprint: mutating any one — grid shape, stack depth, tenant
// count, driver parameters, seed tag, reps, hosts, memory — must change it.
func TestScenarioFingerprintCollisions(t *testing.T) {
	base := scenarioFixture()
	fp := base.Fingerprint()
	mutate := map[string]func(*Scenario){
		"name":             func(s *Scenario) { s.Name = "other" },
		"title":            func(s *Scenario) { s.Title = "other" },
		"seed tag":         func(s *Scenario) { s.SeedTag = []uint64{78} },
		"extra tag":        func(s *Scenario) { s.SeedTag = append(s.SeedTag, 1) },
		"reps":             func(s *Scenario) { s.Reps = 3 },
		"baseline":         func(s *Scenario) { s.Baseline = "" },
		"default workload": func(s *Scenario) { s.Workload.Driver = "mpi" },
		"driver params": func(s *Scenario) {
			s.Cells[1].Workload.Params = json.RawMessage(`{"Segments": 4}`)
		},
		"series order": func(s *Scenario) { s.Series[0], s.Series[1] = s.Series[1], s.Series[0] },
		"series label": func(s *Scenario) { s.Series[1].Label = "renamed" },
		"platform mode": func(s *Scenario) {
			s.Series[0].Platform = &platform.Spec{Kind: platform.BM, Mode: platform.Pinned}
		},
		"stack depth": func(s *Scenario) {
			s.Series[1].Stack.Layers = append(s.Series[1].Stack.Layers,
				platform.Layer{Kind: platform.LayerGuest})
		},
		"tenant count": func(s *Scenario) {
			s.Series[1].Stack.Tenants = append(s.Series[1].Stack.Tenants,
				platform.TenantSpec{Cores: 2})
		},
		"tenant pinning": func(s *Scenario) { s.Series[1].Stack.Tenants[0].Pinned = false },
		"tenant workload": func(s *Scenario) {
			s.Series[1].TenantWorkloads[0].Driver = "wordpress"
		},
		"cell host":  func(s *Scenario) { s.Cells[0].Host = "paper" },
		"cell cores": func(s *Scenario) { s.Cells[0].Cores = 4 },
		"cell mem":   func(s *Scenario) { s.Cells[0].MemGB = 16 },
		"cell count": func(s *Scenario) { s.Cells = s.Cells[:1] },
	}
	seen := map[string]string{fp: "base"}
	for field, mut := range mutate {
		s := scenarioFixture()
		mut(&s)
		got := s.Fingerprint()
		if prev, dup := seen[got]; dup {
			t.Errorf("mutating %q collides with %s (fingerprint %s)", field, prev, got)
			continue
		}
		seen[got] = field
	}
}

// TestScenarioFingerprintDelimiterForgery asserts a field-separator inside
// one free-text field cannot forge an adjacent field's boundary: two specs
// whose concatenated text is identical but whose field split differs must
// fingerprint differently.
func TestScenarioFingerprintDelimiterForgery(t *testing.T) {
	a, b := scenarioFixture(), scenarioFixture()
	a.Title, a.Description = "t|d", "x"
	b.Title, b.Description = "t", "d|x"
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("delimiter inside Title forged the Title/Description boundary")
	}
	a, b = scenarioFixture(), scenarioFixture()
	a.Series[1].Stack.Tenants[0].Name = `x"(c9`
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("tenant name must participate in the fingerprint, delimiter-safely")
	}
}

// TestRegisteredScenarioJSONRoundTrip locks the declarative contract for
// every registered scenario: Marshal → Unmarshal → Fingerprint must be the
// identity, and the round-tripped spec must still validate.
func TestRegisteredScenarioJSONRoundTrip(t *testing.T) {
	scs := Scenarios()
	if len(scs) < 8 {
		t.Fatalf("registry lists %d scenarios, want the 8 builtins", len(scs))
	}
	for _, sc := range scs {
		data, err := sc.MarshalIndentJSON()
		if err != nil {
			t.Fatalf("%s: marshal: %v", sc.Name, err)
		}
		back, err := ParseScenario(data)
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		if back.Fingerprint() != sc.Fingerprint() {
			t.Fatalf("%s: JSON round-trip changed the fingerprint:\n%s", sc.Name, data)
		}
	}
}

// TestExampleScenarioFilesRunWithMemoHits is the acceptance check for the
// two shipped example specs: a ≥3-tenant co-location and a ≥3-machine-layer
// nested stack both load from JSON, run, and hit the memo on a repeat run
// (zero new simulations).
func TestExampleScenarioFilesRunWithMemoHits(t *testing.T) {
	for _, path := range []string{
		"../../examples/scenarios/colocate3.json",
		"../../examples/scenarios/nested.json",
	} {
		sc, err := LoadScenario(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		cfg := Config{Quick: true, Reps: 1, Seed: 9, Workers: 1, Memo: NewTrialMemo()}
		first, err := RunScenario(cfg, sc)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		missesAfterFirst := cfg.Memo.Misses()
		if missesAfterFirst == 0 {
			t.Fatalf("%s: first run must simulate", path)
		}
		second, err := RunScenario(cfg, sc)
		if err != nil {
			t.Fatalf("%s: repeat: %v", path, err)
		}
		if cfg.Memo.Misses() != missesAfterFirst {
			t.Fatalf("%s: repeat run re-simulated %d trials instead of hitting the memo",
				path, cfg.Memo.Misses()-missesAfterFirst)
		}
		if !reflect.DeepEqual(first, second) {
			t.Fatalf("%s: memoized repeat diverged", path)
		}
	}
}

// TestExampleScenarioShapes pins the structural claims the examples make:
// colocate3 really co-locates ≥3 tenants, nested really stacks ≥3 machine
// layers.
func TestExampleScenarioShapes(t *testing.T) {
	co, err := LoadScenario("../../examples/scenarios/colocate3.json")
	if err != nil {
		t.Fatal(err)
	}
	for _, se := range co.Series {
		if n := len(se.Stack.Tenants); n < 3 {
			t.Fatalf("colocate3 series %q has %d tenants, want ≥3", se.Label, n)
		}
	}
	ne, err := LoadScenario("../../examples/scenarios/nested.json")
	if err != nil {
		t.Fatal(err)
	}
	deepest := 0
	for _, se := range ne.Series {
		if d := se.Stack.Depth(); d > deepest {
			deepest = d
		}
	}
	if deepest < 3 {
		t.Fatalf("nested example's deepest stack has %d machine layers, want ≥3", deepest)
	}
}

// TestScenarioWorkerInvariance asserts a tenant-bearing scenario is
// bit-identical across worker counts, like every figure.
func TestScenarioWorkerInvariance(t *testing.T) {
	sc, err := LoadScenario("../../examples/scenarios/colocate3.json")
	if err != nil {
		t.Fatal(err)
	}
	serial, err := RunScenario(Config{Quick: true, Reps: 2, Seed: 5, Workers: 1}, sc)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunScenario(Config{Quick: true, Reps: 2, Seed: 5, Workers: 8}, sc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("scenario output depends on worker count")
	}
}

func TestScenarioValidation(t *testing.T) {
	cases := map[string]func(*Scenario){
		"no name":      func(s *Scenario) { s.Name = "" },
		"no series":    func(s *Scenario) { s.Series = nil },
		"no cells":     func(s *Scenario) { s.Cells = nil },
		"dup labels":   func(s *Scenario) { s.Series[1].Label = s.Series[0].Platform.Label() },
		"bad stack":    func(s *Scenario) { s.Series[1].Stack.Layers[0].Kind = "pod" },
		"bad driver":   func(s *Scenario) { s.Workload.Driver = "nope" },
		"bad params":   func(s *Scenario) { s.Cells[1].Workload.Params = json.RawMessage(`{"Nope": 1}`) },
		"bad host":     func(s *Scenario) { s.Cells[0].Host = "mars" },
		"zero cores":   func(s *Scenario) { s.Cells[0].Cores = 0 },
		"no workload":  func(s *Scenario) { s.Workload = nil; s.Cells[0].Workload = nil; s.Cells[1].Workload = nil },
		"bad baseline": func(s *Scenario) { s.Baseline = "missing" },
		"more tenant workloads than tenants": func(s *Scenario) {
			s.Series[1].TenantWorkloads = []WorkloadSpec{
				{Driver: "ffmpeg"}, {Driver: "ffmpeg"}, {Driver: "cassandra"},
			}
		},
		"tenant workloads without tenants": func(s *Scenario) {
			s.Series[1].Stack.Tenants = nil
			s.Series[1].TenantWorkloads = []WorkloadSpec{{Driver: "ffmpeg"}, {Driver: "cassandra"}}
		},
	}
	for name, mut := range cases {
		s := scenarioFixture()
		mut(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate must fail", name)
		}
	}
	if err := scenarioFixture().Validate(); err != nil {
		t.Fatalf("fixture must validate: %v", err)
	}
}

func TestUnknownScenarioErrorListsSortedNames(t *testing.T) {
	err := UnknownScenarioError("zzz")
	msg := err.Error()
	names := ScenarioNames()
	if !sortedStrings(names) {
		t.Fatal("ScenarioNames must be sorted")
	}
	for _, n := range names {
		if !strings.Contains(msg, n) {
			t.Fatalf("error %q misses registered name %s", msg, n)
		}
	}
	if _, err := RunRegistered("zzz", Config{}); err == nil {
		t.Fatal("unknown scenario must fail")
	}
}

func sortedStrings(s []string) bool {
	for i := 1; i < len(s); i++ {
		if s[i-1] > s[i] {
			return false
		}
	}
	return true
}

// TestScenarioValueSemantics locks two aliasing hazards: Fingerprint (which
// applies defaults internally) must not write labels back into the caller's
// Series backing array, and mutating a registry lookup's result must not
// corrupt the stored registration.
func TestScenarioValueSemantics(t *testing.T) {
	s := scenarioFixture() // series 0 has Platform set, Label empty
	_ = s.Fingerprint()
	if s.Series[0].Label != "" {
		t.Fatalf("Fingerprint mutated the caller's series: %q", s.Series[0].Label)
	}
	sc, ok := ScenarioByName("fig7")
	if !ok {
		t.Fatal("fig7 missing")
	}
	want := sc.Series[0].Label
	sc.Series[0].Label = "corrupted"
	sc.Workload.Driver = "mpi"      // shared *WorkloadSpec would corrupt
	sc.Series[0].Platform.Mode = 99 // shared *platform.Spec would corrupt
	sc.Series[0].Stack.Layers = nil // shared backing array would corrupt
	again, _ := ScenarioByName("fig7")
	if again.Series[0].Label != want {
		t.Fatalf("mutating a lookup result corrupted the registry: %q", again.Series[0].Label)
	}
	if again.Workload.Driver != "ffmpeg" || again.Series[0].Platform.Mode == 99 {
		t.Fatal("registry lookups must deep-copy pointer fields")
	}
}

func TestRegisterScenarioRejectsDuplicatesAndInvalid(t *testing.T) {
	if err := RegisterScenario(scenarioFixture()); err != nil {
		t.Fatalf("fixture registration: %v", err)
	}
	defer func() { // keep the shared registry clean for other tests
		registryMu.Lock()
		delete(registry, "fixture")
		registryMu.Unlock()
	}()
	if err := RegisterScenario(scenarioFixture()); err == nil {
		t.Fatal("duplicate registration must fail")
	}
	bad := scenarioFixture()
	bad.Name = "bad"
	bad.Cells = nil
	if err := RegisterScenario(bad); err == nil {
		t.Fatal("invalid scenario must not register")
	}
}

// TestMutateHostMemoWarning locks the documented MutateHost/Memo
// interaction: setting both prints the warning once (the rate-limited
// warner suppresses repeats but keeps counting them for -v stats) instead
// of silently ignoring the memo.
func TestMutateHostMemoWarning(t *testing.T) {
	var buf bytes.Buffer
	old := swapMemoWarner(newMemoWarner(&buf))
	defer swapMemoWarner(old)

	cfg := Config{Quick: true, Reps: 1, Seed: 3, Workers: 1,
		Memo:       NewTrialMemo(),
		MutateHost: func(*machine.Config) {}}
	if _, err := RunFig8(cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := RunFig8(cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "MutateHost") || !strings.Contains(out, "Memo") {
		t.Fatalf("expected the MutateHost/Memo warning, got %q", out)
	}
	if got := strings.Count(out, "MutateHost is set"); got != 1 {
		t.Fatalf("warning printed %d times, want once per process: %q", got, out)
	}
	if got := MemoBypassCount(); got != 2 {
		t.Fatalf("MemoBypassCount = %d, want both bypassing runs counted", got)
	}
	if cfg.Memo.Len() != 0 {
		t.Fatal("memo must stay unused while MutateHost is set")
	}
}
