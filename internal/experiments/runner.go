package experiments

// The parallel trial runner. Every figure and sweep in this package reduces
// to a grid of independent trials: one (series, cell, repetition) simulation
// whose seed is derived up front with sim.Substream, so the trial's result
// is a pure function of (Config, host, spec, workload, memGB, seed). That
// purity is what makes fan-out safe: workers claim trial indices from an
// atomic counter and write only their own result slot, so the assembled
// figure is bit-identical no matter how many workers ran or how the OS
// interleaved them — only the wall-clock changes.

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/cache"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/topology"
	"repro/internal/workload"
)

// TrialResult is the memoizable outcome of one simulated trial.
type TrialResult struct {
	// Metric is the workload metric in seconds (per-figure definition).
	Metric float64
	// Breakdown is the machine's overhead attribution for the run.
	Breakdown sched.Breakdown
}

// TrialMemo caches TrialResults across runs, keyed by a hash of the trial's
// full configuration fingerprint plus its seed (see trialKey). Share one
// memo across repeated or overlapping sweeps to skip already-simulated
// cells; it is safe for concurrent use by parallel workers.
type TrialMemo = cache.Memo[TrialResult]

// NewTrialMemo returns an empty trial memo for Config.Memo.
func NewTrialMemo() *TrialMemo { return cache.NewMemo[TrialResult]() }

// workerCount resolves Config.Workers to an actual pool size for n trials.
func (c Config) workerCount(n int) int {
	w := c.Workers
	switch {
	case w == 0:
		w = runtime.GOMAXPROCS(0)
	case w < 0:
		w = 1
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// forEachTrial executes run(0..n-1) across the configured worker pool and
// reports the first (lowest-index) error. Workers claim indices from a
// shared atomic counter; run must write its result into an index-addressed
// slot owned by that trial alone, which keeps assembled output independent
// of scheduling order. Workers == 1 takes a plain loop with no goroutines —
// the legacy serial path, kept for A/B comparison and for callers whose
// MutateHost hooks are not concurrency-safe. cfg.Progress, when set, is
// observed after every completed trial (serialized by a mutex in the
// parallel case).
func forEachTrial(cfg Config, n int, run func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := cfg.workerCount(n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := run(i); err != nil {
				return err
			}
			if cfg.Progress != nil {
				cfg.Progress(i+1, n)
			}
		}
		return nil
	}

	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup

		mu       sync.Mutex
		done     int
		firstErr error
		errIdx   = n
	)
	progress := func() {
		mu.Lock()
		done++
		if cfg.Progress != nil {
			// The increment and the callback share one critical section so
			// observed counts are strictly monotonic.
			cfg.Progress(done, n)
		}
		mu.Unlock()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failed.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := run(i); err != nil {
					// Stop claiming new trials, but keep the lowest-index
					// error among those already claimed: the failing claim
					// outranks every index it prevented from running, so
					// the reported error is as deterministic as in the
					// serial path.
					failed.Store(true)
					mu.Lock()
					if i < errIdx {
						errIdx, firstErr = i, err
					}
					mu.Unlock()
					continue
				}
				progress()
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// runTrial is runStack behind the memo: on a hit the simulation is skipped
// entirely and the cached result replayed. Trials with a MutateHost hook
// bypass the memo — an arbitrary function cannot be fingerprinted.
func runTrial(cfg Config, host *topology.Topology, stack platform.Stack, size int, ws []workload.Workload, memGB int, seed uint64) (TrialResult, error) {
	if cfg.Memo == nil || cfg.MutateHost != nil {
		v, bd, err := runStack(cfg, host, stack, size, ws, memGB, seed)
		return TrialResult{Metric: v, Breakdown: bd}, err
	}
	key := trialKey(cfg, host, stack, size, ws, memGB, seed)
	if r, ok := cfg.Memo.Get(key); ok {
		return r, nil
	}
	v, bd, err := runStack(cfg, host, stack, size, ws, memGB, seed)
	if err != nil {
		return TrialResult{}, err
	}
	r := TrialResult{Metric: v, Breakdown: bd}
	cfg.Memo.Put(key, r)
	return r, nil
}

// trialKey fingerprints everything runStack's result depends on: the seed,
// the stack and instance size, the host topology, the hypervisor
// calibration, the time limit and every tenant workload's concrete
// parameters (%+v covers Quick-mode scaling, which shrinks workload fields
// rather than setting a flag; workload parameter structs are value-only, so
// the formatting is stable).
func trialKey(cfg Config, host *topology.Topology, stack platform.Stack, size int, ws []workload.Workload, memGB int, seed uint64) uint64 {
	var wfp strings.Builder
	for _, w := range ws {
		fmt.Fprintf(&wfp, "%s:%+v;", w.Name(), w)
	}
	fp := fmt.Sprintf("%d|%s#%d|%s|%+v|%d|%d|%s",
		seed, stack.Fingerprint(), size, host.Fingerprint(), *cfg.HV, cfg.TimeLimit, memGB, wfp.String())
	return cache.HashKey(fp)
}

// memoMutateWarn emits the one-line notice that Config.MutateHost disables
// Config.Memo, once per process; memoMutateWarnOut is a test seam.
var (
	memoMutateOnce    sync.Once
	memoMutateWarnOut io.Writer = os.Stderr
)

// warnMemoMutateHost surfaces the documented MutateHost/Memo interaction
// instead of silently ignoring the memo: every experiment entry point calls
// it before fanning trials out.
func warnMemoMutateHost(cfg Config) {
	if cfg.Memo == nil || cfg.MutateHost == nil {
		return
	}
	memoMutateOnce.Do(func() {
		fmt.Fprintln(memoMutateWarnOut,
			"experiments: warning: Config.MutateHost is set, so Config.Memo is ignored — an arbitrary host mutation cannot be fingerprinted into a cache key")
	})
}
