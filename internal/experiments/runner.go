package experiments

// The trial runner. Every figure and sweep in this package reduces to a
// grid of independent trials: one (series, cell, repetition) simulation
// whose seed is derived up front with sim.Substream, so the trial's result
// is a pure function of (Config, host, spec, workload, memGB, seed). That
// purity is what makes both fan-out and durability safe: an Executor
// (executor.go) decides which trials run here and on how many goroutines,
// and a TrialStore (trialstore.go) replays any trial an earlier run — in
// this process or any other — already simulated. Results are always
// written to index-addressed slots, so the assembled figure is
// bit-identical no matter how trials were scheduled, sharded or cached.

import (
	"io"
	"os"
	"sync"

	"repro/internal/platform"
	"repro/internal/resultstore"
	"repro/internal/sched"
	"repro/internal/topology"
	"repro/internal/workload"
)

// TrialResult is the memoizable outcome of one simulated trial.
type TrialResult struct {
	// Metric is the workload metric in seconds (per-figure definition).
	Metric float64
	// Breakdown is the machine's overhead attribution for the run.
	Breakdown sched.Breakdown
}

// forEachTrial executes run(0..n-1) through the configured executor and
// reports the first (lowest-index) error. The default is Pool{Workers:
// cfg.Workers} — the atomic-claim worker fan-out, degrading to the legacy
// serial loop at Workers 1. cfg.Progress, when set, is observed after
// every completed trial.
func forEachTrial(cfg Config, n int, run func(tc *TrialContext, i int) error) error {
	ex := cfg.Executor
	if ex == nil {
		ex = Pool{Workers: cfg.Workers}
	}
	return ex.Execute(n, run, cfg.Progress)
}

// runTrial is runStack behind the trial store: on a hit the simulation is
// skipped entirely and the stored result replayed — from memory within a
// process, from disk across processes when the store is durable. Trials
// with a MutateHost hook bypass the store — an arbitrary function cannot
// be fingerprinted.
func runTrial(tc *TrialContext, cfg Config, host *topology.Topology, stack platform.Stack, size int, ws []workload.Workload, memGB int, seed uint64) (TrialResult, error) {
	if cfg.Memo == nil || cfg.MutateHost != nil {
		v, bd, err := runStack(tc, cfg, host, stack, size, ws, memGB, seed)
		return TrialResult{Metric: v, Breakdown: bd}, err
	}
	key := trialKey(cfg, host, stack, size, ws, memGB, seed)
	return cfg.Memo.GetOrCompute(key, func() (TrialResult, error) {
		v, bd, err := runStack(tc, cfg, host, stack, size, ws, memGB, seed)
		if err != nil {
			return TrialResult{}, err
		}
		return TrialResult{Metric: v, Breakdown: bd}, nil
	})
}

// The MutateHost/Memo notice goes through the same rate-limited warner
// machinery as the store layer: the first bypassing entry point prints one
// line, later ones are only counted, and the CLIs surface the count in -v
// stats (MemoBypassCount).
const memoBypassCategory = "memo-bypass"

var (
	memoWarnMu sync.Mutex
	memoWarner = resultstore.NewWarner(os.Stderr, 1)
)

// swapMemoWarner replaces the process-wide memo-bypass warner (test seam)
// and returns the previous one.
func swapMemoWarner(w *resultstore.Warner) *resultstore.Warner {
	memoWarnMu.Lock()
	defer memoWarnMu.Unlock()
	old := memoWarner
	memoWarner = w
	return old
}

// newMemoWarner builds a warner with the memo-bypass policy (one printed
// line) over an arbitrary sink.
func newMemoWarner(w io.Writer) *resultstore.Warner {
	return resultstore.NewWarner(w, 1)
}

// MemoBypassCount reports how many experiment entry points ran with
// Config.Memo ignored because Config.MutateHost was set — the -v
// statistic backing the single printed warning.
func MemoBypassCount() uint64 {
	memoWarnMu.Lock()
	defer memoWarnMu.Unlock()
	return memoWarner.Count(memoBypassCategory)
}

// warnMemoMutateHost surfaces the documented MutateHost/Memo interaction
// instead of silently ignoring the memo: every experiment entry point calls
// it before fanning trials out.
func warnMemoMutateHost(cfg Config) {
	if cfg.Memo == nil || cfg.MutateHost == nil {
		return
	}
	memoWarnMu.Lock()
	defer memoWarnMu.Unlock()
	memoWarner.Warnf(memoBypassCategory,
		"experiments: warning: Config.MutateHost is set, so Config.Memo is ignored — an arbitrary host mutation cannot be fingerprinted into a cache key")
}
