package experiments

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"os"
	"testing"
)

// TestFigAllQuickMatchesGolden locks the byte-exact output of
// `pinsim -fig all -quick` (default seed 42) against the fingerprint
// captured from the pre-optimization event kernel and runqueues. Any
// change to event ordering, runqueue tie-breaks, RNG consumption or
// rendering shows up here as a diff — determinism refactors must keep this
// test green, and intentional model changes must regenerate the golden
// file (`go build ./cmd/pinsim && ./pinsim -fig all -quick >
// internal/experiments/testdata/fig_all_quick.golden`) and say so in the
// PR.
func TestFigAllQuickMatchesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates six figures (~2s)")
	}
	golden, err := os.ReadFile("testdata/fig_all_quick.golden")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	// Workers: 1 pins the legacy serial path; TestFigAllQuickWorkerInvariant
	// covers the parallel runner at 2 and 8 workers against the same bytes.
	cfg := Config{Seed: 42, Quick: true, Workers: 1}
	for n := 3; n <= 8; n++ {
		f, err := RunFigure(n, cfg)
		if err != nil {
			t.Fatalf("figure %d: %v", n, err)
		}
		f.RenderText(&buf)
	}
	if !bytes.Equal(buf.Bytes(), golden) {
		t.Fatalf("-fig all -quick output diverged from the golden fingerprint\n got sha256 %s\nwant sha256 %s\nfirst divergence at byte %d",
			shortHash(buf.Bytes()), shortHash(golden), firstDiff(buf.Bytes(), golden))
	}
}

// TestFigAllQuickWorkerInvariant asserts the parallel runner cannot change
// the golden fingerprint either: the full `-fig all -quick` byte stream —
// which exercises the steal-domain fast path under every platform series —
// must match the committed golden file at 2 and 8 workers just as the
// serial path does (workers=1 ≡ golden is already established by
// TestFigAllQuickMatchesGolden, so it is not re-rendered here).
func TestFigAllQuickWorkerInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates six figures per worker count")
	}
	golden, err := os.ReadFile("testdata/fig_all_quick.golden")
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		var buf bytes.Buffer
		for n := 3; n <= 8; n++ {
			f, err := RunFigure(n, Config{Seed: 42, Quick: true, Workers: workers})
			if err != nil {
				t.Fatalf("workers=%d figure %d: %v", workers, n, err)
			}
			f.RenderText(&buf)
		}
		if !bytes.Equal(buf.Bytes(), golden) {
			t.Fatalf("workers=%d diverged from the golden fingerprint\n got sha256 %s\nwant sha256 %s\nfirst divergence at byte %d",
				workers, shortHash(buf.Bytes()), shortHash(golden), firstDiff(buf.Bytes(), golden))
		}
	}
}

// TestFigAllQuickStoreInvariant asserts the durable trial store cannot
// change the golden fingerprint either: the full `-fig all -quick` byte
// stream must match the committed golden when every trial is persisted to
// a cold disk store, and again when a fresh store handle (a second
// process, as far as the store can tell) replays all of it — with zero
// simulations the second time.
func TestFigAllQuickStoreInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates six figures twice")
	}
	golden, err := os.ReadFile("testdata/fig_all_quick.golden")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	renderAll := func(st TrialStore) []byte {
		var buf bytes.Buffer
		for n := 3; n <= 8; n++ {
			f, err := RunFigure(n, Config{Seed: 42, Quick: true, Workers: 2, Memo: st})
			if err != nil {
				t.Fatalf("figure %d: %v", n, err)
			}
			f.RenderText(&buf)
		}
		return buf.Bytes()
	}

	cold, err := OpenTrialStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := renderAll(cold); !bytes.Equal(got, golden) {
		t.Fatalf("cold store run diverged from the golden fingerprint\n got sha256 %s\nwant sha256 %s\nfirst divergence at byte %d",
			shortHash(got), shortHash(golden), firstDiff(got, golden))
	}
	if err := cold.Close(); err != nil {
		t.Fatal(err)
	}

	warm, err := OpenTrialStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()
	if got := renderAll(warm); !bytes.Equal(got, golden) {
		t.Fatalf("warm store run diverged from the golden fingerprint\n got sha256 %s\nwant sha256 %s\nfirst divergence at byte %d",
			shortHash(got), shortHash(golden), firstDiff(got, golden))
	}
	if misses := warm.Misses(); misses != 0 {
		t.Fatalf("warm store run simulated %d trials, want 0", misses)
	}
}

func shortHash(b []byte) string {
	sum := sha256.Sum256(b)
	return fmt.Sprintf("%x", sum[:8])
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}
