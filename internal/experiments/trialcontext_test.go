package experiments

import (
	"bytes"
	"os"
	"reflect"
	"testing"

	"repro/internal/platform"
)

// TestReuseEquivalence is the tentpole's correctness contract: every quick
// figure regenerated with deployment reuse disabled must be cell-for-cell
// identical to the reusing run — same Summary, same Ratio, same Breakdown.
func TestReuseEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates six figures twice")
	}
	for n := 3; n <= 8; n++ {
		reused, err := RunFigure(n, Config{Seed: 42, Quick: true, Workers: 2})
		if err != nil {
			t.Fatalf("fig %d reuse on: %v", n, err)
		}
		fresh, err := RunFigure(n, Config{Seed: 42, Quick: true, Workers: 2, NoReuse: true})
		if err != nil {
			t.Fatalf("fig %d reuse off: %v", n, err)
		}
		if !reflect.DeepEqual(reused, fresh) {
			t.Fatalf("figure %d: reused deployments changed the result\nreused: %+v\nfresh:  %+v",
				n, reused, fresh)
		}
	}
}

// TestFigAllQuickNoReuseMatchesGolden pins the build-fresh path to the same
// committed golden bytes the reusing path must match: the NoReuse knob is an
// A/B switch, not a second behavior.
func TestFigAllQuickNoReuseMatchesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates six figures per worker count")
	}
	golden, err := os.ReadFile("testdata/fig_all_quick.golden")
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		var buf bytes.Buffer
		for n := 3; n <= 8; n++ {
			f, err := RunFigure(n, Config{Seed: 42, Quick: true, Workers: workers, NoReuse: true})
			if err != nil {
				t.Fatalf("workers=%d figure %d: %v", workers, n, err)
			}
			f.RenderText(&buf)
		}
		if !bytes.Equal(buf.Bytes(), golden) {
			t.Fatalf("workers=%d NoReuse diverged from the golden fingerprint\n got sha256 %s\nwant sha256 %s\nfirst divergence at byte %d",
				workers, shortHash(buf.Bytes()), shortHash(golden), firstDiff(buf.Bytes(), golden))
		}
	}
}

// TestDeployStatsCountReuse: a serial quick figure builds each distinct
// (host, stack, size) shape once and rewinds it for every further trial.
func TestDeployStatsCountReuse(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a quick figure")
	}
	b0, r0 := DeployStats()
	if _, err := RunFig3(Config{Seed: 7, Quick: true, Reps: 2, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	built, reused := DeployStats()
	built, reused = built-b0, reused-r0
	if built == 0 || reused == 0 {
		t.Fatalf("built %d, reused %d — expected both paths to run", built, reused)
	}
	if reused < built {
		t.Fatalf("built %d > reused %d: repetitions are not reusing their shape's arena", built, reused)
	}
	nr0, _ := DeployStats()
	if _, err := RunFig3(Config{Seed: 7, Quick: true, Reps: 2, Workers: 1, NoReuse: true}); err != nil {
		t.Fatal(err)
	}
	nrBuilt, nrReused := DeployStats()
	if nrReused != reused+r0 {
		t.Fatalf("NoReuse run reused %d deployments, want 0", nrReused-reused-r0)
	}
	if nrBuilt == nr0 {
		t.Fatal("NoReuse run built nothing")
	}
}

// BenchmarkTrialReuse isolates the per-trial deployment cost on a warm
// reuse arena: every iteration redeploys one of the paper's four platform
// stacks at a rotating size onto the worker's pooled machine — the price a
// repetition pays now that the arena is rewound instead of rebuilt.
func BenchmarkTrialReuse(b *testing.B) {
	cfg := Config{Quick: true, Seed: 1234}.withDefaults()
	stacks := []platform.Stack{
		platform.Spec{Kind: platform.BM}.Stack(),
		platform.Spec{Kind: platform.VM}.Stack(),
		platform.Spec{Kind: platform.CN}.Stack(),
		platform.Spec{Kind: platform.VMCN}.Stack(),
	}
	sizes := []int{2, 4, 8, 16}
	tc := new(TrialContext)
	for _, st := range stacks {
		if _, err := tc.deploy(cfg, cfg.Host, st, sizes[0], 1); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := stacks[i%len(stacks)]
		if _, err := tc.deploy(cfg, cfg.Host, st, sizes[i%len(sizes)], uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// TestInstanceBufferAllocFree is the drive-by guard: the per-trial instance
// list must not allocate once the context's buffer has grown to the tenant
// count — including counts above the old fixed-size stack buffer (4).
func TestInstanceBufferAllocFree(t *testing.T) {
	tc := new(TrialContext)
	for _, tenants := range []int{1, 4, 9} {
		tc.instances(tenants) // warm the buffer
		if avg := testing.AllocsPerRun(100, func() {
			if got := len(tc.instances(tenants)); got != tenants {
				t.Fatalf("instances(%d) returned %d slots", tenants, got)
			}
		}); avg != 0 {
			t.Fatalf("%d tenants: %v allocs per trial instance list, want 0", tenants, avg)
		}
	}
}
