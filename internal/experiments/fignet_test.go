package experiments

import (
	"sync"
	"testing"
)

var (
	onceNet sync.Once
	figNet  Figure
	errNet  error
)

func netFigure(t *testing.T) Figure {
	t.Helper()
	onceNet.Do(func() {
		figNet, errNet = RunFigNet(Config{Quick: true, Reps: 2, Seed: 1234})
	})
	if errNet != nil {
		t.Fatalf("fig net: %v", errNet)
	}
	return figNet
}

// TestFigNetVMFlatVirtioTax: the VM family pays a roughly size-invariant
// network tax (virtio-net + guest wake path) that pinning cannot remove —
// the PTO pattern, now on the network path.
func TestFigNetVMFlatVirtioTax(t *testing.T) {
	f := netFigure(t)
	for _, x := range f.XLabels {
		rv := ratio(t, f, "Vanilla VM", x)
		rp := ratio(t, f, "Pinned VM", x)
		if rv < 1.25 || rv > 1.9 {
			t.Errorf("%s: vanilla VM network tax %.2f outside the flat band", x, rv)
		}
		if rv-rp > 0.25 {
			t.Errorf("%s: pinning 'fixed' the virtio tax (%.2f vs %.2f)", x, rv, rp)
		}
	}
}

// TestFigNetVanillaCNBridgePSO: a small vanilla container pays the bridge
// namespace path plus quota churn — a PSO that fades with CHR.
func TestFigNetVanillaCNBridgePSO(t *testing.T) {
	f := netFigure(t)
	small := ratio(t, f, "Vanilla CN", "xLarge")
	big := ratio(t, f, "Vanilla CN", "16xLarge")
	if small < 1.35 {
		t.Errorf("small vanilla CN must pay the bridge/quota PSO: %.2f", small)
	}
	if big > 1.2 {
		t.Errorf("vanilla CN must converge at high CHR: %.2f", big)
	}
	if small <= big {
		t.Errorf("network PSO must shrink with size: %.2f → %.2f", small, big)
	}
}

// TestFigNetPinnedCNNearBM: with NIC-IRQ-adjacent pinning, a container's
// network path is essentially native.
func TestFigNetPinnedCNNearBM(t *testing.T) {
	f := netFigure(t)
	for _, x := range f.XLabels {
		if r := ratio(t, f, "Pinned CN", x); r < 0.9 || r > 1.15 {
			t.Errorf("%s: pinned CN %.2f should ride at bare metal", x, r)
		}
	}
}

// TestFigNetVMCNTracksVM: the container layer inside the guest adds no
// material network overhead on top of the VM's (single-thread processes,
// intra-guest bridge is cheap).
func TestFigNetVMCNTracksVM(t *testing.T) {
	f := netFigure(t)
	for _, x := range f.XLabels {
		vm := ratio(t, f, "Pinned VM", x)
		vmcn := ratio(t, f, "Pinned VMCN", x)
		if vmcn > vm*1.15 {
			t.Errorf("%s: VMCN (%.2f) should track VM (%.2f) on the network path", x, vmcn, vm)
		}
	}
}

func TestFigNetScales(t *testing.T) {
	f := netFigure(t)
	first := mean(t, f, "Vanilla BM", "xLarge")
	last := mean(t, f, "Vanilla BM", "16xLarge")
	if last >= first {
		t.Errorf("the service must scale with cores: %.3f → %.3f", first, last)
	}
}
