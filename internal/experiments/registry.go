package experiments

// The scenario registry: a name-indexed catalog of runnable scenarios. The
// paper's figures register themselves at init (builtin.go); library users
// register their own with RegisterScenario; the CLIs dispatch -fig /
// -scenario through RunRegistered, so every experiment — canned or
// user-defined — runs the same engine.

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"

	"repro/internal/platform"
)

var (
	registryMu sync.RWMutex
	registry   = map[string]Scenario{}
)

// RegisterScenario validates sc and adds it to the registry. Registering a
// name twice is an error — scenarios are identities, not defaults to
// override.
func RegisterScenario(sc Scenario) error {
	sc = sc.withDefaults()
	if err := sc.Validate(); err != nil {
		return err
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[sc.Name]; dup {
		return fmt.Errorf("experiments: scenario %q already registered", sc.Name)
	}
	// Store a detached copy: the caller retains its slices and pointers,
	// and later mutation of those must not rewrite the registration.
	registry[sc.Name] = sc.detach()
	return nil
}

// MustRegisterScenario is RegisterScenario for init-time registration.
func MustRegisterScenario(sc Scenario) {
	if err := RegisterScenario(sc); err != nil {
		panic(err)
	}
}

// ScenarioNames returns every registered name, sorted.
func ScenarioNames() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// detach deep-copies a scenario so registry lookups hand out values whose
// mutation — through any slice, pointer or raw-JSON field — cannot corrupt
// the stored registration (scenarios are identities; see RegisterScenario).
func (s Scenario) detach() Scenario {
	s.SeedTag = append([]uint64(nil), s.SeedTag...)
	s.Workload = s.Workload.clone()
	series := make([]ScenarioSeries, len(s.Series))
	for i, se := range s.Series {
		if se.Platform != nil {
			p := *se.Platform
			se.Platform = &p
		}
		se.Stack.Layers = append([]platform.Layer(nil), se.Stack.Layers...)
		se.Stack.Tenants = append([]platform.TenantSpec(nil), se.Stack.Tenants...)
		if se.TenantWorkloads != nil {
			tws := make([]WorkloadSpec, len(se.TenantWorkloads))
			for ti, tw := range se.TenantWorkloads {
				tws[ti] = *tw.clone()
			}
			se.TenantWorkloads = tws
		}
		series[i] = se
	}
	s.Series = series
	cells := make([]ScenarioCell, len(s.Cells))
	for i, c := range s.Cells {
		c.Workload = c.Workload.clone()
		cells[i] = c
	}
	s.Cells = cells
	return s
}

// Scenarios returns every registered scenario in sorted-name order.
func Scenarios() []Scenario {
	names := ScenarioNames()
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]Scenario, 0, len(names))
	for _, name := range names {
		out = append(out, registry[name].detach())
	}
	return out
}

// ScenarioByName looks a scenario up.
func ScenarioByName(name string) (Scenario, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	sc, ok := registry[name]
	return sc.detach(), ok
}

// UnknownScenarioError is the lookup failure every caller should surface:
// it carries the sorted list of registered names.
func UnknownScenarioError(name string) error {
	return fmt.Errorf("experiments: unknown scenario %q (registered: %s)",
		name, strings.Join(ScenarioNames(), ", "))
}

// RunRegistered runs the named scenario; unknown names fail with the
// sorted registry listing.
func RunRegistered(name string, cfg Config) (Figure, error) {
	sc, ok := ScenarioByName(name)
	if !ok {
		return Figure{}, UnknownScenarioError(name)
	}
	return RunScenario(cfg, sc)
}

// ResolveScenario is the CLI -scenario resolution policy, shared by pinsim
// and pinsweep: a registered name first, a JSON spec file second (so a
// stray filename cannot shadow a registered scenario); an argument that is
// neither fails with the sorted registry listing.
func ResolveScenario(nameOrPath string) (Scenario, error) {
	if sc, ok := ScenarioByName(nameOrPath); ok {
		return sc, nil
	}
	if _, err := os.Stat(nameOrPath); err != nil {
		return Scenario{}, UnknownScenarioError(nameOrPath)
	}
	return LoadScenario(nameOrPath)
}
