package experiments

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/platform"
)

func sweepSpecSmall() SweepSpec {
	return SweepSpec{
		Platforms: []platform.Spec{
			{Kind: platform.BM, Mode: platform.Vanilla},
			{Kind: platform.CN, Mode: platform.Vanilla},
			{Kind: platform.CN, Mode: platform.Pinned},
		},
		Cores:     []int{2, 16},
		Workloads: []string{"ffmpeg"},
		Reps:      2,
	}
}

func TestSweepGridShapeAndOrder(t *testing.T) {
	res, err := Sweep(Config{Quick: true, Seed: 5}, sweepSpecSmall())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 3*2 {
		t.Fatalf("cells: %d, want platforms × cores = 6", len(res.Cells))
	}
	// Deterministic platforms-outermost order.
	if res.Cells[0].Platform != "Vanilla BM" || res.Cells[0].Cores != 2 {
		t.Fatalf("first cell %s/%d", res.Cells[0].Platform, res.Cells[0].Cores)
	}
	if res.Cells[5].Platform != "Pinned CN" || res.Cells[5].Cores != 16 {
		t.Fatalf("last cell %s/%d", res.Cells[5].Platform, res.Cells[5].Cores)
	}
	for _, c := range res.Cells {
		if c.MemGB != 4*c.Cores {
			t.Errorf("%s/%d: default memory %d, want 4 GB/core", c.Platform, c.Cores, c.MemGB)
		}
		if c.CHR != float64(c.Cores)/112 {
			t.Errorf("%s/%d: CHR %.4f", c.Platform, c.Cores, c.CHR)
		}
		if c.Summary.N != 2 || c.Summary.Mean <= 0 {
			t.Errorf("%s/%d: summary %+v", c.Platform, c.Cores, c.Summary)
		}
	}
}

func TestSweepRatiosAgainstBM(t *testing.T) {
	res, err := Sweep(Config{Quick: true, Seed: 5}, sweepSpecSmall())
	if err != nil {
		t.Fatal(err)
	}
	bm, ok := res.Cell("Vanilla BM", "ffmpeg", 2, 0)
	if !ok {
		t.Fatal("missing BM cell")
	}
	if bm.Ratio != 1 {
		t.Fatalf("BM ratio vs itself = %.3f", bm.Ratio)
	}
	cn, ok := res.Cell("Vanilla CN", "ffmpeg", 2, 0)
	if !ok {
		t.Fatal("missing CN cell")
	}
	if cn.Ratio <= 1 {
		t.Fatalf("small vanilla CN ratio %.3f, want > 1 (PSO)", cn.Ratio)
	}
}

func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	spec := sweepSpecSmall()
	spec.Workloads = []string{"ffmpeg", "wordpress"}
	serial, err := Sweep(Config{Quick: true, Seed: 7, Workers: 1}, spec)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Sweep(Config{Quick: true, Seed: 7, Workers: 8}, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("Workers:8 sweep differs from Workers:1")
	}
}

// TestSweepMemoSkipsOverlap is the cache contract: a repeated sweep runs
// zero new simulations, and an overlapping sweep re-simulates only the
// cells outside the overlap.
func TestSweepMemoSkipsOverlap(t *testing.T) {
	memo := NewTrialMemo()
	cfg := Config{Quick: true, Seed: 5, Memo: memo, Workers: 2}
	spec := sweepSpecSmall()

	first, err := Sweep(cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	cold := memo.Misses()
	if cold != 3*2*2 {
		t.Fatalf("cold sweep simulated %d trials, want every one (12)", cold)
	}

	// Identical sweep: zero new simulations.
	second, err := Sweep(cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if memo.Misses() != cold {
		t.Fatalf("repeat sweep simulated %d new trials, want 0", memo.Misses()-cold)
	}
	if !reflect.DeepEqual(first.Cells, second.Cells) {
		t.Fatal("memoized repeat must reproduce the sweep exactly")
	}

	// Overlapping sweep (one extra core point): only the new column runs.
	bigger := spec
	bigger.Cores = []int{2, 8, 16}
	if _, err := Sweep(cfg, bigger); err != nil {
		t.Fatal(err)
	}
	newTrials := memo.Misses() - cold
	if newTrials != 3*1*2 {
		t.Fatalf("overlapping sweep simulated %d new trials, want only the 6 new-column ones", newTrials)
	}
}

// TestSweepAliasesShareCells pins the canonicalization contract: an alias
// ("web") and its canonical name ("wordpress") describe the same cell, draw
// the same seeds and share memo entries.
func TestSweepAliasesShareCells(t *testing.T) {
	memo := NewTrialMemo()
	cfg := Config{Quick: true, Seed: 11, Memo: memo}
	spec := SweepSpec{
		Platforms: []platform.Spec{{Kind: platform.CN, Mode: platform.Pinned}},
		Cores:     []int{4},
		Workloads: []string{"wordpress"},
		Reps:      2,
	}
	canonical, err := Sweep(cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	cold := memo.Misses()
	spec.Workloads = []string{"web"}
	aliased, err := Sweep(cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if memo.Misses() != cold {
		t.Fatalf("aliased sweep simulated %d new trials, want 0 (same cells)", memo.Misses()-cold)
	}
	if !reflect.DeepEqual(canonical.Cells, aliased.Cells) {
		t.Fatal("alias and canonical name must produce identical cells")
	}
	if _, ok := aliased.Cell("Pinned CN", "web", 4, 0); !ok {
		t.Fatal("Cell lookup must accept aliases")
	}
}

func TestSweepDefaultsAndValidation(t *testing.T) {
	res, err := Sweep(Config{Quick: true, Reps: 1, Seed: 3},
		SweepSpec{Cores: []int{4}, Reps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 7 { // standard series default
		t.Fatalf("default platforms: %d cells, want 7", len(res.Cells))
	}
	if _, err := Sweep(Config{Quick: true}, SweepSpec{Workloads: []string{"nope"}, Cores: []int{2}}); err == nil {
		t.Fatal("unknown workload must fail")
	}
	if _, err := Sweep(Config{Quick: true}, SweepSpec{Cores: []int{-1}}); err == nil {
		t.Fatal("non-positive cores must fail")
	}
}

func TestSweepProgressAndRenderers(t *testing.T) {
	var final int
	cfg := Config{Quick: true, Seed: 5, Progress: func(done, total int) { final = done }}
	res, err := Sweep(cfg, sweepSpecSmall())
	if err != nil {
		t.Fatal(err)
	}
	if final != 3*2*2 {
		t.Fatalf("final progress %d, want 12 trials", final)
	}

	var csv, txt, js bytes.Buffer
	res.RenderCSV(&csv)
	if lines := strings.Count(csv.String(), "\n"); lines != 1+6 {
		t.Fatalf("csv rows: %d", lines)
	}
	if !strings.HasPrefix(csv.String(), "platform,workload,cores,mem_gb,chr,") {
		t.Fatalf("csv header: %q", csv.String())
	}
	res.RenderText(&txt)
	if !strings.Contains(txt.String(), "Pinned CN") || !strings.Contains(txt.String(), "16c/64GB") {
		t.Fatalf("text render:\n%s", txt.String())
	}
	if err := res.RenderJSON(&js); err != nil {
		t.Fatal(err)
	}
	var back SweepResult
	if err := json.Unmarshal(js.Bytes(), &back); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if len(back.Cells) != len(res.Cells) || back.Cells[0].Platform != res.Cells[0].Platform {
		t.Fatal("JSON round-trip lost cells")
	}
}
