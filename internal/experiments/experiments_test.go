package experiments

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// Shape tests: each figure is regenerated once (Quick mode, 2 reps, fixed
// seed) and multiple subtests assert the paper's qualitative claims against
// it. Tolerances are deliberate: the reproduction targets orderings, ratios
// and crossovers, not absolute seconds.

var (
	onceFig  [9]sync.Once
	figCache [9]Figure
	figErr   [9]error
)

func figure(t *testing.T, n int) Figure {
	t.Helper()
	onceFig[n].Do(func() {
		figCache[n], figErr[n] = RunFigure(n, Config{Quick: true, Reps: 2, Seed: 1234})
	})
	if figErr[n] != nil {
		t.Fatalf("figure %d: %v", n, figErr[n])
	}
	return figCache[n]
}

func ratio(t *testing.T, f Figure, series, x string) float64 {
	t.Helper()
	c, ok := f.Cell(series, x)
	if !ok {
		t.Fatalf("missing cell %s/%s", series, x)
	}
	return c.Ratio
}

func mean(t *testing.T, f Figure, series, x string) float64 {
	t.Helper()
	c, ok := f.Cell(series, x)
	if !ok {
		t.Fatalf("missing cell %s/%s", series, x)
	}
	return c.Summary.Mean
}

// ---- Fig 3: FFmpeg -----------------------------------------------------

func TestFig3VMTaxFlatAndPinningUseless(t *testing.T) {
	f := figure(t, 3)
	for _, x := range f.XLabels {
		rv := ratio(t, f, "Vanilla VM", x)
		rp := ratio(t, f, "Pinned VM", x)
		if rv < 1.6 || rv > 2.6 {
			t.Errorf("%s: VM ratio %.2f outside the ≈2× PTO band", x, rv)
		}
		// Paper §III-B1(ii): pinning does not mitigate VM overhead for
		// FFmpeg.
		if rv-rp > 0.5 {
			t.Errorf("%s: pinning 'helped' the VM too much (%.2f vs %.2f)", x, rv, rp)
		}
	}
}

func TestFig3VMCNWorstAtSmallConvergesToVM(t *testing.T) {
	f := figure(t, 3)
	large := ratio(t, f, "Vanilla VMCN", "Large")
	if large < 2.8 {
		t.Errorf("VMCN at Large = %.2f; paper sees up to ≈4×", large)
	}
	x4 := ratio(t, f, "Vanilla VMCN", "4xLarge")
	vm4 := ratio(t, f, "Vanilla VM", "4xLarge")
	if x4 > vm4*1.2 {
		t.Errorf("VMCN must converge to VM at 4xLarge: %.2f vs %.2f", x4, vm4)
	}
	if large <= x4 {
		t.Errorf("VMCN overhead must shrink with size: %.2f → %.2f", large, x4)
	}
}

func TestFig3VanillaCNShrinksWithSize(t *testing.T) {
	f := figure(t, 3)
	large := ratio(t, f, "Vanilla CN", "Large")
	x4 := ratio(t, f, "Vanilla CN", "4xLarge")
	if large < 1.08 {
		t.Errorf("small vanilla CN must show PSO: %.2f", large)
	}
	if x4 > 1.12 {
		t.Errorf("vanilla CN PSO must vanish by 4xLarge: %.2f", x4)
	}
	if large <= x4 {
		t.Errorf("PSO must shrink: %.2f → %.2f", large, x4)
	}
}

func TestFig3PinnedCNMinimalOverhead(t *testing.T) {
	f := figure(t, 3)
	for _, x := range f.XLabels {
		r := ratio(t, f, "Pinned CN", x)
		if r < 0.9 || r > 1.15 {
			t.Errorf("%s: pinned CN ratio %.2f; paper: minimal overhead", x, r)
		}
	}
	// BP2: pinned CN ≤ vanilla CN at the small end.
	if ratio(t, f, "Pinned CN", "Large") > ratio(t, f, "Vanilla CN", "Large") {
		t.Error("pinning must not hurt a small CPU-bound container")
	}
}

func TestFig3TimesDecreaseWithCores(t *testing.T) {
	f := figure(t, 3)
	for _, s := range []string{"Vanilla BM", "Pinned VM", "Pinned CN"} {
		prev := mean(t, f, s, "Large")
		for _, x := range []string{"xLarge", "2xLarge", "4xLarge"} {
			cur := mean(t, f, s, x)
			if cur >= prev {
				t.Errorf("%s: no speedup %s (%.2f → %.2f)", s, x, prev, cur)
			}
			prev = cur
		}
	}
}

// ---- Fig 4: MPI --------------------------------------------------------

func TestFig4ContainersWorstForMPI(t *testing.T) {
	f := figure(t, 4)
	for _, x := range f.XLabels {
		cn := ratio(t, f, "Pinned CN", x)
		vmcn := ratio(t, f, "Pinned VMCN", x)
		vm := ratio(t, f, "Pinned VM", x)
		// Paper §III-B2(i): CN exceeds VMCN exceeds VM.
		if cn <= vmcn*0.98 {
			t.Errorf("%s: CN (%.2f) must exceed VMCN (%.2f)", x, cn, vmcn)
		}
		if vmcn <= vm*0.98 {
			t.Errorf("%s: VMCN (%.2f) must exceed VM (%.2f)", x, vmcn, vm)
		}
	}
}

func TestFig4PinningDoesNotFixContainers(t *testing.T) {
	f := figure(t, 4)
	for _, x := range f.XLabels {
		if r := ratio(t, f, "Pinned CN", x); r < 1.4 {
			t.Errorf("%s: pinned CN ratio %.2f — the per-message path cost is not pinnable", x, r)
		}
	}
}

func TestFig4VMApproachesBM(t *testing.T) {
	f := figure(t, 4)
	// From 2xLarge on, VM ≈ BM (paper: "execution times become almost the
	// same"); generous tolerance for the quick config.
	for _, x := range []string{"2xLarge", "4xLarge", "8xLarge", "16xLarge"} {
		if r := ratio(t, f, "Pinned VM", x); r > 1.45 {
			t.Errorf("%s: VM ratio %.2f should be approaching BM", x, r)
		}
	}
}

func TestFig4TimesDecreaseWithCores(t *testing.T) {
	f := figure(t, 4)
	first := mean(t, f, "Vanilla BM", "xLarge")
	last := mean(t, f, "Vanilla BM", "16xLarge")
	if last >= first {
		t.Errorf("MPI must scale: %.3f → %.3f", first, last)
	}
}

// ---- Fig 5: WordPress --------------------------------------------------

func TestFig5PinnedCNLowest(t *testing.T) {
	f := figure(t, 5)
	for _, x := range f.XLabels {
		cnp := ratio(t, f, "Pinned CN", x)
		if cnp > 1.1 {
			t.Errorf("%s: pinned CN %.2f should be the lowest-overhead platform", x, cnp)
		}
		for _, s := range []string{"Vanilla VM", "Pinned VM", "Vanilla VMCN", "Pinned VMCN"} {
			if r := ratio(t, f, s, x); r < cnp-0.08 {
				t.Errorf("%s: %s (%.2f) beats pinned CN (%.2f)", x, s, r, cnp)
			}
		}
	}
}

func TestFig5VanillaCNWorstAtSmallConverges(t *testing.T) {
	f := figure(t, 5)
	small := ratio(t, f, "Vanilla CN", "xLarge")
	if small < 1.3 {
		t.Errorf("vanilla CN at xLarge %.2f; paper sees ≈2×", small)
	}
	big := ratio(t, f, "Vanilla CN", "16xLarge")
	if big > 1.25 {
		t.Errorf("vanilla CN must approach BM at 16xLarge: %.2f", big)
	}
	if small <= big {
		t.Errorf("vanilla CN PSO must shrink: %.2f → %.2f", small, big)
	}
}

func TestFig5PinnedVMBeatsVanillaVM(t *testing.T) {
	f := figure(t, 5)
	better := 0
	for _, x := range f.XLabels {
		if ratio(t, f, "Pinned VM", x) <= ratio(t, f, "Vanilla VM", x)+0.02 {
			better++
		}
	}
	// Paper: "pinned VM consistently imposes a lower overhead".
	if better < len(f.XLabels)-1 {
		t.Errorf("pinned VM better in only %d/%d columns", better, len(f.XLabels))
	}
}

func TestFig5VMCNNotWorseThanVM(t *testing.T) {
	f := figure(t, 5)
	worse := 0
	for _, x := range f.XLabels {
		if ratio(t, f, "Pinned VMCN", x) > ratio(t, f, "Pinned VM", x)+0.08 {
			worse++
		}
	}
	// Paper: VMCN imposes slightly *lower* overhead than VM for web loads.
	if worse > 1 {
		t.Errorf("pinned VMCN worse than pinned VM in %d columns", worse)
	}
}

// ---- Fig 6: Cassandra --------------------------------------------------

func TestFig6VanillaCNWorst(t *testing.T) {
	f := figure(t, 6)
	small := ratio(t, f, "Vanilla CN", "xLarge")
	if small < 1.35 {
		t.Errorf("vanilla CN at xLarge %.2f; paper sees ≥3.5×", small)
	}
	big := ratio(t, f, "Vanilla CN", "16xLarge")
	if big > 1.2 {
		t.Errorf("vanilla CN must converge by 16xLarge: %.2f", big)
	}
}

func TestFig6PinnedPlatformsCanBeatBM(t *testing.T) {
	f := figure(t, 6)
	// Paper §III-B4(ii): pinned CN (and pinned virtualized platforms
	// generally) at ×Large..4×Large offer execution times at or below BM.
	for _, x := range []string{"xLarge", "2xLarge", "4xLarge"} {
		if r := ratio(t, f, "Pinned CN", x); r > 1.05 {
			t.Errorf("%s: pinned CN %.2f should be ≤ BM under extreme IO", x, r)
		}
	}
}

func TestFig6PinningBenefitFadesAtLargeSizes(t *testing.T) {
	f := figure(t, 6)
	smallGap := ratio(t, f, "Vanilla CN", "xLarge") - ratio(t, f, "Pinned CN", "xLarge")
	bigGap := ratio(t, f, "Vanilla CN", "16xLarge") - ratio(t, f, "Pinned CN", "16xLarge")
	if smallGap <= bigGap {
		t.Errorf("pinning benefit must fade with size: gap %.2f → %.2f", smallGap, bigGap)
	}
}

func TestFig6VMBasedElevatedAtLargeSizes(t *testing.T) {
	f := figure(t, 6)
	// Paper §III-B4(iv): VM-based platforms ≥8×Large show overhead vs BM.
	for _, x := range []string{"8xLarge", "16xLarge"} {
		for _, s := range []string{"Vanilla VM", "Pinned VM"} {
			if r := ratio(t, f, s, x); r < 1.03 {
				t.Errorf("%s: %s ratio %.2f should show the VM tax", x, s, r)
			}
		}
	}
}

// ---- Fig 7: CHR hosts --------------------------------------------------

func TestFig7SameContainerSlowerOnBiggerHost(t *testing.T) {
	f := figure(t, 7)
	for _, s := range []string{"Vanilla CN", "Pinned CN"} {
		small := mean(t, f, s, "16 cores")
		big := mean(t, f, s, "112 cores")
		if big < small*1.2 {
			t.Errorf("%s: 112-core host %.2fs vs 16-core host %.2fs — CHR effect missing", s, big, small)
		}
	}
}

func TestFig7PinningDoesNotRescueLowCHR(t *testing.T) {
	f := figure(t, 7)
	v := mean(t, f, "Vanilla CN", "112 cores")
	p := mean(t, f, "Pinned CN", "112 cores")
	if diff := (v - p) / v; diff > 0.12 {
		t.Errorf("paper: no significant vanilla/pinned gap on the big host; got %.1f%%", diff*100)
	}
}

func TestFig7ContainerNearBMOnOwnHost(t *testing.T) {
	f := figure(t, 7)
	if r := ratio(t, f, "Vanilla CN", "16 cores"); r > 1.15 {
		t.Errorf("CHR=1 container should be near BM: %.2f", r)
	}
}

// ---- Fig 8: multitasking -----------------------------------------------

func TestFig8MultitaskingAmplifiesVanillaOverhead(t *testing.T) {
	f := figure(t, 8)
	v1 := mean(t, f, "Vanilla CN", "1 Large Task")
	v30 := mean(t, f, "Vanilla CN", "30 Small Tasks")
	p1 := mean(t, f, "Pinned CN", "1 Large Task")
	p30 := mean(t, f, "Pinned CN", "30 Small Tasks")
	if v30 < v1*1.4 {
		t.Errorf("vanilla CN must degrade with 30 processes: %.2f → %.2f", v1, v30)
	}
	if p30 > p1*1.35 {
		t.Errorf("pinned CN must degrade only mildly: %.2f → %.2f", p1, p30)
	}
	if v30 < p30*1.4 {
		t.Errorf("30-way vanilla (%.2f) must be far worse than pinned (%.2f)", v30, p30)
	}
	if v1 > p1*1.15 {
		t.Errorf("with one process the modes should be close: %.2f vs %.2f", v1, p1)
	}
}

// ---- cross-cutting -----------------------------------------------------

func TestRunFigureDispatch(t *testing.T) {
	if _, err := RunFigure(2, Config{}); err == nil {
		t.Fatal("figure 2 does not exist")
	}
	if _, err := RunFigure(9, Config{}); err == nil {
		t.Fatal("figure 9 does not exist")
	}
}

func TestDecomposeSplitsPTOFromPSO(t *testing.T) {
	f := figure(t, 3)
	ds := Decompose(f)
	if len(ds) != 6 { // 7 series minus baseline
		t.Fatalf("decompositions: %d", len(ds))
	}
	for _, d := range ds {
		switch d.Label {
		case "Pinned VM":
			if d.PTO < 1.6 {
				t.Errorf("VM PTO %.2f", d.PTO)
			}
			if d.PSO[0] > 0.4 {
				t.Errorf("VM should be PTO-dominated, PSO[0]=%.2f", d.PSO[0])
			}
		case "Vanilla VMCN":
			if d.PSO[0] < 0.5 {
				t.Errorf("VMCN at Large should be PSO-heavy, got %.2f", d.PSO[0])
			}
		}
	}
}

func TestInstanceTableAndLookups(t *testing.T) {
	if len(InstanceTypes) != 6 {
		t.Fatal("Table II has six instance types")
	}
	for _, it := range InstanceTypes {
		if it.MemGB != 4*it.Cores {
			t.Errorf("%s: Table II memory is 4 GB/core", it.Name)
		}
	}
	if it, ok := InstanceByName("4xLarge"); !ok || it.Cores != 16 {
		t.Fatal("lookup broken")
	}
	if _, ok := InstanceByName("petaLarge"); ok {
		t.Fatal("phantom instance")
	}
	span := Instances("xLarge", "4xLarge")
	if len(span) != 3 || span[0].Name != "xLarge" || span[2].Name != "4xLarge" {
		t.Fatalf("range: %v", span)
	}
}

func TestRenderers(t *testing.T) {
	f := figure(t, 3)
	var text, csv, breakdown bytes.Buffer
	f.RenderText(&text)
	if !strings.Contains(text.String(), "Pinned CN") || !strings.Contains(text.String(), "FIG3") {
		t.Fatalf("text render:\n%s", text.String())
	}
	f.RenderCSV(&csv)
	if lines := strings.Count(csv.String(), "\n"); lines != 1+7*4 {
		t.Fatalf("csv rows: %d", lines)
	}
	f.RenderBreakdown(&breakdown)
	if !strings.Contains(breakdown.String(), "useful") {
		t.Fatal("breakdown render")
	}
	var t1, t2, t3 bytes.Buffer
	RenderTable1(&t1)
	RenderTable2(&t2)
	RenderTable3(&t3)
	if !strings.Contains(t1.String(), "FFmpeg") ||
		!strings.Contains(t2.String(), "16xLarge") ||
		!strings.Contains(t3.String(), "VMCN") {
		t.Fatal("table renders")
	}
	ds := Decompose(f)
	var dec bytes.Buffer
	RenderDecomposition(&dec, f, ds)
	if !strings.Contains(dec.String(), "PTO") {
		t.Fatal("decomposition render")
	}
}

func TestSeedsReproduce(t *testing.T) {
	cfg := Config{Quick: true, Reps: 1, Seed: 777}
	a, err := RunFig8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFig8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for si := range a.Series {
		for ci := range a.Series[si].Cells {
			if a.Series[si].Cells[ci].Summary.Mean != b.Series[si].Cells[ci].Summary.Mean {
				t.Fatal("same seed must reproduce identical figures")
			}
		}
	}
}
