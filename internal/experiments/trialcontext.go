package experiments

// Per-worker deployment reuse. The dominant cost of a cold quick sweep is
// not the simulations themselves but rebuilding the whole platform stack —
// machine, scheduler arenas, cgroup controller, IRQ channels — for every
// (series, cell, repetition) trial, even though trials sharing a machine
// shape differ only in configuration and seed. A TrialContext is the arena
// one executor worker threads through its trials: it holds a
// platform.Pool, which keeps one machine arena per distinct innermost
// topology and rewinds it in place (machine.Reset via
// platform.RedeployStack) instead of rebuilding. Results are bit-identical
// either way — a reset machine replays the same event sequence a fresh one
// would — which the reuse-equivalence tests pin.

import (
	"sync/atomic"

	"repro/internal/machine"
	"repro/internal/platform"
	"repro/internal/topology"
	"repro/internal/workload"
)

// TrialContext is one worker goroutine's reuse arena. Executors hand every
// run callback the calling worker's context; it is never shared between
// concurrently running trials, so it needs no locking. The zero value is
// ready to use, and a nil *TrialContext degrades every path to the
// build-fresh behavior.
type TrialContext struct {
	pool platform.Pool
	// insts is the reusable per-trial instance buffer (one slot per tenant),
	// so trials allocate no instance list regardless of tenant count.
	insts []workload.Instance
}

// Process-wide deployment counters, surfaced by the CLIs' -v stats.
var (
	deploysBuilt  atomic.Uint64
	deploysReused atomic.Uint64
)

// DeployStats reports how many trial deployments were built from scratch
// and how many rewound an existing machine arena in place since process
// start.
func DeployStats() (built, reused uint64) {
	return deploysBuilt.Load(), deploysReused.Load()
}

// deploy returns a deployment for the trial, reusing the worker's pooled
// arena for the machine shape when possible. Reuse is off — every trial
// builds fresh — when the context is nil, Config.NoReuse is set, or a
// MutateHost hook is installed (an arbitrary mutation can change the
// machine shape under the pool's feet).
func (tc *TrialContext) deploy(cfg Config, host *topology.Topology, stack platform.Stack, size int, seed uint64) (*platform.Deployment, error) {
	hostCfg := machine.HostDefaults(host, seed)
	if cfg.MutateHost != nil {
		cfg.MutateHost(&hostCfg)
	}
	if tc == nil || cfg.NoReuse || cfg.MutateHost != nil {
		d, err := platform.DeployStack(stack, size, hostCfg, *cfg.HV, seed)
		if err == nil {
			deploysBuilt.Add(1)
		}
		return d, err
	}
	d, reused, err := tc.pool.Deploy(stack, size, hostCfg, *cfg.HV, seed)
	if err != nil {
		return nil, err
	}
	if reused {
		deploysReused.Add(1)
	} else {
		deploysBuilt.Add(1)
	}
	return d, nil
}

// instances returns an n-slot instance buffer for one trial, reusing the
// context's backing array. Every slot is overwritten by the caller before
// use.
func (tc *TrialContext) instances(n int) []workload.Instance {
	if tc == nil {
		return make([]workload.Instance, n)
	}
	if cap(tc.insts) < n {
		tc.insts = make([]workload.Instance, n)
	}
	tc.insts = tc.insts[:n]
	return tc.insts
}

// discard drops every cached arena. Panic containment calls it before
// retrying a trial: a panic may have fired mid-deploy, leaving a
// half-rewound machine in the pool.
func (tc *TrialContext) discard() {
	if tc != nil {
		tc.pool.Clear()
	}
}
