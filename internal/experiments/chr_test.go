package experiments

import "testing"

// TestCHRSweepBands reproduces §IV-A: the instance range in which each
// application's vanilla-container PSO stops being significant, expressed as
// a CHR band, must land near the paper's recommendations.
func TestCHRSweepBands(t *testing.T) {
	if testing.Short() {
		t.Skip("CHR sweep is a long integration test")
	}
	bands, err := RunCHRSweep(Config{Quick: true, Reps: 2, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if len(bands) != 3 {
		t.Fatalf("apps analyzed: %d", len(bands))
	}
	byApp := map[string]CHRBand{}
	for _, b := range bands {
		byApp[b.App] = b
		if b.LowCHR >= b.HighCHR {
			t.Errorf("%s: degenerate band %v..%v", b.App, b.LowCHR, b.HighCHR)
		}
	}
	// The measured bands must overlap the paper's (generous: the paper's
	// own bands are bracketings of a coarse sweep).
	overlap := func(app string, lo, hi float64) {
		b, ok := byApp[app]
		if !ok {
			t.Fatalf("missing app %s", app)
		}
		if b.HighCHR < lo || b.LowCHR > hi {
			t.Errorf("%s band [%.2f,%.2f] does not overlap paper's [%.2f,%.2f]",
				app, b.LowCHR, b.HighCHR, lo, hi)
		}
		if b.PaperLow != lo || b.PaperHigh != hi {
			t.Errorf("%s: paper reference wrong: %v", app, b)
		}
	}
	overlap("FFmpeg", 0.07, 0.14)
	overlap("WordPress", 0.14, 0.28)
	overlap("Cassandra", 0.28, 0.57)
	// IO-intensive applications need a higher CHR than CPU-intensive ones
	// (the §IV-A conclusion).
	if byApp["Cassandra"].LowCHR < byApp["FFmpeg"].LowCHR {
		t.Error("ultra-IO apps must need at least the CPU apps' CHR")
	}
}

// TestFig6LargeThrashes reproduces the excluded Large instance: overloaded
// and far out of range of the charted columns.
func TestFig6LargeThrashes(t *testing.T) {
	if testing.Short() {
		t.Skip("thrash regime is a long integration test")
	}
	large, err := RunFig6Large(Config{Quick: true, Reps: 1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	lg, ok := large.Cell("Vanilla BM", "Large")
	if !ok {
		t.Fatal("missing cell")
	}
	rest := figure(t, 6)
	xl, _ := rest.Cell("Vanilla BM", "xLarge")
	if lg.Summary.Mean < 2.5*xl.Summary.Mean {
		t.Errorf("Large (%.1fs) should blow past xLarge (%.1fs): paper calls it 'out of range'",
			lg.Summary.Mean, xl.Summary.Mean)
	}
}
