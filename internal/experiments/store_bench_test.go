package experiments

import (
	"testing"
)

// BenchmarkMemoHit is the in-memory baseline of the StoreHit gate: one Get
// that hits the plain per-process memo, called through the TrialStore
// interface exactly as the trial runner calls Config.Memo (a concrete-type
// call would devirtualize and make the comparison measure dispatch, not
// the store tier).
func BenchmarkMemoHit(b *testing.B) {
	var st TrialStore = NewTrialMemo()
	st.Put(42, TrialResult{Metric: 1.5})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := st.Get(42); !ok {
			b.Fatal("miss")
		}
	}
}

// BenchmarkMemoHitParallel is the warm-key contention witness: GOMAXPROCS
// goroutines hammering Get on a warm store through the TrialStore
// interface, each walking its own slice of a shared hot key set — the
// shape of the serving daemon's warm path. With the sharded memo the
// per-op cost must stay close to the serial BenchmarkMemoHit (CI gates
// MemoHitParallel=MemoHit:1.50); the pre-shard single-RWMutex table
// serialized here and regressed multiple-fold on multi-core runners.
func BenchmarkMemoHitParallel(b *testing.B) {
	var st TrialStore = NewTrialMemo()
	const hotKeys = 64
	for k := uint64(0); k < hotKeys; k++ {
		st.Put(k, TrialResult{Metric: float64(k)})
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		k := uint64(0)
		for pb.Next() {
			if _, ok := st.Get(k % hotKeys); !ok {
				b.Fatal("miss")
			}
			k++
		}
	})
}

// BenchmarkMillionTrialReplay measures the warm-replay path of a whole
// figure: every trial of the grid hits the memo, so one op is the full
// runner machinery — grid derivation, seed substreams, store lookups,
// aggregation, rendering-side stats — with zero simulations. This per-grid
// cost, times shards, is what bounds how fast a million-trial sweep
// reassembles from warm stores; the CI gate tracks it against the
// committed baseline so replay stays orders of magnitude under cold runs.
func BenchmarkMillionTrialReplay(b *testing.B) {
	cfg := Config{Quick: true, Reps: 2, Seed: 1234, Workers: 1, Memo: NewTrialMemo()}
	if _, err := RunFig3(cfg); err != nil {
		b.Fatal(err) // cold run fills the memo
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunFig3(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreHit measures the warm-hit path of the disk-backed store: a
// Get whose record was loaded from a segment at open. CI holds it within
// 10% of BenchmarkMemoHit in the same run (benchjson -fraction
// StoreHit=MemoHit:1.10) — the durable tier must stay an open-time cost,
// never a per-hit one.
func BenchmarkStoreHit(b *testing.B) {
	dir := b.TempDir()
	st, err := OpenTrialStore(dir)
	if err != nil {
		b.Fatal(err)
	}
	st.Put(42, TrialResult{Metric: 1.5})
	if err := st.Close(); err != nil {
		b.Fatal(err)
	}
	warm, err := OpenTrialStore(dir)
	if err != nil {
		b.Fatal(err)
	}
	defer warm.Close()
	if warm.Stats().Loaded != 1 {
		b.Fatal("record did not load from disk")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := warm.Get(42); !ok {
			b.Fatal("miss")
		}
	}
}
