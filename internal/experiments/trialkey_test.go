package experiments

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/hypervisor"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/topology"
	"repro/internal/workload"
)

// TestTrialKeyPinnedLiteral pins the durable key of a canned trial to a
// literal value. Durable stores survive processes, so the key encoding is
// an on-disk schema: if this test fails, the encoding changed — either
// revert the accidental change, or (for an intentional one) bump
// trialKeySchema and update the literals, accepting that existing stores
// recompute.
func TestTrialKeyPinnedLiteral(t *testing.T) {
	cfg := Config{Seed: 42}.withDefaults()
	stack := platform.Spec{Kind: platform.CN, Mode: platform.Pinned, Cores: 4}.Stack()
	w := workload.DefaultTranscode()
	got := trialKey(cfg, cfg.Host, stack, 4, []workload.Workload{w}, 16, 7)
	const want = uint64(0x9f368ed2b23a1d51)
	if got != want {
		t.Fatalf("trialKey = %#016x, want %#016x — the durable key encoding changed; bump trialKeySchema if intentional", got, want)
	}

	// A second literal over a different driver/stack exercises the
	// multi-field walks (NoSQL has the widest struct).
	nos := workload.DefaultNoSQL()
	vm := platform.Spec{Kind: platform.VMCN, Mode: platform.Vanilla, Cores: 8}.Stack()
	got2 := trialKey(cfg, cfg.Host, vm, 8, []workload.Workload{nos}, 32, 9)
	const want2 = uint64(0x541a453fbcf9355a)
	if got2 != want2 {
		t.Fatalf("trialKey(nosql) = %#016x, want %#016x — the durable key encoding changed; bump trialKeySchema if intentional", got2, want2)
	}
}

// TestTrialKeySensitivity: every input the key claims to cover must
// actually move it.
func TestTrialKeySensitivity(t *testing.T) {
	cfg := Config{Seed: 42}.withDefaults()
	stack := platform.Spec{Kind: platform.CN, Mode: platform.Pinned, Cores: 4}.Stack()
	w := workload.DefaultTranscode()
	base := trialKey(cfg, cfg.Host, stack, 4, []workload.Workload{w}, 16, 7)

	if trialKey(cfg, cfg.Host, stack, 4, []workload.Workload{w}, 16, 8) == base {
		t.Fatal("seed change did not move the key")
	}
	if trialKey(cfg, cfg.Host, stack, 8, []workload.Workload{w}, 16, 7) == base {
		t.Fatal("size change did not move the key")
	}
	if trialKey(cfg, cfg.Host, stack, 4, []workload.Workload{w}, 32, 7) == base {
		t.Fatal("memGB change did not move the key")
	}
	w2 := w
	w2.Threads++
	if trialKey(cfg, cfg.Host, stack, 4, []workload.Workload{w2}, 16, 7) == base {
		t.Fatal("workload field change did not move the key")
	}
	hv := *cfg.HV
	hv.CPUTax *= 1.5
	cfg2 := cfg
	cfg2.HV = &hv
	if trialKey(cfg2, cfg.Host, stack, 4, []workload.Workload{w}, 16, 7) == base {
		t.Fatal("hypervisor calibration change did not move the key")
	}
	if trialKey(cfg, cfg.Host, stack, 4, []workload.Workload{w, w}, 16, 7) == base {
		t.Fatal("tenant count change did not move the key")
	}
}

// pinnedFields are the struct field walks the canonical encoders cover.
// When a struct gains, loses, renames or reorders a field, this test fails
// until both the matching append/codec function and the relevant schema
// version (trialKeySchema / trialRecordSchema) are updated — the
// discipline that keeps durable stores from silently replaying results
// computed under a different model.
var pinnedFields = map[string]struct {
	v    any
	want string
}{
	"hypervisor.Params": {hypervisor.Params{},
		"CPUTax,IOScale,WanderIOScale,VirtioExtra,VirtioMiss,VirtioMissProb,GuestMsgSyncCost,GuestMsgCopyScale,GuestNSCopyScale,GuestCNIOScale,GuestLineScale,GuestCacheScale,GuestWakeExtra,WanderStallRate,WanderStallCost,NestedSwitchCost,NestedSwitchMax"},
	"workload.Transcode": {workload.Transcode{},
		"TotalWork,Threads,HeavyThreads,LightWorkFrac,SerialFrac,PerProcessOverhead,Segments"},
	"workload.MPISearch": {workload.MPISearch{},
		"Ranks,Rounds,TotalCompute,DataPerRound,ScatterBytes,AllreduceEvery"},
	"workload.Web": {workload.Web{},
		"Requests,Workers,ParseCPU,RenderCPU,WriteCPU,SocketLatency,DiskMissProb"},
	"workload.NoSQL": {workload.NoSQL{},
		"Threads,Ops,WriteFrac,Window,OpCPU,SocketLatency,DatasetGB,CacheEff,MinMiss,ReadMissIOs,CompactProb,ThrashMemGB,ThrashIOScale,ThrashCPUScale"},
	"workload.Microservice": {workload.Microservice{},
		"Requests,Frontends,Backends,ParseCPU,RespondCPU,HandleCPU,SocketLatency,RPCBytes"},
	"sched.Breakdown": {sched.Breakdown{},
		"UsefulWork,SwitchTime,MigrationTime,AcctTime,ChurnTime,ThrottleTime,IRQTime,VirtioTime,MsgTime,NestedTime,WanderTime,Switches,Migrations,Steals,Wakeups,IOs,Messages,Throttles"},
	// These three reach the key through their string Fingerprint() rather
	// than an append function; a new field on any of them must be folded
	// into the matching Fingerprint (and trialKeySchema bumped) or a warm
	// store would replay results across configs that now differ.
	"platform.Stack": {platform.Stack{}, "Layers,Tenants"},
	"platform.Layer": {platform.Layer{}, "Kind,Cores,Pinned,Limit"},
	"platform.TenantSpec": {platform.TenantSpec{}, "Name,Cores,Pinned,NoCgroup"},
	"topology.Topology": {topology.Topology{},
		"Name,Sockets,CoresPerSocket,ThreadsPerCore,LLCMB,ClockGHz,idx"},
}

func TestCanonicalEncodersCoverEveryField(t *testing.T) {
	for name, p := range pinnedFields {
		typ := reflect.TypeOf(p.v)
		var fields []string
		for i := 0; i < typ.NumField(); i++ {
			fields = append(fields, typ.Field(i).Name)
		}
		if got := strings.Join(fields, ","); got != p.want {
			t.Errorf("%s fields changed:\n got  %s\n want %s\nupdate the canonical encoder (trialkey.go / trialstore.go) and bump its schema version, then re-pin this list",
				name, got, p.want)
		}
	}
}
