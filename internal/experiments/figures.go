package experiments

// The paper's figures are data, not code: each is a Scenario registered in
// builtin.go and executed by the generic scenario engine (scenario.go).
// The RunFigN functions remain as thin registry dispatches for library
// callers and the historical tests; there is no per-figure execution logic
// left here.

import (
	"fmt"

	"repro/internal/platform"
	"repro/internal/stats"
	"repro/internal/workload"
)

// transcodeFor scales the FFmpeg workload for quick runs.
func transcodeFor(cfg Config, segments int) workload.Transcode {
	w := workload.DefaultTranscode()
	w.Segments = segments
	if cfg.Quick {
		w.TotalWork /= 8
		w.PerProcessOverhead /= 8
	}
	return w
}

// RunFig3 reproduces Fig 3 (see the "fig3" scenario registration).
func RunFig3(cfg Config) (Figure, error) { return RunRegistered("fig3", cfg) }

// RunFig4 reproduces Fig 4 (see the "fig4" scenario registration).
func RunFig4(cfg Config) (Figure, error) { return RunRegistered("fig4", cfg) }

// RunFig5 reproduces Fig 5 (see the "fig5" scenario registration).
func RunFig5(cfg Config) (Figure, error) { return RunRegistered("fig5", cfg) }

// RunFig6 reproduces Fig 6 (see the "fig6" scenario registration).
func RunFig6(cfg Config) (Figure, error) { return RunRegistered("fig6", cfg) }

// RunFig6Large runs the excluded Large instance of the Cassandra experiment
// (see the "fig6-large" scenario registration).
func RunFig6Large(cfg Config) (Figure, error) { return RunRegistered("fig6-large", cfg) }

// RunFig7 reproduces Fig 7 (see the "fig7" scenario registration).
func RunFig7(cfg Config) (Figure, error) { return RunRegistered("fig7", cfg) }

// RunFig8 reproduces Fig 8 (see the "fig8" scenario registration).
func RunFig8(cfg Config) (Figure, error) { return RunRegistered("fig8", cfg) }

// RunFigure dispatches by figure number 3..8 through the scenario registry.
func RunFigure(n int, cfg Config) (Figure, error) {
	if n < 3 || n > 8 {
		return Figure{}, fmt.Errorf("experiments: no figure %d (have 3..8)", n)
	}
	return RunRegistered(fmt.Sprintf("fig%d", n), cfg)
}

// CHRBand is the §IV-A result for one application class: the CHR range in
// which the container's PSO stops being significant.
type CHRBand struct {
	App       string
	LowCHR    float64
	HighCHR   float64
	LowName   string
	HighName  string
	PaperLow  float64
	PaperHigh float64
}

// RunCHRSweep reproduces the §IV-A analysis: sweep instance sizes, find the
// first size where the vanilla container's overhead ratio over bare metal
// (its PSO) drops below the per-class significance threshold, and report
// the bracketing CHR band.
func RunCHRSweep(cfg Config) ([]CHRBand, error) {
	cfg = cfg.withDefaults()
	warnMemoMutateHost(cfg)
	reps := cfg.reps(5)
	type app struct {
		name      string
		mk        func(it InstanceType) workload.Workload
		last      string
		threshold float64
		pLow      float64
		pHigh     float64
	}
	apps := []app{
		{"FFmpeg", func(InstanceType) workload.Workload { return transcodeFor(cfg, 1) }, "4xLarge", 1.10, 0.07, 0.14},
		{"WordPress", func(InstanceType) workload.Workload {
			w := workload.DefaultWeb()
			if cfg.Quick {
				w.Requests /= 4
			}
			return w
		}, "16xLarge", 1.25, 0.14, 0.28},
		{"Cassandra", func(InstanceType) workload.Workload {
			return workload.DefaultNoSQL()
		}, "16xLarge", 1.25, 0.28, 0.57},
	}
	hostCPUs := float64(cfg.Host.NumCPUs())
	var out []CHRBand
	for ai, a := range apps {
		first := "Large"
		if a.name != "FFmpeg" {
			first = "xLarge"
		}
		instances := Instances(first, a.last)
		band := CHRBand{App: a.name, PaperLow: a.pLow, PaperHigh: a.pHigh}
		prev := instances[0]
		found := false
		for ii, it := range instances {
			// The outer size sweep is sequential by nature (it stops at the
			// first size whose PSO is insignificant), but each step's
			// kinds × reps block is an independent grid and fans out.
			kinds := []platform.Kind{platform.CN, platform.BM}
			results := make([]TrialResult, len(kinds)*reps)
			err := forEachTrial(cfg, len(results), func(tc *TrialContext, i int) error {
				kind, rep := kinds[i/reps], i%reps
				seed := seedFor(cfg.Seed, 40, uint64(ai), uint64(ii), uint64(kind), uint64(rep))
				spec := platform.Spec{Kind: kind, Mode: platform.Vanilla, Cores: it.Cores}
				r, err := runTrial(tc, cfg, cfg.Host, spec.Stack(), it.Cores,
					[]workload.Workload{a.mk(it)}, it.MemGB, seed)
				if err != nil {
					return err
				}
				results[i] = r
				return nil
			})
			if err != nil {
				return nil, err
			}
			means := map[platform.Kind]float64{}
			for ki, kind := range kinds {
				var vals []float64
				for rep := 0; rep < reps; rep++ {
					vals = append(vals, results[ki*reps+rep].Metric)
				}
				means[kind] = stats.Summarize(vals).Mean
			}
			pso := means[platform.CN] / means[platform.BM]
			if pso < a.threshold {
				band.LowCHR = float64(prev.Cores) / hostCPUs
				band.HighCHR = float64(it.Cores) / hostCPUs
				band.LowName = prev.Name
				band.HighName = it.Name
				found = true
				break
			}
			prev = it
		}
		if !found {
			band.LowCHR = float64(prev.Cores) / hostCPUs
			band.HighCHR = 1
			band.LowName = prev.Name
			band.HighName = "host"
		}
		out = append(out, band)
	}
	return out, nil
}

// Decomposition is the §IV PTO/PSO split for one series of a figure.
type Decomposition struct {
	Label string
	// PTO is the platform-type overhead: the ratio that remains at the
	// largest instance (size-invariant component).
	PTO float64
	// PSO per x-label: the size-dependent component (ratio - PTO).
	PSO []float64
}

// Decompose splits each series' overhead ratios into PTO and PSO.
func Decompose(fig Figure) []Decomposition {
	var out []Decomposition
	for si, s := range fig.Series {
		if si == fig.BaselineIdx || len(s.Cells) == 0 {
			continue
		}
		d := Decomposition{Label: s.Label, PTO: s.Cells[len(s.Cells)-1].Ratio}
		for _, c := range s.Cells {
			pso := c.Ratio - d.PTO
			if pso < 0 {
				pso = 0
			}
			d.PSO = append(d.PSO, pso)
		}
		out = append(out, d)
	}
	return out
}
