package experiments

import (
	"fmt"

	"repro/internal/platform"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/workload"
)

// transcodeFor scales the FFmpeg workload for quick runs.
func transcodeFor(cfg Config, segments int) workload.Transcode {
	w := workload.DefaultTranscode()
	w.Segments = segments
	if cfg.Quick {
		w.TotalWork /= 8
		w.PerProcessOverhead /= 8
	}
	return w
}

// RunFig3 reproduces Fig 3: FFmpeg execution time across execution platforms
// and instance types Large..4×Large (FFmpeg uses at most 16 cores).
func RunFig3(cfg Config) (Figure, error) {
	cfg = cfg.withDefaults()
	return runMatrix(cfg, "fig3",
		"FFmpeg execution time on different execution platforms",
		"Average Execution Time (s)",
		Instances("Large", "4xLarge"),
		func(InstanceType) workload.Workload { return transcodeFor(cfg, 1) },
		cfg.reps(20))
}

// RunFig4 reproduces Fig 4: MPI Search execution time, ×Large..16×Large.
func RunFig4(cfg Config) (Figure, error) {
	cfg = cfg.withDefaults()
	mk := func(InstanceType) workload.Workload {
		w := workload.DefaultMPISearch()
		if cfg.Quick {
			w.Rounds /= 8
			w.TotalCompute /= 8
			w.ScatterBytes /= 8
		}
		return w
	}
	return runMatrix(cfg, "fig4",
		"MPI Search execution time on different execution platforms",
		"Average Execution Time (s)",
		Instances("xLarge", "16xLarge"), mk, cfg.reps(20))
}

// RunFig5 reproduces Fig 5: mean response time of 1,000 WordPress requests,
// ×Large..16×Large, 6 repetitions.
func RunFig5(cfg Config) (Figure, error) {
	cfg = cfg.withDefaults()
	mk := func(InstanceType) workload.Workload {
		w := workload.DefaultWeb()
		if cfg.Quick {
			w.Requests /= 4
		}
		return w
	}
	return runMatrix(cfg, "fig5",
		"Mean response time of 1,000 web processes (WordPress)",
		"Average Execution Time (s)",
		Instances("xLarge", "16xLarge"), mk, cfg.reps(6))
}

// RunFig6 reproduces Fig 6: mean response time of 1,000 Cassandra
// operations, ×Large..16×Large (Large thrashes and is charted out-of-range).
// Quick mode keeps the full operation count: shrinking it would lighten the
// overload regime that defines the figure, and the run is cheap anyway.
func RunFig6(cfg Config) (Figure, error) {
	cfg = cfg.withDefaults()
	mk := func(InstanceType) workload.Workload {
		return workload.DefaultNoSQL()
	}
	return runMatrix(cfg, "fig6",
		"Mean execution time of Cassandra workload",
		"Average Execution Time (s)",
		Instances("xLarge", "16xLarge"), mk, cfg.reps(20))
}

// RunFig6Large runs the excluded Large instance of the Cassandra experiment
// to demonstrate the thrash regime the paper reports as "out of range".
func RunFig6Large(cfg Config) (Figure, error) {
	cfg = cfg.withDefaults()
	mk := func(InstanceType) workload.Workload {
		return workload.DefaultNoSQL()
	}
	return runMatrix(cfg, "fig6-large",
		"Cassandra on the overloaded Large instance (thrash regime)",
		"Average Execution Time (s)",
		Instances("Large", "Large"), mk, cfg.reps(5))
}

// RunFig7 reproduces Fig 7: the CHR experiment — the same 16-core container
// (4×Large) on a 16-core host (CHR=1) vs. the 112-core host (CHR=0.14),
// plus the bare-metal reference on each host.
func RunFig7(cfg Config) (Figure, error) {
	cfg = cfg.withDefaults()
	reps := cfg.reps(20)
	hosts := []struct {
		label string
		topo  *topology.Topology
	}{
		{"16 cores", topology.SmallHost16()},
		{"112 cores", topology.PaperHost()},
	}
	series := []platform.Spec{
		{Kind: platform.CN, Mode: platform.Vanilla, Cores: 16},
		{Kind: platform.CN, Mode: platform.Pinned, Cores: 16},
		{Kind: platform.BM, Mode: platform.Vanilla, Cores: 16},
	}
	fig := Figure{
		ID:          "fig7",
		Title:       "Impact of CHR: a 4xLarge container on 16- vs 112-core hosts",
		Metric:      "Average Execution Time (s)",
		XTitle:      "Hosts with Different Number of Cores",
		BaselineIdx: 2,
	}
	for _, h := range hosts {
		fig.XLabels = append(fig.XLabels, h.label)
	}
	w := transcodeFor(cfg, 1)
	nH := len(hosts)
	results := make([]TrialResult, len(series)*nH*reps)
	err := forEachTrial(cfg, len(results), func(i int) error {
		si, hi, rep := i/(nH*reps), i/reps%nH, i%reps
		seed := seedFor(cfg.Seed, 7, uint64(si), uint64(hi), uint64(rep))
		r, err := runTrial(cfg, hosts[hi].topo, series[si], w, 64, seed)
		if err != nil {
			return fmt.Errorf("fig7 %s on %s: %w", series[si].Label(), hosts[hi].label, err)
		}
		results[i] = r
		return nil
	})
	if err != nil {
		return Figure{}, err
	}
	for si, spec := range series {
		sr := SeriesResult{Label: spec.Label(), Spec: spec}
		for hi := range hosts {
			var vals []float64
			var bd = Cell{}
			for rep := 0; rep < reps; rep++ {
				r := results[(si*nH+hi)*reps+rep]
				vals = append(vals, r.Metric)
				bd.Breakdown = r.Breakdown
			}
			bd.Summary = stats.Summarize(vals)
			sr.Cells = append(sr.Cells, bd)
		}
		fig.Series = append(fig.Series, sr)
	}
	fig.computeRatios(cfg)
	return fig, nil
}

// RunFig8 reproduces Fig 8: multitasking impact — transcoding one 30-second
// video vs. 30 one-second videos in parallel on a 4×Large container.
func RunFig8(cfg Config) (Figure, error) {
	cfg = cfg.withDefaults()
	reps := cfg.reps(20)
	cases := []struct {
		label    string
		segments int
	}{
		{"1 Large Task", 1},
		{"30 Small Tasks", 30},
	}
	series := []platform.Spec{
		{Kind: platform.CN, Mode: platform.Vanilla, Cores: 16},
		{Kind: platform.CN, Mode: platform.Pinned, Cores: 16},
	}
	fig := Figure{
		ID:          "fig8",
		Title:       "Impact of the number of processes on a 4xLarge CN instance",
		Metric:      "Average Execution Time (s)",
		XTitle:      "Different number of processes running on CN platforms",
		BaselineIdx: -1,
	}
	for _, c := range cases {
		fig.XLabels = append(fig.XLabels, c.label)
	}
	nC := len(cases)
	results := make([]TrialResult, len(series)*nC*reps)
	err := forEachTrial(cfg, len(results), func(i int) error {
		si, ci, rep := i/(nC*reps), i/reps%nC, i%reps
		seed := seedFor(cfg.Seed, 8, uint64(si), uint64(ci), uint64(rep))
		w := transcodeFor(cfg, cases[ci].segments)
		r, err := runTrial(cfg, cfg.Host, series[si], w, 64, seed)
		if err != nil {
			return fmt.Errorf("fig8 %s %s: %w", series[si].Label(), cases[ci].label, err)
		}
		results[i] = r
		return nil
	})
	if err != nil {
		return Figure{}, err
	}
	for si, spec := range series {
		sr := SeriesResult{Label: spec.Label(), Spec: spec}
		for ci := range cases {
			var vals []float64
			var cell Cell
			for rep := 0; rep < reps; rep++ {
				r := results[(si*nC+ci)*reps+rep]
				vals = append(vals, r.Metric)
				cell.Breakdown = r.Breakdown
			}
			cell.Summary = stats.Summarize(vals)
			sr.Cells = append(sr.Cells, cell)
		}
		fig.Series = append(fig.Series, sr)
	}
	return fig, nil
}

// RunFigure dispatches by figure number 3..8.
func RunFigure(n int, cfg Config) (Figure, error) {
	switch n {
	case 3:
		return RunFig3(cfg)
	case 4:
		return RunFig4(cfg)
	case 5:
		return RunFig5(cfg)
	case 6:
		return RunFig6(cfg)
	case 7:
		return RunFig7(cfg)
	case 8:
		return RunFig8(cfg)
	}
	return Figure{}, fmt.Errorf("experiments: no figure %d (have 3..8)", n)
}

// CHRBand is the §IV-A result for one application class: the CHR range in
// which the container's PSO stops being significant.
type CHRBand struct {
	App       string
	LowCHR    float64
	HighCHR   float64
	LowName   string
	HighName  string
	PaperLow  float64
	PaperHigh float64
}

// RunCHRSweep reproduces the §IV-A analysis: sweep instance sizes, find the
// first size where the vanilla container's overhead ratio over bare metal
// (its PSO) drops below the per-class significance threshold, and report
// the bracketing CHR band.
func RunCHRSweep(cfg Config) ([]CHRBand, error) {
	cfg = cfg.withDefaults()
	reps := cfg.reps(5)
	type app struct {
		name      string
		mk        func(it InstanceType) workload.Workload
		last      string
		threshold float64
		pLow      float64
		pHigh     float64
	}
	apps := []app{
		{"FFmpeg", func(InstanceType) workload.Workload { return transcodeFor(cfg, 1) }, "4xLarge", 1.10, 0.07, 0.14},
		{"WordPress", func(InstanceType) workload.Workload {
			w := workload.DefaultWeb()
			if cfg.Quick {
				w.Requests /= 4
			}
			return w
		}, "16xLarge", 1.25, 0.14, 0.28},
		{"Cassandra", func(InstanceType) workload.Workload {
			return workload.DefaultNoSQL()
		}, "16xLarge", 1.25, 0.28, 0.57},
	}
	hostCPUs := float64(cfg.Host.NumCPUs())
	var out []CHRBand
	for ai, a := range apps {
		first := "Large"
		if a.name != "FFmpeg" {
			first = "xLarge"
		}
		instances := Instances(first, a.last)
		band := CHRBand{App: a.name, PaperLow: a.pLow, PaperHigh: a.pHigh}
		prev := instances[0]
		found := false
		for ii, it := range instances {
			// The outer size sweep is sequential by nature (it stops at the
			// first size whose PSO is insignificant), but each step's
			// kinds × reps block is an independent grid and fans out.
			kinds := []platform.Kind{platform.CN, platform.BM}
			results := make([]TrialResult, len(kinds)*reps)
			err := forEachTrial(cfg, len(results), func(i int) error {
				kind, rep := kinds[i/reps], i%reps
				seed := seedFor(cfg.Seed, 40, uint64(ai), uint64(ii), uint64(kind), uint64(rep))
				spec := platform.Spec{Kind: kind, Mode: platform.Vanilla, Cores: it.Cores}
				r, err := runTrial(cfg, cfg.Host, spec, a.mk(it), it.MemGB, seed)
				if err != nil {
					return err
				}
				results[i] = r
				return nil
			})
			if err != nil {
				return nil, err
			}
			means := map[platform.Kind]float64{}
			for ki, kind := range kinds {
				var vals []float64
				for rep := 0; rep < reps; rep++ {
					vals = append(vals, results[ki*reps+rep].Metric)
				}
				means[kind] = stats.Summarize(vals).Mean
			}
			pso := means[platform.CN] / means[platform.BM]
			if pso < a.threshold {
				band.LowCHR = float64(prev.Cores) / hostCPUs
				band.HighCHR = float64(it.Cores) / hostCPUs
				band.LowName = prev.Name
				band.HighName = it.Name
				found = true
				break
			}
			prev = it
		}
		if !found {
			band.LowCHR = float64(prev.Cores) / hostCPUs
			band.HighCHR = 1
			band.LowName = prev.Name
			band.HighName = "host"
		}
		out = append(out, band)
	}
	return out, nil
}

// Decomposition is the §IV PTO/PSO split for one series of a figure.
type Decomposition struct {
	Label string
	// PTO is the platform-type overhead: the ratio that remains at the
	// largest instance (size-invariant component).
	PTO float64
	// PSO per x-label: the size-dependent component (ratio - PTO).
	PSO []float64
}

// Decompose splits each series' overhead ratios into PTO and PSO.
func Decompose(fig Figure) []Decomposition {
	var out []Decomposition
	for si, s := range fig.Series {
		if si == fig.BaselineIdx || len(s.Cells) == 0 {
			continue
		}
		d := Decomposition{Label: s.Label, PTO: s.Cells[len(s.Cells)-1].Ratio}
		for _, c := range s.Cells {
			pso := c.Ratio - d.PTO
			if pso < 0 {
				pso = 0
			}
			d.PSO = append(d.PSO, pso)
		}
		out = append(out, d)
	}
	return out
}
