package experiments

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/machine"
)

// TestShardPartitionCoversEveryIndexOnce: the union of all shards runs
// every index exactly once, and each shard's subset is the deterministic
// modulo partition regardless of the inner executor.
func TestShardPartitionCoversEveryIndexOnce(t *testing.T) {
	const n = 101
	for _, count := range []int{1, 2, 3, 7} {
		var ran [n]atomic.Int64
		for idx := 0; idx < count; idx++ {
			err := Shard{Index: idx, Count: count, Inner: Pool{Workers: 3}}.Execute(n, func(tc *TrialContext, i int) error {
				if i%count != idx {
					t.Errorf("shard %d/%d claimed index %d", idx, count, i)
				}
				ran[i].Add(1)
				return nil
			}, nil)
			if err != nil {
				t.Fatal(err)
			}
		}
		for i := range ran {
			if c := ran[i].Load(); c != 1 {
				t.Fatalf("count=%d: index %d ran %d times", count, i, c)
			}
		}
	}
}

// TestShardProgressTotalIsSubsetSize: a shard reports progress against the
// number of trials it will actually run, not the whole grid.
func TestShardProgressTotalIsSubsetSize(t *testing.T) {
	const n = 10
	var last, total int
	err := Shard{Index: 1, Count: 3, Inner: Serial{}}.Execute(n, func(tc *TrialContext, i int) error { return nil },
		func(done, tot int) { last, total = done, tot })
	if err != nil {
		t.Fatal(err)
	}
	if total != 3 || last != 3 { // indices 1, 4, 7
		t.Fatalf("progress reached %d/%d, want 3/3", last, total)
	}
}

// TestShardRejectsBadBounds locks the validation error.
func TestShardRejectsBadBounds(t *testing.T) {
	for _, s := range []Shard{{Index: 0, Count: 0}, {Index: -1, Count: 2}, {Index: 2, Count: 2}} {
		if err := s.Execute(5, func(*TrialContext, int) error { return nil }, nil); err == nil {
			t.Fatalf("shard %d/%d: expected an error", s.Index, s.Count)
		}
	}
}

// TestParseShard covers the CLI form.
func TestParseShard(t *testing.T) {
	i, n, err := ParseShard("1/2")
	if err != nil || i != 1 || n != 2 {
		t.Fatalf("ParseShard(1/2) = %d, %d, %v", i, n, err)
	}
	for _, bad := range []string{"", "2", "2/2", "-1/2", "0/0", "a/b", "1/2/3"} {
		if _, _, err := ParseShard(bad); err == nil {
			t.Fatalf("ParseShard(%q): expected an error", bad)
		}
	}
}

// TestConfigExecutorOverridesPool: a Config-level executor replaces the
// default pool for every grid the runner fans out.
func TestConfigExecutorOverridesPool(t *testing.T) {
	var claimed []int
	cfg := Config{Executor: recordingExecutor{&claimed}}
	if err := forEachTrial(cfg, 4, func(tc *TrialContext, i int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if len(claimed) != 4 {
		t.Fatalf("custom executor saw %d trials, want 4", len(claimed))
	}
}

type recordingExecutor struct{ claimed *[]int }

func (r recordingExecutor) Execute(n int, run func(tc *TrialContext, i int) error, progress func(done, total int)) error {
	tc := new(TrialContext)
	for i := 0; i < n; i++ {
		*r.claimed = append(*r.claimed, i)
		if err := run(tc, i); err != nil {
			return err
		}
	}
	return nil
}

// TestScenarioShardMergeEqualsUnsharded is the end-to-end shard contract:
// two shard runs persisting into durable stores, merged into a warm store,
// re-render a figure identical to the unsharded run — with zero
// simulations in the merge run.
func TestScenarioShardMergeEqualsUnsharded(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a quick figure three times")
	}
	cfg := Config{Seed: 42, Quick: true, Workers: 2}
	direct, err := RunRegistered("fig3", cfg)
	if err != nil {
		t.Fatal(err)
	}

	dirs := []string{t.TempDir(), t.TempDir()}
	for idx, dir := range dirs {
		st, err := OpenTrialStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		shardCfg := cfg
		shardCfg.Memo = st
		shardCfg.Executor = Shard{Index: idx, Count: len(dirs), Inner: Pool{Workers: 2}}
		if _, err := RunRegistered("fig3", shardCfg); err != nil {
			t.Fatalf("shard %d: %v", idx, err)
		}
		if st.Misses() == 0 {
			t.Fatalf("shard %d simulated nothing", idx)
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}

	memo := NewTrialMemo()
	if err := MergeTrialStores(memo, dirs...); err != nil {
		t.Fatal(err)
	}
	mergeCfg := cfg
	mergeCfg.Memo = memo
	merged, err := RunRegistered("fig3", mergeCfg)
	if err != nil {
		t.Fatal(err)
	}
	if memo.Misses() != 0 {
		t.Fatalf("merge run simulated %d trials, want 0", memo.Misses())
	}
	var a, b strings.Builder
	direct.RenderText(&a)
	merged.RenderText(&b)
	if a.String() != b.String() {
		t.Fatalf("merged figure diverged from the unsharded run:\n%s\nvs\n%s", b.String(), a.String())
	}
}

// TestPoolRetriesTransientPanic: a trial that panics once and then
// succeeds on the containment retry is invisible — no error, every index
// ran.
func TestPoolRetriesTransientPanic(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var tripped atomic.Bool
		var ran [8]atomic.Int64
		err := Pool{Workers: workers}.Execute(8, func(tc *TrialContext, i int) error {
			if i == 5 && tripped.CompareAndSwap(false, true) {
				panic("transient trial panic")
			}
			ran[i].Add(1)
			return nil
		}, nil)
		if err != nil {
			t.Fatalf("workers=%d: contained retry still errored: %v", workers, err)
		}
		for i := range ran {
			if ran[i].Load() != 1 {
				t.Fatalf("workers=%d: index %d ran %d times, want 1", workers, i, ran[i].Load())
			}
		}
	}
}

// TestPoolReportsPersistentPanics: a trial that panics on both attempts is
// reported at the end as a TrialPanicsError — after every other trial has
// completed, not instead of them.
func TestPoolReportsPersistentPanics(t *testing.T) {
	for _, workers := range []int{1, 4} {
		const n = 20
		var ran [n]atomic.Int64
		err := Pool{Workers: workers}.Execute(n, func(tc *TrialContext, i int) error {
			if i == 7 || i == 13 {
				panic(fmt.Sprintf("poisoned trial %d", i))
			}
			ran[i].Add(1)
			return nil
		}, nil)
		var tpe *TrialPanicsError
		if !errors.As(err, &tpe) {
			t.Fatalf("workers=%d: err = %v, want a *TrialPanicsError", workers, err)
		}
		if len(tpe.Panics) != 2 || tpe.Panics[0].Index != 7 || tpe.Panics[1].Index != 13 || tpe.Trials != n {
			t.Fatalf("workers=%d: report = %+v, want trials 7 and 13 of %d", workers, tpe, n)
		}
		if !strings.Contains(err.Error(), "poisoned trial 7") || !strings.Contains(err.Error(), "2 of 20") {
			t.Fatalf("workers=%d: error text %q lacks the summary", workers, err)
		}
		if tpe.Panics[0].Stack == "" {
			t.Fatalf("workers=%d: panic report lost the stack", workers)
		}
		for i := range ran {
			want := int64(1)
			if i == 7 || i == 13 {
				want = 0
			}
			if ran[i].Load() != want {
				t.Fatalf("workers=%d: index %d ran %d times, want %d", workers, i, ran[i].Load(), want)
			}
		}
	}
}

// TestPoolErrorOutranksPanicReport: the legacy stop-early error contract
// wins over the end-of-sweep panic report.
func TestPoolErrorOutranksPanicReport(t *testing.T) {
	boom := errors.New("trial failed")
	err := Pool{Workers: 1}.Execute(6, func(tc *TrialContext, i int) error {
		if i == 1 {
			panic("poisoned")
		}
		if i == 3 {
			return boom
		}
		return nil
	}, nil)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the trial error, not the panic report", err)
	}
}

// TestSerialStaysRaw: the legacy Serial executor still propagates panics —
// it is the A/B baseline, not a containment layer.
func TestSerialStaysRaw(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Serial must not contain trial panics")
		}
	}()
	Serial{}.Execute(3, func(tc *TrialContext, i int) error {
		if i == 1 {
			panic("raw")
		}
		return nil
	}, nil)
}

// TestFigureSurvivesTransientTrialPanic is the end-to-end containment
// contract: a hook that panics on exactly one trial (then heals) must not
// change a figure's rendered bytes.
func TestFigureSurvivesTransientTrialPanic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a quick figure twice")
	}
	base := Config{Seed: 42, Quick: true, Workers: 2, MutateHost: func(*machine.Config) {}}
	clean, err := RunRegistered("fig3", base)
	if err != nil {
		t.Fatal(err)
	}
	var tripped atomic.Bool
	faulty := base
	faulty.MutateHost = func(*machine.Config) {
		if tripped.CompareAndSwap(false, true) {
			panic("flaky hook")
		}
	}
	survived, err := RunRegistered("fig3", faulty)
	if err != nil {
		t.Fatalf("figure run died on a transient trial panic: %v", err)
	}
	if !tripped.Load() {
		t.Fatal("the faulty hook never fired")
	}
	var a, b strings.Builder
	clean.RenderText(&a)
	survived.RenderText(&b)
	if a.String() != b.String() {
		t.Fatalf("figure changed after a contained panic:\n%s\nvs\n%s", b.String(), a.String())
	}
}
