package experiments

import (
	"strings"
	"sync/atomic"
	"testing"
)

// TestShardPartitionCoversEveryIndexOnce: the union of all shards runs
// every index exactly once, and each shard's subset is the deterministic
// modulo partition regardless of the inner executor.
func TestShardPartitionCoversEveryIndexOnce(t *testing.T) {
	const n = 101
	for _, count := range []int{1, 2, 3, 7} {
		var ran [n]atomic.Int64
		for idx := 0; idx < count; idx++ {
			err := Shard{Index: idx, Count: count, Inner: Pool{Workers: 3}}.Execute(n, func(i int) error {
				if i%count != idx {
					t.Errorf("shard %d/%d claimed index %d", idx, count, i)
				}
				ran[i].Add(1)
				return nil
			}, nil)
			if err != nil {
				t.Fatal(err)
			}
		}
		for i := range ran {
			if c := ran[i].Load(); c != 1 {
				t.Fatalf("count=%d: index %d ran %d times", count, i, c)
			}
		}
	}
}

// TestShardProgressTotalIsSubsetSize: a shard reports progress against the
// number of trials it will actually run, not the whole grid.
func TestShardProgressTotalIsSubsetSize(t *testing.T) {
	const n = 10
	var last, total int
	err := Shard{Index: 1, Count: 3, Inner: Serial{}}.Execute(n, func(i int) error { return nil },
		func(done, tot int) { last, total = done, tot })
	if err != nil {
		t.Fatal(err)
	}
	if total != 3 || last != 3 { // indices 1, 4, 7
		t.Fatalf("progress reached %d/%d, want 3/3", last, total)
	}
}

// TestShardRejectsBadBounds locks the validation error.
func TestShardRejectsBadBounds(t *testing.T) {
	for _, s := range []Shard{{Index: 0, Count: 0}, {Index: -1, Count: 2}, {Index: 2, Count: 2}} {
		if err := s.Execute(5, func(int) error { return nil }, nil); err == nil {
			t.Fatalf("shard %d/%d: expected an error", s.Index, s.Count)
		}
	}
}

// TestParseShard covers the CLI form.
func TestParseShard(t *testing.T) {
	i, n, err := ParseShard("1/2")
	if err != nil || i != 1 || n != 2 {
		t.Fatalf("ParseShard(1/2) = %d, %d, %v", i, n, err)
	}
	for _, bad := range []string{"", "2", "2/2", "-1/2", "0/0", "a/b", "1/2/3"} {
		if _, _, err := ParseShard(bad); err == nil {
			t.Fatalf("ParseShard(%q): expected an error", bad)
		}
	}
}

// TestConfigExecutorOverridesPool: a Config-level executor replaces the
// default pool for every grid the runner fans out.
func TestConfigExecutorOverridesPool(t *testing.T) {
	var claimed []int
	cfg := Config{Executor: recordingExecutor{&claimed}}
	if err := forEachTrial(cfg, 4, func(i int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if len(claimed) != 4 {
		t.Fatalf("custom executor saw %d trials, want 4", len(claimed))
	}
}

type recordingExecutor struct{ claimed *[]int }

func (r recordingExecutor) Execute(n int, run func(i int) error, progress func(done, total int)) error {
	for i := 0; i < n; i++ {
		*r.claimed = append(*r.claimed, i)
		if err := run(i); err != nil {
			return err
		}
	}
	return nil
}

// TestScenarioShardMergeEqualsUnsharded is the end-to-end shard contract:
// two shard runs persisting into durable stores, merged into a warm store,
// re-render a figure identical to the unsharded run — with zero
// simulations in the merge run.
func TestScenarioShardMergeEqualsUnsharded(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a quick figure three times")
	}
	cfg := Config{Seed: 42, Quick: true, Workers: 2}
	direct, err := RunRegistered("fig3", cfg)
	if err != nil {
		t.Fatal(err)
	}

	dirs := []string{t.TempDir(), t.TempDir()}
	for idx, dir := range dirs {
		st, err := OpenTrialStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		shardCfg := cfg
		shardCfg.Memo = st
		shardCfg.Executor = Shard{Index: idx, Count: len(dirs), Inner: Pool{Workers: 2}}
		if _, err := RunRegistered("fig3", shardCfg); err != nil {
			t.Fatalf("shard %d: %v", idx, err)
		}
		if st.Misses() == 0 {
			t.Fatalf("shard %d simulated nothing", idx)
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}

	memo := NewTrialMemo()
	if err := MergeTrialStores(memo, dirs...); err != nil {
		t.Fatal(err)
	}
	mergeCfg := cfg
	mergeCfg.Memo = memo
	merged, err := RunRegistered("fig3", mergeCfg)
	if err != nil {
		t.Fatal(err)
	}
	if memo.Misses() != 0 {
		t.Fatalf("merge run simulated %d trials, want 0", memo.Misses())
	}
	var a, b strings.Builder
	direct.RenderText(&a)
	merged.RenderText(&b)
	if a.String() != b.String() {
		t.Fatalf("merged figure diverged from the unsharded run:\n%s\nvs\n%s", b.String(), a.String())
	}
}
