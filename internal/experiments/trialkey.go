package experiments

// The durable trial key. A trial's store key fingerprints everything its
// result depends on — seed, stack, instance size, host topology,
// hypervisor calibration, time limit, memory and every tenant workload's
// concrete parameters — as a canonical versioned encoding: explicit field
// walks in declaration order, fixed-width little-endian values, a schema
// version byte up front (resultstore.Enc). Reflective %+v formatting would
// silently change meaning whenever a struct evolved; here evolution is
// explicit: any change to a walked struct must extend the matching
// append function AND bump trialKeySchema, at which point old durable
// records simply stop matching and are recomputed. The pinned-literal and
// field-coverage tests in trialkey_test.go enforce that discipline.

import (
	"fmt"

	"repro/internal/hypervisor"
	"repro/internal/platform"
	"repro/internal/resultstore"
	"repro/internal/topology"
	"repro/internal/workload"
)

// trialKeySchema versions the whole key encoding. Bump it whenever the
// field walk below changes shape or meaning — including any field added to
// hypervisor.Params or a workload driver struct.
const trialKeySchema = 1

// trialKey returns the durable store key of one trial.
func trialKey(cfg Config, host *topology.Topology, stack platform.Stack, size int, ws []workload.Workload, memGB int, seed uint64) uint64 {
	var e resultstore.Enc
	e.Version(trialKeySchema)
	e.U64(seed)
	e.Str(stack.Fingerprint())
	e.Int(size)
	e.Str(host.Fingerprint())
	appendHVKey(&e, *cfg.HV)
	e.I64(int64(cfg.TimeLimit))
	e.Int(memGB)
	e.Int(len(ws))
	for _, w := range ws {
		appendWorkloadKey(&e, w)
	}
	return e.Sum64()
}

// appendHVKey walks hypervisor.Params in declaration order.
func appendHVKey(e *resultstore.Enc, p hypervisor.Params) {
	e.Str("hv")
	e.F64(p.CPUTax)
	e.F64(p.IOScale)
	e.F64(p.WanderIOScale)
	e.I64(int64(p.VirtioExtra))
	e.I64(int64(p.VirtioMiss))
	e.F64(p.VirtioMissProb)
	e.I64(int64(p.GuestMsgSyncCost))
	e.F64(p.GuestMsgCopyScale)
	e.F64(p.GuestNSCopyScale)
	e.F64(p.GuestCNIOScale)
	e.F64(p.GuestLineScale)
	e.F64(p.GuestCacheScale)
	e.I64(int64(p.GuestWakeExtra))
	e.F64(p.WanderStallRate)
	e.I64(int64(p.WanderStallCost))
	e.I64(int64(p.NestedSwitchCost))
	e.I64(int64(p.NestedSwitchMax))
}

// appendWorkloadKey walks one workload's concrete parameters. The five
// registry drivers are encoded field by field in declaration order (this
// covers Quick-mode scaling, which shrinks fields rather than setting a
// flag). A workload type outside the registry falls back to the reflective
// form — stable within a process, but carrying no durable schema
// guarantee, which is exactly the contract arbitrary user types get.
func appendWorkloadKey(e *resultstore.Enc, w workload.Workload) {
	switch d := w.(type) {
	case workload.Transcode:
		e.Str("ffmpeg")
		e.I64(int64(d.TotalWork))
		e.Int(d.Threads)
		e.Int(d.HeavyThreads)
		e.F64(d.LightWorkFrac)
		e.F64(d.SerialFrac)
		e.I64(int64(d.PerProcessOverhead))
		e.Int(d.Segments)
	case workload.MPISearch:
		e.Str("mpi")
		e.Int(d.Ranks)
		e.Int(d.Rounds)
		e.I64(int64(d.TotalCompute))
		e.I64(d.DataPerRound)
		e.I64(d.ScatterBytes)
		e.Int(d.AllreduceEvery)
	case workload.Web:
		e.Str("wordpress")
		e.Int(d.Requests)
		e.Int(d.Workers)
		e.I64(int64(d.ParseCPU))
		e.I64(int64(d.RenderCPU))
		e.I64(int64(d.WriteCPU))
		e.I64(int64(d.SocketLatency))
		e.F64(d.DiskMissProb)
	case workload.NoSQL:
		e.Str("cassandra")
		e.Int(d.Threads)
		e.Int(d.Ops)
		e.F64(d.WriteFrac)
		e.I64(int64(d.Window))
		e.I64(int64(d.OpCPU))
		e.I64(int64(d.SocketLatency))
		e.F64(d.DatasetGB)
		e.F64(d.CacheEff)
		e.F64(d.MinMiss)
		e.Int(d.ReadMissIOs)
		e.F64(d.CompactProb)
		e.Int(d.ThrashMemGB)
		e.Int(d.ThrashIOScale)
		e.F64(d.ThrashCPUScale)
	case workload.Microservice:
		e.Str("microservice")
		e.Int(d.Requests)
		e.Int(d.Frontends)
		e.Int(d.Backends)
		e.I64(int64(d.ParseCPU))
		e.I64(int64(d.RespondCPU))
		e.I64(int64(d.HandleCPU))
		e.I64(int64(d.SocketLatency))
		e.I64(d.RPCBytes)
	default:
		e.Str("reflect")
		e.Str(fmt.Sprintf("%s:%+v", w.Name(), w))
	}
}
