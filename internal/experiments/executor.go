package experiments

// The pluggable trial-execution strategy. Every experiment in this package
// reduces to a grid of independent trials addressed by index; an Executor
// decides which of those indices run here and on how many goroutines,
// while result placement stays index-addressed — so the assembled output
// is bit-identical no matter which executor ran it. Serial is the legacy
// single-goroutine loop, Pool the atomic-claim worker fan-out, and Shard a
// deterministic partition of the grid for running one experiment across N
// machines whose durable stores are merged afterwards.

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Executor runs the n independent trials of one grid.
type Executor interface {
	// Execute calls run(tc, i) for the executor's share of indices 0..n-1
	// and reports the first (lowest-index) error among the trials it
	// claimed. run must write its result into an index-addressed slot owned
	// by that trial alone. tc is the calling worker's TrialContext — the
	// per-goroutine deployment-reuse arena; an executor hands each worker
	// its own and never shares one between concurrently running trials
	// (nil degrades run to always building fresh). progress, when non-nil,
	// observes (done, total) after every completed trial — total is the
	// number of trials this executor will run, and implementations
	// serialize the calls.
	Execute(n int, run func(tc *TrialContext, i int) error, progress func(done, total int)) error
}

// Serial runs every trial in index order on the calling goroutine — the
// legacy path, kept for A/B comparison and for callers whose MutateHost
// hooks are not concurrency-safe.
type Serial struct{}

// Execute implements Executor.
func (Serial) Execute(n int, run func(tc *TrialContext, i int) error, progress func(done, total int)) error {
	tc := new(TrialContext)
	for i := 0; i < n; i++ {
		if err := run(tc, i); err != nil {
			return err
		}
		if progress != nil {
			progress(i+1, n)
		}
	}
	return nil
}

// TrialPanic records one trial whose run panicked twice (the initial run
// and the containment retry).
type TrialPanic struct {
	// Index is the trial's grid index.
	Index int
	// Value is what the second panic carried.
	Value any
	// Stack is the goroutine stack captured at the second panic.
	Stack string
}

// TrialPanicsError is Pool's end-of-sweep report of contained panics: the
// sweep ran to completion — every other trial's result is in place — and
// only the panicking trials' slots are unfilled. Sitting behind the error
// interface keeps the legacy Executor contract while letting callers
// distinguish "this figure is missing k cells" from "the run aborted".
type TrialPanicsError struct {
	// Panics lists the persistently panicking trials in ascending index
	// order.
	Panics []TrialPanic
	// Trials is the grid size the sweep covered.
	Trials int
}

// Error implements error with a summary plus the first panic's detail; the
// remaining stacks stay available on the struct.
func (e *TrialPanicsError) Error() string {
	first := e.Panics[0]
	return fmt.Sprintf("experiments: %d of %d trials panicked (retried once each); first: trial %d: %v\n%s",
		len(e.Panics), e.Trials, first.Index, first.Value, first.Stack)
}

// containTrial runs one trial with panic containment: a panicking trial is
// retried once (transient panics — e.g. a MutateHost hook tripping over
// shared state — heal invisibly), and a second panic is captured as a
// TrialPanic instead of unwinding the worker. The retry runs with the
// worker's reuse arena discarded — the panic may have left a half-rewound
// machine in it.
func containTrial(run func(tc *TrialContext, i int) error, tc *TrialContext, i int) (err error, pan *TrialPanic) {
	attempt := func() (err error, pan *TrialPanic) {
		defer func() {
			if r := recover(); r != nil {
				err = nil
				pan = &TrialPanic{Index: i, Value: r, Stack: string(debug.Stack())}
			}
		}()
		return run(tc, i), nil
	}
	if err, pan = attempt(); pan == nil {
		return err, nil
	}
	tc.discard()
	return attempt()
}

// Pool fans trials out across a goroutine pool; workers claim indices from
// a shared atomic counter. Workers 0 means GOMAXPROCS; 1 (or negative)
// runs the claims on the calling goroutine — still with Pool's panic
// containment, unlike the bare legacy Serial.
//
// Unlike Serial, Pool contains trial panics: a panicking trial is retried
// once, and trials that panic twice are reported together at the end (as a
// *TrialPanicsError) after every other trial has run — one poisoned
// configuration costs its own figure cell, not a 100k-trial sweep.
type Pool struct {
	Workers int
}

// count resolves the pool size for n trials.
func (p Pool) count(n int) int {
	w := p.Workers
	switch {
	case w == 0:
		w = runtime.GOMAXPROCS(0)
	case w < 0:
		w = 1
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Execute implements Executor.
func (p Pool) Execute(n int, run func(tc *TrialContext, i int) error, progress func(done, total int)) error {
	if n <= 0 {
		return nil
	}
	workers := p.count(n)

	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup

		mu       sync.Mutex
		done     int
		firstErr error
		errIdx   = n
		panics   []TrialPanic
	)
	observe := func() {
		mu.Lock()
		done++
		if progress != nil {
			// The increment and the callback share one critical section so
			// observed counts are strictly monotonic.
			progress(done, n)
		}
		mu.Unlock()
	}
	worker := func() {
		tc := new(TrialContext)
		for !failed.Load() {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			err, pan := containTrial(run, tc, i)
			if pan != nil {
				// A persistently panicking trial poisons only its own slot:
				// record it, keep sweeping, report the batch at the end.
				mu.Lock()
				panics = append(panics, *pan)
				mu.Unlock()
				continue
			}
			if err != nil {
				// Stop claiming new trials, but keep the lowest-index
				// error among those already claimed: the failing claim
				// outranks every index it prevented from running, so
				// the reported error is as deterministic as in the
				// serial path.
				failed.Store(true)
				mu.Lock()
				if i < errIdx {
					errIdx, firstErr = i, err
				}
				mu.Unlock()
				continue
			}
			observe()
		}
	}
	if workers == 1 {
		// No goroutines at all — the legacy serial shape, but contained.
		worker()
	} else {
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				worker()
			}()
		}
		wg.Wait()
	}
	if firstErr != nil {
		return firstErr
	}
	if len(panics) > 0 {
		sort.Slice(panics, func(a, b int) bool { return panics[a].Index < panics[b].Index })
		return &TrialPanicsError{Panics: panics, Trials: n}
	}
	return nil
}

// Shard deterministically partitions the trial grid: shard Index of Count
// owns every Count-th index starting at Index, so N shard runs with the
// same grid cover every trial exactly once regardless of machine or
// timing. Pair it with a durable store — each shard persists its
// partition, and a later merge run assembles the identical figure with
// zero recomputation.
type Shard struct {
	// Index identifies this shard, 0 ≤ Index < Count.
	Index, Count int
	// Inner executes the shard's subset (nil = Pool{}).
	Inner Executor
}

// Execute implements Executor.
func (s Shard) Execute(n int, run func(tc *TrialContext, i int) error, progress func(done, total int)) error {
	if s.Count <= 0 || s.Index < 0 || s.Index >= s.Count {
		return fmt.Errorf("experiments: invalid shard %d/%d (want 0 ≤ index < count)", s.Index, s.Count)
	}
	idx := make([]int, 0, (n+s.Count-1)/s.Count)
	for i := s.Index; i < n; i += s.Count {
		idx = append(idx, i)
	}
	inner := s.Inner
	if inner == nil {
		inner = Pool{}
	}
	return inner.Execute(len(idx), func(tc *TrialContext, j int) error { return run(tc, idx[j]) }, progress)
}

// ParseShard parses the CLI -shard form "i/n" (0-based, e.g. "0/2", "1/2").
func ParseShard(s string) (index, count int, err error) {
	i, n, ok := strings.Cut(s, "/")
	if !ok {
		return 0, 0, fmt.Errorf("experiments: bad shard %q (want i/n, e.g. 0/2)", s)
	}
	index, err1 := strconv.Atoi(i)
	count, err2 := strconv.Atoi(n)
	if err1 != nil || err2 != nil {
		return 0, 0, fmt.Errorf("experiments: bad shard %q (want i/n, e.g. 0/2)", s)
	}
	if count <= 0 || index < 0 || index >= count {
		return 0, 0, fmt.Errorf("experiments: bad shard %q (want 0 ≤ i < n)", s)
	}
	return index, count, nil
}
