package experiments

// The pluggable trial-execution strategy. Every experiment in this package
// reduces to a grid of independent trials addressed by index; an Executor
// decides which of those indices run here and on how many goroutines,
// while result placement stays index-addressed — so the assembled output
// is bit-identical no matter which executor ran it. Serial is the legacy
// single-goroutine loop, Pool the atomic-claim worker fan-out, and Shard a
// deterministic partition of the grid for running one experiment across N
// machines whose durable stores are merged afterwards.

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Executor runs the n independent trials of one grid.
type Executor interface {
	// Execute calls run(i) for the executor's share of indices 0..n-1 and
	// reports the first (lowest-index) error among the trials it claimed.
	// run must write its result into an index-addressed slot owned by that
	// trial alone. progress, when non-nil, observes (done, total) after
	// every completed trial — total is the number of trials this executor
	// will run, and implementations serialize the calls.
	Execute(n int, run func(i int) error, progress func(done, total int)) error
}

// Serial runs every trial in index order on the calling goroutine — the
// legacy path, kept for A/B comparison and for callers whose MutateHost
// hooks are not concurrency-safe.
type Serial struct{}

// Execute implements Executor.
func (Serial) Execute(n int, run func(i int) error, progress func(done, total int)) error {
	for i := 0; i < n; i++ {
		if err := run(i); err != nil {
			return err
		}
		if progress != nil {
			progress(i+1, n)
		}
	}
	return nil
}

// Pool fans trials out across a goroutine pool; workers claim indices from
// a shared atomic counter. Workers 0 means GOMAXPROCS; 1 (or negative)
// degrades to Serial — no goroutines at all.
type Pool struct {
	Workers int
}

// count resolves the pool size for n trials.
func (p Pool) count(n int) int {
	w := p.Workers
	switch {
	case w == 0:
		w = runtime.GOMAXPROCS(0)
	case w < 0:
		w = 1
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Execute implements Executor.
func (p Pool) Execute(n int, run func(i int) error, progress func(done, total int)) error {
	if n <= 0 {
		return nil
	}
	workers := p.count(n)
	if workers == 1 {
		return Serial{}.Execute(n, run, progress)
	}

	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup

		mu       sync.Mutex
		done     int
		firstErr error
		errIdx   = n
	)
	observe := func() {
		mu.Lock()
		done++
		if progress != nil {
			// The increment and the callback share one critical section so
			// observed counts are strictly monotonic.
			progress(done, n)
		}
		mu.Unlock()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failed.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := run(i); err != nil {
					// Stop claiming new trials, but keep the lowest-index
					// error among those already claimed: the failing claim
					// outranks every index it prevented from running, so
					// the reported error is as deterministic as in the
					// serial path.
					failed.Store(true)
					mu.Lock()
					if i < errIdx {
						errIdx, firstErr = i, err
					}
					mu.Unlock()
					continue
				}
				observe()
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// Shard deterministically partitions the trial grid: shard Index of Count
// owns every Count-th index starting at Index, so N shard runs with the
// same grid cover every trial exactly once regardless of machine or
// timing. Pair it with a durable store — each shard persists its
// partition, and a later merge run assembles the identical figure with
// zero recomputation.
type Shard struct {
	// Index identifies this shard, 0 ≤ Index < Count.
	Index, Count int
	// Inner executes the shard's subset (nil = Pool{}).
	Inner Executor
}

// Execute implements Executor.
func (s Shard) Execute(n int, run func(i int) error, progress func(done, total int)) error {
	if s.Count <= 0 || s.Index < 0 || s.Index >= s.Count {
		return fmt.Errorf("experiments: invalid shard %d/%d (want 0 ≤ index < count)", s.Index, s.Count)
	}
	idx := make([]int, 0, (n+s.Count-1)/s.Count)
	for i := s.Index; i < n; i += s.Count {
		idx = append(idx, i)
	}
	inner := s.Inner
	if inner == nil {
		inner = Pool{}
	}
	return inner.Execute(len(idx), func(j int) error { return run(idx[j]) }, progress)
}

// ParseShard parses the CLI -shard form "i/n" (0-based, e.g. "0/2", "1/2").
func ParseShard(s string) (index, count int, err error) {
	i, n, ok := strings.Cut(s, "/")
	if !ok {
		return 0, 0, fmt.Errorf("experiments: bad shard %q (want i/n, e.g. 0/2)", s)
	}
	index, err1 := strconv.Atoi(i)
	count, err2 := strconv.Atoi(n)
	if err1 != nil || err2 != nil {
		return 0, 0, fmt.Errorf("experiments: bad shard %q (want i/n, e.g. 0/2)", s)
	}
	if count <= 0 || index < 0 || index >= count {
		return 0, 0, fmt.Errorf("experiments: bad shard %q (want 0 ≤ i < n)", s)
	}
	return index, count, nil
}
