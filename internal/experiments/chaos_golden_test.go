package experiments

import (
	"bytes"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/resultstore"
)

// End-to-end degradation contract: whatever the store's filesystem does —
// transient faults, a read-only disk, a crash mid-run — the rendered
// figure bytes must stay identical to the committed golden. The store is
// an accelerator; its failure modes are only allowed to cost persistence,
// never output.

// renderAllQuick renders figures 3..8 at the golden configuration through
// the given store.
func renderAllQuick(t *testing.T, st TrialStore) []byte {
	t.Helper()
	var buf bytes.Buffer
	for n := 3; n <= 8; n++ {
		f, err := RunFigure(n, Config{Seed: 42, Quick: true, Workers: 2, Memo: st})
		if err != nil {
			t.Fatalf("figure %d: %v", n, err)
		}
		f.RenderText(&buf)
	}
	return buf.Bytes()
}

// mustGolden loads the committed -fig all -quick fingerprint.
func mustGolden(t *testing.T) []byte {
	t.Helper()
	golden, err := os.ReadFile("testdata/fig_all_quick.golden")
	if err != nil {
		t.Fatal(err)
	}
	return golden
}

// TestFigAllQuickFaultyStoreInvariant: a store limping through a transient
// fault schedule (failed writes, short writes, failed opens) retries its
// way to a fully-persisted run with golden-identical bytes.
func TestFigAllQuickFaultyStoreInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates six figures")
	}
	golden := mustGolden(t)
	ffs := resultstore.NewFaultFS(nil, resultstore.FaultSpec{
		Seed: 42, FailWriteEvery: 7, ShortWriteEvery: 11, FailOpEvery: 13,
	})
	var warn bytes.Buffer
	st, err := OpenTrialStore(t.TempDir(),
		resultstore.WithFS(ffs),
		resultstore.WithWarnWriter(&warn),
		resultstore.WithSleep(func(time.Duration) {}))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	if got := renderAllQuick(t, st); !bytes.Equal(got, golden) {
		t.Fatalf("faulty-store run diverged from the golden fingerprint\n got sha256 %s\nwant sha256 %s\nfirst divergence at byte %d",
			shortHash(got), shortHash(golden), firstDiff(got, golden))
	}
	stats := st.Stats()
	if stats.Degraded {
		t.Fatalf("store degraded under a transient-only schedule: %+v\n%s", stats, warn.String())
	}
	if stats.Retries == 0 || stats.Recovered == 0 {
		t.Fatalf("schedule injected %d faults but the store retried %d (recovered %d)",
			ffs.Injected(), stats.Retries, stats.Recovered)
	}
	if stats.Appended == 0 || stats.Unpersisted != 0 {
		t.Fatalf("faulty run did not persist everything: %+v", stats)
	}
}

// TestFigAllQuickDegradedStoreInvariant: on a filesystem that permanently
// refuses writes (the read-only/full-disk shape), the run completes with
// golden-identical bytes, one degradation warning, and every result held
// in the memory tier.
func TestFigAllQuickDegradedStoreInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates six figures")
	}
	golden := mustGolden(t)
	ffs := resultstore.NewFaultFS(nil, resultstore.FaultSpec{FailWriteEvery: 1, Permanent: true})
	var warn bytes.Buffer
	st, err := OpenTrialStore(t.TempDir(),
		resultstore.WithFS(ffs),
		resultstore.WithWarnWriter(&warn),
		resultstore.WithSleep(func(time.Duration) {}))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	if got := renderAllQuick(t, st); !bytes.Equal(got, golden) {
		t.Fatalf("degraded-store run diverged from the golden fingerprint\n got sha256 %s\nwant sha256 %s\nfirst divergence at byte %d",
			shortHash(got), shortHash(golden), firstDiff(got, golden))
	}
	stats := st.Stats()
	if !stats.Degraded || stats.Unpersisted == 0 || stats.Entries == 0 {
		t.Fatalf("store should have demoted to memory and kept serving: %+v", stats)
	}
	if got := strings.Count(warn.String(), "degraded to memory-only"); got != 1 {
		t.Fatalf("%d degradation warnings, want exactly 1:\n%s", got, warn.String())
	}
}

// TestFigAllQuickCrashMidRunInvariant: a filesystem that dies partway
// through the sweep costs persistence of the tail, not correctness — the
// bytes stay golden, and a clean re-open replays exactly the acknowledged
// records.
func TestFigAllQuickCrashMidRunInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates six figures")
	}
	golden := mustGolden(t)
	dir := t.TempDir()
	ffs := resultstore.NewFaultFS(nil, resultstore.FaultSpec{CrashAfterBytes: 40_000})
	var warn bytes.Buffer
	st, err := OpenTrialStore(dir,
		resultstore.WithFS(ffs),
		resultstore.WithWarnWriter(&warn),
		resultstore.WithSleep(func(time.Duration) {}))
	if err != nil {
		t.Fatal(err)
	}
	if got := renderAllQuick(t, st); !bytes.Equal(got, golden) {
		t.Fatalf("crash-mid-run output diverged from the golden fingerprint\n got sha256 %s\nwant sha256 %s\nfirst divergence at byte %d",
			shortHash(got), shortHash(golden), firstDiff(got, golden))
	}
	stats := st.Stats()
	st.Close()
	if !stats.Degraded || !ffs.Crashed() {
		t.Fatalf("the crash point was never reached: %+v", stats)
	}

	var rewarn bytes.Buffer
	re, err := openTrialStoreWarn(dir, &rewarn)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if loaded := re.Stats().Loaded; loaded != stats.Appended {
		t.Fatalf("reopen loaded %d records, %d were acknowledged before the crash\n%s",
			loaded, stats.Appended, rewarn.String())
	}
}
