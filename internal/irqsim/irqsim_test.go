package irqsim

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
)

func controller() *Controller {
	return NewController(topology.PaperHost(), DefaultParams(), DefaultChannels())
}

func TestChannelHomesOnSocketZero(t *testing.T) {
	c := controller()
	for _, ch := range c.Channels() {
		if topology.PaperHost().Socket(ch.Home) != 0 {
			t.Fatalf("channel %s homed on socket %d", ch.Spec.Name, topology.PaperHost().Socket(ch.Home))
		}
	}
	if c.Channel(ChanNIC) == c.Channel(ChanDisk) {
		t.Fatal("nic and disk must be distinct channels")
	}
	if c.Channel(99) == nil || c.Channel(-1) == nil {
		t.Fatal("channel indexing must be safe")
	}
}

func TestCompletionCostByDistance(t *testing.T) {
	c := controller()
	disk := c.Channel(ChanDisk)
	home := disk.Home
	same := c.CompletionCost(disk, home)
	local := c.CompletionCost(disk, home+2) // same socket, other core
	remote := c.CompletionCost(disk, 28*2)  // another socket
	if !(same < local && local < remote) {
		t.Fatalf("costs not monotone: %v %v %v", same, local, remote)
	}
	if c.CompletionCost(nil, 5) != c.P.HandleCost {
		t.Fatal("nil channel must cost the base handle only")
	}
}

func TestCostScaleWeighsChannels(t *testing.T) {
	c := controller()
	nic := c.Channel(ChanNIC)
	disk := c.Channel(ChanDisk)
	// Far CPU for both; NIC completions are lighter.
	far := 80
	if c.CompletionCost(nic, far) >= c.CompletionCost(disk, far) {
		t.Fatal("NIC completion should be cheaper than a disk completion")
	}
}

func TestQueuedDeviceSerializes(t *testing.T) {
	c := controller()
	disk := c.Channel(ChanDisk)
	service := disk.Spec.ServiceTime
	d1 := c.CompletionDelay(disk, 0, 0, 1)
	d2 := c.CompletionDelay(disk, 0, 0, 1)
	d3 := c.CompletionDelay(disk, 0, 0, 1)
	if d1 != service || d2 != 2*service || d3 != 3*service {
		t.Fatalf("queueing broken: %v %v %v", d1, d2, d3)
	}
	if disk.Served != 3 || disk.QueuedFor != 3*service {
		t.Fatalf("stats: served=%d queued=%v", disk.Served, disk.QueuedFor)
	}
}

func TestQueuedDeviceIdleGap(t *testing.T) {
	c := controller()
	disk := c.Channel(ChanDisk)
	c.CompletionDelay(disk, 0, 0, 1)
	// Next request arrives long after the device drained: no queueing.
	late := sim.Time(10 * sim.Second)
	if d := c.CompletionDelay(disk, late, 0, 1); d != disk.Spec.ServiceTime {
		t.Fatalf("idle device should serve immediately, got %v", d)
	}
}

func TestServiceScale(t *testing.T) {
	c := controller()
	disk := c.Channel(ChanDisk)
	d := c.CompletionDelay(disk, 0, 0, 2.0)
	if d != 2*disk.Spec.ServiceTime {
		t.Fatalf("service scale: %v", d)
	}
}

func TestLatencyOnlyChannel(t *testing.T) {
	c := controller()
	nic := c.Channel(ChanNIC)
	lat := 300 * sim.Microsecond
	if d := c.CompletionDelay(nic, 0, lat, 1); d != lat {
		t.Fatalf("latency-only channel: %v", d)
	}
	// Unlimited parallelism: repeated IOs don't queue.
	if d := c.CompletionDelay(nic, 0, lat, 1); d != lat {
		t.Fatal("NIC must not serialize")
	}
	if nic.Served != 2 {
		t.Fatal("NIC served count")
	}
}

func TestDefaultChannelsWhenEmpty(t *testing.T) {
	c := NewController(topology.SmallHost16(), DefaultParams(), nil)
	if len(c.Channels()) != 2 {
		t.Fatalf("default channels: %d", len(c.Channels()))
	}
}

func TestCompletionAffinityCounters(t *testing.T) {
	topo := topology.PaperHost()
	c := NewController(topo, DefaultParams(), DefaultChannels())
	ch := c.Channel(ChanDisk)
	home := ch.Home
	c.CompletionCost(ch, home)                     // warm
	c.CompletionCost(ch, home+topo.ThreadsPerCore) // same socket
	c.CompletionCost(ch, topo.NumCPUs()-1)         // cross socket
	if ch.WarmHits != 1 || ch.SocketHits != 1 || ch.RemoteHits != 1 {
		t.Fatalf("counters: warm=%d llc=%d remote=%d", ch.WarmHits, ch.SocketHits, ch.RemoteHits)
	}
	if ch.CostTime <= 0 {
		t.Fatal("completion CPU time not accumulated")
	}
	// A remote completion must cost more than a warm one.
	warm := NewController(topo, DefaultParams(), DefaultChannels()).Channel(ChanDisk)
	remote := NewController(topo, DefaultParams(), DefaultChannels()).Channel(ChanDisk)
	cw := NewController(topo, DefaultParams(), DefaultChannels())
	cr := NewController(topo, DefaultParams(), DefaultChannels())
	if cw.CompletionCost(warm, warm.Home) >= cr.CompletionCost(remote, topo.NumCPUs()-1) {
		t.Fatal("remote completion must cost more than warm")
	}
}

func TestRenderIOStat(t *testing.T) {
	topo := topology.PaperHost()
	c := NewController(topo, DefaultParams(), DefaultChannels())
	ch := c.Channel(ChanDisk)
	c.CompletionDelay(ch, 0, sim.Millisecond, 1)
	c.CompletionDelay(ch, 0, sim.Millisecond, 1) // queues behind the first
	c.CompletionCost(ch, ch.Home)
	c.CompletionCost(ch, topo.NumCPUs()-1)
	var buf bytes.Buffer
	RenderIOStat(&buf, c.Channels())
	out := buf.String()
	for _, want := range []string{"device", "blk0", "nic0", "warm%", "remote%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("iostat missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "50.0%") {
		t.Fatalf("expected a 50/50 warm/remote split:\n%s", out)
	}
	// A nil channel in the slice is skipped, not a panic.
	RenderIOStat(&buf, []*Channel{nil})
}
