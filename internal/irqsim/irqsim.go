// Package irqsim models the IO path the paper identifies as the reason
// pinning helps IO-bound applications (§III-B3, §IV-C): every IO operation
// completes as an IRQ on the device's home CPU, and the woken task then pays
// a cost proportional to its distance from that CPU (cache lines holding the
// IO buffers, IRQ re-steering, reestablishing IO channels). A scheduler that
// is oblivious to IO affinity (bare metal, vanilla mode) scatters tasks far
// from their IRQ homes; pinning near the home CPU amortizes the path — to
// the point that pinned containers can beat bare metal for extreme IO
// volumes (Fig 6).
//
// Channels may be queued devices (a disk with a service time per request,
// modeling the paper's RAID1 HDD pair) or latency-only sources (a NIC).
package irqsim

import (
	"repro/internal/sim"
	"repro/internal/topology"
)

// Params calibrate the IRQ cost model.
type Params struct {
	// HandleCost is the fixed kernel cost of taking one interrupt and
	// running the handler + softirq.
	HandleCost sim.Time
	// SameSocketCost is added when the woken task runs on the IRQ home
	// socket but not the home CPU (LLC-local buffer pull).
	SameSocketCost sim.Time
	// CrossSocketCost is added when the woken task runs on another socket
	// (remote buffer pull + IRQ re-steering + channel reestablishment).
	CrossSocketCost sim.Time
}

// DefaultParams returns the calibrated defaults. The costs are the full
// CPU-side completion path — interrupt, softirq, buffer copy out of the DMA
// region, page-cache bookkeeping and task wake — which is why they are
// orders of magnitude above a bare interrupt: this path is what the paper's
// IO-affinity pinning optimizes (§IV-C).
func DefaultParams() Params {
	return Params{
		HandleCost:      150 * sim.Microsecond,
		SameSocketCost:  400 * sim.Microsecond,
		CrossSocketCost: 2500 * sim.Microsecond,
	}
}

// ChannelSpec describes one IO event source.
type ChannelSpec struct {
	Name string
	// ServiceTime > 0 makes the channel a queued device serving one request
	// at a time (HDD-style); 0 makes it latency-only (NIC-style, unlimited
	// parallelism).
	ServiceTime sim.Time
	// CostScale weighs the completion-path CPU costs: disk completions move
	// big buffers (scale 1), NIC interrupts move packets (scale < 1).
	CostScale float64
}

// Channel is one IO event source instance. Its Home CPU is where its IRQ
// vector is steered.
type Channel struct {
	Spec ChannelSpec
	Home int

	busyUntil sim.Time
	Served    uint64
	QueuedFor sim.Time // cumulative device queueing delay

	// Completion-affinity counters (the iostat/irqtop analog of §III-A):
	// how many completions were delivered warm (task on the home core),
	// LLC-local, or cross-socket, and the total CPU time the completion
	// path consumed.
	WarmHits   uint64
	SocketHits uint64
	RemoteHits uint64
	CostTime   sim.Time
}

// Controller computes per-IO costs and device queueing for one machine.
type Controller struct {
	P        Params
	topo     *topology.Topology
	channels []*Channel
	// Embedded backing for the default two-channel device set (NIC + disk):
	// controllers are built per trial, so the standard shape constructs
	// without per-channel allocations.
	chanBack [2]Channel
	chanPtrs [2]*Channel
}

// DefaultChannels is the standard device set: one NIC (latency-only) and one
// disk (queued, HDD RAID1-like service time).
func DefaultChannels() []ChannelSpec {
	return []ChannelSpec{
		{Name: "nic0", ServiceTime: 0, CostScale: 0.3},
		{Name: "blk0", ServiceTime: 9 * sim.Millisecond, CostScale: 1.0},
	}
}

// Conventional channel indices used by the workload models.
const (
	ChanNIC  = 0
	ChanDisk = 1
)

// defaultSpecs is the shared spec slice the controller paths use internally,
// so per-trial construction/reset of the standard device set allocates no
// fresh spec slice. Read-only.
var defaultSpecs = DefaultChannels()

// NewController returns an IRQ controller; channels' homes are assigned
// round-robin over the first physical cores of socket 0, matching default
// irqbalance placement on an otherwise idle host.
func NewController(topo *topology.Topology, p Params, specs []ChannelSpec) *Controller {
	c := &Controller{P: p, topo: topo}
	c.init(p, specs)
	return c
}

// Reset returns the controller to the state NewController(topo, p, specs)
// would construct, re-initializing the channel structs in place: all device
// queue state and completion-affinity counters restart from zero.
func (c *Controller) Reset(p Params, specs []ChannelSpec) {
	c.init(p, specs)
}

func (c *Controller) init(p Params, specs []ChannelSpec) {
	c.P = p
	if len(specs) == 0 {
		specs = defaultSpecs
	}
	// One backing array for the channel structs — the embedded buffers for
	// the standard two-channel set, a single allocation past that. A Reset
	// whose channel count already matches rewrites the existing structs.
	if len(specs) == len(c.channels) {
		for i, spec := range specs {
			home := (i * c.topo.ThreadsPerCore) % c.topo.NumCPUs()
			*c.channels[i] = Channel{Spec: spec, Home: home}
		}
		return
	}
	back := c.chanBack[:]
	c.channels = c.chanPtrs[:0]
	if len(specs) > len(c.chanBack) {
		back = make([]Channel, len(specs))
		c.channels = make([]*Channel, 0, len(specs))
	}
	for i, spec := range specs {
		home := (i * c.topo.ThreadsPerCore) % c.topo.NumCPUs()
		back[i] = Channel{Spec: spec, Home: home}
		c.channels = append(c.channels, &back[i])
	}
}

// Channels returns the controller's channels.
func (c *Controller) Channels() []*Channel { return c.channels }

// Channel returns channel i (modulo the channel count), so workloads can
// spread IOs across sources without bounds checks.
func (c *Controller) Channel(i int) *Channel {
	if len(c.channels) == 0 {
		return nil
	}
	if i < 0 {
		i = 0
	}
	return c.channels[i%len(c.channels)]
}

// CompletionDelay computes when an IO issued now on ch completes, given the
// workload-declared extra latency and a scale on device service time
// (paravirtual IO). Queued channels serialize requests.
func (c *Controller) CompletionDelay(ch *Channel, now, latency sim.Time, serviceScale float64) sim.Time {
	if ch == nil {
		return latency
	}
	if ch.Spec.ServiceTime <= 0 {
		ch.Served++
		return latency
	}
	service := sim.Time(float64(ch.Spec.ServiceTime) * serviceScale)
	start := now + latency
	if ch.busyUntil > start {
		ch.QueuedFor += ch.busyUntil - start
		start = ch.busyUntil
	}
	ch.busyUntil = start + service
	ch.Served++
	return ch.busyUntil - now
}

// CompletionCost returns the CPU cost charged to a task woken by an IO
// completion on ch when the task is dispatched on taskCPU.
func (c *Controller) CompletionCost(ch *Channel, taskCPU int) sim.Time {
	cost := c.P.HandleCost
	if ch == nil {
		return cost
	}
	switch c.topo.DistanceBetween(ch.Home, taskCPU) {
	case topology.SameCPU, topology.SMTSibling:
		ch.WarmHits++
	case topology.SameSocket:
		cost += c.P.SameSocketCost
		ch.SocketHits++
	case topology.CrossSocket:
		cost += c.P.CrossSocketCost
		ch.RemoteHits++
	}
	if ch.Spec.CostScale > 0 {
		cost = sim.Time(float64(cost) * ch.Spec.CostScale)
	}
	ch.CostTime += cost
	return cost
}
