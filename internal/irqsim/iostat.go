package irqsim

import (
	"fmt"
	"io"

	"repro/internal/sim"
)

// RenderIOStat writes an iostat/irqtop-style per-channel report: requests
// served, device queueing, and — the §IV-C signal — where completions
// landed relative to the IRQ home (warm / LLC-local / cross-socket) with
// the CPU time the completion path burned. A vanilla deployment shows a
// cold, remote-heavy profile; an IRQ-affinity-pinned one is warm.
func RenderIOStat(w io.Writer, chs []*Channel) {
	fmt.Fprintf(w, "%-8s %-5s %9s %12s %7s %7s %7s %12s\n",
		"device", "home", "served", "avg-queue", "warm%", "llc%", "remote%", "cpu-time")
	for _, ch := range chs {
		if ch == nil {
			continue
		}
		var avgQ sim.Time
		if ch.Served > 0 {
			avgQ = ch.QueuedFor / sim.Time(ch.Served)
		}
		hits := ch.WarmHits + ch.SocketHits + ch.RemoteHits
		pct := func(n uint64) float64 {
			if hits == 0 {
				return 0
			}
			return float64(n) / float64(hits) * 100
		}
		fmt.Fprintf(w, "%-8s %-5d %9d %12v %6.1f%% %6.1f%% %6.1f%% %12v\n",
			ch.Spec.Name, ch.Home, ch.Served, avgQ,
			pct(ch.WarmHits), pct(ch.SocketHits), pct(ch.RemoteHits), ch.CostTime)
	}
}
