// Package workload models the paper's four application types (Table I) as
// task programs for the simulated machines:
//
//	Transcode — FFmpeg codec change: CPU-bound, multi-threaded (≤16), small
//	            memory footprint, one process.
//	MPISearch — Open MPI parallel search: communication-dominated, one rank
//	            per core, ring exchange + tree allreduce per round.
//	Web       — WordPress under JMeter: 1,000 simultaneous short processes,
//	            each with ≥3 IRQs (socket read, disk, socket write).
//	NoSQL     — Cassandra under cassandra-stress: one process, 100 threads,
//	            1,000 operations (25% writes) in one second, extreme IO.
//
// Each workload's Spawn populates a deployment environment and returns an
// Instance that extracts the paper's metric for that figure after the run.
package workload

import (
	"fmt"

	"repro/internal/cgroups"
	"repro/internal/machine"
	"repro/internal/topology"
)

// Env is where a workload's tasks live: the deployment's machine plus the
// container group / affinity restrictions of the platform.
type Env struct {
	M        *machine.Machine
	Group    *cgroups.Group
	Affinity topology.CPUSet
	// Cores is the instance size (Table II).
	Cores int
	// MemGB is the instance memory (Table II: 4 GB per core).
	MemGB int
}

// EnvFor builds an Env from deployment pieces, applying the paper's
// instance-type memory sizing when memGB is 0.
func EnvFor(m *machine.Machine, group *cgroups.Group, affinity topology.CPUSet, cores int) Env {
	return Env{M: m, Group: group, Affinity: affinity, Cores: cores, MemGB: 4 * cores}
}

// Instance is one spawned workload run; Metric is valid after machine.Run.
type Instance interface {
	// Metric returns the figure's metric in seconds (mean execution time or
	// mean response time, per the paper's per-figure definition).
	Metric(res machine.Result) float64
}

// Workload spawns tasks for one run.
type Workload interface {
	Name() string
	Spawn(env Env) Instance
}

// makespanMetric reports the job completion time (FFmpeg / MPI figures).
type makespanMetric struct{}

func (makespanMetric) Metric(res machine.Result) float64 { return res.Makespan.Seconds() }

// meanResponseMetric reports mean per-task response (WordPress figure).
type meanResponseMetric struct{}

func (meanResponseMetric) Metric(res machine.Result) float64 { return res.MeanResponse.Seconds() }

func checkEnv(env Env, name string) {
	if env.M == nil {
		panic(fmt.Sprintf("workload %s: nil machine", name))
	}
	if env.Cores <= 0 {
		panic(fmt.Sprintf("workload %s: non-positive cores", name))
	}
}
