package workload

import (
	"reflect"
	"strings"
	"testing"
)

func TestDriverRegistryCoversAllClasses(t *testing.T) {
	names := DriverNames()
	want := []string{"cassandra", "ffmpeg", "microservice", "mpi", "wordpress"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("DriverNames() = %v, want %v (sorted)", names, want)
	}
	for _, name := range names {
		d, err := NewDriver(name)
		if err != nil {
			t.Fatal(err)
		}
		if d.DriverName() != name {
			t.Fatalf("driver %s reports class %s", name, d.DriverName())
		}
		// ScaleQuick must be shape-preserving: same class, same type.
		q := d.ScaleQuick()
		if q.DriverName() != name || reflect.TypeOf(q) != reflect.TypeOf(d) {
			t.Fatalf("driver %s quick-scales into %T", name, q)
		}
	}
}

func TestDriverAliases(t *testing.T) {
	for alias, canon := range map[string]string{
		"transcode": "ffmpeg",
		"openmpi":   "mpi",
		"web":       "wordpress",
		"WEB":       "wordpress",
		"nosql":     "cassandra",
		"rpc":       "microservice",
		"FFmpeg":    "ffmpeg",
	} {
		got, err := CanonicalDriver(alias)
		if err != nil {
			t.Fatalf("%s: %v", alias, err)
		}
		if got != canon {
			t.Fatalf("CanonicalDriver(%s) = %s, want %s", alias, got, canon)
		}
	}
	_, err := CanonicalDriver("nope")
	if err == nil {
		t.Fatal("unknown driver must fail")
	}
	// The failure must carry the sorted driver listing for CLI errors.
	for _, name := range DriverNames() {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q misses %s", err, name)
		}
	}
}

func TestUnmarshalDriverOverlaysDefaults(t *testing.T) {
	d, err := UnmarshalDriver("ffmpeg", []byte(`{"Segments": 30}`))
	if err != nil {
		t.Fatal(err)
	}
	w := d.(Transcode)
	def := DefaultTranscode()
	if w.Segments != 30 {
		t.Fatalf("override lost: %+v", w)
	}
	if w.TotalWork != def.TotalWork || w.Threads != def.Threads {
		t.Fatal("unspecified fields must keep defaults")
	}
	if _, err := UnmarshalDriver("ffmpeg", []byte(`{"Segmints": 30}`)); err == nil {
		t.Fatal("unknown parameter fields must be rejected")
	}
	if _, err := UnmarshalDriver("ffmpeg", nil); err != nil {
		t.Fatalf("nil params must yield defaults: %v", err)
	}
}

// TestScaleQuickMatchesFigureScaling pins each driver's Quick scaling to
// the historical per-figure divisors.
func TestScaleQuickMatchesFigureScaling(t *testing.T) {
	tr := DefaultTranscode().ScaleQuick().(Transcode)
	if tr.TotalWork != DefaultTranscode().TotalWork/8 ||
		tr.PerProcessOverhead != DefaultTranscode().PerProcessOverhead/8 {
		t.Fatalf("ffmpeg quick scaling diverged: %+v", tr)
	}
	mp := DefaultMPISearch().ScaleQuick().(MPISearch)
	if mp.Rounds != DefaultMPISearch().Rounds/8 ||
		mp.TotalCompute != DefaultMPISearch().TotalCompute/8 ||
		mp.ScatterBytes != DefaultMPISearch().ScatterBytes/8 {
		t.Fatalf("mpi quick scaling diverged: %+v", mp)
	}
	wb := DefaultWeb().ScaleQuick().(Web)
	if wb.Requests != DefaultWeb().Requests/4 {
		t.Fatalf("wordpress quick scaling diverged: %+v", wb)
	}
	if !reflect.DeepEqual(DefaultNoSQL().ScaleQuick(), Driver(DefaultNoSQL())) {
		t.Fatal("cassandra quick scaling must be a no-op (the overload regime is the figure)")
	}
	ms := DefaultMicroservice().ScaleQuick().(Microservice)
	if ms.Requests != DefaultMicroservice().Requests/4 {
		t.Fatalf("microservice quick scaling diverged: %+v", ms)
	}
}

func TestMarshalDriverParamsRoundTrips(t *testing.T) {
	for _, name := range DriverNames() {
		d, err := NewDriver(name)
		if err != nil {
			t.Fatal(err)
		}
		data, err := MarshalDriverParams(d)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		back, err := UnmarshalDriver(name, data)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(back, d) {
			t.Fatalf("%s: round-trip diverged:\n%+v\n%+v", name, back, d)
		}
	}
}
