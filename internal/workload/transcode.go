package workload

import (
	"fmt"
	"sync"

	"repro/internal/sched"
	"repro/internal/sim"
)

// segThNames interns the per-(segment, thread) task names: a sweep spawns
// the same few hundred distinct names millions of times, and Sprintf was the
// single biggest allocation site of the quick-figure pipeline.
var segThNames struct {
	sync.Mutex
	m map[[2]int16]string
}

func segThName(seg, th int) string {
	if seg > 1<<15-1 || th > 1<<15-1 {
		return fmt.Sprintf("ffmpeg-s%d-t%d", seg, th) // unrealistic; stay correct
	}
	key := [2]int16{int16(seg), int16(th)}
	segThNames.Lock()
	defer segThNames.Unlock()
	n, ok := segThNames.m[key]
	if !ok {
		if segThNames.m == nil {
			segThNames.m = make(map[[2]int16]string)
		}
		n = fmt.Sprintf("ffmpeg-s%d-t%d", seg, th)
		segThNames.m[key] = n
	}
	return n
}

// transcodeProgs is one interned set of the three thread programs of a
// transcode job (serial-carrying first thread, heavy encoder, light helper).
// A sweep re-derives the same few (heavyWork, lightWork, serial) splits for
// millions of trials, and boxing an ActionList into a Program allocates —
// so the boxed interfaces are built once per distinct split and shared.
// ActionList programs are stateless (the cursor lives on the Task), which is
// what makes sharing across trials and worker goroutines safe.
var transcodeProgs struct {
	sync.Mutex
	m map[[3]sim.Time]*transcodeProgSet
}

type transcodeProgSet struct {
	first, heavy, light sched.Program
}

func transcodeProgsFor(heavyWork, lightWork, serial sim.Time) *transcodeProgSet {
	key := [3]sim.Time{heavyWork, lightWork, serial}
	transcodeProgs.Lock()
	defer transcodeProgs.Unlock()
	ps, ok := transcodeProgs.m[key]
	if !ok {
		if transcodeProgs.m == nil {
			transcodeProgs.m = make(map[[3]sim.Time]*transcodeProgSet)
		}
		ps = &transcodeProgSet{
			first: sched.ActionList{sched.Compute(heavyWork + serial)},
			heavy: sched.ActionList{sched.Compute(heavyWork)},
			light: sched.ActionList{sched.Compute(lightWork)},
		}
		transcodeProgs.m[key] = ps
	}
	return ps
}

// Transcode models the FFmpeg codec-change workload (§III-B1): a CPU-bound
// multi-threaded process with a small (~50 MB) footprint. FFmpeg "can
// utilize up to 16 CPU cores", so the process always spawns Threads worker
// threads regardless of the instance size — on small instances the threads
// oversubscribe the cores, which is what exposes the container accounting
// overheads.
//
// Calibration: frame dependencies limit the effective parallelism of the
// codec change — of the 16 threads only HeavyThreads carry real encoding
// work; the rest (demux, audio, filter helpers) are light. Together with a
// small serial fraction this reproduces FFmpeg's sub-linear scaling
// (roughly 4× from 2 to 16 cores in Fig 3). PerProcessOverhead is the
// fixed startup cost of one ffmpeg process (codec/context init and file
// handling), which is what makes transcoding thirty 1-second files more
// expensive than one 30-second file (Fig 8).
type Transcode struct {
	// TotalWork is the nominal single-core transcode time of all segments.
	TotalWork sim.Time
	// Threads is FFmpeg's worker-thread count (16 in the paper's runs).
	Threads int
	// HeavyThreads of them carry the encoding work; the others are light
	// helpers (LightWorkFrac of a heavy thread's work each).
	HeavyThreads  int
	LightWorkFrac float64
	// SerialFrac is the non-parallelizable fraction, carried by thread 0.
	SerialFrac float64
	// PerProcessOverhead is per-segment fixed startup work.
	PerProcessOverhead sim.Time
	// Segments splits the source video into independent processes running
	// in parallel (Fig 8: 1 large vs 30 small tasks).
	Segments int
}

// DefaultTranscode is the Fig 3 configuration: one 30 MB HD segment,
// AVC→HEVC.
func DefaultTranscode() Transcode {
	return Transcode{
		TotalWork:          sim.FromSeconds(71),
		Threads:            16,
		HeavyThreads:       10,
		LightWorkFrac:      0.05,
		SerialFrac:         0.03,
		PerProcessOverhead: sim.FromSeconds(3),
		Segments:           1,
	}
}

// Name implements Workload.
func (w Transcode) Name() string {
	if w.Segments > 1 {
		return fmt.Sprintf("ffmpeg-%dsegments", w.Segments)
	}
	return "ffmpeg"
}

// Spawn implements Workload: Segments processes × Threads threads, all
// arriving at t=0 (the paper launches the job and measures its execution
// time).
func (w Transcode) Spawn(env Env) Instance {
	checkEnv(env, w.Name())
	segments := w.Segments
	if segments <= 0 {
		segments = 1
	}
	threads := w.Threads
	if threads <= 0 {
		threads = 16
	}
	heavy := w.HeavyThreads
	if heavy <= 0 || heavy > threads {
		heavy = threads
	}
	light := threads - heavy
	perSegment := w.TotalWork/sim.Time(segments) + w.PerProcessOverhead
	serial := sim.Time(float64(perSegment) * w.SerialFrac)
	// Split the parallel portion: `heavy` encoder threads plus light
	// helpers doing LightWorkFrac of a heavy thread's work each.
	parallel := perSegment - serial
	heavyWork := sim.Time(float64(parallel) / (float64(heavy) + w.LightWorkFrac*float64(light)))
	lightWork := sim.Time(float64(heavyWork) * w.LightWorkFrac)
	// Three shared programs cover every thread (serial-carrying, heavy,
	// light) — interned per distinct work split, so steady-state spawning
	// builds no per-job programs at all — and the whole job arrives as one
	// event batch.
	progs := transcodeProgsFor(heavyWork, lightWork, serial)
	specs := env.M.SpecScratch(segments * threads)
	for seg := 0; seg < segments; seg++ {
		for th := 0; th < threads; th++ {
			var work sim.Time
			var prog sched.Program
			switch {
			case th == 0:
				work, prog = heavyWork+serial, progs.first
			case th < heavy:
				work, prog = heavyWork, progs.heavy
			default:
				work, prog = lightWork, progs.light
			}
			if work <= 0 {
				continue
			}
			specs = append(specs, sched.TaskSpec{
				Name:        segThName(seg, th),
				Group:       env.Group,
				Proc:        seg + 1, // threads of one segment share a process
				Affinity:    env.Affinity,
				WorkingSet:  1.0,
				MemBound:    0.9, // transcoding streams frames through memory
				VMTaxWeight: 1.0, // large-working-set compute: full EPT tax
				Program:     prog,
			})
		}
	}
	env.M.SpawnBatch(specs, 0)
	return makespanMetric{}
}
