package workload

import (
	"fmt"

	"repro/internal/sched"
	"repro/internal/sim"
)

// MPISearch models the paper's MPI Search application (§III-B2): one rank
// per instance core, iterating rounds of local compute, a halo exchange with
// the right neighbor (payload shrinks as ranks grow, like a partitioned
// search space), and a binary-tree allreduce ("found?" consensus). The
// communication part dominates the computation part, as the paper arranges.
//
// Platform differentiation comes from the messaging path: bare-metal and
// intra-guest ranks use the shared-memory transport; containerized ranks pay
// the network-namespace (Docker bridge) path, which is why containers are
// the worst platform for MPI regardless of pinning (Fig 4), while the
// hypervisor's intra-VM path keeps VMs near bare metal once communication
// dominates.
type MPISearch struct {
	// Ranks is the number of MPI processes; the paper runs one per core, so
	// Spawn uses env.Cores when Ranks is 0.
	Ranks int
	// Rounds is the number of search iterations.
	Rounds int
	// TotalCompute is the nominal single-core compute across all rounds.
	TotalCompute sim.Time
	// DataPerRound is the total halo-exchange volume per round, split over
	// ranks.
	DataPerRound int64
	// ScatterBytes is the one-time initial scatter volume.
	ScatterBytes int64
	// AllreduceEvery runs the tree consensus every k-th round (Open MPI
	// programs typically batch their termination checks).
	AllreduceEvery int
}

// DefaultMPISearch is the Fig 4 configuration.
func DefaultMPISearch() MPISearch {
	return MPISearch{
		Rounds:         1000,
		TotalCompute:   sim.FromSeconds(12),
		DataPerRound:   8 << 20,
		ScatterBytes:   64 << 20,
		AllreduceEvery: 4,
	}
}

// Name implements Workload.
func (w MPISearch) Name() string { return "mpi-search" }

// phases of one round, per rank.
const (
	mpiScatter = iota
	mpiCompute
	mpiNeighbor
	mpiReduce
	mpiBcastRecv
	mpiBcast
	mpiDone
)

// mpiStep is one ordered communication step: either emit a send or consume
// n messages. Order matters — a rank must post its halo send before blocking
// on its neighbor's, or the ring deadlocks.
type mpiStep struct {
	send sched.Action
	recv int
}

type mpiRank struct {
	w          *MPISearch
	rank       int
	ranks      int
	peers      []*sched.Task
	round      int
	phase      int
	queue      []mpiStep
	perRound   sim.Time
	blockBytes int64
}

func (r *mpiRank) kids() []int {
	var k []int
	if c := 2*r.rank + 1; c < r.ranks {
		k = append(k, c)
	}
	if c := 2*r.rank + 2; c < r.ranks {
		k = append(k, c)
	}
	return k
}

func (r *mpiRank) pushSend(to int, bytes int64) {
	r.queue = append(r.queue, mpiStep{send: sched.Send(r.peers[to], bytes)})
}

func (r *mpiRank) pushRecv(n int) {
	if n > 0 {
		r.queue = append(r.queue, mpiStep{recv: n})
	}
}

// Next implements sched.Program as a per-rank state machine.
func (r *mpiRank) Next(t *sched.Task) sched.Action {
	for len(r.queue) > 0 {
		head := &r.queue[0]
		if head.recv > 0 {
			if _, ok := t.TakeMessage(); ok {
				head.recv--
				continue
			}
			return sched.Recv()
		}
		a := head.send
		r.queue = r.queue[1:]
		if a.Kind == sched.ActSend {
			return a
		}
	}
	switch r.phase {
	case mpiScatter:
		r.phase = mpiCompute
		if r.rank == 0 {
			per := r.w.ScatterBytes / int64(r.ranks)
			for i := 1; i < r.ranks; i++ {
				r.pushSend(i, per)
			}
		} else {
			r.pushRecv(1)
		}
		return r.Next(t)
	case mpiCompute:
		r.phase = mpiNeighbor
		return sched.Compute(r.perRound)
	case mpiNeighbor:
		// Post the halo send to the right neighbor, then consume the
		// left's.
		if r.ranks > 1 {
			r.pushSend((r.rank+1)%r.ranks, r.blockBytes)
			r.pushRecv(1)
		}
		every := r.w.AllreduceEvery
		if every <= 0 {
			every = 1
		}
		if (r.round+1)%every == 0 || r.round+1 >= r.w.Rounds {
			r.phase = mpiReduce
		} else {
			r.phase = mpiBcast // skip the tree this round
		}
		return r.Next(t)
	case mpiReduce:
		r.phase = mpiBcastRecv
		kids := r.kids()
		r.pushRecv(len(kids)) // children's partial results first
		if r.rank != 0 {
			r.pushSend((r.rank-1)/2, 64)
		}
		return r.Next(t)
	case mpiBcastRecv:
		if r.rank != 0 {
			// Consume the parent's broadcast before forwarding.
			r.pushRecv(1)
		}
		for _, k := range r.kids() {
			r.pushSend(k, 64)
		}
		r.phase = mpiBcast
		return r.Next(t)
	case mpiBcast:
		r.round++
		if r.round >= r.w.Rounds {
			r.phase = mpiDone
		} else {
			r.phase = mpiCompute
		}
		return r.Next(t)
	case mpiDone:
		return sched.Done()
	}
	panic(fmt.Sprintf("mpi rank %d: bad phase %d", r.rank, r.phase))
}

// Spawn implements Workload.
func (w MPISearch) Spawn(env Env) Instance {
	checkEnv(env, w.Name())
	ranks := w.Ranks
	if ranks <= 0 {
		ranks = env.Cores
	}
	rounds := w.Rounds
	if rounds <= 0 {
		rounds = 1
	}
	peers := make([]*sched.Task, ranks)
	for i := 0; i < ranks; i++ {
		prog := &mpiRank{
			w:          &w,
			rank:       i,
			ranks:      ranks,
			peers:      peers,
			perRound:   w.TotalCompute / sim.Time(int64(ranks)*int64(rounds)),
			blockBytes: w.DataPerRound / int64(ranks),
		}
		peers[i] = env.M.Spawn(sched.TaskSpec{
			Name:        fmt.Sprintf("mpi-rank%d", i),
			Group:       env.Group,
			Affinity:    env.Affinity,
			WorkingSet:  0.5,
			MemBound:    0.2,  // integer search is mostly cache-resident
			VMTaxWeight: 0.35, // light EPT pressure
			Program:     prog,
		}, 0)
	}
	return makespanMetric{}
}
