package workload

import (
	"fmt"

	"repro/internal/irqsim"
	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/sim"
)

// NoSQL models the Cassandra-under-cassandra-stress workload (§III-B4): one
// big multi-threaded process (100 client-serving threads) receiving 1,000
// synthesized operations within one second, 25% writes / 75% reads, under
// extreme IO pressure on an LSM storage engine:
//
//   - writes append to the commit log (queued disk) and amortize a
//     flush/compaction IO;
//   - reads miss the page cache with a probability that falls as instance
//     memory grows (Table II gives 4 GB per core, so bigger instances cache
//     more of the dataset — the main reason Fig 6 improves with size);
//     a miss touches multiple SSTable levels.
//
// The metric is the mean response time of the 1,000 operations measured from
// their submission times. Instances whose memory is below ThrashMemGB swap
// (the paper's Large "out of range" case); the experiment layer flags them.
type NoSQL struct {
	Threads   int
	Ops       int
	WriteFrac float64
	// Window is the submission window (1 s in the paper).
	Window sim.Time
	// OpCPU is the base compute per operation (split around the IO).
	OpCPU sim.Time
	// SocketLatency is the client NIC latency per op.
	SocketLatency sim.Time
	// DatasetGB and the instance's MemGB set the read miss probability:
	// max(MinMiss, 1 - CacheEff×mem/dataset).
	DatasetGB float64
	CacheEff  float64
	MinMiss   float64
	// ReadMissIOs is how many SSTable-level disk reads one miss costs.
	ReadMissIOs int
	// CompactProb is the probability a write pays an extra compaction IO.
	CompactProb float64
	// ThrashMemGB marks instances that swap; their IO and CPU inflate.
	ThrashMemGB    int
	ThrashIOScale  int
	ThrashCPUScale float64
}

// DefaultNoSQL is the Fig 6 configuration.
func DefaultNoSQL() NoSQL {
	return NoSQL{
		Threads:        100,
		Ops:            1000,
		WriteFrac:      0.25,
		Window:         sim.Second,
		OpCPU:          60 * sim.Millisecond,
		SocketLatency:  200 * sim.Microsecond,
		DatasetGB:      20,
		CacheEff:       0.8,
		MinMiss:        0.02,
		ReadMissIOs:    3,
		CompactProb:    0.8,
		ThrashMemGB:    12,
		ThrashIOScale:  4,
		ThrashCPUScale: 3,
	}
}

// Name implements Workload.
func (w NoSQL) Name() string { return "cassandra" }

// MissProb returns the read page-cache miss probability for an instance
// memory size.
func (w NoSQL) MissProb(memGB int) float64 {
	p := 1 - w.CacheEff*float64(memGB)/w.DatasetGB
	if p < w.MinMiss {
		p = w.MinMiss
	}
	return p
}

// Thrashing reports whether an instance memory size falls into the paper's
// overloaded/thrashed regime (the Large instance in Fig 6).
func (w NoSQL) Thrashing(memGB int) bool { return memGB < w.ThrashMemGB }

type nosqlOp struct {
	arrival sim.Time
	write   bool
	diskIOs int
	cpu     sim.Time
}

type nosqlInstance struct {
	responses []sim.Time
}

// Metric implements Instance: mean op response time in seconds.
func (ni *nosqlInstance) Metric(machine.Result) float64 {
	if len(ni.responses) == 0 {
		return 0
	}
	var sum sim.Time
	for _, r := range ni.responses {
		sum += r
	}
	return (sum / sim.Time(len(ni.responses))).Seconds()
}

type nosqlThread struct {
	m       *machine.Machine
	w       *NoSQL
	inst    *nosqlInstance
	ops     []nosqlOp
	idx     int
	step    int
	iosLeft int
}

// Next implements sched.Program: per op — wait for its submission time, take
// the request off the socket, compute, do the op's disk IOs, compute, answer
// on the socket.
func (th *nosqlThread) Next(t *sched.Task) sched.Action {
	if th.idx >= len(th.ops) {
		return sched.Done()
	}
	op := th.ops[th.idx]
	switch th.step {
	case 0:
		th.step = 1
		if wait := op.arrival - th.m.Eng.Now(); wait > 0 {
			return sched.Sleep(wait)
		}
		return th.Next(t)
	case 1:
		th.step = 2
		return sched.IO(irqsim.ChanNIC, th.w.SocketLatency)
	case 2:
		th.step = 3
		th.iosLeft = op.diskIOs
		return sched.Compute(op.cpu / 2)
	case 3:
		if th.iosLeft > 0 {
			th.iosLeft--
			return sched.IO(irqsim.ChanDisk, 0)
		}
		th.step = 4
		return sched.Compute(op.cpu / 2)
	case 4:
		th.step = 5
		return sched.IO(irqsim.ChanNIC, th.w.SocketLatency)
	case 5:
		th.inst.responses = append(th.inst.responses, th.m.Eng.Now()-op.arrival)
		th.idx++
		th.step = 0
		return th.Next(t)
	}
	panic(fmt.Sprintf("nosql thread: bad step %d", th.step))
}

// Spawn implements Workload.
func (w NoSQL) Spawn(env Env) Instance {
	checkEnv(env, w.Name())
	threads := w.Threads
	if threads <= 0 {
		threads = 1
	}
	ops := w.Ops
	if ops <= 0 {
		ops = 1
	}
	miss := w.MissProb(env.MemGB)
	thrash := w.Thrashing(env.MemGB)
	inst := &nosqlInstance{}
	rng := env.M.RNG

	// Build the global op sequence (uniform arrivals over the window),
	// dealt round-robin to threads like a client connection pool.
	perThread := make([][]nosqlOp, threads)
	for i := 0; i < ops; i++ {
		op := nosqlOp{
			arrival: sim.Time(int64(w.Window) * int64(i) / int64(ops)),
			write:   rng.Float64() < w.WriteFrac,
			cpu:     w.OpCPU,
		}
		if op.write {
			op.diskIOs = 1 // commit log
			if rng.Float64() < w.CompactProb {
				op.diskIOs++ // amortized flush/compaction
			}
		} else if rng.Float64() < miss {
			op.diskIOs = w.ReadMissIOs
		}
		if thrash {
			op.diskIOs *= w.ThrashIOScale
			op.cpu = sim.Time(float64(op.cpu) * w.ThrashCPUScale)
		}
		perThread[i%threads] = append(perThread[i%threads], op)
	}
	specs := env.M.SpecScratch(threads)
	for i := 0; i < threads; i++ {
		if len(perThread[i]) == 0 {
			continue
		}
		specs = append(specs, sched.TaskSpec{
			Name:        fmt.Sprintf("cass-th%d", i),
			Group:       env.Group,
			Proc:        1, // all threads belong to the one Cassandra process
			Affinity:    env.Affinity,
			WorkingSet:  3.0, // big JVM heap: migrations hurt badly
			MemBound:    0.6,
			VMTaxWeight: 0.15, // IO-wait-heavy JVM: light EPT pressure
			Program:     &nosqlThread{m: env.M, w: &w, inst: inst, ops: perThread[i]},
		})
	}
	env.M.SpawnBatch(specs, 0)
	return inst
}
