package workload

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/topology"
)

func env(seed uint64, cores int) Env {
	m := machine.MustNew(machine.HostDefaults(topology.PaperHost(), seed))
	return EnvFor(m, nil, topology.CPUSet{}, cores)
}

func TestEnvForDefaultsMemory(t *testing.T) {
	e := env(1, 8)
	if e.MemGB != 32 {
		t.Fatalf("Table II memory sizing: %d GB for 8 cores", e.MemGB)
	}
}

func TestTranscodeSpawnsThreadsAndFinishes(t *testing.T) {
	w := DefaultTranscode()
	w.TotalWork = sim.FromSeconds(1)
	w.PerProcessOverhead = 0
	e := env(2, 16)
	inst := w.Spawn(e)
	if got := len(e.M.Sched.Tasks()); got != w.Threads {
		t.Fatalf("spawned %d tasks, want %d", got, w.Threads)
	}
	res := e.M.Run(0)
	secs := inst.Metric(res)
	if secs <= 0 {
		t.Fatalf("metric %v", secs)
	}
	// 1 core-second over ≥10 effective threads on 16 idle cpus ⇒ ≪ 1s wall.
	if secs > 0.5 {
		t.Fatalf("no parallel speedup: %v s", secs)
	}
}

func TestTranscodeSegments(t *testing.T) {
	w := DefaultTranscode()
	w.TotalWork = sim.FromSeconds(1)
	w.PerProcessOverhead = sim.FromSeconds(0.1)
	w.Segments = 3
	e := env(3, 16)
	w.Spawn(e)
	if got := len(e.M.Sched.Tasks()); got != 3*w.Threads {
		t.Fatalf("spawned %d tasks for 3 segments", got)
	}
	if w.Name() != "ffmpeg-3segments" {
		t.Fatal(w.Name())
	}
}

func TestTranscodeSublinearScaling(t *testing.T) {
	run := func(cores int) float64 {
		w := DefaultTranscode()
		m := machine.MustNew(machine.HostDefaults(topology.PaperHost(), 9))
		envv := EnvFor(m, nil, m.Topo.InterleavedCPUs(cores), cores)
		inst := w.Spawn(envv)
		return inst.Metric(m.Run(0))
	}
	t2 := run(2)
	t16 := run(16)
	speedup := t2 / t16
	// The paper's FFmpeg speeds up ≈4× from 2 to 16 cores.
	if speedup < 3.2 || speedup > 5.5 {
		t.Fatalf("2→16 core speedup %.2f, want ≈4", speedup)
	}
}

func TestMPISearchCompletes(t *testing.T) {
	w := DefaultMPISearch()
	w.Rounds = 10
	w.TotalCompute = sim.FromSeconds(0.1)
	e := env(4, 4)
	inst := w.Spawn(e)
	if got := len(e.M.Sched.Tasks()); got != 4 {
		t.Fatalf("ranks: %d", got)
	}
	res := e.M.Run(30 * sim.Second)
	if res.TimedOut {
		t.Fatal("MPI run wedged")
	}
	if inst.Metric(res) <= 0 {
		t.Fatal("no metric")
	}
	if res.Breakdown.Messages == 0 {
		t.Fatal("no messages exchanged")
	}
}

func TestMPISearchSingleRank(t *testing.T) {
	w := DefaultMPISearch()
	w.Ranks = 1
	w.Rounds = 5
	w.TotalCompute = sim.FromSeconds(0.01)
	e := env(5, 2)
	inst := w.Spawn(e)
	res := e.M.Run(10 * sim.Second)
	if res.TimedOut || inst.Metric(res) <= 0 {
		t.Fatal("single-rank MPI must degenerate gracefully")
	}
}

func TestWebMeanResponse(t *testing.T) {
	w := DefaultWeb()
	w.Requests = 64
	w.Workers = 16
	e := env(6, 8)
	inst := w.Spawn(e)
	if got := len(e.M.Sched.Tasks()); got != 16 {
		t.Fatalf("workers spawned: %d", got)
	}
	res := e.M.Run(60 * sim.Second)
	if res.TimedOut {
		t.Fatal("web run wedged")
	}
	secs := inst.Metric(res)
	if secs <= 0 {
		t.Fatal("no mean response")
	}
	if res.Breakdown.IOs < 2*64 {
		t.Fatalf("each request needs ≥2 socket IRQs, got %d", res.Breakdown.IOs)
	}
}

func TestWebWorkerClamping(t *testing.T) {
	w := DefaultWeb()
	w.Requests = 5
	w.Workers = 100
	e := env(7, 4)
	w.Spawn(e)
	if got := len(e.M.Sched.Tasks()); got != 5 {
		t.Fatalf("workers must clamp to requests: %d", got)
	}
}

func TestNoSQLMissProbabilityFollowsMemory(t *testing.T) {
	w := DefaultNoSQL()
	small := w.MissProb(16)
	big := w.MissProb(256)
	if small <= big {
		t.Fatal("more memory must mean fewer misses")
	}
	if big < w.MinMiss {
		t.Fatal("floor violated")
	}
	if !w.Thrashing(8) || w.Thrashing(16) {
		t.Fatal("thrash threshold broken")
	}
}

func TestNoSQLRunsAndRecordsResponses(t *testing.T) {
	w := DefaultNoSQL()
	w.Ops = 100
	w.Threads = 10
	w.OpCPU = 2 * sim.Millisecond
	e := env(8, 8)
	inst := w.Spawn(e)
	if got := len(e.M.Sched.Tasks()); got != 10 {
		t.Fatalf("threads: %d", got)
	}
	res := e.M.Run(60 * sim.Second)
	if res.TimedOut {
		t.Fatal("nosql run wedged")
	}
	ni := inst.(*nosqlInstance)
	if len(ni.responses) != 100 {
		t.Fatalf("recorded %d op responses, want 100", len(ni.responses))
	}
	if inst.Metric(res) <= 0 {
		t.Fatal("no metric")
	}
}

func TestNoSQLThrashInflatesWork(t *testing.T) {
	mk := func(memGB int) float64 {
		w := DefaultNoSQL()
		w.Ops = 60
		w.Threads = 10
		m := machine.MustNew(machine.HostDefaults(topology.PaperHost(), 11))
		envv := EnvFor(m, nil, m.Topo.InterleavedCPUs(4), 4)
		envv.MemGB = memGB
		inst := w.Spawn(envv)
		return inst.Metric(m.Run(5 * 60 * sim.Second))
	}
	healthy := mk(64)
	thrashed := mk(8)
	if thrashed < 1.5*healthy {
		t.Fatalf("thrash regime too mild: %v vs %v", thrashed, healthy)
	}
}

func TestCheckEnvPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil machine must panic")
		}
	}()
	DefaultWeb().Spawn(Env{Cores: 2})
}

func TestMicroserviceCompletesAllRequests(t *testing.T) {
	w := DefaultMicroservice()
	w.Requests = 120
	e := env(9, 16)
	inst := w.Spawn(e)
	if got, want := len(e.M.Sched.Tasks()), w.Backends+w.Frontends; got != want {
		t.Fatalf("spawned %d tasks, want %d (backends+frontends)", got, want)
	}
	res := e.M.Run(0)
	if res.TimedOut {
		t.Fatal("microservice run timed out")
	}
	mi := inst.(*msInstance)
	if len(mi.responses) != w.Requests {
		t.Fatalf("completed %d responses, want %d", len(mi.responses), w.Requests)
	}
	if inst.Metric(res) <= 0 {
		t.Fatal("metric must be positive")
	}
	// Each request makes exactly one internal RPC (request + reply).
	if got, want := res.Breakdown.Messages, uint64(2*w.Requests); got != want {
		t.Fatalf("messages %d, want %d", got, want)
	}
	// No disk involvement: only NIC IOs, two per request.
	if got, want := res.Breakdown.IOs, uint64(2*w.Requests); got != want {
		t.Fatalf("IOs %d, want %d", got, want)
	}
}

func TestMicroserviceClampsShapes(t *testing.T) {
	w := DefaultMicroservice()
	w.Requests = 3
	w.Frontends = 10 // clamped to 3
	w.Backends = 9   // clamped to frontends
	e := env(10, 4)
	inst := w.Spawn(e)
	res := e.M.Run(0)
	if res.TimedOut || inst.Metric(res) <= 0 {
		t.Fatalf("clamped microservice failed: %+v", res)
	}
	if len(e.M.Sched.Tasks()) != 6 { // 3 frontends + 3 backends
		t.Fatalf("clamping broken: %d tasks", len(e.M.Sched.Tasks()))
	}
}

func TestMicroserviceZeroRequests(t *testing.T) {
	w := DefaultMicroservice()
	w.Requests = 0 // treated as 1
	e := env(11, 4)
	inst := w.Spawn(e)
	res := e.M.Run(0)
	if res.TimedOut || inst.Metric(res) <= 0 {
		t.Fatalf("degenerate microservice failed: %+v", res)
	}
}
