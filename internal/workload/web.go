package workload

import (
	"fmt"

	"repro/internal/irqsim"
	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/sim"
)

// Web models the WordPress-under-JMeter workload (§III-B3): 1,000
// simultaneous web requests, each a short IO-bound process with at least
// three IRQs — read the request from the network socket, fetch the page /
// database rows (disk when not page-cached), and write the response back.
// Requests are served by a prefork-style worker pool (Apache's
// MaxRequestWorkers): each worker process handles its share of the 1,000
// connections sequentially. The paper's metric is the mean execution
// (response) time of the 1,000 requests from their simultaneous submission.
type Web struct {
	// Requests is the number of simultaneous requests (1,000 in the paper).
	Requests int
	// Workers is the server's worker-process pool size.
	Workers int
	// ParseCPU, RenderCPU, WriteCPU are the request's compute segments.
	ParseCPU  sim.Time
	RenderCPU sim.Time
	WriteCPU  sim.Time
	// SocketLatency is the NIC latency per socket IRQ.
	SocketLatency sim.Time
	// DiskMissProb is the probability a request's file/database fetch misses
	// the page cache and hits the (queued) disk.
	DiskMissProb float64
}

// DefaultWeb is the Fig 5 configuration.
func DefaultWeb() Web {
	return Web{
		Requests:      1000,
		Workers:       128,
		ParseCPU:      5 * sim.Millisecond,
		RenderCPU:     12 * sim.Millisecond,
		WriteCPU:      3 * sim.Millisecond,
		SocketLatency: 300 * sim.Microsecond,
		DiskMissProb:  0.15,
	}
}

// Name implements Workload.
func (w Web) Name() string { return "wordpress" }

type webInstance struct {
	responses []sim.Time
}

// Metric implements Instance: mean request response time in seconds.
func (wi *webInstance) Metric(machine.Result) float64 {
	if len(wi.responses) == 0 {
		return 0
	}
	var sum sim.Time
	for _, r := range wi.responses {
		sum += r
	}
	return (sum / sim.Time(len(wi.responses))).Seconds()
}

type webWorker struct {
	m    *machine.Machine
	w    *Web
	inst *webInstance
	// hitsDisk[i] precomputes the page-cache outcome of request i.
	hitsDisk []bool
	idx      int
	step     int
}

// Next implements sched.Program: serve each assigned request in sequence —
// socket read, parse, optional disk fetch, render, socket write.
func (ww *webWorker) Next(*sched.Task) sched.Action {
	if ww.idx >= len(ww.hitsDisk) {
		return sched.Done()
	}
	switch ww.step {
	case 0:
		ww.step = 1
		return sched.IO(irqsim.ChanNIC, ww.w.SocketLatency) // read request
	case 1:
		ww.step = 2
		return sched.Compute(ww.w.ParseCPU)
	case 2:
		ww.step = 3
		if ww.hitsDisk[ww.idx] {
			return sched.IO(irqsim.ChanDisk, 0) // page-cache miss
		}
		return ww.Next(nil)
	case 3:
		ww.step = 4
		return sched.Compute(ww.w.RenderCPU)
	case 4:
		ww.step = 5
		return sched.IO(irqsim.ChanNIC, ww.w.SocketLatency) // write response
	case 5:
		ww.step = 6
		return sched.Compute(ww.w.WriteCPU)
	case 6:
		// All requests were submitted at t=0 (JMeter's simultaneous burst),
		// so a request's response time is simply its completion time.
		ww.inst.responses = append(ww.inst.responses, ww.m.Eng.Now())
		ww.idx++
		ww.step = 0
		return ww.Next(nil)
	}
	panic(fmt.Sprintf("web worker: bad step %d", ww.step))
}

// Spawn implements Workload: Workers single-thread processes (Apache
// prefork style — each request is its own process from the scheduler's
// perspective, so thread-group counters are never contended, which is why
// VMCN does not pay the nested-accounting cost for web workloads; Fig 5).
func (w Web) Spawn(env Env) Instance {
	checkEnv(env, w.Name())
	n := w.Requests
	if n <= 0 {
		n = 1
	}
	workers := w.Workers
	if workers <= 0 {
		workers = 128
	}
	if workers > n {
		workers = n
	}
	inst := &webInstance{}
	rng := env.M.RNG
	perWorker := make([][]bool, workers)
	for i := 0; i < n; i++ {
		wi := i % workers
		perWorker[wi] = append(perWorker[wi], rng.Float64() < w.DiskMissProb)
	}
	specs := env.M.SpecScratch(workers)[:workers]
	for i := 0; i < workers; i++ {
		specs[i] = sched.TaskSpec{
			Name:        fmt.Sprintf("httpd%d", i),
			Group:       env.Group,
			Affinity:    env.Affinity,
			WorkingSet:  0.3,
			MemBound:    0.3,
			VMTaxWeight: 0.6,
			Program:     &webWorker{m: env.M, w: &w, inst: inst, hitsDisk: perWorker[i]},
		}
	}
	env.M.SpawnBatch(specs, 0)
	return inst
}
