package workload

// The driver registry. Each of the five workload classes is a parameter
// struct implementing Driver: a Workload that also knows its registry name
// and how to shrink itself for Quick runs. The registry makes workloads
// declarative — a scenario spec names a driver and overrides parameters as
// JSON, and everything downstream (spawning, Quick scaling, memo
// fingerprints) flows from the resolved parameter struct.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Driver is the declarative form of a workload class: a parameter struct
// that spawns runs, identifies its class, and scales itself for Quick mode.
// All drivers are plain value structs (no pointers, no maps), so %+v of a
// Driver is a stable fingerprint.
type Driver interface {
	Workload
	// DriverName is the canonical registry name of the workload class
	// ("ffmpeg", "mpi", "wordpress", "cassandra", "microservice") — distinct
	// from Name(), which labels one concrete parameterization.
	DriverName() string
	// ScaleQuick returns a copy shrunk for fast CI passes. Shapes are
	// preserved, absolute values are not; the scaling matches what each
	// paper figure applies in Quick mode.
	ScaleQuick() Driver
}

// DriverName implements Driver.
func (Transcode) DriverName() string { return "ffmpeg" }

// ScaleQuick implements Driver: the Fig 3/7/8 Quick scaling.
func (w Transcode) ScaleQuick() Driver {
	w.TotalWork /= 8
	w.PerProcessOverhead /= 8
	return w
}

// DriverName implements Driver.
func (MPISearch) DriverName() string { return "mpi" }

// ScaleQuick implements Driver: the Fig 4 Quick scaling.
func (w MPISearch) ScaleQuick() Driver {
	w.Rounds /= 8
	w.TotalCompute /= 8
	w.ScatterBytes /= 8
	return w
}

// DriverName implements Driver.
func (Web) DriverName() string { return "wordpress" }

// ScaleQuick implements Driver: the Fig 5 Quick scaling.
func (w Web) ScaleQuick() Driver {
	w.Requests /= 4
	return w
}

// DriverName implements Driver.
func (NoSQL) DriverName() string { return "cassandra" }

// ScaleQuick implements Driver: Fig 6 keeps the full operation count — the
// overload regime is the figure — so Quick mode is a no-op.
func (w NoSQL) ScaleQuick() Driver { return w }

// DriverName implements Driver.
func (Microservice) DriverName() string { return "microservice" }

// ScaleQuick implements Driver: the network-extension figure's Quick
// scaling.
func (w Microservice) ScaleQuick() Driver {
	w.Requests /= 4
	return w
}

// driverEntry ties a canonical name to its default constructor and aliases.
type driverEntry struct {
	name    string
	aliases []string
	def     func() Driver
}

// drivers is the closed registry, in Table I order plus the §VI extension.
var drivers = []driverEntry{
	{"ffmpeg", []string{"transcode"}, func() Driver { return DefaultTranscode() }},
	{"mpi", []string{"openmpi"}, func() Driver { return DefaultMPISearch() }},
	{"wordpress", []string{"web"}, func() Driver { return DefaultWeb() }},
	{"cassandra", []string{"nosql"}, func() Driver { return DefaultNoSQL() }},
	{"microservice", []string{"rpc"}, func() Driver { return DefaultMicroservice() }},
}

// DriverNames returns the canonical driver names, sorted.
func DriverNames() []string {
	out := make([]string, len(drivers))
	for i, d := range drivers {
		out[i] = d.name
	}
	sort.Strings(out)
	return out
}

// CanonicalDriver resolves a driver name or alias to its canonical name.
func CanonicalDriver(name string) (string, error) {
	n := strings.ToLower(strings.TrimSpace(name))
	for _, d := range drivers {
		if d.name == n {
			return d.name, nil
		}
		for _, a := range d.aliases {
			if a == n {
				return d.name, nil
			}
		}
	}
	return "", fmt.Errorf("workload: unknown driver %q (have %s)",
		name, strings.Join(DriverNames(), ", "))
}

// NewDriver builds the named driver with its default parameters.
func NewDriver(name string) (Driver, error) {
	canon, err := CanonicalDriver(name)
	if err != nil {
		return nil, err
	}
	for _, d := range drivers {
		if d.name == canon {
			return d.def(), nil
		}
	}
	panic("workload: registry inconsistent for " + canon)
}

// UnmarshalDriver builds the named driver with params (a JSON object of the
// driver's parameter struct) overlaid onto its defaults. Nil or empty
// params yield the defaults; unknown fields are rejected so a typo in a
// scenario file fails loudly instead of silently running the default.
func UnmarshalDriver(name string, params []byte) (Driver, error) {
	d, err := NewDriver(name)
	if err != nil {
		return nil, err
	}
	if len(bytes.TrimSpace(params)) == 0 {
		return d, nil
	}
	// Unmarshal into the concrete struct through a pointer so the overlay
	// lands on the default values.
	overlay := func(dst any) error {
		dec := json.NewDecoder(bytes.NewReader(params))
		dec.DisallowUnknownFields()
		return dec.Decode(dst)
	}
	switch w := d.(type) {
	case Transcode:
		err = overlay(&w)
		d = w
	case MPISearch:
		err = overlay(&w)
		d = w
	case Web:
		err = overlay(&w)
		d = w
	case NoSQL:
		err = overlay(&w)
		d = w
	case Microservice:
		err = overlay(&w)
		d = w
	default:
		err = fmt.Errorf("workload: driver %q has no parameter struct", name)
	}
	if err != nil {
		return nil, fmt.Errorf("workload: driver %q params: %w", name, err)
	}
	return d, nil
}

// MarshalDriverParams serializes a driver's full parameter struct — the
// round-trippable form scenario specs embed.
func MarshalDriverParams(d Driver) ([]byte, error) {
	return json.Marshal(d)
}
