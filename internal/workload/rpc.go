package workload

import (
	"fmt"

	"repro/internal/irqsim"
	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/sim"
)

// Microservice models the network-overhead extension study (§VI future
// work: "we plan to extend the study to incorporate the impact of network
// overhead"): a two-tier RPC service with no disk involvement at all, so
// every platform difference comes from the network paths —
//
//   - the NIC IRQ path (IRQ-home affinity, §IV-C),
//   - the intra-host RPC transport: native futex/pipe on bare metal, the
//     veth/bridge namespace path in containers (per-CPU cost on the *host*
//     scale), the hypervisor's shared-memory path inside VMs,
//   - the virtio-net completion overlay for guests.
//
// Frontend workers each serve a share of the client connections: read a
// request from the NIC, parse, make one internal RPC to a backend (cache /
// auth sidecar — the classic microservice hop), assemble, and write the
// response back to the NIC.
type Microservice struct {
	// Requests is the number of simultaneous client requests.
	Requests int
	// Frontends and Backends size the two tiers.
	Frontends int
	Backends  int
	// ParseCPU and RespondCPU are the frontend compute segments.
	ParseCPU   sim.Time
	RespondCPU sim.Time
	// HandleCPU is the backend's per-RPC compute.
	HandleCPU sim.Time
	// SocketLatency is the NIC latency per external socket IRQ.
	SocketLatency sim.Time
	// RPCBytes is the internal request/reply payload size.
	RPCBytes int64
}

// DefaultMicroservice is the extension-figure configuration: 2,000
// requests against a 64-frontend / 16-backend service.
func DefaultMicroservice() Microservice {
	return Microservice{
		Requests:      2000,
		Frontends:     64,
		Backends:      16,
		ParseCPU:      2 * sim.Millisecond,
		RespondCPU:    2 * sim.Millisecond,
		HandleCPU:     4 * sim.Millisecond,
		SocketLatency: 300 * sim.Microsecond,
		RPCBytes:      8 << 10,
	}
}

// Name implements Workload.
func (w Microservice) Name() string { return "microservice" }

type msInstance struct {
	responses []sim.Time
}

// Metric implements Instance: mean request response time in seconds.
func (mi *msInstance) Metric(machine.Result) float64 {
	if len(mi.responses) == 0 {
		return 0
	}
	var sum sim.Time
	for _, r := range mi.responses {
		sum += r
	}
	return (sum / sim.Time(len(mi.responses))).Seconds()
}

// msBackend serves `expect` RPCs: receive, handle, reply to the caller.
type msBackend struct {
	w      *Microservice
	expect int
	served int
	step   int
	caller *sched.Task
}

// Next implements sched.Program.
func (b *msBackend) Next(t *sched.Task) sched.Action {
	for {
		switch b.step {
		case 0: // wait for a request
			if b.served >= b.expect {
				return sched.Done()
			}
			msg, ok := t.TakeMessage()
			if !ok {
				return sched.Recv()
			}
			b.caller = msg.From
			b.step = 1
		case 1: // handle
			b.step = 2
			return sched.Compute(b.w.HandleCPU)
		case 2: // reply
			b.step = 0
			b.served++
			return sched.Send(b.caller, b.w.RPCBytes)
		}
	}
}

// msFrontend serves its share of connections sequentially.
type msFrontend struct {
	m       *machine.Machine
	w       *Microservice
	inst    *msInstance
	backend *sched.Task
	left    int
	step    int
}

// Next implements sched.Program: NIC read → parse → RPC → respond → NIC
// write, per request.
func (f *msFrontend) Next(t *sched.Task) sched.Action {
	for {
		switch f.step {
		case 0:
			if f.left <= 0 {
				return sched.Done()
			}
			f.step = 1
			return sched.IO(irqsim.ChanNIC, f.w.SocketLatency) // read request
		case 1:
			f.step = 2
			return sched.Compute(f.w.ParseCPU)
		case 2:
			f.step = 3
			return sched.Send(f.backend, f.w.RPCBytes) // internal RPC
		case 3: // await the backend's reply
			if _, ok := t.TakeMessage(); !ok {
				return sched.Recv()
			}
			f.step = 4
		case 4:
			f.step = 5
			return sched.Compute(f.w.RespondCPU)
		case 5:
			f.step = 6
			return sched.IO(irqsim.ChanNIC, f.w.SocketLatency) // write response
		case 6:
			f.inst.responses = append(f.inst.responses, f.m.Eng.Now())
			f.left--
			f.step = 0
		default:
			panic(fmt.Sprintf("microservice frontend: bad step %d", f.step))
		}
	}
}

// Spawn implements Workload: backends first (so frontends hold their task
// handles), then the frontend pool. Each tier is single-thread processes,
// like the web workload's prefork model.
func (w Microservice) Spawn(env Env) Instance {
	checkEnv(env, w.Name())
	n := w.Requests
	if n <= 0 {
		n = 1
	}
	fe := w.Frontends
	if fe <= 0 {
		fe = 64
	}
	if fe > n {
		fe = n
	}
	be := w.Backends
	if be <= 0 {
		be = 16
	}
	if be > fe {
		be = fe
	}
	inst := &msInstance{}

	// Request shares per frontend, and per-backend expectations from the
	// static frontend→backend partition.
	share := make([]int, fe)
	for i := 0; i < n; i++ {
		share[i%fe]++
	}
	expect := make([]int, be)
	for i, s := range share {
		expect[i%be] += s
	}
	backends := make([]*sched.Task, be)
	for i := 0; i < be; i++ {
		backends[i] = env.M.Spawn(sched.TaskSpec{
			Name:        fmt.Sprintf("backend%d", i),
			Group:       env.Group,
			Affinity:    env.Affinity,
			WorkingSet:  0.4,
			MemBound:    0.3,
			VMTaxWeight: 0.6,
			Program:     &msBackend{w: &w, expect: expect[i]},
		}, 0)
	}
	for i := 0; i < fe; i++ {
		env.M.Spawn(sched.TaskSpec{
			Name:        fmt.Sprintf("frontend%d", i),
			Group:       env.Group,
			Affinity:    env.Affinity,
			WorkingSet:  0.3,
			MemBound:    0.3,
			VMTaxWeight: 0.6,
			Program:     &msFrontend{m: env.M, w: &w, inst: inst, backend: backends[i%be], left: share[i]},
		}, 0)
	}
	return inst
}
