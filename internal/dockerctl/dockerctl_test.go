package dockerctl

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/topology"
)

// fakeDaemon is an in-process Docker Engine API subset.
type fakeDaemon struct {
	mu         sync.Mutex
	containers map[string]*ContainerDetail
	started    []string
	fail       int // if non-zero, respond with this status
}

func newFakeDaemon() *fakeDaemon {
	return &fakeDaemon{containers: map[string]*ContainerDetail{
		"abc123": {ID: "abc123", Name: "/web"},
		"def456": {ID: "def456", Name: "/db", HostConfig: HostConfig{CpusetCpus: "0-1"}},
	}}
}

func (f *fakeDaemon) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fail != 0 {
		w.WriteHeader(f.fail)
		json.NewEncoder(w).Encode(map[string]string{"message": "injected failure"})
		return
	}
	path := strings.TrimPrefix(r.URL.Path, "/"+apiVersion)
	switch {
	case path == "/_ping":
		w.WriteHeader(http.StatusOK)
	case path == "/containers/json":
		var list []Container
		for _, c := range f.containers {
			list = append(list, Container{ID: c.ID, Names: []string{c.Name}, State: "running"})
		}
		json.NewEncoder(w).Encode(list)
	case strings.HasSuffix(path, "/json"):
		id := strings.TrimSuffix(strings.TrimPrefix(path, "/containers/"), "/json")
		c, ok := f.containers[id]
		if !ok {
			w.WriteHeader(http.StatusNotFound)
			json.NewEncoder(w).Encode(map[string]string{"message": "no such container"})
			return
		}
		json.NewEncoder(w).Encode(c)
	case path == "/containers/create":
		var cfg CreateConfig
		if err := json.NewDecoder(r.Body).Decode(&cfg); err != nil || cfg.Image == "" {
			w.WriteHeader(http.StatusBadRequest)
			json.NewEncoder(w).Encode(map[string]string{"message": "bad config"})
			return
		}
		id := "new" + cfg.Image
		name := r.URL.Query().Get("name")
		f.containers[id] = &ContainerDetail{ID: id, Name: "/" + name, HostConfig: cfg.HostConfig}
		w.WriteHeader(http.StatusCreated)
		json.NewEncoder(w).Encode(map[string]any{"Id": id, "Warnings": []string{}})
	case strings.HasSuffix(path, "/start"):
		id := strings.TrimSuffix(strings.TrimPrefix(path, "/containers/"), "/start")
		if _, ok := f.containers[id]; !ok {
			w.WriteHeader(http.StatusNotFound)
			json.NewEncoder(w).Encode(map[string]string{"message": "no such container"})
			return
		}
		f.started = append(f.started, id)
		w.WriteHeader(http.StatusNoContent)
	case strings.HasSuffix(path, "/update"):
		id := strings.TrimSuffix(strings.TrimPrefix(path, "/containers/"), "/update")
		c, ok := f.containers[id]
		if !ok {
			w.WriteHeader(http.StatusNotFound)
			json.NewEncoder(w).Encode(map[string]string{"message": "no such container"})
			return
		}
		var hc HostConfig
		if err := json.NewDecoder(r.Body).Decode(&hc); err != nil {
			w.WriteHeader(http.StatusBadRequest)
			return
		}
		if hc.CpusetCpus != "" {
			c.HostConfig.CpusetCpus = hc.CpusetCpus
			c.HostConfig.NanoCpus = 0
		}
		if hc.NanoCpus != 0 {
			c.HostConfig.NanoCpus = hc.NanoCpus
		}
		json.NewEncoder(w).Encode(map[string]any{"Warnings": []string{}})
	default:
		w.WriteHeader(http.StatusNotFound)
	}
}

func client(t *testing.T) (*Client, *fakeDaemon) {
	t.Helper()
	daemon := newFakeDaemon()
	srv := httptest.NewServer(daemon)
	t.Cleanup(srv.Close)
	rt := rewriteTransport{base: srv.URL}
	return NewWithTransport(rt), daemon
}

// rewriteTransport redirects the client's fixed host to the test server.
type rewriteTransport struct{ base string }

func (r rewriteTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	nreq := req.Clone(req.Context())
	rewritten := r.base + req.URL.Path
	if req.URL.RawQuery != "" {
		rewritten += "?" + req.URL.RawQuery
	}
	u, err := nreq.URL.Parse(rewritten)
	if err != nil {
		return nil, err
	}
	nreq.URL = u
	nreq.Host = u.Host
	return http.DefaultTransport.RoundTrip(nreq)
}

func TestPing(t *testing.T) {
	c, _ := client(t)
	if err := c.Ping(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestContainerList(t *testing.T) {
	c, _ := client(t)
	list, err := c.ContainerList(context.Background(), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 {
		t.Fatalf("containers: %v", list)
	}
}

func TestInspect(t *testing.T) {
	c, _ := client(t)
	d, err := c.ContainerInspect(context.Background(), "def456")
	if err != nil {
		t.Fatal(err)
	}
	if d.HostConfig.CpusetCpus != "0-1" {
		t.Fatalf("inspect: %+v", d)
	}
	if _, err := c.ContainerInspect(context.Background(), "nope"); err == nil {
		t.Fatal("missing container must 404")
	}
}

func TestPinUpdatesCpusetAndClearsQuota(t *testing.T) {
	c, daemon := client(t)
	set := topology.MustParseList("4-7")
	if _, err := c.Pin(context.Background(), "abc123", set); err != nil {
		t.Fatal(err)
	}
	daemon.mu.Lock()
	defer daemon.mu.Unlock()
	hc := daemon.containers["abc123"].HostConfig
	if hc.CpusetCpus != "4-7" {
		t.Fatalf("cpuset not applied: %+v", hc)
	}
	if hc.NanoCpus != 0 {
		t.Fatal("pinning must clear the quota")
	}
}

func TestPinEmptySetRejected(t *testing.T) {
	c, _ := client(t)
	if _, err := c.Pin(context.Background(), "abc123", topology.CPUSet{}); err == nil {
		t.Fatal("empty cpuset must be rejected locally")
	}
}

func TestSetQuota(t *testing.T) {
	c, daemon := client(t)
	if _, err := c.SetQuota(context.Background(), "abc123", 2.5); err != nil {
		t.Fatal(err)
	}
	daemon.mu.Lock()
	defer daemon.mu.Unlock()
	if got := daemon.containers["abc123"].HostConfig.NanoCpus; got != 2_500_000_000 {
		t.Fatalf("nanocpus %d", got)
	}
	if _, err := c.SetQuota(context.Background(), "abc123", -1); err == nil {
		t.Fatal("negative quota must be rejected")
	}
}

func TestContainerCreateAndStart(t *testing.T) {
	c, daemon := client(t)
	id, warnings, err := c.ContainerCreate(context.Background(), "pinned-web", CreateConfig{
		Image:      "nginx",
		Cmd:        []string{"nginx", "-g", "daemon off;"},
		HostConfig: HostConfig{CpusetCpus: "0-3"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(warnings) != 0 || id == "" {
		t.Fatalf("create: id=%q warnings=%v", id, warnings)
	}
	if err := c.ContainerStart(context.Background(), id); err != nil {
		t.Fatal(err)
	}
	daemon.mu.Lock()
	defer daemon.mu.Unlock()
	cd := daemon.containers[id]
	if cd == nil || cd.HostConfig.CpusetCpus != "0-3" || cd.Name != "/pinned-web" {
		t.Fatalf("daemon state: %+v", cd)
	}
	if len(daemon.started) != 1 || daemon.started[0] != id {
		t.Fatalf("started: %v", daemon.started)
	}
}

func TestContainerCreateValidation(t *testing.T) {
	c, _ := client(t)
	if _, _, err := c.ContainerCreate(context.Background(), "x", CreateConfig{}); err == nil {
		t.Fatal("missing image must be rejected locally")
	}
	if err := c.ContainerStart(context.Background(), "ghost"); err == nil {
		t.Fatal("starting a missing container must 404")
	}
}

func TestRunPinned(t *testing.T) {
	c, daemon := client(t)
	set := topology.MustParseList("8-11")
	id, err := c.RunPinned(context.Background(), "enc", "ffmpeg", []string{"ffmpeg"}, set)
	if err != nil {
		t.Fatal(err)
	}
	daemon.mu.Lock()
	defer daemon.mu.Unlock()
	if daemon.containers[id].HostConfig.CpusetCpus != "8-11" {
		t.Fatalf("born-pinned cpuset missing: %+v", daemon.containers[id].HostConfig)
	}
	if len(daemon.started) != 1 {
		t.Fatal("container not started")
	}
	if _, err := c.RunPinned(context.Background(), "enc2", "ffmpeg", nil, topology.CPUSet{}); err == nil {
		t.Fatal("empty cpuset must be rejected")
	}
}

func TestDaemonErrorSurfaced(t *testing.T) {
	c, daemon := client(t)
	daemon.fail = http.StatusInternalServerError
	err := c.Ping(context.Background())
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("want APIError, got %v", err)
	}
	if apiErr.StatusCode != 500 || !strings.Contains(apiErr.Error(), "injected failure") {
		t.Fatalf("error detail lost: %v", apiErr)
	}
}

func TestGarbageResponseHandled(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("not json at all"))
	}))
	defer srv.Close()
	c := NewWithTransport(rewriteTransport{base: srv.URL})
	if _, err := c.ContainerList(context.Background(), false); err == nil {
		t.Fatal("garbage body must produce a decode error")
	}
}

func TestUnreachableDaemon(t *testing.T) {
	c := New("/nonexistent/docker.sock")
	if err := c.Ping(context.Background()); err == nil {
		t.Fatal("unreachable socket must fail")
	}
}
