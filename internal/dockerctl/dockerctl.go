// Package dockerctl is a minimal Docker Engine API client over the local
// unix socket — the operational interface for the paper's two container
// CPU-provisioning modes (§II-D):
//
//   - vanilla: update NanoCpus (the --cpus quota)
//   - pinned:  update CpusetCpus (the --cpuset-cpus static set)
//
// Only the endpoints needed for pinning workflows are implemented: Ping,
// ContainerList, ContainerInspect and ContainerUpdate. The client speaks
// plain HTTP over a configurable dialer, so tests run it against an
// in-process fake daemon.
package dockerctl

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"repro/internal/topology"
)

// DefaultSocket is the standard Docker daemon socket.
const DefaultSocket = "/var/run/docker.sock"

// apiVersion is the minimum engine API version the calls need.
const apiVersion = "v1.40"

// Client talks to one Docker daemon.
type Client struct {
	http *http.Client
	host string
}

// New returns a client for the unix socket at path (DefaultSocket if empty).
func New(path string) *Client {
	if path == "" {
		path = DefaultSocket
	}
	return &Client{
		host: "http://docker",
		http: &http.Client{
			Timeout: 10 * time.Second,
			Transport: &http.Transport{
				DialContext: func(ctx context.Context, _, _ string) (net.Conn, error) {
					var d net.Dialer
					return d.DialContext(ctx, "unix", path)
				},
			},
		},
	}
}

// NewWithTransport returns a client over a custom round-tripper (tests).
func NewWithTransport(rt http.RoundTripper) *Client {
	return &Client{host: "http://docker", http: &http.Client{Transport: rt, Timeout: 10 * time.Second}}
}

// APIError is a non-2xx daemon response.
type APIError struct {
	StatusCode int
	Message    string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("dockerctl: daemon returned %d: %s", e.StatusCode, e.Message)
}

func (c *Client) do(ctx context.Context, method, path string, body any, out any) error {
	var rdr io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("dockerctl: encoding request: %w", err)
		}
		rdr = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.host+"/"+apiVersion+path, rdr)
	if err != nil {
		return fmt.Errorf("dockerctl: building request: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("dockerctl: %w", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return fmt.Errorf("dockerctl: reading response: %w", err)
	}
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		msg := parseErrorMessage(data)
		return &APIError{StatusCode: resp.StatusCode, Message: msg}
	}
	if out != nil && len(data) > 0 {
		if err := json.Unmarshal(data, out); err != nil {
			return fmt.Errorf("dockerctl: decoding response: %w", err)
		}
	}
	return nil
}

func parseErrorMessage(data []byte) string {
	var e struct {
		Message string `json:"message"`
	}
	if json.Unmarshal(data, &e) == nil && e.Message != "" {
		return e.Message
	}
	return string(bytes.TrimSpace(data))
}

// Ping checks daemon liveness.
func (c *Client) Ping(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/_ping", nil, nil)
}

// Container is a list entry.
type Container struct {
	ID    string   `json:"Id"`
	Names []string `json:"Names"`
	Image string   `json:"Image"`
	State string   `json:"State"`
}

// ContainerList returns running containers (all=true includes stopped).
func (c *Client) ContainerList(ctx context.Context, all bool) ([]Container, error) {
	path := "/containers/json"
	if all {
		path += "?all=true"
	}
	var out []Container
	if err := c.do(ctx, http.MethodGet, path, nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// HostConfig is the subset of container host configuration the pinning
// workflows read and write.
type HostConfig struct {
	NanoCpus   int64  `json:"NanoCpus,omitempty"`
	CpusetCpus string `json:"CpusetCpus,omitempty"`
}

// ContainerDetail is the inspect subset.
type ContainerDetail struct {
	ID         string     `json:"Id"`
	Name       string     `json:"Name"`
	HostConfig HostConfig `json:"HostConfig"`
}

// ContainerInspect fetches one container's configuration.
func (c *Client) ContainerInspect(ctx context.Context, id string) (ContainerDetail, error) {
	var out ContainerDetail
	err := c.do(ctx, http.MethodGet, "/containers/"+id+"/json", nil, &out)
	return out, err
}

// updateResponse is the daemon's update reply.
type updateResponse struct {
	Warnings []string `json:"Warnings"`
}

// ContainerUpdate applies a host-config change.
func (c *Client) ContainerUpdate(ctx context.Context, id string, hc HostConfig) ([]string, error) {
	var out updateResponse
	err := c.do(ctx, http.MethodPost, "/containers/"+id+"/update", hc, &out)
	return out.Warnings, err
}

// CreateConfig is the container-creation subset the pinning workflows use:
// image, command, and the CPU provisioning knobs set at birth (the way the
// paper's CN platform deploys — docker run --cpus / --cpuset-cpus).
type CreateConfig struct {
	Image      string     `json:"Image"`
	Cmd        []string   `json:"Cmd,omitempty"`
	HostConfig HostConfig `json:"HostConfig"`
}

// createResponse is the daemon's create reply.
type createResponse struct {
	ID       string   `json:"Id"`
	Warnings []string `json:"Warnings"`
}

// ContainerCreate creates (but does not start) a container. name may be
// empty for a daemon-generated one.
func (c *Client) ContainerCreate(ctx context.Context, name string, cfg CreateConfig) (string, []string, error) {
	if cfg.Image == "" {
		return "", nil, fmt.Errorf("dockerctl: create needs an image")
	}
	path := "/containers/create"
	if name != "" {
		path += "?name=" + name
	}
	var out createResponse
	if err := c.do(ctx, http.MethodPost, path, cfg, &out); err != nil {
		return "", nil, err
	}
	return out.ID, out.Warnings, nil
}

// ContainerStart starts a created container.
func (c *Client) ContainerStart(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodPost, "/containers/"+id+"/start", nil, nil)
}

// RunPinned creates and starts a container born pinned to a cpuset — the
// paper's pinned CN platform in one call.
func (c *Client) RunPinned(ctx context.Context, name, image string, cmd []string, cpus topology.CPUSet) (string, error) {
	if cpus.IsEmpty() {
		return "", fmt.Errorf("dockerctl: refusing to create %s with an empty cpuset", name)
	}
	id, _, err := c.ContainerCreate(ctx, name, CreateConfig{
		Image:      image,
		Cmd:        cmd,
		HostConfig: HostConfig{CpusetCpus: cpus.String()},
	})
	if err != nil {
		return "", err
	}
	return id, c.ContainerStart(ctx, id)
}

// Pin statically binds a container to a CPU set (the paper's pinned mode).
// The quota is cleared: cpuset and quota together over-constrain.
func (c *Client) Pin(ctx context.Context, id string, cpus topology.CPUSet) ([]string, error) {
	if cpus.IsEmpty() {
		return nil, fmt.Errorf("dockerctl: refusing to pin %s to an empty cpuset", id)
	}
	return c.ContainerUpdate(ctx, id, HostConfig{CpusetCpus: cpus.String()})
}

// SetQuota gives a container a floating CPU quota in cores (the paper's
// vanilla mode, --cpus).
func (c *Client) SetQuota(ctx context.Context, id string, cores float64) ([]string, error) {
	if cores <= 0 {
		return nil, fmt.Errorf("dockerctl: quota must be positive, got %v cores", cores)
	}
	return c.ContainerUpdate(ctx, id, HostConfig{NanoCpus: int64(cores * 1e9)})
}
