// Package transcode is a real CPU-bound kernel standing in for FFmpeg's
// codec change (§III-B1): synthetic video frames pushed through an 8×8 DCT
// + quantization + inverse-DCT pipeline by a bounded worker pool (FFmpeg
// "can utilize up to 16 CPU cores"). cmd/pinbench runs it pinned and
// unpinned on the real machine; its unit tests double as a correctness
// check of the DCT round-trip.
package transcode

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// MaxWorkers mirrors FFmpeg's effective thread cap for the paper's codec.
const MaxWorkers = 16

// Job describes a synthetic transcode.
type Job struct {
	// Width and Height are the frame dimensions in pixels (multiples of 8).
	Width, Height int
	// Frames is the number of frames to process.
	Frames int
	// Quality selects the quantization strength (1..51, x264-style).
	Quality int
	// Workers bounds the pool (clamped to [1, MaxWorkers]).
	Workers int
	// Seed makes the synthetic content deterministic.
	Seed uint64
}

// DefaultJob is a small HD-like transcode suitable for benchmarks.
func DefaultJob() Job {
	return Job{Width: 320, Height: 176, Frames: 48, Quality: 28, Workers: MaxWorkers, Seed: 7}
}

// Result summarizes a transcode run.
type Result struct {
	Frames int
	// Blocks is the number of 8×8 blocks processed.
	Blocks int64
	// PSNR is the reconstruction quality in dB (sanity check that the
	// pipeline computed something real).
	PSNR float64
}

// Run executes the job.
func Run(job Job) (Result, error) {
	if job.Width <= 0 || job.Height <= 0 || job.Width%8 != 0 || job.Height%8 != 0 {
		return Result{}, fmt.Errorf("transcode: frame %dx%d must be positive multiples of 8", job.Width, job.Height)
	}
	if job.Frames <= 0 {
		return Result{}, fmt.Errorf("transcode: need at least one frame, got %d", job.Frames)
	}
	if job.Quality < 1 || job.Quality > 51 {
		return Result{}, fmt.Errorf("transcode: quality %d out of range 1..51", job.Quality)
	}
	workers := job.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > MaxWorkers {
		workers = MaxWorkers
	}

	frames := make(chan int, job.Frames)
	for f := 0; f < job.Frames; f++ {
		frames <- f
	}
	close(frames)

	var blocks atomic.Int64
	var sqErr, samples atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for f := range frames {
				se, n, nb := processFrame(job, f)
				sqErr.Add(se)
				samples.Add(n)
				blocks.Add(nb)
			}
		}()
	}
	wg.Wait()

	mse := float64(sqErr.Load()) / float64(samples.Load())
	psnr := math.Inf(1)
	if mse > 0 {
		psnr = 10 * math.Log10(255*255/mse)
	}
	return Result{Frames: job.Frames, Blocks: blocks.Load(), PSNR: psnr}, nil
}

// processFrame synthesizes one frame and pushes each 8×8 block through
// DCT → quantize → dequantize → IDCT, accumulating reconstruction error.
func processFrame(job Job, frame int) (sqErr, samples, blocks int64) {
	q := float64(job.Quality)
	state := job.Seed + uint64(frame)*0x9e3779b97f4a7c15
	var src, rec [64]float64
	for by := 0; by < job.Height/8; by++ {
		for bx := 0; bx < job.Width/8; bx++ {
			// Synthetic content: smooth gradients + hash noise, so the
			// DCT has realistic energy distribution.
			for i := 0; i < 64; i++ {
				x := bx*8 + i%8
				y := by*8 + i/8
				state = state*6364136223846793005 + 1442695040888963407
				noise := float64(state>>56) / 8
				src[i] = 128 + 64*math.Sin(float64(x+frame)/17) + 32*math.Cos(float64(y)/11) + noise
				if src[i] < 0 {
					src[i] = 0
				}
				if src[i] > 255 {
					src[i] = 255
				}
			}
			var coef [64]float64
			fdct8x8(&src, &coef)
			for i := 0; i < 64; i++ {
				step := 1 + q*float64(1+i/8+i%8)/8
				coef[i] = math.Round(coef[i]/step) * step
			}
			idct8x8(&coef, &rec)
			for i := 0; i < 64; i++ {
				d := int64(math.Round(src[i] - rec[i]))
				sqErr += d * d
			}
			samples += 64
			blocks++
		}
	}
	return sqErr, samples, blocks
}

var cosTable [8][8]float64

func init() {
	for k := 0; k < 8; k++ {
		for n := 0; n < 8; n++ {
			cosTable[k][n] = math.Cos(math.Pi * float64(k) * (2*float64(n) + 1) / 16)
		}
	}
}

func alpha(k int) float64 {
	if k == 0 {
		return math.Sqrt(1.0 / 8)
	}
	return math.Sqrt(2.0 / 8)
}

// fdct8x8 computes the 2-D type-II DCT of an 8×8 block (rows then columns).
func fdct8x8(src, dst *[64]float64) {
	var tmp [64]float64
	for r := 0; r < 8; r++ {
		for k := 0; k < 8; k++ {
			var s float64
			for n := 0; n < 8; n++ {
				s += src[r*8+n] * cosTable[k][n]
			}
			tmp[r*8+k] = alpha(k) * s
		}
	}
	for c := 0; c < 8; c++ {
		for k := 0; k < 8; k++ {
			var s float64
			for n := 0; n < 8; n++ {
				s += tmp[n*8+c] * cosTable[k][n]
			}
			dst[k*8+c] = alpha(k) * s
		}
	}
}

// idct8x8 inverts fdct8x8.
func idct8x8(src, dst *[64]float64) {
	var tmp [64]float64
	for c := 0; c < 8; c++ {
		for n := 0; n < 8; n++ {
			var s float64
			for k := 0; k < 8; k++ {
				s += alpha(k) * src[k*8+c] * cosTable[k][n]
			}
			tmp[n*8+c] = s
		}
	}
	for r := 0; r < 8; r++ {
		for n := 0; n < 8; n++ {
			var s float64
			for k := 0; k < 8; k++ {
				s += alpha(k) * tmp[r*8+k] * cosTable[k][n]
			}
			dst[r*8+n] = s
		}
	}
}
