package transcode

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRunValidation(t *testing.T) {
	bad := []Job{
		{Width: 100, Height: 64, Frames: 1, Quality: 20}, // width not ×8
		{Width: 64, Height: 100, Frames: 1, Quality: 20}, // height not ×8
		{Width: 64, Height: 64, Frames: 0, Quality: 20},  // no frames
		{Width: 64, Height: 64, Frames: 1, Quality: 0},   // quality low
		{Width: 64, Height: 64, Frames: 1, Quality: 99},  // quality high
		{Width: -8, Height: 64, Frames: 1, Quality: 20},  // negative
	}
	for i, job := range bad {
		if _, err := Run(job); err == nil {
			t.Errorf("job %d should have failed validation", i)
		}
	}
}

func TestRunProducesExpectedBlocks(t *testing.T) {
	job := Job{Width: 64, Height: 32, Frames: 3, Quality: 28, Workers: 2, Seed: 1}
	res, err := Run(job)
	if err != nil {
		t.Fatal(err)
	}
	wantBlocks := int64(64 / 8 * 32 / 8 * 3)
	if res.Blocks != wantBlocks {
		t.Fatalf("blocks %d, want %d", res.Blocks, wantBlocks)
	}
	if res.Frames != 3 {
		t.Fatal("frames")
	}
}

func TestQualityMonotonicity(t *testing.T) {
	base := Job{Width: 64, Height: 64, Frames: 4, Workers: 2, Seed: 3}
	hq := base
	hq.Quality = 5
	lq := base
	lq.Quality = 50
	rh, err := Run(hq)
	if err != nil {
		t.Fatal(err)
	}
	rl, err := Run(lq)
	if err != nil {
		t.Fatal(err)
	}
	if rh.PSNR <= rl.PSNR {
		t.Fatalf("higher quality must reconstruct better: %v dB vs %v dB", rh.PSNR, rl.PSNR)
	}
	if rh.PSNR < 25 {
		t.Fatalf("q=5 PSNR too low: %v dB", rh.PSNR)
	}
}

func TestWorkerCountInvariance(t *testing.T) {
	// The pipeline must be deterministic in content regardless of worker
	// count (work partitioning must not change the math).
	one := Job{Width: 64, Height: 64, Frames: 8, Quality: 30, Workers: 1, Seed: 9}
	many := one
	many.Workers = 8
	r1, err := Run(one)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := Run(many)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r1.PSNR-r8.PSNR) > 1e-9 || r1.Blocks != r8.Blocks {
		t.Fatalf("parallelism changed results: %+v vs %+v", r1, r8)
	}
}

func TestWorkerClamping(t *testing.T) {
	job := Job{Width: 64, Height: 64, Frames: 1, Quality: 20, Workers: 99, Seed: 1}
	if _, err := Run(job); err != nil {
		t.Fatal("oversized worker count must clamp, not fail")
	}
	job.Workers = -3
	if _, err := Run(job); err != nil {
		t.Fatal("negative workers must clamp to 1")
	}
}

// Property: the DCT round-trips — IDCT(FDCT(block)) ≈ block without
// quantization.
func TestDCTRoundTripProperty(t *testing.T) {
	f := func(raw [64]int8) bool {
		var src, coef, rec [64]float64
		for i, v := range raw {
			src[i] = float64(v)
		}
		fdct8x8(&src, &coef)
		idct8x8(&coef, &rec)
		for i := range src {
			if math.Abs(src[i]-rec[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Parseval — the DCT is orthonormal, so energy is preserved.
func TestDCTEnergyProperty(t *testing.T) {
	f := func(raw [64]int8) bool {
		var src, coef [64]float64
		var eIn, eOut float64
		for i, v := range raw {
			src[i] = float64(v)
			eIn += src[i] * src[i]
		}
		fdct8x8(&src, &coef)
		for _, c := range coef {
			eOut += c * c
		}
		return math.Abs(eIn-eOut) <= 1e-6*(1+eIn)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultJobRuns(t *testing.T) {
	res, err := Run(DefaultJob())
	if err != nil {
		t.Fatal(err)
	}
	if res.PSNR < 20 || res.PSNR > 60 {
		t.Fatalf("implausible PSNR %v", res.PSNR)
	}
}
