package platform

import (
	"testing"

	"repro/internal/hypervisor"
	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/topology"
)

func deploy(t *testing.T, spec Spec) *Deployment {
	t.Helper()
	d, err := Deploy(spec, machine.HostDefaults(topology.PaperHost(), 1), hypervisor.DefaultParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDeployBM(t *testing.T) {
	d := deploy(t, Spec{Kind: BM, Mode: Vanilla, Cores: 4})
	if d.Group != nil {
		t.Fatal("BM must not have a cgroup")
	}
	if d.Affinity.Count() != 4 {
		t.Fatalf("BM core limiting: %v", d.Affinity)
	}
	if d.M.Topo.NumCPUs() != 112 {
		t.Fatal("BM runs on the host machine")
	}
	// GRUB-analog enumeration spreads across sockets.
	if d.M.Topo.SocketsSpanned(d.Affinity) != 4 {
		t.Fatalf("interleaved BM affinity spans %d sockets", d.M.Topo.SocketsSpanned(d.Affinity))
	}
}

func TestDeployVM(t *testing.T) {
	d := deploy(t, Spec{Kind: VM, Mode: Pinned, Cores: 8})
	if d.Group != nil || !d.Affinity.IsEmpty() {
		t.Fatal("VM tasks are unrestricted inside the guest")
	}
	if d.M.Topo.NumCPUs() != 8 {
		t.Fatalf("guest size %d", d.M.Topo.NumCPUs())
	}
	if d.M.Cfg.ComputeTax <= 1 {
		t.Fatal("guest must carry the virtualization tax")
	}
}

func TestDeployCN(t *testing.T) {
	v := deploy(t, Spec{Kind: CN, Mode: Vanilla, Cores: 4})
	if v.Group == nil || v.Group.QuotaCores != 4 {
		t.Fatal("vanilla CN must be quota-provisioned")
	}
	p := deploy(t, Spec{Kind: CN, Mode: Pinned, Cores: 4})
	if p.Group == nil || p.Group.CPUs.Count() != 4 {
		t.Fatal("pinned CN must be cpuset-provisioned")
	}
	if p.Container == nil || p.Container.CHR() == 0 {
		t.Fatal("container bookkeeping missing")
	}
}

func TestDeployVMCN(t *testing.T) {
	d := deploy(t, Spec{Kind: VMCN, Mode: Vanilla, Cores: 4})
	if d.M.Topo.NumCPUs() != 4 {
		t.Fatal("VMCN runs inside the guest")
	}
	if d.Group == nil {
		t.Fatal("VMCN needs the guest-side cgroup")
	}
	if d.M.Cfg.NestedSwitchCost == 0 {
		t.Fatal("VMCN guest must pay nested accounting")
	}
}

func TestDeployValidation(t *testing.T) {
	host := machine.HostDefaults(topology.PaperHost(), 1)
	hv := hypervisor.DefaultParams()
	if _, err := Deploy(Spec{Kind: CN, Cores: 0}, host, hv, 1); err == nil {
		t.Fatal("zero cores must fail")
	}
	if _, err := Deploy(Spec{Kind: VM, Cores: 500}, host, hv, 1); err == nil {
		t.Fatal("oversize instance must fail")
	}
	if _, err := Deploy(Spec{Kind: Kind(42), Cores: 2}, host, hv, 1); err == nil {
		t.Fatal("unknown kind must fail")
	}
}

func TestLabelsAndSeries(t *testing.T) {
	if (Spec{Kind: CN, Mode: Pinned}).Label() != "Pinned CN" {
		t.Fatal("label broken")
	}
	series := StandardSeries()
	if len(series) != 7 {
		t.Fatalf("standard series: %d", len(series))
	}
	if series[6].Kind != BM {
		t.Fatal("BM must be the last (baseline) series")
	}
	for _, k := range []Kind{BM, VM, CN, VMCN, Kind(9)} {
		if k.String() == "" {
			t.Fatal("empty kind name")
		}
	}
	if Vanilla.String() != "Vanilla" || Pinned.String() != "Pinned" {
		t.Fatal("mode names")
	}
}

func TestEachPlatformRunsASmokeTask(t *testing.T) {
	for _, s := range StandardSeries() {
		spec := Spec{Kind: s.Kind, Mode: s.Mode, Cores: 2}
		d := deploy(t, spec)
		d.M.Spawn(sched.TaskSpec{
			Name:     "smoke",
			Group:    d.Group,
			Affinity: d.Affinity,
			Program:  sched.Sequence(sched.Compute(5 * sim.Millisecond)),
		}, 0)
		res := d.M.Run(sim.Second)
		if res.TimedOut || len(res.Responses) != 1 {
			t.Fatalf("%s: smoke task failed: %+v", spec.Label(), res)
		}
	}
}
