// Package platform assembles the paper's four execution platforms (Table III
// and Fig 2) in the two CPU-provisioning modes (§II-D):
//
//	BM    bare metal            — host machine, GRUB-style core limiting
//	VM    KVM virtual machine   — hypervisor guest machine
//	CN    container on BM       — host machine + Docker-style cgroup
//	VMCN  container inside a VM — guest machine + cgroup inside the guest
//
// with Vanilla (CFS quota / floating vCPUs) or Pinned (cpuset / vcpupin)
// provisioning.
package platform

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/cgroups"
	"repro/internal/container"
	"repro/internal/hypervisor"
	"repro/internal/machine"
	"repro/internal/topology"
)

// Kind enumerates the execution platforms.
type Kind int

const (
	BM Kind = iota
	VM
	CN
	VMCN
)

func (k Kind) String() string {
	switch k {
	case BM:
		return "BM"
	case VM:
		return "VM"
	case CN:
		return "CN"
	case VMCN:
		return "VMCN"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ParseKind resolves a platform name ("bm", "VM", ...) to its Kind.
func ParseKind(s string) (Kind, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "BM":
		return BM, nil
	case "VM":
		return VM, nil
	case "CN":
		return CN, nil
	case "VMCN":
		return VMCN, nil
	}
	return 0, fmt.Errorf("platform: unknown kind %q (have BM, VM, CN, VMCN)", s)
}

// MarshalJSON encodes the kind by name, so scenario specs stay readable.
func (k Kind) MarshalJSON() ([]byte, error) {
	if k < BM || k > VMCN {
		return nil, fmt.Errorf("platform: cannot marshal unknown kind %d", int(k))
	}
	return json.Marshal(k.String())
}

// UnmarshalJSON decodes a kind name.
func (k *Kind) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	v, err := ParseKind(s)
	if err != nil {
		return err
	}
	*k = v
	return nil
}

// Mode is the CPU-provisioning mode.
type Mode int

const (
	Vanilla Mode = iota
	Pinned
)

func (m Mode) String() string {
	if m == Pinned {
		return "Pinned"
	}
	return "Vanilla"
}

// ParseMode resolves a provisioning-mode name to its Mode.
func ParseMode(s string) (Mode, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "vanilla", "":
		return Vanilla, nil
	case "pinned":
		return Pinned, nil
	}
	return 0, fmt.Errorf("platform: unknown mode %q (have vanilla, pinned)", s)
}

// MarshalJSON encodes the mode by name.
func (m Mode) MarshalJSON() ([]byte, error) {
	if m != Vanilla && m != Pinned {
		return nil, fmt.Errorf("platform: cannot marshal unknown mode %d", int(m))
	}
	return json.Marshal(m.String())
}

// UnmarshalJSON decodes a mode name.
func (m *Mode) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	v, err := ParseMode(s)
	if err != nil {
		return err
	}
	*m = v
	return nil
}

// Spec selects a platform deployment: kind, mode and instance size in cores.
type Spec struct {
	Kind  Kind `json:"kind"`
	Mode  Mode `json:"mode"`
	Cores int  `json:"cores,omitempty"`
}

// Label renders the figure-legend name, e.g. "Pinned CN".
func (s Spec) Label() string { return s.Mode.String() + " " + s.Kind.String() }

// Deployment is a platform instance ready to receive workload tasks.
type Deployment struct {
	// Spec is the canned platform spec this deployment came from (zero for
	// deployments built directly from a Stack).
	Spec Spec
	// Stack is the composable form the deployment was built from.
	Stack Stack
	// M is the machine tasks are spawned on: the host for BM/CN, the
	// innermost guest for stacks with hypervisor layers.
	M *machine.Machine
	// Group is the container cgroup tasks must join (nil for BM/VM and for
	// multi-tenant stacks, where each Slot carries its own).
	Group *cgroups.Group
	// Affinity is the task CPU restriction for BM core limiting (empty
	// otherwise).
	Affinity topology.CPUSet
	// Container is set when the stack has exactly one cgroup layer
	// (CN/VMCN).
	Container *container.Container
	// Tenants always holds at least one slot: the co-located tenants of a
	// multi-tenant stack, or the single implicit tenant otherwise.
	Tenants []Slot
}

// Deploy builds a fresh deployment of one of the paper's canned platforms.
// host is the physical host calibration; hv the hypervisor calibration;
// seed drives all the run's randomness. The spec compiles to its composable
// stack (Spec.Stack) and deploys through the same code path as arbitrary
// stacks.
func Deploy(spec Spec, host machine.Config, hv hypervisor.Params, seed uint64) (*Deployment, error) {
	if spec.Cores <= 0 {
		return nil, fmt.Errorf("platform: instance size must be positive, got %d", spec.Cores)
	}
	stack := spec.Stack()
	if len(stack.Layers) == 0 {
		return nil, fmt.Errorf("platform: unknown kind %v", spec.Kind)
	}
	d, err := DeployStack(stack, spec.Cores, host, hv, seed)
	if err != nil {
		return nil, err
	}
	d.Spec = spec
	return d, nil
}

// StandardSeries returns the paper figures' seven series in legend order:
// Vanilla/Pinned VM, Vanilla/Pinned VMCN, Vanilla/Pinned CN, Vanilla BM.
func StandardSeries() []struct {
	Kind Kind
	Mode Mode
} {
	return []struct {
		Kind Kind
		Mode Mode
	}{
		{VM, Vanilla}, {VM, Pinned},
		{VMCN, Vanilla}, {VMCN, Pinned},
		{CN, Vanilla}, {CN, Pinned},
		{BM, Vanilla},
	}
}
