// Package platform assembles the paper's four execution platforms (Table III
// and Fig 2) in the two CPU-provisioning modes (§II-D):
//
//	BM    bare metal            — host machine, GRUB-style core limiting
//	VM    KVM virtual machine   — hypervisor guest machine
//	CN    container on BM       — host machine + Docker-style cgroup
//	VMCN  container inside a VM — guest machine + cgroup inside the guest
//
// with Vanilla (CFS quota / floating vCPUs) or Pinned (cpuset / vcpupin)
// provisioning.
package platform

import (
	"fmt"

	"repro/internal/cgroups"
	"repro/internal/container"
	"repro/internal/hypervisor"
	"repro/internal/irqsim"
	"repro/internal/machine"
	"repro/internal/topology"
)

// Kind enumerates the execution platforms.
type Kind int

const (
	BM Kind = iota
	VM
	CN
	VMCN
)

func (k Kind) String() string {
	switch k {
	case BM:
		return "BM"
	case VM:
		return "VM"
	case CN:
		return "CN"
	case VMCN:
		return "VMCN"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Mode is the CPU-provisioning mode.
type Mode int

const (
	Vanilla Mode = iota
	Pinned
)

func (m Mode) String() string {
	if m == Pinned {
		return "Pinned"
	}
	return "Vanilla"
}

// Spec selects a platform deployment: kind, mode and instance size in cores.
type Spec struct {
	Kind  Kind
	Mode  Mode
	Cores int
}

// Label renders the figure-legend name, e.g. "Pinned CN".
func (s Spec) Label() string { return s.Mode.String() + " " + s.Kind.String() }

// Deployment is a platform instance ready to receive workload tasks.
type Deployment struct {
	Spec Spec
	// M is the machine tasks are spawned on (the host for BM/CN, the guest
	// for VM/VMCN).
	M *machine.Machine
	// Group is the container cgroup tasks must join (nil for BM/VM).
	Group *cgroups.Group
	// Affinity is the task CPU restriction for BM core limiting (empty
	// otherwise).
	Affinity topology.CPUSet
	// Container is set for CN/VMCN.
	Container *container.Container
}

// Deploy builds a fresh deployment. host is the physical host calibration;
// hv the hypervisor calibration; seed drives all the run's randomness.
func Deploy(spec Spec, host machine.Config, hv hypervisor.Params, seed uint64) (*Deployment, error) {
	if spec.Cores <= 0 {
		return nil, fmt.Errorf("platform: instance size must be positive, got %d", spec.Cores)
	}
	if spec.Cores > host.Topo.NumCPUs() {
		return nil, fmt.Errorf("platform: instance size %d exceeds host's %d CPUs",
			spec.Cores, host.Topo.NumCPUs())
	}
	d := &Deployment{Spec: spec}
	switch spec.Kind {
	case BM:
		host.Seed = seed
		m, err := machine.New(host)
		if err != nil {
			return nil, err
		}
		d.M = m
		d.Affinity = host.Topo.InterleavedCPUs(spec.Cores)
	case VM:
		g, err := hypervisor.NewGuest(host, hypervisor.VMSpec{
			Name:   fmt.Sprintf("vm%d", spec.Cores),
			VCPUs:  spec.Cores,
			Pinned: spec.Mode == Pinned,
		}, hv, seed)
		if err != nil {
			return nil, err
		}
		d.M = g
	case CN:
		host.Seed = seed
		m, err := machine.New(host)
		if err != nil {
			return nil, err
		}
		cn, err := container.Create(m, container.Spec{
			Name:    fmt.Sprintf("cn%d", spec.Cores),
			Cores:   spec.Cores,
			Pinned:  spec.Mode == Pinned,
			NearCPU: m.IRQ.Channel(irqsim.ChanDisk).Home,
		})
		if err != nil {
			return nil, err
		}
		d.M = m
		d.Group = cn.Group
		d.Container = cn
	case VMCN:
		g, err := hypervisor.NewGuest(host, hypervisor.VMSpec{
			Name:          fmt.Sprintf("vmcn%d", spec.Cores),
			VCPUs:         spec.Cores,
			Pinned:        spec.Mode == Pinned,
			Containerized: true,
		}, hv, seed)
		if err != nil {
			return nil, err
		}
		cn, err := container.Create(g, container.Spec{
			Name:    fmt.Sprintf("cn-in-vm%d", spec.Cores),
			Cores:   spec.Cores,
			Pinned:  spec.Mode == Pinned,
			NearCPU: g.IRQ.Channel(irqsim.ChanDisk).Home,
		})
		if err != nil {
			return nil, err
		}
		d.M = g
		d.Group = cn.Group
		d.Container = cn
	default:
		return nil, fmt.Errorf("platform: unknown kind %v", spec.Kind)
	}
	return d, nil
}

// StandardSeries returns the paper figures' seven series in legend order:
// Vanilla/Pinned VM, Vanilla/Pinned VMCN, Vanilla/Pinned CN, Vanilla BM.
func StandardSeries() []struct {
	Kind Kind
	Mode Mode
} {
	return []struct {
		Kind Kind
		Mode Mode
	}{
		{VM, Vanilla}, {VM, Pinned},
		{VMCN, Vanilla}, {VMCN, Pinned},
		{CN, Vanilla}, {CN, Pinned},
		{BM, Vanilla},
	}
}
