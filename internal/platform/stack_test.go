package platform

import (
	"encoding/json"
	"testing"

	"repro/internal/hypervisor"
	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/topology"
)

func deployStack(t *testing.T, stack Stack, size int) *Deployment {
	t.Helper()
	d, err := DeployStack(stack, size, machine.HostDefaults(topology.PaperHost(), 1), hypervisor.DefaultParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestCannedStacksMatchLegacyDeploy locks the canned-stack compilation: for
// every (kind, mode) the stack path must produce the same machine shape,
// cgroup provisioning and affinity as the historical enum dispatch (whose
// behavior the TestDeploy* tests above pin).
func TestCannedStacksMatchLegacyDeploy(t *testing.T) {
	for _, s := range StandardSeries() {
		spec := Spec{Kind: s.Kind, Mode: s.Mode, Cores: 4}
		d := deploy(t, spec)
		if len(d.Tenants) != 1 {
			t.Fatalf("%s: canned deployment must have one implicit tenant, got %d", spec.Label(), len(d.Tenants))
		}
		slot := d.Tenants[0]
		if slot.Group != d.Group || !slot.Affinity.Equal(d.Affinity) || slot.Cores != 4 {
			t.Fatalf("%s: implicit tenant slot diverges from legacy fields: %+v", spec.Label(), slot)
		}
		wantDepth := 1
		if s.Kind == VM || s.Kind == VMCN {
			wantDepth = 2
		}
		if got := d.Stack.Depth(); got != wantDepth {
			t.Fatalf("%s: stack depth %d, want %d", spec.Label(), got, wantDepth)
		}
	}
}

func TestNestedGuestStackCompoundsOverlay(t *testing.T) {
	single := deployStack(t, Stack{Layers: []Layer{
		{Kind: LayerHost}, {Kind: LayerGuest, Pinned: true},
	}}, 4)
	double := deployStack(t, Stack{Layers: []Layer{
		{Kind: LayerHost}, {Kind: LayerGuest, Pinned: true}, {Kind: LayerGuest, Pinned: true},
	}}, 4)
	if double.M.Topo.NumCPUs() != 4 {
		t.Fatalf("innermost guest size %d", double.M.Topo.NumCPUs())
	}
	if double.M.Cfg.ComputeTax <= single.M.Cfg.ComputeTax {
		t.Fatalf("nested guest must compound the compute tax: %v vs %v",
			double.M.Cfg.ComputeTax, single.M.Cfg.ComputeTax)
	}
	if double.M.Cfg.IOScale <= single.M.Cfg.IOScale {
		t.Fatalf("nested guest must compound the IO overlay: %v vs %v",
			double.M.Cfg.IOScale, single.M.Cfg.IOScale)
	}
	// The physical host's NUMA spread follows the stack all the way down.
	if double.M.Cfg.NUMASockets != topology.PaperHost().Sockets {
		t.Fatalf("nested guest NUMASockets %d, want the physical host's %d",
			double.M.Cfg.NUMASockets, topology.PaperHost().Sockets)
	}
}

// TestPinnedInnerGuestKeepsOuterWander pins the wander composition rule: a
// pinned inner guest binds its vCPUs to the outer VM's vCPUs, which cannot
// stop the outer vanilla VM's vCPUs floating on physical cores — so the
// outer level's wander overheads must survive into the inner config, and a
// vanilla-in-vanilla stack must carry more than one level alone.
func TestPinnedInnerGuestKeepsOuterWander(t *testing.T) {
	outerVanilla := deployStack(t, Stack{Layers: []Layer{
		{Kind: LayerHost}, {Kind: LayerGuest},
	}}, 4)
	pinnedInside := deployStack(t, Stack{Layers: []Layer{
		{Kind: LayerHost}, {Kind: LayerGuest}, {Kind: LayerGuest, Pinned: true},
	}}, 4)
	if pinnedInside.M.Cfg.WanderStallRate < outerVanilla.M.Cfg.WanderStallRate ||
		pinnedInside.M.Cfg.VirtioMissProb < outerVanilla.M.Cfg.VirtioMissProb {
		t.Fatalf("pinning the inner guest erased the outer level's wander: %+v vs %+v",
			pinnedInside.M.Cfg.WanderStallRate, outerVanilla.M.Cfg.WanderStallRate)
	}
	bothVanilla := deployStack(t, Stack{Layers: []Layer{
		{Kind: LayerHost}, {Kind: LayerGuest}, {Kind: LayerGuest},
	}}, 4)
	if bothVanilla.M.Cfg.WanderStallRate <= outerVanilla.M.Cfg.WanderStallRate ||
		bothVanilla.M.Cfg.VirtioMissProb <= outerVanilla.M.Cfg.VirtioMissProb {
		t.Fatal("stacked vanilla guests must accumulate wander overhead")
	}
	// A pinned single guest still has no wander at all (the historical
	// single-level behavior).
	pinnedOnly := deployStack(t, Stack{Layers: []Layer{
		{Kind: LayerHost}, {Kind: LayerGuest, Pinned: true},
	}}, 4)
	if pinnedOnly.M.Cfg.WanderStallRate != 0 || pinnedOnly.M.Cfg.VirtioMissProb != 0 {
		t.Fatalf("pinned single guest must not wander: %+v", pinnedOnly.M.Cfg)
	}
}

func TestDeepStackWithCgroupOnlyInnermostContainerized(t *testing.T) {
	d := deployStack(t, Stack{Layers: []Layer{
		{Kind: LayerHost},
		{Kind: LayerGuest, Pinned: true},
		{Kind: LayerGuest, Pinned: true},
		{Kind: LayerCgroup, Pinned: true},
	}}, 4)
	if d.Group == nil || d.Group.CPUs.Count() != 4 {
		t.Fatalf("innermost cgroup must be cpuset-provisioned: %v", d.Group)
	}
	if d.M.Cfg.NestedSwitchCost == 0 {
		t.Fatal("containerized innermost guest must pay nested accounting")
	}
	if d.Container == nil {
		t.Fatal("single cgroup layer keeps container bookkeeping")
	}
}

func TestNestedCgroupLayersFoldToEffectiveConstraint(t *testing.T) {
	d := deployStack(t, Stack{Layers: []Layer{
		{Kind: LayerHost},
		{Kind: LayerCgroup, Cores: 8},               // vanilla quota 8
		{Kind: LayerCgroup, Cores: 4, Pinned: true}, // cpuset 4
		{Kind: LayerCgroup, Cores: 6},               // vanilla quota 6
	}}, 8)
	if d.Group == nil {
		t.Fatal("folded cgroup missing")
	}
	if d.Group.QuotaCores != 6 {
		t.Fatalf("folded quota %v, want the tightest vanilla layer (6)", d.Group.QuotaCores)
	}
	if d.Group.CPUs.Count() != 4 {
		t.Fatalf("folded cpuset %v, want the tightest pinned layer (4 CPUs)", d.Group.CPUs)
	}
}

func TestMultiTenantSlots(t *testing.T) {
	d := deployStack(t, Stack{
		Layers: []Layer{{Kind: LayerHost}},
		Tenants: []TenantSpec{
			{Cores: 4, Pinned: true},
			{Cores: 4, Pinned: true},
			{Cores: 4},
			{Cores: 2, NoCgroup: true},
		},
	}, 4)
	if len(d.Tenants) != 4 {
		t.Fatalf("tenant slots: %d", len(d.Tenants))
	}
	a, b := d.Tenants[0], d.Tenants[1]
	if a.Group == nil || b.Group == nil {
		t.Fatal("pinned tenants need cgroups")
	}
	if a.Group.CPUs.Intersect(b.Group.CPUs).Count() != 0 {
		t.Fatalf("pinned tenants must receive disjoint cpusets: %v ∩ %v",
			a.Group.CPUs, b.Group.CPUs)
	}
	if q := d.Tenants[2]; q.Group == nil || q.Group.QuotaCores != 4 || q.Group.CPUs.Count() != 0 {
		t.Fatalf("vanilla tenant must float under a quota: %+v", q.Group)
	}
	if f := d.Tenants[3]; f.Group != nil || f.Affinity.Count() != 2 {
		t.Fatalf("no-cgroup tenant must be a plain affinity slot: %+v", f)
	}
	// Multi-tenant deployments carry no single legacy group.
	if d.Group != nil {
		t.Fatal("multi-tenant deployment must not pick one tenant's group")
	}
}

// TestHostLimitConfinesTenants locks the Limit × tenants interaction: a
// limited host layer must confine every tenant — pinned tenants carve
// their cpusets from the limited set, floating quota tenants carry it as
// affinity — instead of silently spreading over the whole machine.
func TestHostLimitConfinesTenants(t *testing.T) {
	d := deployStack(t, Stack{
		Layers: []Layer{{Kind: LayerHost, Limit: true, Cores: 8}},
		Tenants: []TenantSpec{
			{Cores: 4, Pinned: true},
			{Cores: 4},
			{Cores: 2, NoCgroup: true},
		},
	}, 8)
	limit := topology.PaperHost().InterleavedCPUs(8)
	if p := d.Tenants[0]; !p.Group.CPUs.IsSubsetOf(limit) {
		t.Fatalf("pinned tenant escaped the host limit: %v ⊄ %v", p.Group.CPUs, limit)
	}
	if q := d.Tenants[1]; !q.Affinity.Equal(limit) {
		t.Fatalf("quota tenant must float within the host limit: %v", q.Affinity)
	}
	if f := d.Tenants[2]; !f.Affinity.IsSubsetOf(limit) || f.Affinity.Count() != 2 {
		t.Fatalf("affinity tenant escaped the host limit: %v", f.Affinity)
	}
}

func TestTenantAllocationWrapsWhenOversubscribed(t *testing.T) {
	host := machine.HostDefaults(topology.SmallHost16(), 1)
	d, err := DeployStack(Stack{
		Layers: []Layer{{Kind: LayerHost}},
		Tenants: []TenantSpec{
			{Cores: 12, Pinned: true},
			{Cores: 12, Pinned: true},
		},
	}, 12, host, hypervisor.DefaultParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	overlap := d.Tenants[0].Group.CPUs.Intersect(d.Tenants[1].Group.CPUs)
	if overlap.Count() == 0 {
		t.Fatal("oversubscribed pinned tenants must wrap onto shared cores")
	}
}

func TestMultiTenantStackRunsConcurrentWorkloads(t *testing.T) {
	d := deployStack(t, Stack{
		Layers:  []Layer{{Kind: LayerHost}},
		Tenants: []TenantSpec{{Cores: 2, Pinned: true}, {Cores: 2, Pinned: true}, {Cores: 2}},
	}, 2)
	for i, slot := range d.Tenants {
		d.M.Spawn(sched.TaskSpec{
			Name:     "smoke",
			Group:    slot.Group,
			Affinity: slot.Affinity,
			Program:  sched.Sequence(sched.Compute(sim.Time(i+1) * sim.Millisecond)),
		}, 0)
	}
	res := d.M.Run(sim.Second)
	if res.TimedOut || len(res.Responses) != 3 {
		t.Fatalf("co-located smoke tasks failed: %+v", res)
	}
}

func TestStackValidation(t *testing.T) {
	host := machine.HostDefaults(topology.PaperHost(), 1)
	hv := hypervisor.DefaultParams()
	cases := []Stack{
		{},                                    // no layers
		{Layers: []Layer{{Kind: LayerGuest}}}, // no host first
		{Layers: []Layer{{Kind: LayerHost}, {Kind: LayerHost}}},                       // two hosts
		{Layers: []Layer{{Kind: LayerHost}, {Kind: LayerCgroup}, {Kind: LayerGuest}}}, // guest in cgroup
		{Layers: []Layer{{Kind: LayerHost}, {Kind: "pod"}}},                           // unknown kind
		{Layers: []Layer{{Kind: LayerHost}, {Kind: LayerCgroup}},
			Tenants: []TenantSpec{{Cores: 2}}}, // tenants + cgroup layers
	}
	for i, s := range cases {
		if _, err := DeployStack(s, 2, host, hv, 1); err == nil {
			t.Fatalf("case %d: invalid stack %v must fail", i, s)
		}
	}
	if _, err := DeployStack(Spec{Kind: VM}.Stack(), 500, host, hv, 1); err == nil {
		t.Fatal("oversize deployment must fail")
	}
}

func TestStackFingerprintDistinguishesFields(t *testing.T) {
	base := Stack{
		Layers:  []Layer{{Kind: LayerHost}, {Kind: LayerGuest, Cores: 4}},
		Tenants: nil,
	}
	mutants := []Stack{
		{Layers: []Layer{{Kind: LayerHost}, {Kind: LayerGuest, Cores: 8}}},
		{Layers: []Layer{{Kind: LayerHost}, {Kind: LayerGuest, Cores: 4, Pinned: true}}},
		{Layers: []Layer{{Kind: LayerHost}, {Kind: LayerGuest, Cores: 4}, {Kind: LayerGuest, Cores: 4}}},
		{Layers: []Layer{{Kind: LayerHost}, {Kind: LayerCgroup, Cores: 4}}},
		{Layers: base.Layers, Tenants: []TenantSpec{{Cores: 2}}},
		{Layers: base.Layers, Tenants: []TenantSpec{{Cores: 2}, {Cores: 2}}},
	}
	fp := base.Fingerprint()
	for i, m := range mutants {
		if m.Fingerprint() == fp {
			t.Fatalf("mutant %d fingerprints like the base: %s", i, fp)
		}
	}
	if base.Fingerprint() != fp {
		t.Fatal("fingerprint must be deterministic")
	}
}

func TestStackJSONRoundTrip(t *testing.T) {
	s := Stack{
		Layers: []Layer{
			{Kind: LayerHost},
			{Kind: LayerGuest, Cores: 8, Pinned: true},
			{Kind: LayerCgroup, Cores: 4},
		},
	}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Stack
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Fingerprint() != s.Fingerprint() {
		t.Fatalf("JSON round-trip changed the stack: %s vs %s", back.Fingerprint(), s.Fingerprint())
	}
}

func TestKindModeJSONNames(t *testing.T) {
	data, err := json.Marshal(Spec{Kind: VMCN, Mode: Pinned, Cores: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"kind":"VMCN","mode":"Pinned","cores":4}`
	if string(data) != want {
		t.Fatalf("spec JSON %s, want %s", data, want)
	}
	var back Spec
	if err := json.Unmarshal([]byte(`{"kind":"cn","mode":"vanilla"}`), &back); err != nil {
		t.Fatal(err)
	}
	if back.Kind != CN || back.Mode != Vanilla {
		t.Fatalf("parsed %+v", back)
	}
	if err := json.Unmarshal([]byte(`{"kind":"pod"}`), &back); err == nil {
		t.Fatal("unknown kind must fail to parse")
	}
}
