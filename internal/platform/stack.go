package platform

// The composable stack model. The paper's four execution platforms are four
// fixed points in a larger space: an ordered list of layers — the physical
// host, any number of nested hypervisor guests, and cgroup(s) on the
// innermost machine — optionally shared by several co-located tenants. The
// canned BM/VM/CN/VMCN specs compile to 4 small stacks (Spec.Stack), and the
// same deployment code handles arbitrary depths (a container in a VM in a
// VM) and multi-tenant co-location (K workloads sharing one host, each with
// its own cgroup or affinity — the generalization of Fig 8's multitasking
// pair), which is what the declarative scenario engine in
// internal/experiments deploys.

import (
	"fmt"
	"strings"

	"repro/internal/cgroups"
	"repro/internal/container"
	"repro/internal/hypervisor"
	"repro/internal/irqsim"
	"repro/internal/machine"
	"repro/internal/topology"
)

// LayerKind names one level of a platform stack.
type LayerKind string

const (
	// LayerHost is the physical machine; every stack starts with one.
	LayerHost LayerKind = "host"
	// LayerGuest is a hypervisor guest on the machine beneath it.
	LayerGuest LayerKind = "guest"
	// LayerCgroup is a container cgroup on the innermost machine.
	LayerCgroup LayerKind = "cgroup"
)

// Layer is one level of a composable platform stack, outermost first.
type Layer struct {
	Kind LayerKind `json:"kind"`
	// Cores sizes the layer: vCPUs for a guest, provisioned cores for a
	// cgroup, affinity width for a limited host. 0 inherits the deployment
	// size.
	Cores int `json:"cores,omitempty"`
	// Pinned selects static placement for the layer: vcpupin for guests,
	// --cpuset-cpus for cgroups. Meaningless on the host layer.
	Pinned bool `json:"pinned,omitempty"`
	// Limit, on the host layer, restricts tasks to Cores (or the deployment
	// size) via interleaved affinity — the GRUB-style maxcpus= core
	// limiting of the paper's bare-metal instances.
	Limit bool `json:"limit,omitempty"`
}

// TenantSpec describes one of several co-located deployments sharing the
// machine a stack's Layers produce. Pinned tenants receive disjoint cpusets
// carved from a rolling allocation over the machine's CPUs (wrapping —
// deliberately sharing cores — once demand exceeds the machine); vanilla
// tenants receive CFS quotas and float.
type TenantSpec struct {
	Name string `json:"name,omitempty"`
	// Cores provisioned for this tenant; 0 inherits the deployment size.
	Cores int `json:"cores,omitempty"`
	// Pinned selects a static cpuset instead of a floating quota.
	Pinned bool `json:"pinned,omitempty"`
	// NoCgroup drops the cgroup entirely: the tenant is a plain
	// affinity-restricted process group (bare-metal-style co-location).
	NoCgroup bool `json:"no_cgroup,omitempty"`
}

// Stack is an ordered platform composition: a host, optional nested guests,
// optional cgroup layers, optionally shared by co-located tenants.
type Stack struct {
	Layers []Layer `json:"layers"`
	// Tenants co-locate K independent deployments on the innermost machine;
	// empty means one implicit tenant spanning the whole deployment.
	// Tenants and cgroup layers are mutually exclusive: tenants define
	// their own cgroups.
	Tenants []TenantSpec `json:"tenants,omitempty"`
}

// Stack compiles the canned platform spec to its composable form:
//
//	BM    host(limit)
//	VM    host / guest
//	CN    host / cgroup
//	VMCN  host / guest / cgroup
//
// with the mode applied as the guest/cgroup layers' Pinned flag. An unknown
// Kind yields an empty (invalid) stack.
func (s Spec) Stack() Stack {
	pinned := s.Mode == Pinned
	switch s.Kind {
	case BM:
		return Stack{Layers: []Layer{{Kind: LayerHost, Limit: true}}}
	case VM:
		return Stack{Layers: []Layer{{Kind: LayerHost}, {Kind: LayerGuest, Pinned: pinned}}}
	case CN:
		return Stack{Layers: []Layer{{Kind: LayerHost}, {Kind: LayerCgroup, Pinned: pinned}}}
	case VMCN:
		return Stack{Layers: []Layer{
			{Kind: LayerHost},
			{Kind: LayerGuest, Pinned: pinned},
			{Kind: LayerCgroup, Pinned: pinned},
		}}
	}
	return Stack{}
}

// Validate checks the stack's shape: exactly one host layer first, guests
// before cgroups, tenants only on cgroup-free stacks.
func (s Stack) Validate() error {
	if len(s.Layers) == 0 {
		return fmt.Errorf("platform: stack has no layers")
	}
	if s.Layers[0].Kind != LayerHost {
		return fmt.Errorf("platform: stack must start with a %q layer, got %q", LayerHost, s.Layers[0].Kind)
	}
	seenCgroup := false
	for i, l := range s.Layers {
		switch l.Kind {
		case LayerHost:
			if i != 0 {
				return fmt.Errorf("platform: layer %d: only the first layer may be %q", i, LayerHost)
			}
		case LayerGuest:
			if seenCgroup {
				return fmt.Errorf("platform: layer %d: %q cannot sit inside a %q layer", i, LayerGuest, LayerCgroup)
			}
		case LayerCgroup:
			seenCgroup = true
		default:
			return fmt.Errorf("platform: layer %d: unknown kind %q (have %q, %q, %q)",
				i, l.Kind, LayerHost, LayerGuest, LayerCgroup)
		}
		if l.Cores < 0 {
			return fmt.Errorf("platform: layer %d: negative cores %d", i, l.Cores)
		}
	}
	if len(s.Tenants) > 0 && seenCgroup {
		return fmt.Errorf("platform: tenants and cgroup layers are mutually exclusive (tenants define their own cgroups)")
	}
	for i, t := range s.Tenants {
		if t.Cores < 0 {
			return fmt.Errorf("platform: tenant %d: negative cores %d", i, t.Cores)
		}
	}
	return nil
}

// Depth returns the number of machine levels (host plus nested guests).
func (s Stack) Depth() int {
	n := 0
	for _, l := range s.Layers {
		if l.Kind == LayerHost || l.Kind == LayerGuest {
			n++
		}
	}
	return n
}

// Fingerprint serializes the stack's full identity as a stable,
// value-only string for memoization keys — no pointers, no map ordering
// (cf. the Topology.Fingerprint lesson).
func (s Stack) Fingerprint() string {
	var b strings.Builder
	for i, l := range s.Layers {
		if i > 0 {
			b.WriteByte('/')
		}
		fmt.Fprintf(&b, "%s(c%d,p%t,l%t)", l.Kind, l.Cores, l.Pinned, l.Limit)
	}
	for _, t := range s.Tenants {
		// %q: a delimiter inside a tenant name must not forge field
		// boundaries in memo keys.
		fmt.Fprintf(&b, "+%q(c%d,p%t,n%t)", t.Name, t.Cores, t.Pinned, t.NoCgroup)
	}
	return b.String()
}

// Label renders a compact human name for the stack, e.g. "host/guest/cgroup
// ×3 tenants".
func (s Stack) Label() string {
	parts := make([]string, len(s.Layers))
	for i, l := range s.Layers {
		parts[i] = string(l.Kind)
	}
	out := strings.Join(parts, "/")
	if n := len(s.Tenants); n > 0 {
		out += fmt.Sprintf(" ×%d tenants", n)
	}
	return out
}

// Slot is one tenant's view of a deployment: where its tasks run and under
// which restrictions.
type Slot struct {
	Name string
	// Group is the cgroup the tenant's tasks join (nil for cgroup-free
	// tenants).
	Group *cgroups.Group
	// Affinity is the tenant's CPU restriction (empty when the cgroup
	// carries the restriction or the tenant floats).
	Affinity topology.CPUSet
	// Cores is the tenant's provisioned size (what the workload sizes
	// itself to).
	Cores int
}

// foldResult is the outcome of folding a stack's machine layers: the
// innermost machine's full configuration plus the host-side state the
// populate step needs. It is a pure value — deriving it touches no machine —
// so the same fold feeds both fresh construction (DeployStack) and in-place
// reuse (RedeployStack).
type foldResult struct {
	cfg         machine.Config  // innermost machine configuration
	affinity    topology.CPUSet // host-layer core-limit affinity (empty inside guests)
	depth       int             // number of guest layers folded
	firstCgroup int             // index of the first cgroup layer (len(Layers) if none)
}

// foldLayers validates a stack and folds its machine layers (host + nested
// guests) into the innermost machine's configuration.
//
// Only the innermost machine is ever built: guest layers fold their
// virtualization overlay over the configuration of the machine beneath them
// (hypervisor.GuestConfig), exactly as the single-guest platforms did, so a
// deeper stack pays the overlay repeatedly — compute tax on compute tax —
// which is the cost model related work measures for nested
// container-on-VM stacks.
func foldLayers(stack Stack, size int, host machine.Config, hv hypervisor.Params, seed uint64) (foldResult, error) {
	var fr foldResult
	if size <= 0 {
		return fr, fmt.Errorf("platform: instance size must be positive, got %d", size)
	}
	if size > host.Topo.NumCPUs() {
		return fr, fmt.Errorf("platform: instance size %d exceeds host's %d CPUs",
			size, host.Topo.NumCPUs())
	}
	if err := stack.Validate(); err != nil {
		return fr, err
	}

	cfg := host
	cfg.Seed = seed

	// Split layers: machines (host + guests) first, then cgroups.
	firstCgroup := len(stack.Layers)
	lastGuest := -1
	for i, l := range stack.Layers {
		if l.Kind == LayerCgroup && i < firstCgroup {
			firstCgroup = i
		}
		if l.Kind == LayerGuest {
			lastGuest = i
		}
	}
	hasCgroups := firstCgroup < len(stack.Layers)
	tenantCgroups := false
	for _, t := range stack.Tenants {
		if !t.NoCgroup {
			tenantCgroups = true
		}
	}

	var affinity topology.CPUSet
	depth := 0
	for i, l := range stack.Layers[:firstCgroup] {
		switch l.Kind {
		case LayerHost:
			if l.Limit || l.Cores > 0 {
				n := l.Cores
				if n == 0 {
					n = size
				}
				if n > cfg.Topo.NumCPUs() {
					return fr, fmt.Errorf("platform: host layer limit %d exceeds host's %d CPUs",
						n, cfg.Topo.NumCPUs())
				}
				affinity = cfg.Topo.InterleavedCPUs(n)
			}
		case LayerGuest:
			depth++
			vcpus := l.Cores
			if vcpus == 0 {
				vcpus = size
			}
			if vcpus > cfg.Topo.NumCPUs() {
				return fr, fmt.Errorf("platform: guest layer %d: %d vCPUs exceed the %d CPUs beneath it",
					i, vcpus, cfg.Topo.NumCPUs())
			}
			// Only the innermost guest hosts the cgroups, so only it pays
			// the nested-accounting (VMCN) overlay.
			containerized := i == lastGuest && (hasCgroups || tenantCgroups)
			base := "vm"
			if containerized {
				base = "vmcn"
			}
			name := fmt.Sprintf("%s%d", base, vcpus)
			if depth > 1 {
				name = fmt.Sprintf("%s-l%d", name, depth)
			}
			gcfg, err := hypervisor.GuestConfig(cfg, hypervisor.VMSpec{
				Name:          name,
				VCPUs:         vcpus,
				Pinned:        l.Pinned,
				Containerized: containerized,
			}, hv, seed)
			if err != nil {
				return fr, err
			}
			cfg = gcfg
			// Tasks live inside the guest; any host-side affinity no longer
			// applies to them.
			affinity = topology.CPUSet{}
		}
	}
	return foldResult{cfg: cfg, affinity: affinity, depth: depth, firstCgroup: firstCgroup}, nil
}

// DeployStack builds a deployment from a composable stack. size is the
// deployment's instance size in cores (Table II); layers and tenants with
// Cores 0 inherit it. host is the physical host calibration; hv the
// hypervisor calibration applied per guest layer; seed drives all the run's
// randomness.
//
// Nested cgroup layers fold into their effective constraint: the quota is
// the tightest vanilla layer, the cpuset the tightest pinned layer (the
// kernel enforces the intersection; the simulator folds it up front).
func DeployStack(stack Stack, size int, host machine.Config, hv hypervisor.Params, seed uint64) (*Deployment, error) {
	fr, err := foldLayers(stack, size, host, hv, seed)
	if err != nil {
		return nil, err
	}
	m, err := machine.New(fr.cfg)
	if err != nil {
		return nil, err
	}
	d := &Deployment{Stack: stack, M: m}
	if err := populate(d, stack, size, fr); err != nil {
		return nil, err
	}
	return d, nil
}

// RedeployStack rewinds an existing deployment in place so the next trial
// reuses its machine arena instead of rebuilding it: the layer fold is
// recomputed (it is pure), the machine resets to the folded configuration,
// and the cgroup/tenant slots repopulate. The deployment afterwards is
// observationally identical to DeployStack's — same machine semantics, same
// group registration order, same tenant carving — just without the
// allocation storm. It fails (leaving d unusable until redeployed or
// rebuilt) when the folded configuration needs a different machine shape;
// callers fall back to a fresh DeployStack.
func RedeployStack(d *Deployment, stack Stack, size int, host machine.Config, hv hypervisor.Params, seed uint64) error {
	fr, err := foldLayers(stack, size, host, hv, seed)
	if err != nil {
		return err
	}
	return redeploy(d, stack, size, fr)
}

// redeploy is RedeployStack past the fold: reset the machine, clear the
// per-deployment attachments, repopulate.
func redeploy(d *Deployment, stack Stack, size int, fr foldResult) error {
	if err := d.M.Reset(fr.cfg); err != nil {
		return err
	}
	d.Spec = Spec{}
	d.Stack = stack
	d.Group = nil
	d.Container = nil
	d.Affinity = topology.CPUSet{}
	d.Tenants = d.Tenants[:0]
	return populate(d, stack, size, fr)
}

// Pool reuses machine arenas across deployments. The key is the folded
// innermost machine's topology pointer (host topologies are long-lived
// shared values; guest topologies are interned per (name, vCPUs)), which is
// exactly the shape a machine.Reset can rewind onto — so one pooled
// 112-CPU host machine serves every BM and CN trial at every instance
// size, and each guest shape keeps one arena. A Pool is single-goroutine
// state, like the machines it holds: concurrent trial workers each own one.
type Pool struct {
	deployments map[*topology.Topology]*Deployment
}

// Deploy builds a deployment from a composable stack like DeployStack,
// rewinding a pooled same-topology machine arena in place when one exists.
// reused reports which path ran. A redeploy failure discards the pooled
// arena and falls back to fresh construction — Deploy never returns an
// error a cold DeployStack would not.
func (p *Pool) Deploy(stack Stack, size int, host machine.Config, hv hypervisor.Params, seed uint64) (d *Deployment, reused bool, err error) {
	fr, err := foldLayers(stack, size, host, hv, seed)
	if err != nil {
		return nil, false, err
	}
	if d := p.deployments[fr.cfg.Topo]; d != nil {
		if err := redeploy(d, stack, size, fr); err == nil {
			return d, true, nil
		}
		delete(p.deployments, fr.cfg.Topo)
	}
	m, err := machine.New(fr.cfg)
	if err != nil {
		return nil, false, err
	}
	d = &Deployment{Stack: stack, M: m}
	if err := populate(d, stack, size, fr); err != nil {
		return nil, false, err
	}
	if p.deployments == nil {
		p.deployments = make(map[*topology.Topology]*Deployment)
	}
	p.deployments[fr.cfg.Topo] = d
	return d, false, nil
}

// Clear drops every pooled arena — the containment path after a trial
// panic may have left a machine half-rewound.
func (p *Pool) Clear() {
	p.deployments = nil
}

// populate attaches the cgroup layers and tenant slots of a stack to the
// deployment's (fresh or reset) machine.
func populate(d *Deployment, stack Stack, size int, fr foldResult) error {
	m := d.M
	affinity := fr.affinity
	depth := fr.depth
	d.Affinity = affinity

	// Cgroup layers on the innermost machine.
	if fr.firstCgroup < len(stack.Layers) {
		cgLayers := stack.Layers[fr.firstCgroup:]
		base := "cn"
		if depth > 0 {
			base = "cn-in-vm"
		}
		if len(cgLayers) == 1 {
			l := cgLayers[0]
			cores := l.Cores
			if cores == 0 {
				cores = size
			}
			cn, err := container.Create(m, container.Spec{
				Name:    fmt.Sprintf("%s%d", base, cores),
				Cores:   cores,
				Pinned:  l.Pinned,
				NearCPU: m.IRQ.Channel(irqsim.ChanDisk).Home,
			})
			if err != nil {
				return err
			}
			d.Group = cn.Group
			d.Container = cn
		} else {
			// Fold nested cgroups into their effective constraint.
			quota := 0.0
			pinnedCores := 0
			for _, l := range cgLayers {
				cores := l.Cores
				if cores == 0 {
					cores = size
				}
				if cores > m.Topo.NumCPUs() {
					return fmt.Errorf("platform: cgroup layer: %d cores exceed machine's %d CPUs",
						cores, m.Topo.NumCPUs())
				}
				if l.Pinned {
					if pinnedCores == 0 || cores < pinnedCores {
						pinnedCores = cores
					}
				} else if quota == 0 || float64(cores) < quota {
					quota = float64(cores)
				}
			}
			var set topology.CPUSet
			if pinnedCores > 0 {
				set = m.Topo.PinPlan(pinnedCores, m.IRQ.Channel(irqsim.ChanDisk).Home)
			}
			d.Group = m.NewGroup(fmt.Sprintf("%s-x%d", base, len(cgLayers)), quota, set)
		}
	}

	// Tenant slots: explicit co-location, or the single implicit tenant.
	// Appending onto the (possibly truncated) existing slice lets a
	// redeployed deployment reuse its slot backing.
	if len(stack.Tenants) == 0 {
		d.Tenants = append(d.Tenants[:0], Slot{Name: "tenant0", Group: d.Group, Affinity: d.Affinity, Cores: size})
		return nil
	}
	// A host-layer Limit confines every tenant: pinned/affinity tenants
	// carve their CPUs from the limited set, and floating (quota) tenants
	// carry the limit as task affinity.
	allowed := affinity.Slice()
	if len(allowed) == 0 {
		allowed = m.Topo.AllCPUs().Slice()
	}
	cursor := 0
	for ti, t := range stack.Tenants {
		cores := t.Cores
		if cores == 0 {
			cores = size
		}
		if cores > m.Topo.NumCPUs() {
			return fmt.Errorf("platform: tenant %d: %d cores exceed machine's %d CPUs",
				ti, cores, m.Topo.NumCPUs())
		}
		name := t.Name
		if name == "" {
			name = fmt.Sprintf("tenant%d", ti)
		}
		slot := Slot{Name: name, Cores: cores}
		switch {
		case t.NoCgroup:
			slot.Affinity = takeCPUs(allowed, &cursor, cores)
		case t.Pinned:
			slot.Group = m.NewGroup(name, 0, takeCPUs(allowed, &cursor, cores))
		default:
			slot.Group = m.NewGroup(name, float64(cores), topology.CPUSet{})
			slot.Affinity = affinity
		}
		d.Tenants = append(d.Tenants, slot)
	}
	return nil
}

// takeCPUs carves the next n CPUs from a rolling cursor over the allowed
// CPU ids, wrapping (and therefore sharing cores between tenants) once
// demand exceeds the set — the deliberate-interference regime of
// co-location studies.
func takeCPUs(allowed []int, cursor *int, n int) topology.CPUSet {
	total := len(allowed)
	if n > total {
		n = total
	}
	var s topology.CPUSet
	for i := 0; i < n; i++ {
		s.Add(allowed[(*cursor+i)%total])
	}
	*cursor = (*cursor + n) % total
	return s
}
