package sched

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
)

// bigTopoRig saturates the 1024-CPU dual-socket host (topology.BigHost1024,
// the CPUSet capacity limit) with queued tasks spread over both sockets:
// every steal walks real 16-word bitmask scans, the per-socket queued
// index, group filtering and cross-socket domain ordering at the scale the
// big-host fast paths are sized for.
func bigTopoRig(t testing.TB) (*stealRig, []*Task) {
	topo := topology.BigHost1024()
	sr := &stealRig{r: newRig(topo, nil)}
	g := sr.r.cg.NewGroup("g", 0, topology.CPUSet{})
	n := topo.NumCPUs()
	var tasks []*Task
	// 256 queued tasks scattered across the CPU range by a stride coprime
	// with 1024, thirds of them grouped, so queuedMask has set bits in
	// every word region and both sockets carry stealable load.
	for i := 0; i < 256; i++ {
		cpu := (i * 137) % n
		var grp = g
		if i%3 == 0 {
			grp = nil
		}
		tasks = append(tasks, sr.queue(cpu, sim.Time(i)*sim.Microsecond, grp, topology.CPUSet{}))
	}
	return sr, tasks
}

// TestAllocsBigTopologySteadyState is the zero-alloc contract of the
// scheduler fast path at the 1024-CPU scale: once affinities are interned
// and heaps carved, a steal + requeue cycle allocates nothing.
func TestAllocsBigTopologySteadyState(t *testing.T) {
	sr, _ := bigTopoRig(t)
	s := sr.r.s
	thief := s.cpus[1023] // top CPU of socket 1: the hi-word scan path
	for i := 0; i < 64; i++ {
		st := s.steal(thief)
		if st == nil {
			t.Fatal("saturated rig must always yield a steal")
		}
		s.rqPush(s.cpus[2], st)
	}
	if n := testing.AllocsPerRun(200, func() {
		st := s.steal(thief)
		s.rqPush(s.cpus[2], st)
	}); n != 0 {
		t.Fatalf("big-topology steal+requeue allocates %v per run, want 0", n)
	}
}

// BenchmarkBigTopology measures one idle-balancing pick on the saturated
// 1024-CPU dual-socket host (steal + requeue so the queues never drain):
// the cost the word-masked scans and O(occupied sockets) indexes must keep
// flat as the host grows 9x past the paper's 112-CPU machine.
func BenchmarkBigTopology(b *testing.B) {
	sr, _ := bigTopoRig(b)
	s := sr.r.s
	thief := s.cpus[1023]
	// Same warmup as the zero-alloc test: first picks intern affinity
	// slices and grow side tables, which would otherwise smear fractional
	// allocs into short -benchtime runs.
	for i := 0; i < 64; i++ {
		s.rqPush(s.cpus[2], s.steal(thief))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := s.steal(thief)
		s.rqPush(s.cpus[2], st)
	}
}
