package sched

import (
	"fmt"

	"repro/internal/cgroups"
	"repro/internal/irqsim"
	"repro/internal/sim"
	"repro/internal/topology"
)

// ActionKind enumerates what a task asks the scheduler to do next.
type ActionKind int

const (
	// ActCompute runs on a CPU for a given amount of nominal work time.
	ActCompute ActionKind = iota
	// ActIO blocks the task for a device latency, then wakes it through the
	// IRQ path of a channel.
	ActIO
	// ActSend transmits a message to another task (paying sync + copy
	// costs) and continues.
	ActSend
	// ActRecv blocks until a message is available in the task's mailbox.
	ActRecv
	// ActSleep blocks the task for a duration without the IO/IRQ path
	// (paced arrivals, think-time).
	ActSleep
	// ActDone terminates the task.
	ActDone
)

// Action is one step of a task program.
type Action struct {
	Kind ActionKind

	// Compute: nominal work duration (scaled by the machine's compute
	// factors when executed).
	Dur sim.Time

	// IO: device channel index and service latency.
	Channel int
	Latency sim.Time

	// Send: destination task and payload size.
	To    *Task
	Bytes int64
}

// Compute returns a compute action.
func Compute(d sim.Time) Action { return Action{Kind: ActCompute, Dur: d} }

// IO returns an IO action on channel ch with the given device latency.
func IO(ch int, latency sim.Time) Action {
	return Action{Kind: ActIO, Channel: ch, Latency: latency}
}

// Send returns a message-send action.
func Send(to *Task, bytes int64) Action { return Action{Kind: ActSend, To: to, Bytes: bytes} }

// Recv returns a blocking-receive action.
func Recv() Action { return Action{Kind: ActRecv} }

// Sleep returns a blocking pause without the IO completion path.
func Sleep(d sim.Time) Action { return Action{Kind: ActSleep, Dur: d} }

// Done returns the terminating action.
func Done() Action { return Action{Kind: ActDone} }

// Program drives a task: the scheduler calls Next each time the previous
// action completes. Msgs received since the last call are drained via
// TakeMessage.
type Program interface {
	Next(t *Task) Action
}

// ProgramFunc adapts a closure to Program.
type ProgramFunc func(t *Task) Action

// Next implements Program.
func (f ProgramFunc) Next(t *Task) Action { return f(t) }

// Sequence returns a Program that yields the given actions in order and then
// Done.
func Sequence(actions ...Action) Program {
	i := 0
	return ProgramFunc(func(*Task) Action {
		if i >= len(actions) {
			return Done()
		}
		a := actions[i]
		i++
		return a
	})
}

// ActionList is a Program backed by a shared, immutable action slice: the
// progress cursor lives on each Task, so one ActionList value — and the
// single interface conversion it costs — can drive any number of tasks with
// zero per-task allocation. Sequence, by contrast, builds a fresh closure
// per task; spawn storms (a 16-thread transcoder per trial, thousands of
// trials) use ActionList. The slice must not be mutated after spawning.
type ActionList []Action

// Next implements Program.
func (a ActionList) Next(t *Task) Action {
	if int(t.progIdx) >= len(a) {
		return Done()
	}
	act := a[t.progIdx]
	t.progIdx++
	return act
}

// taskState is the lifecycle of a task inside the scheduler.
type taskState int

const (
	stateNew taskState = iota
	stateRunnable
	stateRunning
	stateBlockedIO
	stateBlockedRecv
	stateDone
)

// Message is an inter-task payload (MPI model).
type Message struct {
	From    *Task
	Bytes   int64
	sentCPU int // CPU the sender ran on, for line-transfer distance
}

// TaskSpec configures a task before spawning.
type TaskSpec struct {
	Name string
	// Group is the task's cgroup (nil = ungrouped, e.g. bare metal).
	Group *cgroups.Group
	// Proc identifies the task's thread group (process). Threads sharing a
	// Proc value > 0 hammer the same cgroup usage counters, which is what
	// the nested-accounting cost inside VMCN guests contends on. The zero
	// value means "own single-thread process" (no sharing).
	Proc int
	// Affinity restricts the task to a CPU set (empty = group cpuset or all;
	// used for the bare-metal GRUB-style core limiting).
	Affinity topology.CPUSet
	// WorkingSet scales cache-reload penalties (1.0 = nominal, e.g. a video
	// transcoder's frame buffers; 0 disables migration penalties).
	WorkingSet float64
	// MemBound is the memory-bound fraction of compute, feeding the NUMA
	// slowdown factor.
	MemBound float64
	// VMTaxWeight is how strongly this task's compute suffers the guest
	// virtualization tax (1.0 = full, e.g. large-working-set transcode; low
	// for cache-resident integer work).
	VMTaxWeight float64
	// Program drives the task.
	Program Program
}

// Task is a schedulable entity (a thread or a process; the paper treats both
// as host-OS processes).
type Task struct {
	ID   int
	Spec TaskSpec

	state     taskState
	vruntime  sim.Time
	remaining sim.Time // nominal work left in the current compute chunk
	lastCPU   int
	lastRanAt sim.Time
	curCPU    int
	rqCPU     int    // runqueue currently holding the task (-1 = none)
	rqPos     int32  // heap position inside its subqueue (-1 = not queued)
	rqSeq     uint64 // global enqueue sequence; runqueue FIFO tie-break
	qIdx      int32  // subqueue index of the task's cgroup (0 = ungrouped)
	progIdx   int32  // program counter for shared stateless programs (ActionList)

	// sched is the owning scheduler, set at spawn: the static timer/arrival
	// callbacks (taskWakeFired, taskArrived) recover their context through
	// it instead of capturing it in per-task closures.
	sched *Scheduler

	// procCtr is the shared runnable-thread counter of the task's thread
	// group, resolved once at spawn so the dispatch path skips the map.
	procCtr *procCount

	// wakeTimer fires block expiries (IO completion when wakeCh is set,
	// sleep wake otherwise). Embedded and bound to a static callback on
	// first block, so steady-state IO pays neither a Timer allocation nor a
	// closure.
	wakeTimer sim.Timer
	wakeCh    *irqsim.Channel

	// pending overhead to charge at next dispatch (wakeup path costs).
	pendingOverhead sim.Time
	// pendingChurn is the unthrottle cold-restart cost. It overwrites
	// rather than accumulates: a task starved across several throttle
	// cycles refills its caches once when it finally runs, and stacking
	// the charge would spiral small-quota groups into a livelock.
	pendingChurn      sim.Time
	pendingIRQ        *irqsim.Channel // IO channel whose completion cost to pay
	pendingDeliver    []Message       // undelivered mailbox
	pendingMsgFromCPU int             // sender CPU of the message that woke us (-1 none)

	// A send in flight is modeled as a message chunk; when it ends, the
	// message is delivered.
	chunkIsMsg bool
	sendTo     *Task
	sendBytes  int64

	// aff points at the task's interned effective-affinity entry (affinity
	// is immutable for a task's lifetime); the pointer is what keeps the
	// placement hot paths free of 136-byte CPUSet copies.
	aff *affEntry

	SpawnedAt  sim.Time
	FinishedAt sim.Time
	finished   bool
}

// Name returns the task's configured name.
func (t *Task) Name() string { return t.Spec.Name }

// Finished reports whether the task has completed.
func (t *Task) Finished() bool { return t.finished }

// ResponseTime is completion minus spawn; the paper's per-request metric.
func (t *Task) ResponseTime() sim.Time {
	if !t.finished {
		return -1
	}
	return t.FinishedAt - t.SpawnedAt
}

// TakeMessage pops the oldest mailbox message, if any. Programs call this
// after a Recv action completes.
func (t *Task) TakeMessage() (Message, bool) {
	if len(t.pendingDeliver) == 0 {
		return Message{}, false
	}
	m := t.pendingDeliver[0]
	t.pendingDeliver = t.pendingDeliver[1:]
	return m, true
}

func (t *Task) String() string {
	return fmt.Sprintf("task %d (%s)", t.ID, t.Spec.Name)
}
