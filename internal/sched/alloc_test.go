package sched

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
)

// TestAllocsSteadyStateSlices guards the scheduler's zero-alloc contract:
// once runqueues, the event arena and per-task timers have warmed up, a
// contended machine cycling through slices must not allocate per event.
func TestAllocsSteadyStateSlices(t *testing.T) {
	topo, err := topology.New("t", 1, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	r := newRig(topo, nil)
	// Oversubscribe 8 CPUs with 24 spinners so every slice end reshuffles
	// runqueues, exercising push/pick/preempt/balance continuously.
	for i := 0; i < 24; i++ {
		r.s.Spawn(TaskSpec{
			Name:    "spin",
			Program: Sequence(Compute(sim.FromSeconds(1000))),
		}, 0)
	}
	// Warm up: arena growth, runqueue capacity, affinity caches.
	for i := 0; i < 5000; i++ {
		if !r.eng.Step() {
			t.Fatal("queue drained during warmup")
		}
	}
	avg := testing.AllocsPerRun(2000, func() {
		if !r.eng.Step() {
			t.Fatal("queue drained during measurement")
		}
	})
	if avg > 0.01 {
		t.Fatalf("steady-state slice cycling allocates %.3f allocs/event, want 0", avg)
	}
}
