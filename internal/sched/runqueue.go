package sched

import (
	"math/bits"

	"repro/internal/cgroups"
	"repro/internal/sim"
)

// The runqueue layer replaces the seed's flat `[]*Task` per CPU (O(n) scans
// for every pick/min/count, memmove deletes) with per-group indexed 4-ary
// min-heaps:
//
//   - Ordering is (vruntime, rqSeq). rqSeq is a scheduler-global counter
//     stamped at every enqueue, which reproduces the seed's tie-break
//     (earliest-appended wins) exactly — required for byte-identical runs.
//   - One subqueue per cgroup (index 0 = ungrouped). Throttling is a
//     per-group property that flips outside the scheduler's control (the
//     bandwidth period timer), so partitioning by group turns "skip
//     throttled tasks" into "skip throttled subqueues" without any
//     notification protocol: picks are O(groups · log n), counts O(groups).
//   - Each subqueue's heap root is its cached min-vruntime; the queue-wide
//     minimum is the best root.
//   - Tasks carry their heap position (rqPos), so steal can unlink an
//     arbitrary task in O(log n).
//
// The sift/remove logic mirrors the position-tracked 4-ary heap in
// sim/engine.go, specialized to *Task instead of event slots. The
// duplication is deliberate (shared helpers would put non-inlinable
// callbacks on the hottest loops); fixes to one must be mirrored in the
// other.

// rqEntry is one element of a subqueue heap: the task pointer plus a copy
// of its (vruntime, rqSeq) sort key, so heap comparisons stay inside the
// contiguous entry array instead of chasing each *Task. The copy is safe
// because both key fields are frozen while a task is queued — vruntime
// only advances for the running task, and rqSeq is stamped at enqueue.
type rqEntry struct {
	vruntime sim.Time
	rqSeq    uint64
	t        *Task
}

func entryLessRQ(a, b rqEntry) bool {
	if a.vruntime != b.vruntime {
		return a.vruntime < b.vruntime
	}
	return a.rqSeq < b.rqSeq
}

// subQueue is the runqueue partition of one cgroup on one CPU.
type subQueue struct {
	g *cgroups.Group // nil for the ungrouped partition
	h []rqEntry      // 4-ary min-heap by (vruntime, rqSeq)
}

// throttledQ reports whether the whole partition is banned from running.
func (sq *subQueue) throttledQ() bool { return sq.g != nil && sq.g.Throttled() }

func (sq *subQueue) push(t *Task) {
	t.rqPos = int32(len(sq.h))
	sq.h = append(sq.h, rqEntry{vruntime: t.vruntime, rqSeq: t.rqSeq, t: t})
	sq.siftUp(int(t.rqPos))
}

func (sq *subQueue) siftUp(i int) {
	ent := sq.h[i]
	for i > 0 {
		parent := (i - 1) / 4
		p := sq.h[parent]
		if !entryLessRQ(ent, p) {
			break
		}
		sq.h[i] = p
		p.t.rqPos = int32(i)
		i = parent
	}
	sq.h[i] = ent
	ent.t.rqPos = int32(i)
}

func (sq *subQueue) siftDown(i int) {
	n := len(sq.h)
	ent := sq.h[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if entryLessRQ(sq.h[c], sq.h[best]) {
				best = c
			}
		}
		b := sq.h[best]
		if !entryLessRQ(b, ent) {
			break
		}
		sq.h[i] = b
		b.t.rqPos = int32(i)
		i = best
	}
	sq.h[i] = ent
	ent.t.rqPos = int32(i)
}

// removeAt unlinks the task at heap position i and returns it.
func (sq *subQueue) removeAt(i int) *Task {
	t := sq.h[i].t
	n := len(sq.h) - 1
	moved := sq.h[n]
	sq.h[n] = rqEntry{}
	sq.h = sq.h[:n]
	if i != n {
		sq.h[i] = moved
		moved.t.rqPos = int32(i)
		sq.siftDown(i)
		sq.siftUp(i)
	}
	t.rqPos = -1
	return t
}

// rqPush enqueues a runnable task on c, stamping the global enqueue
// sequence that preserves the seed scheduler's FIFO tie-break, and advances
// the per-CPU / per-socket / per-group queued-load indexes steal prunes on.
func (s *Scheduler) rqPush(c *cpuRun, t *Task) {
	t.rqSeq = s.rqSeq
	s.rqSeq++
	t.rqCPU = c.id
	qi := int(t.qIdx)
	if len(c.subs) <= qi {
		if qi < cap(c.subs) {
			// The pre-carved backing (sched.New carves two partitions per
			// CPU) still has room: extend in place, no allocation.
			c.subs = c.subs[:qi+1]
		} else {
			// 3+-tenant host: grow to the needed partition count once.
			ns := make([]subQueue, qi+1, 2*(qi+1))
			copy(ns, c.subs)
			c.subs = ns
		}
	}
	sq := &c.subs[qi]
	if sq.g == nil {
		sq.g = t.Spec.Group // no-op for the ungrouped partition (qIdx 0)
	}
	if sq.h == nil {
		sq.h = s.carveHeap()
	}
	sq.push(t)
	if c.queued == 0 {
		s.queuedMask[c.id>>6] |= 1 << uint(c.id&63)
	}
	c.queued++
	s.socketQueued[s.tix.Socket(c.id)]++
	s.groupQueued[qi]++
	s.totalQueued++
}

// rqUnlinked retires the queued-load accounting of a task just removed from
// c's runqueue (pickLocal or steal).
func (s *Scheduler) rqUnlinked(c *cpuRun, t *Task) {
	c.queued--
	if c.queued == 0 {
		s.queuedMask[c.id>>6] &^= 1 << uint(c.id&63)
	}
	s.socketQueued[s.tix.Socket(c.id)]--
	s.groupQueued[t.qIdx]--
	s.totalQueued--
}

// pickLocal removes and returns the min-vruntime runnable task of c's queue.
func (s *Scheduler) pickLocal(c *cpuRun) *Task {
	var best rqEntry
	var bestQ *subQueue
	for i := range c.subs {
		sq := &c.subs[i]
		if len(sq.h) == 0 || sq.throttledQ() {
			continue
		}
		if r := sq.h[0]; bestQ == nil || entryLessRQ(r, best) {
			best, bestQ = r, sq
		}
	}
	if bestQ == nil {
		return nil
	}
	bestQ.removeAt(0)
	s.rqUnlinked(c, best.t)
	best.t.rqCPU = -1
	return best.t
}

// steal pulls a waiting runnable task from the most loaded other queue that
// allows this CPU (idle balancing).
//
// The pick is defined exactly as the seed's full scan: the winner is the
// victim CPU with the highest load (queued tasks allowed on the thief, not
// throttled), load ties resolving toward the lowest victim id, and the
// stolen task is that victim's (vruntime, rqSeq) minimum among allowed
// tasks. The fast path reproduces that pick while touching almost nothing:
//
//   - the per-group global queued index bails out in O(groups) when no
//     group has queued, unthrottled tasks anywhere (by far the common case:
//     steal runs on an idle CPU);
//   - steal domains are visited own-socket-first, then remote sockets in
//     ascending order; a socket with no queued tasks is skipped in one
//     compare, and within a socket only CPUs with a set queued-mask bit are
//     touched (word-at-a-time, so an empty 512-CPU socket segment costs 8
//     word reads instead of 512 per-CPU compares);
//   - a victim whose raw queue depth cannot beat the current best
//     (load ≤ best, or equal with a higher id) is skipped without touching
//     its heaps — queue depth bounds affinity-filtered load from above.
//
// Visit order differs from the retired StealOrder table (which put SMT
// siblings before LLC mates), but the pick is a total order over victims and
// tasks, so any traversal order yields the identical steal.
func (s *Scheduler) steal(c *cpuRun) *Task {
	// The bail-out lives in this small wrapper so the common miss (steal
	// runs on an idle CPU, usually with nothing queued anywhere) never
	// pays the scan machinery's stack frame and closure setup below. The
	// aggregate count answers the empty case in one compare; the group
	// loop only runs when something is queued, to skip all-throttled
	// loads before committing to the scan.
	if s.totalQueued == 0 {
		return nil
	}
	stealable := false
	for qi, n := range s.groupQueued {
		if n == 0 {
			continue
		}
		if g := s.qGroups[qi]; g != nil && g.Throttled() {
			continue
		}
		stealable = true
		break
	}
	if !stealable {
		return nil
	}
	return s.stealScan(c)
}

// stealScan is steal's slow path: some group has queued, unthrottled tasks
// somewhere, so scan the victim CPUs for the best pick.
func (s *Scheduler) stealScan(c *cpuRun) *Task {
	var cand *Task
	var candQ *subQueue
	var candCPU *cpuRun
	bestLoad := 0
	bestID := int(^uint(0) >> 1)
	scan := func(o *cpuRun) {
		q := int(o.queued)
		if q == 0 || q < bestLoad || (q == bestLoad && o.id > bestID) {
			return // cannot beat the current best pick
		}
		load := 0
		var best *Task
		var bestKey rqEntry
		var bestQ *subQueue
		for i := range o.subs {
			sq := &o.subs[i]
			if len(sq.h) == 0 || sq.throttledQ() {
				continue
			}
			// Heap layout order is fine here: candidates are compared by
			// the total (vruntime, rqSeq) order, so the scan result does
			// not depend on traversal order.
			for _, ent := range sq.h {
				if set, _ := s.cachedAffinity(ent.t); !set.Contains(c.id) {
					continue
				}
				load++
				if best == nil || entryLessRQ(ent, bestKey) {
					best, bestKey, bestQ = ent.t, ent, sq
				}
			}
		}
		if best != nil && (load > bestLoad || (load == bestLoad && o.id < bestID)) {
			cand, candQ, candCPU = best, bestQ, o
			bestLoad, bestID = load, o.id
		}
	}
	scanSocket := func(sk int) {
		lo, hi := s.tix.SocketRange(sk)
		for w := lo >> 6; w<<6 < hi; w++ {
			word := s.queuedMask[w]
			base := w << 6
			// Sockets need not be word-aligned: mask off bits outside
			// [lo, hi).
			if base < lo {
				word &^= (1 << uint(lo-base)) - 1
			}
			if base+64 > hi {
				word &= (1 << uint(hi-base)) - 1
			}
			for word != 0 {
				b := bits.TrailingZeros64(word)
				word &^= 1 << uint(b)
				if id := base + b; id != c.id {
					scan(s.cpus[id])
				}
			}
		}
	}
	mySock := s.tix.Socket(c.id)
	if s.socketQueued[mySock] != 0 {
		scanSocket(mySock)
	}
	for sk := 0; sk < s.tix.NumSockets(); sk++ {
		if sk == mySock || s.socketQueued[sk] == 0 {
			continue
		}
		scanSocket(sk)
	}
	if cand == nil {
		return nil
	}
	candQ.removeAt(int(cand.rqPos))
	s.rqUnlinked(candCPU, cand)
	cand.rqCPU = -1
	s.bd.Steals++
	return cand
}

// markBusy clears a CPU's idle-mask bit at dispatch.
func (s *Scheduler) markBusy(cpu int) { s.idleMask[cpu>>6] &^= 1 << uint(cpu&63) }

// markIdle sets a CPU's idle-mask bit when its slice retires.
func (s *Scheduler) markIdle(cpu int) { s.idleMask[cpu>>6] |= 1 << uint(cpu&63) }

// forEachIdle visits currently idle CPUs in ascending id order. The mask is
// re-read per word, so a visit that dispatches work onto its own CPU does
// not disturb the remaining iteration (dispatching CPU i never busies CPU
// j != i).
func (s *Scheduler) forEachIdle(fn func(c *cpuRun)) {
	for w, word := range s.idleMask {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &= word - 1
			fn(s.cpus[w<<6|b])
		}
	}
}

// minVruntime returns the smallest vruntime currently associated with c:
// the running task or the best subqueue root (throttled partitions
// included, matching queue membership semantics).
func (s *Scheduler) minVruntime(c *cpuRun) sim.Time {
	var mv sim.Time
	seen := false
	if c.current != nil {
		mv = c.current.vruntime
		seen = true
	}
	for i := range c.subs {
		sq := &c.subs[i]
		if len(sq.h) == 0 {
			continue
		}
		if v := sq.h[0].vruntime; !seen || v < mv {
			mv = v
			seen = true
		}
	}
	return mv
}

// hasRunnable reports whether any queued task of c may run right now.
func (s *Scheduler) hasRunnable(c *cpuRun) bool {
	if len(c.subs) <= 1 {
		// Only the ungrouped partition exists, which never throttles.
		return c.queued > 0
	}
	for i := range c.subs {
		sq := &c.subs[i]
		if len(sq.h) > 0 && !sq.throttledQ() {
			return true
		}
	}
	return false
}

// runnableCount returns how many queued tasks of c may run right now.
func (s *Scheduler) runnableCount(c *cpuRun) int {
	if len(c.subs) <= 1 {
		// Only the ungrouped partition exists, which never throttles.
		return int(c.queued)
	}
	n := 0
	for i := range c.subs {
		sq := &c.subs[i]
		if len(sq.h) == 0 || sq.throttledQ() {
			continue
		}
		n += len(sq.h)
	}
	return n
}
