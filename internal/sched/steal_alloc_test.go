package sched

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
)

// busyStealRig stuffs a 2-socket × 4-core × 2-thread host (two LLC steal
// domains) with queued tasks on both sockets so every steal does real
// domain walking, group filtering and affinity checks.
func busyStealRig(t testing.TB) (*stealRig, []*Task) {
	topo, err := topology.New("steal-alloc", 2, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	sr := &stealRig{r: newRig(topo, nil)}
	g := sr.r.cg.NewGroup("g", 0, topology.CPUSet{})
	var tasks []*Task
	us := func(n int64) sim.Time { return sim.Time(n) * sim.Microsecond }
	for i := 0; i < 12; i++ {
		cpu := []int{1, 1, 3, 5, 9, 11}[i%6]
		var grp = g
		if i%3 == 0 {
			grp = nil
		}
		tasks = append(tasks, sr.queue(cpu, us(int64(i)), grp, topology.CPUSet{}))
	}
	return sr, tasks
}

// TestAllocsStealPathSteadyState guards the dispatch/steal fast path's
// zero-alloc contract on a busy multi-LLC topology: once affinity slices
// are interned and heaps are sized, stealing (and requeueing) allocates
// nothing.
func TestAllocsStealPathSteadyState(t *testing.T) {
	sr, _ := busyStealRig(t)
	s := sr.r.s
	thief := s.cpus[14] // idle CPU on socket 1, cross-LLC from most victims
	// Warm up: every queue touched, every affinity cached.
	for i := 0; i < 32; i++ {
		st := s.steal(thief)
		if st == nil {
			t.Fatal("busy rig must always yield a steal")
		}
		s.rqPush(s.cpus[1], st)
	}
	if n := testing.AllocsPerRun(200, func() {
		st := s.steal(thief)
		s.rqPush(s.cpus[1], st)
	}); n != 0 {
		t.Fatalf("steal+requeue allocates %v per run, want 0", n)
	}
}

// BenchmarkStealScan measures one idle-balancing pick on the busy
// multi-LLC rig (steal + requeue, so the queues never drain).
func BenchmarkStealScan(b *testing.B) {
	sr, _ := busyStealRig(b)
	s := sr.r.s
	thief := s.cpus[14]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := s.steal(thief)
		s.rqPush(s.cpus[1], st)
	}
}

// BenchmarkStealMiss measures the common case: an idle CPU probing an
// empty world (every queue drained) — the group-load index early-out.
func BenchmarkStealMiss(b *testing.B) {
	topo, err := topology.New("steal-miss", 2, 4, 2)
	if err != nil {
		b.Fatal(err)
	}
	sr := &stealRig{r: newRig(topo, nil)}
	s := sr.r.s
	thief := s.cpus[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s.steal(thief) != nil {
			b.Fatal("world must be empty")
		}
	}
}
