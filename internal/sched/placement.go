package sched

import "repro/internal/topology"

// affEntry is one interned effective-affinity set with its slice expansion.
type affEntry struct {
	set   topology.CPUSet
	slice []int
}

// cachedAffinity memoizes the effective-affinity set and slice of a task
// (affinities never change during a run). Distinct sets are interned
// scheduler-wide: a run has a handful of masks (all CPUs, each group's
// cpuset) shared by hundreds of tasks, so the Slice expansion is computed
// once per mask instead of once per task.
func (s *Scheduler) cachedAffinity(t *Task) (topology.CPUSet, []int) {
	if t.affCache == nil {
		set := s.effAffinity(t)
		for i := range s.affIntern {
			if e := &s.affIntern[i]; e.set.Equal(set) {
				t.affCacheSet, t.affCache = e.set, e.slice
				return t.affCacheSet, t.affCache
			}
		}
		sl := set.Slice()
		s.affIntern = append(s.affIntern, affEntry{set: set, slice: sl})
		t.affCacheSet, t.affCache = set, sl
	}
	return t.affCacheSet, t.affCache
}

// loadOf approximates runqueue load: the running task plus waiting runnables.
func (s *Scheduler) loadOf(cpu int) int {
	c := s.cpus[cpu]
	n := 0
	if c.current != nil {
		n++
	}
	n += s.runnableCount(c)
	return n
}

func (s *Scheduler) siblingIdle(cpu int) bool {
	for _, sib := range s.tix.Siblings(cpu) {
		if s.cpus[sib].current != nil {
			return false
		}
	}
	return true
}

// placeTask implements wake-up placement, a simplified wake_affine +
// select_idle_sibling:
//
//  1. the task's previous CPU, if allowed and idle (cache-warm);
//  2. an idle allowed CPU, preferring ones whose SMT sibling is also idle,
//     scanning from the previous CPU's socket (or a rotating cursor for
//     first placements, which spreads fork-time placement like
//     SD_BALANCE_FORK);
//  3. otherwise the least-loaded allowed CPU.
func (s *Scheduler) placeTask(t *Task) int {
	set, slice := s.cachedAffinity(t)
	if t.lastCPU >= 0 && set.Contains(t.lastCPU) && s.cpus[t.lastCPU].current == nil {
		return t.lastCPU
	}
	start := 0
	if t.lastCPU >= 0 {
		// Begin scanning at the first allowed CPU of the previous socket.
		sock := s.cfg.Topo.Socket(t.lastCPU)
		for i, c := range slice {
			if s.cfg.Topo.Socket(c) == sock {
				start = i
				break
			}
		}
	} else {
		start = s.curs % len(slice)
		s.curs++
	}
	firstIdle := -1
	for i := 0; i < len(slice); i++ {
		c := slice[(start+i)%len(slice)]
		if s.cpus[c].current != nil {
			continue
		}
		if firstIdle < 0 {
			firstIdle = c
		}
		if s.siblingIdle(c) {
			return c
		}
	}
	if firstIdle >= 0 {
		return firstIdle
	}
	best, bestLoad := slice[start], 1<<30
	for i := 0; i < len(slice); i++ {
		c := slice[(start+i)%len(slice)]
		if l := s.loadOf(c); l < bestLoad {
			best, bestLoad = c, l
		}
	}
	return best
}
