package sched

import (
	"math/bits"

	"repro/internal/topology"
)

// affEntry is one interned effective-affinity set with its slice expansion.
type affEntry struct {
	set   topology.CPUSet
	slice []int
}

// cachedAffinity memoizes the effective-affinity set and slice of a task
// (affinities never change during a run). Distinct sets are interned
// scheduler-wide: a run has a handful of masks (all CPUs, each group's
// cpuset) shared by hundreds of tasks, so the Slice expansion is computed
// once per mask instead of once per task. The returned set pointer aliases
// the interned entry — callers must treat it as read-only — which keeps
// every wakeup and rebalance free of CPUSet copies.
func (s *Scheduler) cachedAffinity(t *Task) (*topology.CPUSet, []int) {
	if t.aff == nil {
		set := s.effAffinity(t)
		for _, e := range s.affIntern {
			if e.set.Equal(set) {
				t.aff = e
				return &e.set, e.slice
			}
		}
		e := &affEntry{set: set, slice: set.Slice()}
		s.affIntern = append(s.affIntern, e)
		t.aff = e
	}
	return &t.aff.set, t.aff.slice
}

// loadOf approximates runqueue load: the running task plus waiting runnables.
func (s *Scheduler) loadOf(cpu int) int {
	c := s.cpus[cpu]
	n := 0
	if c.current != nil {
		n++
	}
	n += s.runnableCount(c)
	return n
}

func (s *Scheduler) siblingIdle(cpu int) bool {
	for _, sib := range s.tix.Siblings(cpu) {
		if s.cpus[sib].current != nil {
			return false
		}
	}
	return true
}

// placeTask implements wake-up placement, a simplified wake_affine +
// select_idle_sibling:
//
//  1. the task's previous CPU, if allowed and idle (cache-warm);
//  2. an idle allowed CPU, preferring ones whose SMT sibling is also idle,
//     scanning from the previous CPU's socket (or a rotating cursor for
//     first placements, which spreads fork-time placement like
//     SD_BALANCE_FORK);
//  3. otherwise the least-loaded allowed CPU.
//
// The idle scan intersects the affinity mask with the idle bitmask word by
// word, so on a mostly-idle big host a wakeup costs O(mask words), not
// O(allowed CPUs) — while visiting the surviving candidates in exactly the
// circular ascending order the plain slice walk used.
func (s *Scheduler) placeTask(t *Task) int {
	set, slice := s.cachedAffinity(t)
	if t.lastCPU >= 0 && set.Contains(t.lastCPU) && s.cpus[t.lastCPU].current == nil {
		return t.lastCPU
	}
	var startCPU int
	if t.lastCPU >= 0 {
		// Begin scanning at the first allowed CPU of the previous socket
		// (falling back to the first allowed CPU overall, like the slice
		// walk whose start index stayed 0 when the socket had none).
		startCPU = slice[0]
		lo, hi := s.tix.SocketRange(s.cfg.Topo.Socket(t.lastCPU))
		if c := set.Next(lo - 1); c >= 0 && c < hi {
			startCPU = c
		}
	} else {
		startCPU = slice[s.curs%len(slice)]
		s.curs++
	}
	firstIdle := -1
	if c := s.scanIdleAllowed(set, startCPU, &firstIdle); c >= 0 {
		return c
	}
	if firstIdle >= 0 {
		return firstIdle
	}
	// Saturated machine: every allowed CPU is busy. Fall back to the full
	// least-loaded circular scan, unchanged from the pre-fast-path pick.
	start := 0
	for i, c := range slice {
		if c == startCPU {
			start = i
			break
		}
	}
	best, bestLoad := slice[start], 1<<30
	for i := 0; i < len(slice); i++ {
		c := slice[(start+i)%len(slice)]
		if l := s.loadOf(c); l < bestLoad {
			best, bestLoad = c, l
		}
	}
	return best
}

// scanIdleAllowed visits the idle CPUs of set in circular ascending order
// starting at startCPU, returning the first whose SMT siblings are all idle;
// *firstIdle records the first idle CPU seen (-1 if none). Visit order
// matches a circular walk of set's slice expansion restricted to idle CPUs.
func (s *Scheduler) scanIdleAllowed(set *topology.CPUSet, startCPU int, firstIdle *int) int {
	words := set.Words()
	if words > len(s.idleMask) {
		words = len(s.idleMask) // affinity bits past NumCPUs are unreachable
	}
	startW := startCPU >> 6
	for w := startW; w < words; w++ {
		word := set.Word(w) & s.idleMask[w]
		if w == startW {
			word &^= (1 << uint(startCPU&63)) - 1
		}
		if c := s.firstSiblingIdle(w, word, firstIdle); c >= 0 {
			return c
		}
	}
	for w := 0; w <= startW && w < words; w++ {
		word := set.Word(w) & s.idleMask[w]
		if w == startW {
			word &= (1 << uint(startCPU&63)) - 1
		}
		if c := s.firstSiblingIdle(w, word, firstIdle); c >= 0 {
			return c
		}
	}
	return -1
}

// firstSiblingIdle scans one idle∩allowed word, recording the first idle CPU
// and returning the first whose whole physical core is idle (-1 if none).
func (s *Scheduler) firstSiblingIdle(w int, word uint64, firstIdle *int) int {
	for word != 0 {
		b := bits.TrailingZeros64(word)
		word &^= 1 << uint(b)
		c := w<<6 | b
		if *firstIdle < 0 {
			*firstIdle = c
		}
		if s.siblingIdle(c) {
			return c
		}
	}
	return -1
}
