package sched

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/cgroups"
	"repro/internal/irqsim"
	"repro/internal/sim"
	"repro/internal/topology"
)

// tinyRig builds a scheduler over a small topology with its own engine.
func tinyRig(t *testing.T, cpus int) (*sim.Engine, *Scheduler, *cgroups.Controller, *topology.Topology) {
	t.Helper()
	topo, err := topology.New("rig", 1, cpus, 1)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	cg := cgroups.NewController(eng, topo, cgroups.DefaultParams())
	s := New(eng, Config{
		Topo:  topo,
		Cache: cache.New(topo, cache.DefaultParams()),
		IRQ:   irqsim.NewController(topo, irqsim.DefaultParams(), irqsim.DefaultChannels()),
		RNG:   sim.NewRNG(7),
	})
	return eng, s, cg, topo
}

// TestTinyQuotaStillProgresses is the death-spiral regression guard: a group
// whose quota is far below one bandwidth slice must still finish its work —
// the unthrottle churn must never exceed what the caps allow, and it must
// overwrite rather than stack across consecutive throttle cycles.
func TestTinyQuotaStillProgresses(t *testing.T) {
	eng, s, cg, _ := tinyRig(t, 4)
	g := cg.NewGroup("starved", 0.05, topology.CPUSet{}) // 5ms per 100ms period
	for i := 0; i < 3; i++ {
		s.Spawn(TaskSpec{
			Name:    "worker",
			Group:   g,
			Program: Sequence(Compute(20 * sim.Millisecond)),
		}, 0)
	}
	limit := 1200 * sim.Second // 60ms of work at 5% duty needs ≥ 1.2s + churn
	for s.Live() > 0 {
		if !eng.Step() {
			t.Fatal("deadlock: live tasks with empty event queue")
		}
		if eng.Now() > limit {
			t.Fatalf("livelock: %d tasks still unfinished after %v (quota death spiral?)", s.Live(), limit)
		}
	}
	if g.Stats.Throttles == 0 {
		t.Fatal("the tiny quota must have throttled at least once")
	}
}

// TestTraceStreamInvariants checks the tracepoint protocol the trace package
// relies on: per task, run-start and run-end strictly alternate, timestamps
// are monotone, blocks only happen off-CPU, and every finished task's last
// run event is an end.
func TestTraceStreamInvariants(t *testing.T) {
	topo, err := topology.New("rig", 1, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	cg := cgroups.NewController(eng, topo, cgroups.DefaultParams())
	type state struct {
		running  bool
		finished bool
		events   int
	}
	states := map[*Task]*state{}
	var last sim.Time
	trace := func(ev TraceEvent) {
		if ev.At < last {
			t.Fatalf("trace timestamps regressed: %v after %v", ev.At, last)
		}
		last = ev.At
		if ev.Task == nil {
			if ev.Kind != TraceThrottle {
				t.Fatalf("taskless event of kind %v", ev.Kind)
			}
			return
		}
		st := states[ev.Task]
		if st == nil {
			st = &state{}
			states[ev.Task] = st
		}
		st.events++
		switch ev.Kind {
		case TraceRunStart:
			if st.running {
				t.Fatal("run-start while running")
			}
			if st.finished {
				t.Fatal("run-start after finish")
			}
			st.running = true
		case TraceRunEnd:
			if !st.running {
				t.Fatal("run-end while not running")
			}
			st.running = false
		case TraceBlock:
			if st.running {
				t.Fatal("block emitted while on CPU")
			}
			if ev.Block == BlockNone {
				t.Fatal("block event without a reason")
			}
		case TraceFinish:
			st.finished = true
		}
	}
	s := New(eng, Config{
		Topo:  topo,
		Cache: cache.New(topo, cache.DefaultParams()),
		IRQ:   irqsim.NewController(topo, irqsim.DefaultParams(), irqsim.DefaultChannels()),
		RNG:   sim.NewRNG(3),
		Trace: trace,
	})
	g := cg.NewGroup("g", 1, topology.CPUSet{})
	for i := 0; i < 4; i++ {
		grp := g
		if i%2 == 0 {
			grp = nil
		}
		s.Spawn(TaskSpec{
			Name:  "mix",
			Group: grp,
			Program: Sequence(
				Compute(5*sim.Millisecond),
				IO(0, sim.Millisecond),
				Compute(30*sim.Millisecond),
				Sleep(2*sim.Millisecond),
				Compute(5*sim.Millisecond),
			),
		}, sim.Time(i)*sim.Millisecond)
	}
	for s.Live() > 0 {
		if !eng.Step() {
			t.Fatal("deadlock")
		}
	}
	if len(states) != 4 {
		t.Fatalf("tasks traced: %d", len(states))
	}
	for task, st := range states {
		if st.running {
			t.Errorf("%v left on CPU at exit", task)
		}
		if !st.finished {
			t.Errorf("%v never emitted finish", task)
		}
		if st.events < 8 {
			t.Errorf("%v produced only %d events", task, st.events)
		}
	}
}

// TestTraceDisabledCostsNothing ensures a nil Trace leaves no residue: the
// same run with and without tracing produces identical results.
func TestTraceDisabledCostsNothing(t *testing.T) {
	run := func(traced bool) sim.Time {
		topo, _ := topology.New("rig", 1, 2, 1)
		eng := sim.NewEngine()
		cfg := Config{
			Topo:  topo,
			Cache: cache.New(topo, cache.DefaultParams()),
			IRQ:   irqsim.NewController(topo, irqsim.DefaultParams(), irqsim.DefaultChannels()),
			RNG:   sim.NewRNG(11),
		}
		if traced {
			cfg.Trace = func(TraceEvent) {}
		}
		s := New(eng, cfg)
		done := s.Spawn(TaskSpec{
			Name:    "t",
			Program: Sequence(Compute(3*sim.Millisecond), IO(0, sim.Millisecond), Compute(3*sim.Millisecond)),
		}, 0)
		for s.Live() > 0 {
			if !eng.Step() {
				t.Fatal("deadlock")
			}
		}
		return done.FinishedAt
	}
	if run(false) != run(true) {
		t.Fatal("tracing must not perturb the simulation")
	}
}
