package sched

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/cgroups"
	"repro/internal/sim"
	"repro/internal/topology"
)

// The steal-order golden test locks the exact victim/candidate order of the
// idle-balancing steal path. The pick rule is part of the simulator's
// determinism contract: the winner is the task with the smallest
// (vruntime, enqueue-seq) on the most-loaded other CPU — load counted as
// queued tasks allowed on the thief and not throttled — with load ties
// resolved toward the lowest victim CPU id. Any fast-path refactor of steal
// must reproduce this sequence bit-for-bit; if this test fails, the
// simulation is no longer byte-identical to the golden figures.

// stealRig builds a scheduler over a 2-socket × 4-core × 2-thread host
// (two LLC domains, SMT pairs) with queues stuffed directly via rqPush.
type stealRig struct {
	r      *rig
	nextID int
}

func newStealRig(t *testing.T) *stealRig {
	t.Helper()
	topo, err := topology.New("steal", 2, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	return &stealRig{r: newRig(topo, nil)}
}

// queue creates a runnable task with the given vruntime and affinity (empty =
// all CPUs) and pushes it straight onto cpu's runqueue, mirroring what
// makeRunnable does after placement.
func (sr *stealRig) queue(cpu int, vr sim.Time, g *cgroups.Group, aff topology.CPUSet) *Task {
	s := sr.r.s
	t := &Task{
		ID:                sr.nextID,
		Spec:              TaskSpec{Name: fmt.Sprintf("t%d", sr.nextID), Group: g, Affinity: aff, Program: Sequence()},
		lastCPU:           -1,
		rqCPU:             -1,
		rqPos:             -1,
		state:             stateRunnable,
		pendingMsgFromCPU: -1,
	}
	sr.nextID++
	if g != nil {
		qi := s.groupIdx(g)
		if qi == 0 {
			qi = s.registerGroup(g)
		}
		t.qIdx = qi
	}
	t.vruntime = vr
	s.updateRunnable(t, 1)
	s.rqPush(s.cpus[cpu], t)
	return t
}

// stealFrom performs one steal on behalf of the given idle CPU and returns a
// compact "id@victim" record (or "-" when nothing was stolen).
func (sr *stealRig) stealFrom(cpu int) string {
	s := sr.r.s
	t := s.steal(s.cpus[cpu])
	if t == nil {
		return "-"
	}
	// rqCPU is cleared by steal; recover the victim from the runqueue the
	// task is no longer on by remembering nothing: the task id alone pins
	// the pick, and the queue it left is implied by the setup.
	return fmt.Sprintf("t%d", t.ID)
}

// TestStealCandidateOrderGolden pins the steal pick sequence for a busy
// multi-LLC host with mixed affinities, groups and a throttled partition.
func TestStealCandidateOrderGolden(t *testing.T) {
	sr := newStealRig(t)
	s := sr.r.s
	us := func(n int64) sim.Time { return sim.Time(n) * sim.Microsecond }

	gA := sr.r.cg.NewGroup("ga", 0, topology.CPUSet{})
	gB := sr.r.cg.NewGroup("gb", 2, topology.CPUSet{}) // quota'd: will be throttled mid-test
	all := topology.CPUSet{}

	// Socket 0 (cpus 0-7): a deep queue on cpu1, SMT-sibling queue on cpu0's
	// core, and an affinity-restricted task that cpu0 may not take.
	sr.queue(1, us(50), nil, all)                            // t0
	sr.queue(1, us(10), nil, all)                            // t1  (earliest on the deep queue)
	sr.queue(1, us(10), nil, all)                            // t2  (vruntime tie -> seq order)
	sr.queue(2, us(5), nil, topology.NewCPUSet(2, 3))        // t3  (not allowed on cpu0)
	sr.queue(3, us(8), gA, all)                              // t4
	// Socket 1 (cpus 8-15): equally deep queue on cpu9 — load ties must
	// resolve toward the lower victim CPU id (cpu1).
	sr.queue(9, us(1), nil, all)                             // t5 (globally smallest vruntime)
	sr.queue(9, us(20), nil, all)                            // t6
	sr.queue(9, us(30), nil, all)                            // t7
	sr.queue(12, us(2), gB, all)                             // t8 (group throttles below)
	sr.queue(12, us(3), gB, all)                             // t9

	// Throttle gB: its queue on cpu12 must become invisible to steal.
	if !gB.Charge(12, 10*sim.Second) {
		t.Fatal("gB must throttle")
	}

	var got []string
	// Phase 1: cpu0 steals until the world is empty for it.
	for i := 0; i < 8; i++ {
		got = append(got, "c0:"+sr.stealFrom(0))
	}
	// Phase 2: refill with a cross-socket pattern and steal from socket 1.
	sr.queue(4, us(7), nil, all)  // t10
	sr.queue(4, us(9), nil, all)  // t11
	sr.queue(6, us(6), gA, all)   // t12
	sr.queue(13, us(4), nil, all) // t13
	for i := 0; i < 5; i++ {
		got = append(got, "c15:"+sr.stealFrom(15))
	}
	// Phase 3: a thief whose own (throttled) queue must not satisfy it.
	got = append(got, "c12:"+sr.stealFrom(12))
	got = append(got, "c12:"+sr.stealFrom(12))

	want := []string{
		"c0:t1", "c0:t5", "c0:t2", "c0:t6", "c0:t0", "c0:t4", "c0:t7", "c0:-",
		"c15:t10", "c15:t11", "c15:t12", "c15:t13", "c15:-",
		"c12:-", "c12:-",
	}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("steal candidate order diverged\n got %v\nwant %v", got, want)
	}
	if s.bd.Steals == 0 {
		t.Fatal("steal counter must advance")
	}
}
