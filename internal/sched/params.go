// Package sched implements the discrete-event model of the Linux Completely
// Fair Scheduler that the paper identifies as "the ultimate decision maker in
// allocating processes to CPU cores" (§III-A). It provides per-CPU runqueues
// with vruntime ordering, wake-up placement, idle stealing, affinity masks
// (the pinning mechanism), cgroup quota enforcement hooks, IRQ completion
// costs and migration penalties. Every overhead the paper discusses is
// metered separately in a Breakdown so experiments can attribute time.
package sched

import "repro/internal/sim"

// Params are the scheduler's calibration constants.
type Params struct {
	// TargetLatency is the CFS scheduling-latency target; a runqueue with n
	// runnable tasks gives each a slice of TargetLatency/n.
	TargetLatency sim.Time
	// MinGranularity is the smallest preemption slice.
	MinGranularity sim.Time
	// MaxSlice bounds how long an uncontended task runs before the
	// scheduler-tick bookkeeping point (it resumes immediately; no switch
	// cost is charged when the same task continues).
	MaxSlice sim.Time
	// BandwidthSlice bounds slices of bandwidth-limited (quota'd) groups,
	// matching the kernel's cfs_bandwidth_slice_us runtime hand-out
	// granularity. Small vanilla containers burst and throttle at this
	// granularity, which is where their PSO comes from.
	BandwidthSlice sim.Time
	// MinWorkChunk guarantees forward progress when per-dispatch overheads
	// exceed the nominal slice.
	MinWorkChunk sim.Time
	// SwitchCost is the direct cost of one context switch.
	SwitchCost sim.Time
	// TickInterval is the accounting tick; each tick of a grouped task's
	// runtime triggers one cgroup accounting invocation.
	TickInterval sim.Time
	// SMTPenalty is the fractional slowdown of compute when the SMT sibling
	// of the running CPU is busy.
	SMTPenalty float64
	// WakeJitter randomizes IO latencies by ±fraction to decorrelate runs.
	WakeJitter float64
}

// DefaultParams returns the calibrated defaults used by all experiments.
// TargetLatency and MinGranularity follow the kernel's log2(nr_cpus) scaling
// of sched_latency_ns / sched_min_granularity_ns on a ~100-CPU host.
func DefaultParams() Params {
	return Params{
		TargetLatency:  24 * sim.Millisecond,
		MinGranularity: 3 * sim.Millisecond,
		MaxSlice:       24 * sim.Millisecond,
		BandwidthSlice: 5 * sim.Millisecond,
		MinWorkChunk:   100 * sim.Microsecond,
		SwitchCost:     3 * sim.Microsecond,
		TickInterval:   1 * sim.Millisecond,
		SMTPenalty:     0.25,
		WakeJitter:     0.05,
	}
}

// Breakdown meters where simulated CPU time went. Durations are cumulative
// over all CPUs; counters are event counts. Experiments use it both for the
// paper's PTO/PSO attribution and for the ablation benches.
type Breakdown struct {
	UsefulWork    sim.Time // productive application compute
	SwitchTime    sim.Time // context-switch cost
	MigrationTime sim.Time // cache-reload penalties for cross-CPU moves
	AcctTime      sim.Time // cgroup accounting invocations
	ChurnTime     sim.Time // unthrottle churn (slice redistribution etc.)
	ThrottleTime  sim.Time // resched-IPI cost at throttle points
	IRQTime       sim.Time // IO completion path costs
	VirtioTime    sim.Time // guest-only per-IO virtio/VM-exit costs
	MsgTime       sim.Time // messaging sync + copy costs
	NestedTime    sim.Time // guest-container nested switch costs (VMCN)
	WanderTime    sim.Time // floating-vCPU stalls (vanilla VMs only)

	Switches   uint64
	Migrations uint64
	Steals     uint64
	Wakeups    uint64
	IOs        uint64
	Messages   uint64
	Throttles  uint64
}

// OverheadTotal sums all non-useful time channels.
func (b *Breakdown) OverheadTotal() sim.Time {
	return b.SwitchTime + b.MigrationTime + b.AcctTime + b.ChurnTime +
		b.ThrottleTime + b.IRQTime + b.VirtioTime + b.MsgTime + b.NestedTime +
		b.WanderTime
}

// Add accumulates o into b.
func (b *Breakdown) Add(o Breakdown) {
	b.UsefulWork += o.UsefulWork
	b.SwitchTime += o.SwitchTime
	b.MigrationTime += o.MigrationTime
	b.AcctTime += o.AcctTime
	b.ChurnTime += o.ChurnTime
	b.ThrottleTime += o.ThrottleTime
	b.IRQTime += o.IRQTime
	b.VirtioTime += o.VirtioTime
	b.MsgTime += o.MsgTime
	b.NestedTime += o.NestedTime
	b.WanderTime += o.WanderTime
	b.Switches += o.Switches
	b.Migrations += o.Migrations
	b.Steals += o.Steals
	b.Wakeups += o.Wakeups
	b.IOs += o.IOs
	b.Messages += o.Messages
	b.Throttles += o.Throttles
}
