package sched

import (
	"fmt"
	"math/bits"

	"repro/internal/cache"
	"repro/internal/cgroups"
	"repro/internal/irqsim"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Config wires a scheduler to its machine's models and scaling hooks.
type Config struct {
	Params Params
	Topo   *topology.Topology
	Cache  *cache.Model
	IRQ    *irqsim.Controller
	RNG    *sim.RNG

	// ComputeScale returns the wall-time multiplier (>= 1) for nominal
	// compute of a task: virtualization tax × NUMA factor. nil = 1.
	ComputeScale func(t *Task) float64
	// IOScale multiplies device latencies (paravirtual IO path). 0 = 1.
	IOScale float64
	// PerIOExtra returns additional per-IO-completion cost (virtio ring +
	// VM-exit, affinity-miss for wandering vanilla vCPUs). nil = 0.
	PerIOExtra func(t *Task) sim.Time
	// MsgSyncCost is the kernel (host) or hypervisor (guest) synchronization
	// cost per message.
	MsgSyncCost sim.Time
	// MsgCopyPerKB is the per-KiB copy cost of message payloads.
	MsgCopyPerKB sim.Time
	// MsgNSPerCPU is the extra per-message cost for *grouped* (container)
	// senders: the container network-namespace path (veth/bridge) touches
	// per-CPU networking structures of this machine. Bare-metal and
	// intra-guest processes use the shared-memory transport instead.
	MsgNSPerCPU sim.Time
	// MsgNSCopyScale multiplies payload copy costs for grouped senders
	// (TCP-over-bridge copies instead of one shared-memory copy).
	MsgNSCopyScale float64
	// MsgLineScale multiplies receiver-side line-transfer costs. Guests set
	// it > 1: their flat virtual topology hides that vCPUs actually sit on
	// different host sockets.
	MsgLineScale float64
	// WakeExtra is charged per block-wakeup; guests pay the virtual-IPI /
	// VM-exit path here.
	WakeExtra sim.Time
	// NestedSwitchCost is charged per context switch of a *grouped* task,
	// scaled by how far the task's runnable thread-group siblings
	// oversubscribe this machine's CPUs; nonzero only inside guests running
	// containers (VMCN), where thread-group usage counters contend under
	// virtualized timekeeping.
	NestedSwitchCost sim.Time
	// NestedSwitchMax caps one nested-switch charge.
	NestedSwitchMax sim.Time
	// WanderStallRate/WanderStallCost model floating vCPUs: the host
	// scheduler migrates a vanilla VM's vCPU threads, and each migration
	// stalls whatever runs on that vCPU while its cache/TLB state refills.
	// Zero for hosts and pinned VMs.
	WanderStallRate float64 // events per CPU-second
	WanderStallCost sim.Time
	// Trace, when non-nil, receives scheduler tracepoint events (the BCC
	// instrumentation analog). Tracing is off the hot path when nil.
	Trace TraceFn
}

// procKey identifies a thread group inside a cgroup.
type procKey struct {
	group *cgroups.Group
	proc  int
}

type cpuRun struct {
	id     int
	sched  *Scheduler // back-pointer for the static slice-timer callback
	subs   []subQueue // runqueue, partitioned by cgroup (see runqueue.go)
	subs0  [2]subQueue // embedded backing of subs: ungrouped + one cgroup
	queued int32       // total tasks across subs (throttled included)

	current      *Task
	lastTask     *Task
	sliceTimer   sim.Timer // fires sliceDone; bound at first dispatch, zero alloc/slice
	sliceEndAt   sim.Time  // planned end of the current slice
	sliceStart   sim.Time
	sliceOver    sim.Time // committed overhead portion of current slice
	sliceWork    sim.Time // planned scaled work in current slice
	sliceScale   float64
	sliceFull    bool     // the slice covers the chunk's entire remaining work
	pendingStall sim.Time // vCPU-wander stall charged at next dispatch
}

// procCount is the runnable-thread counter of one thread group, hung off
// its member tasks so the dispatch path never touches a map.
type procCount struct {
	n int
}

// Scheduler simulates CFS over one machine.
type Scheduler struct {
	cfg  Config
	eng  *sim.Engine
	tix  *topology.Index // precomputed siblings/distance/steal-domain tables
	cpus []*cpuRun

	tasks []*Task
	// qMembers and procCtrs are spawn/throttle-time bookkeeping only; the
	// dispatch path reads counters cached on Task and cgroups.Group.
	// qMembers[qi] lists the spawned tasks of the group at subqueue index
	// qi (index 0, the ungrouped partition, stays nil); group → qIdx
	// resolution is a linear scan of qGroups (machines host a handful of
	// groups at most, and only at spawn time).
	qMembers    [][]*Task
	procCtrs    map[procKey]*procCount
	rqSeq       uint64 // global enqueue sequence (runqueue tie-break)
	live        int
	bd          Breakdown
	curs        int // rotating placement cursor
	completed   []*Task
	wanderTimer sim.Timer
	wanderMean  sim.Time // mean inter-stall gap of the vCPU-wander process

	// Dispatch fast-path indexes (see runqueue.go): the idle-CPU and
	// queued-CPU bitmasks, per-socket queued-task counts, and the per-group
	// global queued-task counts (indexed by subqueue index; 0 = ungrouped)
	// that let steal and placement skip empty steal domains word-at-a-time
	// and bail out when nothing is stealable.
	idleMask     []uint64
	queuedMask   []uint64 // CPUs with queued > 0
	socketQueued []int32
	groupQueued  []int32
	totalQueued  int32            // sum of groupQueued: steal's one-compare miss bail-out
	qGroups      []*cgroups.Group // subqueue index -> group (nil at 0)

	// affIntern dedups effective-affinity sets: tasks overwhelmingly share
	// a handful of masks (all CPUs, the group cpuset), so their Slice
	// expansions are computed once per distinct set instead of per task.
	// Entries are individually heap-allocated so tasks can hold stable
	// pointers into the intern table across appends. It survives Reset —
	// interning is keyed by set value, so entries from a previous run are
	// simply warm cache for the next.
	affIntern []*affEntry
	// taskArena slab-allocates Task structs (tasks live for the whole run,
	// so a bump allocator needs no free path).
	taskArena []Task
	// taskBack is the recycled Task slab of a Reset scheduler: sized to the
	// previous run's task high-water mark, so repeated same-shape runs spawn
	// every task from one reused block instead of fresh arena slabs.
	taskBack []Task
	// heapBack bump-allocates the initial 8-slot backing of each subqueue
	// heap; a heap that outgrows its carve falls back to append growth.
	heapBack []rqEntry
	// procArena slab-allocates procCount cells (they live for the run);
	// procUsed counts cells handed out so Reset can rewind onto procBack.
	procArena []procCount
	procBack  []procCount
	procUsed  int
	// batchArgs is the reusable arrival-argument scratch of SpawnBatch.
	batchArgs []any
	// specScratch is the reusable TaskSpec build buffer handed out by
	// SpecScratch for callers assembling a SpawnBatch argument.
	specScratch []TaskSpec

	// Embedded backings for the index slices above: hosts up to 1024 CPUs /
	// 8 sockets / 7 cgroups construct without allocating them separately.
	// Larger shapes (none exist today — topology caps at 1024 CPUs) fall
	// back to make, and the group slices fall back through plain append
	// growth past their embedded capacity.
	masksBack        [32]uint64 // idleMask + queuedMask, 16 words each
	socketQueuedBack [8]int32
	groupQueuedBack  [8]int32
	qGroupsBack      [8]*cgroups.Group
	qMembersBack     [8][]*Task
}

// New returns a scheduler over eng with the given config.
func New(eng *sim.Engine, cfg Config) *Scheduler {
	if cfg.Params == (Params{}) {
		cfg.Params = DefaultParams()
	}
	if cfg.IOScale <= 0 {
		cfg.IOScale = 1
	}
	if cfg.RNG == nil {
		cfg.RNG = sim.NewRNG(1)
	}
	// The bookkeeping structures (qMembers, procCtrs) fill lazily on first
	// grouped spawn: ungrouped machines never pay for them.
	s := &Scheduler{
		cfg: cfg,
		eng: eng,
		tix: cfg.Topo.Index(),
	}
	n := cfg.Topo.NumCPUs()
	// One backing array for all cpuRun state; slice timers bind lazily at a
	// CPU's first dispatch, so schedulers over mostly-idle hosts (a small
	// container on the 112-CPU paper host) construct in a few allocations.
	backing := make([]cpuRun, n)
	s.cpus = make([]*cpuRun, n)
	// Nearly every run uses at most two runqueue partitions per CPU
	// (ungrouped + one cgroup), so each cpuRun embeds that capacity; rqPush
	// only allocates past it for 3+-tenant hosts.
	for i := range backing {
		backing[i].id = i
		backing[i].sched = s
		backing[i].subs = backing[i].subs0[:0:len(backing[i].subs0)]
		s.cpus[i] = &backing[i]
	}
	words := (n + 63) / 64
	masks := s.masksBack[:]
	if 2*words > len(masks) {
		masks = make([]uint64, 2*words)
	}
	s.idleMask = masks[0:words:words]
	s.queuedMask = masks[words : 2*words : 2*words]
	for i := 0; i < n; i++ {
		s.idleMask[i>>6] |= 1 << uint(i&63)
	}
	sockets := s.tix.NumSockets()
	if sockets <= len(s.socketQueuedBack) {
		s.socketQueued = s.socketQueuedBack[:sockets]
	} else {
		s.socketQueued = make([]int32, sockets)
	}
	s.groupQueued = s.groupQueuedBack[:1]
	s.qGroups = s.qGroupsBack[:1]
	s.qMembers = s.qMembersBack[:1]
	if cfg.WanderStallRate > 0 && cfg.WanderStallCost > 0 {
		s.scheduleWander()
	}
	return s
}

// Reset returns the scheduler to the state New(eng, cfg) would construct —
// same engine, new (same-shape) config — while keeping every arena and
// index backing the previous run grew: cpuRun state, subqueue heaps and
// their carves, the task/procCount slabs (rewound onto recycled backing
// sized to the previous run's high-water marks), the affinity intern table
// (value-keyed, so stale entries are warm cache, never wrong) and the
// bitmask/queued-load indexes. It is the per-trial reuse path: repetitions
// of one deployment shape differ only by seed, so redeploying onto a Reset
// scheduler replays byte-identically to a fresh construction while
// allocating almost nothing. The caller must Reset the engine first and
// pass a topology of the same shape.
func (s *Scheduler) Reset(cfg Config) {
	if cfg.Params == (Params{}) {
		cfg.Params = DefaultParams()
	}
	if cfg.IOScale <= 0 {
		cfg.IOScale = 1
	}
	if cfg.RNG == nil {
		cfg.RNG = sim.NewRNG(1)
	}
	if cfg.Topo.NumCPUs() != len(s.cpus) {
		panic(fmt.Sprintf("sched: Reset with %d-CPU topology on a %d-CPU scheduler — reuse contexts must key deployments by shape",
			cfg.Topo.NumCPUs(), len(s.cpus)))
	}
	s.cfg = cfg
	s.tix = cfg.Topo.Index()
	for _, c := range s.cpus {
		for i := range c.subs {
			sq := &c.subs[i]
			sq.g = nil
			sq.h = sq.h[:0] // keep the heap's carve/growth for the next run
		}
		c.subs = c.subs[:0]
		c.queued = 0
		c.current = nil
		c.lastTask = nil
		// sliceTimer stays bound (same engine, same static callback); the
		// engine Reset already invalidated any pending arm.
		c.sliceEndAt = 0
		c.sliceStart = 0
		c.sliceOver = 0
		c.sliceWork = 0
		c.sliceScale = 0
		c.sliceFull = false
		c.pendingStall = 0
	}
	// Rewind the Task slab onto recycled backing sized to the previous
	// run's population: spawnTask fully overwrites each Task, so the cells
	// need no zeroing.
	if high := len(s.tasks); high > 0 {
		if cap(s.taskBack) < high {
			s.taskBack = make([]Task, high)
		}
		s.taskArena = s.taskBack[:cap(s.taskBack)]
	}
	s.tasks = s.tasks[:0]
	// procCount cells must read zero at re-registration (a timed-out run
	// can leave runnable counts standing).
	if s.procUsed > 0 {
		if cap(s.procBack) < s.procUsed {
			s.procBack = make([]procCount, s.procUsed)
		}
		pb := s.procBack[:cap(s.procBack)]
		for i := range pb {
			pb[i] = procCount{}
		}
		s.procArena = pb
		s.procUsed = 0
	}
	clear(s.procCtrs)
	s.rqSeq = 0
	s.live = 0
	s.bd = Breakdown{}
	s.curs = 0
	s.completed = s.completed[:0]
	for i := range s.idleMask {
		s.idleMask[i] = 0
	}
	for i := 0; i < len(s.cpus); i++ {
		s.idleMask[i>>6] |= 1 << uint(i&63)
	}
	for i := range s.queuedMask {
		s.queuedMask[i] = 0
	}
	for i := range s.socketQueued {
		s.socketQueued[i] = 0
	}
	s.groupQueued = s.groupQueued[:1]
	s.groupQueued[0] = 0
	s.totalQueued = 0
	s.qGroups = s.qGroups[:1]
	s.qMembers = s.qMembers[:1]
	if cfg.WanderStallRate > 0 && cfg.WanderStallCost > 0 {
		s.scheduleWander()
	}
}

// carveHeap hands out the initial 8-slot backing of one subqueue heap from
// the heapBack bump slab: one slab allocation covers every CPU's first
// partition, instead of one small allocation per freshly-touched subqueue.
// Heaps that outgrow their carve fall back to plain append growth.
func (s *Scheduler) carveHeap() []rqEntry {
	const carve = 8
	if len(s.heapBack) < carve {
		// First slab covers all CPUs; refills (3+ partitions per CPU, or
		// literal-constructed tiny topologies) use a fixed chunk.
		n := carve * len(s.cpus)
		if n < 128 {
			n = 128
		}
		s.heapBack = make([]rqEntry, n)
	}
	h := s.heapBack[0:0:carve]
	s.heapBack = s.heapBack[carve:]
	return h
}

// scheduleWander runs the vCPU-wander Poisson process: at each event one
// random CPU accrues a stall, paid by the next dispatch there.
func (s *Scheduler) scheduleWander() {
	s.wanderMean = sim.Time(float64(sim.Second) / (s.cfg.WanderStallRate * float64(len(s.cpus))))
	if !s.wanderTimer.Bound() {
		s.wanderTimer.InitArg(s.eng, wanderFired, s)
	}
	s.wanderTimer.Reset(s.cfg.RNG.ExpDuration(s.wanderMean))
}

// wanderFired is the static wander-timer callback: one random CPU accrues a
// stall and the Poisson process re-arms.
func wanderFired(a any) {
	s := a.(*Scheduler)
	c := s.cpus[s.cfg.RNG.Intn(len(s.cpus))]
	c.pendingStall += s.cfg.WanderStallCost
	s.wanderTimer.Reset(s.cfg.RNG.ExpDuration(s.wanderMean))
}

// Breakdown returns the accumulated overhead meter.
func (s *Scheduler) Breakdown() Breakdown { return s.bd }

// Live returns the number of spawned-but-unfinished tasks.
func (s *Scheduler) Live() int { return s.live }

// Tasks returns every task ever spawned.
func (s *Scheduler) Tasks() []*Task { return s.tasks }

// Spawn creates a task and schedules its arrival at time `at`.
func (s *Scheduler) Spawn(spec TaskSpec, at sim.Time) *Task {
	t := s.spawnTask(spec)
	s.eng.AtArg(at, taskArrived, t)
	return t
}

// SpawnBatch creates one task per spec, all arriving at time `at`, in spec
// order. It is equivalent to calling Spawn for each spec in order, but the
// arrival events are applied to the event queue as one batch and share the
// static arrival callback, so a spawn storm (a 16-thread process per trial,
// thousands of trials per sweep) costs no per-task closures or heap churn.
// SpecScratch returns a zero-length TaskSpec buffer with capacity for at
// least n specs, reused across calls. It exists for workload Spawn paths
// that assemble a batch every trial: SpawnBatch copies each spec into the
// task arena, so the buffer is dead the moment SpawnBatch returns and the
// next trial can rebuild in place. Callers must not hold the returned
// slice across another SpecScratch or SpawnBatch call.
func (s *Scheduler) SpecScratch(n int) []TaskSpec {
	if cap(s.specScratch) < n {
		s.specScratch = make([]TaskSpec, 0, n)
	}
	return s.specScratch[:0]
}

func (s *Scheduler) SpawnBatch(specs []TaskSpec, at sim.Time) []*Task {
	// Reserve task-table and arena capacity for the whole batch up front,
	// replacing append doubling and arena block bumps mid-batch.
	if need := len(s.tasks) + len(specs); cap(s.tasks) < need {
		nt := make([]*Task, len(s.tasks), need)
		copy(nt, s.tasks)
		s.tasks = nt
	}
	if len(s.taskArena) < len(specs) {
		s.taskArena = make([]Task, len(specs))
	}
	// The returned view aliases the task table (tasks are appended one per
	// spec) and the arrival args reuse a per-scheduler scratch: a batch in
	// steady state allocates nothing here.
	start := len(s.tasks)
	if cap(s.batchArgs) < len(specs) {
		s.batchArgs = make([]any, len(specs))
	}
	args := s.batchArgs[:len(specs)]
	for i := range specs {
		args[i] = s.spawnTask(specs[i])
	}
	s.eng.AtBatch(at, taskArrived, args...)
	return s.tasks[start:len(s.tasks):len(s.tasks)]
}

// taskArrived is the static arrival callback, scheduled through AtArg /
// AtBatch with the *Task as argument (no per-spawn closure).
func taskArrived(a any) {
	t := a.(*Task)
	s := t.sched
	t.SpawnedAt = s.eng.Now()
	s.emit(TraceSpawn, t, -1, BlockNone)
	s.startProgram(t, -1)
}

// spawnTask runs the spawn-time bookkeeping shared by Spawn and SpawnBatch;
// the caller schedules the arrival event.
func (s *Scheduler) spawnTask(spec TaskSpec) *Task {
	if spec.Program == nil {
		panic("sched: task without program")
	}
	t := s.newTask()
	*t = Task{ID: len(s.tasks), Spec: spec, sched: s, lastCPU: -1, rqCPU: -1, rqPos: -1, state: stateNew, pendingMsgFromCPU: -1}
	s.tasks = append(s.tasks, t)
	s.live++
	if g := spec.Group; g != nil {
		qi := s.groupIdx(g)
		if qi == 0 {
			qi = s.registerGroup(g)
		}
		t.qIdx = qi
		members := s.qMembers[qi]
		if members == nil {
			members = make([]*Task, 0, 16)
		}
		members = append(members, t)
		s.qMembers[qi] = members
		if spec.Proc > 0 {
			if s.procCtrs == nil {
				s.procCtrs = make(map[procKey]*procCount)
			}
			key := procKey{g, spec.Proc}
			ctr := s.procCtrs[key]
			if ctr == nil {
				if len(s.procArena) == 0 {
					s.procArena = make([]procCount, 16)
				}
				ctr = &s.procArena[0]
				s.procArena = s.procArena[1:]
				s.procUsed++
				s.procCtrs[key] = ctr
			}
			t.procCtr = ctr
		}
		g.AddLive(1)
		// Keep the group's churn working-set factor at the mean of its
		// members (§IV-C: the unthrottle refill cost tracks how much state
		// the threads pull back into cache).
		var wsSum float64
		for _, gt := range members {
			wsSum += gt.Spec.WorkingSet
		}
		g.SetChurnScale(churnWSScale(wsSum / float64(len(members))))
	}
	return t
}

// groupIdx returns the subqueue index assigned to g, or 0 when g has not
// been registered yet. A linear scan: machines host a handful of groups at
// most, and only spawn/throttle paths resolve a group to its index.
func (s *Scheduler) groupIdx(g *cgroups.Group) int32 {
	for qi := 1; qi < len(s.qGroups); qi++ {
		if s.qGroups[qi] == g {
			return int32(qi)
		}
	}
	return 0
}

// reserveCompleted sizes the completion list once, at the first finish, when
// the total task population is known.
func (s *Scheduler) reserveCompleted() {
	if s.completed == nil {
		s.completed = make([]*Task, 0, len(s.tasks))
	}
}

// newTask bump-allocates a Task from the arena slab. Blocks start small —
// many schedulers (idle guests, tiny deployments) only ever spawn a
// handful of tasks — and grow geometrically with the task population.
func (s *Scheduler) newTask() *Task {
	if len(s.taskArena) == 0 {
		block := 8
		if n := len(s.tasks); n > block {
			block = n
			if block > 128 {
				block = 128
			}
		}
		s.taskArena = make([]Task, block)
	}
	t := &s.taskArena[0]
	s.taskArena = s.taskArena[1:]
	return t
}

func (s *Scheduler) registerGroup(g *cgroups.Group) int32 {
	// Subqueue index 0 is the ungrouped partition; groups start at 1. The
	// global queued-load index and member lists grow in lockstep with the
	// qIdx assignment.
	qi := int32(len(s.qGroups))
	s.groupQueued = append(s.groupQueued, 0)
	s.qGroups = append(s.qGroups, g)
	// Re-registration after a Reset reclaims the truncated member list's
	// backing instead of appending nil over it.
	if n := len(s.qMembers); n < cap(s.qMembers) {
		s.qMembers = s.qMembers[:n+1]
		if m := s.qMembers[n]; m != nil {
			s.qMembers[n] = m[:0]
		}
	} else {
		s.qMembers = append(s.qMembers, nil)
	}
	g.SetUnthrottleFn(func(churn sim.Time) {
		for _, t := range s.qMembers[qi] {
			switch t.state {
			case stateRunnable, stateBlockedIO, stateBlockedRecv:
				// Overwrite, never stack: cold caches refill once no matter
				// how many throttle cycles the task sat out. Blocked tasks
				// pay too — they resume onto cold caches and torn-down IO
				// channels just like the ones waiting on the runqueue.
				t.pendingChurn = churn
			}
		}
		// Kick idle CPUs so the refreshed group resumes; the idle bitmask
		// walks straight to them in ascending id order, exactly like the
		// full scan it replaces.
		s.forEachIdle(func(c *cpuRun) {
			if s.hasRunnable(c) {
				s.dispatch(c)
			}
		})
	})
	return qi
}

// churnWSScale converts a task's working-set size into its unthrottle
// cold-restart multiplier. Floored so even tiny-footprint tasks pay the
// fixed part of the restart (slice redistribution, runqueue requeue).
func churnWSScale(ws float64) float64 {
	const floor, ceil = 0.75, 3.0
	switch {
	case ws < floor:
		return floor
	case ws > ceil:
		return ceil
	}
	return ws
}

// updateRunnable maintains the group-wide and per-thread-group runnable
// counts (runnable = wants CPU, i.e. runnable or running). Both counters
// hang off structs the dispatch path already holds — no map lookups.
func (s *Scheduler) updateRunnable(t *Task, delta int) {
	g := t.Spec.Group
	if g == nil {
		return
	}
	g.AddRunnable(delta)
	if t.procCtr != nil {
		t.procCtr.n += delta
	}
}

// procOversubscription returns how many runnable threads of t's thread group
// exist per CPU of this machine (1 for a lone thread on an idle machine).
func (s *Scheduler) procOversubscription(t *Task) float64 {
	if t.procCtr == nil {
		return 0
	}
	return float64(t.procCtr.n) / float64(len(s.cpus))
}

// effAffinity resolves the CPUs a task may use: its own affinity intersected
// with its group's cpuset; empty components default to all CPUs.
func (s *Scheduler) effAffinity(t *Task) topology.CPUSet {
	all := s.cfg.Topo.AllCPUs()
	aff := t.Spec.Affinity
	if aff.IsEmpty() {
		aff = all
	}
	if g := t.Spec.Group; g != nil {
		aff = aff.Intersect(g.AllowedCPUs())
	}
	if aff.IsEmpty() {
		panic(fmt.Sprintf("sched: %v has empty effective affinity", t))
	}
	return aff
}

// ---- program driving -------------------------------------------------

// startProgram advances a task's program until it blocks, computes or ends.
// homeCPU is the CPU the task just ran on (-1 at spawn).
func (s *Scheduler) startProgram(t *Task, homeCPU int) {
	for {
		a := t.Spec.Program.Next(t)
		switch a.Kind {
		case ActCompute:
			if a.Dur <= 0 {
				continue
			}
			t.remaining = a.Dur
			t.chunkIsMsg = false
			s.makeRunnable(t, homeCPU)
			return
		case ActIO:
			t.state = stateBlockedIO
			s.emit(TraceBlock, t, -1, BlockIO)
			s.bd.IOs++
			ch := s.cfg.IRQ.Channel(a.Channel)
			lat := s.cfg.RNG.Jitter(sim.Time(float64(a.Latency)*s.cfg.IOScale), s.cfg.Params.WakeJitter)
			delay := s.cfg.IRQ.CompletionDelay(ch, s.eng.Now(), lat, s.cfg.IOScale)
			t.wakeCh = ch
			s.armWake(t, delay)
			return
		case ActSend:
			if a.To == nil {
				panic("sched: send without destination")
			}
			s.bd.Messages++
			copyScale := 1.0
			cost := s.cfg.MsgSyncCost
			if t.Spec.Group != nil {
				// Container network-namespace transport.
				cost += sim.Time(int64(s.cfg.MsgNSPerCPU) * int64(len(s.cpus)))
				if s.cfg.MsgNSCopyScale > 0 {
					copyScale = s.cfg.MsgNSCopyScale
				}
			}
			cost += sim.Time(float64(a.Bytes*int64(s.cfg.MsgCopyPerKB)) * copyScale / 1024)
			if cost <= 0 {
				cost = sim.Microsecond
			}
			t.remaining = cost
			t.chunkIsMsg = true
			t.sendTo = a.To
			t.sendBytes = a.Bytes
			s.makeRunnable(t, homeCPU)
			return
		case ActRecv:
			if len(t.pendingDeliver) > 0 {
				continue // message already waiting; program consumes via TakeMessage
			}
			t.state = stateBlockedRecv
			s.emit(TraceBlock, t, -1, BlockRecv)
			return
		case ActSleep:
			if a.Dur <= 0 {
				continue
			}
			t.state = stateBlockedIO
			s.emit(TraceBlock, t, -1, BlockSleep)
			t.wakeCh = nil
			s.armWake(t, a.Dur)
			return
		case ActDone:
			s.finish(t)
			return
		default:
			panic(fmt.Sprintf("sched: unknown action kind %d", a.Kind))
		}
	}
}

func (s *Scheduler) finish(t *Task) {
	t.state = stateDone
	t.finished = true
	t.FinishedAt = s.eng.Now()
	s.reserveCompleted()
	s.completed = append(s.completed, t)
	s.live--
	if g := t.Spec.Group; g != nil {
		g.AddLive(-1)
	}
	s.emit(TraceFinish, t, -1, BlockNone)
}

// armWake schedules t's block-expiry wakeup (IO completion when t.wakeCh is
// set, plain sleep wake otherwise) on the task's embedded timer: the static
// callback is bound once per task, so steady-state IO pays neither a Timer
// allocation nor a closure.
func (s *Scheduler) armWake(t *Task, d sim.Time) {
	if !t.wakeTimer.Bound() {
		t.wakeTimer.InitArg(s.eng, taskWakeFired, t)
	}
	t.wakeTimer.Reset(d)
}

// taskWakeFired is the static wake-timer callback: IO completion when wakeCh
// is set, plain sleep wake otherwise.
func taskWakeFired(a any) {
	t := a.(*Task)
	if ch := t.wakeCh; ch != nil {
		t.wakeCh = nil
		t.sched.ioComplete(t, ch)
	} else {
		t.sched.wakeFromBlock(t)
	}
}

// makeRunnable enqueues a task ready to compute. homeCPU >= 0 keeps the task
// local to the CPU it just ran on (no wake placement).
func (s *Scheduler) makeRunnable(t *Task, homeCPU int) {
	t.state = stateRunnable
	s.updateRunnable(t, 1)
	var c *cpuRun
	if homeCPU >= 0 {
		if set, _ := s.cachedAffinity(t); set.Contains(homeCPU) {
			c = s.cpus[homeCPU]
		}
	}
	if c == nil {
		c = s.cpus[s.placeTask(t)]
		s.bd.Wakeups++
	}
	// Newcomers and wakers join at the queue's current virtual time: no
	// credit for time spent blocked, no starvation of incumbents.
	if mv := s.minVruntime(c); t.vruntime < mv {
		t.vruntime = mv
	}
	s.rqPush(c, t)
	if c.current == nil {
		s.dispatch(c)
		return
	}
	// Wakeup preemption (check_preempt_wakeup): a long uncontended slice
	// must yield promptly once someone else wants the CPU.
	if c.sliceEndAt-s.eng.Now() > s.cfg.Params.MinGranularity {
		s.preempt(c)
	}
}

func (s *Scheduler) ioComplete(t *Task, ch *irqsim.Channel) {
	t.pendingIRQ = ch
	s.wakeFromBlock(t)
}

// wakeFromBlock handles IO completions and message arrivals: cgroup wakeup
// accounting plus wake placement.
func (s *Scheduler) wakeFromBlock(t *Task) {
	s.emit(TraceWake, t, -1, BlockNone)
	if g := t.Spec.Group; g != nil {
		a := g.AcctCost()
		t.pendingOverhead += a
		s.bd.AcctTime += a
	}
	if s.cfg.WakeExtra > 0 {
		t.pendingOverhead += s.cfg.WakeExtra
		s.bd.VirtioTime += s.cfg.WakeExtra
	}
	s.startProgramResume(t)
}

// startProgramResume re-enters the program after a block. For IO the blocked
// action is complete; for Recv the program loops via TakeMessage.
func (s *Scheduler) startProgramResume(t *Task) {
	s.startProgram(t, -1)
}

// deliver sends msg to task `to`; called when a sender's send-chunk ends.
func (s *Scheduler) deliver(from *Task, to *Task, bytes int64, senderCPU int) {
	if to.finished {
		return
	}
	to.pendingDeliver = append(to.pendingDeliver, Message{From: from, Bytes: bytes, sentCPU: senderCPU})
	if to.state == stateBlockedRecv {
		// Line-transfer cost: pulling the payload's cache lines to wherever
		// the receiver lands; charged at dispatch via pendingOverhead with
		// the distance computed against the sender's CPU.
		to.pendingMsgFromCPU = senderCPU
		s.wakeFromBlock(to)
	}
}

// ---- dispatching ------------------------------------------------------
//
// pickLocal, steal, hasRunnable, runnableCount and minVruntime live in
// runqueue.go, on the indexed per-group runqueues.

func (s *Scheduler) smtScale(c *cpuRun) float64 {
	if s.cfg.Topo.ThreadsPerCore <= 1 || s.cfg.Params.SMTPenalty <= 0 {
		return 1
	}
	// Precomputed sibling list: one slice read per hardware thread instead
	// of a CPUSet walk through an iterator closure.
	for _, sib := range s.tix.Siblings(c.id) {
		if s.cpus[sib].current != nil {
			return 1 + s.cfg.Params.SMTPenalty
		}
	}
	return 1
}

func (s *Scheduler) dispatch(c *cpuRun) {
	if c.current != nil {
		return
	}
	t := s.pickLocal(c)
	if t == nil {
		t = s.steal(c)
	}
	if t == nil {
		return
	}
	s.startSlice(c, t)
}

func (s *Scheduler) startSlice(c *cpuRun, t *Task) {
	now := s.eng.Now()
	p := &s.cfg.Params
	g := t.Spec.Group

	var over sim.Time
	if c.lastTask != t {
		over += p.SwitchCost
		s.bd.SwitchTime += p.SwitchCost
		s.bd.Switches++
		if g != nil {
			a := g.AcctCost()
			over += a
			s.bd.AcctTime += a
			if s.cfg.NestedSwitchCost > 0 {
				// Guest-container nested accounting: contention on the
				// thread group's shared usage counters, proportional to how
				// far its runnable threads oversubscribe the vCPUs and to
				// how hard the task's compute hammers virtualized memory
				// structures (VMTaxWeight — a JVM blocking on IO barely
				// touches the counters; a 16-thread transcoder hammers
				// them).
				if osub := s.procOversubscription(t); osub > 1 {
					nc := sim.Time(float64(s.cfg.NestedSwitchCost) * (osub - 1))
					if s.cfg.NestedSwitchMax > 0 && nc > s.cfg.NestedSwitchMax {
						nc = s.cfg.NestedSwitchMax
					}
					nc = sim.Time(float64(nc) * t.Spec.VMTaxWeight)
					over += nc
					s.bd.NestedTime += nc
				}
			}
		}
	}
	// Migration / cold-cache penalty.
	pen := s.cfg.Cache.MigrationPenalty(t.lastCPU, c.id, t.Spec.WorkingSet, t.lastRanAt, now)
	if pen > 0 {
		over += pen
		s.bd.MigrationTime += pen
		if t.lastCPU >= 0 && t.lastCPU != c.id {
			s.bd.Migrations++
		}
	}
	// Deferred wakeup-path costs.
	if t.pendingOverhead > 0 {
		over += t.pendingOverhead
		t.pendingOverhead = 0
	}
	if t.pendingChurn > 0 {
		over += t.pendingChurn
		s.bd.ChurnTime += t.pendingChurn
		t.pendingChurn = 0
	}
	if c.pendingStall > 0 {
		over += c.pendingStall
		s.bd.WanderTime += c.pendingStall
		c.pendingStall = 0
	}
	if t.pendingIRQ != nil {
		ic := s.cfg.IRQ.CompletionCost(t.pendingIRQ, c.id)
		over += ic
		s.bd.IRQTime += ic
		if s.cfg.PerIOExtra != nil {
			ve := s.cfg.PerIOExtra(t)
			over += ve
			s.bd.VirtioTime += ve
		}
		t.pendingIRQ = nil
	}
	if t.pendingMsgFromCPU >= 0 {
		lc := s.cfg.Cache.LineTransferCost(t.pendingMsgFromCPU, c.id)
		if s.cfg.MsgLineScale > 0 {
			lc = sim.Time(float64(lc) * s.cfg.MsgLineScale)
		}
		over += lc
		s.bd.MsgTime += lc
		t.pendingMsgFromCPU = -1
	}

	// Slice sizing. An uncontended task runs until the next bookkeeping
	// point (MaxSlice) — resuming the same task charges no switch cost.
	// Quota'd groups run at the kernel's bandwidth hand-out granularity.
	nrr := s.runnableCount(c) + 1
	var slice sim.Time
	if nrr == 1 {
		slice = p.MaxSlice
	} else {
		slice = p.TargetLatency / sim.Time(nrr)
		if slice < p.MinGranularity {
			slice = p.MinGranularity
		}
	}
	if g != nil && g.Quota() > 0 && p.BandwidthSlice > 0 && slice > p.BandwidthSlice {
		slice = p.BandwidthSlice
	}
	scale := 1.0
	if !t.chunkIsMsg {
		if s.cfg.ComputeScale != nil {
			scale = s.cfg.ComputeScale(t)
		}
		scale *= s.smtScale(c)
	}
	// Dispatch overheads extend the slice (the kernel burns them on top of
	// the task's fair share); they never starve the work budget.
	remainScaled := sim.Time(float64(t.remaining) * scale)
	if remainScaled < 1 {
		remainScaled = 1
	}
	work := remainScaled
	full := true
	if work > slice {
		work = slice
		full = false
	}
	occ := over + work
	// Accounting ticks over the slice for grouped tasks.
	if g != nil && p.TickInterval > 0 {
		if ticks := int64(occ / p.TickInterval); ticks > 0 {
			a := g.AcctCostN(ticks)
			occ += a
			s.bd.AcctTime += a
		}
	}

	t.state = stateRunning
	t.curCPU = c.id
	s.emit(TraceRunStart, t, c.id, BlockNone)
	c.current = t
	s.markBusy(c.id)
	if !c.sliceTimer.Bound() {
		c.sliceTimer.InitArg(s.eng, cpuSliceFired, c)
	}
	c.sliceStart = now
	c.sliceOver = occ - work
	c.sliceWork = work
	c.sliceScale = scale
	c.sliceFull = full
	c.sliceEndAt = now + occ
	c.sliceTimer.Reset(occ)
}

// sliceDone finishes the planned slice of c.current.
func (s *Scheduler) sliceDone(c *cpuRun) {
	s.endSlice(c, c.sliceWork, c.sliceFull)
}

// cpuSliceFired is the static slice-timer callback.
func cpuSliceFired(a any) {
	c := a.(*cpuRun)
	c.sched.sliceDone(c)
}

// preempt cuts short the current slice (quota throttle of the group).
func (s *Scheduler) preempt(c *cpuRun) {
	if c.current == nil {
		return
	}
	c.sliceTimer.Stop()
	elapsed := s.eng.Now() - c.sliceStart
	work := elapsed - c.sliceOver
	if work < 0 {
		work = 0
	}
	if work > c.sliceWork {
		work = c.sliceWork
	}
	s.endSlice(c, work, false)
}

// endSlice retires the slice with the given scaled work actually completed.
// full marks slices that covered their chunk's entire remaining work, which
// must zero the chunk exactly (scaling arithmetic would otherwise leave
// sub-nanosecond remainders that never converge).
func (s *Scheduler) endSlice(c *cpuRun, workScaled sim.Time, full bool) {
	t := c.current
	now := s.eng.Now()
	elapsed := now - c.sliceStart
	if elapsed < 0 {
		elapsed = 0
	}
	if full {
		t.remaining = 0
	} else {
		nominal := sim.Time(float64(workScaled) / c.sliceScale)
		if nominal <= 0 && workScaled > 0 {
			nominal = 1
		}
		t.remaining -= nominal
		if t.remaining < 0 {
			t.remaining = 0
		}
	}
	if t.chunkIsMsg {
		s.bd.MsgTime += workScaled
	} else {
		s.bd.UsefulWork += workScaled
	}
	t.vruntime += elapsed
	t.lastCPU = c.id
	t.lastRanAt = now
	c.lastTask = t
	c.current = nil
	s.markIdle(c.id)
	s.emit(TraceRunEnd, t, c.id, BlockNone)

	g := t.Spec.Group
	throttleNow := false
	if g != nil {
		throttleNow = g.Charge(c.id, elapsed)
	}

	if t.remaining <= 0 {
		s.updateRunnable(t, -1)
		s.chunkComplete(t, c.id)
	} else {
		t.state = stateRunnable
		dst := c
		// Periodic load balancing: when other tasks are already waiting
		// here, shed the just-preempted task to the least-loaded allowed
		// CPU. Without this, N equal threads on M < N CPUs never converge
		// to their fair 1/M shares and the doubly-loaded CPUs set the
		// makespan.
		if others := s.runnableCount(c); others >= 1 {
			if best := s.leastLoadedCPU(t, c); best != nil && others+1 > s.loadOf(best.id) {
				dst = best
			}
		}
		s.rqPush(dst, t)
		if dst != c {
			if dst.current == nil {
				s.dispatch(dst)
			} else if dst.sliceEndAt-now > s.cfg.Params.MinGranularity {
				s.preempt(dst)
			}
		}
	}

	if throttleNow {
		s.throttleGroup(g)
	}
	s.dispatch(c)
}

// leastLoadedCPU returns the allowed CPU with the smallest load, excluding
// `except`; ties resolve to the lowest CPU id.
func (s *Scheduler) leastLoadedCPU(t *Task, except *cpuRun) *cpuRun {
	set, slice := s.cachedAffinity(t)
	// Fast path: load 0 (idle, nothing runnable queued) is the global
	// minimum, and the full scan returns the first minimum in ascending
	// order — so the first idle allowed CPU with an empty runnable count
	// wins outright. Word-masked, so rebalancing on a mostly-idle big host
	// costs O(mask words) instead of a load read per allowed CPU.
	words := set.Words()
	if words > len(s.idleMask) {
		words = len(s.idleMask)
	}
	for w := 0; w < words; w++ {
		word := set.Word(w) & s.idleMask[w]
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &^= 1 << uint(b)
			c := s.cpus[w<<6|b]
			if except != nil && c.id == except.id {
				continue
			}
			if s.runnableCount(c) == 0 {
				return c
			}
		}
	}
	// No load-0 CPU available: full scan for the true minimum.
	var best *cpuRun
	bestLoad := 1 << 30
	for _, id := range slice {
		if except != nil && id == except.id {
			continue
		}
		if l := s.loadOf(id); l < bestLoad {
			best, bestLoad = s.cpus[id], l
		}
	}
	return best
}

// chunkComplete fires when a compute or send chunk finishes.
func (s *Scheduler) chunkComplete(t *Task, cpu int) {
	if t.chunkIsMsg {
		to := t.sendTo
		bytes := t.sendBytes
		t.sendTo = nil
		t.sendBytes = 0
		t.chunkIsMsg = false
		s.deliver(t, to, bytes, cpu)
	}
	s.startProgram(t, cpu)
}

// throttleGroup preempts every running task of a group that just exhausted
// its quota and meters the resched-IPI cost.
func (s *Scheduler) throttleGroup(g *cgroups.Group) {
	cost := g.ThrottleCost()
	s.bd.ThrottleTime += cost
	s.bd.Throttles++
	if s.cfg.Trace != nil {
		s.cfg.Trace(TraceEvent{Kind: TraceThrottle, CPU: -1, At: s.eng.Now(), Group: g.Name})
	}
	for _, t := range s.qMembers[s.groupIdx(g)] {
		if t.state == stateRunning {
			c := s.cpus[t.curCPU]
			if c.current == t {
				s.preempt(c)
			}
		}
	}
}

// CompletedTasks returns tasks in completion order.
func (s *Scheduler) CompletedTasks() []*Task { return s.completed }
