package sched

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/cgroups"
	"repro/internal/irqsim"
	"repro/internal/sim"
	"repro/internal/topology"
)

// rig bundles a scheduler over a host with its engine and cgroup controller.
type rig struct {
	eng  *sim.Engine
	topo *topology.Topology
	cg   *cgroups.Controller
	s    *Scheduler
}

func newRig(topo *topology.Topology, mutate func(*Config)) *rig {
	eng := sim.NewEngine()
	cfg := Config{
		Params:       DefaultParams(),
		Topo:         topo,
		Cache:        cache.New(topo, cache.DefaultParams()),
		IRQ:          irqsim.NewController(topo, irqsim.DefaultParams(), irqsim.DefaultChannels()),
		RNG:          sim.NewRNG(1),
		MsgSyncCost:  8 * sim.Microsecond,
		MsgCopyPerKB: 250 * sim.Nanosecond,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	return &rig{
		eng:  eng,
		topo: topo,
		cg:   cgroups.NewController(eng, topo, cgroups.DefaultParams()),
		s:    New(eng, cfg),
	}
}

// drain runs until all tasks finish, with a safety cap.
func (r *rig) drain(t *testing.T) {
	t.Helper()
	for r.s.Live() > 0 {
		if !r.eng.Step() {
			t.Fatalf("deadlock: %d tasks live, empty queue", r.s.Live())
		}
		if r.eng.Processed() > 50_000_000 {
			t.Fatal("runaway simulation")
		}
	}
	for _, g := range r.cg.Groups() {
		g.Stop()
	}
}

func smallHost() *topology.Topology {
	topo, err := topology.New("t", 1, 4, 1)
	if err != nil {
		panic(err)
	}
	return topo
}

func TestSingleTaskCompletes(t *testing.T) {
	r := newRig(smallHost(), nil)
	task := r.s.Spawn(TaskSpec{Name: "one", Program: Sequence(Compute(10 * sim.Millisecond))}, 0)
	r.drain(t)
	if !task.Finished() {
		t.Fatal("task did not finish")
	}
	// Completion ≈ work + dispatch overheads (first-dispatch cold start).
	if rt := task.ResponseTime(); rt < 10*sim.Millisecond || rt > 12*sim.Millisecond {
		t.Fatalf("response %v, want ≈10ms", rt)
	}
	bd := r.s.Breakdown()
	if bd.UsefulWork != 10*sim.Millisecond {
		t.Fatalf("useful work %v", bd.UsefulWork)
	}
}

func TestUnfinishedResponseIsNegative(t *testing.T) {
	r := newRig(smallHost(), nil)
	task := r.s.Spawn(TaskSpec{Name: "later", Program: Sequence(Compute(sim.Millisecond))}, sim.Second)
	if task.ResponseTime() != -1 {
		t.Fatal("unfinished task must report -1 response")
	}
	r.drain(t)
}

func TestParallelSpeedup(t *testing.T) {
	// 4 equal tasks on 4 CPUs must take ≈1 task's time, not 4.
	r := newRig(smallHost(), nil)
	for i := 0; i < 4; i++ {
		r.s.Spawn(TaskSpec{Name: "p", Program: Sequence(Compute(100 * sim.Millisecond))}, 0)
	}
	r.drain(t)
	if end := r.eng.Now(); end > 110*sim.Millisecond {
		t.Fatalf("4 tasks on 4 cpus took %v", end)
	}
}

func TestFairnessOversubscribed(t *testing.T) {
	// 8 equal tasks on 4 CPUs: makespan ≈ 2× solo, and completions close
	// together (load balancing must spread them fairly).
	r := newRig(smallHost(), nil)
	var tasks []*Task
	for i := 0; i < 8; i++ {
		tasks = append(tasks, r.s.Spawn(TaskSpec{Name: "f", Program: Sequence(Compute(100 * sim.Millisecond))}, 0))
	}
	r.drain(t)
	var minT, maxT sim.Time
	for i, task := range tasks {
		ft := task.FinishedAt
		if i == 0 || ft < minT {
			minT = ft
		}
		if ft > maxT {
			maxT = ft
		}
	}
	if maxT > 230*sim.Millisecond {
		t.Fatalf("makespan %v, want ≈200ms", maxT)
	}
	if spread := maxT - minT; spread > 60*sim.Millisecond {
		t.Fatalf("unfair completion spread %v", spread)
	}
}

func TestAffinityRespected(t *testing.T) {
	topo := topology.PaperHost()
	r := newRig(topo, nil)
	allowed := topology.NewCPUSet(3, 5)
	for i := 0; i < 4; i++ {
		r.s.Spawn(TaskSpec{
			Name:     "pinned",
			Affinity: allowed,
			Program:  Sequence(Compute(50 * sim.Millisecond)),
		}, 0)
	}
	r.drain(t)
	for _, task := range r.s.Tasks() {
		if !allowed.Contains(task.lastCPU) {
			t.Fatalf("task ran on cpu %d outside %v", task.lastCPU, allowed)
		}
	}
	// 4 tasks × 50ms on 2 cpus ⇒ ≥100ms.
	if r.eng.Now() < 100*sim.Millisecond {
		t.Fatalf("finished too fast for a 2-cpu cage: %v", r.eng.Now())
	}
}

func TestEmptyAffinityPanics(t *testing.T) {
	topo := topology.PaperHost()
	r := newRig(topo, nil)
	g := r.cg.NewGroup("g", 0, topology.NewCPUSet(0))
	// Task affinity ∩ group cpuset = ∅.
	r.s.Spawn(TaskSpec{
		Name:     "bad",
		Group:    g,
		Affinity: topology.NewCPUSet(5),
		Program:  Sequence(Compute(sim.Millisecond)),
	}, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("empty effective affinity must panic")
		}
	}()
	for r.s.Live() > 0 && r.eng.Step() {
	}
}

func TestSpawnWithoutProgramPanics(t *testing.T) {
	r := newRig(smallHost(), nil)
	defer func() {
		if recover() == nil {
			t.Fatal("nil program must panic")
		}
	}()
	r.s.Spawn(TaskSpec{Name: "no-prog"}, 0)
}

func TestQuotaGroupBoundedThroughput(t *testing.T) {
	// A 1-core-quota group with 4 hot threads must take ≈4× the dedicated
	// time (plus churn), never less.
	topo := topology.PaperHost()
	r := newRig(topo, nil)
	g := r.cg.NewGroup("g", 1, topology.CPUSet{})
	for i := 0; i < 4; i++ {
		r.s.Spawn(TaskSpec{Name: "q", Group: g, Program: Sequence(Compute(100 * sim.Millisecond))}, 0)
	}
	r.drain(t)
	elapsed := r.eng.Now()
	if elapsed < 380*sim.Millisecond {
		t.Fatalf("quota violated: 400ms of work at 1 core finished in %v", elapsed)
	}
	if elapsed > 800*sim.Millisecond {
		t.Fatalf("quota overhead unreasonable: %v", elapsed)
	}
	if r.s.Breakdown().Throttles == 0 {
		t.Fatal("expected throttling")
	}
}

func TestPinnedGroupStaysInCpuset(t *testing.T) {
	topo := topology.PaperHost()
	r := newRig(topo, nil)
	set := topo.PinPlan(2, 0)
	g := r.cg.NewGroup("pin", 0, set)
	for i := 0; i < 6; i++ {
		r.s.Spawn(TaskSpec{Name: "c", Group: g, Program: Sequence(Compute(30 * sim.Millisecond))}, 0)
	}
	r.drain(t)
	for _, task := range r.s.Tasks() {
		if !set.Contains(task.lastCPU) {
			t.Fatalf("grouped task escaped cpuset onto cpu %d", task.lastCPU)
		}
	}
}

func TestIOBlocksAndWakes(t *testing.T) {
	r := newRig(smallHost(), nil)
	task := r.s.Spawn(TaskSpec{
		Name: "io",
		Program: Sequence(
			Compute(sim.Millisecond),
			IO(irqsim.ChanNIC, 5*sim.Millisecond),
			Compute(sim.Millisecond),
		),
	}, 0)
	r.drain(t)
	if !task.Finished() {
		t.Fatal("io task did not finish")
	}
	rt := task.ResponseTime()
	if rt < 6*sim.Millisecond {
		t.Fatalf("response %v cannot be faster than compute+latency", rt)
	}
	bd := r.s.Breakdown()
	if bd.IOs != 1 || bd.IRQTime == 0 {
		t.Fatalf("IO accounting: %+v", bd)
	}
}

func TestQueuedDiskSerializes(t *testing.T) {
	r := newRig(smallHost(), nil)
	const n = 4
	for i := 0; i < n; i++ {
		r.s.Spawn(TaskSpec{Name: "d", Program: Sequence(IO(irqsim.ChanDisk, 0))}, 0)
	}
	r.drain(t)
	// Disk service is 9ms serialized: 4 IOs ≥ ~36ms even with 4 CPUs.
	if r.eng.Now() < 30*sim.Millisecond {
		t.Fatalf("queued disk did not serialize: %v", r.eng.Now())
	}
}

func TestSleepAction(t *testing.T) {
	r := newRig(smallHost(), nil)
	task := r.s.Spawn(TaskSpec{
		Name:    "sleepy",
		Program: Sequence(Sleep(20*sim.Millisecond), Compute(sim.Millisecond)),
	}, 0)
	r.drain(t)
	if task.ResponseTime() < 21*sim.Millisecond {
		t.Fatalf("sleep not honored: %v", task.ResponseTime())
	}
}

func TestSendRecv(t *testing.T) {
	r := newRig(smallHost(), nil)
	var got []Message
	receiver := r.s.Spawn(TaskSpec{
		Name: "rx",
		Program: ProgramFunc(func(task *Task) Action {
			if m, ok := task.TakeMessage(); ok {
				got = append(got, m)
				return Done()
			}
			return Recv()
		}),
	}, 0)
	r.s.Spawn(TaskSpec{
		Name:    "tx",
		Program: Sequence(Compute(sim.Millisecond), Send(receiver, 4096)),
	}, 0)
	r.drain(t)
	if len(got) != 1 || got[0].Bytes != 4096 {
		t.Fatalf("message not delivered: %v", got)
	}
	bd := r.s.Breakdown()
	if bd.Messages != 1 || bd.MsgTime == 0 {
		t.Fatalf("message accounting: %+v", bd)
	}
}

func TestContainerSenderPaysNamespaceCost(t *testing.T) {
	mkTime := func(grouped bool) sim.Time {
		topo := topology.PaperHost()
		r := newRig(topo, func(c *Config) {
			c.MsgNSPerCPU = 250 * sim.Nanosecond
			c.MsgNSCopyScale = 5
		})
		var g *cgroups.Group
		if grouped {
			g = r.cg.NewGroup("g", 0, topology.CPUSet{})
		}
		rx := r.s.Spawn(TaskSpec{
			Name:  "rx",
			Group: g,
			Program: ProgramFunc(func(task *Task) Action {
				if _, ok := task.TakeMessage(); ok {
					return Done()
				}
				return Recv()
			}),
		}, 0)
		r.s.Spawn(TaskSpec{Name: "tx", Group: g,
			Program: Sequence(Send(rx, 1<<20))}, 0)
		r.drain(t)
		return r.eng.Now()
	}
	bare := mkTime(false)
	contained := mkTime(true)
	if contained <= bare {
		t.Fatalf("container messaging (%v) should cost more than bare (%v)", contained, bare)
	}
}

func TestNestedSwitchCostOnlyWhenOversubscribed(t *testing.T) {
	run := func(threads int) sim.Time {
		topo, _ := topology.New("guest", 1, 2, 1)
		r := newRig(topo, func(c *Config) {
			c.NestedSwitchCost = 500 * sim.Microsecond
			c.NestedSwitchMax = 3 * sim.Millisecond
		})
		g := r.cg.NewGroup("cn", 0, topology.CPUSet{})
		for i := 0; i < threads; i++ {
			r.s.Spawn(TaskSpec{
				Name: "t", Group: g, Proc: 1, VMTaxWeight: 1,
				Program: Sequence(Compute(sim.Time(200/threads) * sim.Millisecond)),
			}, 0)
		}
		r.drain(t)
		return r.s.Breakdown().NestedTime
	}
	if got := run(2); got != 0 {
		t.Fatalf("2 threads on 2 vcpus should pay no nested cost, got %v", got)
	}
	if got := run(8); got == 0 {
		t.Fatal("8 threads on 2 vcpus must pay nested accounting")
	}
}

func TestWanderStallsChargeOnlyWhenConfigured(t *testing.T) {
	run := func(rate float64) sim.Time {
		r := newRig(smallHost(), func(c *Config) {
			c.WanderStallRate = rate
			c.WanderStallCost = 2 * sim.Millisecond
		})
		for i := 0; i < 4; i++ {
			r.s.Spawn(TaskSpec{Name: "w", Program: Sequence(Compute(200 * sim.Millisecond))}, 0)
		}
		r.drain(t)
		return r.s.Breakdown().WanderTime
	}
	if got := run(0); got != 0 {
		t.Fatalf("no wander configured but charged %v", got)
	}
	if got := run(50); got == 0 {
		t.Fatal("wander stalls not charged")
	}
}

func TestBreakdownConservation(t *testing.T) {
	// For a single uncontended task, completion time == useful work +
	// metered overheads.
	r := newRig(smallHost(), nil)
	task := r.s.Spawn(TaskSpec{Name: "solo", WorkingSet: 1,
		Program: Sequence(Compute(40 * sim.Millisecond))}, 0)
	r.drain(t)
	bd := r.s.Breakdown()
	want := bd.UsefulWork + bd.OverheadTotal()
	if got := task.FinishedAt; got != want {
		t.Fatalf("conservation: finished at %v, accounted %v", got, want)
	}
}

func TestComputeScaleStretchesWork(t *testing.T) {
	r := newRig(smallHost(), func(c *Config) {
		c.ComputeScale = func(t *Task) float64 { return 1 + t.Spec.VMTaxWeight }
	})
	task := r.s.Spawn(TaskSpec{Name: "taxed", VMTaxWeight: 1,
		Program: Sequence(Compute(50 * sim.Millisecond))}, 0)
	r.drain(t)
	if rt := task.ResponseTime(); rt < 100*sim.Millisecond {
		t.Fatalf("2× tax not applied: %v", rt)
	}
}

func TestMessageToFinishedTaskIsDropped(t *testing.T) {
	r := newRig(smallHost(), nil)
	rx := r.s.Spawn(TaskSpec{Name: "gone", Program: Sequence(Compute(sim.Microsecond))}, 0)
	r.s.Spawn(TaskSpec{Name: "tx",
		Program: Sequence(Compute(10*sim.Millisecond), Send(rx, 64))}, 0)
	r.drain(t) // must not deadlock or panic
}

func TestZeroComputeActionSkipped(t *testing.T) {
	r := newRig(smallHost(), nil)
	task := r.s.Spawn(TaskSpec{Name: "zero",
		Program: Sequence(Compute(0), Compute(sim.Millisecond))}, 0)
	r.drain(t)
	if !task.Finished() {
		t.Fatal("zero compute wedged the program")
	}
}

func TestSMTContentionSlowsSiblings(t *testing.T) {
	topo, _ := topology.New("smt", 1, 1, 2) // one core, two threads
	r := newRig(topo, nil)
	for i := 0; i < 2; i++ {
		r.s.Spawn(TaskSpec{Name: "s", Program: Sequence(Compute(100 * sim.Millisecond))}, 0)
	}
	r.drain(t)
	// Two threads on SMT siblings of one core: slower than perfect 100ms.
	if r.eng.Now() < 110*sim.Millisecond {
		t.Fatalf("SMT contention missing: %v", r.eng.Now())
	}
}
