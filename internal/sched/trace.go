package sched

import "repro/internal/sim"

// TraceKind enumerates scheduler trace events. The trace stream is the
// simulator's analog of the kernel tracepoints BCC tools attach to
// (sched_switch, sched_wakeup, ...); the paper's profiling methodology
// (§III-A) builds cpudist and offcputime from exactly these events.
type TraceKind uint8

const (
	// TraceSpawn fires when a task arrives (becomes known to the scheduler).
	TraceSpawn TraceKind = iota
	// TraceRunStart fires when a task is dispatched onto a CPU.
	TraceRunStart
	// TraceRunEnd fires when a task leaves a CPU (slice end, preemption,
	// block, or completion).
	TraceRunEnd
	// TraceBlock fires when a task enters a blocked state; Block carries the
	// reason.
	TraceBlock
	// TraceWake fires when a blocked task becomes runnable again.
	TraceWake
	// TraceFinish fires when a task terminates.
	TraceFinish
	// TraceThrottle fires once per group throttle (the group's tasks stop
	// being runnable until the next bandwidth period).
	TraceThrottle
)

func (k TraceKind) String() string {
	switch k {
	case TraceSpawn:
		return "spawn"
	case TraceRunStart:
		return "run-start"
	case TraceRunEnd:
		return "run-end"
	case TraceBlock:
		return "block"
	case TraceWake:
		return "wake"
	case TraceFinish:
		return "finish"
	case TraceThrottle:
		return "throttle"
	}
	return "unknown"
}

// BlockKind classifies why a task went off-CPU into a blocked state.
type BlockKind uint8

const (
	// BlockNone: not blocked (e.g. preempted while runnable).
	BlockNone BlockKind = iota
	// BlockIO: waiting for a device completion (disk/NIC IRQ path).
	BlockIO
	// BlockRecv: waiting for a message from another task.
	BlockRecv
	// BlockSleep: timed sleep (paced arrivals, think time).
	BlockSleep
)

func (b BlockKind) String() string {
	switch b {
	case BlockNone:
		return "runqueue"
	case BlockIO:
		return "io"
	case BlockRecv:
		return "recv"
	case BlockSleep:
		return "sleep"
	}
	return "unknown"
}

// TraceEvent is one scheduler tracepoint firing.
type TraceEvent struct {
	Kind  TraceKind
	Task  *Task // nil for TraceThrottle
	CPU   int   // valid for RunStart/RunEnd; -1 otherwise
	At    sim.Time
	Block BlockKind // valid for TraceBlock
	// Group names the task's cgroup ("" for ungrouped tasks and for
	// group-level events with no group name).
	Group string
}

// TraceFn receives trace events. It runs synchronously inside the scheduler:
// implementations must not call back into the scheduler.
type TraceFn func(TraceEvent)

// emit fires a trace event if tracing is enabled.
func (s *Scheduler) emit(kind TraceKind, t *Task, cpu int, block BlockKind) {
	if s.cfg.Trace == nil {
		return
	}
	ev := TraceEvent{Kind: kind, Task: t, CPU: cpu, At: s.eng.Now(), Block: block}
	if t != nil && t.Spec.Group != nil {
		ev.Group = t.Spec.Group.Name
	}
	s.cfg.Trace(ev)
}
