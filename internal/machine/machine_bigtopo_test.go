package machine

import (
	"testing"

	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
)

// TestRunOnBigHost1024HighCPUs is the end-to-end >64-CPU regression test: a
// full machine run on the 1024-CPU dual-socket host with tasks pinned above
// CPU 1000 and one straddling the word-0/word-1 seam. Any surviving
// single-word mask assumption anywhere in the stack — dispatch, idle
// scanning, stealing, trace attribution — either strands the high-CPU tasks
// (timeout) or runs them off their affinity (busy time outside the pin).
func TestRunOnBigHost1024HighCPUs(t *testing.T) {
	topo := topology.BigHost1024()
	col := trace.NewCollector(nil)
	cfg := HostDefaults(topo, 1)
	cfg.Trace = col.Fn()
	m := MustNew(cfg)

	pinned := map[string]topology.CPUSet{}
	for cpu := 1016; cpu <= 1023; cpu++ {
		name := "hi" + topology.NewCPUSet(cpu).String()
		pinned[name] = topology.NewCPUSet(cpu)
		m.Spawn(sched.TaskSpec{Name: name, Affinity: pinned[name],
			Program: sched.Sequence(sched.Compute(5 * sim.Millisecond))}, 0)
	}
	seam := topology.NewCPUSet(63, 64)
	pinned["seam"] = seam
	m.Spawn(sched.TaskSpec{Name: "seam", Affinity: seam,
		Program: sched.Sequence(sched.Compute(5 * sim.Millisecond))}, 0)

	res := m.Run(10 * sim.Second)
	if res.TimedOut {
		t.Fatal("high-CPU pinned tasks never completed")
	}
	if len(res.Responses) != 9 {
		t.Fatalf("responses: %d, want 9", len(res.Responses))
	}
	// Distinct single-CPU pins run concurrently: the makespan must be one
	// task's worth of compute, not a serialized pile-up on a low CPU.
	if res.Makespan > 8*sim.Millisecond {
		t.Fatalf("makespan %v suggests tasks serialized off their pins", res.Makespan)
	}

	allowed := topology.CPUSet{}
	for _, s := range pinned {
		allowed = allowed.Union(s)
	}
	sawHigh := false
	col.VisitCPUBusy(func(cpu int, busy sim.Time) {
		if busy == 0 {
			return
		}
		if !allowed.Contains(cpu) {
			t.Errorf("busy time %v on CPU %d, outside every affinity", busy, cpu)
		}
		if cpu >= 1016 {
			sawHigh = true
		}
	})
	if !sawHigh {
		t.Fatal("no busy time attributed to any CPU >= 1016")
	}
	// Each single-CPU pin must have run exactly where it was pinned.
	for cpu := 1016; cpu <= 1023; cpu++ {
		found := false
		col.VisitCPUBusy(func(c int, busy sim.Time) {
			if c == cpu && busy > 0 {
				found = true
			}
		})
		if !found {
			t.Errorf("CPU %d: pinned task left no busy time", cpu)
		}
	}
}