// Package machine assembles one simulated computer: topology + CFS scheduler
// + cgroup controller + IRQ/device controller + cache/NUMA model, over a
// private event engine. A Machine is either the physical host or a VM guest;
// the hypervisor package builds guest machines with virtualization overlays.
package machine

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/cgroups"
	"repro/internal/irqsim"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Config describes a machine and its calibration. Zero-valued scaling fields
// fall back to neutral values.
type Config struct {
	Name string
	Topo *topology.Topology
	Seed uint64

	Sched sched.Params
	Cache cache.Params
	CG    cgroups.Params
	IRQ   irqsim.Params
	// Channels are the IO devices; defaults to one NIC + one queued disk.
	Channels []irqsim.ChannelSpec

	// ComputeTax is the virtualization multiplier on compute (1 = host,
	// ~2 = guest per the paper's KVM measurements); each task weighs it by
	// its VMTaxWeight.
	ComputeTax float64
	// NUMASockets overrides the socket count used for the NUMA interleave
	// factor (guests pass the host's socket count). 0 = Topo.Sockets.
	NUMASockets int
	// IOScale multiplies device latencies and service times (paravirtual
	// IO). 0 = 1.
	IOScale float64
	// VirtioExtra is the per-IO completion cost inside guests.
	VirtioExtra sim.Time
	// VirtioMiss and VirtioMissProb model the completion vector landing on a
	// stale CPU while vanilla vCPUs wander; pinned VMs set prob 0.
	VirtioMiss     sim.Time
	VirtioMissProb float64
	// MsgSyncCost is the per-message synchronization cost: the host-kernel
	// futex/IPI path on hosts, the hypervisor shared-memory fast path in
	// guests.
	MsgSyncCost sim.Time
	// MsgCopyPerKB is the per-KiB copy cost of message payloads.
	MsgCopyPerKB sim.Time
	// MsgNSPerCPU is the per-machine-CPU network-namespace cost added to
	// each message sent by a containerized task (Docker bridge path).
	MsgNSPerCPU sim.Time
	// MsgNSCopyScale multiplies copy costs for containerized senders.
	MsgNSCopyScale float64
	// MsgLineScale multiplies receiver-side line-transfer costs (guests set
	// it to reflect host-socket distances hidden by the flat vCPU topology).
	MsgLineScale float64
	// WakeExtra is the per-block-wakeup cost (guest vIPI/VM-exit path).
	WakeExtra sim.Time
	// WanderStallRate/WanderStallCost model floating-vCPU stalls (vanilla
	// guests only).
	WanderStallRate float64
	WanderStallCost sim.Time
	// NestedSwitchCost is the per-context-switch cost of guest-level cgroup
	// accounting under virtualized timekeeping; nonzero only for VMCN
	// guests. NestedSwitchMax caps one charge.
	NestedSwitchCost sim.Time
	NestedSwitchMax  sim.Time
	// Trace, when non-nil, receives the machine's scheduler tracepoint
	// stream (the BCC instrumentation analog; see internal/trace). Guests
	// built from this config inherit it, so a VMCN profile includes the
	// guest scheduler's events.
	Trace sched.TraceFn
}

// HostDefaults returns the calibrated host configuration for a topology.
func HostDefaults(topo *topology.Topology, seed uint64) Config {
	return Config{
		Name:           "host-" + topo.Name,
		Topo:           topo,
		Seed:           seed,
		Sched:          sched.DefaultParams(),
		Cache:          cache.DefaultParams(),
		CG:             cgroups.DefaultParams(),
		IRQ:            irqsim.DefaultParams(),
		ComputeTax:     1,
		IOScale:        1,
		MsgSyncCost:    8 * sim.Microsecond,
		MsgCopyPerKB:   250 * sim.Nanosecond,
		MsgNSPerCPU:    250 * sim.Nanosecond,
		MsgNSCopyScale: 6.0,
		MsgLineScale:   1.0,
	}
}

// Machine is one simulated computer.
type Machine struct {
	Cfg   Config
	Eng   *sim.Engine
	Topo  *topology.Topology
	Cache *cache.Model
	CG    *cgroups.Controller
	IRQ   *irqsim.Controller
	Sched *sched.Scheduler
	RNG   *sim.RNG
}

// New builds a machine from cfg.
func New(cfg Config) (*Machine, error) {
	if cfg.Topo == nil {
		return nil, fmt.Errorf("machine: nil topology")
	}
	if err := cfg.Topo.Validate(); err != nil {
		return nil, err
	}
	if cfg.ComputeTax <= 0 {
		cfg.ComputeTax = 1
	}
	if cfg.IOScale <= 0 {
		cfg.IOScale = 1
	}
	if cfg.NUMASockets <= 0 {
		cfg.NUMASockets = cfg.Topo.Sockets
	}
	if cfg.Sched == (sched.Params{}) {
		cfg.Sched = sched.DefaultParams()
	}
	if cfg.Cache == (cache.Params{}) {
		cfg.Cache = cache.DefaultParams()
	}
	if cfg.IRQ == (irqsim.Params{}) {
		cfg.IRQ = irqsim.DefaultParams()
	}
	eng := sim.NewEngine()
	rng := sim.NewRNG(cfg.Seed)
	m := &Machine{
		Cfg:   cfg,
		Eng:   eng,
		Topo:  cfg.Topo,
		Cache: cache.New(cfg.Topo, cfg.Cache),
		CG:    cgroups.NewController(eng, cfg.Topo, cfg.CG),
		IRQ:   irqsim.NewController(cfg.Topo, cfg.IRQ, cfg.Channels),
		RNG:   rng,
	}
	m.Sched = sched.New(eng, m.schedConfig(cfg))
	return m, nil
}

// Reset returns the machine to the state New(cfg) would construct while
// keeping every arena the previous run grew: the event engine's slot pool,
// the scheduler's cpuRun/runqueue/task backings, the cgroup and IRQ
// controller structures. It is the per-trial reuse path — repetitions of
// one deployment shape differ only by cfg.Seed, so resetting and
// redeploying replays byte-identically to a fresh machine while allocating
// almost nothing. cfg.Topo must be the same *Topology the machine was
// built with (deployment reuse keys by host/guest shape, and guest
// topologies are interned, so this holds by construction); a different
// topology returns an error and the caller falls back to New.
func (m *Machine) Reset(cfg Config) error {
	if cfg.Topo != m.Topo {
		return fmt.Errorf("machine: Reset with a different topology (%s vs %s) — rebuild instead",
			cfg.Topo.Name, m.Topo.Name)
	}
	if cfg.ComputeTax <= 0 {
		cfg.ComputeTax = 1
	}
	if cfg.IOScale <= 0 {
		cfg.IOScale = 1
	}
	if cfg.NUMASockets <= 0 {
		cfg.NUMASockets = cfg.Topo.Sockets
	}
	if cfg.Sched == (sched.Params{}) {
		cfg.Sched = sched.DefaultParams()
	}
	if cfg.Cache == (cache.Params{}) {
		cfg.Cache = cache.DefaultParams()
	}
	if cfg.IRQ == (irqsim.Params{}) {
		cfg.IRQ = irqsim.DefaultParams()
	}
	m.Cfg = cfg
	m.Eng.Reset()
	m.RNG.Reseed(cfg.Seed)
	// The cache model is stateless (params + topology); rebuild only when
	// the calibration actually changed.
	if m.Cache.P != cfg.Cache {
		m.Cache = cache.New(cfg.Topo, cfg.Cache)
	}
	m.CG.Reset(cfg.CG)
	m.IRQ.Reset(cfg.IRQ, cfg.Channels)
	m.Sched.Reset(m.schedConfig(cfg))
	return nil
}

// schedConfig assembles the scheduler wiring for cfg — shared by New and
// Reset so the two paths cannot drift.
func (m *Machine) schedConfig(cfg Config) sched.Config {
	scfg := sched.Config{
		Params:           cfg.Sched,
		Topo:             cfg.Topo,
		Cache:            m.Cache,
		IRQ:              m.IRQ,
		RNG:              m.RNG,
		Trace:            cfg.Trace,
		IOScale:          cfg.IOScale,
		MsgSyncCost:      cfg.MsgSyncCost,
		MsgCopyPerKB:     cfg.MsgCopyPerKB,
		MsgNSPerCPU:      cfg.MsgNSPerCPU,
		MsgNSCopyScale:   cfg.MsgNSCopyScale,
		MsgLineScale:     cfg.MsgLineScale,
		WakeExtra:        cfg.WakeExtra,
		NestedSwitchMax:  cfg.NestedSwitchMax,
		WanderStallRate:  cfg.WanderStallRate,
		WanderStallCost:  cfg.WanderStallCost,
		NestedSwitchCost: cfg.NestedSwitchCost,
		// Method values instead of closures: the hooks read m.Cfg, so the
		// (large) Config no longer escapes into its own heap cell per
		// machine — construction is a per-trial steady-state cost.
		ComputeScale: m.computeScale,
	}
	if cfg.VirtioExtra > 0 || cfg.VirtioMissProb > 0 {
		scfg.PerIOExtra = m.perIOExtra
	}
	return scfg
}

// computeScale is the wall-time multiplier bound into the scheduler:
// virtualization tax (weighted per task) × NUMA interleave factor.
func (m *Machine) computeScale(t *sched.Task) float64 {
	tax := 1 + (m.Cfg.ComputeTax-1)*t.Spec.VMTaxWeight
	numa := m.Cache.NUMAFactorForSockets(t.Spec.MemBound, m.Cfg.NUMASockets)
	return tax * numa
}

// perIOExtra is the per-IO-completion guest cost hook (virtio ring plus the
// affinity-miss path of wandering vanilla vCPUs).
func (m *Machine) perIOExtra(*sched.Task) sim.Time {
	extra := m.Cfg.VirtioExtra
	if m.Cfg.VirtioMissProb > 0 && m.RNG.Float64() < m.Cfg.VirtioMissProb {
		extra += m.Cfg.VirtioMiss
	}
	return extra
}

// MustNew is New that panics on error (tests, examples).
func MustNew(cfg Config) *Machine {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// NewGroup creates a cgroup on this machine. quotaCores <= 0 means no
// bandwidth quota; an empty cpuset means all CPUs.
func (m *Machine) NewGroup(name string, quotaCores float64, cpus topology.CPUSet) *cgroups.Group {
	return m.CG.NewGroup(name, quotaCores, cpus)
}

// Spawn schedules a task's arrival.
func (m *Machine) Spawn(spec sched.TaskSpec, at sim.Time) *sched.Task {
	return m.Sched.Spawn(spec, at)
}

// SpawnBatch schedules one task per spec, all arriving at the same instant.
// Equivalent to calling Spawn for each spec in order, but the arrival events
// are applied to the event queue as one batch (see sched.SpawnBatch).
func (m *Machine) SpawnBatch(specs []sched.TaskSpec, at sim.Time) []*sched.Task {
	return m.Sched.SpawnBatch(specs, at)
}

// SpecScratch returns the scheduler's reusable TaskSpec build buffer (see
// sched.Scheduler.SpecScratch): zero length, capacity for at least n specs.
func (m *Machine) SpecScratch(n int) []sched.TaskSpec {
	return m.Sched.SpecScratch(n)
}

// Result summarizes one run.
type Result struct {
	Makespan     sim.Time // last task completion time
	MeanResponse sim.Time // mean of per-task (finish - spawn)
	Responses    []sim.Time
	Breakdown    sched.Breakdown
	Events       uint64
	TimedOut     bool
}

// Run executes the machine until all spawned tasks finish, or until limit of
// simulated time elapses (0 = no limit). A limit hit marks the result
// TimedOut rather than erroring: the Cassandra Large "thrash" case is a
// legitimate outcome the experiments flag as out-of-range.
func (m *Machine) Run(limit sim.Time) Result {
	res := Result{}
	// RunWhile holds the engine's reentrancy guard for the whole run — one
	// enter/leave instead of one per event. The condition reproduces the old
	// per-step loop exactly: the limit is tested first (it can only trip
	// after a step advanced the clock, and the old loop flagged a timeout
	// even when that step finished the last task).
	drained := m.Eng.RunWhile(func() bool {
		if limit > 0 && m.Eng.Now() > limit {
			res.TimedOut = true
			return false
		}
		return m.Sched.Live() > 0
	})
	if !drained {
		// No events but live tasks: a deadlock in the task graph.
		panic(fmt.Sprintf("machine %s: %d tasks live with empty event queue",
			m.Cfg.Name, m.Sched.Live()))
	}
	for _, g := range m.CG.Groups() {
		g.Stop()
	}
	res.Breakdown = m.Sched.Breakdown()
	res.Events = m.Eng.Processed()
	for _, t := range m.Sched.Tasks() {
		if !t.Finished() {
			continue
		}
		if t.FinishedAt > res.Makespan {
			res.Makespan = t.FinishedAt
		}
		if res.Responses == nil {
			res.Responses = make([]sim.Time, 0, len(m.Sched.Tasks()))
		}
		res.Responses = append(res.Responses, t.ResponseTime())
	}
	if len(res.Responses) > 0 {
		var sum sim.Time
		for _, r := range res.Responses {
			sum += r
		}
		res.MeanResponse = sum / sim.Time(len(res.Responses))
	}
	return res
}
