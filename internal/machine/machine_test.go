package machine

import (
	"testing"

	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/topology"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil topology must fail")
	}
	bad := &topology.Topology{Name: "bad"}
	if _, err := New(Config{Topo: bad}); err == nil {
		t.Fatal("invalid topology must fail")
	}
}

func TestDefaultsFilledIn(t *testing.T) {
	topo := topology.SmallHost16()
	m := MustNew(Config{Topo: topo})
	if m.Cfg.ComputeTax != 1 || m.Cfg.IOScale != 1 || m.Cfg.NUMASockets != 1 {
		t.Fatalf("defaults not applied: %+v", m.Cfg)
	}
	if m.Cfg.Sched.TargetLatency == 0 || m.Cfg.Cache.DecayTime == 0 {
		t.Fatal("parameter defaults missing")
	}
}

func TestRunCompletesTasks(t *testing.T) {
	m := MustNew(HostDefaults(topology.SmallHost16(), 1))
	m.Spawn(sched.TaskSpec{Name: "a", Program: sched.Sequence(sched.Compute(5 * sim.Millisecond))}, 0)
	m.Spawn(sched.TaskSpec{Name: "b", Program: sched.Sequence(sched.Compute(8 * sim.Millisecond))}, sim.Millisecond)
	res := m.Run(0)
	if res.TimedOut {
		t.Fatal("unexpected timeout")
	}
	if len(res.Responses) != 2 {
		t.Fatalf("responses: %v", res.Responses)
	}
	if res.Makespan < 8*sim.Millisecond {
		t.Fatalf("makespan %v", res.Makespan)
	}
	if res.MeanResponse <= 0 {
		t.Fatal("mean response missing")
	}
	if res.Events == 0 {
		t.Fatal("no events processed?")
	}
}

func TestRunTimeLimit(t *testing.T) {
	m := MustNew(HostDefaults(topology.SmallHost16(), 1))
	m.Spawn(sched.TaskSpec{Name: "slow", Program: sched.Sequence(sched.Compute(10 * sim.Second))}, 0)
	res := m.Run(50 * sim.Millisecond)
	if !res.TimedOut {
		t.Fatal("expected TimedOut")
	}
}

func TestRunDeadlockPanics(t *testing.T) {
	m := MustNew(HostDefaults(topology.SmallHost16(), 1))
	// A task that blocks on Recv with no sender ever.
	m.Spawn(sched.TaskSpec{Name: "stuck", Program: sched.ProgramFunc(func(*sched.Task) sched.Action {
		return sched.Recv()
	})}, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("deadlock must panic with a diagnostic")
		}
	}()
	m.Run(0)
}

func TestNUMASocketOverride(t *testing.T) {
	topo := topology.SmallHost16() // 1 socket
	cfg := HostDefaults(topo, 1)
	cfg.NUMASockets = 4 // pretend guest backed by a 4-socket host
	m := MustNew(cfg)
	m.Spawn(sched.TaskSpec{Name: "m", MemBound: 1,
		Program: sched.Sequence(sched.Compute(100 * sim.Millisecond))}, 0)
	res := m.Run(0)
	if res.Makespan <= 130*sim.Millisecond {
		t.Fatalf("NUMA override not applied: %v", res.Makespan)
	}
}

func TestComputeTaxAppliesByWeight(t *testing.T) {
	run := func(weight float64) sim.Time {
		cfg := HostDefaults(topology.SmallHost16(), 1)
		cfg.ComputeTax = 2
		m := MustNew(cfg)
		m.Spawn(sched.TaskSpec{Name: "t", VMTaxWeight: weight,
			Program: sched.Sequence(sched.Compute(100 * sim.Millisecond))}, 0)
		return m.Run(0).Makespan
	}
	full := run(1)
	none := run(0)
	if full < 195*sim.Millisecond || none > 105*sim.Millisecond {
		t.Fatalf("tax weighting broken: full=%v none=%v", full, none)
	}
}

func TestVirtioExtraCharged(t *testing.T) {
	cfg := HostDefaults(topology.SmallHost16(), 1)
	cfg.VirtioExtra = 100 * sim.Microsecond
	m := MustNew(cfg)
	m.Spawn(sched.TaskSpec{Name: "io", Program: sched.Sequence(
		sched.IO(0, sim.Millisecond), sched.Compute(sim.Millisecond))}, 0)
	res := m.Run(0)
	if res.Breakdown.VirtioTime < 100*sim.Microsecond {
		t.Fatalf("virtio extra not charged: %+v", res.Breakdown)
	}
}

func TestGroupLifecycleThroughMachine(t *testing.T) {
	m := MustNew(HostDefaults(topology.PaperHost(), 1))
	g := m.NewGroup("cn", 2, topology.CPUSet{})
	// 400ms of CPU work against a 200ms-per-100ms-period budget: the first
	// period's burst can deliver at most the 200ms quota, so completion
	// must reach into the second period.
	for i := 0; i < 8; i++ {
		m.Spawn(sched.TaskSpec{Name: "w", Group: g,
			Program: sched.Sequence(sched.Compute(50 * sim.Millisecond))}, 0)
	}
	res := m.Run(0)
	if res.TimedOut {
		t.Fatal("timed out")
	}
	if res.Makespan < 100*sim.Millisecond {
		t.Fatalf("quota not enforced: 400ms of work at 2 cores finished in %v", res.Makespan)
	}
}
