// Package sim provides a minimal deterministic discrete-event simulation
// kernel: a virtual clock, a cancellable event queue, and a reproducible
// random number generator. All higher-level models (scheduler, cgroups,
// hypervisor) are built on this package.
//
// # Concurrency model
//
// An Engine (and the RNG, machine and scheduler state built on top of it)
// is goroutine-confined: one simulation run belongs to exactly one
// goroutine, with no internal locking. Determinism comes from the strict
// (time, sequence) event order, which any cross-goroutine interleaving
// would destroy, so sharing an Engine is never meaningful — parallelism
// belongs one level up, where independent runs (each with its own Engine
// and its own Substream-derived RNG seed) execute on separate goroutines.
// The executor entry points (Step, Run, RunUntil) assert this confinement
// and panic on concurrent entry; the scheduling calls (At, After, Cancel)
// are intentionally unguarded because event callbacks invoke them
// re-entrantly from inside Step — the race detector covers those.
package sim

import (
	"container/heap"
	"fmt"
	"sync/atomic"
)

// Time is simulated time in nanoseconds since the start of the run.
type Time int64

// Common durations, mirroring time.Duration-style constants but for sim.Time.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds converts a sim time to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis converts a sim time to floating-point milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// FromSeconds converts floating-point seconds to sim time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", t.Millis())
	case t >= Microsecond:
		return fmt.Sprintf("%.3fµs", float64(t)/float64(Microsecond))
	}
	return fmt.Sprintf("%dns", int64(t))
}

// Event is a scheduled callback. Events are ordered by time; ties are broken
// by insertion sequence so runs are fully deterministic.
type Event struct {
	at       Time
	seq      uint64
	fn       func()
	index    int // heap index; -1 when not queued
	canceled bool
}

// At reports the time the event is scheduled for.
func (e *Event) At() Time { return e.at }

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e.canceled }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulation executor. The zero value is not
// usable; call NewEngine. An Engine is goroutine-confined (see the package
// comment); its executor entry points panic when entered concurrently or
// re-entrantly from an event callback.
type Engine struct {
	now       Time
	seq       uint64
	queue     eventHeap
	processed uint64
	// running guards the executor entry points against concurrent use from
	// a second goroutine (or re-entrant Step/Run from inside a callback).
	// It is a best-effort assertion, not a synchronization mechanism.
	running atomic.Bool
}

// enter asserts single-goroutine use of the executor; leave releases it.
func (e *Engine) enter(op string) {
	if !e.running.CompareAndSwap(false, true) {
		panic("sim: concurrent " + op + " on one Engine — engines are goroutine-confined, give each concurrent run its own Engine")
	}
}

func (e *Engine) leave() { e.running.Store(false) }

// NewEngine returns an empty engine with the clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of events currently queued (including canceled
// events that have not yet been discarded).
func (e *Engine) Pending() int { return len(e.queue) }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it is always a model bug.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := &Event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Time, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// Cancel marks an event so it will not fire. Canceling an already-fired or
// already-canceled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.canceled {
		return
	}
	ev.canceled = true
	if ev.index >= 0 {
		heap.Remove(&e.queue, ev.index)
		ev.index = -1
	}
}

// Step executes the next event. It returns false when the queue is empty.
func (e *Engine) Step() bool {
	e.enter("Step")
	defer e.leave()
	return e.step()
}

func (e *Engine) step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.canceled {
			continue
		}
		if ev.at < e.now {
			panic("sim: event queue went backwards")
		}
		e.now = ev.at
		e.processed++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty or maxEvents have been
// processed (0 means no limit). It returns the number of events processed by
// this call.
func (e *Engine) Run(maxEvents uint64) uint64 {
	e.enter("Run")
	defer e.leave()
	var n uint64
	for maxEvents == 0 || n < maxEvents {
		if !e.step() {
			break
		}
		n++
	}
	return n
}

// RunUntil executes events with timestamps <= deadline. Events scheduled
// later remain queued. The clock is advanced to deadline if the queue empties
// earlier than the deadline.
func (e *Engine) RunUntil(deadline Time) {
	e.enter("RunUntil")
	defer e.leave()
	for len(e.queue) > 0 {
		// Peek.
		next := e.queue[0]
		if next.canceled {
			heap.Pop(&e.queue)
			continue
		}
		if next.at > deadline {
			break
		}
		e.step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}
