// Package sim provides a minimal deterministic discrete-event simulation
// kernel: a virtual clock, a cancellable event queue, and a reproducible
// random number generator. All higher-level models (scheduler, cgroups,
// hypervisor) are built on this package.
//
// # Concurrency model
//
// An Engine (and the RNG, machine and scheduler state built on top of it)
// is goroutine-confined: one simulation run belongs to exactly one
// goroutine, with no internal locking. Determinism comes from the strict
// (time, sequence) event order, which any cross-goroutine interleaving
// would destroy, so sharing an Engine is never meaningful — parallelism
// belongs one level up, where independent runs (each with its own Engine
// and its own Substream-derived RNG seed) execute on separate goroutines.
// The executor entry points (Step, Run, RunUntil) assert this confinement
// and panic on concurrent entry; the scheduling calls (At, After, Cancel)
// are intentionally unguarded because event callbacks invoke them
// re-entrantly from inside Step — the race detector covers those.
//
// # Allocation model
//
// The event queue is a pooled, index-based 4-ary min-heap specialized to
// (time, sequence) keys: event state lives in a flat slot arena that is
// recycled through a free list, so scheduling an event allocates nothing
// once the arena has warmed up. The only per-event allocation left is the
// caller's closure, and Timer removes even that for the recurring patterns
// (slice timers, IO completions): bind the callback once, Reset forever.
// Slots are identified by EventID handles carrying a generation counter,
// which makes Cancel on an already-fired or already-canceled event a safe
// no-op without keeping the dead slot alive.
package sim

import (
	"fmt"
)

// Time is simulated time in nanoseconds since the start of the run.
type Time int64

// Common durations, mirroring time.Duration-style constants but for sim.Time.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds converts a sim time to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis converts a sim time to floating-point milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// FromSeconds converts floating-point seconds to sim time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", t.Millis())
	case t >= Microsecond:
		return fmt.Sprintf("%.3fµs", float64(t)/float64(Microsecond))
	}
	return fmt.Sprintf("%dns", int64(t))
}

// EventID is a handle to a scheduled event. The zero EventID refers to no
// event; Cancel of a zero, fired, or already-canceled handle is a no-op.
// Handles encode a slot index plus a generation counter, so they stay safe
// to hold after the event fires and its slot is recycled.
type EventID uint64

// None is the zero EventID: a handle to no event.
const None EventID = 0

func packID(idx, gen uint32) EventID { return EventID(uint64(gen)<<32 | uint64(idx)) }

// eventSlot is pooled event state. Slots are recycled through the free
// list; gen increments at every release so stale EventIDs never match.
// An event carries either fn (a plain closure) or argFn+arg (a static
// callback plus its receiver, the allocation-free form used by AtArg).
type eventSlot struct {
	at    Time
	seq   uint64
	fn    func()
	argFn func(any)
	arg   any
	gen   uint32
	pos   int32 // index into Engine.order; -1 when not queued
}

// Engine is a discrete-event simulation executor. The zero value is not
// usable; call NewEngine. An Engine is goroutine-confined (see the package
// comment); its executor entry points panic when entered concurrently or
// re-entrantly from an event callback.
type Engine struct {
	now       Time
	seq       uint64
	slots     []eventSlot
	free      []uint32
	order     []heapEntry // 4-ary min-heap keyed by (at, seq)
	processed uint64
	// running guards the executor entry points against re-entrant Step/Run
	// from inside a callback and, best-effort, against concurrent use from
	// a second goroutine. It is a plain bool on purpose: re-entrancy (the
	// same goroutine) needs no atomicity, and cross-goroutine misuse is a
	// data race by definition — the race detector reports it regardless,
	// while the hot Step path stays free of atomic ops.
	running bool
	// idxSeed and orderSeed are the embedded first backings of free and
	// order, so a fresh engine's queue slices cost no separate allocation;
	// either slice that outgrows its seed falls back to append growth.
	idxSeed   [64]uint32
	orderSeed [64]heapEntry
}

// heapEntry is one element of the event heap. It carries a copy of the
// slot's firing time next to the slot index, so the common heap comparison
// (distinct times) touches only the contiguous order array — no
// pointer-chase into the slot arena on the hottest loops (siftUp/siftDown
// run on every schedule, cancel and pop). Only the tie-break on equal
// times reads the slots' seq fields. The entry stays 16 bytes so sift
// swaps move little; the slot remains the source of truth, and the time
// copy is written once at push and never mutated while queued.
type heapEntry struct {
	at  Time
	idx uint32
}

// enter asserts single-goroutine use of the executor; leave releases it.
func (e *Engine) enter(op string) {
	if e.running {
		panic("sim: concurrent " + op + " on one Engine — engines are goroutine-confined, give each concurrent run its own Engine")
	}
	e.running = true
}

func (e *Engine) leave() { e.running = false }

// NewEngine returns an empty engine with the clock at zero.
func NewEngine() *Engine {
	// Seed the slot arena, free list and heap with one round of capacity —
	// the index slices carve the embedded idxSeed array — instead of ~15
	// append-doubling steps as the first few dozen events trickle in
	// (machines are built per trial, so construction cost is a steady-state
	// cost for sweeps).
	const seedCap = 64
	e := &Engine{slots: make([]eventSlot, 0, seedCap)}
	e.free = e.idxSeed[0:0:seedCap]
	e.order = e.orderSeed[0:0:seedCap]
	return e
}

// Reset returns the engine to its just-constructed state — clock at zero,
// no pending events, sequence and processed counters cleared — while
// keeping every arena the previous run grew: the slot pool, free list and
// heap order array retain their capacity, so a reused engine schedules its
// first few thousand events without a single allocation. Every slot's
// generation is bumped, which atomically invalidates all outstanding
// EventIDs: a Timer or raw handle held from before the Reset becomes a
// stale id whose Cancel/Pending/EventTime are safe no-ops, exactly as if
// its event had already fired. Determinism is preserved because event
// ordering is strictly (time, sequence) and both restart from zero.
func (e *Engine) Reset() {
	e.enter("Reset")
	defer e.leave()
	e.now = 0
	e.seq = 0
	e.processed = 0
	e.order = e.order[:0]
	e.free = e.free[:0]
	// Refill the free list high-to-low so allocation order after a Reset
	// matches a fresh engine's append order (slot 0 first).
	for i := len(e.slots) - 1; i >= 0; i-- {
		s := &e.slots[i]
		s.fn = nil
		s.argFn = nil
		s.arg = nil
		s.pos = -1
		s.gen++
		e.free = append(e.free, uint32(i))
	}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of events currently queued.
func (e *Engine) Pending() int { return len(e.order) }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// ---- slot pool ---------------------------------------------------------

func (e *Engine) allocSlot() uint32 {
	if n := len(e.free); n > 0 {
		idx := e.free[n-1]
		e.free = e.free[:n-1]
		return idx
	}
	e.slots = append(e.slots, eventSlot{gen: 1})
	return uint32(len(e.slots) - 1)
}

// releaseSlot retires a fired or canceled slot: the generation bump
// invalidates every outstanding handle before the free list reuses it.
func (e *Engine) releaseSlot(idx uint32) {
	s := &e.slots[idx]
	s.fn = nil
	s.argFn = nil
	s.arg = nil
	s.pos = -1
	s.gen++
	e.free = append(e.free, idx)
}

// slotOf resolves a live handle, or nil if the event fired, was canceled,
// or never existed.
func (e *Engine) slotOf(id EventID) *eventSlot {
	idx := uint32(id)
	if id == None || int(idx) >= len(e.slots) {
		return nil
	}
	s := &e.slots[idx]
	if s.gen != uint32(id>>32) || s.pos < 0 {
		return nil
	}
	return s
}

// ---- 4-ary heap --------------------------------------------------------
//
// Keys are (at, seq); seq is the global schedule counter, so ties resolve
// in insertion order and runs are fully deterministic. A 4-ary layout
// halves the tree depth of a binary heap and keeps the children of one
// node on a single cache line of indices.
//
// sched/runqueue.go carries a sibling of this position-tracked 4-ary heap
// specialized to *Task. The duplication is deliberate — a shared helper
// would need non-inlinable less/position callbacks on the hottest loops —
// but it means heap-logic fixes must be mirrored there.

func (e *Engine) entryLess(a, b heapEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return e.slots[a.idx].seq < e.slots[b.idx].seq
}

func (e *Engine) heapPush(idx uint32, at Time) {
	e.slots[idx].pos = int32(len(e.order))
	e.order = append(e.order, heapEntry{at: at, idx: idx})
	e.siftUp(len(e.order) - 1)
}

func (e *Engine) siftUp(i int) {
	ent := e.order[i]
	for i > 0 {
		parent := (i - 1) / 4
		p := e.order[parent]
		if !e.entryLess(ent, p) {
			break
		}
		e.order[i] = p
		e.slots[p.idx].pos = int32(i)
		i = parent
	}
	e.order[i] = ent
	e.slots[ent.idx].pos = int32(i)
}

func (e *Engine) siftDown(i int) {
	n := len(e.order)
	ent := e.order[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if e.entryLess(e.order[c], e.order[best]) {
				best = c
			}
		}
		b := e.order[best]
		if !e.entryLess(b, ent) {
			break
		}
		e.order[i] = b
		e.slots[b.idx].pos = int32(i)
		i = best
	}
	e.order[i] = ent
	e.slots[ent.idx].pos = int32(i)
}

// heapRemove unlinks the element at heap position i.
func (e *Engine) heapRemove(i int) {
	n := len(e.order) - 1
	moved := e.order[n]
	e.order = e.order[:n]
	if i == n {
		return
	}
	e.order[i] = moved
	e.slots[moved.idx].pos = int32(i)
	e.siftDown(i)
	e.siftUp(i)
}

// ---- scheduling --------------------------------------------------------

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it is always a model bug.
func (e *Engine) At(t Time, fn func()) EventID {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	idx := e.allocSlot()
	s := &e.slots[idx]
	s.at = t
	s.seq = e.seq
	s.fn = fn
	e.seq++
	e.heapPush(idx, s.at)
	return packID(idx, s.gen)
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Time, fn func()) EventID {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// AtArg schedules fn(arg) to run at absolute time t. It is the
// allocation-free form of At for hot paths: with a package-level fn (a
// static func value) and a pointer-shaped arg, scheduling allocates
// nothing — no closure is built.
func (e *Engine) AtArg(t Time, fn func(any), arg any) EventID {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	idx := e.allocSlot()
	s := &e.slots[idx]
	s.at = t
	s.seq = e.seq
	s.argFn = fn
	s.arg = arg
	e.seq++
	e.heapPush(idx, s.at)
	return packID(idx, s.gen)
}

// AtBatch schedules fn(arg) at absolute time t for every arg, as if by
// consecutive AtArg calls (consecutive sequence numbers, so relative firing
// order matches the args order exactly), but defers the heap restore to one
// pass: slots are appended to the heap array first, then the structure is
// fixed either by per-item sift-ups or — when the batch dominates the queue
// — a single Floyd build-heap. Event semantics and pop order are identical
// to the sequential calls; only the sift work is amortized. This is the
// batch path for timer/arrival storms (spawn waves, simultaneous period
// ticks).
func (e *Engine) AtBatch(t Time, fn func(any), args ...any) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	if len(args) == 0 {
		return
	}
	base := len(e.order)
	for _, arg := range args {
		idx := e.allocSlot()
		s := &e.slots[idx]
		s.at = t
		s.seq = e.seq
		s.argFn = fn
		s.arg = arg
		s.pos = int32(len(e.order))
		e.order = append(e.order, heapEntry{at: t, idx: idx})
		e.seq++
	}
	// Restore the heap invariant once. When the batch is a large fraction
	// of the queue, Floyd's bottom-up heapify is O(n) total; otherwise
	// sifting each appended slot up (in append order, so earlier sifts
	// never disturb later append positions) costs O(k log n).
	if n := len(e.order); len(args) >= n/2 {
		for i := (n - 2) / 4; i >= 0; i-- {
			e.siftDown(i)
		}
	} else {
		for i := base; i < len(e.order); i++ {
			e.siftUp(i)
		}
	}
}

// Cancel removes a scheduled event so it will not fire. Canceling a zero
// handle, an already-fired event or an already-canceled event is a no-op.
func (e *Engine) Cancel(id EventID) {
	s := e.slotOf(id)
	if s == nil {
		return
	}
	pos := int(s.pos)
	e.heapRemove(pos)
	e.releaseSlot(uint32(id))
}

// EventTime reports when a scheduled event will fire; ok is false when the
// handle no longer refers to a queued event.
func (e *Engine) EventTime(id EventID) (at Time, ok bool) {
	s := e.slotOf(id)
	if s == nil {
		return 0, false
	}
	return s.at, true
}

// ---- timers ------------------------------------------------------------

// Timer is a reusable scheduled callback bound to one Engine. It exists so
// recurring reschedule patterns pay zero allocations per event: the
// callback is bound once (at NewTimer, Init or InitArg), and Reset/ResetAt
// recycle a pooled event slot. A Timer is single-shot per arm (fire once,
// then Pending reports false) and, like its Engine, goroutine-confined.
//
// The zero Timer is unbound: embed it in a long-lived struct and bind it
// with Init or InitArg on first use — that removes even the Timer's own
// heap allocation, and InitArg's static-callback-plus-receiver form removes
// the closure too.
type Timer struct {
	eng   *Engine
	fn    func()
	argFn func(any)
	arg   any
	id    EventID
}

// NewTimer returns an unarmed timer that will run fn each time it fires.
func (e *Engine) NewTimer(fn func()) *Timer {
	if fn == nil {
		panic("sim: NewTimer with nil callback")
	}
	return &Timer{eng: e, fn: fn}
}

// Init binds an embedded (zero-value) timer to an engine and callback.
// Re-initializing a bound timer panics: it would orphan a pending arm.
func (tm *Timer) Init(e *Engine, fn func()) {
	if tm.eng != nil {
		panic("sim: Timer.Init on an already-bound timer")
	}
	if fn == nil {
		panic("sim: Timer.Init with nil callback")
	}
	tm.eng, tm.fn = e, fn
}

// InitArg binds an embedded timer to a static callback and its receiver
// argument: the allocation-free form (no closure is built, ever).
func (tm *Timer) InitArg(e *Engine, fn func(any), arg any) {
	if tm.eng != nil {
		panic("sim: Timer.InitArg on an already-bound timer")
	}
	if fn == nil {
		panic("sim: Timer.InitArg with nil callback")
	}
	tm.eng, tm.argFn, tm.arg = e, fn, arg
}

// Bound reports whether the timer has been bound to an engine (NewTimer,
// Init or InitArg); embedded timers use it for lazy first-use binding.
func (tm *Timer) Bound() bool { return tm.eng != nil }

// Reset arms the timer to fire d after the current time, replacing any
// pending arm.
func (tm *Timer) Reset(d Time) {
	if d < 0 {
		d = 0
	}
	tm.ResetAt(tm.eng.now + d)
}

// ResetAt arms the timer to fire at absolute time t, replacing any pending
// arm.
func (tm *Timer) ResetAt(t Time) {
	tm.eng.Cancel(tm.id)
	if tm.argFn != nil {
		tm.id = tm.eng.AtArg(t, tm.argFn, tm.arg)
	} else {
		tm.id = tm.eng.At(t, tm.fn)
	}
}

// Stop disarms the timer. Stopping an unarmed or fired timer is a no-op.
func (tm *Timer) Stop() {
	tm.eng.Cancel(tm.id)
	tm.id = None
}

// Pending reports whether the timer is armed and has not fired.
func (tm *Timer) Pending() bool { return tm.eng.slotOf(tm.id) != nil }

// When reports the pending fire time; ok is false when the timer is not
// armed.
func (tm *Timer) When() (at Time, ok bool) { return tm.eng.EventTime(tm.id) }

// ---- execution ---------------------------------------------------------

// Step executes the next event. It returns false when the queue is empty.
func (e *Engine) Step() bool {
	e.enter("Step")
	defer e.leave()
	return e.step()
}

func (e *Engine) step() bool {
	if len(e.order) == 0 {
		return false
	}
	top := e.order[0]
	idx := top.idx
	s := &e.slots[idx]
	if top.at < e.now {
		panic("sim: event queue went backwards")
	}
	e.now = top.at
	fn, argFn, arg := s.fn, s.argFn, s.arg
	// Retire the slot before running the callback so it can immediately
	// recycle the slot for whatever it schedules next.
	n := len(e.order) - 1
	moved := e.order[n]
	e.order = e.order[:n]
	if n > 0 {
		e.order[0] = moved
		e.slots[moved.idx].pos = 0
		e.siftDown(0)
	}
	e.releaseSlot(idx)
	e.processed++
	if argFn != nil {
		argFn(arg)
	} else {
		fn()
	}
	return true
}

// Run executes events until the queue is empty or maxEvents have been
// processed (0 means no limit). It returns the number of events processed by
// this call.
func (e *Engine) Run(maxEvents uint64) uint64 {
	e.enter("Run")
	defer e.leave()
	var n uint64
	for maxEvents == 0 || n < maxEvents {
		if !e.step() {
			break
		}
		n++
	}
	return n
}

// RunWhile executes events for as long as cond returns true, checking cond
// before every event. It returns false when the queue emptied while cond
// still held, true when cond ended the run. Compared to a caller-side
// per-event Step loop it pays the goroutine-confinement assertion once per
// run instead of once per event.
func (e *Engine) RunWhile(cond func() bool) bool {
	e.enter("RunWhile")
	defer e.leave()
	for cond() {
		if !e.step() {
			return false
		}
	}
	return true
}

// RunUntil executes events with timestamps <= deadline. Events scheduled
// later remain queued. The clock is advanced to deadline if the queue empties
// earlier than the deadline.
func (e *Engine) RunUntil(deadline Time) {
	e.enter("RunUntil")
	defer e.leave()
	for len(e.order) > 0 && e.order[0].at <= deadline {
		e.step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}
