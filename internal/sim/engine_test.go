package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineRunsEventsInTimeOrder(t *testing.T) {
	eng := NewEngine()
	var got []int
	eng.At(30*Millisecond, func() { got = append(got, 3) })
	eng.At(10*Millisecond, func() { got = append(got, 1) })
	eng.At(20*Millisecond, func() { got = append(got, 2) })
	eng.Run(0)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events out of order: %v", got)
	}
	if eng.Now() != 30*Millisecond {
		t.Fatalf("clock = %v, want 30ms", eng.Now())
	}
}

func TestEngineTieBreaksByInsertion(t *testing.T) {
	eng := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		eng.At(Millisecond, func() { got = append(got, i) })
	}
	eng.Run(0)
	for i, v := range got {
		if v != i {
			t.Fatalf("tie order broken at %d: %v", i, got)
		}
	}
}

func TestEngineSchedulingInPastPanics(t *testing.T) {
	eng := NewEngine()
	eng.At(10*Millisecond, func() {})
	eng.Run(0)
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past should panic")
		}
	}()
	eng.At(5*Millisecond, func() {})
}

func TestEngineCancel(t *testing.T) {
	eng := NewEngine()
	fired := false
	ev := eng.At(Millisecond, func() { fired = true })
	if at, ok := eng.EventTime(ev); !ok || at != Millisecond {
		t.Fatalf("EventTime = %v,%v, want 1ms,true", at, ok)
	}
	eng.Cancel(ev)
	eng.Run(0)
	if fired {
		t.Fatal("canceled event fired")
	}
	if _, ok := eng.EventTime(ev); ok {
		t.Fatal("canceled event still reports a fire time")
	}
	eng.Cancel(ev) // double cancel is a no-op
	eng.Cancel(None)
}

func TestEngineStaleHandleAfterFire(t *testing.T) {
	eng := NewEngine()
	ev := eng.At(Millisecond, func() {})
	eng.Run(0)
	if _, ok := eng.EventTime(ev); ok {
		t.Fatal("fired event still reports a fire time")
	}
	// The slot is recycled; the stale handle must not cancel its new tenant.
	fired := false
	ev2 := eng.At(2*Millisecond, func() { fired = true })
	eng.Cancel(ev)
	if _, ok := eng.EventTime(ev2); !ok {
		t.Fatal("stale Cancel hit a recycled slot")
	}
	eng.Run(0)
	if !fired {
		t.Fatal("recycled event lost")
	}
}

func TestEngineCancelMiddleOfQueue(t *testing.T) {
	eng := NewEngine()
	var got []int
	eng.At(1*Millisecond, func() { got = append(got, 1) })
	ev := eng.At(2*Millisecond, func() { got = append(got, 2) })
	eng.At(3*Millisecond, func() { got = append(got, 3) })
	eng.Cancel(ev)
	eng.Run(0)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("got %v, want [1 3]", got)
	}
}

func TestEngineRunUntil(t *testing.T) {
	eng := NewEngine()
	var got []int
	eng.At(1*Millisecond, func() { got = append(got, 1) })
	eng.At(5*Millisecond, func() { got = append(got, 5) })
	eng.RunUntil(3 * Millisecond)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("got %v, want [1]", got)
	}
	if eng.Now() != 3*Millisecond {
		t.Fatalf("clock %v, want 3ms", eng.Now())
	}
	eng.Run(0)
	if len(got) != 2 {
		t.Fatalf("deferred event lost: %v", got)
	}
}

func TestEngineRunBounded(t *testing.T) {
	eng := NewEngine()
	count := 0
	var reschedule func()
	reschedule = func() {
		count++
		eng.After(Millisecond, reschedule)
	}
	eng.After(Millisecond, reschedule)
	n := eng.Run(50)
	if n != 50 || count != 50 {
		t.Fatalf("Run(50) processed %d events, callback ran %d times", n, count)
	}
}

func TestEngineEventsDuringEvent(t *testing.T) {
	eng := NewEngine()
	var got []string
	eng.At(Millisecond, func() {
		got = append(got, "outer")
		eng.After(Millisecond, func() { got = append(got, "inner") })
	})
	eng.Run(0)
	if len(got) != 2 || got[1] != "inner" {
		t.Fatalf("nested scheduling failed: %v", got)
	}
}

func TestEngineAfterNegativeClamps(t *testing.T) {
	eng := NewEngine()
	fired := false
	eng.After(-5, func() { fired = true })
	eng.Run(0)
	if !fired {
		t.Fatal("negative After should clamp to now and fire")
	}
}

// Property: for any set of event times, execution order is sorted.
func TestEngineOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		eng := NewEngine()
		var fired []Time
		for _, d := range delays {
			at := Time(d) * Microsecond
			eng.At(at, func() { fired = append(fired, at) })
		}
		eng.Run(0)
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{2 * Second, "2.000s"},
		{3 * Millisecond, "3.000ms"},
		{7 * Microsecond, "7.000µs"},
		{42, "42ns"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestTimeConversions(t *testing.T) {
	if FromSeconds(1.5) != 1500*Millisecond {
		t.Fatal("FromSeconds broken")
	}
	if (2 * Second).Seconds() != 2.0 {
		t.Fatal("Seconds broken")
	}
	if (3 * Millisecond).Millis() != 3.0 {
		t.Fatal("Millis broken")
	}
}
