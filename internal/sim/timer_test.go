package sim

import "testing"

func TestTimerFiresAndRearms(t *testing.T) {
	eng := NewEngine()
	var fired []Time
	var tm *Timer
	tm = eng.NewTimer(func() {
		fired = append(fired, eng.Now())
		if len(fired) < 3 {
			tm.Reset(Millisecond)
		}
	})
	if tm.Pending() {
		t.Fatal("fresh timer pending")
	}
	tm.Reset(Millisecond)
	if at, ok := tm.When(); !ok || at != Millisecond {
		t.Fatalf("When = %v,%v", at, ok)
	}
	eng.Run(0)
	if len(fired) != 3 || fired[0] != Millisecond || fired[2] != 3*Millisecond {
		t.Fatalf("fired = %v", fired)
	}
	if tm.Pending() {
		t.Fatal("exhausted timer pending")
	}
}

func TestTimerResetReplacesPendingArm(t *testing.T) {
	eng := NewEngine()
	count := 0
	tm := eng.NewTimer(func() { count++ })
	tm.Reset(Millisecond)
	tm.Reset(5 * Millisecond) // replaces, never duplicates
	eng.RunUntil(2 * Millisecond)
	if count != 0 {
		t.Fatal("replaced arm fired")
	}
	eng.Run(0)
	if count != 1 {
		t.Fatalf("fired %d times, want 1", count)
	}
}

func TestTimerStop(t *testing.T) {
	eng := NewEngine()
	count := 0
	tm := eng.NewTimer(func() { count++ })
	tm.Reset(Millisecond)
	tm.Stop()
	tm.Stop() // double stop is a no-op
	eng.Run(0)
	if count != 0 {
		t.Fatal("stopped timer fired")
	}
	tm.Reset(Millisecond)
	eng.Run(0)
	if count != 1 {
		t.Fatal("timer unusable after Stop")
	}
}

func TestTimerOrderMatchesAt(t *testing.T) {
	// A Timer's arm consumes the same (time, seq) key an At call would, so
	// mixing timers and one-shot events keeps the deterministic tie order.
	eng := NewEngine()
	var got []int
	tm := eng.NewTimer(func() { got = append(got, 1) })
	tm.Reset(Millisecond)
	eng.At(Millisecond, func() { got = append(got, 2) })
	eng.Run(0)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("tie order = %v, want [1 2]", got)
	}
}

// ---- allocation guards (the kernel's zero-alloc contract) ---------------

// nopFn lives outside the measured closures so the measured calls carry a
// preexisting func value, like the scheduler's pooled callbacks do.
var nopFn = func() {}

func TestAllocsPerEventAfter(t *testing.T) {
	eng := NewEngine()
	// Warm the slot arena and heap capacity.
	for i := 0; i < 64; i++ {
		eng.After(Microsecond, nopFn)
	}
	eng.Run(0)
	avg := testing.AllocsPerRun(1000, func() {
		eng.After(Microsecond, nopFn)
		eng.Step()
	})
	if avg > 0 {
		t.Fatalf("Engine.After allocates %.2f allocs/event in steady state, want 0", avg)
	}
}

func TestAllocsPerEventAt(t *testing.T) {
	eng := NewEngine()
	for i := 0; i < 64; i++ {
		eng.After(Microsecond, nopFn)
	}
	eng.Run(0)
	avg := testing.AllocsPerRun(1000, func() {
		eng.At(eng.Now()+Microsecond, nopFn)
		eng.Step()
	})
	if avg > 0 {
		t.Fatalf("Engine.At allocates %.2f allocs/event in steady state, want 0", avg)
	}
}

func TestAllocsPerEventTimerReset(t *testing.T) {
	eng := NewEngine()
	tm := eng.NewTimer(nopFn)
	for i := 0; i < 64; i++ {
		tm.Reset(Microsecond)
		eng.Step()
	}
	avg := testing.AllocsPerRun(1000, func() {
		tm.Reset(Microsecond)
		eng.Step()
	})
	if avg > 0 {
		t.Fatalf("Timer.Reset allocates %.2f allocs/event in steady state, want 0", avg)
	}
}

func TestSlotPoolReuse(t *testing.T) {
	eng := NewEngine()
	const rounds = 10_000
	for i := 0; i < rounds; i++ {
		eng.After(Microsecond, nopFn)
		eng.Step()
	}
	// Sequential schedule/fire must keep the arena at O(1) slots, not grow
	// it per event.
	if n := len(eng.slots); n > 8 {
		t.Fatalf("slot arena grew to %d slots for sequential events, want O(1)", n)
	}
	if eng.Processed() != rounds {
		t.Fatalf("processed %d, want %d", eng.Processed(), rounds)
	}
}
