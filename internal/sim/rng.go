package sim

import "math"

// RNG is a small, fast, deterministic random number generator
// (splitmix64-seeded xorshift64*). Every simulation run owns its own RNG so
// repeated runs with the same seed replay event-for-event.
//
// An RNG is goroutine-confined, like the Engine it usually lives next to:
// it is plain mutable state with no locking. Concurrent trials must not
// share one — derive an independent substream seed per trial with Substream
// and give each trial its own NewRNG.
type RNG struct {
	state uint64
}

// Substream deterministically derives an independent seed from a base seed
// and a path of integer coordinates (series, cell, repetition, ...). It is a
// pure function of its inputs, so any number of goroutines may derive
// substream seeds concurrently and hand each trial a private NewRNG — the
// safe way to parallelize a seeded experiment grid. Nearby coordinates give
// unrelated streams (each step folds a splitmix-style odd constant into an
// avalanching mix).
func Substream(base uint64, parts ...uint64) uint64 {
	h := base*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	for _, p := range parts {
		h ^= p + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
	}
	return h
}

// NewRNG returns a generator seeded from seed via splitmix64 so that nearby
// seeds produce unrelated streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Reseed(seed)
	return r
}

// Reseed re-seeds the generator in place, leaving it in exactly the state
// NewRNG(seed) would return. It is the reuse path for pooled simulation
// stacks: a redeployed machine rewinds its random stream to a fresh trial's
// seed without allocating a new generator.
func (r *RNG) Reseed(seed uint64) {
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 0x9e3779b97f4a7c15
	}
	r.state = z
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Float64 returns a uniform value in [0,1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0,n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// ExpDuration returns an exponentially distributed duration with the given
// mean, for Poisson event processes.
func (r *RNG) ExpDuration(mean Time) Time {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	d := -float64(mean) * math.Log(u)
	if d > float64(math.MaxInt64/2) {
		d = float64(math.MaxInt64 / 2)
	}
	return Time(d)
}

// Normal returns a normally distributed value (Box–Muller) with the given
// mean and standard deviation.
func (r *RNG) Normal(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// Jitter returns d scaled by a uniform factor in [1-f, 1+f]; used to add
// bounded run-to-run noise to service times.
func (r *RNG) Jitter(d Time, f float64) Time {
	if f <= 0 {
		return d
	}
	scale := 1 + f*(2*r.Float64()-1)
	return Time(float64(d) * scale)
}

// Perm returns a random permutation of [0,n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}
