package sim

import (
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give identical streams")
		}
	}
}

func TestRNGSeedSeparation(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("adjacent seeds produced %d/100 equal values", same)
	}
}

func TestRNGZeroSeedWorks(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a stuck stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(4)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) only produced %d distinct values", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestExpDurationMean(t *testing.T) {
	r := NewRNG(5)
	const mean = 10 * Millisecond
	var sum Time
	const n = 20000
	for i := 0; i < n; i++ {
		d := r.ExpDuration(mean)
		if d < 0 {
			t.Fatalf("negative duration %v", d)
		}
		sum += d
	}
	got := float64(sum) / n / float64(mean)
	if got < 0.95 || got > 1.05 {
		t.Fatalf("exponential mean off by %v×", got)
	}
}

func TestNormalMoments(t *testing.T) {
	r := NewRNG(6)
	var sum, sq float64
	const n = 20000
	for i := 0; i < n; i++ {
		v := r.Normal(5, 2)
		sum += v
		sq += v * v
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if mean < 4.9 || mean > 5.1 {
		t.Fatalf("normal mean %v, want ≈5", mean)
	}
	if variance < 3.6 || variance > 4.4 {
		t.Fatalf("normal variance %v, want ≈4", variance)
	}
}

func TestJitterBounds(t *testing.T) {
	r := NewRNG(8)
	const base = 100 * Millisecond
	for i := 0; i < 1000; i++ {
		v := r.Jitter(base, 0.1)
		if v < 90*Millisecond || v > 110*Millisecond {
			t.Fatalf("jitter out of ±10%%: %v", v)
		}
	}
	if r.Jitter(base, 0) != base {
		t.Fatal("zero jitter must be identity")
	}
}

// Property: Perm returns a permutation of [0,n).
func TestPermProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := NewRNG(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
