package sim

import (
	"strings"
	"testing"
)

func TestSubstreamIsPureAndDecorrelated(t *testing.T) {
	a := Substream(42, 1, 2, 3)
	b := Substream(42, 1, 2, 3)
	if a != b {
		t.Fatal("Substream must be a pure function of its inputs")
	}
	// Distinct coordinate paths must give distinct streams (the grid of an
	// experiment run maps (series, cell, rep) triples through this).
	seen := map[uint64][3]uint64{}
	for si := uint64(0); si < 8; si++ {
		for ci := uint64(0); ci < 8; ci++ {
			for rep := uint64(0); rep < 8; rep++ {
				s := Substream(42, si, ci, rep)
				if prev, dup := seen[s]; dup {
					t.Fatalf("seed collision: (%d,%d,%d) and %v", si, ci, rep, prev)
				}
				seen[s] = [3]uint64{si, ci, rep}
			}
		}
	}
	if Substream(42, 1) == Substream(43, 1) {
		t.Fatal("different base seeds must give different substreams")
	}
	if Substream(42) == Substream(42, 0) {
		t.Fatal("a coordinate must change the stream even when it is zero-valued")
	}
}

func TestSubstreamsAreIndependentRNGs(t *testing.T) {
	// Adjacent substreams must not produce correlated draws.
	r1 := NewRNG(Substream(7, 0))
	r2 := NewRNG(Substream(7, 1))
	same := 0
	for i := 0; i < 64; i++ {
		if r1.Uint64() == r2.Uint64() {
			same++
		}
	}
	if same != 0 {
		t.Fatalf("adjacent substreams collided on %d/64 draws", same)
	}
}

func TestEngineRejectsReentrantRun(t *testing.T) {
	// An event callback that re-enters the executor is the deterministic
	// stand-in for two goroutines sharing one engine: both trip the same
	// confinement guard.
	e := NewEngine()
	e.After(Millisecond, func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Error("re-entrant Run must panic")
				return
			}
			if msg, ok := r.(string); !ok || !strings.Contains(msg, "goroutine-confined") {
				t.Errorf("unexpected panic: %v", r)
			}
		}()
		e.Run(0)
	})
	e.Run(0)
}

func TestEngineGuardReleasesAfterRun(t *testing.T) {
	e := NewEngine()
	e.After(Millisecond, func() {})
	e.Run(0)
	// The guard must be released: subsequent runs on the owning goroutine
	// are the normal mode of use.
	e.After(Millisecond, func() {})
	if !e.Step() {
		t.Fatal("Step after Run must still execute events")
	}
	e.RunUntil(Second)
	if e.Now() != Second {
		t.Fatalf("clock at %v, want %v", e.Now(), Second)
	}
}
