package serve

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/experiments"
)

// BenchmarkServeWarm measures the full warm request path — request JSON
// decode, key derivation, sharded cache read, response write — without
// socket overhead. This is the per-request cost bounding the daemon's warm
// throughput ceiling; the pinservd -selftest load gate measures the same
// path through a real listener.
func BenchmarkServeWarm(b *testing.B) {
	s := NewServer(Options{Config: experiments.Config{Quick: true, Reps: 2, Seed: 42, Workers: 1}})
	const body = `{"name":"fig3"}`
	w := httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/run", strings.NewReader(body)))
	if w.Code != http.StatusOK {
		b.Fatalf("prewarm: %d %s", w.Code, w.Body.String())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/run", strings.NewReader(body))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatal(rec.Code)
		}
	}
	if s.warm.Load() != uint64(b.N) {
		b.Fatalf("warm = %d, want %d", s.warm.Load(), b.N)
	}
}
