package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/experiments"
)

// newTestServer returns a quick-mode server with a tight simulation bound
// so tests exercise admission deterministically.
func newTestServer(t *testing.T, o Options) *Server {
	t.Helper()
	o.Config.Quick = true
	o.Config.Reps = 2
	o.Config.Seed = 42
	o.Config.Workers = 1
	return NewServer(o)
}

func post(t *testing.T, s *Server, body string) *httptest.ResponseRecorder {
	t.Helper()
	w := httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/run", strings.NewReader(body)))
	return w
}

func get(t *testing.T, s *Server, path string) *httptest.ResponseRecorder {
	t.Helper()
	w := httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest(http.MethodGet, path, nil))
	return w
}

// TestRunColdThenWarm: the first ask simulates, the second is served from
// the response cache byte-identically — provenance only in the header.
func TestRunColdThenWarm(t *testing.T) {
	s := newTestServer(t, Options{})
	const body = `{"name":"fig3"}`

	cold := post(t, s, body)
	if cold.Code != http.StatusOK {
		t.Fatalf("cold: %d %s", cold.Code, cold.Body.String())
	}
	if src := cold.Header().Get(SourceHeader); src != "simulated" {
		t.Fatalf("cold source = %q, want simulated", src)
	}
	var resp RunResponse
	if err := json.Unmarshal(cold.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Name != "fig3" || len(resp.Series) == 0 || len(resp.XLabels) == 0 {
		t.Fatalf("thin response: %+v", resp)
	}

	warm := post(t, s, body)
	if warm.Code != http.StatusOK || warm.Header().Get(SourceHeader) != "warm" {
		t.Fatalf("warm: %d source=%q", warm.Code, warm.Header().Get(SourceHeader))
	}
	if !bytes.Equal(cold.Body.Bytes(), warm.Body.Bytes()) {
		t.Fatal("warm body differs from cold body")
	}
	if s.warm.Load() != 1 || s.simulated.Load() != 1 {
		t.Fatalf("warm=%d simulated=%d, want 1/1", s.warm.Load(), s.simulated.Load())
	}
}

// TestCoalescing is the tentpole invariant: N concurrent identical cold
// requests run exactly one simulation — asserted both on the server's
// counter and on the trial store's miss count (misses = trials actually
// simulated; a second figure run would double it).
func TestCoalescing(t *testing.T) {
	st := experiments.NewTrialMemo()
	s := newTestServer(t, Options{Config: experiments.Config{Memo: st}})

	var runs atomic.Int32
	entered := make(chan struct{}, 64)
	release := make(chan struct{})
	realRun := s.run
	s.run = func(cfg experiments.Config, sc experiments.Scenario) (experiments.Figure, error) {
		runs.Add(1)
		entered <- struct{}{}
		<-release // hold the flight open until every request has arrived
		return realRun(cfg, sc)
	}

	const n = 16
	var wg sync.WaitGroup
	codes := make([]int, n)
	sources := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := post(t, s, `{"name":"fig3"}`)
			codes[i], sources[i] = w.Code, w.Header().Get(SourceHeader)
		}(i)
	}
	<-entered // a leader is inside the simulation
	for s.sf.Coalesced() < n-1 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if got := runs.Load(); got != 1 {
		t.Fatalf("simulation ran %d times for %d concurrent requests, want 1", got, n)
	}
	var simulated, coalesced int
	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: %d", i, codes[i])
		}
		switch sources[i] {
		case "simulated":
			simulated++
		case "coalesced":
			coalesced++
		default:
			t.Fatalf("request %d: source %q", i, sources[i])
		}
	}
	if simulated != 1 || coalesced != n-1 {
		t.Fatalf("sources: %d simulated / %d coalesced, want 1/%d", simulated, coalesced, n-1)
	}
	// The store's misses count trials actually simulated: a second figure
	// run would have doubled it. One quick fig3 run = series×cells×reps
	// misses, all from the single leader.
	if st.Hits() != 0 {
		t.Fatalf("store hits = %d, want 0 (every trial simulated once)", st.Hits())
	}
	missesAfterOne := st.Misses()
	if missesAfterOne == 0 {
		t.Fatal("store recorded no trial misses")
	}
	// A fresh identical request must now be warm — zero new store traffic.
	if w := post(t, s, `{"name":"fig3"}`); w.Header().Get(SourceHeader) != "warm" {
		t.Fatalf("post-flight source = %q", w.Header().Get(SourceHeader))
	}
	if st.Misses() != missesAfterOne {
		t.Fatal("warm request touched the trial store")
	}
}

// TestBackpressure: with one simulation slot and no queue, a second cold
// key sheds with 429 + Retry-After while warm keys keep serving; the slot
// freeing up restores cold service.
func TestBackpressure(t *testing.T) {
	s := newTestServer(t, Options{MaxInflight: 1, MaxQueue: 1})
	// MaxQueue can't be 0 via Options (0 means default); squeeze it here.
	s.maxQueue = 0

	// Warm one key through the real engine first.
	if w := post(t, s, `{"name":"fig3"}`); w.Code != http.StatusOK {
		t.Fatalf("prewarm: %d %s", w.Code, w.Body.String())
	}

	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	realRun := s.run
	s.run = func(cfg experiments.Config, sc experiments.Scenario) (experiments.Figure, error) {
		once.Do(func() { close(entered) })
		<-release
		return realRun(cfg, sc)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if w := post(t, s, `{"name":"fig4"}`); w.Code != http.StatusOK {
			t.Errorf("blocked leader finished %d: %s", w.Code, w.Body.String())
		}
	}()
	<-entered // the only slot is now held

	shed := post(t, s, `{"name":"fig5"}`)
	if shed.Code != http.StatusTooManyRequests {
		t.Fatalf("second cold key: %d, want 429", shed.Code)
	}
	if shed.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	// Warm keys must be untouched by the saturation.
	warm := post(t, s, `{"name":"fig3"}`)
	if warm.Code != http.StatusOK || warm.Header().Get(SourceHeader) != "warm" {
		t.Fatalf("warm under saturation: %d source=%q", warm.Code, warm.Header().Get(SourceHeader))
	}

	close(release)
	wg.Wait()
	if s.shed.Load() != 1 {
		t.Fatalf("shed = %d, want 1", s.shed.Load())
	}
	// Capacity is free again: the shed key now simulates.
	if w := post(t, s, `{"name":"fig5"}`); w.Code != http.StatusOK {
		t.Fatalf("after release: %d %s", w.Code, w.Body.String())
	}
}

// TestBadRequests: structural failures 400 before simulating; unknown
// scenario names 400 on the cold path.
func TestBadRequests(t *testing.T) {
	s := newTestServer(t, Options{})
	for _, tc := range []struct{ name, body string }{
		{"empty", `{}`},
		{"both", `{"name":"fig3","scenario":{"name":"x"}}`},
		{"unknown field", `{"name":"fig3","bogus":1}`},
		{"unknown scenario", `{"name":"no-such-fig"}`},
		{"negative reps", `{"name":"fig3","reps":-1}`},
		{"invalid cells", `{"name":"fig3","cells":[{"label":"bad","cores":0}]}`},
	} {
		if w := post(t, s, tc.body); w.Code != http.StatusBadRequest {
			t.Errorf("%s: %d, want 400 (%s)", tc.name, w.Code, w.Body.String())
		}
	}
	if s.simulated.Load() != 0 {
		t.Fatalf("bad requests triggered %d simulations", s.simulated.Load())
	}
	w := httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/run", nil))
	if w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /run: %d, want 405", w.Code)
	}
}

// TestObservabilityEndpoints: /healthz and /statsz expose the serving and
// store counters the CI gates read.
func TestObservabilityEndpoints(t *testing.T) {
	s := newTestServer(t, Options{})
	post(t, s, `{"name":"fig3"}`)
	post(t, s, `{"name":"fig3"}`)

	var h HealthJSON
	if err := json.Unmarshal(get(t, s, "/healthz").Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Degraded {
		t.Fatalf("health = %+v", h)
	}

	var st StatsJSON
	if err := json.Unmarshal(get(t, s, "/statsz").Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Simulated != 1 || st.Warm != 1 || st.Responses != 1 {
		t.Fatalf("stats = %+v, want 1 simulated / 1 warm / 1 cached", st)
	}
	if st.Store.Misses == 0 {
		t.Fatal("statsz store snapshot missing trial misses")
	}

	var scs []ScenarioJSON
	if err := json.Unmarshal(get(t, s, "/scenarios").Body.Bytes(), &scs); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, sc := range scs {
		if sc.Name == "fig3" && sc.Fingerprint != "" {
			found = true
		}
	}
	if !found {
		t.Fatalf("/scenarios missing fig3: %+v", scs)
	}
}

// TestRecommendation: a figure with platform series yields a ranked
// recommendation; pinning can be constrained away.
func TestRecommendation(t *testing.T) {
	s := newTestServer(t, Options{})
	w := post(t, s, `{"name":"fig3","recommend":{}}`)
	if w.Code != http.StatusOK {
		t.Fatalf("%d %s", w.Code, w.Body.String())
	}
	var resp RunResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	rec := resp.Recommendation
	if rec == nil {
		t.Fatalf("no recommendation (note: %q)", resp.RecommendationNote)
	}
	if rec.Class != "cpu-bound" || rec.Platform == "" || rec.Mode == "" || len(rec.Ranked) == 0 {
		t.Fatalf("recommendation = %+v", rec)
	}
	if rec.CHR <= 0 || rec.CHR > 1 {
		t.Fatalf("CHR = %v", rec.CHR)
	}

	noPin := post(t, s, `{"name":"fig3","recommend":{"allow_pinning":false}}`)
	var respNP RunResponse
	if err := json.Unmarshal(noPin.Body.Bytes(), &respNP); err != nil {
		t.Fatal(err)
	}
	if respNP.Recommendation == nil {
		t.Fatalf("no unpinned recommendation (note: %q)", respNP.RecommendationNote)
	}
	for _, c := range respNP.Recommendation.Ranked {
		if c.Mode == "Pinned" {
			t.Fatalf("allow_pinning=false ranked a pinned mode: %+v", respNP.Recommendation.Ranked)
		}
	}
}

// TestCellOverridesAndInlineScenario: replacement cells re-key the cache,
// and an inline spec runs without touching the registry.
func TestCellOverridesAndInlineScenario(t *testing.T) {
	s := newTestServer(t, Options{})
	base := post(t, s, `{"name":"fig3"}`)
	small := post(t, s, `{"name":"fig3","cells":[{"label":"2xlarge","cores":16}]}`)
	if small.Code != http.StatusOK {
		t.Fatalf("cells override: %d %s", small.Code, small.Body.String())
	}
	if small.Header().Get(SourceHeader) != "simulated" {
		t.Fatal("cell override shared the base key")
	}
	var resp RunResponse
	if err := json.Unmarshal(small.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.XLabels) != 1 || resp.XLabels[0] != "2xlarge" {
		t.Fatalf("override xlabels = %v", resp.XLabels)
	}
	if bytes.Equal(base.Body.Bytes(), small.Body.Bytes()) {
		t.Fatal("override body identical to base")
	}

	inline := fmt.Sprintf(`{"scenario":%s}`, inlineSpec)
	w := post(t, s, inline)
	if w.Code != http.StatusOK {
		t.Fatalf("inline: %d %s", w.Code, w.Body.String())
	}
	var ir RunResponse
	if err := json.Unmarshal(w.Body.Bytes(), &ir); err != nil {
		t.Fatal(err)
	}
	if ir.Name != "inline-smoke" || ir.Fingerprint == "" {
		t.Fatalf("inline response = %+v", ir)
	}
}

// inlineSpec is a minimal valid scenario: one platform series, one cell.
const inlineSpec = `{
  "name": "inline-smoke",
  "workload": {"driver": "ffmpeg"},
  "series": [{"platform": {"kind": "BM", "mode": "Vanilla"}}],
  "cells": [{"label": "large", "cores": 2}]
}`

// TestRequestKeyStability: the key is a pure function of request fields —
// same request same key, any material field change a different key.
func TestRequestKeyStability(t *testing.T) {
	base := RunRequest{Name: "fig3"}
	k := base.key(true, 2, 42)
	if base.key(true, 2, 42) != k {
		t.Fatal("key not deterministic")
	}
	seed := uint64(7)
	pin := false
	for name, alt := range map[string]RunRequest{
		"name":      {Name: "fig4"},
		"reps":      {Name: "fig3", Reps: 5},
		"seed":      {Name: "fig3", Seed: &seed},
		"cells":     {Name: "fig3", Cells: []experiments.ScenarioCell{{Label: "x", Cores: 4}}},
		"recommend": {Name: "fig3", Recommend: &RecommendSpec{AllowPinning: &pin}},
	} {
		if alt.key(true, 2, 42) == k {
			t.Errorf("%s change did not re-key", name)
		}
	}
	if base.key(false, 2, 42) == k || base.key(true, 3, 42) == k || base.key(true, 2, 43) == k {
		t.Error("server-default change did not re-key")
	}
}
