package serve

// The wire surface of the pinning-advisor daemon: request/response JSON
// shapes, the request→cache-key derivation, and the figure→response
// rendering (including the model-fit recommendation).
//
// Two invariants matter here:
//
//  1. The cache key is derived from request fields alone — no registry
//     lookup, no workload resolution, no validation. The warm path must be
//     hash + one sharded read; everything that can fail or allocate happens
//     only inside the cold path's singleflight leader.
//  2. Response bytes are source-independent: whether a request was served
//     warm, coalesced onto an in-flight computation, or simulated fresh,
//     the body is byte-identical (the provenance travels in the
//     X-Pinserv-Source header). Cached bytes can therefore be written
//     verbatim forever.

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/model"
	"repro/internal/workload"
)

// RunRequest is the POST /run body: a named registry scenario (optionally
// with replacement cells) or a full inline scenario spec, plus run and
// recommendation parameters. Unknown fields are rejected.
type RunRequest struct {
	// Name selects a registered scenario. Exactly one of Name and Scenario
	// must be set.
	Name string `json:"name,omitempty"`
	// Scenario is a full inline scenario spec (the pinsim -scenario JSON
	// shape).
	Scenario *experiments.Scenario `json:"scenario,omitempty"`
	// Cells, when non-empty, replaces the scenario's cell list — the
	// "registry entry at my instance sizes" shorthand.
	Cells []experiments.ScenarioCell `json:"cells,omitempty"`
	// Reps overrides the repetition count (0 keeps the server default).
	Reps int `json:"reps,omitempty"`
	// Seed overrides the base seed (nil keeps the server default).
	Seed *uint64 `json:"seed,omitempty"`
	// Recommend, when set, fits the analytic model on the produced figure
	// and returns a ranked pinning recommendation.
	Recommend *RecommendSpec `json:"recommend,omitempty"`
}

// RecommendSpec narrows the model-driven recommendation.
type RecommendSpec struct {
	// Cores is the instance size to advise for (0 = the largest cell).
	Cores int `json:"cores,omitempty"`
	// AllowPinning permits pinned modes (nil = true; the daemon exists to
	// advise on pinning).
	AllowPinning *bool `json:"allow_pinning,omitempty"`
	// MinIsolation excludes platforms below this isolation level
	// (model.IsolationLevel numeric).
	MinIsolation int `json:"min_isolation,omitempty"`
	// MaxOverhead rejects candidates whose predicted ratio exceeds it.
	MaxOverhead float64 `json:"max_overhead,omitempty"`
}

// validate enforces the request's structural rules — everything checkable
// without touching the registry, so bad requests 400 before the cache key
// is even derived.
func (r RunRequest) validate() error {
	if (r.Name == "") == (r.Scenario == nil) {
		return fmt.Errorf("serve: exactly one of name and scenario must be set")
	}
	if r.Reps < 0 {
		return fmt.Errorf("serve: reps must be non-negative")
	}
	return nil
}

// key derives the response-cache identity from the request and the
// server's run parameters. Named requests hash in O(name length); inline
// scenarios hash their canonical fingerprint; replacement cells are folded
// in via their canonical JSON. Resolution and validation are deliberately
// absent — an unknown name keys (and fails) on the cold path.
func (r RunRequest) key(quick bool, defaultReps int, defaultSeed uint64) uint64 {
	reps, seed := r.Reps, defaultSeed
	if reps == 0 {
		reps = defaultReps
	}
	if r.Seed != nil {
		seed = *r.Seed
	}
	var b strings.Builder
	fmt.Fprintf(&b, "run|quick=%v|reps=%d|seed=%d|name=%q", quick, reps, seed, r.Name)
	if r.Scenario != nil {
		b.WriteString("|sc=" + r.Scenario.Fingerprint())
	}
	for _, c := range r.Cells {
		cj, _ := json.Marshal(c)
		b.WriteString("|cell=")
		b.Write(cj)
	}
	if rec := r.Recommend; rec != nil {
		fmt.Fprintf(&b, "|rec=%d/%v/%d/%g", rec.Cores, rec.allowPinning(), rec.MinIsolation, rec.MaxOverhead)
	}
	return cache.HashKey(b.String())
}

func (r *RecommendSpec) allowPinning() bool {
	return r == nil || r.AllowPinning == nil || *r.AllowPinning
}

// RunResponse is the POST /run reply: the figure's aggregates plus the
// optional recommendation. The body never encodes how it was served.
type RunResponse struct {
	Name        string       `json:"name"`
	Fingerprint string       `json:"fingerprint"`
	Quick       bool         `json:"quick"`
	Reps        int          `json:"reps"`
	Seed        uint64       `json:"seed"`
	Metric      string       `json:"metric"`
	XTitle      string       `json:"x_title"`
	XLabels     []string     `json:"x_labels"`
	Series      []SeriesJSON `json:"series"`
	// Recommendation is present when the request asked for one and the
	// figure supported a model fit; RecommendationNote carries the reason
	// when it did not (e.g. a stack-only scenario with no platform series).
	Recommendation     *RecommendationJSON `json:"recommendation,omitempty"`
	RecommendationNote string              `json:"recommendation_note,omitempty"`
}

// SeriesJSON is one legend entry of the reply.
type SeriesJSON struct {
	Label string     `json:"label"`
	Cells []CellJSON `json:"cells"`
}

// CellJSON is one (series, x) aggregate of the reply.
type CellJSON struct {
	X          string  `json:"x"`
	Mean       float64 `json:"mean"`
	Std        float64 `json:"std"`
	Ratio      float64 `json:"ratio,omitempty"`
	OutOfRange bool    `json:"out_of_range,omitempty"`
}

// RecommendationJSON is the model-fit advice: the best deployment first,
// with the full ranking for context.
type RecommendationJSON struct {
	Class     string       `json:"class"`
	Cores     int          `json:"cores"`
	CHR       float64      `json:"chr"`
	Platform  string       `json:"platform"`
	Mode      string       `json:"mode"`
	Predicted float64      `json:"predicted_overhead"`
	Ranked    []ChoiceJSON `json:"ranked"`
}

// ChoiceJSON is one ranked candidate.
type ChoiceJSON struct {
	Platform  string  `json:"platform"`
	Mode      string  `json:"mode"`
	Predicted float64 `json:"predicted_overhead"`
}

// classForScenario maps the scenario's effective default workload driver to
// the paper's application taxonomy (Table I) for the model fit.
func classForScenario(sc experiments.Scenario) (core.AppClass, error) {
	ws := sc.Workload
	if ws == nil {
		for _, c := range sc.Cells {
			if c.Workload != nil {
				ws = c.Workload
				break
			}
		}
	}
	if ws == nil {
		return 0, fmt.Errorf("scenario has no workload to classify")
	}
	name, err := workload.CanonicalDriver(ws.Driver)
	if err != nil {
		return 0, err
	}
	switch name {
	case "ffmpeg":
		return core.CPUBound, nil
	case "mpi":
		return core.Parallel, nil
	case "wordpress", "microservice":
		return core.IOBound, nil
	case "cassandra":
		return core.UltraIOBound, nil
	}
	return 0, fmt.Errorf("no application class for driver %q", name)
}

// buildResponse renders the figure (and, when asked, the per-request model
// fit) into the deterministic response body. Recommendation failures are
// reported in-band as a note: the figure itself is still useful, and a
// scenario whose shape cannot feed the model (no platform series, sweep
// x-axes) is a property of the request, not an error of the server.
func (s *Server) buildResponse(req RunRequest, sc experiments.Scenario, cfg experiments.Config, fig experiments.Figure) ([]byte, error) {
	resp := RunResponse{
		Name:        sc.Name,
		Fingerprint: sc.Fingerprint(),
		Quick:       cfg.Quick,
		Reps:        req.Reps,
		Seed:        cfg.Seed,
		Metric:      fig.Metric,
		XTitle:      fig.XTitle,
		XLabels:     fig.XLabels,
	}
	if resp.Reps == 0 {
		resp.Reps = cfg.Reps
	}
	for _, sr := range fig.Series {
		sj := SeriesJSON{Label: sr.Label}
		for ci, cell := range sr.Cells {
			x := ""
			if ci < len(fig.XLabels) {
				x = fig.XLabels[ci]
			}
			sj.Cells = append(sj.Cells, CellJSON{
				X: x, Mean: cell.Summary.Mean, Std: cell.Summary.Stddev,
				Ratio: cell.Ratio, OutOfRange: cell.OutOfRange,
			})
		}
		resp.Series = append(resp.Series, sj)
	}
	if req.Recommend != nil {
		rec, note := s.recommend(*req.Recommend, sc, fig)
		resp.Recommendation, resp.RecommendationNote = rec, note
	}
	return json.Marshal(resp)
}

// recommend fits the model on the figure's own samples and ranks the
// deployments for the requested size. Every failure mode returns a note
// instead of an error — see buildResponse.
func (s *Server) recommend(spec RecommendSpec, sc experiments.Scenario, fig experiments.Figure) (*RecommendationJSON, string) {
	class, err := classForScenario(sc)
	if err != nil {
		return nil, err.Error()
	}
	samples, err := experiments.FigureSamples(fig, class, s.host.NumCPUs())
	if err != nil {
		return nil, err.Error()
	}
	m, err := model.Fit(samples)
	if err != nil {
		return nil, err.Error()
	}
	cores := spec.Cores
	if cores == 0 {
		for _, c := range sc.Cells {
			if c.Cores > cores {
				cores = c.Cores
			}
		}
	}
	chr := core.CHR(cores, s.host)
	ranked, err := m.Recommend(class, chr, model.Constraints{
		MinIsolation: model.IsolationLevel(spec.MinIsolation),
		AllowPinning: spec.allowPinning(),
		MaxOverhead:  spec.MaxOverhead,
	})
	if err != nil {
		return nil, err.Error()
	}
	rec := &RecommendationJSON{
		Class: class.String(), Cores: cores, CHR: chr,
		Platform: ranked[0].Key.Platform.String(), Mode: ranked[0].Key.Mode.String(),
		Predicted: ranked[0].Predicted,
	}
	for _, c := range ranked {
		rec.Ranked = append(rec.Ranked, ChoiceJSON{
			Platform: c.Key.Platform.String(), Mode: c.Key.Mode.String(), Predicted: c.Predicted,
		})
	}
	return rec, ""
}
