// Package serve is pinservd's engine: an always-on HTTP/JSON
// pinning-advisor built from the repo's three concurrency layers.
//
//   - Warm path: a sharded response cache (cache.Memo of marshaled bodies)
//     answers repeated questions with one hash and one shard read — no
//     locks shared with cold work, no queueing behind simulations.
//   - Cold path: a singleflight group coalesces identical in-flight
//     requests, so a thundering herd on one new key costs exactly one
//     simulation; everyone else waits on the leader and shares its bytes.
//   - Admission: a bounded semaphore caps concurrent simulations and a
//     bounded queue caps waiters; beyond that the daemon sheds load with
//     429 + Retry-After instead of collapsing. Warm requests never touch
//     the semaphore.
//
// The trial store underneath (Config.Memo, typically disk-backed) makes
// all of this durable: a re-asked scenario after restart replays trials
// from segments instead of simulating.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/experiments"
	"repro/internal/resultstore"
	"repro/internal/singleflight"
	"repro/internal/topology"
)

// SourceHeader is the per-response provenance header: "warm" (response
// cache), "coalesced" (shared an in-flight computation) or "simulated"
// (this request ran the figure).
const SourceHeader = "X-Pinserv-Source"

// errOverloaded is the admission rejection; the handler maps it to 429.
var errOverloaded = errors.New("serve: simulation capacity saturated")

// badRequestError marks failures caused by the request itself (unknown
// scenario, invalid spec); the handler maps them to 400.
type badRequestError struct{ err error }

func (e badRequestError) Error() string { return e.err.Error() }
func (e badRequestError) Unwrap() error { return e.err }

// Options configures a Server.
type Options struct {
	// Config is the run template: Quick/Reps/Seed/Host/Workers defaults and
	// the shared trial store (Memo). A nil Memo is replaced with a fresh
	// in-memory store so the daemon always memoizes across requests.
	Config experiments.Config
	// MaxInflight bounds concurrently running simulations (singleflight
	// leaders that passed admission). 0 = GOMAXPROCS.
	MaxInflight int
	// MaxQueue bounds cold requests waiting for a simulation slot; beyond
	// MaxInflight+MaxQueue the daemon sheds with 429. 0 = 2*MaxInflight.
	MaxQueue int
	// RetryAfter is the 429 Retry-After hint. 0 = 1s.
	RetryAfter time.Duration
}

// Server is the daemon's http.Handler. Create with NewServer.
type Server struct {
	cfg  experiments.Config
	host *topology.Topology
	// run is the figure engine; a seam so tests can block or count
	// simulations without simulating.
	run func(experiments.Config, experiments.Scenario) (experiments.Figure, error)

	resp *cache.Memo[[]byte]
	sf   singleflight.Group[[]byte]

	maxInflight, maxQueue int
	sem                   chan struct{}
	queued                atomic.Int64
	retryAfter            string

	warm, coalesced, simulated, shed atomic.Uint64

	start time.Time
	mux   *http.ServeMux
}

// NewServer builds the daemon around cfg's trial store and run defaults.
func NewServer(o Options) *Server {
	if o.MaxInflight <= 0 {
		o.MaxInflight = runtime.GOMAXPROCS(0)
	}
	if o.MaxQueue <= 0 {
		o.MaxQueue = 2 * o.MaxInflight
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	if o.Config.Memo == nil {
		o.Config.Memo = experiments.NewTrialMemo()
	}
	host := o.Config.Host
	if host == nil {
		host = topology.PaperHost()
	}
	s := &Server{
		cfg:         o.Config,
		host:        host,
		run:         experiments.RunScenario,
		resp:        cache.NewMemo[[]byte](),
		maxInflight: o.MaxInflight,
		maxQueue:    o.MaxQueue,
		sem:         make(chan struct{}, o.MaxInflight),
		retryAfter:  fmt.Sprintf("%d", int((o.RetryAfter+time.Second-1)/time.Second)),
		start:       time.Now(),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/run", s.handleRun)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/statsz", s.handleStatsz)
	s.mux.HandleFunc("/scenarios", s.handleScenarios)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Store exposes the shared trial store (for -v stats and Close at exit).
func (s *Server) Store() experiments.TrialStore { return s.cfg.Memo }

// handleRun is the advisor endpoint. The warm path — parse, key, one
// sharded read, write — shares no lock with the cold path, so warm
// responses keep flowing at full rate while every simulation slot is busy.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req RunRequest
	if err := dec.Decode(&req); err != nil {
		http.Error(w, "serve: request JSON: "+err.Error(), http.StatusBadRequest)
		return
	}
	if err := req.validate(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	key := req.key(s.cfg.Quick, s.cfg.Reps, s.cfg.Seed)
	if body, ok := s.resp.Get(key); ok {
		s.warm.Add(1)
		writeBody(w, "warm", body)
		return
	}
	body, shared, err := s.sf.Do(key, func() ([]byte, error) {
		if !s.admit() {
			return nil, errOverloaded
		}
		defer s.release()
		return s.compute(req, key)
	})
	switch {
	case errors.Is(err, errOverloaded):
		s.shed.Add(1)
		w.Header().Set("Retry-After", s.retryAfter)
		http.Error(w, err.Error(), http.StatusTooManyRequests)
	case err != nil:
		var bad badRequestError
		if errors.As(err, &bad) {
			http.Error(w, err.Error(), http.StatusBadRequest)
		} else {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	case shared:
		s.coalesced.Add(1)
		writeBody(w, "coalesced", body)
	default:
		writeBody(w, "simulated", body)
	}
}

func writeBody(w http.ResponseWriter, source string, body []byte) {
	w.Header().Set(SourceHeader, source)
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

// admit claims a simulation slot, queueing at most maxQueue waiters; a
// false return means the caller must shed. Only singleflight leaders call
// this, so the semaphore bounds simulations, not requests.
func (s *Server) admit() bool {
	if n := s.queued.Add(1); n > int64(s.maxInflight+s.maxQueue) {
		s.queued.Add(-1)
		return false
	}
	s.sem <- struct{}{}
	return true
}

func (s *Server) release() {
	<-s.sem
	s.queued.Add(-1)
}

// compute is the cold path body, run by exactly one singleflight leader
// per key: resolve, simulate, render, publish to the response cache.
func (s *Server) compute(req RunRequest, key uint64) ([]byte, error) {
	sc, err := s.resolve(req)
	if err != nil {
		return nil, badRequestError{err}
	}
	cfg := s.cfg
	if req.Reps > 0 {
		cfg.Reps = req.Reps
	}
	if req.Seed != nil {
		cfg.Seed = *req.Seed
	}
	s.simulated.Add(1)
	fig, err := s.run(cfg, sc)
	if err != nil {
		return nil, err
	}
	body, err := s.buildResponse(req, sc, cfg, fig)
	if err != nil {
		return nil, err
	}
	s.resp.Put(key, body)
	return body, nil
}

// resolve materializes the request's scenario: registry lookup or inline
// spec, then the optional cell replacement, then validation.
func (s *Server) resolve(req RunRequest) (experiments.Scenario, error) {
	var sc experiments.Scenario
	if req.Name != "" {
		var ok bool
		if sc, ok = experiments.ScenarioByName(req.Name); !ok {
			return experiments.Scenario{}, experiments.UnknownScenarioError(req.Name)
		}
	} else {
		sc = *req.Scenario
	}
	if len(req.Cells) > 0 {
		sc.Cells = req.Cells
	}
	if err := sc.Validate(); err != nil {
		return experiments.Scenario{}, err
	}
	return sc, nil
}

// HealthJSON is the GET /healthz body.
type HealthJSON struct {
	Status   string  `json:"status"`
	UptimeS  float64 `json:"uptime_s"`
	Degraded bool    `json:"degraded"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.cfg.Memo.Stats()
	writeJSON(w, HealthJSON{Status: "ok", UptimeS: time.Since(s.start).Seconds(), Degraded: st.Degraded})
}

// StatsJSON is the GET /statsz body: serving counters plus the trial
// store's audit snapshot. "simulated" counts figure computations actually
// started — the number the coalescing gate asserts is 1 under a herd.
type StatsJSON struct {
	Warm      uint64            `json:"warm"`
	Coalesced uint64            `json:"coalesced"`
	Simulated uint64            `json:"simulated"`
	Shed      uint64            `json:"shed"`
	InFlight  int               `json:"in_flight"`
	Responses int               `json:"responses_cached"`
	Store     resultstore.Stats `json:"store"`
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, StatsJSON{
		Warm:      s.warm.Load(),
		Coalesced: s.coalesced.Load(),
		Simulated: s.simulated.Load(),
		Shed:      s.shed.Load(),
		InFlight:  s.sf.InFlight(),
		Responses: s.resp.Len(),
		Store:     s.cfg.Memo.Stats(),
	})
}

// ScenarioJSON is one GET /scenarios entry.
type ScenarioJSON struct {
	Name        string `json:"name"`
	Title       string `json:"title,omitempty"`
	Description string `json:"description,omitempty"`
	Fingerprint string `json:"fingerprint"`
}

func (s *Server) handleScenarios(w http.ResponseWriter, r *http.Request) {
	out := []ScenarioJSON{}
	for _, sc := range experiments.Scenarios() {
		out = append(out, ScenarioJSON{
			Name: sc.Name, Title: sc.Title, Description: sc.Description,
			Fingerprint: sc.Fingerprint(),
		})
	}
	writeJSON(w, out)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
