// Package loadtest is the serving-throughput harness behind pinservd
// -selftest and the CI serving gate: N keep-alive connections hammer one
// endpoint for a fixed duration and the report carries throughput plus
// latency percentiles (internal/stats.Percentiles over every request's
// observed latency — measured, not sampled).
package loadtest

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/stats"
)

// Options configures one load run.
type Options struct {
	// URL is the endpoint to POST Body to (e.g. http://host/run). For a
	// unix-socket server use any authority (http://pinservd/run) and set
	// Socket.
	URL string
	// Socket, when set, dials this unix socket path instead of the URL
	// authority.
	Socket string
	// Body is the request body, reused verbatim for every request.
	Body []byte
	// Conns is the number of concurrent keep-alive connections (0 = 4).
	Conns int
	// Duration is how long to hammer (0 = 2s).
	Duration time.Duration
	// WantSource, when set, counts responses whose X-Pinserv-Source header
	// differs (Report.WrongSource) — the warm gate asserts it stays 0.
	WantSource string
}

// Report is the outcome of one load run.
type Report struct {
	// Requests completed within the window; Errors are transport failures
	// or non-200 statuses; WrongSource counts 200s whose provenance header
	// differed from Options.WantSource.
	Requests, Errors, WrongSource int
	Elapsed                       time.Duration
	// RPS is Requests / Elapsed.
	RPS float64
	// P50/P95/P99/Max are request latencies in milliseconds.
	P50, P95, P99, Max float64
}

// String renders the one-line summary the selftest prints.
func (r Report) String() string {
	return fmt.Sprintf("%d requests in %.2fs = %.0f req/s (errors %d, wrong-source %d; latency ms p50 %.3f p95 %.3f p99 %.3f max %.3f)",
		r.Requests, r.Elapsed.Seconds(), r.RPS, r.Errors, r.WrongSource, r.P50, r.P95, r.P99, r.Max)
}

// Run executes the load test and aggregates per-connection results.
func Run(o Options) (Report, error) {
	if o.Conns <= 0 {
		o.Conns = 4
	}
	if o.Duration <= 0 {
		o.Duration = 2 * time.Second
	}
	tr := &http.Transport{
		MaxIdleConns:        o.Conns,
		MaxIdleConnsPerHost: o.Conns,
	}
	if o.Socket != "" {
		tr.DialContext = func(ctx context.Context, _, _ string) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, "unix", o.Socket)
		}
	}
	client := &http.Client{Transport: tr}
	defer tr.CloseIdleConnections()

	type workerResult struct {
		lat                 []float64 // milliseconds
		errors, wrongSource int
	}
	results := make([]workerResult, o.Conns)
	deadline := time.Now().Add(o.Duration)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < o.Conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			res := &results[w]
			res.lat = make([]float64, 0, 16384)
			for time.Now().Before(deadline) {
				t0 := time.Now()
				req, err := http.NewRequest(http.MethodPost, o.URL, bytes.NewReader(o.Body))
				if err != nil {
					res.errors++
					continue
				}
				req.Header.Set("Content-Type", "application/json")
				resp, err := client.Do(req)
				if err != nil {
					res.errors++
					continue
				}
				_, cerr := io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if cerr != nil || resp.StatusCode != http.StatusOK {
					res.errors++
					continue
				}
				if o.WantSource != "" && resp.Header.Get("X-Pinserv-Source") != o.WantSource {
					res.wrongSource++
				}
				res.lat = append(res.lat, float64(time.Since(t0))/float64(time.Millisecond))
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []float64
	rep := Report{Elapsed: elapsed}
	for _, res := range results {
		all = append(all, res.lat...)
		rep.Errors += res.errors
		rep.WrongSource += res.wrongSource
	}
	rep.Requests = len(all)
	if elapsed > 0 {
		rep.RPS = float64(rep.Requests) / elapsed.Seconds()
	}
	if len(all) > 0 {
		ps := stats.Percentiles(all, 50, 95, 99, 100)
		rep.P50, rep.P95, rep.P99, rep.Max = ps[0], ps[1], ps[2], ps[3]
	}
	return rep, nil
}

// ParseListen splits a -listen value into (network, address): "unix:path"
// dials/binds a unix socket, anything else is a TCP address.
func ParseListen(s string) (network, addr string) {
	if rest, ok := strings.CutPrefix(s, "unix:"); ok {
		return "unix", rest
	}
	return "tcp", s
}
