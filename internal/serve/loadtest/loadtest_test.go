package loadtest

import (
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"
)

func handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Pinserv-Source", "warm")
		w.Write([]byte(`{"ok":true}`))
	})
}

// TestRunAgainstTCP: the harness counts, times and source-checks requests
// over plain TCP.
func TestRunAgainstTCP(t *testing.T) {
	srv := httptest.NewServer(handler())
	defer srv.Close()
	rep, err := Run(Options{
		URL: srv.URL + "/run", Body: []byte(`{}`),
		Conns: 2, Duration: 200 * time.Millisecond, WantSource: "warm",
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 || rep.Errors != 0 || rep.WrongSource != 0 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.RPS <= 0 || rep.P99 < rep.P50 || rep.Max < rep.P99 {
		t.Fatalf("implausible latency stats: %+v", rep)
	}
	if rep.String() == "" {
		t.Fatal("empty summary")
	}
}

// TestRunAgainstUnixSocket: Socket mode dials the unix path regardless of
// the URL authority — the transport pinservd -selftest uses.
func TestRunAgainstUnixSocket(t *testing.T) {
	sock := filepath.Join(t.TempDir(), "s.sock")
	ln, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: handler()}
	go srv.Serve(ln)
	defer srv.Close()

	rep, err := Run(Options{
		URL: "http://pinservd/run", Socket: sock, Body: []byte(`{}`),
		Conns: 2, Duration: 200 * time.Millisecond, WantSource: "coalesced",
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 || rep.Errors != 0 {
		t.Fatalf("report = %+v", rep)
	}
	// Every response says "warm", the check wanted "coalesced".
	if rep.WrongSource != rep.Requests {
		t.Fatalf("wrong-source = %d, want %d", rep.WrongSource, rep.Requests)
	}
}

// TestParseListen covers the -listen syntax.
func TestParseListen(t *testing.T) {
	if n, a := ParseListen("unix:/tmp/x.sock"); n != "unix" || a != "/tmp/x.sock" {
		t.Fatalf("unix: %s %s", n, a)
	}
	if n, a := ParseListen("127.0.0.1:8080"); n != "tcp" || a != "127.0.0.1:8080" {
		t.Fatalf("tcp: %s %s", n, a)
	}
}
