package trace

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/sched"
	"repro/internal/sim"
)

// KeyFn maps a task to the aggregation key its samples are filed under.
// BCC tools aggregate by process name or cgroup; the default key is the
// task's cgroup name, falling back to "host" for ungrouped tasks.
type KeyFn func(t *sched.Task) string

// DefaultKey groups samples by cgroup name ("host" when ungrouped).
func DefaultKey(t *sched.Task) string {
	if t == nil {
		return "host"
	}
	if g := t.Spec.Group; g != nil {
		return g.Name
	}
	return "host"
}

// ByTaskName keys samples by the task's configured name.
func ByTaskName(t *sched.Task) string {
	if t == nil {
		return "?"
	}
	return t.Spec.Name
}

// taskTrack is the per-task state machine stitching trace events into
// on-CPU and off-CPU intervals.
type taskTrack struct {
	lastRunStart sim.Time
	lastRunEnd   sim.Time
	running      bool
	everRan      bool
	offReason    sched.BlockKind // why the task went off-CPU (BlockNone = runqueue)
	wokenAt      sim.Time
	hasWake      bool
}

// Collector subscribes to a scheduler's tracepoint stream and builds the
// paper's two BCC instruments plus per-CPU busy time. Attach its Fn to
// sched.Config.Trace (or machine.Config.Trace) before the run.
type Collector struct {
	Key KeyFn

	// OnCPU is cpudist: per key, the distribution of times spent on a CPU
	// per scheduling interval.
	OnCPU map[string]*Hist
	// OffCPU is offcputime: per key and block reason, the distribution of
	// times spent off the CPU between two run intervals.
	OffCPU map[string]map[sched.BlockKind]*Hist
	// RunqLatency is runqlat: the delay between a wakeup and the next
	// dispatch of the woken task.
	RunqLatency map[string]*Hist

	cpuBusy   map[int]sim.Time
	tracks    map[*sched.Task]*taskTrack
	throttles map[string]uint64
	first     sim.Time
	last      sim.Time
	seen      bool
	events    uint64
}

// NewCollector returns an empty collector aggregating by key (nil =
// DefaultKey).
func NewCollector(key KeyFn) *Collector {
	if key == nil {
		key = DefaultKey
	}
	return &Collector{
		Key:         key,
		OnCPU:       make(map[string]*Hist),
		OffCPU:      make(map[string]map[sched.BlockKind]*Hist),
		RunqLatency: make(map[string]*Hist),
		cpuBusy:     make(map[int]sim.Time),
		tracks:      make(map[*sched.Task]*taskTrack),
		throttles:   make(map[string]uint64),
	}
}

// Fn returns the TraceFn to plug into sched.Config.Trace.
func (c *Collector) Fn() sched.TraceFn { return c.handle }

// Events returns the number of trace events consumed.
func (c *Collector) Events() uint64 { return c.events }

// Span returns the time range covered by the consumed events.
func (c *Collector) Span() (first, last sim.Time) { return c.first, c.last }

// Throttles returns per-group throttle counts observed in the stream.
func (c *Collector) Throttles() map[string]uint64 {
	out := make(map[string]uint64, len(c.throttles))
	for k, v := range c.throttles {
		out[k] = v
	}
	return out
}

// CPUBusy returns the accumulated on-CPU time per CPU id.
func (c *Collector) CPUBusy() map[int]sim.Time {
	out := make(map[int]sim.Time, len(c.cpuBusy))
	for k, v := range c.cpuBusy {
		out[k] = v
	}
	return out
}

func (c *Collector) track(t *sched.Task) *taskTrack {
	tr := c.tracks[t]
	if tr == nil {
		tr = &taskTrack{}
		c.tracks[t] = tr
	}
	return tr
}

func (c *Collector) onCPUHist(key string) *Hist {
	h := c.OnCPU[key]
	if h == nil {
		h = NewHist(0)
		c.OnCPU[key] = h
	}
	return h
}

func (c *Collector) offCPUHist(key string, reason sched.BlockKind) *Hist {
	m := c.OffCPU[key]
	if m == nil {
		m = make(map[sched.BlockKind]*Hist)
		c.OffCPU[key] = m
	}
	h := m[reason]
	if h == nil {
		h = NewHist(0)
		m[reason] = h
	}
	return h
}

func (c *Collector) runqHist(key string) *Hist {
	h := c.RunqLatency[key]
	if h == nil {
		h = NewHist(0)
		c.RunqLatency[key] = h
	}
	return h
}

func (c *Collector) handle(ev sched.TraceEvent) {
	c.events++
	if !c.seen || ev.At < c.first {
		c.first = ev.At
		c.seen = true
	}
	if ev.At > c.last {
		c.last = ev.At
	}
	if ev.Kind == sched.TraceThrottle {
		c.throttles[ev.Group]++
		return
	}
	t := ev.Task
	if t == nil {
		return
	}
	key := c.Key(t)
	tr := c.track(t)
	switch ev.Kind {
	case sched.TraceRunStart:
		if tr.everRan && !tr.running {
			c.offCPUHist(key, tr.offReason).Record(ev.At - tr.lastRunEnd)
		}
		if tr.hasWake {
			c.runqHist(key).Record(ev.At - tr.wokenAt)
			tr.hasWake = false
		}
		tr.running = true
		tr.everRan = true
		tr.offReason = sched.BlockNone
		tr.lastRunStart = ev.At
	case sched.TraceRunEnd:
		if tr.running {
			d := ev.At - tr.lastRunStart
			c.onCPUHist(key).Record(d)
			c.cpuBusy[ev.CPU] += d
			tr.running = false
			tr.lastRunEnd = ev.At
		}
	case sched.TraceBlock:
		tr.offReason = ev.Block
	case sched.TraceWake:
		tr.wokenAt = ev.At
		tr.hasWake = true
	case sched.TraceSpawn, sched.TraceFinish:
		// Lifecycle markers; intervals handled via run events.
	}
}

// Report renders the collected instruments in BCC's style: one cpudist
// histogram per key, one offcputime histogram per key and reason, runqlat,
// and the utilization summary.
func (c *Collector) Report(w io.Writer) {
	keys := c.sortedKeys()
	fmt.Fprintf(w, "== cpudist (on-CPU time per scheduling interval, usecs) ==\n")
	for _, k := range keys {
		if h := c.OnCPU[k]; h != nil && h.Count() > 0 {
			fmt.Fprintf(w, "\n[%s]\n", k)
			h.Render(w, "usecs")
		}
	}
	fmt.Fprintf(w, "\n== offcputime (blocked/waiting durations, usecs) ==\n")
	for _, k := range keys {
		reasons := c.sortedReasons(k)
		for _, r := range reasons {
			h := c.OffCPU[k][r]
			if h == nil || h.Count() == 0 {
				continue
			}
			fmt.Fprintf(w, "\n[%s / %s]\n", k, r)
			h.Render(w, "usecs")
		}
	}
	fmt.Fprintf(w, "\n== runqlat (wakeup-to-dispatch latency, usecs) ==\n")
	for _, k := range keys {
		if h := c.RunqLatency[k]; h != nil && h.Count() > 0 {
			fmt.Fprintf(w, "\n[%s]\n", k)
			h.Render(w, "usecs")
		}
	}
	c.reportUtilization(w)
	if len(c.throttles) > 0 {
		fmt.Fprintf(w, "\n== cgroup throttles ==\n")
		var gs []string
		for g := range c.throttles {
			gs = append(gs, g)
		}
		sort.Strings(gs)
		for _, g := range gs {
			fmt.Fprintf(w, "  %-20s %d\n", g, c.throttles[g])
		}
	}
}

func (c *Collector) reportUtilization(w io.Writer) {
	if !c.seen || c.last <= c.first {
		return
	}
	span := c.last - c.first
	var ids []int
	for id := range c.cpuBusy {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var total sim.Time
	for _, id := range ids {
		total += c.cpuBusy[id]
	}
	fmt.Fprintf(w, "\n== cpu utilization (span %v, %d CPUs touched) ==\n", span, len(ids))
	for _, id := range ids {
		util := float64(c.cpuBusy[id]) / float64(span) * 100
		fmt.Fprintf(w, "  cpu%-4d %6.1f%%\n", id, util)
	}
	if len(ids) > 0 {
		fmt.Fprintf(w, "  total busy %v across %d CPUs\n", total, len(ids))
	}
}

func (c *Collector) sortedKeys() []string {
	set := map[string]bool{}
	for k := range c.OnCPU {
		set[k] = true
	}
	for k := range c.OffCPU {
		set[k] = true
	}
	for k := range c.RunqLatency {
		set[k] = true
	}
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func (c *Collector) sortedReasons(key string) []sched.BlockKind {
	m := c.OffCPU[key]
	reasons := make([]sched.BlockKind, 0, len(m))
	for r := range m {
		reasons = append(reasons, r)
	}
	sort.Slice(reasons, func(i, j int) bool { return reasons[i] < reasons[j] })
	return reasons
}
