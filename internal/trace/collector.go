package trace

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/sched"
	"repro/internal/sim"
)

// KeyFn maps a task to the aggregation key its samples are filed under.
// BCC tools aggregate by process name or cgroup; the default key is the
// task's cgroup name, falling back to "host" for ungrouped tasks.
//
// The collector calls the KeyFn exactly once per task — at the task's first
// event — and works with the interned key id from then on, so a KeyFn that
// formats or concatenates strings costs one allocation per task, never one
// per event.
type KeyFn func(t *sched.Task) string

// DefaultKey groups samples by cgroup name ("host" when ungrouped).
func DefaultKey(t *sched.Task) string {
	if t == nil {
		return "host"
	}
	if g := t.Spec.Group; g != nil {
		return g.Name
	}
	return "host"
}

// ByTaskName keys samples by the task's configured name.
func ByTaskName(t *sched.Task) string {
	if t == nil {
		return "?"
	}
	return t.Spec.Name
}

// nBlockKinds is the size of the per-reason off-CPU table (BlockNone..
// BlockSleep).
const nBlockKinds = int(sched.BlockSleep) + 1

// taskTrack is the per-task state machine stitching trace events into
// on-CPU and off-CPU intervals. It carries the task's interned key id and
// caches the histogram pointers it records into, so the steady-state event
// path does no map lookups and no allocation.
type taskTrack struct {
	keyID        uint32
	lastRunStart sim.Time
	lastRunEnd   sim.Time
	running      bool
	everRan      bool
	offReason    sched.BlockKind // why the task went off-CPU (BlockNone = runqueue)
	wokenAt      sim.Time
	hasWake      bool

	on   *Hist // cached OnCPU[key]
	runq *Hist // cached RunqLatency[key]
	off  [nBlockKinds]*Hist
}

// keySlot is the per-key histogram table, indexed by interned key id.
type keySlot struct {
	on   *Hist
	runq *Hist
	off  [nBlockKinds]*Hist
}

// Collector subscribes to a scheduler's tracepoint stream and builds the
// paper's two BCC instruments plus per-CPU busy time. Attach its Fn to
// sched.Config.Trace (or machine.Config.Trace) before the run.
//
// Internally the collector is allocation-free in steady state: keys are
// interned to dense ids once per task, histograms live in pooled slabs and
// are addressed through slice tables, and per-CPU busy time is a flat
// array. The exported maps below are views populated at intern time (they
// hold the same *Hist pointers the fast path records into), so existing
// consumers keep working unchanged.
type Collector struct {
	Key KeyFn

	// OnCPU is cpudist: per key, the distribution of times spent on a CPU
	// per scheduling interval.
	OnCPU map[string]*Hist
	// OffCPU is offcputime: per key and block reason, the distribution of
	// times spent off the CPU between two run intervals.
	OffCPU map[string]map[sched.BlockKind]*Hist
	// RunqLatency is runqlat: the delay between a wakeup and the next
	// dispatch of the woken task.
	RunqLatency map[string]*Hist

	keyIDs map[string]uint32
	keys   []string  // key id -> key string
	slots  []keySlot // key id -> histogram table
	hists  histPool
	tracks trackPool
	// freeTracks recycles per-task tracks across Reset: a collector reused
	// over many runs reaches a steady state where tracking a fresh task
	// population allocates nothing.
	freeTracks []*taskTrack

	trackOf   map[*sched.Task]*taskTrack
	lastTask  *sched.Task // one-entry track cache: events arrive in bursts
	lastTrack *taskTrack

	cpuBusy    []sim.Time
	cpuTouched []bool
	throttles  map[string]uint64
	first      sim.Time
	last       sim.Time
	seen       bool
	events     uint64

	// Report/export scratch, reused across calls so the extraction path is
	// allocation-free in steady state.
	keyScratch      []string
	throttleScratch []string
}

// histPool slab-allocates histograms: new keys appear a handful of times
// per run, and the pool keeps them from costing one heap object each. The
// first slab is small — a single-key run (the common case for short
// collections) touches only a few histograms — and refills jump to the
// full slab size for key-heavy runs.
type histPool struct {
	block []Hist
	grown bool
}

func (p *histPool) get() *Hist {
	if len(p.block) == 0 {
		n := 4
		if p.grown {
			n = 16
		}
		p.block = make([]Hist, n)
		p.grown = true
	}
	h := &p.block[0]
	p.block = p.block[1:]
	h.Unit = sim.Microsecond
	return h
}

// trackPool slab-allocates per-task tracks the same way, with the same
// small-first-slab sizing for runs tracking only a handful of tasks.
type trackPool struct {
	block []taskTrack
	grown bool
}

func (p *trackPool) get() *taskTrack {
	if len(p.block) == 0 {
		n := 8
		if p.grown {
			n = 64
		}
		p.block = make([]taskTrack, n)
		p.grown = true
	}
	t := &p.block[0]
	p.block = p.block[1:]
	return t
}

// NewCollector returns an empty collector aggregating by key (nil =
// DefaultKey).
func NewCollector(key KeyFn) *Collector {
	if key == nil {
		key = DefaultKey
	}
	return &Collector{
		Key:         key,
		OnCPU:       make(map[string]*Hist),
		OffCPU:      make(map[string]map[sched.BlockKind]*Hist),
		RunqLatency: make(map[string]*Hist),
		keyIDs:      make(map[string]uint32),
		trackOf:     make(map[*sched.Task]*taskTrack),
		throttles:   make(map[string]uint64),
	}
}

// Fn returns the TraceFn to plug into sched.Config.Trace.
func (c *Collector) Fn() sched.TraceFn { return c.handle }

// Reset clears all collected samples and per-task state in place so the
// collector can instrument another run. Interned keys, their histograms and
// the exported map views survive (histograms are zeroed, not replaced, so
// held *Hist pointers stay valid); per-task tracks are recycled. A collector
// reused across a sweep of runs reaches a steady state where a whole run —
// tracking, recording and extraction — allocates nothing.
func (c *Collector) Reset() {
	for tk, tr := range c.trackOf {
		c.freeTracks = append(c.freeTracks, tr)
		delete(c.trackOf, tk)
	}
	c.lastTask, c.lastTrack = nil, nil
	for i := range c.slots {
		slot := &c.slots[i]
		if slot.on != nil {
			slot.on.Reset()
		}
		if slot.runq != nil {
			slot.runq.Reset()
		}
		for _, h := range slot.off {
			if h != nil {
				h.Reset()
			}
		}
	}
	for i := range c.cpuBusy {
		c.cpuBusy[i] = 0
		c.cpuTouched[i] = false
	}
	for g := range c.throttles {
		delete(c.throttles, g)
	}
	c.first, c.last, c.seen, c.events = 0, 0, false, 0
}

// Events returns the number of trace events consumed.
func (c *Collector) Events() uint64 { return c.events }

// Span returns the time range covered by the consumed events.
func (c *Collector) Span() (first, last sim.Time) { return c.first, c.last }

// Throttles returns per-group throttle counts observed in the stream.
func (c *Collector) Throttles() map[string]uint64 {
	out := make(map[string]uint64, len(c.throttles))
	for k, v := range c.throttles {
		out[k] = v
	}
	return out
}

// CPUBusy returns the accumulated on-CPU time per CPU id.
func (c *Collector) CPUBusy() map[int]sim.Time {
	out := make(map[int]sim.Time)
	for id, touched := range c.cpuTouched {
		if touched {
			out[id] = c.cpuBusy[id]
		}
	}
	return out
}

// VisitCPUBusy calls f for each touched CPU in ascending id order: the
// allocation-free form of CPUBusy for extraction loops.
func (c *Collector) VisitCPUBusy(f func(cpu int, busy sim.Time)) {
	for id, touched := range c.cpuTouched {
		if touched {
			f(id, c.cpuBusy[id])
		}
	}
}

// VisitThrottles calls f for each group with observed throttles, in
// unspecified order: the allocation-free form of Throttles.
func (c *Collector) VisitThrottles(f func(group string, n uint64)) {
	for g, n := range c.throttles {
		f(g, n)
	}
}

// internKey resolves a key string to its dense id, registering it (and its
// exported-map view slots) on first sight.
func (c *Collector) internKey(key string) uint32 {
	if id, ok := c.keyIDs[key]; ok {
		return id
	}
	id := uint32(len(c.keys))
	c.keyIDs[key] = id
	c.keys = append(c.keys, key)
	c.slots = append(c.slots, keySlot{})
	return id
}

// track resolves the per-task state, interning the task's key on first
// sight (the only place the KeyFn runs).
func (c *Collector) track(t *sched.Task) *taskTrack {
	if t == c.lastTask {
		return c.lastTrack
	}
	tr := c.trackOf[t]
	if tr == nil {
		if n := len(c.freeTracks); n > 0 {
			tr = c.freeTracks[n-1]
			c.freeTracks = c.freeTracks[:n-1]
			*tr = taskTrack{}
		} else {
			tr = c.tracks.get()
		}
		tr.keyID = c.internKey(c.Key(t))
		c.trackOf[t] = tr
	}
	c.lastTask, c.lastTrack = t, tr
	return tr
}

// onCPUHist resolves (and caches on the track) the key's cpudist histogram.
func (c *Collector) onCPUHist(tr *taskTrack) *Hist {
	if tr.on != nil {
		return tr.on
	}
	slot := &c.slots[tr.keyID]
	if slot.on == nil {
		slot.on = c.hists.get()
		c.OnCPU[c.keys[tr.keyID]] = slot.on
	}
	tr.on = slot.on
	return slot.on
}

func (c *Collector) offCPUHist(tr *taskTrack, reason sched.BlockKind) *Hist {
	if int(reason) >= nBlockKinds {
		// A kind beyond the table means the sched.BlockKind enum grew
		// without nBlockKinds following; silently re-filing the samples
		// would corrupt the offcputime report.
		panic(fmt.Sprintf("trace: BlockKind %d outside the off-CPU table — update nBlockKinds", reason))
	}
	if h := tr.off[reason]; h != nil {
		return h
	}
	slot := &c.slots[tr.keyID]
	if slot.off[reason] == nil {
		slot.off[reason] = c.hists.get()
		key := c.keys[tr.keyID]
		m := c.OffCPU[key]
		if m == nil {
			m = make(map[sched.BlockKind]*Hist)
			c.OffCPU[key] = m
		}
		m[reason] = slot.off[reason]
	}
	tr.off[reason] = slot.off[reason]
	return slot.off[reason]
}

func (c *Collector) runqHist(tr *taskTrack) *Hist {
	if tr.runq != nil {
		return tr.runq
	}
	slot := &c.slots[tr.keyID]
	if slot.runq == nil {
		slot.runq = c.hists.get()
		c.RunqLatency[c.keys[tr.keyID]] = slot.runq
	}
	tr.runq = slot.runq
	return slot.runq
}

// addCPUBusy accumulates on-CPU time into the flat per-CPU table, growing
// it to the highest CPU id seen (growth is bounded by the host size, so it
// stops allocating almost immediately).
func (c *Collector) addCPUBusy(cpu int, d sim.Time) {
	if cpu < 0 {
		return
	}
	for cpu >= len(c.cpuBusy) {
		c.cpuBusy = append(c.cpuBusy, 0)
		c.cpuTouched = append(c.cpuTouched, false)
	}
	c.cpuBusy[cpu] += d
	c.cpuTouched[cpu] = true
}

func (c *Collector) handle(ev sched.TraceEvent) {
	c.events++
	if !c.seen || ev.At < c.first {
		c.first = ev.At
		c.seen = true
	}
	if ev.At > c.last {
		c.last = ev.At
	}
	if ev.Kind == sched.TraceThrottle {
		c.throttles[ev.Group]++
		return
	}
	t := ev.Task
	if t == nil {
		return
	}
	tr := c.track(t)
	switch ev.Kind {
	case sched.TraceRunStart:
		if tr.everRan && !tr.running {
			c.offCPUHist(tr, tr.offReason).Record(ev.At - tr.lastRunEnd)
		}
		if tr.hasWake {
			c.runqHist(tr).Record(ev.At - tr.wokenAt)
			tr.hasWake = false
		}
		tr.running = true
		tr.everRan = true
		tr.offReason = sched.BlockNone
		tr.lastRunStart = ev.At
	case sched.TraceRunEnd:
		if tr.running {
			d := ev.At - tr.lastRunStart
			c.onCPUHist(tr).Record(d)
			c.addCPUBusy(ev.CPU, d)
			tr.running = false
			tr.lastRunEnd = ev.At
		}
	case sched.TraceBlock:
		tr.offReason = ev.Block
	case sched.TraceWake:
		tr.wokenAt = ev.At
		tr.hasWake = true
	case sched.TraceSpawn, sched.TraceFinish:
		// Lifecycle markers; intervals handled via run events.
	}
}

// Report renders the collected instruments in BCC's style: one cpudist
// histogram per key, one offcputime histogram per key and reason, runqlat,
// and the utilization summary.
func (c *Collector) Report(w io.Writer) {
	keys := c.sortedKeys()
	fmt.Fprintf(w, "== cpudist (on-CPU time per scheduling interval, usecs) ==\n")
	for _, k := range keys {
		if h := c.OnCPU[k]; h != nil && h.Count() > 0 {
			fmt.Fprintf(w, "\n[%s]\n", k)
			h.Render(w, "usecs")
		}
	}
	fmt.Fprintf(w, "\n== offcputime (blocked/waiting durations, usecs) ==\n")
	for _, k := range keys {
		c.visitReasons(k, func(r sched.BlockKind, h *Hist) {
			if h.Count() == 0 {
				return
			}
			fmt.Fprintf(w, "\n[%s / %s]\n", k, r)
			h.Render(w, "usecs")
		})
	}
	fmt.Fprintf(w, "\n== runqlat (wakeup-to-dispatch latency, usecs) ==\n")
	for _, k := range keys {
		if h := c.RunqLatency[k]; h != nil && h.Count() > 0 {
			fmt.Fprintf(w, "\n[%s]\n", k)
			h.Render(w, "usecs")
		}
	}
	c.reportUtilization(w)
	if len(c.throttles) > 0 {
		fmt.Fprintf(w, "\n== cgroup throttles ==\n")
		gs := c.throttleScratch[:0]
		for g := range c.throttles {
			gs = append(gs, g)
		}
		sort.Strings(gs)
		c.throttleScratch = gs
		for _, g := range gs {
			fmt.Fprintf(w, "  %-20s %d\n", g, c.throttles[g])
		}
	}
}

func (c *Collector) reportUtilization(w io.Writer) {
	if !c.seen || c.last <= c.first {
		return
	}
	span := c.last - c.first
	n := 0
	var total sim.Time
	c.VisitCPUBusy(func(_ int, busy sim.Time) {
		n++
		total += busy
	})
	fmt.Fprintf(w, "\n== cpu utilization (span %v, %d CPUs touched) ==\n", span, n)
	c.VisitCPUBusy(func(id int, busy sim.Time) {
		util := float64(busy) / float64(span) * 100
		fmt.Fprintf(w, "  cpu%-4d %6.1f%%\n", id, util)
	})
	if n > 0 {
		fmt.Fprintf(w, "  total busy %v across %d CPUs\n", total, n)
	}
}

// sortedKeys returns every interned key in sorted order. Keys are interned
// exactly when a histogram view could exist for them, and the report loops
// skip empty histograms, so the interned table replaces the old union of the
// exported maps; the returned slice is collector-owned scratch, valid until
// the next call.
func (c *Collector) sortedKeys() []string {
	c.keyScratch = append(c.keyScratch[:0], c.keys...)
	sort.Strings(c.keyScratch)
	return c.keyScratch
}

// visitReasons calls f for each block reason with an off-CPU histogram under
// key, in BlockKind order (the interned slot table is already ordered, so no
// sort and no allocation).
func (c *Collector) visitReasons(key string, f func(r sched.BlockKind, h *Hist)) {
	id, ok := c.keyIDs[key]
	if !ok {
		return
	}
	for r, h := range c.slots[id].off {
		if h != nil {
			f(sched.BlockKind(r), h)
		}
	}
}
