package trace

import (
	"testing"

	"repro/internal/sched"
	"repro/internal/sim"
)

// traceRig builds a collector plus two warmed-up tasks (one grouped by
// name) so the steady-state guard exercises interned keys, cached
// histogram pointers and the flat CPU-busy table for every event kind.
func traceRig() (*Collector, []*sched.Task) {
	col := NewCollector(ByTaskName)
	tasks := []*sched.Task{
		{ID: 0, Spec: sched.TaskSpec{Name: "web"}},
		{ID: 1, Spec: sched.TaskSpec{Name: "db"}},
	}
	return col, tasks
}

// allKindEvents drives one full lifecycle of task t through the collector:
// spawn, wake, run, block (every reason), rerun, throttle, finish — every
// TraceEvent kind and every off-CPU reason histogram.
func allKindEvents(col *Collector, t *sched.Task, at *sim.Time) {
	tick := func() sim.Time { *at += sim.Microsecond; return *at }
	h := col.handle
	h(sched.TraceEvent{Kind: sched.TraceSpawn, Task: t, CPU: -1, At: tick()})
	h(sched.TraceEvent{Kind: sched.TraceWake, Task: t, CPU: -1, At: tick()})
	for _, reason := range []sched.BlockKind{sched.BlockNone, sched.BlockIO, sched.BlockRecv, sched.BlockSleep} {
		h(sched.TraceEvent{Kind: sched.TraceRunStart, Task: t, CPU: 2, At: tick()})
		h(sched.TraceEvent{Kind: sched.TraceRunEnd, Task: t, CPU: 2, At: tick()})
		h(sched.TraceEvent{Kind: sched.TraceBlock, Task: t, CPU: -1, At: tick(), Block: reason})
		h(sched.TraceEvent{Kind: sched.TraceWake, Task: t, CPU: -1, At: tick()})
	}
	h(sched.TraceEvent{Kind: sched.TraceThrottle, CPU: -1, At: tick(), Group: "g"})
	h(sched.TraceEvent{Kind: sched.TraceFinish, Task: t, CPU: -1, At: tick()})
}

// TestCollectorHandleZeroAllocSteadyState is the zero-alloc contract of the
// trace pipeline: once a task's key is interned and its histograms exist,
// no TraceEvent kind allocates.
func TestCollectorHandleZeroAllocSteadyState(t *testing.T) {
	col, tasks := traceRig()
	var at sim.Time
	// Warm up: intern keys, create every histogram, size the busy table.
	for _, tk := range tasks {
		allKindEvents(col, tk, &at)
	}
	if n := testing.AllocsPerRun(100, func() {
		for _, tk := range tasks {
			allKindEvents(col, tk, &at)
		}
	}); n != 0 {
		t.Fatalf("Collector.handle allocates %v per full event cycle, want 0", n)
	}
	if col.Events() == 0 || col.Throttles()["g"] == 0 {
		t.Fatal("events must have been consumed")
	}
}

// TestCollectorExportZeroAllocSteadyState guards the extraction path: once
// the first report sized the scratch buffers, enumerating keys, per-reason
// histograms and per-CPU busy time allocates nothing.
func TestCollectorExportZeroAllocSteadyState(t *testing.T) {
	col, tasks := traceRig()
	var at sim.Time
	for _, tk := range tasks {
		allKindEvents(col, tk, &at)
	}
	var busyCPUs int
	var busyTotal sim.Time
	var throttled uint64
	visitBusy := func(_ int, d sim.Time) { busyCPUs++; busyTotal += d }
	visitThr := func(_ string, n uint64) { throttled += n }
	extract := func() {
		for _, k := range col.sortedKeys() {
			col.visitReasons(k, func(_ sched.BlockKind, h *Hist) { _ = h.Count() })
		}
		col.VisitCPUBusy(visitBusy)
		col.VisitThrottles(visitThr)
	}
	extract() // size the scratch
	busyCPUs, busyTotal, throttled = 0, 0, 0
	if n := testing.AllocsPerRun(100, extract); n != 0 {
		t.Fatalf("export path allocates %v per extraction, want 0", n)
	}
	if busyCPUs == 0 || busyTotal == 0 || throttled == 0 {
		t.Fatal("extraction must have visited busy CPUs and throttles")
	}
}

// TestCollectorResetReuseZeroAlloc is the whole-run steady-state contract: a
// collector Reset between runs tracks a fresh task population — new task
// pointers, every event kind — without a single allocation.
func TestCollectorResetReuseZeroAlloc(t *testing.T) {
	col, tasks := traceRig()
	var at sim.Time
	for _, tk := range tasks {
		allKindEvents(col, tk, &at)
	}
	// A different task population with the same cardinality: fresh pointers
	// force the track map and recycled track pool through their reuse path.
	fresh := []*sched.Task{
		{ID: 10, Spec: sched.TaskSpec{Name: "web"}},
		{ID: 11, Spec: sched.TaskSpec{Name: "db"}},
	}
	run := func() {
		col.Reset()
		for _, tk := range fresh {
			allKindEvents(col, tk, &at)
		}
	}
	run() // reach steady state (freeTracks capacity, map buckets)
	if n := testing.AllocsPerRun(100, run); n != 0 {
		t.Fatalf("Reset+rerun allocates %v per run, want 0", n)
	}
	if col.Events() == 0 || col.OnCPU["web"].Count() == 0 {
		t.Fatal("reused collector must still collect")
	}
	if col.Throttles()["g"] == 0 {
		t.Fatal("reused collector must still count throttles")
	}
}

// TestCollectorKeyFnCalledOncePerTask: the KeyFn runs at a task's first
// event only; later events reuse the interned id even if the KeyFn would
// now disagree.
func TestCollectorKeyFnCalledOncePerTask(t *testing.T) {
	calls := 0
	col := NewCollector(func(tk *sched.Task) string {
		calls++
		return tk.Spec.Name
	})
	task := &sched.Task{ID: 7, Spec: sched.TaskSpec{Name: "once"}}
	var at sim.Time
	for i := 0; i < 5; i++ {
		allKindEvents(col, task, &at)
	}
	if calls != 1 {
		t.Fatalf("KeyFn ran %d times, want exactly 1 (interned per task)", calls)
	}
	if col.OnCPU["once"] == nil || col.OnCPU["once"].Count() == 0 {
		t.Fatal("interned key must still collect samples")
	}
}

// TestBlockKindTableCoversEnum is the tripwire for nBlockKinds: it must be
// exactly the number of defined BlockKinds, so a kind added to sched after
// BlockSleep fails here instead of panicking mid-run (or worse, silently
// misfiling samples).
func TestBlockKindTableCoversEnum(t *testing.T) {
	if sched.BlockKind(nBlockKinds).String() != "unknown" {
		t.Fatalf("BlockKind %d is defined but outside the off-CPU table — grow nBlockKinds", nBlockKinds)
	}
	if sched.BlockKind(nBlockKinds - 1).String() == "unknown" {
		t.Fatalf("off-CPU table has %d slots but the last one is undefined", nBlockKinds)
	}
}

// TestCollectorViewsShareFastPathHists: the exported maps are views over
// the interned tables — the same *Hist the fast path records into.
func TestCollectorViewsShareFastPathHists(t *testing.T) {
	col, tasks := traceRig()
	var at sim.Time
	allKindEvents(col, tasks[0], &at)
	key := "web"
	before := col.OnCPU[key].Count()
	if before == 0 {
		t.Fatal("cpudist view empty")
	}
	allKindEvents(col, tasks[0], &at)
	if col.OnCPU[key].Count() <= before {
		t.Fatal("exported view must track fast-path records")
	}
	for _, reason := range []sched.BlockKind{sched.BlockIO, sched.BlockRecv, sched.BlockSleep} {
		if col.OffCPU[key][reason] == nil || col.OffCPU[key][reason].Count() == 0 {
			t.Fatalf("offcputime[%v] view missing", reason)
		}
	}
	if col.RunqLatency[key] == nil || col.RunqLatency[key].Count() == 0 {
		t.Fatal("runqlat view missing")
	}
	if len(col.CPUBusy()) != 1 {
		t.Fatalf("cpu busy CPUs = %v, want exactly cpu2", col.CPUBusy())
	}
}
