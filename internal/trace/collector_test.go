package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/topology"
)

// buildTraced runs a tiny two-task workload (one compute-only, one IO-heavy,
// the latter in a cgroup) with a collector attached and returns it.
func buildTraced(t *testing.T) *Collector {
	t.Helper()
	col := NewCollector(nil)
	topo, err := topology.New("t", 1, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := machine.HostDefaults(topo, 1)
	cfg.Trace = col.Fn()
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := m.NewGroup("web", 0, topology.NewCPUSet(0, 1))
	m.Spawn(sched.TaskSpec{
		Name:    "cruncher",
		Program: sched.Sequence(sched.Compute(40*sim.Millisecond), sched.Compute(40*sim.Millisecond)),
	}, 0)
	m.Spawn(sched.TaskSpec{
		Name:  "webproc",
		Group: g,
		Program: sched.Sequence(
			sched.Compute(time1ms), sched.IO(0, 2*sim.Millisecond),
			sched.Compute(time1ms), sched.IO(1, 2*sim.Millisecond),
			sched.Compute(time1ms),
		),
	}, 0)
	res := m.Run(0)
	if res.TimedOut || len(res.Responses) != 2 {
		t.Fatalf("run: %+v", res)
	}
	return col
}

const time1ms = sim.Millisecond

func TestCollectorBuildsInstruments(t *testing.T) {
	col := buildTraced(t)
	if col.Events() == 0 {
		t.Fatal("no trace events consumed")
	}
	host := col.OnCPU["host"]
	if host == nil || host.Count() == 0 {
		t.Fatal("host cpudist empty")
	}
	web := col.OnCPU["web"]
	if web == nil || web.Count() == 0 {
		t.Fatal("grouped cpudist empty")
	}
	// The web task blocks twice for IO: offcputime must hold IO intervals.
	offWeb := col.OffCPU["web"][sched.BlockIO]
	if offWeb == nil || offWeb.Count() != 2 {
		t.Fatalf("web IO off-cpu intervals: %+v", offWeb)
	}
	// IO off-CPU time must be on the order of the device latency (the
	// scheduler jitters latencies slightly, so allow a generous floor).
	if offWeb.Min() < sim.Millisecond {
		t.Fatalf("IO off-cpu interval %v far below device latency", offWeb.Min())
	}
	first, last := col.Span()
	if last <= first {
		t.Fatal("span not recorded")
	}
}

func TestCollectorCPUBusyMatchesOnCPU(t *testing.T) {
	col := buildTraced(t)
	var busy sim.Time
	for _, d := range col.CPUBusy() {
		busy += d
	}
	var on sim.Time
	for _, h := range col.OnCPU {
		on += h.Sum()
	}
	if busy != on {
		t.Fatalf("per-CPU busy %v != sum of cpudist %v", busy, on)
	}
}

func TestCollectorReport(t *testing.T) {
	col := buildTraced(t)
	var buf bytes.Buffer
	col.Report(&buf)
	out := buf.String()
	for _, want := range []string{"cpudist", "offcputime", "runqlat", "cpu utilization", "[web / io]", "[host]"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestCollectorByTaskName(t *testing.T) {
	col := NewCollector(ByTaskName)
	topo, _ := topology.New("t", 1, 2, 1)
	cfg := machine.HostDefaults(topo, 1)
	cfg.Trace = col.Fn()
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Spawn(sched.TaskSpec{Name: "alpha", Program: sched.Sequence(sched.Compute(sim.Millisecond))}, 0)
	m.Spawn(sched.TaskSpec{Name: "beta", Program: sched.Sequence(sched.Compute(sim.Millisecond))}, 0)
	m.Run(0)
	if col.OnCPU["alpha"] == nil || col.OnCPU["beta"] == nil {
		t.Fatal("task-name keying broken")
	}
}

func TestCollectorThrottleCounts(t *testing.T) {
	col := NewCollector(nil)
	topo, _ := topology.New("t", 1, 8, 1)
	cfg := machine.HostDefaults(topo, 1)
	cfg.Trace = col.Fn()
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A 1-core-quota group with 4 hungry threads must throttle repeatedly.
	g := m.NewGroup("squeezed", 1, topology.CPUSet{})
	for i := 0; i < 4; i++ {
		m.Spawn(sched.TaskSpec{
			Name:    "hog",
			Group:   g,
			Program: sched.Sequence(sched.Compute(200 * sim.Millisecond)),
		}, 0)
	}
	m.Run(0)
	if col.Throttles()["squeezed"] == 0 {
		t.Fatal("no throttles observed in trace stream")
	}
	var buf bytes.Buffer
	col.Report(&buf)
	if !strings.Contains(buf.String(), "cgroup throttles") {
		t.Fatal("throttle section missing from report")
	}
}

func TestDefaultKeyFallbacks(t *testing.T) {
	if DefaultKey(nil) != "host" {
		t.Fatal("nil task must key to host")
	}
	if ByTaskName(nil) != "?" {
		t.Fatal("nil task name key")
	}
}

// The runqlat instrument must capture wake-to-dispatch latency: a woken task
// on a busy CPU waits for the running slice to yield.
func TestCollectorRunqLatency(t *testing.T) {
	col := buildTraced(t)
	total := uint64(0)
	for _, h := range col.RunqLatency {
		total += h.Count()
	}
	if total == 0 {
		t.Fatal("no runqlat samples; IO wakeups must produce them")
	}
}
