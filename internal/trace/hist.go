// Package trace is the simulator's analog of the BCC (BPF Compiler
// Collection) kernel-tracing toolkit the paper uses for its profiling
// methodology (§III-A): "we used cpudist and offcputime to monitor and
// profile the instantaneous status of the processes in the OS scheduler."
//
// The scheduler exposes a tracepoint stream (sched.TraceEvent); this package
// turns it into the two instruments the paper relies on — cpudist (how long
// tasks stay on a CPU per scheduling interval) and offcputime (how long and
// why they stay off) — plus per-CPU utilization, rendered in the familiar
// BCC ASCII-histogram format.
package trace

import (
	"fmt"
	"io"
	"math/bits"
	"strings"

	"repro/internal/sim"
)

// histBuckets is the number of power-of-two buckets: bucket i counts samples
// in [2^i, 2^(i+1)) of the histogram's unit. 64 buckets cover any int64.
const histBuckets = 64

// Hist is a BCC-style power-of-two histogram of durations.
type Hist struct {
	// Unit is the duration of one histogram unit (BCC tools default to
	// microseconds). Zero means microseconds.
	Unit sim.Time

	buckets [histBuckets]uint64
	count   uint64
	sum     sim.Time
	min     sim.Time
	max     sim.Time
}

// NewHist returns a histogram with the given unit (0 = microseconds).
func NewHist(unit sim.Time) *Hist {
	if unit <= 0 {
		unit = sim.Microsecond
	}
	return &Hist{Unit: unit}
}

func (h *Hist) unit() sim.Time {
	if h.Unit <= 0 {
		return sim.Microsecond
	}
	return h.Unit
}

// bucketOf returns the bucket index for a duration: floor(log2(d/unit)),
// with sub-unit durations landing in bucket 0.
func (h *Hist) bucketOf(d sim.Time) int {
	v := uint64(d / h.unit())
	if v == 0 {
		return 0
	}
	return bits.Len64(v) - 1
}

// Record adds one duration sample. Negative durations are clamped to zero.
func (h *Hist) Record(d sim.Time) {
	if d < 0 {
		d = 0
	}
	if h.count == 0 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.count++
	h.sum += d
	h.buckets[h.bucketOf(d)]++
}

// Reset clears all samples in place, keeping the unit. Exported views that
// point at this histogram stay valid and see the fresh state.
func (h *Hist) Reset() {
	h.buckets = [histBuckets]uint64{}
	h.count = 0
	h.sum = 0
	h.min = 0
	h.max = 0
}

// Count returns the number of recorded samples.
func (h *Hist) Count() uint64 { return h.count }

// Sum returns the total of all recorded durations.
func (h *Hist) Sum() sim.Time { return h.sum }

// Min returns the smallest recorded duration (0 if empty).
func (h *Hist) Min() sim.Time {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded duration (0 if empty).
func (h *Hist) Max() sim.Time { return h.max }

// Mean returns the average duration (0 if empty).
func (h *Hist) Mean() sim.Time {
	if h.count == 0 {
		return 0
	}
	return h.sum / sim.Time(h.count)
}

// Buckets returns a copy of the bucket counts.
func (h *Hist) Buckets() []uint64 {
	out := make([]uint64, histBuckets)
	copy(out[:], h.buckets[:])
	return out
}

// Percentile returns an upper bound for the p-th percentile (0 < p <= 100)
// from the bucket boundaries: the top edge of the bucket holding the p-th
// sample. Returns 0 for an empty histogram.
func (h *Hist) Percentile(p float64) sim.Time {
	if h.count == 0 || p <= 0 {
		return 0
	}
	if p > 100 {
		p = 100
	}
	rank := uint64(p / 100 * float64(h.count))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.buckets {
		seen += c
		if seen >= rank {
			return h.unit() << uint(i+1)
		}
	}
	return h.max
}

// Merge adds other's samples into h. The units must match.
func (h *Hist) Merge(other *Hist) error {
	if other == nil || other.count == 0 {
		return nil
	}
	if h.unit() != other.unit() {
		return fmt.Errorf("trace: merging histograms of different units (%v vs %v)", h.unit(), other.unit())
	}
	if h.count == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.count += other.count
	h.sum += other.sum
	for i := range h.buckets {
		h.buckets[i] += other.buckets[i]
	}
	return nil
}

// Render writes the histogram in BCC's ASCII format:
//
//	usecs               : count     distribution
//	    0 -> 1          : 0        |                    |
//	    2 -> 3          : 12       |****                |
func (h *Hist) Render(w io.Writer, label string) {
	const barWidth = 40
	lo, hi := h.renderRange()
	var peak uint64
	for i := lo; i <= hi; i++ {
		if h.buckets[i] > peak {
			peak = h.buckets[i]
		}
	}
	fmt.Fprintf(w, "     %-19s : count     distribution\n", label)
	for i := lo; i <= hi; i++ {
		loEdge := uint64(0)
		if i > 0 {
			loEdge = 1 << uint(i)
		}
		hiEdge := uint64(1<<uint(i+1)) - 1
		stars := 0
		if peak > 0 {
			stars = int(h.buckets[i] * barWidth / peak)
		}
		fmt.Fprintf(w, "%10d -> %-10d : %-8d |%-*s|\n",
			loEdge, hiEdge, h.buckets[i], barWidth, strings.Repeat("*", stars))
	}
	if h.count > 0 {
		fmt.Fprintf(w, "     samples %d, avg %v, min %v, max %v\n",
			h.count, h.Mean(), h.Min(), h.Max())
	}
}

// renderRange picks the non-empty bucket span (always at least bucket 0).
func (h *Hist) renderRange() (lo, hi int) {
	lo, hi = -1, 0
	for i, c := range h.buckets {
		if c > 0 {
			if lo < 0 {
				lo = i
			}
			hi = i
		}
	}
	if lo < 0 {
		lo = 0
	}
	return lo, hi
}
