package trace

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestHistBucketBoundaries(t *testing.T) {
	h := NewHist(sim.Microsecond)
	cases := []struct {
		d      sim.Time
		bucket int
	}{
		{0, 0},
		{sim.Nanosecond, 0},      // sub-unit
		{sim.Microsecond, 0},     // [1,2)
		{2 * sim.Microsecond, 1}, // [2,4)
		{3 * sim.Microsecond, 1},
		{4 * sim.Microsecond, 2},
		{1023 * sim.Microsecond, 9},
		{1024 * sim.Microsecond, 10},
	}
	for _, c := range cases {
		if got := h.bucketOf(c.d); got != c.bucket {
			t.Errorf("bucketOf(%v) = %d, want %d", c.d, got, c.bucket)
		}
	}
}

func TestHistStats(t *testing.T) {
	h := NewHist(0) // default usec
	if h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.Percentile(50) != 0 {
		t.Fatal("empty histogram stats must be zero")
	}
	h.Record(10 * sim.Microsecond)
	h.Record(20 * sim.Microsecond)
	h.Record(30 * sim.Microsecond)
	if h.Count() != 3 {
		t.Fatalf("count %d", h.Count())
	}
	if h.Sum() != 60*sim.Microsecond {
		t.Fatalf("sum %v", h.Sum())
	}
	if h.Mean() != 20*sim.Microsecond {
		t.Fatalf("mean %v", h.Mean())
	}
	if h.Min() != 10*sim.Microsecond || h.Max() != 30*sim.Microsecond {
		t.Fatalf("min/max %v/%v", h.Min(), h.Max())
	}
}

func TestHistNegativeClamped(t *testing.T) {
	h := NewHist(0)
	h.Record(-5 * sim.Microsecond)
	if h.Min() != 0 || h.Count() != 1 {
		t.Fatal("negative samples must clamp to zero")
	}
}

func TestHistPercentileMonotone(t *testing.T) {
	h := NewHist(0)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		h.Record(sim.Time(rng.Int63n(int64(10 * sim.Millisecond))))
	}
	prev := sim.Time(0)
	for _, p := range []float64{1, 10, 25, 50, 75, 90, 99, 100} {
		v := h.Percentile(p)
		if v < prev {
			t.Fatalf("percentile not monotone at p=%v: %v < %v", p, v, prev)
		}
		prev = v
	}
	if h.Percentile(100) < h.Max() {
		t.Fatal("p100 upper bound must cover the max")
	}
}

func TestHistMergeEqualsUnion(t *testing.T) {
	a, b, u := NewHist(0), NewHist(0), NewHist(0)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		d := sim.Time(rng.Int63n(int64(sim.Second)))
		if i%2 == 0 {
			a.Record(d)
		} else {
			b.Record(d)
		}
		u.Record(d)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != u.Count() || a.Sum() != u.Sum() || a.Min() != u.Min() || a.Max() != u.Max() {
		t.Fatal("merge must equal recording the union")
	}
	ab, ub := a.Buckets(), u.Buckets()
	for i := range ab {
		if ab[i] != ub[i] {
			t.Fatalf("bucket %d: %d vs %d", i, ab[i], ub[i])
		}
	}
}

func TestHistMergeUnitMismatch(t *testing.T) {
	a := NewHist(sim.Microsecond)
	b := NewHist(sim.Millisecond)
	b.Record(sim.Millisecond)
	if err := a.Merge(b); err == nil {
		t.Fatal("unit mismatch must error")
	}
	if err := a.Merge(nil); err != nil {
		t.Fatal("nil merge is a no-op")
	}
	empty := NewHist(sim.Millisecond)
	if err := a.Merge(empty); err != nil {
		t.Fatal("empty merge is a no-op regardless of unit")
	}
}

func TestHistRender(t *testing.T) {
	h := NewHist(0)
	for i := 0; i < 8; i++ {
		h.Record(3 * sim.Microsecond)
	}
	h.Record(100 * sim.Microsecond)
	var buf bytes.Buffer
	h.Render(&buf, "usecs")
	out := buf.String()
	if !strings.Contains(out, "usecs") || !strings.Contains(out, "distribution") {
		t.Fatalf("render header:\n%s", out)
	}
	if !strings.Contains(out, "****") {
		t.Fatalf("render bars:\n%s", out)
	}
	if !strings.Contains(out, "samples 9") {
		t.Fatalf("render summary:\n%s", out)
	}
	var empty bytes.Buffer
	NewHist(0).Render(&empty, "usecs")
	if !strings.Contains(empty.String(), "count") {
		t.Fatal("empty histogram still renders a header")
	}
}

// Property: count is conserved, sum equals the sample total, and every
// sample lands in exactly one bucket.
func TestHistConservationProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		h := NewHist(0)
		var want sim.Time
		for _, r := range raw {
			d := sim.Time(r)
			want += d
			h.Record(d)
		}
		var inBuckets uint64
		for _, c := range h.Buckets() {
			inBuckets += c
		}
		return h.Count() == uint64(len(raw)) && inBuckets == h.Count() && h.Sum() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the percentile upper bound is ≥ the true percentile for any
// sample set (bucket top edges bound their contents).
func TestHistPercentileBoundProperty(t *testing.T) {
	f := func(raw []uint16, pRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		p := float64(pRaw%100) + 1
		h := NewHist(0)
		vals := make([]sim.Time, len(raw))
		for i, r := range raw {
			d := sim.Time(r) * sim.Microsecond
			vals[i] = d
			h.Record(d)
		}
		// True percentile by sorting.
		for i := 1; i < len(vals); i++ {
			for j := i; j > 0 && vals[j] < vals[j-1]; j-- {
				vals[j], vals[j-1] = vals[j-1], vals[j]
			}
		}
		rank := int(p / 100 * float64(len(vals)))
		if rank == 0 {
			rank = 1
		}
		truth := vals[rank-1]
		return h.Percentile(p) >= truth
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
