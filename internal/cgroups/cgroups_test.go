package cgroups

import (
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
)

func controller() (*sim.Engine, *Controller) {
	eng := sim.NewEngine()
	return eng, NewController(eng, topology.PaperHost(), DefaultParams())
}

func TestGroupDefaults(t *testing.T) {
	_, c := controller()
	g := c.NewGroup("g", 0, topology.CPUSet{})
	if g.Quota() != 0 {
		t.Fatal("no quota expected")
	}
	if g.AllowedCPUs().Count() != 112 {
		t.Fatal("empty cpuset must mean all CPUs")
	}
	if g.Throttled() {
		t.Fatal("fresh group throttled")
	}
	pinned := c.NewGroup("p", 0, topology.NewCPUSet(1, 2))
	if pinned.AllowedCPUs().Count() != 2 {
		t.Fatal("cpuset not honored")
	}
	if len(c.Groups()) != 2 {
		t.Fatal("controller lost groups")
	}
}

func TestQuotaThrottlesAndRefreshes(t *testing.T) {
	eng, c := controller()
	g := c.NewGroup("g", 2, topology.CPUSet{}) // 200ms per 100ms period
	g.SetRunnable(4)

	if g.Charge(0, 50*sim.Millisecond) {
		t.Fatal("under quota should not throttle")
	}
	if !g.Charge(1, 160*sim.Millisecond) {
		t.Fatal("exceeding quota must throttle")
	}
	if !g.Throttled() {
		t.Fatal("group should be throttled")
	}
	// Additional charges while throttled do not re-trigger.
	if g.Charge(2, 10*sim.Millisecond) {
		t.Fatal("already-throttled group re-throttled")
	}
	unthrottled := false
	g.SetUnthrottleFn(func(churn sim.Time) {
		unthrottled = true
		if churn <= 0 {
			t.Error("churn must be positive")
		}
	})
	eng.Run(0) // period refresh fires
	if g.Throttled() {
		t.Fatal("group should unthrottle at the period boundary")
	}
	if !unthrottled {
		t.Fatal("unthrottle callback not invoked")
	}
	if g.Stats.Throttles != 1 || g.Stats.PeriodsElapsed == 0 {
		t.Fatalf("stats: %+v", g.Stats)
	}
	g.Stop()
}

func TestQuotaDebtCarry(t *testing.T) {
	eng, c := controller()
	g := c.NewGroup("g", 1, topology.CPUSet{}) // 100ms/period
	g.SetRunnable(1)
	// Consume 350ms at once: 250ms debt = throttled through two more
	// refreshes.
	if !g.Charge(0, 350*sim.Millisecond) {
		t.Fatal("should throttle")
	}
	deadline := eng.Now() + 110*sim.Millisecond
	eng.RunUntil(deadline)
	if !g.Throttled() {
		t.Fatal("debt of 250ms must keep the group throttled after one period")
	}
	eng.RunUntil(deadline + 100*sim.Millisecond)
	if !g.Throttled() {
		t.Fatal("still 150ms debt")
	}
	eng.RunUntil(deadline + 200*sim.Millisecond)
	if g.Throttled() {
		t.Fatal("debt repaid; group should run")
	}
	g.Stop()
}

func TestChurnCaps(t *testing.T) {
	eng, c := controller()
	g := c.NewGroup("g", 1, topology.CPUSet{})
	// Enormous runnable count: total churn must be capped by the spread and
	// quota bounds, so per-thread churn becomes small but positive.
	g.SetRunnable(1000)
	var got sim.Time
	g.SetUnthrottleFn(func(churn sim.Time) { got = churn })
	if !g.Charge(0, 150*sim.Millisecond) {
		t.Fatal("should throttle")
	}
	eng.Run(0)
	if got <= 0 {
		t.Fatal("churn should be distributed")
	}
	total := got * 1000
	maxTotal := sim.Time(c.P.ChurnQuotaFrac * float64(g.Quota()))
	if total > maxTotal+sim.Time(1000) { // rounding slack
		t.Fatalf("churn %v exceeds quota cap %v", total, maxTotal)
	}
	g.Stop()
}

func TestChurnSaturationScalesShortThrottles(t *testing.T) {
	eng, c := controller()
	g := c.NewGroup("g", 1, topology.CPUSet{})
	g.SetRunnable(2)
	var got sim.Time
	g.SetUnthrottleFn(func(churn sim.Time) { got = churn })
	// Open the period at t=0 (the timer starts lazily at the first charge),
	// then throttle 99ms into it: throttled for ~1ms ≪ saturation.
	eng.At(0, func() { g.Charge(0, sim.Millisecond) })
	eng.At(99*sim.Millisecond, func() { g.Charge(0, 150*sim.Millisecond) })
	eng.Run(0)
	full := c.P.UnthrottleThreadCost
	if got >= full/2 {
		t.Fatalf("short throttle should scale churn down: got %v of %v", got, full)
	}
	g.Stop()
}

func TestChurnSizedByLiveThreads(t *testing.T) {
	// Two groups, identical quota pressure; one reports 2 runnable of 2
	// live, the other 2 runnable of 40 live (the rest blocked on IO). The
	// live-heavy group must generate more total churn (§IV-C: blocked
	// threads resume onto cold caches too).
	run := func(live int) sim.Time {
		eng, c := controller()
		g := c.NewGroup("g", 1, topology.CPUSet{})
		g.SetRunnable(2)
		g.SetLive(live)
		// Spread wide enough that the per-spread-CPU cap does not mask the
		// live-thread sizing.
		for cpu := 0; cpu < 30; cpu++ {
			g.Charge(cpu, 5*sim.Millisecond)
		}
		eng.Run(0)
		g.Stop()
		return g.Stats.UnthrottleChurn
	}
	small, big := run(2), run(40)
	if big <= small {
		t.Fatalf("churn must grow with live threads: %v vs %v", small, big)
	}
}

func TestChurnWorkingSetScale(t *testing.T) {
	run := func(scale float64) sim.Time {
		eng, c := controller()
		g := c.NewGroup("g", 4, topology.CPUSet{}) // roomy quota: caps off
		g.SetRunnable(2)
		g.SetChurnScale(scale)
		// Spread over four CPUs so the per-spread-CPU cap stays above the
		// scaled total.
		for cpu := 0; cpu < 4; cpu++ {
			g.Charge(cpu, 120*sim.Millisecond)
		}
		eng.Run(0)
		g.Stop()
		return g.Stats.UnthrottleChurn
	}
	base, heavy := run(1), run(3)
	if heavy != 3*base {
		t.Fatalf("working-set scale must multiply churn: %v vs %v", base, heavy)
	}
	// Zero/negative resets to neutral.
	if got := run(-1); got != base {
		t.Fatalf("negative scale must mean 1: %v vs %v", got, base)
	}
}

func TestChurnScaleOverrideAblates(t *testing.T) {
	p := DefaultParams()
	p.ChurnScaleOverride = 1
	eng := sim.NewEngine()
	c := NewController(eng, topology.PaperHost(), p)
	g := c.NewGroup("g", 4, topology.CPUSet{})
	g.SetRunnable(2)
	g.SetChurnScale(3) // would triple churn, but the override pins it to 1
	g.Charge(0, 450*sim.Millisecond)
	eng.Run(0)
	g.Stop()

	eng2, c2 := controller()
	g2 := c2.NewGroup("g", 4, topology.CPUSet{})
	g2.SetRunnable(2)
	g2.Charge(0, 450*sim.Millisecond)
	eng2.Run(0)
	g2.Stop()

	if g.Stats.UnthrottleChurn != g2.Stats.UnthrottleChurn {
		t.Fatalf("override must ablate the working-set factor: %v vs %v",
			g.Stats.UnthrottleChurn, g2.Stats.UnthrottleChurn)
	}
}

func TestIdlePeriodTimerStops(t *testing.T) {
	eng, c := controller()
	g := c.NewGroup("g", 1, topology.CPUSet{})
	g.SetRunnable(1)
	g.Charge(0, 30*sim.Millisecond) // under quota: never throttles
	eng.Run(0)                      // must terminate (timer idles after a quiet period)
	if g.Throttled() {
		t.Fatal("group should not be throttled")
	}
	if g.Stats.PeriodsElapsed < 1 || g.Stats.PeriodsElapsed > 3 {
		t.Fatalf("timer should idle after the quiet period, saw %d periods", g.Stats.PeriodsElapsed)
	}
	// Re-charging restarts the period clock.
	g.Charge(0, 150*sim.Millisecond)
	if !g.Throttled() {
		t.Fatal("fresh charge over quota must throttle")
	}
	eng.Run(0)
	if g.Throttled() {
		t.Fatal("restarted timer must unthrottle the group")
	}
	g.Stop()
}

func TestAcctCostScalesWithHostSize(t *testing.T) {
	engBig := sim.NewEngine()
	big := NewController(engBig, topology.PaperHost(), DefaultParams())
	engSmall := sim.NewEngine()
	small := NewController(engSmall, topology.SmallHost16(), DefaultParams())
	gb := big.NewGroup("b", 0, topology.CPUSet{})
	gs := small.NewGroup("s", 0, topology.CPUSet{})
	if gb.AcctCost() <= gs.AcctCost() {
		t.Fatal("accounting on a 112-CPU host must cost more than on 16 CPUs")
	}
	if gb.Stats.AcctInvocations != 1 || gb.Stats.AcctTime == 0 {
		t.Fatalf("stats not recorded: %+v", gb.Stats)
	}
}

func TestAcctAmplification(t *testing.T) {
	eng := sim.NewEngine()
	p := DefaultParams()
	p.AcctAmplification = 3
	c := NewController(eng, topology.PaperHost(), p)
	g := c.NewGroup("g", 0, topology.CPUSet{})
	base := NewController(sim.NewEngine(), topology.PaperHost(), DefaultParams()).NewGroup("b", 0, topology.CPUSet{})
	if g.AcctCost() != 3*base.AcctCost() {
		t.Fatal("amplification not applied")
	}
}

func TestThrottleCostScalesWithSpread(t *testing.T) {
	_, c := controller()
	g := c.NewGroup("g", 4, topology.CPUSet{})
	g.SetRunnable(8)
	g.Charge(0, 10*sim.Millisecond)
	g.Charge(5, 10*sim.Millisecond)
	g.Charge(60, 10*sim.Millisecond)
	cost3 := g.ThrottleCost()
	want := sim.Time(3 * int64(c.P.ThrottlePerSpreadCPU))
	if cost3 != want {
		t.Fatalf("throttle cost %v, want %v", cost3, want)
	}
}

func TestGroupString(t *testing.T) {
	_, c := controller()
	v := c.NewGroup("web", 4, topology.CPUSet{})
	if !strings.Contains(v.String(), "vanilla") {
		t.Fatalf("vanilla string: %s", v)
	}
	p := c.NewGroup("db", 0, topology.NewCPUSet(0, 2))
	if !strings.Contains(p.String(), "pinned") {
		t.Fatalf("pinned string: %s", p)
	}
}

func TestStopCancelsTimer(t *testing.T) {
	eng, c := controller()
	g := c.NewGroup("g", 1, topology.CPUSet{})
	g.SetRunnable(1)
	g.Charge(0, 150*sim.Millisecond)
	g.Stop()
	pending := eng.Pending()
	eng.Run(0)
	if g.Throttled() == false && pending > 0 {
		// The canceled refresh may remain in the heap but must not fire.
		t.Log("timer canceled correctly")
	}
	if eng.Processed() != 0 {
		t.Fatalf("canceled period timer fired (%d events)", eng.Processed())
	}
}
