// Package cgroups models the Linux control-group CPU controllers the paper
// holds responsible for container overhead (§IV-B): the cpu controller's CFS
// bandwidth quota (Docker --cpus, "vanilla" mode) and the cpuset controller
// (Docker --cpuset-cpus, "pinned" mode), plus the resource-usage accounting
// cost that every scheduling event of a grouped task pays.
//
// The accounting cost model follows the paper's observation that cgroups
// usage tracking is an atomic kernel-space operation whose cost scales with
// the number of per-CPU structures that must be visited — i.e. with the size
// of the *host*, not of the container. That is the mechanism behind Fig 7:
// the same 16-core container pays more accounting tax on a 112-core host
// than on a 16-core host, pinned or not.
package cgroups

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/topology"
)

// Params calibrate the cgroup cost model.
type Params struct {
	// Period is the CFS bandwidth enforcement period (cpu.cfs_period_us).
	Period sim.Time
	// AcctBase is the fixed user→kernel transition cost of one accounting
	// invocation.
	AcctBase sim.Time
	// AcctPerCPU is the per-host-CPU cost of walking per-CPU usage
	// structures during one accounting invocation.
	AcctPerCPU sim.Time
	// UnthrottleThreadCost is charged per runnable thread at each unthrottle:
	// bandwidth-slice redistribution, staggered wakeup and cold-cache refill
	// after a throttle gap. It burns quota (it is real CPU time) and delays
	// the thread. This is the dominant PSO term for small vanilla containers.
	UnthrottleThreadCost sim.Time
	// ChurnSaturation scales the unthrottle cost by the time spent
	// throttled: a group throttled for a moment at the period edge loses
	// almost nothing (its caches are warm, slices still distributed); one
	// parked for most of the period pays the full cost.
	ChurnSaturation sim.Time
	// ChurnPerSpreadCPU caps the total churn of one unthrottle by the
	// number of host CPUs the group's tasks touched this period: the kernel
	// redistributes bandwidth slices and reestablishes state per CPU, not
	// per thread. Because the spread is bounded by the *host* size, the
	// absolute churn is roughly constant while the quota grows with the
	// instance — which is exactly why PSO fades as CHR rises (§IV-A).
	ChurnPerSpreadCPU sim.Time
	// ChurnQuotaFrac is a safety bound: one unthrottle's churn never burns
	// more than this fraction of the period quota, so huge thread counts
	// degrade a group severely but cannot starve it of all progress.
	ChurnQuotaFrac float64
	// ThrottlePerSpreadCPU is the resched-IPI cost per CPU the group touched
	// in the period, charged when the group throttles.
	ThrottlePerSpreadCPU sim.Time
	// ChurnScaleOverride, when positive, replaces the scheduler-reported
	// working-set churn factor with a fixed value (1 = ablate the
	// working-set scaling entirely; used by the ablation benchmarks).
	ChurnScaleOverride float64
	// AcctAmplification multiplies accounting costs; >1 inside guests where
	// each accounting read hits virtualized timekeeping (used by VMCN).
	AcctAmplification float64
}

// DefaultParams returns calibrated defaults (see DESIGN.md §3).
func DefaultParams() Params {
	return Params{
		Period:               100 * sim.Millisecond,
		AcctBase:             1 * sim.Microsecond,
		AcctPerCPU:           80 * sim.Nanosecond,
		UnthrottleThreadCost: 6 * sim.Millisecond,
		ChurnSaturation:      20 * sim.Millisecond,
		ChurnPerSpreadCPU:    10 * sim.Millisecond,
		ChurnQuotaFrac:       1.2,
		ThrottlePerSpreadCPU: 20 * sim.Microsecond,
		AcctAmplification:    1,
	}
}

// GroupStats aggregates the overheads a group generated.
type GroupStats struct {
	AcctInvocations  uint64
	AcctTime         sim.Time
	Throttles        uint64
	ThrottledTime    sim.Time
	UnthrottleChurn  sim.Time
	QuotaConsumed    sim.Time
	PeriodsElapsed   uint64
	MaxSpreadPerCPUs int
}

// Group is one container-equivalent control group.
type Group struct {
	Name string
	// QuotaCores is the CFS bandwidth quota expressed in cores
	// (cpu.cfs_quota_us / cpu.cfs_period_us). 0 means unlimited.
	QuotaCores float64
	// CPUs is the cpuset (empty = all host CPUs allowed).
	CPUs topology.CPUSet

	ctl *Controller

	periodStart    sim.Time
	consumed       sim.Time // runtime consumed in the current period
	throttled      bool
	throttledAt    sim.Time
	throttleSpread int             // spread snapshot at the throttle point
	spread         topology.CPUSet // CPUs that ran group tasks this period
	periodTimer    sim.Timer       // bandwidth-period tick; bound at first arm
	onUnthrottle   func(churnPerThread sim.Time)
	runnable       int     // runnable threads, maintained by the scheduler
	live           int     // unfinished threads, maintained by the scheduler
	churnScale     float64 // working-set factor for unthrottle churn (0 = 1)

	Stats GroupStats
}

// Controller owns the groups of one machine.
type Controller struct {
	P      Params
	eng    *sim.Engine
	topo   *topology.Topology
	groups []*Group
	// acctCost is AcctCost's per-invocation charge, fixed by (P, topo) at
	// construction/Reset and precomputed off the per-switch hot path.
	acctCost sim.Time
}

// NewController returns a controller for one machine.
func NewController(eng *sim.Engine, topo *topology.Topology, p Params) *Controller {
	if p.Period <= 0 {
		p.Period = 100 * sim.Millisecond
	}
	if p.AcctAmplification <= 0 {
		p.AcctAmplification = 1
	}
	c := &Controller{P: p, eng: eng, topo: topo}
	c.acctCost = c.computeAcctCost()
	return c
}

func (c *Controller) computeAcctCost() sim.Time {
	return sim.Time(float64(c.P.AcctBase+sim.Time(int64(c.P.AcctPerCPU)*int64(c.topo.NumCPUs()))) * c.P.AcctAmplification)
}

// Reset returns the controller to the state NewController(eng, topo, p)
// would construct, keeping the engine/topology wiring and the group-list
// backing. Groups created before the Reset are dead — the scheduler and
// deployment that referenced them are reset alongside — and their structs
// are recycled by the next NewGroup calls.
func (c *Controller) Reset(p Params) {
	if p.Period <= 0 {
		p.Period = 100 * sim.Millisecond
	}
	if p.AcctAmplification <= 0 {
		p.AcctAmplification = 1
	}
	c.P = p
	c.acctCost = c.computeAcctCost()
	c.groups = c.groups[:0]
}

// NewGroup creates a group. quotaCores <= 0 means no bandwidth limit; an
// empty cpuset means all CPUs.
func (c *Controller) NewGroup(name string, quotaCores float64, cpus topology.CPUSet) *Group {
	// Recycle the struct of a same-position group from before a Reset: the
	// full overwrite also zeroes its embedded period timer, which rebinds
	// lazily at the first bandwidth charge.
	if n := len(c.groups); n < cap(c.groups) && c.groups[:n+1][n] != nil {
		c.groups = c.groups[:n+1]
		g := c.groups[n]
		*g = Group{Name: name, QuotaCores: quotaCores, CPUs: cpus, ctl: c}
		return g
	}
	g := &Group{Name: name, QuotaCores: quotaCores, CPUs: cpus, ctl: c}
	c.groups = append(c.groups, g)
	return g
}

// Groups returns the controller's groups.
func (c *Controller) Groups() []*Group { return c.groups }

// AllowedCPUs resolves the group's effective cpuset on the controller's host.
func (g *Group) AllowedCPUs() topology.CPUSet {
	if g == nil || g.CPUs.IsEmpty() {
		if g == nil {
			return topology.CPUSet{}
		}
		return g.ctl.topo.AllCPUs()
	}
	return g.CPUs
}

// Quota returns the per-period runtime budget, or 0 for unlimited.
func (g *Group) Quota() sim.Time {
	if g.QuotaCores <= 0 {
		return 0
	}
	return sim.Time(g.QuotaCores * float64(g.ctl.P.Period))
}

// SetUnthrottleFn registers the scheduler callback invoked when the group's
// bandwidth refreshes after a throttle. The callback receives the churn
// delay to apply per waking thread.
func (g *Group) SetUnthrottleFn(fn func(churnPerThread sim.Time)) { g.onUnthrottle = fn }

// SetRunnable lets the scheduler report the group's current runnable-thread
// count.
func (g *Group) SetRunnable(n int) { g.runnable = n }

// AddRunnable adjusts the runnable-thread count by delta. The scheduler
// calls it on every runnable transition, so it must stay allocation- and
// lookup-free.
func (g *Group) AddRunnable(delta int) { g.runnable += delta }

// Runnable returns the scheduler-reported runnable-thread count.
func (g *Group) Runnable() int { return g.runnable }

// SetLive lets the scheduler report the group's unfinished-thread count.
// Unthrottle churn is sized by it: threads blocked on IO at the period
// boundary still resume onto cold caches and re-established IO channels
// (§IV-C), so they pay the refill cost too, not just the currently-runnable
// ones.
func (g *Group) SetLive(n int) { g.live = n }

// AddLive adjusts the unfinished-thread count by delta.
func (g *Group) AddLive(delta int) { g.live += delta }

// Live returns the scheduler-reported unfinished-thread count.
func (g *Group) Live() int { return g.live }

// SetChurnScale lets the scheduler report the group's working-set factor:
// the per-thread refill cost of an unthrottle scales with how much state a
// thread must pull back into cache (a JVM heap vs a PHP worker's pages).
// Applied before the spread and quota caps. 0 or negative resets to 1.
func (g *Group) SetChurnScale(s float64) {
	if s <= 0 {
		s = 1
	}
	g.churnScale = s
}

// churnThreads is the thread count one unthrottle's churn is sized by.
func (g *Group) churnThreads() int {
	if g.live > g.runnable {
		return g.live
	}
	return g.runnable
}

// Throttled reports whether the group is currently banned from running.
func (g *Group) Throttled() bool { return g.throttled }

// AcctCost returns the cost of one accounting invocation (tick, context
// switch or wakeup of a grouped task) and records it.
func (g *Group) AcctCost() sim.Time {
	c := g.ctl.acctCost
	g.Stats.AcctInvocations++
	g.Stats.AcctTime += c
	return c
}

// AcctCostN records n accounting invocations at once and returns their
// total cost — bookkeeping identical to n consecutive AcctCost calls,
// without the per-call loop (the per-invocation charge is a constant).
func (g *Group) AcctCostN(n int64) sim.Time {
	total := g.ctl.acctCost * sim.Time(n)
	g.Stats.AcctInvocations += uint64(n)
	g.Stats.AcctTime += total
	return total
}

// ensurePeriod lazily starts the bandwidth period timer.
func (g *Group) ensurePeriod() {
	if g.Quota() == 0 || (g.periodTimer.Bound() && g.periodTimer.Pending()) {
		return
	}
	g.periodStart = g.ctl.eng.Now()
	g.schedulePeriodRefresh()
}

func (g *Group) schedulePeriodRefresh() {
	if !g.periodTimer.Bound() {
		// The static callback is bound once to the embedded timer; every
		// later period tick reuses a pooled event slot, so steady-state
		// bandwidth enforcement allocates nothing — not even the Timer or a
		// method-value closure.
		g.periodTimer.InitArg(g.ctl.eng, groupPeriodFired, g)
	}
	g.periodTimer.ResetAt(g.periodStart + g.ctl.P.Period)
}

// groupPeriodFired is the static bandwidth-period callback.
func groupPeriodFired(a any) { a.(*Group).refreshPeriod() }

func (g *Group) refreshPeriod() {
	g.Stats.PeriodsElapsed++
	spread := g.spread.Count()
	if spread > g.Stats.MaxSpreadPerCPUs {
		g.Stats.MaxSpreadPerCPUs = spread
	}
	g.periodStart = g.ctl.eng.Now()
	// Carry overshoot debt: slices are charged at their end, so a group can
	// overrun its quota by up to one slice per CPU; the kernel claws that
	// back from the next period. Without the carry, coarse charging would
	// silently inflate the effective quota.
	q := g.Quota()
	if g.consumed > q {
		g.consumed -= q
	} else {
		g.consumed = 0
	}
	g.spread = topology.CPUSet{}
	wasThrottled := g.throttled
	if !wasThrottled && g.consumed == 0 && spread == 0 {
		// No activity in the elapsed period and no debt: idle the timer, as
		// the kernel's bandwidth slack timer does. The next Charge restarts
		// the period clock via ensurePeriod.
		return
	}
	g.schedulePeriodRefresh()
	if g.consumed >= q {
		// Debt alone exceeds the fresh quota: remain throttled.
		g.throttled = true
		return
	}
	g.throttled = false
	if nthr := g.churnThreads(); wasThrottled && nthr > 0 {
		dur := g.ctl.eng.Now() - g.throttledAt
		g.Stats.ThrottledTime += dur
		// Total churn of this unthrottle: per-thread refill cost scaled by
		// the group's working-set factor, capped by the per-CPU
		// slice-redistribution bound and the quota safety bound.
		scale := g.churnScale
		if o := g.ctl.P.ChurnScaleOverride; o > 0 {
			scale = o
		}
		if scale <= 0 {
			scale = 1
		}
		total := sim.Time(float64(g.ctl.P.UnthrottleThreadCost) * float64(nthr) * scale)
		if s := g.throttleSpread; s > spread {
			spread = s
		}
		if lim := sim.Time(int64(g.ctl.P.ChurnPerSpreadCPU) * int64(spread)); g.ctl.P.ChurnPerSpreadCPU > 0 && total > lim {
			total = lim
		}
		if f := g.ctl.P.ChurnQuotaFrac; f > 0 {
			if lim := sim.Time(f * float64(q)); total > lim {
				total = lim
			}
		}
		if sat := g.ctl.P.ChurnSaturation; sat > 0 && dur < sat {
			total = sim.Time(int64(total) * int64(dur) / int64(sat))
		}
		// The churn (bandwidth-slice redistribution, cold-cache refill) is
		// charged to the waking threads by the scheduler, where it also
		// consumes quota naturally through slice charging.
		g.Stats.UnthrottleChurn += total
		churn := total / sim.Time(nthr)
		if g.onUnthrottle != nil && churn > 0 {
			g.onUnthrottle(churn)
		}
	}
}

// Charge bills dur of CPU time consumed on cpu to the group and reports
// whether the group just hit its quota and must throttle.
func (g *Group) Charge(cpu int, dur sim.Time) (throttleNow bool) {
	g.Stats.QuotaConsumed += dur
	q := g.Quota()
	if q == 0 {
		return false
	}
	g.ensurePeriod()
	g.spread.Add(cpu)
	g.consumed += dur
	if !g.throttled && g.consumed >= q {
		g.throttled = true
		g.throttledAt = g.ctl.eng.Now()
		g.throttleSpread = g.spread.Count()
		g.Stats.Throttles++
		return true
	}
	return false
}

// ThrottleCost returns the resched-IPI cost of stopping the group, scaled by
// how many CPUs it is currently spread over.
func (g *Group) ThrottleCost() sim.Time {
	return sim.Time(int64(g.ctl.P.ThrottlePerSpreadCPU) * int64(g.spread.Count()))
}

// Stop cancels the group's timers (end of run).
func (g *Group) Stop() {
	if g.periodTimer.Bound() {
		g.periodTimer.Stop()
	}
}

// String describes the group configuration.
func (g *Group) String() string {
	mode := "pinned cpuset=" + g.CPUs.String()
	if g.CPUs.IsEmpty() {
		mode = fmt.Sprintf("vanilla quota=%.2f cores", g.QuotaCores)
	}
	return fmt.Sprintf("cgroup %s (%s)", g.Name, mode)
}
