// Command seedcalc prints the deterministic seeds an experiment cell uses.
package main

import "fmt"

func seedFor(base uint64, parts ...uint64) uint64 {
	h := base*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	for _, p := range parts {
		h ^= p + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
	}
	return h
}

func main() {
	// fig6: series index 2 = Vanilla VMCN, instance index 0 = xLarge
	for rep := 0; rep < 20; rep++ {
		fmt.Println(seedFor(42, 2, 0, uint64(rep)))
	}
}
