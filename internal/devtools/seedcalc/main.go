// Command seedcalc prints the deterministic seeds an experiment cell uses.
package main

import (
	"fmt"

	"repro/internal/sim"
)

func main() {
	// fig6: series index 2 = Vanilla VMCN, instance index 0 = xLarge
	for rep := 0; rep < 20; rep++ {
		fmt.Println(sim.Substream(42, 2, 0, uint64(rep)))
	}
}
