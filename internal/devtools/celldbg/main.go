// Command celldbg reproduces a single experiment cell for calibration
// debugging; flags select platform/mode/cores/seed.
package main

import (
	"flag"
	"fmt"

	"repro/internal/hypervisor"
	"repro/internal/machine"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

func main() {
	kind := flag.String("kind", "VMCN", "BM|VM|CN|VMCN")
	mode := flag.String("mode", "vanilla", "vanilla|pinned")
	cores := flag.Int("cores", 4, "instance size")
	seed := flag.Uint64("seed", 0, "seed")
	limit := flag.Float64("limit", 120, "sim seconds cap")
	flag.Parse()

	spec := platform.Spec{Cores: *cores}
	switch *kind {
	case "BM":
		spec.Kind = platform.BM
	case "VM":
		spec.Kind = platform.VM
	case "CN":
		spec.Kind = platform.CN
	default:
		spec.Kind = platform.VMCN
	}
	if *mode == "pinned" {
		spec.Mode = platform.Pinned
	}
	host := topology.PaperHost()
	d, err := platform.Deploy(spec, machine.HostDefaults(host, *seed), hypervisor.DefaultParams(), *seed)
	if err != nil {
		panic(err)
	}
	w := workload.DefaultNoSQL()
	env := workload.EnvFor(d.M, d.Group, d.Affinity, *cores)
	inst := w.Spawn(env)
	res := d.M.Run(sim.FromSeconds(*limit))
	b := res.Breakdown
	fmt.Printf("seed=%d metric=%.2f timedout=%v events=%d\n", *seed, inst.Metric(res), res.TimedOut, res.Events)
	fmt.Printf("useful=%.2f acct=%.2f churn=%.2f nested=%.2f wander=%.2f irq=%.2f virtio=%.2f mig=%.2f throttles=%d\n",
		b.UsefulWork.Seconds(), b.AcctTime.Seconds(), b.ChurnTime.Seconds(), b.NestedTime.Seconds(),
		b.WanderTime.Seconds(), b.IRQTime.Seconds(), b.VirtioTime.Seconds(), b.MigrationTime.Seconds(), b.Throttles)
	if d.Group != nil {
		fmt.Printf("group: %+v\n", d.Group.Stats)
	}
}
