// Command benchjson runs the repository's key micro- and macro-benchmarks
// and writes their results (ns/op, B/op, allocs/op) as a stable JSON file,
// so perf PRs can commit a baseline and later PRs can diff against it.
//
// Usage (from the repo root):
//
//	go run ./internal/devtools/benchjson                 # writes BENCH_PR3.json
//	go run ./internal/devtools/benchjson -out bench.json -benchtime 2s
//
//	# CI regression gate (what .github/workflows/ci.yml runs): measure once,
//	# then fail if anything regressed >30% ns/op against either committed
//	# baseline. The freshest baseline doubles as the machine-speed
//	# calibration for the stale one. -compare without an explicit -out never
//	# overwrites the committed baseline.
//	go run ./internal/devtools/benchjson -out bench-ci.json -benchtime 0.3s -count 3 \
//	    -compare BENCH_PR2.json -calibrate BENCH_PR3.json
//	go run ./internal/devtools/benchjson -in bench-ci.json -compare BENCH_PR3.json
//
//	# Scenario dispatch gate: the declarative engine's per-figure dispatch
//	# machinery (registry lookup, validation, workload resolution,
//	# fingerprint — BenchmarkScenarioDispatch) must cost <5% of the
//	# same-run end-to-end figure time. Same-run, µs-vs-ms: immune to
//	# cross-machine macro-benchmark noise, and missing names fail loudly.
//	go run ./internal/devtools/benchjson -in bench-ci.json \
//	    -fraction ScenarioDispatch=QuickFig3Serial:0.05
//
// The suite list is fixed to the benchmarks the perf acceptance criteria
// track: the event-kernel, scheduler and steal hot paths, CPU-set algebra,
// the trace-collector pipeline, the end-to-end quick figure run
// (QuickFig3Serial, now registry-driven like every figure), the
// scenario-dispatch machinery (ScenarioDispatch), and the trial store's
// warm-hit path vs. the in-memory memo (StoreHit/MemoHit, gated with
// -fraction StoreHit=MemoHit:1.10 — frac may exceed 1 for such
// near-equality assertions).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// suite is one `go test -bench` invocation: a package directory and the
// benchmarks to run there.
type suite struct {
	pkg       string
	pattern   string
	benchtime string // overrides the global -benchtime when non-empty
}

var suites = []suite{
	{pkg: ".", pattern: "^(BenchmarkEngineEvents|BenchmarkSchedulerSlice|BenchmarkCPUSetOps|BenchmarkTraceCollector)$"},
	// The idle-balancing fast path: one pick on a busy two-LLC host, the
	// empty-world probe the group-load index short-circuits, and the same
	// pick on the saturated 1024-CPU dual-socket host (the word-masked
	// scan / O(occupied sockets) scalability witness).
	{pkg: "./internal/sched", pattern: "^(BenchmarkStealScan|BenchmarkStealMiss|BenchmarkBigTopology)$"},
	// One full quick figure: the end-to-end number every micro-win must
	// eventually show up in. Six iterations (~150ms) per sample keep the
	// macro measurement's noise inside the 30% baseline gates.
	{pkg: "./internal/experiments", pattern: "^BenchmarkQuickFig3Serial$", benchtime: "6x"},
	// The declarative engine's dispatch machinery alone (no trials): the
	// -fraction gate holds it under 5% of the same-run QuickFig3Serial.
	{pkg: "./internal/experiments", pattern: "^BenchmarkScenarioDispatch$"},
	// The warm-replay path of a whole figure (every trial a memo hit, zero
	// simulations): the per-grid reassembly cost of million-trial sweeps.
	{pkg: "./internal/experiments", pattern: "^BenchmarkMillionTrialReplay$"},
	// The trial store's warm-hit path vs. the plain in-memory memo hit:
	// the -fraction gate holds the disk-backed Get within 10% of the memo
	// hit in the same run, so durability stays an open-time cost. The
	// fixed 1s benchtime (both are ~80ns/op, so ~10M iterations each)
	// keeps the two nanosecond-scale measurements stable enough for a
	// 10%-headroom same-run comparison on noisy CI runners.
	{pkg: "./internal/experiments", pattern: "^(BenchmarkMemoHit|BenchmarkStoreHit)$", benchtime: "1s"},
	// The sharded memo under GOMAXPROCS-way warm-key contention: the
	// -fraction gate holds the parallel per-op cost near the serial hit
	// (the pre-shard single-RWMutex table serialized here).
	{pkg: "./internal/experiments", pattern: "^BenchmarkMemoHitParallel$", benchtime: "1s"},
	// The daemon's full warm request path (decode, key, sharded read,
	// write) — the per-request cost bounding pinservd's warm throughput.
	{pkg: "./internal/serve", pattern: "^BenchmarkServeWarm$"},
	// The per-trial redeploy cost on a warm reuse arena: what a repetition
	// pays instead of a full platform-stack build (PR 10's tentpole).
	{pkg: "./internal/experiments", pattern: "^BenchmarkTrialReuse$"},
	// The store's group-commit append: one 64-record batch per op. Fixed
	// iteration count bounds the segment files the benchmark leaves in its
	// temp dir (~64 records × ~29 B × 10k iterations ≈ 18 MB).
	{pkg: "./internal/resultstore", pattern: "^BenchmarkStoreAppendBatch$", benchtime: "10000x"},
}

// Result is one benchmark's parsed measurements.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      int64   `json:"b_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Report is the file layout of BENCH_PR2.json.
type Report struct {
	GoVersion  string            `json:"go_version"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

// benchLine matches `BenchmarkName-8  123  456 ns/op  7 B/op  8 allocs/op`.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:\s+(\d+) B/op\s+(\d+) allocs/op)?`)

func main() {
	var (
		out       = flag.String("out", "BENCH_PR3.json", "output JSON path (empty = don't write)")
		in        = flag.String("in", "", "reuse results from a previous -out JSON instead of running benchmarks")
		benchtime = flag.String("benchtime", "1s", "go test -benchtime for the micro suites")
		count     = flag.Int("count", 1, "go test -count")
		compare   = flag.String("compare", "", "baseline JSON to diff against; regressions fail the run")
		calibrate = flag.String("calibrate", "", "same-code baseline JSON used to estimate the machine-speed factor for -compare")
		tolerance = flag.Float64("tolerance", 0.30, "ns/op regression fraction tolerated by -compare")
		fracList  = flag.String("fraction", "", "comma list of small=big:frac assertions — measured 'small' ns/op must stay ≤ frac × measured 'big' ns/op (same run); names absent from the measurements fail loudly")
		only      = flag.String("only", "", "comma list of benchmark names (without the Benchmark prefix) to run; suites with no selected benchmark are skipped, unknown names fail loudly")
		gateList  = flag.String("gate", "", "comma list of benchmark names whose -compare regressions fail the run; others are reported informationally (default: all fail)")
	)
	flag.Parse()
	fractions, err := parseFractions(*fracList)
	if err != nil {
		fatalf("fraction: %v", err)
	}
	gate := splitNames(*gateList)
	// Refreshing the committed baseline and gating against one are separate
	// intents: when -compare is requested and -out was not given explicitly,
	// don't write — otherwise a casual `benchjson -compare ...` would clobber
	// the committed BENCH_PR3.json with this machine's numbers.
	outSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "out" {
			outSet = true
		}
	})
	if *compare != "" && !outSet {
		*out = ""
	}

	rep := Report{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Benchmarks: map[string]Result{},
	}
	if *in != "" {
		// Reuse a previous run's measurements (e.g. the CI gate diffing one
		// measurement pass against two baselines).
		data, err := os.ReadFile(*in)
		if err != nil {
			fatalf("in: %v", err)
		}
		if err := json.Unmarshal(data, &rep); err != nil {
			fatalf("in %s: %v", *in, err)
		}
		if len(rep.Benchmarks) == 0 {
			fatalf("in %s: no benchmarks — the gate would pass vacuously", *in)
		}
		ok := checkFractions(rep, fractions)
		if *compare != "" && !compareAgainst(rep, *compare, *calibrate, *tolerance, gate) {
			ok = false
		}
		if !ok {
			os.Exit(1)
		}
		return
	}
	run, err := restrictSuites(suites, splitNames(*only))
	if err != nil {
		fatalf("only: %v", err)
	}
	for _, s := range run {
		bt := s.benchtime
		if bt == "" {
			bt = *benchtime
		}
		args := []string{"test", "-run", "^$", "-bench", s.pattern,
			"-benchmem", "-benchtime", bt, "-count", strconv.Itoa(*count), s.pkg}
		cmd := exec.Command("go", args...)
		var buf bytes.Buffer
		cmd.Stdout = &buf
		cmd.Stderr = os.Stderr
		fmt.Fprintf(os.Stderr, "benchjson: go %s\n", strings.Join(args, " "))
		if err := cmd.Run(); err != nil {
			fatalf("%s: %v", s.pkg, err)
		}
		if err := parseInto(rep.Benchmarks, buf.String()); err != nil {
			fatalf("%s: %v", s.pkg, err)
		}
	}
	if len(rep.Benchmarks) == 0 {
		fatalf("no benchmark results parsed")
	}
	if *out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatalf("marshal: %v", err)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fatalf("write %s: %v", *out, err)
		}
		fmt.Fprintf(os.Stderr, "benchjson: wrote %s (%d benchmarks)\n", *out, len(rep.Benchmarks))
	}
	ok := checkFractions(rep, fractions)
	if *compare != "" && !compareAgainst(rep, *compare, *calibrate, *tolerance, gate) {
		ok = false
	}
	if !ok {
		os.Exit(1)
	}
}

// splitNames parses a comma list into a set, dropping empties.
func splitNames(s string) map[string]bool {
	out := map[string]bool{}
	for _, n := range strings.Split(s, ",") {
		if n = strings.TrimSpace(n); n != "" {
			out[n] = true
		}
	}
	return out
}

// suitePattern matches the fixed shape of the suite patterns above:
// ^BenchmarkName$ or ^(BenchmarkA|BenchmarkB)$.
func suiteBenchmarks(pattern string) []string {
	inner := strings.TrimSuffix(strings.TrimPrefix(pattern, "^"), "$")
	inner = strings.TrimSuffix(strings.TrimPrefix(inner, "("), ")")
	return strings.Split(inner, "|")
}

// restrictSuites narrows the suite list to the -only selection, rewriting
// each suite's pattern to just its selected benchmarks. Unknown names are
// an error — a typo'd -only must not pass a narrower gate than intended.
func restrictSuites(all []suite, only map[string]bool) ([]suite, error) {
	if len(only) == 0 {
		return all, nil
	}
	seen := map[string]bool{}
	var out []suite
	for _, s := range all {
		var keep []string
		for _, b := range suiteBenchmarks(s.pattern) {
			name := strings.TrimPrefix(b, "Benchmark")
			if only[name] {
				keep = append(keep, b)
				seen[name] = true
			}
		}
		if len(keep) == 0 {
			continue
		}
		s.pattern = "^(" + strings.Join(keep, "|") + ")$"
		out = append(out, s)
	}
	for name := range only {
		if !seen[name] {
			return nil, fmt.Errorf("benchmark %q is not in the suite list", name)
		}
	}
	return out, nil
}

// fractionCheck asserts one benchmark stays a small fraction of another in
// the same measurement run (the scenario-dispatch gate).
type fractionCheck struct {
	small, big string
	frac       float64
}

// parseFractions parses "small=big:frac,...".
func parseFractions(s string) ([]fractionCheck, error) {
	var out []fractionCheck
	for _, item := range strings.Split(s, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		small, rest, ok := strings.Cut(item, "=")
		big, fracStr, ok2 := strings.Cut(rest, ":")
		if !ok || !ok2 || small == "" || big == "" {
			return nil, fmt.Errorf("bad -fraction %q (want small=big:frac)", item)
		}
		// frac may exceed 1: near-equality gates (e.g. StoreHit within 10%
		// of MemoHit, frac 1.10) use the same mechanism as small-fraction
		// gates.
		frac, err := strconv.ParseFloat(fracStr, 64)
		if err != nil || frac <= 0 {
			return nil, fmt.Errorf("bad -fraction %q: frac must be > 0", item)
		}
		out = append(out, fractionCheck{small: small, big: big, frac: frac})
	}
	return out, nil
}

// checkFractions applies the -fraction assertions to one run's
// measurements. Both names must be present — a renamed or dropped
// benchmark fails the gate instead of silently vacating it.
func checkFractions(rep Report, checks []fractionCheck) bool {
	ok := true
	for _, c := range checks {
		small, haveSmall := rep.Benchmarks[c.small]
		big, haveBig := rep.Benchmarks[c.big]
		switch {
		case !haveSmall || !haveBig:
			fmt.Printf("benchjson: fraction %s=%s:%.2f — benchmark missing from measurements (have %s) — failing\n",
				c.small, c.big, c.frac, strings.Join(sortedNames(rep.Benchmarks), ", "))
			ok = false
		case big.NsPerOp <= 0 || small.NsPerOp > c.frac*big.NsPerOp:
			fmt.Printf("benchjson: fraction gate %s (%.0f ns/op) > %.0f%% of %s (%.0f ns/op) — failing\n",
				c.small, small.NsPerOp, c.frac*100, c.big, big.NsPerOp)
			ok = false
		default:
			fmt.Printf("benchjson: fraction gate %s (%.0f ns/op) ≤ %.0f%% of %s (%.0f ns/op) — ok (%.3f%%)\n",
				c.small, small.NsPerOp, c.frac*100, c.big, big.NsPerOp, 100*small.NsPerOp/big.NsPerOp)
		}
	}
	return ok
}

// sortedNames lists a measurement map's keys, sorted.
func sortedNames(m map[string]Result) []string {
	out := make([]string, 0, len(m))
	for name := range m {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// compareAgainst diffs this run's ns/op against a committed baseline file
// and reports whether the run is acceptable: every benchmark present in
// both must stay within (1 + tolerance) × baseline ns/op, after dividing
// out the machine-speed factor. The baseline was captured on one specific
// machine while CI runners vary widely in single-core speed, so absolute
// ns/op comparisons would gate on hardware, not code.
//
// The factor comes from the calibration file when given: a baseline
// captured from the *same code* (the freshest committed BENCH_*.json), so
// the now/calibration ratios measure machine speed alone, uncontaminated
// by code improvements since an older baseline. Without a calibration
// file the factor falls back to the now/base ratios of the comparison
// itself — correct when the baseline is same-code, but unable to tell a
// slow runner from non-uniform code speedups against a stale baseline.
// Either way the factor is the lower-quartile ratio clamped to at least
// 1: a uniform slowdown (a slower runner) moves the quartile and is
// absorbed, a genuine regression — even one hitting half the suite —
// leaves the quartile anchored at the unregressed benchmarks and still
// fails, and the clamp keeps code-side wins from inflating the bar. With
// fewer than three shared benchmarks there is no pack to infer speed
// from and raw ratios are used. Benchmarks present on one side only are
// listed informationally and never fail the gate.
//
// When gate is non-empty, only the named benchmarks can fail the run —
// the rest are still printed for context — and a gated name missing from
// either side fails loudly instead of vacating the gate.
func compareAgainst(rep Report, path, calibratePath string, tolerance float64, gate map[string]bool) bool {
	data, err := os.ReadFile(path)
	if err != nil {
		fatalf("compare: %v", err)
	}
	var base Report
	if err := json.Unmarshal(data, &base); err != nil {
		fatalf("compare %s: %v", path, err)
	}
	calib := &base
	if calibratePath != "" {
		data, err := os.ReadFile(calibratePath)
		if err != nil {
			fatalf("calibrate: %v", err)
		}
		var c Report
		if err := json.Unmarshal(data, &c); err != nil {
			fatalf("calibrate %s: %v", calibratePath, err)
		}
		calib = &c
	}
	names := make([]string, 0, len(rep.Benchmarks))
	var ratios []float64
	for name := range rep.Benchmarks {
		names = append(names, name)
		if ref, inCalib := calib.Benchmarks[name]; inCalib && ref.NsPerOp > 0 {
			ratios = append(ratios, rep.Benchmarks[name].NsPerOp/ref.NsPerOp)
		}
	}
	sort.Strings(names)
	scale := 1.0
	if len(ratios) >= 3 {
		sort.Float64s(ratios)
		if q := ratios[len(ratios)/4]; q > 1 {
			scale = q
		}
	}
	ok := true
	fmt.Printf("benchjson: comparing against %s (tolerance +%.0f%% ns/op, machine factor %.2fx)\n",
		path, tolerance*100, scale)
	fmt.Printf("%-24s %14s %14s %8s\n", "benchmark", "base ns/op", "now ns/op", "delta")
	for _, name := range names {
		now := rep.Benchmarks[name]
		old, inBase := base.Benchmarks[name]
		if !inBase {
			fmt.Printf("%-24s %14s %14.1f %8s\n", name, "-", now.NsPerOp, "new")
			continue
		}
		delta := now.NsPerOp/old.NsPerOp - 1
		verdict := fmt.Sprintf("%+.1f%%", delta*100)
		if now.NsPerOp/old.NsPerOp > scale*(1+tolerance) {
			if len(gate) == 0 || gate[name] {
				verdict += " REGRESSION"
				ok = false
			} else {
				verdict += " (ungated)"
			}
		}
		fmt.Printf("%-24s %14.1f %14.1f %8s\n", name, old.NsPerOp, now.NsPerOp, verdict)
	}
	for name := range base.Benchmarks {
		if _, stillRun := rep.Benchmarks[name]; !stillRun {
			fmt.Printf("%-24s (baseline only; not run)\n", name)
		}
	}
	for name := range gate {
		_, inNow := rep.Benchmarks[name]
		_, inBase := base.Benchmarks[name]
		if !inNow || !inBase {
			fmt.Printf("benchjson: -gate %s missing from %s — failing\n",
				name, map[bool]string{true: "the baseline", false: "this run's measurements"}[inNow])
			ok = false
		}
	}
	if !ok {
		fmt.Printf("benchjson: ns/op regression beyond +%.0f%% — failing\n", tolerance*100)
	}
	return ok
}

// parseInto extracts every benchmark line of one `go test -bench` output.
// Multiple -count runs of the same benchmark keep the best (lowest ns/op)
// run, the usual noise-rejection rule for before/after comparisons.
func parseInto(into map[string]Result, output string) error {
	found := 0
	for _, line := range strings.Split(output, "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		name := strings.TrimPrefix(m[1], "Benchmark")
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return fmt.Errorf("bad ns/op in %q: %v", line, err)
		}
		r := Result{NsPerOp: ns}
		if m[3] != "" {
			r.BPerOp, _ = strconv.ParseInt(m[3], 10, 64)
			r.AllocsPerOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		if prev, ok := into[name]; !ok || r.NsPerOp < prev.NsPerOp {
			into[name] = r
		}
		found++
	}
	if found == 0 {
		return fmt.Errorf("no benchmark lines in output:\n%s", output)
	}
	return nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchjson: "+format+"\n", args...)
	os.Exit(1)
}
