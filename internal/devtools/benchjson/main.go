// Command benchjson runs the repository's key micro- and macro-benchmarks
// and writes their results (ns/op, B/op, allocs/op) as a stable JSON file,
// so perf PRs can commit a baseline and later PRs can diff against it.
//
// Usage (from the repo root):
//
//	go run ./internal/devtools/benchjson                 # writes BENCH_PR2.json
//	go run ./internal/devtools/benchjson -out bench.json -benchtime 2s
//
// The suite list is fixed to the benchmarks the perf acceptance criteria
// track: the event-kernel and scheduler hot paths, CPU-set algebra, and one
// end-to-end quick figure run.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

// suite is one `go test -bench` invocation: a package directory and the
// benchmarks to run there.
type suite struct {
	pkg       string
	pattern   string
	benchtime string // overrides the global -benchtime when non-empty
}

var suites = []suite{
	{pkg: ".", pattern: "^(BenchmarkEngineEvents|BenchmarkSchedulerSlice|BenchmarkCPUSetOps)$"},
	// One full quick figure: the end-to-end number every micro-win must
	// eventually show up in. A single iteration takes ~1.5s, so cap it.
	{pkg: "./internal/experiments", pattern: "^BenchmarkQuickFig3Serial$", benchtime: "2x"},
}

// Result is one benchmark's parsed measurements.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      int64   `json:"b_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Report is the file layout of BENCH_PR2.json.
type Report struct {
	GoVersion  string            `json:"go_version"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

// benchLine matches `BenchmarkName-8  123  456 ns/op  7 B/op  8 allocs/op`.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:\s+(\d+) B/op\s+(\d+) allocs/op)?`)

func main() {
	var (
		out       = flag.String("out", "BENCH_PR2.json", "output JSON path")
		benchtime = flag.String("benchtime", "1s", "go test -benchtime for the micro suites")
		count     = flag.Int("count", 1, "go test -count")
	)
	flag.Parse()

	rep := Report{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Benchmarks: map[string]Result{},
	}
	for _, s := range suites {
		bt := s.benchtime
		if bt == "" {
			bt = *benchtime
		}
		args := []string{"test", "-run", "^$", "-bench", s.pattern,
			"-benchmem", "-benchtime", bt, "-count", strconv.Itoa(*count), s.pkg}
		cmd := exec.Command("go", args...)
		var buf bytes.Buffer
		cmd.Stdout = &buf
		cmd.Stderr = os.Stderr
		fmt.Fprintf(os.Stderr, "benchjson: go %s\n", strings.Join(args, " "))
		if err := cmd.Run(); err != nil {
			fatalf("%s: %v", s.pkg, err)
		}
		if err := parseInto(rep.Benchmarks, buf.String()); err != nil {
			fatalf("%s: %v", s.pkg, err)
		}
	}
	if len(rep.Benchmarks) == 0 {
		fatalf("no benchmark results parsed")
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatalf("marshal: %v", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatalf("write %s: %v", *out, err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %s (%d benchmarks)\n", *out, len(rep.Benchmarks))
}

// parseInto extracts every benchmark line of one `go test -bench` output.
// Multiple -count runs of the same benchmark keep the best (lowest ns/op)
// run, the usual noise-rejection rule for before/after comparisons.
func parseInto(into map[string]Result, output string) error {
	found := 0
	for _, line := range strings.Split(output, "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		name := strings.TrimPrefix(m[1], "Benchmark")
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return fmt.Errorf("bad ns/op in %q: %v", line, err)
		}
		r := Result{NsPerOp: ns}
		if m[3] != "" {
			r.BPerOp, _ = strconv.ParseInt(m[3], 10, 64)
			r.AllocsPerOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		if prev, ok := into[name]; !ok || r.NsPerOp < prev.NsPerOp {
			into[name] = r
		}
		found++
	}
	if found == 0 {
		return fmt.Errorf("no benchmark lines in output:\n%s", output)
	}
	return nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchjson: "+format+"\n", args...)
	os.Exit(1)
}
