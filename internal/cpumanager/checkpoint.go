package cpumanager

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/topology"
)

// Checkpoint is the serialized ledger, mirroring kubelet's
// cpu_manager_state file: the policy name, the reserved set and one
// cpu-list entry per live assignment. A manager restored from a checkpoint
// continues exactly where the previous one stopped — pinned containers keep
// their CPUs across a node-agent restart.
type Checkpoint struct {
	PolicyName string            `json:"policyName"`
	Reserved   string            `json:"reservedCPUs"`
	Entries    map[string]string `json:"entries"`
}

// policyName identifies this package's (only) policy in checkpoints.
const policyName = "static"

// Checkpoint captures the manager's current state.
func (m *Manager) Checkpoint() Checkpoint {
	c := Checkpoint{
		PolicyName: policyName,
		Reserved:   m.reserved.String(),
		Entries:    make(map[string]string, len(m.assignments)),
	}
	for name, set := range m.assignments {
		c.Entries[name] = set.String()
	}
	return c
}

// WriteCheckpoint serializes the ledger as JSON.
func (m *Manager) WriteCheckpoint(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m.Checkpoint())
}

// Restore rebuilds a manager for topo from a checkpoint, validating that
// the recorded sets still fit the host: every entry within the host's
// CPUs, pairwise disjoint, and disjoint from the reserved set.
func Restore(topo *topology.Topology, r io.Reader) (*Manager, error) {
	var c Checkpoint
	if err := json.NewDecoder(r).Decode(&c); err != nil {
		return nil, fmt.Errorf("cpumanager: corrupt checkpoint: %w", err)
	}
	if c.PolicyName != policyName {
		return nil, fmt.Errorf("cpumanager: checkpoint written by policy %q, want %q", c.PolicyName, policyName)
	}
	reserved, err := topology.ParseList(c.Reserved)
	if err != nil {
		return nil, fmt.Errorf("cpumanager: reserved set: %w", err)
	}
	m, err := New(topo, reserved)
	if err != nil {
		return nil, err
	}
	var union topology.CPUSet
	for name, list := range c.Entries {
		set, err := topology.ParseList(list)
		if err != nil {
			return nil, fmt.Errorf("cpumanager: entry %q: %w", name, err)
		}
		if set.IsEmpty() {
			return nil, fmt.Errorf("cpumanager: entry %q is empty", name)
		}
		if !set.IsSubsetOf(topo.AllCPUs()) {
			return nil, fmt.Errorf("cpumanager: entry %q (%v) outside host CPUs — topology changed?", name, set)
		}
		if !set.Intersect(reserved).IsEmpty() {
			return nil, fmt.Errorf("cpumanager: entry %q overlaps the reserved set", name)
		}
		if !set.Intersect(union).IsEmpty() {
			return nil, fmt.Errorf("cpumanager: entry %q overlaps another assignment", name)
		}
		union = union.Union(set)
		m.assignments[name] = set
	}
	m.free = m.free.Difference(union)
	return m, nil
}
