package cpumanager

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/topology"
)

func TestCheckpointRoundTrip(t *testing.T) {
	topo := topology.PaperHost()
	m, _ := New(topo, topology.NewCPUSet(0))
	a, _ := m.Allocate(Request{Name: "cassandra", CPUs: 32, NearCPU: 2})
	b, _ := m.Allocate(Request{Name: "web", CPUs: 16, NearCPU: -1})

	var buf bytes.Buffer
	if err := m.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Restore(topo, &buf)
	if err != nil {
		t.Fatal(err)
	}
	for name, want := range map[string]topology.CPUSet{"cassandra": a, "web": b} {
		got, ok := back.Assignment(name)
		if !ok || !got.Equal(want) {
			t.Fatalf("%s: %v, want %v", name, got, want)
		}
	}
	if !back.SharedPool().Equal(m.SharedPool()) {
		t.Fatal("shared pool not restored")
	}
	if !back.Reserved().Equal(m.Reserved()) {
		t.Fatal("reserved set not restored")
	}
	// The restored manager keeps allocating without overlap.
	c, err := back.Allocate(Request{Name: "extra", CPUs: 8, NearCPU: -1})
	if err != nil {
		t.Fatal(err)
	}
	if !c.Intersect(a.Union(b)).IsEmpty() {
		t.Fatal("post-restore allocation overlaps checkpointed entries")
	}
}

func TestRestoreRejectsBadCheckpoints(t *testing.T) {
	topo := topology.SmallHost16()
	cases := map[string]string{
		"corrupt json":      `{"policyName": "static"`,
		"wrong policy":      `{"policyName": "none", "reservedCPUs": "", "entries": {}}`,
		"bad reserved":      `{"policyName": "static", "reservedCPUs": "zz", "entries": {}}`,
		"bad entry":         `{"policyName": "static", "reservedCPUs": "", "entries": {"a": "5-2"}}`,
		"empty entry":       `{"policyName": "static", "reservedCPUs": "", "entries": {"a": ""}}`,
		"outside host":      `{"policyName": "static", "reservedCPUs": "", "entries": {"a": "900"}}`,
		"overlaps reserved": `{"policyName": "static", "reservedCPUs": "0-1", "entries": {"a": "1-2"}}`,
		"overlapping":       `{"policyName": "static", "reservedCPUs": "", "entries": {"a": "1-4", "b": "4-6"}}`,
		"reserves all":      `{"policyName": "static", "reservedCPUs": "0-15", "entries": {}}`,
	}
	for name, payload := range cases {
		if _, err := Restore(topo, strings.NewReader(payload)); err == nil {
			t.Errorf("%s: Restore accepted %s", name, payload)
		}
	}
}

func TestRestoreOnSmallerTopologyFails(t *testing.T) {
	big := topology.PaperHost()
	m, _ := New(big, topology.CPUSet{})
	if _, err := m.Allocate(Request{Name: "wide", CPUs: 64, NearCPU: -1}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Restore(topology.SmallHost16(), &buf); err == nil {
		t.Fatal("restoring a 64-CPU assignment onto a 16-CPU host must fail")
	}
}

// Property: checkpoint→restore is the identity on the ledger for any
// sequence of allocations.
func TestCheckpointRoundTripProperty(t *testing.T) {
	topo, err := topology.New("t", 2, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	f := func(ops []uint8) bool {
		m, err := New(topo, topology.NewCPUSet(0))
		if err != nil {
			return false
		}
		names := []string{"a", "b", "c", "d"}
		for _, op := range ops {
			name := names[int(op>>4)%len(names)]
			if op%2 == 0 {
				m.Allocate(Request{Name: name, CPUs: int(op>>1)%5 + 1, NearCPU: -1})
			} else {
				m.Release(name)
			}
		}
		var buf bytes.Buffer
		if err := m.WriteCheckpoint(&buf); err != nil {
			return false
		}
		back, err := Restore(topo, &buf)
		if err != nil {
			return false
		}
		want, got := m.Assignments(), back.Assignments()
		if len(want) != len(got) {
			return false
		}
		for k, v := range want {
			if !got[k].Equal(v) {
				return false
			}
		}
		return back.SharedPool().Equal(m.SharedPool())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
