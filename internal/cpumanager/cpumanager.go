// Package cpumanager automates the paper's manual pinning workflow: it
// implements a Kubernetes-kubelet-style *static CPU manager policy* over a
// host topology, handing out exclusive, topology-aligned cpusets to
// containers the way a cloud operator would hand-pick them (§II-D, §VI best
// practices), extended with the paper's IO-affinity finding: an allocation
// can name a preferred CPU (e.g. the disk IRQ home), and the manager packs
// the assignment onto that socket first (§III-B3: pin "based on IO
// affinity").
//
// Allocation follows kubelet's takeByTopology order: whole sockets first,
// then whole physical cores, then leftover SMT threads — preferring threads
// whose siblings the assignment already owns, so torn cores are minimized.
// Everything not exclusively assigned (minus the system-reserved set) is the
// shared pool where unpinned (vanilla) workloads float.
package cpumanager

import (
	"fmt"
	"sort"

	"repro/internal/topology"
)

// Request asks for an exclusive cpuset.
type Request struct {
	// Name identifies the assignment (container/pod name). Must be unique
	// among live assignments.
	Name string
	// CPUs is the number of exclusive logical CPUs (kubelet grants exclusive
	// CPUs only to integer requests; fractional requests belong in the
	// shared pool).
	CPUs int
	// NearCPU, when >= 0, biases the allocation toward the socket containing
	// this CPU — typically an IO channel's IRQ home, per the paper's
	// IO-affinity pinning practice. -1 means no preference.
	NearCPU int
}

// Manager owns the exclusive-CPU ledger of one host.
type Manager struct {
	topo        *topology.Topology
	reserved    topology.CPUSet
	free        topology.CPUSet
	assignments map[string]topology.CPUSet
}

// New returns a manager for topo. reserved CPUs (the kubelet's
// --reserved-cpus analog: system daemons, IRQ handling) are never assigned
// and not part of the shared pool.
func New(topo *topology.Topology, reserved topology.CPUSet) (*Manager, error) {
	if topo == nil {
		return nil, fmt.Errorf("cpumanager: nil topology")
	}
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	all := topo.AllCPUs()
	if !reserved.IsSubsetOf(all) {
		return nil, fmt.Errorf("cpumanager: reserved set %v not within host CPUs", reserved)
	}
	free := all.Difference(reserved)
	if free.IsEmpty() {
		return nil, fmt.Errorf("cpumanager: reservation leaves no allocatable CPUs")
	}
	return &Manager{
		topo:        topo,
		reserved:    reserved,
		free:        free,
		assignments: make(map[string]topology.CPUSet),
	}, nil
}

// Topology returns the manager's host topology.
func (m *Manager) Topology() *topology.Topology { return m.topo }

// Reserved returns the system-reserved set.
func (m *Manager) Reserved() topology.CPUSet { return m.reserved }

// SharedPool returns the CPUs not exclusively assigned and not reserved:
// where vanilla (quota-provisioned) workloads float.
func (m *Manager) SharedPool() topology.CPUSet { return m.free }

// Assignment returns the cpuset held by name.
func (m *Manager) Assignment(name string) (topology.CPUSet, bool) {
	s, ok := m.assignments[name]
	return s, ok
}

// Assignments returns a copy of the ledger.
func (m *Manager) Assignments() map[string]topology.CPUSet {
	out := make(map[string]topology.CPUSet, len(m.assignments))
	for k, v := range m.assignments {
		out[k] = v
	}
	return out
}

// Allocate grants an exclusive, topology-aligned cpuset for req.
func (m *Manager) Allocate(req Request) (topology.CPUSet, error) {
	if req.Name == "" {
		return topology.CPUSet{}, fmt.Errorf("cpumanager: empty assignment name")
	}
	if _, dup := m.assignments[req.Name]; dup {
		return topology.CPUSet{}, fmt.Errorf("cpumanager: %q already holds an assignment", req.Name)
	}
	if req.CPUs <= 0 {
		return topology.CPUSet{}, fmt.Errorf("cpumanager: request for %d CPUs; fractional/zero requests belong in the shared pool", req.CPUs)
	}
	if req.CPUs > m.free.Count() {
		return topology.CPUSet{}, fmt.Errorf("cpumanager: want %d exclusive CPUs, only %d free", req.CPUs, m.free.Count())
	}
	got := m.take(req.CPUs, req.NearCPU)
	if got.Count() != req.CPUs {
		// take() only draws from free and free.Count() >= req.CPUs.
		panic(fmt.Sprintf("cpumanager: allocation drew %d of %d CPUs", got.Count(), req.CPUs))
	}
	m.free = m.free.Difference(got)
	m.assignments[req.Name] = got
	return got, nil
}

// Release returns name's CPUs to the shared pool.
func (m *Manager) Release(name string) error {
	s, ok := m.assignments[name]
	if !ok {
		return fmt.Errorf("cpumanager: no assignment %q", name)
	}
	delete(m.assignments, name)
	m.free = m.free.Union(s)
	return nil
}

// socketOrder ranks sockets for an allocation: the near socket first, then
// the rest in ascending index.
func (m *Manager) socketOrder(near int) []int {
	order := make([]int, m.topo.Sockets)
	for i := range order {
		order[i] = i
	}
	if near >= 0 && near < m.topo.NumCPUs() {
		ns := m.topo.Socket(near)
		sort.SliceStable(order, func(i, j int) bool {
			di, dj := socketDist(order[i], ns), socketDist(order[j], ns)
			return di < dj
		})
	}
	return order
}

// socketDist is the allocation preference distance between sockets (the
// simulated hosts have symmetric interconnects, so index distance stands in
// for NUMA hops).
func socketDist(s, near int) int {
	d := s - near
	if d < 0 {
		d = -d
	}
	return d
}

// take implements the takeByTopology descent over free CPUs.
func (m *Manager) take(n, near int) topology.CPUSet {
	var got topology.CPUSet
	remaining := n
	order := m.socketOrder(near)
	tpc := m.topo.ThreadsPerCore
	perSocket := m.topo.CoresPerSocket * tpc

	// Phase 1: whole sockets.
	for _, s := range order {
		if remaining < perSocket {
			break
		}
		scpus := m.topo.SocketCPUs(s)
		if scpus.IsSubsetOf(m.free) && got.Intersect(scpus).IsEmpty() {
			got = got.Union(scpus)
			remaining -= perSocket
		}
	}

	// Phase 2: whole physical cores, near sockets first.
	if remaining >= tpc {
		for _, s := range order {
			if remaining < tpc {
				break
			}
			base := s * m.topo.CoresPerSocket
			for core := 0; core < m.topo.CoresPerSocket && remaining >= tpc; core++ {
				sibs := m.coreCPUs(base + core)
				if !got.Intersect(sibs).IsEmpty() {
					continue // already taken via phase 1
				}
				if sibs.IsSubsetOf(m.free) {
					got = got.Union(sibs)
					remaining -= tpc
				}
			}
		}
	}

	// Phase 3: leftover threads. Prefer (a) siblings of CPUs already in this
	// assignment, (b) threads on cores some other assignment already tore
	// (don't break fresh cores), (c) any free CPU — all in near-socket order.
	if remaining > 0 {
		cands := m.threadCandidates(got, order)
		for _, c := range cands {
			if remaining == 0 {
				break
			}
			if got.Contains(c) {
				continue
			}
			got.Add(c)
			remaining--
		}
	}
	return got
}

// coreCPUs returns the logical CPUs of a global physical-core index.
func (m *Manager) coreCPUs(core int) topology.CPUSet {
	lo := core * m.topo.ThreadsPerCore
	return topology.Range(lo, lo+m.topo.ThreadsPerCore-1)
}

// threadCandidates orders the free CPUs for phase-3 single-thread draws.
func (m *Manager) threadCandidates(got topology.CPUSet, order []int) []int {
	rank := func(cpu int) (int, int, int) {
		sibs := m.topo.SiblingsOf(cpu)
		class := 2
		switch {
		case !sibs.Intersect(got).IsEmpty():
			class = 0 // completes a core this assignment already touches
		case !sibs.IsSubsetOf(m.free):
			class = 1 // core already torn by someone else
		}
		socketRank := 0
		for i, s := range order {
			if s == m.topo.Socket(cpu) {
				socketRank = i
				break
			}
		}
		return class, socketRank, cpu
	}
	var cands []int
	m.free.ForEach(func(c int) bool {
		cands = append(cands, c)
		return true
	})
	sort.Slice(cands, func(i, j int) bool {
		ci, si, ii := rank(cands[i])
		cj, sj, ij := rank(cands[j])
		if ci != cj {
			return ci < cj
		}
		if si != sj {
			return si < sj
		}
		return ii < ij
	})
	return cands
}

// String summarizes the ledger.
func (m *Manager) String() string {
	return fmt.Sprintf("cpumanager: %d/%d CPUs free, %d assignments, reserved %v",
		m.free.Count(), m.topo.NumCPUs(), len(m.assignments), m.reserved)
}
