package cpumanager

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/topology"
)

func mustTopo(t *testing.T, sockets, cores, threads int) *topology.Topology {
	t.Helper()
	topo, err := topology.New("t", sockets, cores, threads)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, topology.CPUSet{}); err == nil {
		t.Fatal("nil topology must error")
	}
	topo := mustTopo(t, 1, 2, 1)
	if _, err := New(topo, topology.NewCPUSet(99)); err == nil {
		t.Fatal("out-of-range reservation must error")
	}
	if _, err := New(topo, topology.NewCPUSet(0, 1)); err == nil {
		t.Fatal("reserving everything must error")
	}
	m, err := New(topo, topology.NewCPUSet(0))
	if err != nil {
		t.Fatal(err)
	}
	if m.SharedPool().Contains(0) {
		t.Fatal("reserved CPU leaked into the shared pool")
	}
}

func TestAllocateWholeSocket(t *testing.T) {
	topo := mustTopo(t, 4, 14, 2) // the paper host
	m, err := New(topo, topology.CPUSet{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Allocate(Request{Name: "db", CPUs: 28, NearCPU: -1})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(topo.SocketCPUs(0)) {
		t.Fatalf("28-CPU request on an empty 28-CPU-socket host must take socket 0, got %v", got)
	}
}

func TestAllocateNearIRQSocket(t *testing.T) {
	topo := mustTopo(t, 4, 14, 2)
	m, _ := New(topo, topology.CPUSet{})
	// Prefer the socket holding CPU 60 (socket 2).
	got, err := m.Allocate(Request{Name: "cassandra", CPUs: 8, NearCPU: 60})
	if err != nil {
		t.Fatal(err)
	}
	if s := topo.SocketsSpanned(got); s != 1 {
		t.Fatalf("8 CPUs must fit one socket, spanned %d", s)
	}
	if topo.Socket(got.First()) != 2 {
		t.Fatalf("allocation should sit on the IRQ socket 2, got socket %d", topo.Socket(got.First()))
	}
}

func TestAllocateFullCoresBeforeSiblings(t *testing.T) {
	topo := mustTopo(t, 2, 4, 2) // 16 CPUs
	m, _ := New(topo, topology.CPUSet{})
	got, err := m.Allocate(Request{Name: "enc", CPUs: 4, NearCPU: -1})
	if err != nil {
		t.Fatal(err)
	}
	// 4 CPUs = 2 whole cores: no torn cores.
	cores := map[int]int{}
	got.ForEach(func(c int) bool {
		cores[topo.PhysicalCore(c)]++
		return true
	})
	if len(cores) != 2 {
		t.Fatalf("want 2 whole cores, got spread over %d: %v", len(cores), got)
	}
	for core, n := range cores {
		if n != topo.ThreadsPerCore {
			t.Fatalf("core %d torn: %d of %d threads", core, n, topo.ThreadsPerCore)
		}
	}
}

func TestAllocateOddRequestPrefersTornCores(t *testing.T) {
	topo := mustTopo(t, 1, 4, 2) // 8 CPUs
	m, _ := New(topo, topology.CPUSet{})
	a, err := m.Allocate(Request{Name: "a", CPUs: 3, NearCPU: -1})
	if err != nil {
		t.Fatal(err)
	}
	// 3 CPUs = one whole core + one thread; the extra thread tears one core.
	b, err := m.Allocate(Request{Name: "b", CPUs: 1, NearCPU: -1})
	if err != nil {
		t.Fatal(err)
	}
	// b's single CPU should complete the torn core rather than tear a new one.
	bSibs := topo.SiblingsOf(b.First())
	if bSibs.Intersect(a).IsEmpty() {
		t.Fatalf("b=%v should reuse a's torn core (a=%v)", b, a)
	}
}

func TestAllocateErrors(t *testing.T) {
	topo := mustTopo(t, 1, 2, 2)
	m, _ := New(topo, topology.CPUSet{})
	if _, err := m.Allocate(Request{Name: "", CPUs: 1}); err == nil {
		t.Fatal("empty name")
	}
	if _, err := m.Allocate(Request{Name: "x", CPUs: 0}); err == nil {
		t.Fatal("zero request")
	}
	if _, err := m.Allocate(Request{Name: "x", CPUs: 5}); err == nil {
		t.Fatal("oversized request")
	}
	if _, err := m.Allocate(Request{Name: "x", CPUs: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Allocate(Request{Name: "x", CPUs: 1}); err == nil {
		t.Fatal("duplicate name")
	}
}

func TestReleaseRestoresPool(t *testing.T) {
	topo := mustTopo(t, 2, 2, 2)
	reserved := topology.NewCPUSet(0)
	m, _ := New(topo, reserved)
	before := m.SharedPool()
	got, err := m.Allocate(Request{Name: "job", CPUs: 4, NearCPU: -1})
	if err != nil {
		t.Fatal(err)
	}
	if m.SharedPool().Count() != before.Count()-4 {
		t.Fatal("pool not debited")
	}
	if !m.SharedPool().Intersect(got).IsEmpty() {
		t.Fatal("allocated CPUs still in pool")
	}
	if err := m.Release("job"); err != nil {
		t.Fatal(err)
	}
	if !m.SharedPool().Equal(before) {
		t.Fatalf("pool not restored: %v vs %v", m.SharedPool(), before)
	}
	if err := m.Release("job"); err == nil {
		t.Fatal("double release must error")
	}
}

func TestAssignmentsLedger(t *testing.T) {
	topo := mustTopo(t, 1, 4, 1)
	m, _ := New(topo, topology.CPUSet{})
	a, _ := m.Allocate(Request{Name: "a", CPUs: 1, NearCPU: -1})
	b, _ := m.Allocate(Request{Name: "b", CPUs: 2, NearCPU: -1})
	if got, ok := m.Assignment("a"); !ok || !got.Equal(a) {
		t.Fatal("ledger lookup a")
	}
	all := m.Assignments()
	if len(all) != 2 || !all["b"].Equal(b) {
		t.Fatal("ledger copy")
	}
	// Mutating the copy must not affect the manager.
	delete(all, "a")
	if _, ok := m.Assignment("a"); !ok {
		t.Fatal("ledger aliased internal state")
	}
	if !strings.Contains(m.String(), "2 assignments") {
		t.Fatalf("string: %s", m)
	}
	if m.Topology() != topo || !m.Reserved().IsEmpty() {
		t.Fatal("accessors")
	}
}

// Property: across random allocate/release sequences, assignments stay
// pairwise disjoint, never touch the reserved set, sizes match requests, and
// free + assigned + reserved partition the host.
func TestLedgerInvariantsProperty(t *testing.T) {
	topo := mustTopo(t, 2, 4, 2) // 16 CPUs
	f := func(ops []uint8) bool {
		m, err := New(topo, topology.NewCPUSet(0, 1))
		if err != nil {
			return false
		}
		names := []string{"a", "b", "c", "d", "e"}
		sizes := map[string]int{}
		for i, op := range ops {
			name := names[int(op>>4)%len(names)]
			if op%2 == 0 {
				n := int(op>>1)%6 + 1
				near := -1
				if op%3 == 0 {
					near = int(op) % topo.NumCPUs()
				}
				if got, err := m.Allocate(Request{Name: name, CPUs: n, NearCPU: near}); err == nil {
					if got.Count() != n {
						t.Logf("op %d: size mismatch", i)
						return false
					}
					sizes[name] = n
				}
			} else if err := m.Release(name); err == nil {
				delete(sizes, name)
			}
			// Invariants.
			var union topology.CPUSet
			total := 0
			for n, s := range m.Assignments() {
				if s.Count() != sizes[n] {
					return false
				}
				if !union.Intersect(s).IsEmpty() {
					return false // overlap between assignments
				}
				union = union.Union(s)
				total += s.Count()
			}
			if !union.Intersect(m.Reserved()).IsEmpty() {
				return false // exclusive CPUs from the reserved set
			}
			if !union.Intersect(m.SharedPool()).IsEmpty() {
				return false // assigned CPUs still in pool
			}
			if total+m.SharedPool().Count()+m.Reserved().Count() != topo.NumCPUs() {
				return false // partition broken
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: whenever a request is a multiple of the SMT width and enough
// whole cores are free, the allocation contains no torn cores.
func TestWholeCoreAlignmentProperty(t *testing.T) {
	topo := mustTopo(t, 2, 4, 2)
	f := func(coresReq uint8) bool {
		m, err := New(topo, topology.CPUSet{})
		if err != nil {
			return false
		}
		n := (int(coresReq)%8 + 1) * topo.ThreadsPerCore // 2..16 CPUs, SMT-aligned
		got, err := m.Allocate(Request{Name: "x", CPUs: n, NearCPU: -1})
		if err != nil {
			return n > topo.NumCPUs()
		}
		perCore := map[int]int{}
		got.ForEach(func(c int) bool {
			perCore[topo.PhysicalCore(c)]++
			return true
		})
		for _, cnt := range perCore {
			if cnt != topo.ThreadsPerCore {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPaperHostScenario(t *testing.T) {
	// Place the paper's four applications on the R830 with the best-practice
	// sizes: all allocations must be disjoint and socket-compact where they
	// fit one socket.
	topo := topology.PaperHost()
	m, _ := New(topo, topology.NewCPUSet(0)) // CPU0 reserved for the system
	reqs := []Request{
		{Name: "ffmpeg", CPUs: 16, NearCPU: -1},
		{Name: "cassandra", CPUs: 32, NearCPU: 1}, // near disk IRQ home
		{Name: "wordpress", CPUs: 16, NearCPU: 1},
		{Name: "mpi", CPUs: 16, NearCPU: -1},
	}
	var all topology.CPUSet
	for _, r := range reqs {
		got, err := m.Allocate(r)
		if err != nil {
			t.Fatalf("%s: %v", r.Name, err)
		}
		if !all.Intersect(got).IsEmpty() {
			t.Fatalf("%s overlaps earlier allocations", r.Name)
		}
		all = all.Union(got)
	}
	if m.SharedPool().Count() != 112-1-80 {
		t.Fatalf("shared pool %d", m.SharedPool().Count())
	}
}
