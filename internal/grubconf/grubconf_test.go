package grubconf

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/topology"
)

func TestArgsCanonicalOrder(t *testing.T) {
	c := Config{
		MaxCPUs:   8,
		Isolated:  topology.MustParseList("2-5"),
		IsolFlags: []IsolFlag{IsolManagedIRQ, IsolDomain},
		NohzFull:  topology.MustParseList("2-5"),
		RCUNoCBs:  topology.MustParseList("2-5"),
		Extra:     []string{"quiet", "splash"},
	}
	got := c.CmdLine()
	want := "maxcpus=8 isolcpus=domain,managed_irq,2-5 nohz_full=2-5 rcu_nocbs=2-5 quiet splash"
	if got != want {
		t.Fatalf("cmdline:\n got %q\nwant %q", got, want)
	}
	if !strings.HasPrefix(c.GrubLine(), `GRUB_CMDLINE_LINUX="`) || !strings.HasSuffix(c.GrubLine(), `"`) {
		t.Fatalf("grub line: %s", c.GrubLine())
	}
}

func TestParseBasics(t *testing.T) {
	c, err := Parse("maxcpus=16 nr_cpus=32 isolcpus=domain,8-15 nohz_full=8-15 rcu_nocbs=8-15 quiet ro root=/dev/sda1")
	if err != nil {
		t.Fatal(err)
	}
	if c.MaxCPUs != 16 || c.NrCPUs != 32 {
		t.Fatalf("caps: %+v", c)
	}
	if c.Isolated.Count() != 8 || len(c.IsolFlags) != 1 || c.IsolFlags[0] != IsolDomain {
		t.Fatalf("isol: %+v", c)
	}
	if len(c.Extra) != 3 || c.Extra[2] != "root=/dev/sda1" {
		t.Fatalf("extra: %v", c.Extra)
	}
}

func TestParseGrubLine(t *testing.T) {
	c, err := Parse(`GRUB_CMDLINE_LINUX="maxcpus=4 quiet"`)
	if err != nil {
		t.Fatal(err)
	}
	if c.MaxCPUs != 4 || len(c.Extra) != 1 {
		t.Fatalf("%+v", c)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"maxcpus=abc",
		"isolcpus=domain", // flags but no list
		"isolcpus=5-2",    // inverted range
		"nohz_full=zz",    // bad list
		"rcu_nocbs=1-",    // dangling range
		"maxcpus=-3",      // negative
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestParseIsolNoFlags(t *testing.T) {
	c, err := Parse("isolcpus=0,2,4")
	if err != nil {
		t.Fatal(err)
	}
	if len(c.IsolFlags) != 0 || c.Isolated.Count() != 3 {
		t.Fatalf("%+v", c)
	}
}

func TestValidate(t *testing.T) {
	topo := topology.PaperHost()
	cases := []struct {
		c  Config
		ok bool
	}{
		{Config{}, true},
		{Config{MaxCPUs: 112}, true},
		{Config{MaxCPUs: 113}, false},
		{Config{NrCPUs: 200}, false},
		{Config{MaxCPUs: 8, NrCPUs: 4}, false},
		{Config{Isolated: topology.MustParseList("0-111")}, false}, // nothing left
		{Config{Isolated: topology.MustParseList("200")}, false},
		{Config{Isolated: topology.MustParseList("1-4"), IsolFlags: []IsolFlag{"bogus"}}, false},
		{Config{Isolated: topology.MustParseList("1-4"), NohzFull: topology.MustParseList("1-8")}, false},
		{Config{Isolated: topology.MustParseList("1-8"), NohzFull: topology.MustParseList("1-4")}, true},
	}
	for i, tc := range cases {
		err := tc.c.Validate(topo)
		if (err == nil) != tc.ok {
			t.Errorf("case %d: err=%v ok=%v", i, err, tc.ok)
		}
	}
	// nil topology skips range checks but not consistency checks.
	if err := (Config{MaxCPUs: 9999}).Validate(nil); err != nil {
		t.Error("nil-topology range check should pass")
	}
	if err := (Config{MaxCPUs: 8, NrCPUs: 4}).Validate(nil); err == nil {
		t.Error("cap consistency must hold without topology too")
	}
}

func TestForInstance(t *testing.T) {
	topo := topology.PaperHost()
	c, err := ForInstance(topo, 16)
	if err != nil {
		t.Fatal(err)
	}
	if c.CmdLine() != "maxcpus=16" {
		t.Fatalf("cmdline %q", c.CmdLine())
	}
	if _, err := ForInstance(topo, 0); err == nil {
		t.Fatal("zero cores")
	}
	if _, err := ForInstance(topo, 113); err == nil {
		t.Fatal("too many cores")
	}
	if _, err := ForInstance(nil, 4); err == nil {
		t.Fatal("nil topology")
	}
}

func TestIsolateFor(t *testing.T) {
	topo := topology.PaperHost()
	set := topo.PinPlan(8, 0)
	c, err := IsolateFor(topo, set)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Isolated.Equal(set) || !c.NohzFull.Equal(set) || !c.RCUNoCBs.Equal(set) {
		t.Fatalf("sets: %+v", c)
	}
	if _, err := IsolateFor(topo, topology.CPUSet{}); err == nil {
		t.Fatal("empty set")
	}
	if _, err := IsolateFor(topo, topo.AllCPUs()); err == nil {
		t.Fatal("isolating everything")
	}
}

// Property: Parse(c.CmdLine()) == c for arbitrary valid configs (the Extra
// ordering is preserved; flag order canonicalizes).
func TestRoundTripProperty(t *testing.T) {
	topo := topology.PaperHost()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var c Config
		if rng.Intn(2) == 0 {
			c.MaxCPUs = rng.Intn(112) + 1
		}
		if rng.Intn(2) == 0 {
			c.NrCPUs = c.MaxCPUs + rng.Intn(112-c.MaxCPUs+1)
			if c.NrCPUs == 0 {
				c.NrCPUs = 1
			}
		}
		if rng.Intn(2) == 0 {
			var set topology.CPUSet
			for i := 0; i < 1+rng.Intn(16); i++ {
				set.Add(1 + rng.Intn(110))
			}
			c.Isolated = set
			if rng.Intn(2) == 0 {
				c.IsolFlags = []IsolFlag{IsolDomain}
			}
			if rng.Intn(2) == 0 {
				c.NohzFull = set
			}
			if rng.Intn(2) == 0 {
				c.RCUNoCBs = set
			}
		}
		if rng.Intn(2) == 0 {
			c.Extra = []string{"quiet", "ro"}
		}
		if c.Validate(topo) != nil {
			return true // not a valid config; nothing to round-trip
		}
		back, err := Parse(c.CmdLine())
		if err != nil {
			return false
		}
		if back.MaxCPUs != c.MaxCPUs || back.NrCPUs != c.NrCPUs ||
			!back.Isolated.Equal(c.Isolated) || !back.NohzFull.Equal(c.NohzFull) ||
			!back.RCUNoCBs.Equal(c.RCUNoCBs) || len(back.Extra) != len(c.Extra) ||
			len(back.IsolFlags) != len(c.IsolFlags) {
			return false
		}
		// Second round-trip is exact (canonical form is a fixed point).
		again, err := Parse(back.CmdLine())
		return err == nil && again.CmdLine() == back.CmdLine()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
