// Package grubconf generates and parses the Linux kernel command-line
// parameters the paper uses to provision bare metal (§III-A): "For BM, we
// modelled pinning via limiting the number of available CPU cores on the
// host using GRUB configuration". It covers the two standard techniques:
//
//   - capacity limiting: maxcpus= / nr_cpus= — boot with only N CPUs online,
//     turning the whole host into a Table II "instance";
//   - CPU isolation: isolcpus= / nohz_full= / rcu_nocbs= — exclude a cpuset
//     from the scheduler so pinned workloads own it exclusively.
//
// Render produces the kernel argument string and a GRUB_CMDLINE_LINUX line
// for /etc/default/grub; Parse reads either back (round-trip safe).
package grubconf

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/topology"
)

// IsolFlag is an isolcpus= modifier flag (kernel ≥ 4.17 syntax:
// isolcpus=domain,managed_irq,1-7).
type IsolFlag string

const (
	// IsolDomain removes the CPUs from the scheduler domains (classic
	// isolcpus behaviour).
	IsolDomain IsolFlag = "domain"
	// IsolManagedIRQ keeps managed device IRQs off the isolated CPUs.
	IsolManagedIRQ IsolFlag = "managed_irq"
	// IsolNohz stops the scheduler tick on the isolated CPUs.
	IsolNohz IsolFlag = "nohz"
)

// Config is one bare-metal CPU provisioning plan.
type Config struct {
	// MaxCPUs caps the number of CPUs brought online at boot (maxcpus=).
	// 0 means unlimited.
	MaxCPUs int
	// NrCPUs caps the number of possible CPUs (nr_cpus=); unlike MaxCPUs the
	// excess CPUs cannot be onlined later. 0 means unlimited.
	NrCPUs int
	// Isolated is the isolcpus= set (empty = none).
	Isolated topology.CPUSet
	// IsolFlags are the isolcpus= modifiers (ignored when Isolated is empty).
	IsolFlags []IsolFlag
	// NohzFull is the nohz_full= set: tickless operation.
	NohzFull topology.CPUSet
	// RCUNoCBs is the rcu_nocbs= set: offloaded RCU callbacks.
	RCUNoCBs topology.CPUSet
	// Extra preserves unrelated parameters found by Parse, in order.
	Extra []string
}

// Validate checks internal consistency against an optional topology (nil
// skips the range checks).
func (c Config) Validate(topo *topology.Topology) error {
	if c.MaxCPUs < 0 || c.NrCPUs < 0 {
		return fmt.Errorf("grubconf: negative CPU cap")
	}
	if c.MaxCPUs > 0 && c.NrCPUs > 0 && c.MaxCPUs > c.NrCPUs {
		return fmt.Errorf("grubconf: maxcpus=%d exceeds nr_cpus=%d", c.MaxCPUs, c.NrCPUs)
	}
	if !c.NohzFull.IsSubsetOf(c.Isolated) && !c.NohzFull.IsEmpty() && !c.Isolated.IsEmpty() {
		return fmt.Errorf("grubconf: nohz_full=%s must be within isolcpus=%s", c.NohzFull, c.Isolated)
	}
	for _, f := range c.IsolFlags {
		switch f {
		case IsolDomain, IsolManagedIRQ, IsolNohz:
		default:
			return fmt.Errorf("grubconf: unknown isolcpus flag %q", f)
		}
	}
	if topo != nil {
		n := topo.NumCPUs()
		if c.MaxCPUs > n {
			return fmt.Errorf("grubconf: maxcpus=%d exceeds host's %d CPUs", c.MaxCPUs, n)
		}
		if c.NrCPUs > n {
			return fmt.Errorf("grubconf: nr_cpus=%d exceeds host's %d CPUs", c.NrCPUs, n)
		}
		all := topo.AllCPUs()
		for _, s := range []struct {
			name string
			set  topology.CPUSet
		}{{"isolcpus", c.Isolated}, {"nohz_full", c.NohzFull}, {"rcu_nocbs", c.RCUNoCBs}} {
			if !s.set.IsSubsetOf(all) {
				return fmt.Errorf("grubconf: %s=%s outside host CPUs", s.name, s.set)
			}
		}
		if !c.Isolated.IsEmpty() && c.Isolated.Equal(all) {
			return fmt.Errorf("grubconf: isolating every CPU leaves none for the scheduler")
		}
	}
	return nil
}

// Args renders the kernel command-line arguments in canonical order.
func (c Config) Args() []string {
	var args []string
	if c.MaxCPUs > 0 {
		args = append(args, "maxcpus="+strconv.Itoa(c.MaxCPUs))
	}
	if c.NrCPUs > 0 {
		args = append(args, "nr_cpus="+strconv.Itoa(c.NrCPUs))
	}
	if !c.Isolated.IsEmpty() {
		v := "isolcpus="
		if len(c.IsolFlags) > 0 {
			flags := make([]string, len(c.IsolFlags))
			for i, f := range c.IsolFlags {
				flags[i] = string(f)
			}
			sort.Strings(flags)
			v += strings.Join(flags, ",") + ","
		}
		v += c.Isolated.String()
		args = append(args, v)
	}
	if !c.NohzFull.IsEmpty() {
		args = append(args, "nohz_full="+c.NohzFull.String())
	}
	if !c.RCUNoCBs.IsEmpty() {
		args = append(args, "rcu_nocbs="+c.RCUNoCBs.String())
	}
	args = append(args, c.Extra...)
	return args
}

// CmdLine renders the full kernel command line.
func (c Config) CmdLine() string { return strings.Join(c.Args(), " ") }

// GrubLine renders the /etc/default/grub assignment.
func (c Config) GrubLine() string {
	return `GRUB_CMDLINE_LINUX="` + c.CmdLine() + `"`
}

// Parse reads a kernel command line (or a GRUB_CMDLINE_LINUX=... line) back
// into a Config. Unrecognized parameters are preserved in Extra.
func Parse(line string) (Config, error) {
	line = strings.TrimSpace(line)
	if rest, ok := strings.CutPrefix(line, "GRUB_CMDLINE_LINUX="); ok {
		line = strings.Trim(rest, `"`)
	}
	var c Config
	for _, tok := range strings.Fields(line) {
		key, val, hasVal := strings.Cut(tok, "=")
		if !hasVal {
			c.Extra = append(c.Extra, tok)
			continue
		}
		var err error
		switch key {
		case "maxcpus":
			c.MaxCPUs, err = strconv.Atoi(val)
		case "nr_cpus":
			c.NrCPUs, err = strconv.Atoi(val)
		case "isolcpus":
			c.IsolFlags, c.Isolated, err = parseIsol(val)
		case "nohz_full":
			c.NohzFull, err = topology.ParseList(val)
		case "rcu_nocbs":
			c.RCUNoCBs, err = topology.ParseList(val)
		default:
			c.Extra = append(c.Extra, tok)
		}
		if err != nil {
			return Config{}, fmt.Errorf("grubconf: %s: %w", tok, err)
		}
	}
	if c.MaxCPUs < 0 || c.NrCPUs < 0 {
		return Config{}, fmt.Errorf("grubconf: negative CPU cap in %q", line)
	}
	return c, nil
}

// parseIsol splits isolcpus= flags from the cpu list. Flags come first,
// comma-separated; the first token that parses as a cpu-list element starts
// the list.
func parseIsol(val string) ([]IsolFlag, topology.CPUSet, error) {
	parts := strings.Split(val, ",")
	var flags []IsolFlag
	i := 0
	for ; i < len(parts); i++ {
		switch IsolFlag(parts[i]) {
		case IsolDomain, IsolManagedIRQ, IsolNohz:
			flags = append(flags, IsolFlag(parts[i]))
		default:
			goto list
		}
	}
list:
	if i >= len(parts) {
		return nil, topology.CPUSet{}, fmt.Errorf("isolcpus has flags but no cpu list")
	}
	set, err := topology.ParseList(strings.Join(parts[i:], ","))
	if err != nil {
		return nil, topology.CPUSet{}, err
	}
	return flags, set, nil
}

// ForInstance returns the paper's BM provisioning for an instance size:
// boot the host with exactly `cores` CPUs (maxcpus=), as §III-A does.
func ForInstance(topo *topology.Topology, cores int) (Config, error) {
	if topo == nil {
		return Config{}, fmt.Errorf("grubconf: nil topology")
	}
	if cores <= 0 || cores > topo.NumCPUs() {
		return Config{}, fmt.Errorf("grubconf: %d cores out of host range 1..%d", cores, topo.NumCPUs())
	}
	return Config{MaxCPUs: cores}, nil
}

// IsolateFor returns the full isolation recipe for a pinned workload's
// cpuset: isolcpus (domain,managed_irq) + nohz_full + rcu_nocbs on the same
// set — the standard trio for exclusive low-jitter CPU ownership.
func IsolateFor(topo *topology.Topology, set topology.CPUSet) (Config, error) {
	c := Config{
		Isolated:  set,
		IsolFlags: []IsolFlag{IsolDomain, IsolManagedIRQ},
		NohzFull:  set,
		RCUNoCBs:  set,
	}
	if err := c.Validate(topo); err != nil {
		return Config{}, err
	}
	if set.IsEmpty() {
		return Config{}, fmt.Errorf("grubconf: empty isolation set")
	}
	return c, nil
}
