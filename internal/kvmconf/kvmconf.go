// Package kvmconf generates and parses the libvirt domain-XML fragments that
// pin VMs (paper §II-D: "the virtualized platforms offer built-in pinning
// ability, e.g. via the Qemu configuration file for each VM"): the <vcpu>
// element and the <cputune> block of <vcpupin> entries that cmd/pinctl emits
// for operators.
package kvmconf

import (
	"encoding/xml"
	"fmt"
	"strings"

	"repro/internal/topology"
)

// VCPUPin is one <vcpupin vcpu="N" cpuset="..."/> entry.
type VCPUPin struct {
	XMLName xml.Name `xml:"vcpupin"`
	VCPU    int      `xml:"vcpu,attr"`
	CPUSet  string   `xml:"cpuset,attr"`
}

// CPUTune is the <cputune> block.
type CPUTune struct {
	XMLName xml.Name  `xml:"cputune"`
	Pins    []VCPUPin `xml:"vcpupin"`
}

// VCPU is the <vcpu placement='static'>N</vcpu> element.
type VCPU struct {
	XMLName   xml.Name `xml:"vcpu"`
	Placement string   `xml:"placement,attr,omitempty"`
	Count     int      `xml:",chardata"`
}

// Domain is the subset of a libvirt domain definition the pinning workflow
// touches.
type Domain struct {
	XMLName xml.Name `xml:"domain"`
	Type    string   `xml:"type,attr"`
	Name    string   `xml:"name"`
	VCPU    VCPU     `xml:"vcpu"`
	CPUTune *CPUTune `xml:"cputune,omitempty"`
}

// Plan produces a 1:1 vcpupin plan: vCPU i onto the i-th CPU of the host
// pin set chosen by topology.PinPlan (compact, IRQ-adjacent, full-core
// first).
func Plan(name string, vcpus int, host *topology.Topology, nearCPU int) (*Domain, error) {
	if vcpus <= 0 {
		return nil, fmt.Errorf("kvmconf: domain %q needs at least one vCPU", name)
	}
	if host == nil {
		return nil, fmt.Errorf("kvmconf: nil host topology")
	}
	if vcpus > host.NumCPUs() {
		return nil, fmt.Errorf("kvmconf: %d vCPUs exceed the host's %d CPUs", vcpus, host.NumCPUs())
	}
	set := host.PinPlan(vcpus, nearCPU)
	cpus := set.Slice()
	d := &Domain{
		Type: "kvm",
		Name: name,
		VCPU: VCPU{Placement: "static", Count: vcpus},
		CPUTune: &CPUTune{
			Pins: make([]VCPUPin, vcpus),
		},
	}
	for i := 0; i < vcpus; i++ {
		d.CPUTune.Pins[i] = VCPUPin{VCPU: i, CPUSet: fmt.Sprintf("%d", cpus[i])}
	}
	return d, nil
}

// Marshal renders a domain as indented XML.
func Marshal(d *Domain) (string, error) {
	b, err := xml.MarshalIndent(d, "", "  ")
	if err != nil {
		return "", fmt.Errorf("kvmconf: %w", err)
	}
	return string(b) + "\n", nil
}

// Parse reads a domain definition (full files are tolerated: unknown
// elements are ignored by encoding/xml).
func Parse(data string) (*Domain, error) {
	var d Domain
	if err := xml.Unmarshal([]byte(data), &d); err != nil {
		return nil, fmt.Errorf("kvmconf: parsing domain XML: %w", err)
	}
	return &d, nil
}

// PinnedSet returns the union of a domain's vcpupin cpusets.
func PinnedSet(d *Domain) (topology.CPUSet, error) {
	var s topology.CPUSet
	if d.CPUTune == nil {
		return s, nil
	}
	for _, p := range d.CPUTune.Pins {
		ps, err := topology.ParseList(p.CPUSet)
		if err != nil {
			return topology.CPUSet{}, fmt.Errorf("kvmconf: vcpu %d: %w", p.VCPU, err)
		}
		s = s.Union(ps)
	}
	return s, nil
}

// Validate checks a domain's pinning plan for the common operator mistakes:
// missing vcpupin entries, duplicate vCPUs, pins beyond the host.
func Validate(d *Domain, host *topology.Topology) error {
	if d.VCPU.Count <= 0 {
		return fmt.Errorf("kvmconf: domain %q has no vCPUs", d.Name)
	}
	if d.CPUTune == nil {
		return nil // unpinned domain is valid (vanilla mode)
	}
	seen := map[int]bool{}
	var problems []string
	for _, p := range d.CPUTune.Pins {
		if p.VCPU < 0 || p.VCPU >= d.VCPU.Count {
			problems = append(problems, fmt.Sprintf("vcpupin for nonexistent vcpu %d", p.VCPU))
		}
		if seen[p.VCPU] {
			problems = append(problems, fmt.Sprintf("duplicate vcpupin for vcpu %d", p.VCPU))
		}
		seen[p.VCPU] = true
		set, err := topology.ParseList(p.CPUSet)
		if err != nil {
			problems = append(problems, err.Error())
			continue
		}
		if host != nil && !set.IsSubsetOf(host.AllCPUs()) {
			problems = append(problems, fmt.Sprintf("vcpu %d pinned outside host (%s)", p.VCPU, p.CPUSet))
		}
	}
	for v := 0; v < d.VCPU.Count; v++ {
		if !seen[v] {
			problems = append(problems, fmt.Sprintf("vcpu %d has no pin", v))
		}
	}
	if len(problems) > 0 {
		return fmt.Errorf("kvmconf: domain %q: %s", d.Name, strings.Join(problems, "; "))
	}
	return nil
}
