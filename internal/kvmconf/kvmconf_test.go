package kvmconf

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/topology"
)

func TestPlanPinsOneToOne(t *testing.T) {
	host := topology.PaperHost()
	d, err := Plan("vm0", 4, host, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.VCPU.Count != 4 || d.VCPU.Placement != "static" {
		t.Fatalf("vcpu element: %+v", d.VCPU)
	}
	if len(d.CPUTune.Pins) != 4 {
		t.Fatalf("pins: %d", len(d.CPUTune.Pins))
	}
	seen := map[string]bool{}
	for i, p := range d.CPUTune.Pins {
		if p.VCPU != i {
			t.Fatalf("pin order: %+v", p)
		}
		if seen[p.CPUSet] {
			t.Fatalf("cpu %s pinned twice", p.CPUSet)
		}
		seen[p.CPUSet] = true
	}
	if err := Validate(d, host); err != nil {
		t.Fatal(err)
	}
}

func TestPlanValidation(t *testing.T) {
	host := topology.PaperHost()
	if _, err := Plan("x", 0, host, 0); err == nil {
		t.Fatal("zero vcpus must fail")
	}
	if _, err := Plan("x", 4, nil, 0); err == nil {
		t.Fatal("nil host must fail")
	}
	if _, err := Plan("x", 500, host, 0); err == nil {
		t.Fatal("oversubscribed plan must fail")
	}
}

func TestMarshalParseRoundTrip(t *testing.T) {
	host := topology.PaperHost()
	d, err := Plan("roundtrip", 6, host, 30)
	if err != nil {
		t.Fatal(err)
	}
	xml, err := Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(xml, "<cputune>") || !strings.Contains(xml, `vcpu="5"`) {
		t.Fatalf("xml missing pieces:\n%s", xml)
	}
	back, err := Parse(xml)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "roundtrip" || back.VCPU.Count != 6 || len(back.CPUTune.Pins) != 6 {
		t.Fatalf("parse lost data: %+v", back)
	}
	s1, err := PinnedSet(d)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := PinnedSet(back)
	if err != nil {
		t.Fatal(err)
	}
	if !s1.Equal(s2) {
		t.Fatalf("pinned sets differ: %v vs %v", s1, s2)
	}
}

func TestParseToleratesFullDomains(t *testing.T) {
	full := `<domain type='kvm'>
	  <name>prod-vm</name>
	  <memory unit='KiB'>4194304</memory>
	  <vcpu placement='static'>2</vcpu>
	  <cputune>
	    <vcpupin vcpu='0' cpuset='0'/>
	    <vcpupin vcpu='1' cpuset='2-3'/>
	    <shares>1024</shares>
	  </cputune>
	  <os><type arch='x86_64'>hvm</type></os>
	</domain>`
	d, err := Parse(full)
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "prod-vm" || d.VCPU.Count != 2 {
		t.Fatalf("%+v", d)
	}
	set, err := PinnedSet(d)
	if err != nil {
		t.Fatal(err)
	}
	if !set.Equal(topology.MustParseList("0,2-3")) {
		t.Fatalf("pinned set %v", set)
	}
}

func TestParseGarbage(t *testing.T) {
	if _, err := Parse("<domain"); err == nil {
		t.Fatal("truncated xml must fail")
	}
}

func TestValidateCatchesOperatorMistakes(t *testing.T) {
	host := topology.SmallHost16()
	cases := []struct {
		name string
		d    *Domain
		want string
	}{
		{"no-vcpus", &Domain{Name: "a"}, "no vCPUs"},
		{"missing-pin", &Domain{Name: "b", VCPU: VCPU{Count: 2},
			CPUTune: &CPUTune{Pins: []VCPUPin{{VCPU: 0, CPUSet: "0"}}}}, "no pin"},
		{"dup-pin", &Domain{Name: "c", VCPU: VCPU{Count: 1},
			CPUTune: &CPUTune{Pins: []VCPUPin{{VCPU: 0, CPUSet: "0"}, {VCPU: 0, CPUSet: "1"}}}}, "duplicate"},
		{"ghost-vcpu", &Domain{Name: "d", VCPU: VCPU{Count: 1},
			CPUTune: &CPUTune{Pins: []VCPUPin{{VCPU: 0, CPUSet: "0"}, {VCPU: 5, CPUSet: "1"}}}}, "nonexistent"},
		{"off-host", &Domain{Name: "e", VCPU: VCPU{Count: 1},
			CPUTune: &CPUTune{Pins: []VCPUPin{{VCPU: 0, CPUSet: "200"}}}}, "outside host"},
		{"bad-list", &Domain{Name: "f", VCPU: VCPU{Count: 1},
			CPUTune: &CPUTune{Pins: []VCPUPin{{VCPU: 0, CPUSet: "x"}}}}, "bad cpu"},
	}
	for _, c := range cases {
		err := Validate(c.d, host)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want mention of %q", c.name, err, c.want)
		}
	}
	// Unpinned domain is legitimate vanilla mode.
	if err := Validate(&Domain{Name: "vanilla", VCPU: VCPU{Count: 2}}, host); err != nil {
		t.Fatal(err)
	}
	// Empty cputune set.
	if s, err := PinnedSet(&Domain{Name: "vanilla", VCPU: VCPU{Count: 2}}); err != nil || !s.IsEmpty() {
		t.Fatal("unpinned domain must have empty pinned set")
	}
}

// Property: planned domains always validate and pin min(v, cpus) distinct
// CPUs.
func TestPlanAlwaysValid(t *testing.T) {
	host := topology.PaperHost()
	f := func(vRaw uint8, nearRaw uint8) bool {
		v := int(vRaw%112) + 1
		near := int(nearRaw) % 112
		d, err := Plan("p", v, host, near)
		if err != nil {
			return false
		}
		if Validate(d, host) != nil {
			return false
		}
		set, err := PinnedSet(d)
		return err == nil && set.Count() == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
