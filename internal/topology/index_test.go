package topology

import "testing"

// indexTopos is the cross-check matrix: SMT and non-SMT, single- and
// multi-socket, including the paper host.
func indexTopos(t *testing.T) []*Topology {
	t.Helper()
	var out []*Topology
	for _, dims := range [][3]int{{1, 1, 1}, {1, 4, 1}, {1, 4, 2}, {2, 3, 2}, {4, 14, 2}} {
		topo, err := New("ix", dims[0], dims[1], dims[2])
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, topo)
	}
	return out
}

func TestIndexMatchesDerivations(t *testing.T) {
	for _, topo := range indexTopos(t) {
		ix := topo.Index()
		n := topo.NumCPUs()
		if ix.NumCPUs() != n || ix.NumSockets() != topo.Sockets {
			t.Fatalf("%v: index dims %d/%d", topo, ix.NumCPUs(), ix.NumSockets())
		}
		for a := 0; a < n; a++ {
			if ix.Socket(a) != a/(topo.CoresPerSocket*topo.ThreadsPerCore) {
				t.Fatalf("%v: socketOf(%d)", topo, a)
			}
			// Siblings = SiblingsOf minus self, ascending.
			want := topo.SiblingsOf(a).Slice()
			var got []int
			for _, s := range ix.Siblings(a) {
				got = append(got, int(s))
			}
			wi := 0
			for _, w := range want {
				if w == a {
					continue
				}
				if wi >= len(got) || got[wi] != w {
					t.Fatalf("%v: siblings(%d) = %v, want %v\\{%d}", topo, a, got, want, a)
				}
				wi++
			}
			if wi != len(got) {
				t.Fatalf("%v: siblings(%d) has extras: %v", topo, a, got)
			}
			for b := 0; b < n; b++ {
				slow := Distance(0)
				switch {
				case a == b:
					slow = SameCPU
				case a/topo.ThreadsPerCore == b/topo.ThreadsPerCore:
					slow = SMTSibling
				case ix.Socket(a) == ix.Socket(b):
					slow = SameSocket
				default:
					slow = CrossSocket
				}
				if d := ix.Distance(a, b); d != slow {
					t.Fatalf("%v: dist(%d,%d) = %v, want %v", topo, a, b, d, slow)
				}
				if d := topo.DistanceBetween(a, b); d != slow {
					t.Fatalf("%v: DistanceBetween(%d,%d) = %v, want %v", topo, a, b, d, slow)
				}
			}
		}
		for s := 0; s < topo.Sockets; s++ {
			want := topo.SocketCPUs(s).Slice()
			got := ix.SocketCPUs(s)
			if len(got) != len(want) {
				t.Fatalf("%v: socketCPUs(%d) len", topo, s)
			}
			for i := range want {
				if int(got[i]) != want[i] {
					t.Fatalf("%v: socketCPUs(%d)[%d] = %d, want %d", topo, s, i, got[i], want[i])
				}
			}
		}
	}
}

// TestIndexStealOrder checks every steal order is a nearest-first
// permutation of all other CPUs: distances are non-decreasing along the
// walk and ids ascend within each distance tier.
func TestIndexStealOrder(t *testing.T) {
	for _, topo := range indexTopos(t) {
		ix := topo.Index()
		n := topo.NumCPUs()
		for c := 0; c < n; c++ {
			order := ix.StealOrder(c)
			if len(order) != n-1 {
				t.Fatalf("%v: stealOrder(%d) covers %d CPUs, want %d", topo, c, len(order), n-1)
			}
			seen := map[int]bool{c: true}
			prev := Distance(-1)
			prevID := -1
			for _, o16 := range order {
				o := int(o16)
				if seen[o] {
					t.Fatalf("%v: stealOrder(%d) repeats %d", topo, c, o)
				}
				seen[o] = true
				d := ix.Distance(c, o)
				if d < prev {
					t.Fatalf("%v: stealOrder(%d) distance regressed at %d (%v after %v)", topo, c, o, d, prev)
				}
				if d == prev && o < prevID {
					t.Fatalf("%v: stealOrder(%d) ids not ascending within tier at %d", topo, c, o)
				}
				prev, prevID = d, o
			}
		}
	}
}

// TestIndexLazyBuildOnLiteral: a literal Topology (no New) still answers
// through the slow paths and builds its index on demand.
func TestIndexLazyBuildOnLiteral(t *testing.T) {
	topo := &Topology{Name: "lit", Sockets: 2, CoresPerSocket: 2, ThreadsPerCore: 2}
	if topo.idx != nil {
		t.Fatal("literal topology must start unindexed")
	}
	if d := topo.DistanceBetween(0, 1); d != SMTSibling {
		t.Fatalf("slow-path distance %v", d)
	}
	if s := topo.Socket(5); s != 1 {
		t.Fatalf("slow-path socket %d", s)
	}
	ix := topo.Index()
	if ix == nil || topo.idx == nil {
		t.Fatal("Index() must build lazily")
	}
	if d := topo.DistanceBetween(0, 1); d != SMTSibling {
		t.Fatalf("indexed distance %v", d)
	}
}
