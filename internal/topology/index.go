package topology

import (
	"sync"
	"sync/atomic"
)

// Index is the precomputed lookup side of a Topology: per-CPU sibling lists,
// socket/core tables, the full CPU→CPU distance matrix and nearest-first
// steal-domain orders. It exists so per-dispatch scheduler paths (SMT
// contention checks, idle balancing, migration-cost classification) read
// flat arrays instead of re-deriving division/modulo arithmetic or walking
// CPUSet iterators with callback closures.
//
// Topologies built through New carry their Index from construction, so
// sharing a *Topology across worker goroutines is safe. Literal-constructed
// Topology values (tests, ad-hoc tools) build the Index on first use via
// Topology.Index, which is NOT safe to race — construct through New anywhere
// concurrency is involved.
type Index struct {
	topo *Topology
	n    int

	socketOf []int16 // logical CPU -> socket
	coreOf   []int16 // logical CPU -> global physical core

	// siblings[cpu] lists the *other* hardware threads of cpu's physical
	// core, ascending (empty when ThreadsPerCore == 1).
	siblings [][]int16
	// socketCPUs[socket] lists the socket's logical CPUs, ascending.
	socketCPUs [][]int16
	// dist is the flattened n×n distance matrix: dist[a*n+b].
	dist []uint8
	// stealOrder[cpu] lists every other CPU nearest-first: SMT siblings,
	// then the rest of cpu's socket (its LLC/steal domain), then remote
	// sockets in ascending socket order, ascending CPU id within each tier.
	// It is O(n²) storage (2 MB at 1024 CPUs) and the scheduler's steal
	// path no longer reads it, so it is built lazily behind a sync.Once.
	stealOrder     [][]int16
	stealOrderOnce sync.Once
	// socketStart[s] is the first logical CPU id of socket s; sockets are
	// contiguous id ranges in this enumeration.
	socketStart []int16
}

// buildIndex computes the full Index for t.
func buildIndex(t *Topology) *Index {
	n := t.NumCPUs()
	ix := &Index{
		topo:        t,
		n:           n,
		socketOf:    make([]int16, n),
		coreOf:      make([]int16, n),
		siblings:    make([][]int16, n),
		socketCPUs:  make([][]int16, t.Sockets),
		dist:        make([]uint8, n*n),
		socketStart: make([]int16, t.Sockets),
	}
	perSocket := t.CoresPerSocket * t.ThreadsPerCore
	// One backing array per table keeps the index a handful of allocations.
	sibBack := make([]int16, 0, n*(t.ThreadsPerCore-1))
	sockBack := make([]int16, n)
	for c := 0; c < n; c++ {
		ix.socketOf[c] = int16(c / perSocket)
		ix.coreOf[c] = int16(c / t.ThreadsPerCore)
	}
	for s := 0; s < t.Sockets; s++ {
		lo, hi := s*perSocket, (s+1)*perSocket
		ix.socketStart[s] = int16(lo)
		for c := lo; c < hi; c++ {
			sockBack[c] = int16(c)
		}
		ix.socketCPUs[s] = sockBack[lo:hi:hi]
	}
	for c := 0; c < n; c++ {
		coreLo := int(ix.coreOf[c]) * t.ThreadsPerCore
		start := len(sibBack)
		for s := coreLo; s < coreLo+t.ThreadsPerCore; s++ {
			if s != c {
				sibBack = append(sibBack, int16(s))
			}
		}
		ix.siblings[c] = sibBack[start:len(sibBack):len(sibBack)]
		for o := 0; o < n; o++ {
			ix.dist[c*n+o] = uint8(ix.distanceSlow(c, o))
		}
	}
	return ix
}

// buildStealOrder fills the lazy nearest-first steal-order table: siblings,
// same-socket, then remote sockets, ascending within each tier.
func (ix *Index) buildStealOrder() {
	n, t := ix.n, ix.topo
	ix.stealOrder = make([][]int16, n)
	orderBack := make([]int16, 0, n*(n-1))
	for c := 0; c < n; c++ {
		ostart := len(orderBack)
		orderBack = append(orderBack, ix.siblings[c]...)
		mySock := int(ix.socketOf[c])
		for _, o := range ix.socketCPUs[mySock] {
			if int(o) != c && int(ix.coreOf[o]) != int(ix.coreOf[c]) {
				orderBack = append(orderBack, o)
			}
		}
		for s := 0; s < t.Sockets; s++ {
			if s == mySock {
				continue
			}
			orderBack = append(orderBack, ix.socketCPUs[s]...)
		}
		ix.stealOrder[c] = orderBack[ostart:len(orderBack):len(orderBack)]
	}
}

// distanceSlow classifies distance from the raw tables (used while the
// matrix is being filled).
func (ix *Index) distanceSlow(a, b int) Distance {
	switch {
	case a == b:
		return SameCPU
	case ix.coreOf[a] == ix.coreOf[b]:
		return SMTSibling
	case ix.socketOf[a] == ix.socketOf[b]:
		return SameSocket
	default:
		return CrossSocket
	}
}

// NumCPUs returns the indexed CPU count.
func (ix *Index) NumCPUs() int { return ix.n }

// Socket returns the socket of a logical CPU.
func (ix *Index) Socket(cpu int) int { return int(ix.socketOf[cpu]) }

// NumSockets returns the socket count.
func (ix *Index) NumSockets() int { return len(ix.socketCPUs) }

// Siblings returns the other hardware threads sharing cpu's physical core,
// ascending. The returned slice is shared — callers must not modify it.
func (ix *Index) Siblings(cpu int) []int16 { return ix.siblings[cpu] }

// SocketCPUs returns the logical CPUs of one socket, ascending. Shared;
// read-only.
func (ix *Index) SocketCPUs(socket int) []int16 { return ix.socketCPUs[socket] }

// Distance returns the precomputed distance class between two CPUs.
func (ix *Index) Distance(a, b int) Distance { return Distance(ix.dist[a*ix.n+b]) }

// StealOrder returns every CPU other than cpu, nearest-first (SMT siblings,
// then the same LLC/socket, then remote sockets). Shared; read-only. The
// table is built on first call (safe to race: sync.Once) because it is
// quadratic in CPUs and the scheduler's steal path now walks the queued-CPU
// bitmask instead.
func (ix *Index) StealOrder(cpu int) []int16 {
	ix.stealOrderOnce.Do(ix.buildStealOrder)
	return ix.stealOrder[cpu]
}

// SocketRange returns the half-open logical-CPU id range [lo, hi) of one
// socket; sockets are contiguous id ranges in this enumeration.
func (ix *Index) SocketRange(socket int) (lo, hi int) {
	lo = int(ix.socketStart[socket])
	return lo, lo + len(ix.socketCPUs[socket])
}

// indexCache interns built Indexes by Topology.Fingerprint, so the
// sibling/distance/steal-domain tables are computed once per host shape per
// process no matter how many Topology instances describe that shape (guest
// topologies per trial, per-request hosts in the advisor). Sharing is safe
// because an Index is read-only after build — its only lazy member, the
// steal-order table, hides behind a sync.Once — and every table derives
// purely from the dimensions the fingerprint captures.
var (
	indexCacheMu sync.Mutex
	indexCache   = map[string]*Index{}
	indexHits    atomic.Uint64
	indexMisses  atomic.Uint64
)

// internIndex returns the cached Index for t's shape, building and caching
// it on first sight. Same-shape builds serialize on the cache lock so a
// concurrent herd of first-builds produces exactly one table set.
func internIndex(t *Topology) *Index {
	key := t.Fingerprint()
	indexCacheMu.Lock()
	ix, ok := indexCache[key]
	if !ok {
		ix = buildIndex(t)
		indexCache[key] = ix
	}
	indexCacheMu.Unlock()
	if ok {
		indexHits.Add(1)
	} else {
		indexMisses.Add(1)
	}
	return ix
}

// IndexCacheStats reports the process-wide topology index cache counters:
// how many Index builds were skipped by the fingerprint cache (hits) and how
// many shapes were actually built (misses).
func IndexCacheStats() (hits, misses uint64) {
	return indexHits.Load(), indexMisses.Load()
}

// Index returns the topology's precomputed index, building it on first use.
// Topologies from New are pre-indexed and therefore safe to share across
// goroutines; a literal-constructed Topology builds lazily and must not race
// its first Index call.
func (t *Topology) Index() *Index {
	if t.idx == nil {
		t.idx = internIndex(t)
	}
	return t.idx
}
