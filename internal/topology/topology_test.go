package topology

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestCPUSetBasics(t *testing.T) {
	var s CPUSet
	if !s.IsEmpty() || s.Count() != 0 || s.First() != -1 {
		t.Fatal("zero value must be the empty set")
	}
	s.Add(3)
	s.Add(100)
	s.Add(3)
	if s.Count() != 2 || !s.Contains(3) || !s.Contains(100) || s.Contains(4) {
		t.Fatalf("add/contains broken: %v", s)
	}
	s.Remove(3)
	if s.Contains(3) || s.Count() != 1 {
		t.Fatal("remove broken")
	}
	if s.Contains(-1) {
		t.Fatal("negative membership")
	}
	// Contains is total: any out-of-range id is a non-member, never a
	// crash (ids far past MaxCPUs once overflowed the high-word hint).
	for _, cpu := range []int{MaxCPUs, 8191, 8192, 16384, 1 << 30} {
		if s.Contains(cpu) {
			t.Fatalf("Contains(%d) on out-of-range id", cpu)
		}
	}
}

func TestCPUSetAddOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(MaxCPUs) should panic")
		}
	}()
	var s CPUSet
	s.Add(MaxCPUs)
}

// Remove mirrors Add: out-of-range ids are model bugs and must not pass
// silently as no-ops.
func TestCPUSetRemoveOutOfRangePanics(t *testing.T) {
	for _, cpu := range []int{-1, MaxCPUs} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Remove(%d) should panic", cpu)
				}
			}()
			var s CPUSet
			s.Remove(cpu)
		}()
	}
}

// The high-word hint is an optimization detail that must never leak into
// semantics: sets built by different operation orders (and so carrying
// different hints) must still compare Equal and agree on every query.
func TestCPUSetHintInvariance(t *testing.T) {
	a := NewCPUSet(3)
	b := NewCPUSet(3, 900)
	b.Remove(900) // b's hint stays wide; contents equal a
	if !a.Equal(b) || !b.Equal(a) {
		t.Fatal("hint leaked into Equal")
	}
	if b.Count() != 1 || b.First() != 3 || b.Next(3) != -1 {
		t.Fatalf("wide-hint set misbehaves: %v", b)
	}
	if got := a.Union(b); !got.Equal(NewCPUSet(3)) {
		t.Fatalf("union = %v", got)
	}
	if got := b.Difference(a); !got.IsEmpty() {
		t.Fatalf("difference = %v", got)
	}
	if got := b.Intersect(a); !got.Equal(a) {
		t.Fatalf("intersect = %v", got)
	}
	if !b.IsSubsetOf(a) || !a.IsSubsetOf(b) {
		t.Fatal("subset with differing hints broken")
	}
	if b.String() != "3" {
		t.Fatalf("String = %q", b.String())
	}
}

func TestCPUSetAlgebra(t *testing.T) {
	a := NewCPUSet(0, 1, 2, 3)
	b := NewCPUSet(2, 3, 4, 5)
	if got := a.Union(b).Count(); got != 6 {
		t.Fatalf("union count %d", got)
	}
	if got := a.Intersect(b); !got.Equal(NewCPUSet(2, 3)) {
		t.Fatalf("intersect = %v", got)
	}
	if got := a.Difference(b); !got.Equal(NewCPUSet(0, 1)) {
		t.Fatalf("difference = %v", got)
	}
	if !NewCPUSet(2, 3).IsSubsetOf(a) || a.IsSubsetOf(b) {
		t.Fatal("subset broken")
	}
}

func TestCPUSetIteration(t *testing.T) {
	s := NewCPUSet(5, 64, 63, 700)
	want := []int{5, 63, 64, 700}
	got := s.Slice()
	if len(got) != len(want) {
		t.Fatalf("slice = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("slice = %v, want %v", got, want)
		}
	}
	if s.Next(64) != 700 || s.Next(700) != -1 || s.Next(-5) != 5 {
		t.Fatal("Next broken")
	}
	n := 0
	s.ForEach(func(int) bool { n++; return n < 2 })
	if n != 2 {
		t.Fatal("ForEach early stop broken")
	}
}

func TestCPUSetStringAndParse(t *testing.T) {
	cases := []struct {
		set  CPUSet
		want string
	}{
		{CPUSet{}, ""},
		{NewCPUSet(0), "0"},
		{NewCPUSet(0, 1, 2, 3), "0-3"},
		{NewCPUSet(0, 1, 3, 8, 9, 10), "0-1,3,8-10"},
	}
	for _, c := range cases {
		if got := c.set.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
		back, err := ParseList(c.want)
		if err != nil {
			t.Fatalf("ParseList(%q): %v", c.want, err)
		}
		if !back.Equal(c.set) {
			t.Errorf("round trip of %q failed", c.want)
		}
	}
}

func TestParseListErrors(t *testing.T) {
	for _, bad := range []string{"x", "1-", "-3", "5-2", "1,,2", "1-99999", "1e3"} {
		if _, err := ParseList(bad); err == nil {
			t.Errorf("ParseList(%q) should fail", bad)
		}
	}
	if s, err := ParseList(" 1, 3-4 "); err != nil || s.Count() != 3 {
		t.Errorf("whitespace tolerance broken: %v %v", s, err)
	}
}

func TestMustParseListPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParseList on garbage should panic")
		}
	}()
	MustParseList("nope")
}

// Property: String/ParseList round-trips for arbitrary sets.
func TestCPUSetRoundTripProperty(t *testing.T) {
	f := func(cpus []uint16) bool {
		var s CPUSet
		for _, c := range cpus {
			s.Add(int(c) % MaxCPUs)
		}
		back, err := ParseList(s.String())
		return err == nil && back.Equal(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: De Morgan-ish identity — |A∪B| = |A| + |B| - |A∩B|.
func TestCPUSetCountProperty(t *testing.T) {
	f := func(as, bs []uint16) bool {
		var a, b CPUSet
		for _, c := range as {
			a.Add(int(c) % MaxCPUs)
		}
		for _, c := range bs {
			b.Add(int(c) % MaxCPUs)
		}
		return a.Union(b).Count() == a.Count()+b.Count()-a.Intersect(b).Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTakeLowest(t *testing.T) {
	s := Range(10, 19)
	if got := s.TakeLowest(3); !got.Equal(NewCPUSet(10, 11, 12)) {
		t.Fatalf("TakeLowest = %v", got)
	}
	if got := s.TakeLowest(100); !got.Equal(s) {
		t.Fatal("TakeLowest beyond size must return all")
	}
}

func TestPaperHostLayout(t *testing.T) {
	h := PaperHost()
	if h.NumCPUs() != 112 || h.NumPhysicalCores() != 56 {
		t.Fatalf("paper host: %d cpus / %d cores", h.NumCPUs(), h.NumPhysicalCores())
	}
	if h.Socket(0) != 0 || h.Socket(27) != 0 || h.Socket(28) != 1 || h.Socket(111) != 3 {
		t.Fatal("socket mapping broken")
	}
	if h.PhysicalCore(0) != 0 || h.PhysicalCore(1) != 0 || h.PhysicalCore(2) != 1 {
		t.Fatal("core mapping broken")
	}
	if !h.SiblingsOf(0).Equal(NewCPUSet(0, 1)) {
		t.Fatalf("siblings of 0 = %v", h.SiblingsOf(0))
	}
	if h.SocketCPUs(1).Count() != 28 || h.SocketCPUs(1).First() != 28 {
		t.Fatal("socket cpus broken")
	}
}

func TestDistances(t *testing.T) {
	h := PaperHost()
	cases := []struct {
		a, b int
		want Distance
	}{
		{5, 5, SameCPU},
		{0, 1, SMTSibling},
		{0, 2, SameSocket},
		{0, 28, CrossSocket},
	}
	for _, c := range cases {
		if got := h.DistanceBetween(c.a, c.b); got != c.want {
			t.Errorf("distance(%d,%d) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
	for _, d := range []Distance{SameCPU, SMTSibling, SameSocket, CrossSocket, Distance(99)} {
		if d.String() == "" {
			t.Error("empty distance string")
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New("bad", 0, 4, 1); err == nil {
		t.Fatal("zero sockets should fail")
	}
	if _, err := New("big", 64, 32, 2); err == nil {
		t.Fatal("4096 cpus should exceed MaxCPUs... (64*32*2=4096 > 1024)")
	}
	topo, err := New("ok", 2, 4, 2)
	if err != nil || topo.NumCPUs() != 16 {
		t.Fatalf("valid topology rejected: %v", err)
	}
	if !strings.Contains(topo.String(), "2 socket(s)") {
		t.Fatalf("String() = %q", topo.String())
	}
}

func TestPinPlanPrefersDistinctCoresNearSocket(t *testing.T) {
	h := PaperHost()
	// Near CPU 30 (socket 1): all 4 CPUs should be thread-0 of socket-1
	// cores.
	set := h.PinPlan(4, 30)
	if set.Count() != 4 {
		t.Fatalf("plan size %d", set.Count())
	}
	set.ForEach(func(c int) bool {
		if h.Socket(c) != 1 {
			t.Errorf("cpu %d not on socket 1", c)
		}
		if h.Thread(c) != 0 {
			t.Errorf("cpu %d is an SMT sibling; distinct cores come first", c)
		}
		return true
	})
	// 16 CPUs starting at socket 0: 14 cores on socket 0 + 2 on socket 1,
	// no SMT sharing.
	set = h.PinPlan(16, 0)
	phys := map[int]int{}
	set.ForEach(func(c int) bool { phys[h.PhysicalCore(c)]++; return true })
	for core, n := range phys {
		if n > 1 {
			t.Errorf("physical core %d shared by %d pinned CPUs", core, n)
		}
	}
	if h.SocketsSpanned(set) != 2 {
		t.Errorf("16-cpu plan spans %d sockets, want 2", h.SocketsSpanned(set))
	}
}

func TestPinPlanEdgeCases(t *testing.T) {
	h := PaperHost()
	if !h.PinPlan(0, 0).IsEmpty() {
		t.Fatal("plan of 0 must be empty")
	}
	if got := h.PinPlan(1000, 0).Count(); got != 112 {
		t.Fatalf("oversize plan = %d cpus", got)
	}
	if got := h.PinPlan(2, -1).Count(); got != 2 {
		t.Fatalf("negative near: %d cpus", got)
	}
}

func TestInterleavedCPUs(t *testing.T) {
	h := PaperHost()
	set := h.InterleavedCPUs(4)
	// One CPU per socket, all thread-0.
	if h.SocketsSpanned(set) != 4 {
		t.Fatalf("interleaved 4 spans %d sockets, want 4", h.SocketsSpanned(set))
	}
	set.ForEach(func(c int) bool {
		if h.Thread(c) != 0 {
			t.Errorf("cpu %d is not thread 0", c)
		}
		return true
	})
	// All 56 physical cores come before any SMT sibling.
	set = h.InterleavedCPUs(56)
	phys := map[int]bool{}
	set.ForEach(func(c int) bool { phys[h.PhysicalCore(c)] = true; return true })
	if len(phys) != 56 {
		t.Fatalf("interleaved 56 covers %d physical cores", len(phys))
	}
	if got := h.InterleavedCPUs(200).Count(); got != 112 {
		t.Fatalf("oversize interleave = %d", got)
	}
}

// Property: PinPlan always returns exactly min(n, cpus) distinct CPUs.
func TestPinPlanSizeProperty(t *testing.T) {
	h := PaperHost()
	f := func(nRaw uint8, nearRaw uint8) bool {
		n := int(nRaw)
		near := int(nearRaw) % h.NumCPUs()
		want := n
		if want > h.NumCPUs() {
			want = h.NumCPUs()
		}
		return h.PinPlan(n, near).Count() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
