package topology

import "testing"

// The word-boundary suite: CPUSet is a 16-word mask with a high-word hint,
// and every boundary between words (CPUs 63/64, 511/512, and the top id
// 1023) is where a scan that hardcodes single-word assumptions, an
// off-by-one in the hint, or a missed carry between words would corrupt the
// set algebra. These tests pin the exact behavior at those seams.

func TestCPUSetWordBoundaryAddContains(t *testing.T) {
	for _, cpu := range []int{0, 63, 64, 127, 128, 511, 512, 1022, 1023} {
		s := NewCPUSet(cpu)
		if !s.Contains(cpu) {
			t.Fatalf("cpu %d: Add then Contains = false", cpu)
		}
		if s.Count() != 1 {
			t.Fatalf("cpu %d: Count = %d, want 1", cpu, s.Count())
		}
		if s.First() != cpu {
			t.Fatalf("cpu %d: First = %d", cpu, s.First())
		}
		if got := s.Words(); got != cpu/64+1 {
			t.Fatalf("cpu %d: Words = %d, want %d", cpu, got, cpu/64+1)
		}
		if w := s.Word(cpu / 64); w != 1<<uint(cpu%64) {
			t.Fatalf("cpu %d: Word(%d) = %#x", cpu, cpu/64, w)
		}
		for _, absent := range []int{cpu - 1, cpu + 1} {
			if absent >= 0 && absent < MaxCPUs && s.Contains(absent) {
				t.Fatalf("cpu %d: Contains(%d) = true", cpu, absent)
			}
		}
	}
}

func TestCPUSetCrossWordRange(t *testing.T) {
	// A range straddling each word seam must carry cleanly across it.
	for _, seam := range []int{64, 512, 960} {
		s := Range(seam-2, seam+1)
		if s.Count() != 4 {
			t.Fatalf("seam %d: Count = %d, want 4", seam, s.Count())
		}
		for c := seam - 2; c <= seam+1; c++ {
			if !s.Contains(c) {
				t.Fatalf("seam %d: missing cpu %d", seam, c)
			}
		}
		if s.Next(seam-1) != seam {
			t.Fatalf("seam %d: Next(%d) = %d, want %d", seam, seam-1, s.Next(seam-1), seam)
		}
		want := []int{seam - 2, seam - 1, seam, seam + 1}
		for i, c := range s.Slice() {
			if c != want[i] {
				t.Fatalf("seam %d: Slice = %v", seam, s.Slice())
			}
		}
	}
}

func TestCPUSetWordBoundaryAlgebra(t *testing.T) {
	lo := NewCPUSet(0, 63)           // one word
	hiSeam := NewCPUSet(63, 64)      // straddles words 0/1
	top := NewCPUSet(511, 512, 1023) // words 7, 8 and 15

	if u := lo.Union(hiSeam); u.Count() != 3 || !u.Contains(64) || u.Words() != 2 {
		t.Fatalf("Union across seam: %v (words %d)", u.Slice(), u.Words())
	}
	if i := lo.Intersect(hiSeam); i.Count() != 1 || !i.Contains(63) {
		t.Fatalf("Intersect across seam: %v", i.Slice())
	}
	// Intersecting a low set with a high set: the result's hint must not
	// let high-word garbage or short loops report phantom members.
	if i := lo.Intersect(top); !i.IsEmpty() {
		t.Fatalf("disjoint Intersect nonempty: %v", i.Slice())
	}
	if d := top.Difference(NewCPUSet(512)); d.Count() != 2 || !d.Contains(511) || !d.Contains(1023) {
		t.Fatalf("Difference at seam: %v", d.Slice())
	}
	u := lo.Union(top)
	if u.Words() != 16 || u.Count() != 5 {
		t.Fatalf("Union with top word: words %d count %d", u.Words(), u.Count())
	}
	if !lo.IsSubsetOf(u) || !top.IsSubsetOf(u) || u.IsSubsetOf(lo) {
		t.Fatal("subset relations across words broken")
	}
}

func TestCPUSetRemoveShrinksHiHint(t *testing.T) {
	// A set that grew to the top word and emptied back down must re-tighten
	// its significant-word hint, so long-lived shrinking sets (idle masks,
	// cgroup spreads) keep cheap scans.
	s := NewCPUSet(3, 1023)
	if s.Words() != 16 {
		t.Fatalf("Words = %d, want 16", s.Words())
	}
	s.Remove(1023)
	if s.Words() != 1 {
		t.Fatalf("after removing top bit: Words = %d, want 1", s.Words())
	}
	if !s.Contains(3) || s.Count() != 1 {
		t.Fatalf("shrink corrupted the set: %v", s.Slice())
	}
	// Removing a mid-word bit below another set bit must NOT shrink.
	s = NewCPUSet(64, 512)
	s.Remove(64)
	if s.Words() != 9 || !s.Contains(512) {
		t.Fatalf("mid removal: words %d set %v", s.Words(), s.Slice())
	}
	// Draining everything lands back at the empty set's zero hint.
	s.Remove(512)
	if s.Words() != 0 || !s.IsEmpty() {
		t.Fatalf("drained set: words %d empty %v", s.Words(), s.IsEmpty())
	}
	// Equal must treat a shrunk set and a never-grown set identically even
	// though their internal hints differ in history.
	a := NewCPUSet(5, 1023)
	a.Remove(1023)
	if !a.Equal(NewCPUSet(5)) {
		t.Fatal("shrunk set not Equal to fresh set")
	}
}

func TestCPUSetParseFormatBoundaries(t *testing.T) {
	cases := []struct {
		list string
		want []int
	}{
		{"63-64", []int{63, 64}},
		{"511-512", []int{511, 512}},
		{"1023", []int{1023}},
		{"0,63-65,1022-1023", []int{0, 63, 64, 65, 1022, 1023}},
	}
	for _, c := range cases {
		s, err := ParseList(c.list)
		if err != nil {
			t.Fatalf("ParseList(%q): %v", c.list, err)
		}
		got := s.Slice()
		if len(got) != len(c.want) {
			t.Fatalf("ParseList(%q) = %v, want %v", c.list, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("ParseList(%q) = %v, want %v", c.list, got, c.want)
			}
		}
		// Round trip: format and reparse.
		back, err := ParseList(s.String())
		if err != nil || !back.Equal(s) {
			t.Fatalf("round trip %q -> %q failed (%v)", c.list, s.String(), err)
		}
	}
	// 1024 is the first out-of-range id: both forms must be rejected.
	if _, err := ParseList("1024"); err == nil {
		t.Fatal("ParseList(1024) must fail")
	}
	if _, err := ParseList("1000-1024"); err == nil {
		t.Fatal("ParseList(1000-1024) must fail")
	}
}

func TestCPUSetNextAtTopWord(t *testing.T) {
	s := NewCPUSet(1023)
	if s.Next(1022) != 1023 {
		t.Fatalf("Next(1022) = %d", s.Next(1022))
	}
	if s.Next(1023) != -1 {
		t.Fatalf("Next(1023) = %d, want -1", s.Next(1023))
	}
	if s.Next(-5) != 1023 {
		t.Fatalf("Next(-5) = %d, want 1023", s.Next(-5))
	}
}
