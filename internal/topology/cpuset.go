// Package topology models CPU topologies (sockets, cores, SMT threads, cache
// sharing and NUMA distance) and provides the CPUSet type used everywhere a
// set of logical CPUs is needed: scheduler affinity masks, cgroup cpusets,
// pinning plans, and the real-affinity syscall wrappers.
package topology

import (
	"fmt"
	"math/bits"
	"strconv"
	"strings"
)

// MaxCPUs is the largest logical CPU id + 1 representable in a CPUSet.
const MaxCPUs = 1024

const setWords = MaxCPUs / 64

// CPUSet is a fixed-size bitmask of logical CPU ids. The zero value is the
// empty set. CPUSet is a value type: methods that modify it take a pointer
// receiver; set-algebra methods return new sets.
//
// A set carries a high-word hint so algebra and scans on realistic 8–112
// CPU machines touch one or two words instead of all 16. Compare sets with
// Equal, never with ==: two equal sets may carry different hints.
type CPUSet struct {
	bits [setWords]uint64
	// hi is the number of significant words: an upper bound such that
	// bits[i] == 0 for all i >= hi. It is a hint, not an exact population
	// bound — words below hi may be zero — but Remove re-tightens it when
	// it clears the last bit of the top significant word, so long-lived
	// sets that shrink (a cgroup spread, an idle mask) keep cheap scans.
	hi int8
}

// maxHi returns the larger significant-word count of two sets.
func maxHi(s, o CPUSet) int8 {
	if s.hi >= o.hi {
		return s.hi
	}
	return o.hi
}

// minHi returns the smaller significant-word count of two sets.
func minHi(s, o CPUSet) int8 {
	if s.hi <= o.hi {
		return s.hi
	}
	return o.hi
}

// NewCPUSet returns a set containing the given CPUs.
func NewCPUSet(cpus ...int) CPUSet {
	var s CPUSet
	for _, c := range cpus {
		s.Add(c)
	}
	return s
}

// Range returns the set {lo, lo+1, ..., hi} (inclusive).
func Range(lo, hi int) CPUSet {
	var s CPUSet
	for c := lo; c <= hi; c++ {
		s.Add(c)
	}
	return s
}

// Add inserts cpu into the set. Out-of-range ids panic: they are model bugs.
func (s *CPUSet) Add(cpu int) {
	if cpu < 0 || cpu >= MaxCPUs {
		panic(fmt.Sprintf("topology: cpu %d out of range", cpu))
	}
	w := cpu / 64
	s.bits[w] |= 1 << uint(cpu%64)
	if int8(w) >= s.hi {
		s.hi = int8(w) + 1
	}
}

// Remove deletes cpu from the set. Out-of-range ids panic, exactly like
// Add: silently ignoring them would let a model bug pass as a no-op.
func (s *CPUSet) Remove(cpu int) {
	if cpu < 0 || cpu >= MaxCPUs {
		panic(fmt.Sprintf("topology: cpu %d out of range", cpu))
	}
	s.bits[cpu/64] &^= 1 << uint(cpu%64)
	// Shrink the significant-word hint past trailing zero words, so a set
	// that grew to a high CPU id and emptied back down scans cheaply again.
	for s.hi > 0 && s.bits[s.hi-1] == 0 {
		s.hi--
	}
}

// Words returns the set's significant-word count: bits[i] == 0 for every
// word index i >= Words(). Together with Word it enables allocation-free
// mask-driven scans (iterate set bits word by word) without exposing the
// backing array.
func (s CPUSet) Words() int { return int(s.hi) }

// Word returns the i-th 64-bit word of the mask (CPUs 64i..64i+63). Any
// index from 0 to setWords-1 is valid; words at or beyond Words() are zero.
func (s CPUSet) Word(i int) uint64 {
	if i < 0 || i >= int(s.hi) {
		return 0
	}
	return s.bits[i]
}

// Contains reports whether cpu is in the set; any out-of-range id is
// simply not a member.
func (s CPUSet) Contains(cpu int) bool {
	w := cpu / 64
	if cpu < 0 || w >= int(s.hi) {
		return false
	}
	return s.bits[w]&(1<<uint(cpu%64)) != 0
}

// Count returns the number of CPUs in the set.
func (s CPUSet) Count() int {
	n := 0
	for _, w := range s.bits[:s.hi] {
		n += bits.OnesCount64(w)
	}
	return n
}

// IsEmpty reports whether the set has no CPUs.
func (s CPUSet) IsEmpty() bool {
	for _, w := range s.bits[:s.hi] {
		if w != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether two sets contain exactly the same CPUs.
func (s CPUSet) Equal(o CPUSet) bool {
	// Words beyond each set's hint are zero by invariant, so comparing up
	// to the larger hint covers the full mask.
	for i := int8(0); i < maxHi(s, o); i++ {
		if s.bits[i] != o.bits[i] {
			return false
		}
	}
	return true
}

// Union returns s ∪ o.
func (s CPUSet) Union(o CPUSet) CPUSet {
	var r CPUSet
	r.hi = maxHi(s, o)
	for i := int8(0); i < r.hi; i++ {
		r.bits[i] = s.bits[i] | o.bits[i]
	}
	return r
}

// Intersect returns s ∩ o.
func (s CPUSet) Intersect(o CPUSet) CPUSet {
	var r CPUSet
	r.hi = minHi(s, o)
	for i := int8(0); i < r.hi; i++ {
		r.bits[i] = s.bits[i] & o.bits[i]
	}
	return r
}

// Difference returns s \ o.
func (s CPUSet) Difference(o CPUSet) CPUSet {
	var r CPUSet
	r.hi = s.hi
	for i := int8(0); i < r.hi; i++ {
		r.bits[i] = s.bits[i] &^ o.bits[i]
	}
	return r
}

// IsSubsetOf reports whether every CPU in s is also in o.
func (s CPUSet) IsSubsetOf(o CPUSet) bool {
	for i := int8(0); i < s.hi; i++ {
		if s.bits[i]&^o.bits[i] != 0 {
			return false
		}
	}
	return true
}

// First returns the lowest CPU id in the set, or -1 if empty.
func (s CPUSet) First() int {
	for i, w := range s.bits[:s.hi] {
		if w != 0 {
			return i*64 + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// Next returns the lowest CPU id strictly greater than cpu, or -1.
func (s CPUSet) Next(cpu int) int {
	start := cpu + 1
	if start < 0 {
		start = 0
	}
	if start >= int(s.hi)*64 {
		return -1
	}
	w := s.bits[start/64] >> uint(start%64)
	if w != 0 {
		return start + bits.TrailingZeros64(w)
	}
	for i := int8(start/64) + 1; i < s.hi; i++ {
		if s.bits[i] != 0 {
			return int(i)*64 + bits.TrailingZeros64(s.bits[i])
		}
	}
	return -1
}

// ForEach calls fn for each CPU in ascending order; returning false stops.
func (s CPUSet) ForEach(fn func(cpu int) bool) {
	for c := s.First(); c >= 0; c = s.Next(c) {
		if !fn(c) {
			return
		}
	}
}

// Slice returns the CPUs in ascending order.
func (s CPUSet) Slice() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(c int) bool { out = append(out, c); return true })
	return out
}

// String formats the set in Linux cpu-list syntax, e.g. "0-3,8,10-11".
// The empty set formats as "".
func (s CPUSet) String() string {
	var b strings.Builder
	first := true
	c := s.First()
	for c >= 0 {
		runEnd := c
		for s.Contains(runEnd + 1) {
			runEnd++
		}
		if !first {
			b.WriteByte(',')
		}
		first = false
		if runEnd == c {
			fmt.Fprintf(&b, "%d", c)
		} else {
			fmt.Fprintf(&b, "%d-%d", c, runEnd)
		}
		c = s.Next(runEnd)
	}
	return b.String()
}

// ParseList parses Linux cpu-list syntax ("0-3,8,10-11"). An empty string
// yields the empty set. Whitespace around items is tolerated.
func ParseList(list string) (CPUSet, error) {
	var s CPUSet
	list = strings.TrimSpace(list)
	if list == "" {
		return s, nil
	}
	for _, part := range strings.Split(list, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return CPUSet{}, fmt.Errorf("topology: empty item in cpu list %q", list)
		}
		if lo, hi, ok := strings.Cut(part, "-"); ok {
			a, err := strconv.Atoi(strings.TrimSpace(lo))
			if err != nil {
				return CPUSet{}, fmt.Errorf("topology: bad cpu range %q: %v", part, err)
			}
			b, err := strconv.Atoi(strings.TrimSpace(hi))
			if err != nil {
				return CPUSet{}, fmt.Errorf("topology: bad cpu range %q: %v", part, err)
			}
			if a < 0 || b >= MaxCPUs || a > b {
				return CPUSet{}, fmt.Errorf("topology: bad cpu range %q", part)
			}
			for c := a; c <= b; c++ {
				s.Add(c)
			}
			continue
		}
		c, err := strconv.Atoi(part)
		if err != nil {
			return CPUSet{}, fmt.Errorf("topology: bad cpu %q: %v", part, err)
		}
		if c < 0 || c >= MaxCPUs {
			return CPUSet{}, fmt.Errorf("topology: cpu %d out of range", c)
		}
		s.Add(c)
	}
	return s, nil
}

// MustParseList is ParseList that panics on error; for constants in tests
// and examples.
func MustParseList(list string) CPUSet {
	s, err := ParseList(list)
	if err != nil {
		panic(err)
	}
	return s
}

// TakeLowest returns a subset holding the n lowest-numbered CPUs of s (all of
// s if n >= Count).
func (s CPUSet) TakeLowest(n int) CPUSet {
	var r CPUSet
	taken := 0
	s.ForEach(func(c int) bool {
		if taken >= n {
			return false
		}
		r.Add(c)
		taken++
		return true
	})
	return r
}
