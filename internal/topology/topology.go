package topology

import "fmt"

// Distance classifies how far apart two logical CPUs are in the cache/memory
// hierarchy. It determines migration and communication costs.
type Distance int

const (
	// SameCPU: the same logical CPU; no movement.
	SameCPU Distance = iota
	// SMTSibling: a hardware thread on the same physical core (shared L1/L2).
	SMTSibling
	// SameSocket: a different core on the same socket (shared LLC).
	SameSocket
	// CrossSocket: a core on another socket (LLC miss + remote memory).
	CrossSocket
)

func (d Distance) String() string {
	switch d {
	case SameCPU:
		return "same-cpu"
	case SMTSibling:
		return "smt-sibling"
	case SameSocket:
		return "same-socket"
	case CrossSocket:
		return "cross-socket"
	}
	return fmt.Sprintf("Distance(%d)", int(d))
}

// Topology describes a host: sockets × cores-per-socket × threads-per-core
// homogeneous logical CPUs. Logical CPU ids are laid out socket-major,
// core-second, thread-last, matching the common Linux enumeration for this
// class of machine:
//
//	cpu = socket*CoresPerSocket*ThreadsPerCore + core*ThreadsPerCore + thread
type Topology struct {
	Name           string
	Sockets        int
	CoresPerSocket int
	ThreadsPerCore int

	// LLCMB is the per-socket last-level cache size in MiB; informational,
	// used by the cache model to scale working-set penalties.
	LLCMB float64
	// ClockGHz is the nominal core clock; informational.
	ClockGHz float64

	// idx is the precomputed lookup index (see index.go). New builds it
	// eagerly; literal-constructed topologies get it lazily via Index().
	idx *Index
}

// New returns a validated topology.
func New(name string, sockets, coresPerSocket, threadsPerCore int) (*Topology, error) {
	t := &Topology{
		Name:           name,
		Sockets:        sockets,
		CoresPerSocket: coresPerSocket,
		ThreadsPerCore: threadsPerCore,
		LLCMB:          35,
		ClockGHz:       1.8,
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	// Pre-resolve the index here, before the topology can be shared: lazy
	// builds on a *Topology* used by several worker goroutines would race.
	// The process-wide fingerprint cache makes repeat constructions of one
	// shape (guest topologies, per-request hosts) a map lookup, not an
	// O(cpus²) table build.
	t.idx = internIndex(t)
	return t, nil
}

// Validate checks structural sanity.
func (t *Topology) Validate() error {
	if t.Sockets <= 0 || t.CoresPerSocket <= 0 || t.ThreadsPerCore <= 0 {
		return fmt.Errorf("topology %q: all dimensions must be positive (got %d×%d×%d)",
			t.Name, t.Sockets, t.CoresPerSocket, t.ThreadsPerCore)
	}
	if t.NumCPUs() > MaxCPUs {
		return fmt.Errorf("topology %q: %d cpus exceeds limit %d", t.Name, t.NumCPUs(), MaxCPUs)
	}
	return nil
}

// NumCPUs returns the number of logical CPUs.
func (t *Topology) NumCPUs() int { return t.Sockets * t.CoresPerSocket * t.ThreadsPerCore }

// NumPhysicalCores returns the number of physical cores.
func (t *Topology) NumPhysicalCores() int { return t.Sockets * t.CoresPerSocket }

// AllCPUs returns the set of every logical CPU.
func (t *Topology) AllCPUs() CPUSet { return Range(0, t.NumCPUs()-1) }

// Socket returns the socket index of a logical CPU.
func (t *Topology) Socket(cpu int) int {
	if ix := t.idx; ix != nil && cpu >= 0 && cpu < ix.n {
		return int(ix.socketOf[cpu])
	}
	return cpu / (t.CoresPerSocket * t.ThreadsPerCore)
}

// PhysicalCore returns the global physical-core index of a logical CPU.
func (t *Topology) PhysicalCore(cpu int) int { return cpu / t.ThreadsPerCore }

// Thread returns the SMT thread index (0-based) of a logical CPU.
func (t *Topology) Thread(cpu int) int { return cpu % t.ThreadsPerCore }

// SiblingsOf returns the logical CPUs sharing cpu's physical core (including
// cpu itself).
func (t *Topology) SiblingsOf(cpu int) CPUSet {
	core := t.PhysicalCore(cpu)
	lo := core * t.ThreadsPerCore
	return Range(lo, lo+t.ThreadsPerCore-1)
}

// SocketCPUs returns the logical CPUs of one socket.
func (t *Topology) SocketCPUs(socket int) CPUSet {
	per := t.CoresPerSocket * t.ThreadsPerCore
	lo := socket * per
	return Range(lo, lo+per-1)
}

// DistanceBetween classifies the distance between two logical CPUs.
func (t *Topology) DistanceBetween(a, b int) Distance {
	if ix := t.idx; ix != nil && a >= 0 && b >= 0 && a < ix.n && b < ix.n {
		return Distance(ix.dist[a*ix.n+b])
	}
	switch {
	case a == b:
		return SameCPU
	case t.PhysicalCore(a) == t.PhysicalCore(b):
		return SMTSibling
	case t.Socket(a) == t.Socket(b):
		return SameSocket
	default:
		return CrossSocket
	}
}

// SocketsSpanned returns how many distinct sockets the set touches.
func (t *Topology) SocketsSpanned(s CPUSet) int {
	seen := map[int]bool{}
	s.ForEach(func(c int) bool {
		seen[t.Socket(c)] = true
		return true
	})
	return len(seen)
}

// PinPlan selects n logical CPUs for pinning, using as few sockets as
// possible starting from the socket that contains `near` (e.g. the IO IRQ
// home core), and spreading over distinct physical cores before reusing SMT
// siblings. This mirrors how an operator pins "based on IO affinity"
// (paper §III-B3): compact, IRQ-adjacent, full-core-first sets.
func (t *Topology) PinPlan(n int, near int) CPUSet {
	var s CPUSet
	if n <= 0 {
		return s
	}
	if n > t.NumCPUs() {
		n = t.NumCPUs()
	}
	startSocket := 0
	if near >= 0 && near < t.NumCPUs() {
		startSocket = t.Socket(near)
	}
	// Distinct physical cores first (spilling to the next socket before
	// SMT siblings: sharing a core costs more than splitting the LLC),
	// starting from the IRQ-adjacent socket.
	taken := 0
	for thread := 0; thread < t.ThreadsPerCore && taken < n; thread++ {
		for i := 0; i < t.Sockets && taken < n; i++ {
			socket := (startSocket + i) % t.Sockets
			base := socket * t.CoresPerSocket * t.ThreadsPerCore
			for core := 0; core < t.CoresPerSocket && taken < n; core++ {
				s.Add(base + core*t.ThreadsPerCore + thread)
				taken++
			}
		}
	}
	return s
}

// InterleavedCPUs enumerates n logical CPUs round-robin across sockets,
// distinct physical cores before SMT siblings. This models GRUB-style
// maxcpus= core limiting on firmware that enumerates CPUs socket-interleaved
// (the common BIOS default on multi-socket Xeon boards like the paper's
// R830) — the bare-metal instance analog.
func (t *Topology) InterleavedCPUs(n int) CPUSet {
	var s CPUSet
	if n <= 0 {
		return s
	}
	if n > t.NumCPUs() {
		n = t.NumCPUs()
	}
	taken := 0
	for thread := 0; thread < t.ThreadsPerCore && taken < n; thread++ {
		for core := 0; core < t.CoresPerSocket && taken < n; core++ {
			for socket := 0; socket < t.Sockets && taken < n; socket++ {
				base := socket * t.CoresPerSocket * t.ThreadsPerCore
				s.Add(base + core*t.ThreadsPerCore + thread)
				taken++
			}
		}
	}
	return s
}

// Fingerprint is a stable, value-only serialization of the topology for
// memoization keys: everything a simulation result can depend on, and
// nothing else (in particular not the index pointer, which differs per
// instance).
func (t *Topology) Fingerprint() string {
	return fmt.Sprintf("%s/%dx%dx%d/llc%g/clk%g",
		t.Name, t.Sockets, t.CoresPerSocket, t.ThreadsPerCore, t.LLCMB, t.ClockGHz)
}

// String describes the topology.
func (t *Topology) String() string {
	return fmt.Sprintf("%s: %d socket(s) × %d core(s) × %d thread(s) = %d cpus",
		t.Name, t.Sockets, t.CoresPerSocket, t.ThreadsPerCore, t.NumCPUs())
}

// PaperHost is the evaluation host from the paper: a DELL PowerEdge R830 with
// 4 × Intel Xeon E5-4628Lv4 (14 cores / 28 threads each), 112 logical CPUs,
// 35 MB LLC per socket, 1.8 GHz.
func PaperHost() *Topology {
	t, err := New("r830", 4, 14, 2)
	if err != nil {
		panic(err)
	}
	t.LLCMB = 35
	t.ClockGHz = 1.8
	return t
}

// BigHost1024 is a 1024-CPU dual-socket host (2 sockets × 256 cores × 2
// threads) at the CPUSet capacity limit: the big-topology stress shape the
// scheduler fast paths are benchmarked against (BenchmarkBigTopology).
func BigHost1024() *Topology {
	t, err := New("big1024", 2, 256, 2)
	if err != nil {
		panic(err)
	}
	t.LLCMB = 384
	t.ClockGHz = 2.4
	return t
}

// SmallHost16 is the 16-core single-socket host used in the paper's CHR
// experiment (Fig 7).
func SmallHost16() *Topology {
	t, err := New("small16", 1, 16, 1)
	if err != nil {
		panic(err)
	}
	t.LLCMB = 35
	t.ClockGHz = 1.8
	return t
}
