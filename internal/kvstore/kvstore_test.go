package kvstore

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func memStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(Options{MemtableFlushEntries: 8, CompactFanIn: 3})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestPutGetDelete(t *testing.T) {
	s := memStore(t)
	if err := s.Put("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	v, err := s.Get("a")
	if err != nil || string(v) != "1" {
		t.Fatalf("get: %q %v", v, err)
	}
	if err := s.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted key: %v", err)
	}
	if _, err := s.Get("never"); !errors.Is(err, ErrNotFound) {
		t.Fatal("missing key must be ErrNotFound")
	}
	if err := s.Put("", nil); err == nil {
		t.Fatal("empty key must fail")
	}
}

func TestOverwriteTakesLatest(t *testing.T) {
	s := memStore(t)
	for i := 0; i < 5; i++ {
		if err := s.Put("k", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	v, err := s.Get("k")
	if err != nil || v[0] != 4 {
		t.Fatalf("latest write lost: %v %v", v, err)
	}
}

func TestFlushAndReadFromRuns(t *testing.T) {
	s := memStore(t)
	for i := 0; i < 20; i++ { // flush threshold 8 → multiple runs
		if err := s.Put(fmt.Sprintf("k%02d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if s.Flushes == 0 {
		t.Fatal("expected automatic flushes")
	}
	for i := 0; i < 20; i++ {
		v, err := s.Get(fmt.Sprintf("k%02d", i))
		if err != nil || v[0] != byte(i) {
			t.Fatalf("k%02d: %v %v", i, v, err)
		}
	}
}

func TestCompactionMergesAndDropsTombstones(t *testing.T) {
	s := memStore(t)
	for i := 0; i < 8; i++ {
		s.Put(fmt.Sprintf("a%d", i), []byte("x"))
	}
	s.Flush()
	s.Delete("a0")
	s.Flush()
	for i := 0; i < 8; i++ {
		s.Put(fmt.Sprintf("b%d", i), []byte("y"))
	}
	s.Flush() // triggers compaction (fan-in 3)
	if s.Compactions == 0 {
		t.Fatal("expected a compaction")
	}
	if s.Runs() != 1 {
		t.Fatalf("full compaction should leave 1 run, have %d", s.Runs())
	}
	if _, err := s.Get("a0"); !errors.Is(err, ErrNotFound) {
		t.Fatal("tombstone lost in compaction")
	}
	if v, err := s.Get("b3"); err != nil || string(v) != "y" {
		t.Fatal("live key lost in compaction")
	}
	if s.Len() != 15 {
		t.Fatalf("live count %d, want 15", s.Len())
	}
}

func TestClosedStoreRejectsOps(t *testing.T) {
	s := memStore(t)
	s.Close()
	if err := s.Put("x", nil); !errors.Is(err, ErrClosed) {
		t.Fatal("put after close")
	}
	if _, err := s.Get("x"); !errors.Is(err, ErrClosed) {
		t.Fatal("get after close")
	}
	if err := s.Close(); err != nil {
		t.Fatal("double close must be fine")
	}
}

func TestWALRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, MemtableFlushEntries: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	s.Delete("k3")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(Options{Dir: dir, MemtableFlushEntries: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for i := 0; i < 10; i++ {
		v, err := re.Get(fmt.Sprintf("k%d", i))
		if i == 3 {
			if !errors.Is(err, ErrNotFound) {
				t.Fatal("tombstone not recovered")
			}
			continue
		}
		if err != nil || v[0] != byte(i) {
			t.Fatalf("k%d not recovered: %v %v", i, v, err)
		}
	}
}

func TestWALTornTailIgnored(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, MemtableFlushEntries: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	s.Put("good", []byte("v"))
	s.Close()

	// Append garbage: a torn record.
	f, err := os.OpenFile(filepath.Join(dir, "wal.log"), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0xde, 0xad, 0xbe})
	f.Close()

	re, err := Open(Options{Dir: dir, MemtableFlushEntries: 1 << 20})
	if err != nil {
		t.Fatalf("torn tail must not block recovery: %v", err)
	}
	defer re.Close()
	if v, err := re.Get("good"); err != nil || string(v) != "v" {
		t.Fatalf("clean prefix lost: %v %v", v, err)
	}
}

func TestWALCorruptRecordStopsReplay(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(Options{Dir: dir, MemtableFlushEntries: 1 << 20})
	s.Put("k1", []byte("a"))
	s.Close()

	// Flip a payload byte: CRC mismatch.
	path := filepath.Join(dir, "wal.log")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	os.WriteFile(path, data, 0o644)

	re, err := Open(Options{Dir: dir, MemtableFlushEntries: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if _, err := re.Get("k1"); !errors.Is(err, ErrNotFound) {
		t.Fatal("corrupt record must not be replayed")
	}
}

// Property: read-your-writes over arbitrary op sequences against a model map.
func TestReadYourWritesProperty(t *testing.T) {
	type op struct {
		Key byte
		Val byte
		Del bool
	}
	f := func(ops []op) bool {
		s, err := Open(Options{MemtableFlushEntries: 4, CompactFanIn: 3})
		if err != nil {
			return false
		}
		defer s.Close()
		model := map[string][]byte{}
		for _, o := range ops {
			key := fmt.Sprintf("k%d", o.Key%16)
			if o.Del {
				if s.Delete(key) != nil {
					return false
				}
				delete(model, key)
			} else {
				if s.Put(key, []byte{o.Val}) != nil {
					return false
				}
				model[key] = []byte{o.Val}
			}
		}
		for k, want := range model {
			got, err := s.Get(k)
			if err != nil || got[0] != want[0] {
				return false
			}
		}
		for i := 0; i < 16; i++ {
			k := fmt.Sprintf("k%d", i)
			if _, ok := model[k]; !ok {
				if _, err := s.Get(k); !errors.Is(err, ErrNotFound) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestStressSmoke(t *testing.T) {
	s, err := Open(DefaultOptions(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	cfg := StressConfig{Ops: 200, Threads: 8, WriteFrac: 0.25, Keys: 64, ValueBytes: 32, Seed: 1}
	res, err := Stress(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d errors", res.Errors)
	}
	if res.ReadCount+res.WriteCount != 200 {
		t.Fatalf("ops: %d + %d", res.ReadCount, res.WriteCount)
	}
	if res.WriteCount == 0 || res.ReadCount == 0 {
		t.Fatal("mix missing a side")
	}
	if res.MeanOp <= 0 || res.P99 < res.MeanOp/10 {
		t.Fatalf("latency stats: %+v", res)
	}
}

func TestStressValidation(t *testing.T) {
	s := memStore(t)
	if _, err := Stress(s, StressConfig{}); err == nil {
		t.Fatal("zero ops must fail")
	}
}

func TestSyncWrites(t *testing.T) {
	dir := t.TempDir()
	opt := DefaultOptions(dir)
	opt.SyncWrites = true
	s, err := Open(opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put("durable", []byte("yes")); err != nil {
		t.Fatal(err)
	}
	if s.WALBytes == 0 {
		t.Fatal("WAL bytes not recorded")
	}
}
