// Package kvstore is a real miniature LSM storage engine standing in for
// Apache Cassandra (§III-B4): a write path through a write-ahead log into a
// sorted memtable, flushes to immutable sorted runs (SSTables) with a simple
// size-tiered compaction, and a read path across memtable + runs. The
// stress driver in stress.go mirrors cassandra-stress: N operations from a
// thread pool with a configurable read/write mix.
package kvstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
)

// ErrNotFound is returned by Get for missing keys.
var ErrNotFound = errors.New("kvstore: key not found")

// ErrClosed is returned after Close.
var ErrClosed = errors.New("kvstore: store is closed")

// Options configure a store.
type Options struct {
	// Dir holds the WAL and SSTable files. Empty = in-memory only (no WAL).
	Dir string
	// MemtableFlushEntries triggers a flush to an SSTable run.
	MemtableFlushEntries int
	// CompactFanIn merges this many runs into one when reached.
	CompactFanIn int
	// SyncWrites fsyncs the WAL on every write (the durable path whose
	// cost the paper's Cassandra experiment stresses).
	SyncWrites bool
}

// DefaultOptions returns small-footprint defaults for tests and benchmarks.
func DefaultOptions(dir string) Options {
	return Options{Dir: dir, MemtableFlushEntries: 1024, CompactFanIn: 4}
}

type entry struct {
	key   string
	value []byte
	del   bool
}

// run is one immutable sorted string table.
type run struct {
	entries []entry // sorted by key, newest-first among duplicates resolved at build
}

func (r *run) get(key string) (entry, bool) {
	i := sort.Search(len(r.entries), func(i int) bool { return r.entries[i].key >= key })
	if i < len(r.entries) && r.entries[i].key == key {
		return r.entries[i], true
	}
	return entry{}, false
}

// Store is the LSM engine.
type Store struct {
	mu     sync.RWMutex
	opt    Options
	mem    map[string]entry
	runs   []*run // newest first
	wal    *os.File
	walBuf *bufio.Writer
	closed bool

	// Stats counters. Reads is updated atomically: Get holds only the read
	// lock, so concurrent readers would otherwise race on the increment.
	Writes, Reads, Flushes, Compactions, WALBytes int64
}

// Open creates or recovers a store.
func Open(opt Options) (*Store, error) {
	if opt.MemtableFlushEntries <= 0 {
		opt.MemtableFlushEntries = 1024
	}
	if opt.CompactFanIn <= 1 {
		opt.CompactFanIn = 4
	}
	s := &Store{opt: opt, mem: make(map[string]entry)}
	if opt.Dir != "" {
		if err := os.MkdirAll(opt.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("kvstore: %w", err)
		}
		if err := s.recoverWAL(); err != nil {
			return nil, err
		}
		f, err := os.OpenFile(s.walPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("kvstore: opening WAL: %w", err)
		}
		s.wal = f
		s.walBuf = bufio.NewWriter(f)
	}
	return s, nil
}

func (s *Store) walPath() string { return filepath.Join(s.opt.Dir, "wal.log") }

// walRecord: crc32 | keyLen | valLen(-1=del) | key | val
func appendWALRecord(buf []byte, e entry) []byte {
	var hdr [12]byte
	vlen := int32(len(e.value))
	if e.del {
		vlen = -1
	}
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(e.key)))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(vlen))
	payload := append(append(append([]byte{}, hdr[4:]...), e.key...), e.value...)
	crc := crc32.ChecksumIEEE(payload)
	binary.LittleEndian.PutUint32(hdr[:4], crc)
	buf = append(buf, hdr[:4]...)
	buf = append(buf, payload...)
	return buf
}

// recoverWAL replays any existing log, skipping a torn tail.
func (s *Store) recoverWAL() error {
	f, err := os.Open(s.walPath())
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("kvstore: opening WAL for recovery: %w", err)
	}
	defer f.Close()
	r := bufio.NewReader(f)
	for {
		var hdr [12]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return nil // clean end or torn header: stop
		}
		crc := binary.LittleEndian.Uint32(hdr[:4])
		klen := binary.LittleEndian.Uint32(hdr[4:8])
		vlen := int32(binary.LittleEndian.Uint32(hdr[8:12]))
		if klen > 1<<20 || vlen > 1<<26 {
			return nil // corrupt length: treat as torn tail
		}
		body := make([]byte, 8+klen+uint32(max32(vlen, 0)))
		copy(body, hdr[4:])
		if _, err := io.ReadFull(r, body[8:]); err != nil {
			return nil
		}
		if crc32.ChecksumIEEE(body) != crc {
			return nil // torn record: stop replay here
		}
		key := string(body[8 : 8+klen])
		e := entry{key: key, del: vlen < 0}
		if vlen >= 0 {
			e.value = append([]byte(nil), body[8+klen:]...)
		}
		s.mem[key] = e
	}
}

func max32(v int32, lo int32) int32 {
	if v < lo {
		return lo
	}
	return v
}

// Put stores value under key.
func (s *Store) Put(key string, value []byte) error {
	return s.write(entry{key: key, value: append([]byte(nil), value...)})
}

// Delete removes key (writes a tombstone).
func (s *Store) Delete(key string) error {
	return s.write(entry{key: key, del: true})
}

func (s *Store) write(e entry) error {
	if e.key == "" {
		return errors.New("kvstore: empty key")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.walBuf != nil {
		rec := appendWALRecord(nil, e)
		if _, err := s.walBuf.Write(rec); err != nil {
			return fmt.Errorf("kvstore: WAL append: %w", err)
		}
		s.WALBytes += int64(len(rec))
		if s.opt.SyncWrites {
			if err := s.walBuf.Flush(); err != nil {
				return fmt.Errorf("kvstore: WAL flush: %w", err)
			}
			if err := s.wal.Sync(); err != nil {
				return fmt.Errorf("kvstore: WAL sync: %w", err)
			}
		}
	}
	s.mem[e.key] = e
	s.Writes++
	if len(s.mem) >= s.opt.MemtableFlushEntries {
		s.flushLocked()
	}
	return nil
}

// Get returns the value for key.
func (s *Store) Get(key string) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	atomic.AddInt64(&s.Reads, 1)
	if e, ok := s.mem[key]; ok {
		if e.del {
			return nil, ErrNotFound
		}
		return append([]byte(nil), e.value...), nil
	}
	for _, r := range s.runs {
		if e, ok := r.get(key); ok {
			if e.del {
				return nil, ErrNotFound
			}
			return append([]byte(nil), e.value...), nil
		}
	}
	return nil, ErrNotFound
}

// Len returns the number of live keys (scans; for tests).
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	live := map[string]bool{}
	for i := len(s.runs) - 1; i >= 0; i-- {
		for _, e := range s.runs[i].entries {
			live[e.key] = !e.del
		}
	}
	for _, e := range s.mem {
		live[e.key] = !e.del
	}
	n := 0
	for _, ok := range live {
		if ok {
			n++
		}
	}
	return n
}

// Flush forces the memtable into a new run.
func (s *Store) Flush() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.closed {
		s.flushLocked()
	}
}

func (s *Store) flushLocked() {
	if len(s.mem) == 0 {
		return
	}
	entries := make([]entry, 0, len(s.mem))
	for _, e := range s.mem {
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].key < entries[j].key })
	s.runs = append([]*run{{entries: entries}}, s.runs...)
	s.mem = make(map[string]entry)
	s.Flushes++
	if len(s.runs) >= s.opt.CompactFanIn {
		s.compactLocked()
	}
	// The flushed state is durable; the WAL can be truncated.
	if s.wal != nil {
		_ = s.walBuf.Flush()
		_ = s.wal.Truncate(0)
		_, _ = s.wal.Seek(0, io.SeekStart)
	}
}

// compactLocked merges all runs into one, dropping shadowed versions and
// tombstones (full compaction — size-tiered would keep tiers; one tier is
// enough for the workload sizes here).
func (s *Store) compactLocked() {
	merged := map[string]entry{}
	for i := len(s.runs) - 1; i >= 0; i-- { // oldest → newest
		for _, e := range s.runs[i].entries {
			merged[e.key] = e
		}
	}
	entries := make([]entry, 0, len(merged))
	for _, e := range merged {
		if !e.del {
			entries = append(entries, e)
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].key < entries[j].key })
	s.runs = []*run{{entries: entries}}
	s.Compactions++
}

// Runs returns the current number of SSTable runs (for tests).
func (s *Store) Runs() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.runs)
}

// Close flushes and releases the WAL.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.walBuf != nil {
		if err := s.walBuf.Flush(); err != nil {
			return err
		}
	}
	if s.wal != nil {
		return s.wal.Close()
	}
	return nil
}
