package kvstore

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/stats"
)

// StressConfig mirrors cassandra-stress (§III-B4): Ops operations issued by
// Threads concurrent workers, WriteFrac of them writes, over a keyspace of
// Keys entries with ValueBytes payloads.
type StressConfig struct {
	Ops        int
	Threads    int
	WriteFrac  float64
	Keys       int
	ValueBytes int
	Seed       uint64
}

// DefaultStress is the paper's mix: 1,000 ops, 100 threads, 25% writes.
func DefaultStress() StressConfig {
	return StressConfig{Ops: 1000, Threads: 100, WriteFrac: 0.25, Keys: 512, ValueBytes: 256, Seed: 1}
}

// StressResult aggregates latencies.
type StressResult struct {
	Ops        int
	Errors     int
	Elapsed    time.Duration
	MeanOp     time.Duration
	P99        time.Duration
	ReadCount  int
	WriteCount int
}

// Stress runs the workload against an open store.
func Stress(s *Store, cfg StressConfig) (StressResult, error) {
	if cfg.Ops <= 0 || cfg.Threads <= 0 {
		return StressResult{}, fmt.Errorf("kvstore: stress needs positive ops/threads, got %d/%d", cfg.Ops, cfg.Threads)
	}
	if cfg.Keys <= 0 {
		cfg.Keys = 512
	}
	if cfg.ValueBytes <= 0 {
		cfg.ValueBytes = 128
	}
	// Preload the keyspace so reads have something to find.
	val := make([]byte, cfg.ValueBytes)
	for i := range val {
		val[i] = byte(i)
	}
	for k := 0; k < cfg.Keys; k++ {
		if err := s.Put(stressKey(k), val); err != nil {
			return StressResult{}, err
		}
	}

	type opOutcome struct {
		lat   time.Duration
		err   bool
		write bool
	}
	outcomes := make([]opOutcome, cfg.Ops)
	var next int
	var mu sync.Mutex
	claim := func() int {
		mu.Lock()
		defer mu.Unlock()
		if next >= cfg.Ops {
			return -1
		}
		next++
		return next - 1
	}

	start := time.Now()
	var wg sync.WaitGroup
	for t := 0; t < cfg.Threads; t++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			state := cfg.Seed + uint64(tid)*0x9e3779b97f4a7c15
			rnd := func() uint64 {
				state ^= state << 13
				state ^= state >> 7
				state ^= state << 17
				return state
			}
			for {
				i := claim()
				if i < 0 {
					return
				}
				key := stressKey(int(rnd() % uint64(cfg.Keys)))
				write := float64(rnd()%1000)/1000 < cfg.WriteFrac
				t0 := time.Now()
				var err error
				if write {
					err = s.Put(key, val)
				} else {
					_, err = s.Get(key)
				}
				outcomes[i] = opOutcome{lat: time.Since(t0), err: err != nil, write: write}
			}
		}(t)
	}
	wg.Wait()

	res := StressResult{Ops: cfg.Ops, Elapsed: time.Since(start)}
	lats := make([]float64, 0, cfg.Ops)
	var sum time.Duration
	for _, o := range outcomes {
		if o.err {
			res.Errors++
			continue
		}
		if o.write {
			res.WriteCount++
		} else {
			res.ReadCount++
		}
		lats = append(lats, float64(o.lat))
		sum += o.lat
	}
	if len(lats) > 0 {
		res.MeanOp = sum / time.Duration(len(lats))
		// Nearest-rank P99 (stats' definition), replacing the previous
		// len*99/100 index; for measured wall-clock latencies the
		// one-rank difference is noise.
		res.P99 = time.Duration(stats.Percentiles(lats, 99)[0])
	}
	return res, nil
}

func stressKey(k int) string { return fmt.Sprintf("key-%06d", k) }
