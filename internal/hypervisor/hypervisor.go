// Package hypervisor models the KVM/QEMU layer (paper §II-B): it builds VM
// guest machines whose cores are vCPUs, applying the virtualization overlay
// the paper measures — a compute tax from the abstraction layers, a virtio
// per-IO cost, the hypervisor's inter-vCPU communication fast path (which is
// why VMs beat containers for MPI, Fig 4), and, for vanilla (unpinned) VMs,
// the cost of vCPUs wandering across host CPUs at the whim of the host
// scheduler.
//
// Because the paper evaluates each workload in isolation ("there is no other
// coexisting workload in the system", §III-A), vCPUs always receive full host
// cores; host-level effects are therefore applied as per-event overlays
// rather than by nesting two schedulers. DESIGN.md §3 documents this
// host-idle assumption.
package hypervisor

import (
	"fmt"
	"sync"

	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Params calibrate the virtualization overlay.
type Params struct {
	// CPUTax multiplies guest compute for tasks with VMTaxWeight 1 (the
	// paper measures ≈2× for FFmpeg on their Qemu 2.11 / kernel 5.4 stack).
	CPUTax float64
	// IOScale stretches device latency/service seen from the guest
	// (paravirtual queueing).
	IOScale float64
	// WanderIOScale multiplies IOScale for vanilla (unpinned) VMs: while
	// vCPUs float, virtio completion vectors keep landing on stale CPUs and
	// the IO path runs longer. Pinning the vCPUs (vcpupin) removes it —
	// the reason pinned VMs consistently beat vanilla VMs for IO-bound
	// applications (Fig 5).
	WanderIOScale float64
	// VirtioExtra is the per-IO completion cost (descriptor ring + VM exit).
	VirtioExtra sim.Time
	// VirtioMiss / VirtioMissProb charge completions landing on stale CPUs
	// while vanilla vCPUs wander; pinning sets the probability to zero.
	VirtioMiss     sim.Time
	VirtioMissProb float64
	// GuestMsgSyncCost is the per-message cost on the hypervisor's shared
	// memory fast path (vs. the host kernel futex path).
	GuestMsgSyncCost sim.Time
	// GuestMsgCopyScale scales copy costs inside the guest.
	GuestMsgCopyScale float64
	// GuestNSCopyScale is the copy multiplier of the container bridge path
	// inside the guest (vhost-assisted: cheaper than the host bridge path).
	GuestNSCopyScale float64
	// GuestCNIOScale scales IO latency for containerized guests (VMCN):
	// the overlay filesystem's extra page-cache layer inside the guest
	// absorbs part of the IO traffic, which is why VMCN slightly beats VM
	// for IO-bound applications (Fig 5 discussion).
	GuestCNIOScale float64
	// GuestLineScale inflates line-transfer costs inside the guest: the
	// flat vCPU topology hides that vCPUs sit on different host sockets.
	GuestLineScale float64
	// GuestCacheScale inflates guest-internal migration penalties for the
	// same reason: a "same-socket" move between vCPUs is usually a
	// cross-socket move between the host cores backing them.
	GuestCacheScale float64
	// GuestWakeExtra is the per-wakeup virtual-IPI / VM-exit cost.
	GuestWakeExtra sim.Time
	// WanderStallRate/WanderStallCost are the floating-vCPU stall process
	// of vanilla VMs: host load balancing moves vCPU threads, stalling the
	// guest while per-vCPU cache/TLB state refills.
	WanderStallRate float64
	WanderStallCost sim.Time
	// NestedSwitchCost is the per-context-switch cost base of running a
	// cgroup *inside* the guest (VMCN): thread-group usage counters contend
	// under virtualized timekeeping. The scheduler scales it by how far the
	// thread group's runnable threads oversubscribe the vCPUs, which is
	// exactly when the paper sees VMCN's extra overhead (Fig 3, small
	// instances), and why single-threaded web processes don't pay it
	// (Fig 5, where VMCN beats VM).
	NestedSwitchCost sim.Time
	// NestedSwitchMax caps one nested-switch charge.
	NestedSwitchMax sim.Time
}

// DefaultParams returns the calibrated defaults.
func DefaultParams() Params {
	return Params{
		CPUTax:            2.0,
		IOScale:           1.1,
		WanderIOScale:     1.18,
		VirtioExtra:       30 * sim.Microsecond,
		VirtioMiss:        60 * sim.Microsecond,
		VirtioMissProb:    0.35,
		GuestMsgSyncCost:  10 * sim.Microsecond,
		GuestMsgCopyScale: 1.0,
		GuestNSCopyScale:  2.2,
		GuestCNIOScale:    0.95,
		GuestLineScale:    4.0,
		GuestCacheScale:   4.75,
		GuestWakeExtra:    4 * sim.Microsecond,
		WanderStallRate:   4,
		WanderStallCost:   1500 * sim.Microsecond,
		NestedSwitchCost:  900 * sim.Microsecond,
		NestedSwitchMax:   3 * sim.Millisecond,
	}
}

// VMSpec describes one VM.
type VMSpec struct {
	Name  string
	VCPUs int
	// Pinned statically binds vCPUs to host CPUs (libvirt <vcpupin>),
	// eliminating vCPU wander.
	Pinned bool
	// Containerized prepares the guest for a container inside it (VMCN):
	// enables nested switch accounting.
	Containerized bool
}

// guestTopoCache interns guest topologies: a sweep builds the same few
// (name, vCPUs) shapes thousands of times, and each topology.New carries an
// O(n²) distance matrix. Topologies are immutable after New, and GuestConfig
// never mutates the shared instance, so interning is safe; the mutex covers
// trial workers building guests in parallel.
var guestTopoCache struct {
	sync.Mutex
	m map[guestTopoKey]*topology.Topology
}

type guestTopoKey struct {
	name  string
	vcpus int
}

// GuestTopology returns the flat topology a guest sees: one virtual socket of
// single-thread vCPUs (QEMU default without explicit -smp topology). The
// returned topology is shared across calls with the same name and vCPU count
// and must not be mutated.
func GuestTopology(spec VMSpec) (*topology.Topology, error) {
	if spec.VCPUs <= 0 {
		return nil, fmt.Errorf("hypervisor: VM %q needs at least one vCPU", spec.Name)
	}
	key := guestTopoKey{name: spec.Name, vcpus: spec.VCPUs}
	guestTopoCache.Lock()
	defer guestTopoCache.Unlock()
	if t := guestTopoCache.m[key]; t != nil {
		return t, nil
	}
	t, err := topology.New("guest-"+spec.Name, 1, spec.VCPUs, 1)
	if err != nil {
		return nil, err
	}
	if guestTopoCache.m == nil {
		guestTopoCache.m = make(map[guestTopoKey]*topology.Topology)
	}
	guestTopoCache.m[key] = t
	return t, nil
}

// NewGuest builds the guest machine for spec on the given host. The guest
// inherits the host's calibration (scheduler/cache/cgroup/IRQ params and
// channels) with the virtualization overlay applied.
func NewGuest(host machine.Config, spec VMSpec, p Params, seed uint64) (*machine.Machine, error) {
	cfg, err := GuestConfig(host, spec, p, seed)
	if err != nil {
		return nil, err
	}
	return machine.New(cfg)
}

// GuestConfig derives the guest machine configuration for spec without
// building the machine. It is the composable form of NewGuest: because the
// result is itself a machine.Config, it can serve as the "host" of a further
// GuestConfig call, which is how platform stacks express nested
// virtualization (a VM inside a VM). Multiplicative and additive costs
// compound across levels — compute tax on compute tax, a virtio overlay per
// paravirtual hop, the physical host's NUMA spread all the way down — so a
// deeper stack is strictly more expensive, while a single level reproduces
// the historical overlay exactly (the physical host's ComputeTax is 1 and
// its virtio costs are 0).
func GuestConfig(host machine.Config, spec VMSpec, p Params, seed uint64) (machine.Config, error) {
	gtopo, err := GuestTopology(spec)
	if err != nil {
		return machine.Config{}, err
	}
	cfg := host // copy calibration
	cfg.Name = "vm-" + spec.Name
	cfg.Topo = gtopo
	cfg.Seed = seed
	cfg.ComputeTax = host.ComputeTax * p.CPUTax
	// Guest memory is backed by host pages spread across the *physical*
	// host's NUMA nodes; the interleave penalty follows that socket count
	// through every nesting level (a guest host already carries it in
	// NUMASockets; a physical host derives it from its topology).
	cfg.NUMASockets = host.NUMASockets
	if cfg.NUMASockets == 0 {
		cfg.NUMASockets = host.Topo.Sockets
	}
	cfg.IOScale = host.IOScale * p.IOScale
	cfg.VirtioExtra = host.VirtioExtra + p.VirtioExtra
	cfg.VirtioMiss = host.VirtioMiss + p.VirtioMiss
	// Wander overheads compose across nesting levels: pinning THIS guest's
	// vCPUs (to the CPUs of the level beneath) adds no wander of its own,
	// but cannot undo an outer vanilla level's vCPUs floating on physical
	// cores — so the pinned branch inherits the host-side values untouched
	// (zero for physical hosts, reproducing the historical single-level
	// behavior). A vanilla level adds its own wander on top: miss
	// probabilities combine as independent events, stall rates add, and
	// the per-stall cost keeps the dearest level's value.
	if !spec.Pinned {
		cfg.VirtioMissProb = 1 - (1-host.VirtioMissProb)*(1-p.VirtioMissProb)
		if p.WanderIOScale > 0 {
			cfg.IOScale *= p.WanderIOScale
		}
		cfg.WanderStallRate = host.WanderStallRate + p.WanderStallRate
		if p.WanderStallCost > cfg.WanderStallCost {
			cfg.WanderStallCost = p.WanderStallCost
		}
	}
	cfg.MsgSyncCost = p.GuestMsgSyncCost
	cfg.MsgCopyPerKB = sim.Time(float64(host.MsgCopyPerKB) * p.GuestMsgCopyScale)
	if p.GuestLineScale > 0 {
		cfg.MsgLineScale = host.MsgLineScale * p.GuestLineScale
	}
	if p.GuestCacheScale > 0 {
		cfg.Cache.SMTSiblingPenalty = sim.Time(float64(cfg.Cache.SMTSiblingPenalty) * p.GuestCacheScale)
		cfg.Cache.SameSocketPenalty = sim.Time(float64(cfg.Cache.SameSocketPenalty) * p.GuestCacheScale)
	}
	cfg.WakeExtra = host.WakeExtra + p.GuestWakeExtra
	if spec.Containerized {
		cfg.NestedSwitchCost = p.NestedSwitchCost
		cfg.NestedSwitchMax = p.NestedSwitchMax
		cfg.MsgNSCopyScale = p.GuestNSCopyScale
		if p.GuestCNIOScale > 0 {
			cfg.IOScale *= p.GuestCNIOScale
		}
	} else {
		cfg.NestedSwitchCost = 0
	}
	return cfg, nil
}
