package hypervisor

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/topology"
)

func hostCfg() machine.Config {
	return machine.HostDefaults(topology.PaperHost(), 1)
}

func TestGuestTopologyFlat(t *testing.T) {
	topo, err := GuestTopology(VMSpec{Name: "v", VCPUs: 8})
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumCPUs() != 8 || topo.Sockets != 1 || topo.ThreadsPerCore != 1 {
		t.Fatalf("guest topo: %v", topo)
	}
	if _, err := GuestTopology(VMSpec{Name: "bad"}); err == nil {
		t.Fatal("zero vCPUs must fail")
	}
}

func TestGuestInheritsHostNUMA(t *testing.T) {
	g, err := NewGuest(hostCfg(), VMSpec{Name: "v", VCPUs: 4}, DefaultParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.Cfg.NUMASockets != 4 {
		t.Fatalf("guest NUMA sockets %d, want the host's 4", g.Cfg.NUMASockets)
	}
	if g.Cfg.ComputeTax != DefaultParams().CPUTax {
		t.Fatal("tax not applied")
	}
}

func TestPinnedVsVanillaOverlay(t *testing.T) {
	p := DefaultParams()
	pinned, err := NewGuest(hostCfg(), VMSpec{Name: "p", VCPUs: 4, Pinned: true}, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	vanilla, err := NewGuest(hostCfg(), VMSpec{Name: "v", VCPUs: 4}, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if pinned.Cfg.VirtioMissProb != 0 || pinned.Cfg.WanderStallRate != 0 {
		t.Fatal("pinned VM must not wander")
	}
	if vanilla.Cfg.VirtioMissProb == 0 || vanilla.Cfg.WanderStallRate == 0 {
		t.Fatal("vanilla VM must wander")
	}
	if vanilla.Cfg.IOScale <= pinned.Cfg.IOScale {
		t.Fatal("vanilla IO path should be slower (completion-vector misses)")
	}
}

func TestContainerizedGuestOverlay(t *testing.T) {
	p := DefaultParams()
	plain, _ := NewGuest(hostCfg(), VMSpec{Name: "vm", VCPUs: 2}, p, 1)
	vmcn, _ := NewGuest(hostCfg(), VMSpec{Name: "vmcn", VCPUs: 2, Containerized: true}, p, 1)
	if plain.Cfg.NestedSwitchCost != 0 {
		t.Fatal("plain VM must not pay nested accounting")
	}
	if vmcn.Cfg.NestedSwitchCost == 0 {
		t.Fatal("VMCN guest must pay nested accounting")
	}
	if vmcn.Cfg.IOScale >= plain.Cfg.IOScale {
		t.Fatal("overlay page cache should make VMCN IO slightly cheaper")
	}
}

func TestGuestRunsWorkload(t *testing.T) {
	g, err := NewGuest(hostCfg(), VMSpec{Name: "w", VCPUs: 2, Pinned: true}, DefaultParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	g.Spawn(sched.TaskSpec{Name: "guest-task", VMTaxWeight: 1,
		Program: sched.Sequence(sched.Compute(50 * sim.Millisecond))}, 0)
	res := g.Run(0)
	// tax 2.0 × NUMA(memBound 0 ⇒ 1.0) ⇒ ≈100ms.
	if res.Makespan < 95*sim.Millisecond {
		t.Fatalf("virtualization tax missing: %v", res.Makespan)
	}
}
