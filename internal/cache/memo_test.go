package cache

import (
	"fmt"
	"sync"
	"testing"
)

func TestHashKeyStableAndDistinct(t *testing.T) {
	if HashKey("a|b|c") != HashKey("a|b|c") {
		t.Fatal("HashKey must be deterministic")
	}
	// FNV-1a reference value for the empty string.
	if got := HashKey(""); got != 0xcbf29ce484222325 {
		t.Fatalf("HashKey(\"\") = %#x, want FNV-1a offset basis", got)
	}
	seen := map[uint64]string{}
	for i := 0; i < 10000; i++ {
		k := fmt.Sprintf("trial|%d|seed=%d", i%100, i)
		h := HashKey(k)
		if prev, dup := seen[h]; dup && prev != k {
			t.Fatalf("collision between %q and %q", prev, k)
		}
		seen[h] = k
	}
}

func TestMemoGetPutAndCounters(t *testing.T) {
	m := NewMemo[float64]()
	if _, ok := m.Get(1); ok {
		t.Fatal("empty memo must miss")
	}
	m.Put(1, 3.5)
	v, ok := m.Get(1)
	if !ok || v != 3.5 {
		t.Fatalf("got %v,%v", v, ok)
	}
	if m.Hits() != 1 || m.Misses() != 1 || m.Len() != 1 {
		t.Fatalf("hits=%d misses=%d len=%d", m.Hits(), m.Misses(), m.Len())
	}
}

func TestMemoConcurrentAccess(t *testing.T) {
	m := NewMemo[int]()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := uint64(i % 50)
				if v, ok := m.Get(key); ok && v != int(key) {
					t.Errorf("key %d holds %d", key, v)
					return
				}
				m.Put(key, int(key))
			}
		}(w)
	}
	wg.Wait()
	if m.Len() != 50 {
		t.Fatalf("len=%d, want 50", m.Len())
	}
	if m.Hits()+m.Misses() != 8*500 {
		t.Fatalf("counter drift: hits=%d misses=%d", m.Hits(), m.Misses())
	}
}

func TestMemoContainsDoesNotCount(t *testing.T) {
	m := NewMemo[int]()
	m.Put(1, 10)
	if !m.Contains(1) || m.Contains(2) {
		t.Fatal("Contains misreports membership")
	}
	if m.Hits() != 0 || m.Misses() != 0 {
		t.Fatalf("Contains skewed the audit: hits=%d misses=%d", m.Hits(), m.Misses())
	}
}

// TestMemoShardDistribution proves the shard router spreads both
// hand-rolled small keys and FNV-hashed keys across the table: no shard
// may stay empty (sequential keys piling into one shard would turn the
// 64-way table back into one mutex) and no shard may hoard more than a
// loose multiple of its fair share.
func TestMemoShardDistribution(t *testing.T) {
	for name, keyFn := range map[string]func(i int) uint64{
		"sequential": func(i int) uint64 { return uint64(i) },
		"fnv":        func(i int) uint64 { return HashKey(fmt.Sprintf("trial|%d", i)) },
	} {
		const n = 64 * 256
		counts := make(map[uint64]int)
		for i := 0; i < n; i++ {
			counts[shardOf(keyFn(i))]++
		}
		if len(counts) != memoShards {
			t.Fatalf("%s keys reached %d of %d shards", name, len(counts), memoShards)
		}
		for shard, c := range counts {
			if c > 4*n/memoShards {
				t.Fatalf("%s keys: shard %d holds %d of %d (>4x fair share)", name, shard, c, n)
			}
		}
	}
}

// TestMemoCountersExactUnderParallelGets pins the audit contract the -v
// stats line and the CI "0 misses (0 simulations)" gates rely on: however
// many goroutines hammer the table, hits+misses equals Get calls exactly
// (per-shard atomics, not racy non-atomic increments).
func TestMemoCountersExactUnderParallelGets(t *testing.T) {
	m := NewMemo[int]()
	const present = 100
	for i := 0; i < present; i++ {
		m.Put(uint64(i), i)
	}
	const workers, gets = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < gets; i++ {
				m.Get(uint64((w*gets + i) % (2 * present))) // half hit, half miss
			}
		}(w)
	}
	wg.Wait()
	if got := m.Hits() + m.Misses(); got != workers*gets {
		t.Fatalf("hits+misses = %d, want %d", got, workers*gets)
	}
	if m.Hits() != workers*gets/2 {
		t.Fatalf("hits = %d, want %d", m.Hits(), workers*gets/2)
	}
}

func TestMemoRangeVisitsEveryEntry(t *testing.T) {
	m := NewMemo[int]()
	for i := 0; i < 10; i++ {
		m.Put(uint64(i), i*i)
	}
	seen := map[uint64]int{}
	m.Range(func(k uint64, v int) bool {
		seen[k] = v
		return true
	})
	if len(seen) != 10 || seen[3] != 9 {
		t.Fatalf("Range saw %v", seen)
	}
	n := 0
	m.Range(func(uint64, int) bool { n++; return false })
	if n != 1 {
		t.Fatalf("Range ignored early stop: %d visits", n)
	}
}
