package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/topology"
)

func model() *Model {
	return New(topology.PaperHost(), DefaultParams())
}

func TestMigrationPenaltyByDistance(t *testing.T) {
	m := model()
	now := sim.Time(100 * sim.Millisecond)
	recent := now - sim.Millisecond
	same := m.MigrationPenalty(0, 0, 1.0, recent, now)
	sib := m.MigrationPenalty(0, 1, 1.0, recent, now)
	sock := m.MigrationPenalty(0, 2, 1.0, recent, now)
	cross := m.MigrationPenalty(0, 28, 1.0, recent, now)
	if same != 0 {
		t.Fatalf("recent same-CPU resume should be free, got %v", same)
	}
	if !(sib < sock && sock < cross) {
		t.Fatalf("penalties not monotone in distance: %v %v %v", sib, sock, cross)
	}
}

func TestMigrationPenaltyScalesWithWorkingSet(t *testing.T) {
	m := model()
	now := sim.Time(sim.Second)
	small := m.MigrationPenalty(0, 28, 0.5, now-sim.Millisecond, now)
	big := m.MigrationPenalty(0, 28, 2.0, now-sim.Millisecond, now)
	if big != 4*small {
		t.Fatalf("working-set scaling: %v vs %v", small, big)
	}
	if m.MigrationPenalty(0, 28, 0, now-sim.Millisecond, now) != 0 {
		t.Fatal("zero working set must be free")
	}
}

func TestColdRestartAfterDecay(t *testing.T) {
	m := model()
	now := sim.Time(sim.Second)
	longAgo := now - 2*m.P.DecayTime
	cold := m.MigrationPenalty(5, 5, 1.0, longAgo, now)
	if cold == 0 {
		t.Fatal("same-CPU resume after decay should pay a cold restart")
	}
	want := sim.Time(float64(m.P.SameSocketPenalty) * m.P.ColdRestartFraction)
	if cold != want {
		t.Fatalf("cold restart %v, want %v", cold, want)
	}
}

func TestFirstDispatchHalfCold(t *testing.T) {
	m := model()
	p := m.MigrationPenalty(-1, 3, 1.0, 0, 0)
	if p == 0 {
		t.Fatal("first dispatch should pay a partial cold start")
	}
}

func TestLineTransferCost(t *testing.T) {
	m := model()
	if m.LineTransferCost(0, 0) != 0 || m.LineTransferCost(0, 1) != 0 {
		t.Fatal("same core transfers should be free")
	}
	if !(m.LineTransferCost(0, 2) < m.LineTransferCost(0, 28)) {
		t.Fatal("cross-socket transfer should cost more")
	}
}

func TestNUMAFactor(t *testing.T) {
	m := model()
	if got := m.NUMAFactor(0); got != 1 {
		t.Fatalf("cpu-only work should be NUMA-free, got %v", got)
	}
	f := m.NUMAFactor(1.0)
	want := 1 + 0.75*m.P.NUMAPenaltyPerRemoteSocketFraction
	if f != want {
		t.Fatalf("NUMA factor %v, want %v", f, want)
	}
	single := New(topology.SmallHost16(), DefaultParams())
	if single.NUMAFactor(1.0) != 1 {
		t.Fatal("single-socket host must have no NUMA penalty")
	}
	if m.NUMAFactorForSockets(1.0, 1) != 1 {
		t.Fatal("explicit 1-socket must be free")
	}
	if m.NUMAFactorForSockets(0.5, 4) >= m.NUMAFactorForSockets(1.0, 4) {
		t.Fatal("factor must grow with memory-boundedness")
	}
}

// Property: penalties are never negative and monotone in working set.
func TestPenaltyProperties(t *testing.T) {
	m := model()
	now := sim.Time(10 * sim.Second)
	f := func(fromRaw, toRaw uint8, ws float64) bool {
		if ws < 0 {
			ws = -ws
		}
		if ws > 100 {
			ws = 100
		}
		from := int(fromRaw) % 112
		to := int(toRaw) % 112
		p1 := m.MigrationPenalty(from, to, ws, now-sim.Millisecond, now)
		p2 := m.MigrationPenalty(from, to, ws*2, now-sim.Millisecond, now)
		return p1 >= 0 && p2 >= p1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
