// Package cache models the performance cost of losing CPU cache and NUMA
// locality. It is deliberately not a line-accurate cache simulator: the paper
// attributes migration overhead to "redundant memory access due to cache
// miss" and "reloading L1 and L2 caches" (§III-A, §IV-C), so the model
// charges a reload penalty whenever a task resumes with cold state, scaled by
// how far it moved and how large its working set is.
package cache

import (
	"repro/internal/sim"
	"repro/internal/topology"
)

// Params are the calibration constants of the penalty model.
type Params struct {
	// Reload penalties for a working-set factor of 1.0 by migration distance.
	SMTSiblingPenalty  sim.Time // L1 refill only; L2 shared
	SameSocketPenalty  sim.Time // L1+L2 refill; LLC still warm
	CrossSocketPenalty sim.Time // full refill + remote-memory pull

	// DecayTime is how long a task can stay off-CPU before its state on the
	// old CPU is considered evicted; resuming even on the same CPU after a
	// longer gap pays ColdRestartFraction of the same-socket penalty.
	DecayTime           sim.Time
	ColdRestartFraction float64

	// NUMAPenaltyPerRemoteSocketFraction is the slowdown of memory-bound work
	// when memory is interleaved across sockets: effective compute slowdown =
	// memBound × (1 - 1/sockets) × this. It models default first-touch /
	// interleave placement on a populated multi-socket host, and is why the
	// same 16-core container is slower on a 112-core 4-socket host than on a
	// 16-core 1-socket host (Fig 7) regardless of pinning.
	NUMAPenaltyPerRemoteSocketFraction float64
}

// DefaultParams returns the calibrated defaults used by all experiments.
func DefaultParams() Params {
	return Params{
		SMTSiblingPenalty:                  5 * sim.Microsecond,
		SameSocketPenalty:                  40 * sim.Microsecond,
		CrossSocketPenalty:                 240 * sim.Microsecond,
		DecayTime:                          20 * sim.Millisecond,
		ColdRestartFraction:                0.5,
		NUMAPenaltyPerRemoteSocketFraction: 0.5,
	}
}

// Model computes penalties against one topology.
type Model struct {
	P    Params
	Topo *topology.Topology
}

// New returns a model over topo with params p.
func New(topo *topology.Topology, p Params) *Model {
	return &Model{P: p, Topo: topo}
}

// MigrationPenalty returns the stall charged when a task with the given
// working-set factor (1.0 = nominal, e.g. FFmpeg's ~50 MB footprint) resumes
// on cpu `to` having last run on cpu `from` at time lastRan (now = current
// time). from < 0 means the task never ran (first dispatch: half cold start).
func (m *Model) MigrationPenalty(from, to int, workingSet float64, lastRan, now sim.Time) sim.Time {
	if workingSet <= 0 {
		return 0
	}
	if from < 0 {
		return sim.Time(float64(m.P.SameSocketPenalty) * m.P.ColdRestartFraction * workingSet)
	}
	d := m.Topo.DistanceBetween(from, to)
	var base sim.Time
	switch d {
	case topology.SameCPU:
		// Same CPU: only pay if the gap was long enough for eviction.
		if now-lastRan > m.P.DecayTime {
			return sim.Time(float64(m.P.SameSocketPenalty) * m.P.ColdRestartFraction * workingSet)
		}
		return 0
	case topology.SMTSibling:
		base = m.P.SMTSiblingPenalty
	case topology.SameSocket:
		base = m.P.SameSocketPenalty
	case topology.CrossSocket:
		base = m.P.CrossSocketPenalty
	}
	return sim.Time(float64(base) * workingSet)
}

// LineTransferCost returns the cost of pulling a hot cache line (e.g. an MPI
// message buffer) from cpu `from` to cpu `to`: the hardware component of
// inter-core communication.
func (m *Model) LineTransferCost(from, to int) sim.Time {
	switch m.Topo.DistanceBetween(from, to) {
	case topology.SameCPU, topology.SMTSibling:
		return 0
	case topology.SameSocket:
		return 500 * sim.Nanosecond
	default:
		return 2 * sim.Microsecond
	}
}

// NUMAFactor returns the machine-wide compute-slowdown multiplier for a task
// whose memory-bound fraction is memBound, on a host with the model's socket
// count. Memory is assumed interleaved across all populated sockets (default
// kernel placement for spread multi-threaded initialization), so the factor
// depends on the host, not on any cpuset — matching Fig 7, where pinning does
// not remove the big-host penalty.
func (m *Model) NUMAFactor(memBound float64) float64 {
	return m.NUMAFactorForSockets(memBound, m.Topo.Sockets)
}

// NUMAFactorForSockets is NUMAFactor with an explicit socket count; guest
// machines pass their *host's* socket count because guest memory is backed by
// host pages spread across the host's nodes.
func (m *Model) NUMAFactorForSockets(memBound float64, sockets int) float64 {
	if sockets <= 1 || memBound <= 0 {
		return 1
	}
	remote := 1 - 1/float64(sockets)
	return 1 + memBound*remote*m.P.NUMAPenaltyPerRemoteSocketFraction
}
